"""Fig. 12 — Kernel throughput of MGARD-X/ZFP-X/Huffman-X on five
processors at three relative error bounds.

Two layers are reported:

* the calibrated simulator's saturated throughputs (the paper's ranges:
  up to 45 / 210 / 150 GB/s on GPUs; 2 / 18 / 48 GB/s on CPUs), and
* the *real* wall-clock throughput of this repository's NumPy kernels
  on the local host — the functional implementation actually moving
  bytes (a Python prototype necessarily sits far below the CUDA
  figures; the relative ordering ZFP > Huffman > MGARD should hold).
"""

import time

import numpy as np
import pytest

from repro import Config, ErrorMode, HuffmanX, MGARDX, ZFPX, rate_for_error_bound
from repro.bench.report import print_table
from repro.machine.specs import FIG12_PROCESSORS
from repro.perf.models import kernel_throughput

from benchmarks.common import bench_dataset, save_table

EBS = [1e-2, 1e-4, 1e-6]


def test_fig12_simulated_matrix(benchmark):
    rows = []
    for pipeline, paper_max_gpu, paper_max_cpu in [
        ("mgard-x", 45, 2), ("zfp-x", 210, 18), ("huffman-x", 150, 48),
    ]:
        for proc in FIG12_PROCESSORS:
            cells = [
                kernel_throughput(pipeline, proc, error_bound=eb) / 1e9
                for eb in EBS
            ]
            rows.append([pipeline, proc] + [f"{c:.1f}" for c in cells])
        gpu_max = max(
            kernel_throughput(pipeline, p, error_bound=1e-2) / 1e9
            for p in FIG12_PROCESSORS if p != "EPYC7713"
        )
        assert gpu_max <= paper_max_gpu * 1.15
        assert gpu_max >= paper_max_gpu * 0.8
    text = print_table(
        ["kernel", "processor"] + [f"GB/s @eb={e:.0e}" for e in EBS],
        rows,
        title="Fig. 12 — simulated kernel throughput (paper maxima: "
              "45/210/150 GB/s GPU, 2/18/48 GB/s CPU)",
    )
    save_table("fig12_kernel_throughput_simulated", text)
    benchmark(kernel_throughput, "mgard-x", "V100", None, 1e-4)


def _wallclock(fn, data) -> float:
    t0 = time.perf_counter()
    fn(data)
    dt = time.perf_counter() - t0
    return data.nbytes / dt


def test_fig12_real_kernel_ordering(benchmark):
    """The NumPy kernels' relative speeds mirror the paper's ordering."""
    data = bench_dataset("nyx")
    cfg = Config(error_bound=1e-2, error_mode=ErrorMode.REL)

    mgard = MGARDX(cfg)
    zfp = ZFPX(rate=rate_for_error_bound(1e-2, data.dtype, data.ndim))
    huff = HuffmanX()

    t_mgard = _wallclock(mgard.compress, data)
    t_zfp = _wallclock(zfp.compress, data)
    t_huff = _wallclock(huff.compress, data)
    text = print_table(
        ["kernel", "host wall-clock throughput"],
        [["MGARD-X", f"{t_mgard/1e6:.1f} MB/s"],
         ["ZFP-X", f"{t_zfp/1e6:.1f} MB/s"],
         ["Huffman-X", f"{t_huff/1e6:.1f} MB/s"]],
        title="Fig. 12 companion — real NumPy kernels on this host "
              "(ordering should match: ZFP fastest, MGARD heaviest)",
    )
    save_table("fig12_real_kernels", text)
    assert t_zfp > t_mgard
    benchmark(zfp.compress, data)


@pytest.mark.parametrize("eb", EBS)
def test_fig12_mgard_compress_rate(benchmark, eb):
    data = bench_dataset("nyx")
    comp = MGARDX(Config(error_bound=eb, error_mode=ErrorMode.REL))
    blob = benchmark(comp.compress, data)
    if eb >= 1e-4:
        assert len(blob) < data.nbytes
    else:
        # eb=1e-6 sits below the FP32 noise floor of the synthetic
        # stand-in: quantized coefficients are incompressible and the
        # stream may expand (bounded), as lossy compressors do on noise.
        assert len(blob) < 2.5 * data.nbytes


if __name__ == "__main__":
    test_fig12_simulated_matrix(lambda f, *a, **k: f(*a, **k))
