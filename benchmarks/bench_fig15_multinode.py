"""Fig. 15 — Aggregated multi-node reduction throughput.

Weak scaling with 14 NYX steps per GPU.  Paper headline numbers:

* Summit, 512 nodes (3,072 V100s): MGARD-X 45 TB/s vs NVCOMP-LZ4 10,
  cuSZ 9, ZFP-CUDA 13, MGARD-GPU 9 TB/s.
* Frontier, 1,024 nodes (4,096 MI250X): MGARD-X 103 TB/s vs
  MGARD-GPU 18 TB/s (the CUDA-only tools have no stable HIP build).
"""

import pytest

from repro.bench.methods import EVAL_METHODS, method_at_scale
from repro.bench.report import print_table
from repro.io.parallel import aggregate_reduction
from repro.machine.topology import FRONTIER, SUMMIT

from benchmarks.common import measured_ratio, save_table

GB = int(1e9)
TB = 1e12
#: 14 NYX steps × 536.8 MB per GPU (paper's saturation workload).
BYTES_PER_GPU = 14 * 536_870_912

SUMMIT_NODES = [32, 128, 512]
FRONTIER_NODES = [64, 256, 1024]

PAPER_SUMMIT = {"mgard-x": 45, "nvcomp-lz4": 10, "cusz": 9,
                "zfp-cuda": 13, "mgard-gpu": 9}
PAPER_FRONTIER = {"mgard-x": 103, "mgard-gpu": 18}


def agg(system, nodes, name, decompress=False):
    m = method_at_scale(name, ratio=measured_ratio(name, "nyx", 1e-2))
    return aggregate_reduction(system, nodes, m, BYTES_PER_GPU,
                               decompress=decompress)


def test_fig15_summit(benchmark):
    rows = []
    at_512 = {}
    for name in PAPER_SUMMIT:
        for nodes in SUMMIT_NODES:
            comp = agg(SUMMIT, nodes, name) / TB
            dec = agg(SUMMIT, nodes, name, decompress=True) / TB
            rows.append([EVAL_METHODS[name].name, nodes,
                         f"{comp:.1f}", f"{dec:.1f}",
                         PAPER_SUMMIT[name] if nodes == 512 else ""])
            if nodes == 512:
                at_512[name] = comp
    text = print_table(
        ["method", "nodes", "compress TB/s", "decompress TB/s",
         "paper compress @512"],
        rows,
        title="Fig. 15a — Summit aggregated reduction throughput",
    )
    save_table("fig15_summit", text)
    # Shape: MGARD-X far ahead; baselines clustered below.
    assert at_512["mgard-x"] == pytest.approx(45, rel=0.25)
    for name, paper in PAPER_SUMMIT.items():
        if name != "mgard-x":
            assert at_512[name] < 0.5 * at_512["mgard-x"]
            assert at_512[name] == pytest.approx(paper, rel=0.6)
    benchmark(agg, SUMMIT, 512, "mgard-x")


def test_fig15_frontier(benchmark):
    rows = []
    at_1024 = {}
    for name in PAPER_FRONTIER:
        for nodes in FRONTIER_NODES:
            comp = agg(FRONTIER, nodes, name) / TB
            dec = agg(FRONTIER, nodes, name, decompress=True) / TB
            rows.append([EVAL_METHODS[name].name, nodes,
                         f"{comp:.1f}", f"{dec:.1f}",
                         PAPER_FRONTIER[name] if nodes == 1024 else ""])
            if nodes == 1024:
                at_1024[name] = comp
    text = print_table(
        ["method", "nodes", "compress TB/s", "decompress TB/s",
         "paper compress @1024"],
        rows,
        title="Fig. 15b — Frontier aggregated reduction throughput",
    )
    save_table("fig15_frontier", text)
    assert at_1024["mgard-x"] == pytest.approx(103, rel=0.25)
    assert at_1024["mgard-gpu"] == pytest.approx(18, rel=0.6)
    benchmark(agg, FRONTIER, 1024, "mgard-x")


def test_fig15_weak_scaling_linearity(benchmark):
    """Aggregate throughput grows linearly with nodes (weak scaling)."""
    t = [agg(SUMMIT, n, "mgard-x") for n in SUMMIT_NODES]
    assert t[2] / t[0] == pytest.approx(SUMMIT_NODES[2] / SUMMIT_NODES[0], rel=0.01)
    benchmark(agg, SUMMIT, 32, "mgard-gpu")


if __name__ == "__main__":
    test_fig15_summit(lambda f, *a, **k: f(*a, **k))
    test_fig15_frontier(lambda f, *a, **k: f(*a, **k))
