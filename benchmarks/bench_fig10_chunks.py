"""Fig. 10 — Chunk-size effect on the reduction pipeline.

The paper compresses a 4.3 GB NYX variable with MGARD at eb=1e-2 under
three chunking policies: fixed 100 MB (low sustained throughput — the
paper measures 7.3 GB/s on their testbed), fixed 2 GB (only 75.3 % of
the transfer latency hidden) and the adaptive strategy (both high
throughput and high hiding).
"""

from repro.bench.report import print_table
from repro.core.adaptive import adaptive_schedule
from repro.core.pipeline import ReductionPipeline, chunk_sizes_for
from repro.perf.models import kernel_model

from benchmarks.common import fresh_device, measured_ratio, save_table

GB = int(1e9)
MB = int(1e6)
TOTAL = int(4.3 * GB)


def run_policy(policy: str):
    ratio = measured_ratio("mgard-x", "nyx", 1e-2)
    model = kernel_model("mgard-x", "V100", error_bound=1e-2)
    dev, _ = fresh_device("V100")
    if policy == "fixed-small":
        sizes = chunk_sizes_for(TOTAL, 100 * MB)
    elif policy == "fixed-large":
        sizes = chunk_sizes_for(TOTAL, 2 * GB)
    elif policy == "adaptive":
        sizes = adaptive_schedule(TOTAL, model, ratio=ratio)
    else:
        raise ValueError(policy)
    pipe = ReductionPipeline(dev, model)
    return pipe.run_compression(sizes, ratio=ratio)


def test_fig10_chunk_size_tradeoff(benchmark):
    rows = []
    results = {}
    for policy, paper_note in [
        ("fixed-small", "paper: low sustained throughput (7.3 GB/s)"),
        ("fixed-large", "paper: only 75.3% latency hidden"),
        ("adaptive", "paper: best of both"),
    ]:
        res = run_policy(policy)
        results[policy] = res
        rows.append([
            policy,
            len(res.chunk_sizes),
            f"{res.throughput/1e9:.1f} GB/s",
            f"{100*res.hidden_copy_ratio:.1f}%",
            paper_note,
        ])
    text = print_table(
        ["policy", "chunks", "end-to-end throughput", "copy time hidden", "paper"],
        rows,
        title="Fig. 10 — 4.3 GB NYX, MGARD eb=1e-2 on V100",
    )
    save_table("fig10_chunks", text)

    # Shape assertions: large chunks hide less; adaptive dominates.
    assert results["fixed-large"].hidden_copy_ratio < results["adaptive"].hidden_copy_ratio
    assert results["adaptive"].throughput >= results["fixed-small"].throughput
    assert results["adaptive"].throughput >= 0.98 * results["fixed-large"].throughput
    benchmark(run_policy, "adaptive")


def test_fig10_large_chunks_expose_leading_transfer(benchmark):
    """With 2 GB chunks the first transfer's latency is unhidden —
    quantified via the hidden-copy ratio gap."""
    small = run_policy("fixed-small")
    large = run_policy("fixed-large")
    assert large.hidden_copy_ratio < small.hidden_copy_ratio
    benchmark(run_policy, "fixed-large")


if __name__ == "__main__":
    test_fig10_chunk_size_tradeoff(lambda f, *a, **k: f(*a, **k))
