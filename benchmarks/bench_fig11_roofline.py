"""Fig. 11 — Roofline model of MGARD/ZFP throughput vs chunk size.

The paper profiles each (dataset, error-bound) combination over chunk
sizes, then fits the piecewise Φ(C) used by the adaptive pipeline.  This
bench runs the same procedure against the calibrated simulator and
verifies the fit recovers the underlying model, for both kernels on the
three datasets and three error bounds.
"""

import numpy as np

from repro.bench.report import print_table
from repro.perf.models import kernel_model
from repro.perf.roofline import fit_roofline, profile_points

from benchmarks.common import save_table

MB = 1e6
CHUNKS = np.array([2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]) * MB
DATASETS = ["nyx", "xgc", "e3sm"]
EBS = [1e-2, 1e-4, 1e-6]


def fit_one(pipeline: str, eb: float):
    km = kernel_model(pipeline, "V100", error_bound=eb)
    c, p = profile_points(km.phi, CHUNKS)
    return km, fit_roofline(c, p)


def test_fig11_fits_recover_phi(benchmark):
    rows = []
    for pipeline in ("mgard-x", "zfp-x"):
        for ds in DATASETS:
            for eb in EBS:
                km, fit = fit_one(pipeline, eb)
                gamma_err = abs(fit.gamma - km.gamma) / km.gamma
                mid = 48 * MB
                ramp_err = abs(fit.phi(mid) - km.phi(mid)) / km.phi(mid)
                rows.append([
                    pipeline, ds, f"{eb:.0e}",
                    f"{fit.gamma/1e9:.1f} GB/s",
                    f"{fit.c_threshold/1e6:.0f} MB",
                    f"{100*gamma_err:.2f}%",
                    f"{100*ramp_err:.1f}%",
                ])
                assert gamma_err < 0.01
                assert ramp_err < 0.25
    text = print_table(
        ["kernel", "dataset", "eb", "fitted γ", "fitted C_thresh",
         "γ error", "ramp error@48MB"],
        rows,
        title="Fig. 11 — roofline fits (profiled on the calibrated simulator)",
    )
    save_table("fig11_roofline", text)
    benchmark(fit_one, "mgard-x", 1e-4)


def test_fig11_eb_shifts_plateau(benchmark):
    """Looser bounds raise the plateau (less entropy-coding work)."""
    _, loose = fit_one("mgard-x", 1e-2)
    _, tight = fit_one("mgard-x", 1e-6)
    assert loose.gamma > tight.gamma
    benchmark(fit_one, "zfp-x", 1e-2)


if __name__ == "__main__":
    test_fig11_fits_recover_phi(lambda f, *a, **k: f(*a, **k))
