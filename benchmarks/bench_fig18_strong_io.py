"""Fig. 18 — Strong-scaling parallel I/O on Frontier.

(a) 32 TB of E3SM data at eb=1e-4 (paper CR 7.9×): MGARD-X accelerates
write 2.4-1.8× and read 2.1-2.9×; MGARD-GPU *adds* 28-134 % overhead.
(b) 67 TB of XGC data at eb=1e-4 (paper CR 9.1×): MGARD-X 1.7-3.4×
write / 1.5-3.3× read; MGARD-GPU adds 32-227 % overhead.

Legacy tools reduce each time step as a separate call (the per-call
volume shrinks with node count → occupancy collapse); HPDR's pipeline
streams steps back-to-back.
"""

import pytest

from repro.bench.methods import method_at_scale
from repro.bench.report import print_table
from repro.io.parallel import strong_scaling_io
from repro.machine.topology import FRONTIER

from benchmarks.common import measured_ratio, save_table

TB = int(1e12)
NODES = [512, 1024, 2048]

#: per-call granularity of the legacy tool: E3SM writes monthly-slab
#: variables, XGC writes per-plane distribution slices (finer grain).
CASES = {
    "e3sm": dict(total=32 * TB, paper_ratio=7.9, steps=64,
                 paper_x="2.4-1.8x write", paper_g="+28-134% overhead"),
    "xgc": dict(total=67 * TB, paper_ratio=9.1, steps=256,
                paper_x="1.7-3.4x write", paper_g="+32-227% overhead"),
}


def run_case(dataset: str):
    case = CASES[dataset]
    measured = measured_ratio("mgard-x", dataset, 1e-4)
    # The paper's CR at 1e-4 on the production data; our synthetic
    # stand-in's measured ratio is reported alongside, and the paper's
    # ratio drives the simulation so volumes match Fig. 18.
    mx = method_at_scale("mgard-x", ratio=case["paper_ratio"], error_bound=1e-4)
    mg = method_at_scale("mgard-gpu", ratio=case["paper_ratio"], error_bound=1e-4)
    x = strong_scaling_io(FRONTIER, NODES, mx, case["total"],
                          steps_per_gpu=case["steps"])
    g = strong_scaling_io(FRONTIER, NODES, mg, case["total"],
                          steps_per_gpu=case["steps"])
    return x, g, measured


def test_fig18_strong_scaling(benchmark):
    rows = []
    for dataset, case in CASES.items():
        x, g, measured = run_case(dataset)
        for rx, rg in zip(x, g):
            overhead = 100 * (rg.write_time / rg.write_time_raw - 1)
            rows.append([
                dataset.upper(), rx.nodes,
                f"{case['paper_ratio']:.1f} (ours: {measured:.1f})",
                f"{rx.write_speedup:.2f}x", f"{rx.read_speedup:.2f}x",
                f"{overhead:+.0f}%",
            ])
            # Shape: MGARD-X accelerates everywhere; MGARD-GPU does not.
            assert rx.write_speedup > 1.5
            assert rx.read_speedup > 1.3
            assert rg.write_speedup < 1.0
    text = print_table(
        ["dataset", "nodes", "CR@1e-4 paper (ours)", "MGARD-X write",
         "MGARD-X read", "MGARD-GPU write overhead"],
        rows,
        title="Fig. 18 — Frontier strong-scaling I/O (paper: MGARD-X "
              "accelerates, MGARD-GPU adds 28-227% overhead)",
    )
    save_table("fig18_strong_io", text)
    benchmark(run_case, "e3sm")


def test_fig18_overhead_band(benchmark):
    """MGARD-GPU's overhead lands in (or near) the paper's band."""
    _, g, _ = run_case("e3sm")
    overheads = [100 * (r.write_time / r.write_time_raw - 1) for r in g]
    assert min(overheads) > 10
    assert max(overheads) < 250
    benchmark(run_case, "xgc")


if __name__ == "__main__":
    test_fig18_strong_scaling(lambda f, *a, **k: f(*a, **k))
