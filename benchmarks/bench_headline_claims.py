"""The paper's abstract in one table — every headline claim, measured.

1. "reducing memory transfer overhead to 2.3 % of the original"
2. "up to 3.5× faster throughput compared to existing solutions"
3. "up to 96 % of the theoretical speedup in multi-GPU settings"
4. "up to 103 TB/s reduction throughput [at 1,024 Frontier nodes]"
5. "up to 4× acceleration in parallel I/O performance"
"""

import pytest

from repro.bench.methods import method_at_scale
from repro.bench.report import print_table
from repro.core.pipeline import ReductionPipeline, chunk_sizes_for
from repro.io.parallel import (
    aggregate_reduction,
    node_reduction_time,
    strong_scaling_io,
)
from repro.machine.topology import FRONTIER, SUMMIT
from repro.perf.models import kernel_model

from benchmarks.common import fresh_device, measured_ratio, save_table

GB = int(1e9)
TB = 1e12


def claim_transfer_overhead():
    """Exposed copy time under the optimized pipeline vs no pipeline."""
    model = kernel_model("mgard-x", "V100", error_bound=1e-2)
    dev, _ = fresh_device("V100")
    opt = ReductionPipeline(dev, model).run_compression(
        chunk_sizes_for(4 * GB, 200_000_000), ratio=8
    )
    dev, _ = fresh_device("V100")
    naive = ReductionPipeline(dev, model, overlapped=False).run_compression(
        chunk_sizes_for(4 * GB, 2 * GB), ratio=8
    )
    exposed_opt = (1 - opt.hidden_copy_ratio)
    return exposed_opt  # naive exposes 100 % by construction


def claim_e2e_speedup():
    model = kernel_model("zfp-x", "RTX3090", error_bound=1e-2)
    dev, _ = fresh_device("RTX3090")
    naive = ReductionPipeline(
        dev, model, overlapped=False, context_cached=False
    ).run_compression(chunk_sizes_for(4 * GB, 2 * GB), ratio=4)
    dev, _ = fresh_device("RTX3090")
    opt = ReductionPipeline(dev, model).run_compression(
        chunk_sizes_for(4 * GB, 100_000_000), ratio=4
    )
    return opt.throughput / naive.throughput


def claim_multi_gpu():
    m = method_at_scale("mgard-x", ratio=measured_ratio("mgard-x", "nyx", 1e-2))
    t1 = node_reduction_time(SUMMIT, m, 2 * GB, num_gpus=1)
    effs = [
        t1 / node_reduction_time(SUMMIT, m, 2 * GB, num_gpus=g)
        for g in range(2, 7)
    ]
    return sum(effs) / len(effs)


def claim_frontier_throughput():
    m = method_at_scale("mgard-x", ratio=measured_ratio("mgard-x", "nyx", 1e-2))
    return aggregate_reduction(FRONTIER, 1024, m, 14 * 536_870_912) / TB


def claim_io_acceleration():
    m = method_at_scale("mgard-x", ratio=9.1, error_bound=1e-4)
    res = strong_scaling_io(FRONTIER, [2048], m, 67 * int(TB), steps_per_gpu=256)
    return res[0].write_speedup


def test_headline_claims(benchmark):
    exposed = claim_transfer_overhead()
    speedup = claim_e2e_speedup()
    eff = claim_multi_gpu()
    frontier = claim_frontier_throughput()
    io_acc = claim_io_acceleration()

    rows = [
        ["transfer overhead after pipelining", "2.3%", f"{100*exposed:.1f}%"],
        ["end-to-end speedup vs existing", "up to 3.5x", f"{speedup:.2f}x"],
        ["multi-GPU scaling efficiency", "96%", f"{100*eff:.0f}%"],
        ["Frontier aggregate @1,024 nodes", "103 TB/s", f"{frontier:.0f} TB/s"],
        ["parallel I/O acceleration", "up to 4x", f"{io_acc:.1f}x"],
    ]
    text = print_table(
        ["claim", "paper", "measured"],
        rows,
        title="Abstract headline claims — paper vs this reproduction",
    )
    save_table("headline_claims", text)

    assert exposed < 0.06
    assert speedup > 2.3
    assert eff == pytest.approx(0.96, abs=0.04)
    assert frontier == pytest.approx(103, rel=0.2)
    assert io_acc > 3
    benchmark(claim_multi_gpu)


if __name__ == "__main__":
    test_headline_claims(lambda f, *a, **k: f(*a, **k))
