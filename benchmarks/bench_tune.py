"""Auto-tuner benefit benchmark: learned configs vs hand-tuned defaults.

For every cell of the ``repro tune`` campaign matrix (dataset x codec,
plus one serve-level cell) this benchmark *learns* a configuration with
the real :class:`repro.tune.AutoTuner`, then **re-validates** it against
the default configuration with interleaved min-over-reps measurements:

* a cell whose search ends on the default config records a speedup of
  exactly ``1.0`` — no measurement noise can make "nothing learned"
  look like a win or a loss;
* a cell whose learned config cannot reproduce its win at validation
  time **falls back to the default** and records exactly ``1.0`` — the
  tuner's fail-open contract, exercised end to end;
* only a learned config that is byte-identical to the default *and*
  faster on the validation measurement records its measured speedup.

``scripts/perf_gate.py --tune-fresh`` pins the resulting record: every
cell >= ``--tune-min-speedup`` (default 1.0) and at least two cells
strictly above 1.0.

Writes ``BENCH_tune.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_tune.py            # full run
    PYTHONPATH=src python benchmarks/bench_tune.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_tune.json"

#: validation rounds: default and tuned are measured alternately this
#: many times and the per-config minimum wins (interleaving cancels
#: drift; the minimum rejects scheduler jitter).
VALIDATE_ROUNDS = 2


def _measure_codec(codec: str, data, config: dict, reps: int):
    """(best seconds, digest) for one codec configuration."""
    from repro.tune import build_codec, digest_bytes, measure_call

    comp = build_codec(codec, dict(config))
    try:
        blob = comp.compress(data)  # warm-up + identity evidence
        seconds, _ = measure_call(lambda: comp.compress(data), reps=reps)
        return seconds, digest_bytes(bytes(blob))
    finally:
        close = getattr(getattr(comp, "adapter", None), "close", None)
        if close is not None:
            close()


def _validate(measure, default_config: dict, tuned_config: dict):
    """Interleaved default-vs-tuned validation with byte re-checking.

    Returns ``(default_s, tuned_s, ok)`` where ``ok`` means the tuned
    config reproduced both its byte identity and its win.
    """
    best_default = best_tuned = float("inf")
    for _ in range(VALIDATE_ROUNDS):
        d_s, d_digest = measure(default_config)
        t_s, t_digest = measure(tuned_config)
        if t_digest != d_digest:
            return d_s, t_s, False  # never trust a byte-changing config
        best_default = min(best_default, d_s)
        best_tuned = min(best_tuned, t_s)
    return best_default, best_tuned, best_tuned < best_default


def _cell(default_s: float, tuned_s: float, config: dict,
          default_config: dict, fallback: bool) -> dict:
    learned = {k: v for k, v in sorted(config.items())
               if default_config.get(k) != v}
    if fallback or not learned:
        # Nothing learned (or the win did not reproduce): the tuner
        # hands out the defaults, so the speedup is 1.0 by construction
        # — recorded without a measurement, immune to noise.
        return {"default_s": default_s, "tuned_s": default_s,
                "speedup": 1.0, "config": {}, "fallback": bool(fallback)}
    return {"default_s": default_s, "tuned_s": tuned_s,
            "speedup": default_s / tuned_s, "config": learned,
            "fallback": False}


def bench_codec_cells(quick: bool, seed: int, budget: int, reps: int,
                      log) -> dict:
    from repro.tune import (
        AutoTuner,
        MATRIX_CELLS,
        TuningKey,
        codec_runner,
        knob_space_for,
        matrix_datasets,
    )

    datasets = matrix_datasets(quick=quick)
    cells: dict[str, dict] = {}
    for dataset_name, codec in MATRIX_CELLS:
        data = datasets[dataset_name]
        space = knob_space_for(codec)
        default_config = space.default_config()
        report = AutoTuner(space, seed=seed, budget=budget).tune(
            TuningKey.for_array(codec, data),
            codec_runner(codec, data, reps=reps),
        )
        name = f"{dataset_name}_{codec}"
        if not report.improved:
            cells[name] = _cell(report.default_cost, report.default_cost,
                                default_config, default_config, False)
            log(f"{name}: search kept the defaults (1.000x)")
            continue
        measure = lambda config: _measure_codec(codec, data, config, reps)
        default_s, tuned_s, ok = _validate(measure, default_config,
                                           dict(report.best_config))
        cells[name] = _cell(default_s, tuned_s, report.best_config,
                            default_config, fallback=not ok)
        log(f"{name}: {cells[name]['speedup']:.3f}x"
            + (" (fallback to defaults)" if not ok else ""))
    return cells


def bench_serve_cell(quick: bool, seed: int, budget: int, clients: int,
                     log) -> dict:
    from repro.tune import (
        AutoTuner,
        TuningKey,
        service_knob_space,
        service_runner,
    )

    space = service_knob_space()
    default_config = space.default_config()
    requests = 4 if quick else 8
    runner = service_runner(clients=clients, requests_per_client=requests)
    report = AutoTuner(space, seed=seed, budget=budget).tune(
        TuningKey.for_service(), runner)
    name = f"serve_c{clients}"
    if not report.improved:
        cell = _cell(report.default_cost, report.default_cost,
                     default_config, default_config, False)
        log(f"{name}: search kept the defaults (1.000x)")
        return {name: cell}

    def measure(config):
        m = runner(dict(config))
        return m.seconds, m.digest

    default_s, tuned_s, ok = _validate(measure, default_config,
                                       dict(report.best_config))
    cell = _cell(default_s, tuned_s, report.best_config, default_config,
                 fallback=not ok)
    log(f"{name}: {cell['speedup']:.3f}x"
        + (" (fallback to defaults)" if not ok else ""))
    return {name: cell}


def measure_all(quick: bool = False, seed: int = 0,
                log=lambda line: None) -> dict:
    budget = 6 if quick else 16
    serve_budget = 4 if quick else 8
    reps = 2 if quick else 3
    clients = 16 if quick else 32
    current = bench_codec_cells(quick, seed, budget, reps, log)
    current.update(bench_serve_cell(quick, seed, serve_budget, clients, log))
    return {
        "format": "bench-tune",
        "quick": quick,
        "seed": seed,
        "cores": os.cpu_count() or 1,
        "current": current,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small datasets, budgets and client counts")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = ap.parse_args(argv)

    if os.environ.get("HPDR_SAN", "") not in ("", "0"):
        print("bench_tune: SKIP — HPDR_SAN is set; sanitized timing "
              "measures the sanitizer, not the configs")
        return 0

    record = measure_all(quick=args.quick, seed=args.seed,
                         log=lambda line: print(f"  {line}", flush=True))
    args.out.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    winning = sum(1 for c in record["current"].values()
                  if c["speedup"] > 1.0)
    print(f"bench_tune: wrote {args.out} "
          f"({len(record['current'])} cells, {winning} strictly faster "
          f"than the defaults)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
