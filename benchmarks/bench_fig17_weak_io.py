"""Fig. 17 — Weak-scaling parallel I/O acceleration with NYX data.

Each GPU handles 7.5 GB; Summit scales to 512 nodes, Frontier to 1,024.
Paper (Summit): NVCOMP-LZ4 *slows I/O down* (ratio only 1.1×, pure
overhead: +83.5 %/+42.7 %); cuSZ 2.3-2.4× write with CR 20-31 (and
crashes above 64 nodes, so read was unmeasured); ZFP-CUDA 1.2-2.3×
write with CR 2.4-32; MGARD-GPU 3.3-5.1× write with CR 14-2379;
MGARD-X 6.8-15.3× write / 5.2-9.3× read at the same ratios.  On
Frontier MGARD-GPU reaches 1.8-2.1× and MGARD-X 6.0-8.5× write.

The paper's measured compression ratios on production 512³ NYX drive
the simulation (the scaled 48³ synthetic stand-in is markedly less
compressible; its measured ratio is reported alongside for reference —
see EXPERIMENTS.md).
"""

import pytest

from repro.bench.methods import CUSZ_MAX_NODES, EVAL_METHODS, method_at_scale
from repro.bench.report import print_table
from repro.io.parallel import weak_scaling_io
from repro.machine.topology import FRONTIER, SUMMIT

from benchmarks.common import measured_ratio, save_table

GB = int(1e9)
PER_GPU = int(7.5 * GB)
SUMMIT_NODES = [16, 64, 512]
FRONTIER_NODES = [64, 256, 1024]
EBS = [1e-2, 1e-4, 1e-6]

#: the paper's compression ratios on production NYX per error bound.
PAPER_RATIOS = {
    "mgard-x": {1e-2: 2379.0, 1e-4: 183.0, 1e-6: 14.0},
    "mgard-gpu": {1e-2: 2379.0, 1e-4: 183.0, 1e-6: 14.0},
    "cusz": {1e-2: 31.0, 1e-4: 20.0, 1e-6: 20.0},
    "zfp-cuda": {1e-2: 32.0, 1e-4: 8.8, 1e-6: 2.4},
    "nvcomp-lz4": {1e-2: 1.1, 1e-4: 1.1, 1e-6: 1.1},
}

SUMMIT_METHODS = ["nvcomp-lz4", "cusz", "zfp-cuda", "mgard-gpu", "mgard-x"]
FRONTIER_METHODS = ["mgard-gpu", "mgard-x"]


def sweep(system, node_counts, methods):
    rows = []
    speedups = {}
    for name in methods:
        for eb in EBS:
            ratio = PAPER_RATIOS[name][eb]
            ours = measured_ratio(name, "nyx", eb)
            m = method_at_scale(name, ratio=ratio, error_bound=eb)
            for res in weak_scaling_io(system, node_counts, m, PER_GPU):
                crashed = name == "cusz" and res.nodes > CUSZ_MAX_NODES
                rows.append([
                    EVAL_METHODS[name].name, f"{eb:.0e}", res.nodes,
                    f"{ratio:.1f} ({ours:.1f})",
                    f"{res.write_speedup:.2f}x",
                    "n/a (crash)" if crashed else f"{res.read_speedup:.2f}x",
                ])
                speedups.setdefault(name, []).append(
                    (res.write_speedup, res.read_speedup)
                )
    return rows, speedups


def test_fig17_summit(benchmark):
    rows, speedups = sweep(SUMMIT, SUMMIT_NODES, SUMMIT_METHODS)
    text = print_table(
        ["method", "eb", "nodes", "CR paper (ours)", "write speedup",
         "read speedup"],
        rows,
        title="Fig. 17a — Summit weak-scaling I/O (paper: MGARD-X "
              "6.8-15.3x write, LZ4 pure overhead)",
    )
    save_table("fig17_summit", text)

    # Shape assertions.
    lz4_writes = [w for w, _ in speedups["nvcomp-lz4"]]
    assert max(lz4_writes) < 1.05            # LZ4 cannot accelerate
    mgx = speedups["mgard-x"]
    assert 6 < max(w for w, _ in mgx) < 18   # paper band 6.8-15.3
    assert max(r for _, r in mgx) > 4        # paper band 5.2-9.3
    mgg_writes = [w for w, _ in speedups["mgard-gpu"]]
    assert max(w for w, _ in mgx) > max(mgg_writes)
    csz_writes = [w for w, _ in speedups["cusz"]]
    assert 1.2 < max(csz_writes) < max(w for w, _ in mgx)
    benchmark(sweep, SUMMIT, [64], ["mgard-x"])


def test_fig17_frontier(benchmark):
    rows, speedups = sweep(FRONTIER, FRONTIER_NODES, FRONTIER_METHODS)
    text = print_table(
        ["method", "eb", "nodes", "CR paper (ours)", "write speedup",
         "read speedup"],
        rows,
        title="Fig. 17b — Frontier weak-scaling I/O (paper: MGARD-X "
              "6.0-8.5x write, MGARD-GPU 1.8-2.1x)",
    )
    save_table("fig17_frontier", text)
    mgx = [w for w, _ in speedups["mgard-x"]]
    mgg = [w for w, _ in speedups["mgard-gpu"]]
    assert max(mgx) > 4
    assert max(mgg) < max(mgx)
    assert max(mgg) > 1.0
    benchmark(sweep, FRONTIER, [256], ["mgard-gpu"])


def test_fig17_read_acceleration_below_write(benchmark):
    """Reads gain less than writes (reconstruction is the slower leg)."""
    m = method_at_scale("mgard-x", ratio=PAPER_RATIOS["mgard-x"][1e-2])
    res = weak_scaling_io(SUMMIT, [512], m, PER_GPU)[0]
    assert res.read_speedup < res.write_speedup
    benchmark(weak_scaling_io, SUMMIT, [512], m, PER_GPU)


if __name__ == "__main__":
    test_fig17_summit(lambda f, *a, **k: f(*a, **k))
    test_fig17_frontier(lambda f, *a, **k: f(*a, **k))
