"""HPDR-Cluster scaling benchmark (real TCP front door, real codecs).

Measures cluster **goodput** — completed round-trips per second through
the consistent-hash router's TCP front door — at 1/2/4/8 shards under a
fixed offered load and a fixed *per-shard* admission slice.  The
workload is the mixed-spec roster (16 distinct route keys), so
consistent hashing spreads it across every shard; the payload and the
closed-loop client count are identical in every cell.

What the curve shows: with few shards the offered load exceeds the
available admission capacity, so a constant fraction of clients sits in
the reject/back-off/resend loop — every rejected attempt still uploads
its full payload and burns framing CPU in both client and router before
being shed.  More shards mean more admission capacity in aggregate, the
churn disappears, and goodput rises.  On multi-core runners the shards'
event loops and codec work also spread across cores, adding genuine
parallel speedup on top; the committed record carries ``cores`` so a
reader can tell which regime produced it.  ``scripts/perf_gate.py``
pins ``s4_over_s1`` at >= ``--cluster-scaling-min`` (default 1.6).

Each cell is measured ``--reps`` times and the median-goodput rep is
kept, and every cell must finish with zero errors and zero mismatches.

``--soak SECONDS`` switches to the nightly soak: one long mixed-codec
run on 4 shards with a shard death injected a third of the way in,
archiving the failover-window Chrome trace, the Prometheus metrics
dump, and a wave-by-wave report into ``--outdir``.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py           # full run
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke   # CI smoke
    PYTHONPATH=src python benchmarks/bench_cluster.py --soak 300 --outdir soak/
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_cluster.json"

SHARD_CELLS = (1, 2, 4, 8)
SHAPE = (64, 64)
CLIENTS = 48
PER_SHARD_CAP = 10

#: soak parameters (the nightly lane).
SOAK_SHARDS = 4
SOAK_CLIENTS = 16
SOAK_WAVE_REQUESTS = 25


def _cluster_config(shards: int, cap: int):
    from repro.cluster import ClusterConfig
    from repro.serve import BatchLimits, ServiceConfig

    return ClusterConfig(
        shards=shards,
        backend="task",
        service=ServiceConfig(
            limits=BatchLimits(max_batch=16, max_latency_s=0.002),
            max_pending=256,
        ),
        shard_max_pending=cap,
    )


async def _blast_front_door(cluster, specs, payloads, *, clients: int,
                            requests: int, verify: bool = False) -> dict:
    """One closed-loop blast through a TCP front door on the cluster."""
    from repro.serve import BlastClient, run_blast, serve_tcp

    server = await serve_tcp(cluster, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    try:
        return await run_blast(
            lambda i: BlastClient.connect(host, port),
            clients=clients,
            requests_per_client=requests,
            specs=specs,
            payloads=payloads,
            roundtrip=True,
            verify=verify,
        )
    finally:
        server.close()
        await server.wait_closed()


def _measure_once(shards: int, *, clients: int, requests: int,
                  cap: int) -> dict:
    from repro.cluster import ClusterService, mixed_specs
    from repro.serve import default_payloads

    specs = mixed_specs()
    payloads = default_payloads(specs, shape=SHAPE, seed=11)

    async def run() -> dict:
        async with ClusterService(_cluster_config(shards, cap)) as cluster:
            # Warm-up: contexts, codec caches, connection pools.
            await _blast_front_door(cluster, specs, payloads,
                                    clients=clients, requests=2)
            report = await _blast_front_door(cluster, specs, payloads,
                                             clients=clients,
                                             requests=requests)
            snap = cluster.stats.snapshot()
        report["cluster_rejected"] = snap["rejected"]
        report["per_shard"] = snap["per_shard"]
        return report

    report = asyncio.run(run())
    assert report["errors"] == 0, f"bench cell errored: {report}"
    assert report["mismatches"] == 0, f"bench cell mismatched: {report}"
    return {
        "shards": shards,
        "rps": report["rps"],
        "p50_ms": report["p50_ms"],
        "p95_ms": report["p95_ms"],
        "p99_ms": report["p99_ms"],
        "completed": report["completed"],
        "rejected_attempts": report["rejected"],
        "per_shard": report["per_shard"],
    }


def measure_cell(shards: int, *, clients: int, requests: int, cap: int,
                 reps: int = 1) -> dict:
    """One cell: ``reps`` measurements, median-goodput rep kept."""
    reports = [
        _measure_once(shards, clients=clients, requests=requests, cap=cap)
        for _ in range(max(1, reps))
    ]
    reports.sort(key=lambda r: r["rps"])
    return reports[len(reports) // 2]


def measure_curve(*, clients: int, requests: int, cap: int,
                  reps: int) -> dict:
    cells: dict[str, dict] = {}
    for shards in SHARD_CELLS:
        name = f"s{shards}"
        cells[name] = measure_cell(shards, clients=clients,
                                   requests=requests, cap=cap, reps=reps)
        print(f"  {name:<4} {cells[name]['rps']:>9.1f} req/s  "
              f"p50={cells[name]['p50_ms']:.2f}ms "
              f"p95={cells[name]['p95_ms']:.2f}ms  "
              f"rejected_attempts={cells[name]['rejected_attempts']}",
              flush=True)
    scaling = {
        f"s{n}_over_s1": round(cells[f"s{n}"]["rps"] / cells["s1"]["rps"], 2)
        for n in SHARD_CELLS if n != 1
    }
    return {
        "schema": 1,
        "kind": "cluster_scaling",
        "cores": os.cpu_count(),
        "backend": "task",
        "workload": "mixed16",
        "shape": list(SHAPE),
        "dtype": "float32",
        "clients": clients,
        "requests_per_client": requests,
        "per_shard_cap": cap,
        "reps": reps,
        "current": cells,
        "scaling": scaling,
    }


# ---------------------------------------------------------------------------
def run_soak(seconds: float, outdir: pathlib.Path, *, shards: int,
             backend: str) -> int:
    """The nightly soak: long mixed run, one injected shard death.

    Runs wave after wave of closed-loop blasts against one long-lived
    cluster for ``seconds``; a third of the way in, the shard owning
    the first spec's traffic is killed mid-wave.  Tracing covers the
    kill wave only (the interesting window — a full-length trace would
    dwarf the artifact budget), and the final Prometheus dump carries
    the cumulative counters.  Exits non-zero on any error, mismatch, or
    missing adoption.
    """
    import repro.trace as trace
    from repro.cluster import ClusterConfig, ClusterService, mixed_specs
    from repro.serve import (
        BatchLimits,
        ServiceConfig,
        default_payloads,
    )

    outdir.mkdir(parents=True, exist_ok=True)
    specs = mixed_specs()
    payloads = default_payloads(specs, shape=SHAPE, seed=11)
    cfg = ClusterConfig(
        shards=shards,
        backend=backend,
        service=ServiceConfig(
            limits=BatchLimits(max_batch=16, max_latency_s=0.002),
            max_pending=256,
        ),
    )

    async def run() -> dict:
        start = time.monotonic()
        kill_at = start + seconds / 3.0
        killed: dict = {}
        waves = []
        async with ClusterService(cfg) as cluster:
            while time.monotonic() - start < seconds:
                inject = not killed and time.monotonic() >= kill_at
                kill_task = None
                if inject:
                    target = cluster.owner("compress", specs[0],
                                           payloads[specs[0]])
                    trace.enable(clear=True)

                    async def killer() -> None:
                        await asyncio.sleep(0.2)
                        print(f"  killing shard {target} mid-wave",
                              flush=True)
                        cluster.kill_shard(target)

                    kill_task = asyncio.get_running_loop().create_task(
                        killer()
                    )
                try:
                    report = await _blast_front_door(
                        cluster, specs, payloads,
                        clients=SOAK_CLIENTS,
                        requests=SOAK_WAVE_REQUESTS,
                        verify=True,
                    )
                finally:
                    if kill_task is not None:
                        kill_task.cancel()
                        try:
                            await kill_task
                        except asyncio.CancelledError:
                            pass
                if inject:
                    path = trace.export_chrome(
                        str(outdir / "failover_trace.json")
                    )
                    trace.disable()
                    killed = {
                        "shard": target,
                        "wave": len(waves),
                        "trace": str(path),
                        "spans": len(trace.events()),
                    }
                waves.append({
                    "completed": report["completed"],
                    "rps": report["rps"],
                    "p95_ms": report["p95_ms"],
                    "rejected": report["rejected"],
                    "errors": report["errors"],
                    "mismatches": report["mismatches"],
                })
                print(f"  wave {len(waves):>3}: {report['rps']:>8.1f} req/s "
                      f"p95={report['p95_ms']:.2f}ms "
                      f"errors={report['errors']} "
                      f"mismatches={report['mismatches']}", flush=True)
            snap = cluster.stats.snapshot()
        (outdir / "metrics.prom").write_text(trace.render_prometheus())
        return {
            "seconds": round(time.monotonic() - start, 1),
            "shards": shards,
            "backend": backend,
            "workload": "mixed16",
            "waves": len(waves),
            "kill": killed,
            "totals": {
                "completed": sum(w["completed"] for w in waves),
                "errors": sum(w["errors"] for w in waves),
                "mismatches": sum(w["mismatches"] for w in waves),
            },
            "cluster": snap,
            "wave_reports": waves,
        }

    report = asyncio.run(run())
    (outdir / "soak_report.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    totals = report["totals"]
    ok = (
        totals["errors"] == 0
        and totals["mismatches"] == 0
        and report["cluster"]["adoptions"] == 1
        and bool(report["kill"])
    )
    print(f"\nsoak: {report['waves']} waves, "
          f"{totals['completed']} round-trips, "
          f"errors={totals['errors']} mismatches={totals['mismatches']} "
          f"failovers={report['cluster']['failovers']} "
          f"adoptions={report['cluster']['adoptions']} "
          f"-> {'OK' if ok else 'FAIL'}")
    print(f"artifacts in {outdir}/")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="fewer requests per client, 1 rep (fast CI smoke)")
    ap.add_argument("--requests", type=int, default=20,
                    help="requests per client per cell (default 20)")
    ap.add_argument("--clients", type=int, default=CLIENTS,
                    help=f"closed-loop clients, fixed across cells "
                         f"(default {CLIENTS})")
    ap.add_argument("--cap", type=int, default=PER_SHARD_CAP,
                    help=f"per-shard admission slice "
                         f"(default {PER_SHARD_CAP})")
    ap.add_argument("--reps", type=int, default=3,
                    help="repetitions per cell, median kept (default 3)")
    ap.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                    help=f"output JSON path (default {DEFAULT_OUT})")
    ap.add_argument("--soak", type=float, default=None, metavar="SECONDS",
                    help="run the nightly soak instead of the scaling grid")
    ap.add_argument("--outdir", type=pathlib.Path,
                    default=REPO_ROOT / "soak_out",
                    help="soak artifact directory")
    ap.add_argument("--backend", default="task",
                    choices=["task", "process"],
                    help="(soak) shard backend")
    args = ap.parse_args(argv)

    if args.soak is not None:
        return run_soak(args.soak, args.outdir, shards=SOAK_SHARDS,
                        backend=args.backend)

    requests = 6 if args.smoke else args.requests
    reps = 1 if args.smoke else args.reps
    print(f"cluster curve: shards {SHARD_CELLS}, {args.clients} clients, "
          f"per-shard cap {args.cap}, mixed16 {SHAPE} float32 round-trips, "
          f"{requests} requests/client, median of {reps} "
          f"({os.cpu_count()} cores)\n", flush=True)
    record = measure_curve(clients=args.clients, requests=requests,
                           cap=args.cap, reps=reps)
    args.out.write_text(json.dumps(record, indent=2) + "\n")

    print("\nscaling (goodput over 1 shard):")
    for name, s in sorted(record["scaling"].items()):
        print(f"  {name:<12} {s:.2f}x")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
