"""Fig. 13 — End-to-end throughput: None vs Fixed vs Adaptive pipelines.

Paper: the fixed-size pipeline (100 MB chunks) reaches up to 2.1×
(MGARD-X) and 3.5× (ZFP-X) over the non-overlapping baseline; the
adaptive pipeline adds up to 1.3×/1.6× over fixed for compute-bound
kernels.
"""

from repro.bench.report import print_table
from repro.core.adaptive import run_adaptive_compression
from repro.core.pipeline import ReductionPipeline, chunk_sizes_for
from repro.perf.models import kernel_model

from benchmarks.common import fresh_device, measured_ratio, save_table

GB = int(1e9)
MB = int(1e6)
TOTAL = int(4.3 * GB)


def sweep(kernel: str, eb: float, processor: str = "RTX3090"):
    """Single-GPU pipeline study; the paper runs this on the PCIe
    workstation, where exposed transfers hurt the most."""
    mkey = {"mgard-x": "mgard-x", "zfp-x": "zfp-x"}[kernel]
    ratio = measured_ratio(mkey, "nyx", eb)
    model = kernel_model(kernel, processor, error_bound=eb)

    dev, _ = fresh_device(processor)
    none = ReductionPipeline(
        dev, model, overlapped=False, context_cached=False
    ).run_compression(chunk_sizes_for(TOTAL, 2 * GB), ratio=ratio)

    dev, _ = fresh_device(processor)
    fixed = ReductionPipeline(dev, model).run_compression(
        chunk_sizes_for(TOTAL, 100 * MB), ratio=ratio
    )

    dev, _ = fresh_device(processor)
    adaptive = run_adaptive_compression(dev, model, TOTAL, ratio=ratio)
    return none, fixed, adaptive


def test_fig13_pipeline_speedups(benchmark):
    rows = []
    for kernel, paper_fixed, paper_adapt in [
        ("mgard-x", "≤2.1x", "≤1.3x"),
        ("zfp-x", "≤3.5x", "≤1.6x"),
    ]:
        for eb in (1e-2, 1e-4):
            none, fixed, adaptive = sweep(kernel, eb)
            s_fixed = fixed.throughput / none.throughput
            s_adapt = adaptive.throughput / fixed.throughput
            rows.append([
                kernel, f"{eb:.0e}",
                f"{none.throughput/1e9:.1f}",
                f"{fixed.throughput/1e9:.1f}",
                f"{adaptive.throughput/1e9:.1f}",
                f"{s_fixed:.2f}x ({paper_fixed})",
                f"{s_adapt:.2f}x ({paper_adapt})",
            ])
            assert s_fixed > 1.7
            assert s_adapt >= 0.97
    text = print_table(
        ["kernel", "eb", "none GB/s", "fixed GB/s", "adaptive GB/s",
         "fixed/none (paper)", "adaptive/fixed (paper)"],
        rows,
        title="Fig. 13 — end-to-end pipeline throughput, 4.3 GB on RTX3090",
    )
    save_table("fig13_pipeline", text)
    benchmark(sweep, "mgard-x", 1e-2)


def test_fig13_mgard_adaptive_gains(benchmark):
    """Compute-bound MGARD benefits from adaptive chunk growth."""
    none, fixed, adaptive = sweep("mgard-x", 1e-2)
    assert adaptive.throughput > 1.1 * fixed.throughput
    benchmark(sweep, "zfp-x", 1e-2)


def test_fig13_reconstruction_direction(benchmark):
    """The reconstruction pipeline shows the same ordering (the paper
    reports both directions in Fig. 13)."""
    from repro.core.adaptive import run_adaptive_reconstruction

    model = kernel_model("mgard-x", "RTX3090", error_bound=1e-2, decompress=True)
    ratio = measured_ratio("mgard-x", "nyx", 1e-2)
    dev, _ = fresh_device("RTX3090")
    none = ReductionPipeline(
        dev, model, overlapped=False, context_cached=False
    ).run_reconstruction(chunk_sizes_for(TOTAL, 2 * GB), ratio=ratio)
    dev, _ = fresh_device("RTX3090")
    fixed = ReductionPipeline(dev, model).run_reconstruction(
        chunk_sizes_for(TOTAL, 100 * MB), ratio=ratio
    )
    dev, _ = fresh_device("RTX3090")
    adaptive = run_adaptive_reconstruction(dev, model, TOTAL, ratio=ratio)
    assert fixed.throughput > 1.4 * none.throughput
    assert adaptive.throughput >= 0.95 * fixed.throughput
    benchmark(lambda: None)


if __name__ == "__main__":
    test_fig13_pipeline_speedups(lambda f, *a, **k: f(*a, **k))
