"""Fig. 14 — Compression ratio under the three pipeline settings.

Paper: fixed 100 MB chunking cuts MGARD's ratio by 5-67 % (short chunks
lose cross-chunk correlation); the adaptive pipeline, whose chunks grow
large quickly, lands within 1 % of the non-pipelined ratio; ZFP is
essentially unaffected (4^d blocks are far smaller than any chunk).

This bench performs *real* compression: the dataset is split along the
leading axis into chunks proportional to the paper's 100 MB / 4.3 GB
geometry, each chunk forming an independent stream.
"""

import numpy as np

from repro import Config, ErrorMode, MGARDX, ZFPX, rate_for_error_bound
from repro.bench.report import print_table
from repro.core.adaptive import adaptive_schedule
from repro.core.pipeline import chunked_compress
from repro.perf.models import kernel_model

from benchmarks.common import bench_dataset, save_table

GB = int(1e9)
EBS = [1e-2, 1e-4, 1e-6]


def _row_chunks_like_adaptive(n_rows: int) -> list[int]:
    """Scale the adaptive byte schedule for 4.3 GB onto ``n_rows``."""
    model = kernel_model("mgard-x", "V100", error_bound=1e-2)
    sizes = adaptive_schedule(int(4.3 * GB), model)
    fracs = np.array(sizes, dtype=float) / sum(sizes)
    # Clamp to one ZFP block (4 rows) per chunk: at paper scale even the
    # small leading chunk is tens of MB of full-3-D data.
    rows = np.maximum(4, np.round(fracs * n_rows).astype(int))
    # trim to exactly n_rows
    while rows.sum() > n_rows:
        rows[np.argmax(rows)] -= 1
    out = []
    remaining = n_rows
    for r in rows:
        if remaining <= 0:
            break
        take = min(int(r), remaining)
        out.append(take)
        remaining -= take
    if remaining:
        out.append(remaining)
    return out


def _ratio_chunked(comp_factory, data, row_chunks: list[int]) -> float:
    total = 0
    start = 0
    for rows in row_chunks:
        piece = data[start : start + rows]
        total += len(comp_factory().compress(piece))
        start += rows
    return data.nbytes / total


def measure(eb: float):
    data = bench_dataset("nyx")
    n = data.shape[0]
    # Paper geometry: 100 MB chunks of 4.3 GB ≈ 43 chunks.  At bench
    # scale that would leave 1-row slabs, whose 4^d padding artifacts do
    # not exist at paper scale, so the floor is one ZFP block (4 rows).
    fixed_rows = max(4, n // 43)
    fixed_chunks = [fixed_rows] * (n // fixed_rows)
    if n % fixed_rows:
        fixed_chunks.append(n % fixed_rows)
    adaptive_chunks = _row_chunks_like_adaptive(n)

    cfg = Config(error_bound=eb, error_mode=ErrorMode.REL)
    mg = lambda: MGARDX(cfg)
    zf = lambda: ZFPX(rate=rate_for_error_bound(eb, np.float32, 3))

    out = {}
    for name, factory in (("MGARD", mg), ("ZFP", zf)):
        whole = data.nbytes / len(factory().compress(data))
        fixed = _ratio_chunked(factory, data, fixed_chunks)
        adapt = _ratio_chunked(factory, data, adaptive_chunks)
        out[name] = (whole, fixed, adapt)
    return out


def test_fig14_pipeline_vs_ratio(benchmark):
    rows = []
    for eb in EBS:
        res = measure(eb)
        for name, (whole, fixed, adapt) in res.items():
            fixed_loss = 100 * (1 - fixed / whole)
            adapt_loss = 100 * (1 - adapt / whole)
            rows.append([
                name, f"{eb:.0e}", f"{whole:.2f}", f"{fixed:.2f}",
                f"{adapt:.2f}", f"{fixed_loss:.1f}%", f"{adapt_loss:.1f}%",
            ])
            if name == "MGARD":
                # Paper: 5-67% ratio loss from fixed chunking; adaptive
                # within ~1%.  At bench scale (48³ instead of 4.3 GB) a
                # chunk is tens of rows, so adaptive still pays a modest
                # boundary penalty; the ordering is what must hold.
                assert fixed < whole
                assert adapt_loss < fixed_loss + 1e-9
                assert adapt_loss < 15.0
            else:
                # ZFP: blockwise codec — chunking is ~free.
                assert abs(fixed_loss) < 6.0
    text = print_table(
        ["kernel", "eb", "CR none", "CR fixed", "CR adaptive",
         "fixed loss (paper 5-67% MGARD)", "adaptive loss (paper <1%)"],
        rows,
        title="Fig. 14 — real compression ratios under pipeline chunking",
    )
    save_table("fig14_ratio", text)
    benchmark(measure, 1e-2)


if __name__ == "__main__":
    test_fig14_pipeline_vs_ratio(lambda f, *a, **k: f(*a, **k))
