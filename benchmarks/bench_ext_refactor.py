"""Extension bench — progressive refactoring (paper refs [23-25]).

Not a paper figure: quantifies the bytes-vs-accuracy trade-off that
motivates multilevel reduction in the paper's introduction.  For each
dataset, retrieval error should fall by orders of magnitude as substream
prefixes grow, with coarse prefixes touching a small fraction of bytes.
"""

import numpy as np

from repro import MGARDRefactor
from repro.bench.report import print_table

from benchmarks.common import bench_dataset, save_table


def curve(dataset: str):
    data = bench_dataset(dataset).astype(np.float64)
    r = MGARDRefactor(precision=1e-7)
    ref = r.refactor(data)
    rows = []
    vr = float(np.ptp(data))
    for k in range(1, ref.num_levels + 1):
        approx = r.retrieve(ref, num_levels=k)
        err = float(np.max(np.abs(approx - data))) / vr
        rows.append((k, ref.prefix_bytes(k) / ref.total_bytes, err))
    return rows


def test_refactor_progressive_tradeoff(benchmark):
    table = []
    for dataset in ("nyx", "e3sm"):
        rows = curve(dataset)
        for k, frac, err in rows:
            table.append([dataset.upper(), k, f"{100*frac:.1f}%", f"{err:.2e}"])
        # Orders-of-magnitude error reduction from first to last prefix.
        assert rows[-1][2] < 1e-2 * rows[0][2]
        # A coarse prefix touches a minority of bytes.
        assert rows[0][1] < 0.5
        # Error essentially monotone along the prefix chain.
        errs = [r[2] for r in rows]
        assert all(b <= a * 1.2 for a, b in zip(errs, errs[1:]))
    text = print_table(
        ["dataset", "levels retrieved", "bytes touched", "rel. max error"],
        table,
        title="Extension — progressive retrieval bytes-vs-error",
    )
    save_table("ext_refactor", text)
    benchmark(curve, "nyx")


if __name__ == "__main__":
    test_refactor_progressive_tradeoff(lambda f, *a, **k: f(*a, **k))
