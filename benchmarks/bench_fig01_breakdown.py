"""Fig. 1 — Time breakdown of reducing 500 MB NYX on a V100.

The paper profiles four release GPU pipelines (MGARD-GPU, cuSZ,
ZFP-CUDA, NVCOMP-LZ4) at eb=1e-2 with application and I/O buffers on the
host, and finds 34-89 % of end-to-end time spent on memory operations
(H2D/D2H, staging copies, allocations).  This bench reproduces the
breakdown with the calibrated simulator.
"""

import pytest

from repro.bench.methods import EVAL_METHODS
from repro.bench.report import print_table
from repro.core.pipeline import ReductionPipeline, chunk_sizes_for
from repro.machine.engine import TaskKind
from repro.perf.models import kernel_model

from benchmarks.common import fresh_device, measured_ratio, save_table

NYX_BYTES = 500_000_000
MEM_KINDS = (TaskKind.H2D, TaskKind.D2H,
             TaskKind.ALLOC, TaskKind.FREE,
             TaskKind.SERIALIZE, TaskKind.DESERIALIZE)

BASELINES = ["mgard-gpu", "cusz", "zfp-cuda", "nvcomp-lz4"]


def run_breakdown(method_name: str, decompress: bool = False):
    method = EVAL_METHODS[method_name]
    ratio = measured_ratio(method_name, "nyx", 1e-2)
    dev, sim = fresh_device("V100")
    model = kernel_model(method.kernel, "V100", error_bound=1e-2,
                         decompress=decompress)
    pipe = ReductionPipeline(
        dev, model,
        overlapped=False,
        context_cached=False,
        allocs_per_call=method.allocs_per_call,
        call_overhead_s=method.call_overhead_s,
    )
    sizes = chunk_sizes_for(NYX_BYTES, method.chunk_bytes)
    if decompress:
        res = pipe.run_reconstruction(sizes, ratio=ratio)
    else:
        res = pipe.run_compression(sizes, ratio=ratio)
    # Host staging copies count as memory ops; host-side per-call
    # compute (e.g. cuSZ's CPU codebook) counts toward compute/other.
    mem_t = res.trace.total_time(*MEM_KINDS)
    mem_t += sum(
        t.end - t.start
        for t in res.trace.of_kind(TaskKind.HOST)
        if "stage" in t.name
    )
    comp_t = res.makespan - mem_t
    return mem_t, comp_t, res.makespan


def test_fig01_memory_ops_dominate(benchmark):
    rows = []
    for name in BASELINES:
        for direction in ("compress", "decompress"):
            mem, comp, total = run_breakdown(name, direction == "decompress")
            frac = mem / (mem + comp)
            rows.append([EVAL_METHODS[name].name, direction,
                         f"{mem*1e3:.1f} ms", f"{comp*1e3:.1f} ms",
                         f"{100*frac:.0f}%"])
            # Paper: 34-89 % of time in memory operations.
            assert 0.30 <= frac <= 0.93, (name, direction, frac)
    text = print_table(
        ["pipeline", "direction", "memory ops", "compute", "mem fraction"],
        rows,
        title="Fig. 1 — 500 MB NYX on V100, eb=1e-2 (paper: 34-89% memory ops)",
    )
    save_table("fig01_breakdown", text)
    benchmark(run_breakdown, "mgard-gpu")


def test_fig01_hpdr_shrinks_memory_share(benchmark):
    """HPDR's overlapped pipeline hides the copies the baselines expose:
    exposed copy time drops to a few percent (paper headline: 2.3%)."""
    ratio = measured_ratio("mgard-x", "nyx", 1e-2)
    dev, sim = fresh_device("V100")
    model = kernel_model("mgard-x", "V100", error_bound=1e-2)
    pipe = ReductionPipeline(dev, model)
    res = pipe.run_compression(chunk_sizes_for(NYX_BYTES * 8, 100_000_000),
                               ratio=ratio)
    exposed = 1.0 - res.hidden_copy_ratio
    text = print_table(
        ["pipeline", "exposed copy time"],
        [["MGARD-X (HPDR)", f"{100*exposed:.1f}%"]],
        title="Fig. 1 follow-up — HPDR transfer overhead (paper: 2.3%)",
    )
    save_table("fig01_hpdr_overhead", text)
    assert exposed < 0.1
    benchmark(pipe.run_compression, chunk_sizes_for(NYX_BYTES, 100_000_000), 10.0)


def test_fig01_stage_level_breakdown(benchmark):
    """Stage-resolved compute profile (decompose/quantize/encode...) for
    the MGARD pipeline, via the stage-split DAG."""
    ratio = measured_ratio("mgard-gpu", "nyx", 1e-2)
    dev, _ = fresh_device("V100")
    model = kernel_model("mgard-gpu", "V100", error_bound=1e-2)
    pipe = ReductionPipeline(dev, model, overlapped=False,
                             context_cached=False, stage_split=True)
    res = pipe.run_compression(
        chunk_sizes_for(NYX_BYTES, 500_000_000), ratio=ratio
    )
    total_compute = res.trace.total_time(TaskKind.COMPUTE)
    rows = []
    for t in res.trace.of_kind(TaskKind.COMPUTE):
        stage = t.name.rsplit(".", 1)[-1]
        rows.append((stage, t.end - t.start))
    agg = {}
    for stage, dt in rows:
        agg[stage] = agg.get(stage, 0.0) + dt
    table = [[stage, f"{1e3*dt:.1f} ms", f"{100*dt/total_compute:.0f}%"]
             for stage, dt in agg.items()]
    text = print_table(
        ["stage", "time", "share of compute"],
        table,
        title="Fig. 1 detail — MGARD compute stages (500 MB NYX, V100)",
    )
    save_table("fig01_stages", text)
    assert agg["decompose"] > agg["quantize"]
    benchmark(pipe.run_compression, chunk_sizes_for(NYX_BYTES, 500_000_000), ratio)


if __name__ == "__main__":
    test_fig01_memory_ops_dominate(lambda f, *a, **k: f(*a, **k))
    test_fig01_hpdr_shrinks_memory_share(lambda f, *a, **k: f(*a, **k))
