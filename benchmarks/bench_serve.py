"""HPDR-Serve throughput/latency benchmark (real service, real codecs).

Drives the in-process :class:`repro.serve.ReductionService` with the
same closed-loop blast harness as ``repro blast`` and records throughput
plus p50/p95/p99 latency for every cell of the grid

    clients in {1, 8, 64}  x  max_batch in {1, 8, 64}

on zfp-x (rate 8) round-trips of a (16, 16) float32 payload.
``max_batch=1`` is the single-shot baseline: every request gets its own
flush and its own GEM launch.  The headline number is ``speedup_c64`` —
micro-batched throughput over single-shot at 64 concurrent clients —
which the repo pins at >= 2x (see scripts/perf_gate.py).

Writes ``BENCH_serve.json`` at the repo root, the record the perf gate
compares CI smoke runs against.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py           # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke   # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"

CLIENTS = (1, 8, 64)
BATCHES = (1, 8, 64)
SHAPE = (16, 16)


def measure_cell(clients: int, max_batch: int,
                 requests_per_client: int) -> dict:
    """One grid cell: fresh service, warm-up blast, timed blast."""
    from repro.serve import (
        BatchLimits,
        CodecSpec,
        ReductionService,
        ServiceClient,
        ServiceConfig,
        default_payloads,
        run_blast,
    )

    spec = CodecSpec("zfp-x", rate=8.0)
    payloads = default_payloads([spec], shape=SHAPE)

    async def run():
        cfg = ServiceConfig(
            limits=BatchLimits(max_batch=max_batch, max_latency_s=0.002),
            max_pending=max(256, 4 * clients),
        )
        async with ReductionService(cfg) as svc:
            async def client(_i):
                return ServiceClient(svc)

            # Warm-up: create contexts, ramp the batch-staging scratch to
            # its high-water mark, prime the codec caches.
            await run_blast(client, clients=clients, requests_per_client=2,
                            specs=[spec], payloads=payloads)
            report = await run_blast(
                client, clients=clients,
                requests_per_client=requests_per_client,
                specs=[spec], payloads=payloads,
            )
            report["mean_batch_size"] = round(svc.stats.mean_batch_size, 2)
        return report

    report = asyncio.run(run())
    assert report["errors"] == 0, f"bench cell errored: {report}"
    return report


def measure_grid(requests_per_client: int) -> dict:
    """Full record: every cell plus the headline speedups."""
    cells = {}
    for clients in CLIENTS:
        for max_batch in BATCHES:
            name = f"c{clients}_b{max_batch}"
            cells[name] = measure_cell(clients, max_batch,
                                       requests_per_client)
            print(f"  {name:<10} {cells[name]['rps']:>9.1f} req/s  "
                  f"p50={cells[name]['p50_ms']:.3f}ms "
                  f"p95={cells[name]['p95_ms']:.3f}ms "
                  f"p99={cells[name]['p99_ms']:.3f}ms "
                  f"(mean batch {cells[name]['mean_batch_size']})",
                  flush=True)
    speedup = {
        f"b{b}": round(cells[f"c64_b{b}"]["rps"] / cells["c64_b1"]["rps"], 2)
        for b in BATCHES if b != 1
    }
    return {
        "schema": 1,
        "codec": "zfp-x",
        "rate": 8.0,
        "shape": list(SHAPE),
        "dtype": "float32",
        "roundtrip": True,
        "requests_per_client": requests_per_client,
        "current": cells,
        "speedup_c64": speedup,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="fewer requests per client (fast CI smoke run)")
    ap.add_argument("--requests", type=int, default=50,
                    help="requests per client per cell (default 50)")
    ap.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                    help=f"output JSON path (default {DEFAULT_OUT})")
    args = ap.parse_args(argv)

    requests = 10 if args.smoke else args.requests
    print(f"serve grid: clients {CLIENTS} x max_batch {BATCHES}, "
          f"zfp-x rate 8, {SHAPE} float32 round-trips, "
          f"{requests} requests/client\n", flush=True)
    record = measure_grid(requests)
    args.out.write_text(json.dumps(record, indent=2) + "\n")

    print("\nmicro-batching speedup at 64 clients (vs max_batch=1):")
    for name, s in sorted(record["speedup_c64"].items()):
        print(f"  {name:<4} {s:.2f}x")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
