"""HPDR-Serve throughput/latency benchmark (real service, real codecs).

Drives the in-process :class:`repro.serve.ReductionService` with the
same closed-loop blast harness as ``repro blast`` and records throughput
plus p50/p95/p99 latency for every cell of the grid

    clients in {1, 8, 64}  x  max_batch in {1, 8, 64}

on zfp-x (rate 8) round-trips of a (16, 16) float32 payload.
``max_batch=1`` is the single-shot baseline: every request gets its own
flush and its own GEM launch.  Each cell is measured ``--reps`` times
and the median-throughput repetition is recorded — serve throughput is
scheduler-sensitive, and the median keeps the committed record stable
across machines and runs.

Two invariants are asserted on every full run:

* **idle flush** — a single closed-loop client must see batched
  throughput comparable to the unbatched service (``c1_b64`` within
  ``IDLE_FLUSH_FLOOR`` of ``c1_b1``): with one request in flight the
  batcher flushes immediately instead of waiting out the deadline;
* the grid completes with zero request errors.

The record also carries ``codec_batch`` — the *direct* batch-vs-single
speedups of each batched codec at batch 64 (one ``*_batch`` call
against 64 single-shot calls, same data, byte-identity asserted on the
compressed streams).  ``scripts/perf_gate.py`` pins each codec's
round-trip speedup at >= 2x; the headline ``speedup_c64``
(micro-batched vs single-shot service throughput at 64 clients) is
gated there as well.

Writes ``BENCH_serve.json`` at the repo root, the record the perf gate
compares CI smoke runs against.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py           # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke   # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"

CLIENTS = (1, 8, 64)
BATCHES = (1, 8, 64)
SHAPE = (16, 16)

#: codecs with native batch entry points, measured in ``codec_batch``.
BATCH_CODECS = ("mgard-x", "zfp-x", "huffman-x")
#: direct batch size for the per-codec speedup cells.
CODEC_BATCH_N = 64

#: minimum fraction of single-shot throughput a lone client must keep
#: when the service is configured for large batches (idle-flush floor;
#: without the heuristic the ratio collapses to ~0.13 — one deadline
#: wait per round trip).
IDLE_FLUSH_FLOOR = 0.5


def _measure_once(clients: int, max_batch: int,
                  requests_per_client: int) -> dict:
    """One timed blast against a fresh service (after a warm-up blast)."""
    from repro.serve import (
        BatchLimits,
        CodecSpec,
        ReductionService,
        ServiceClient,
        ServiceConfig,
        default_payloads,
        run_blast,
    )

    spec = CodecSpec("zfp-x", rate=8.0)
    payloads = default_payloads([spec], shape=SHAPE)

    async def run():
        cfg = ServiceConfig(
            limits=BatchLimits(max_batch=max_batch, max_latency_s=0.002),
            max_pending=max(256, 4 * clients),
        )
        async with ReductionService(cfg) as svc:
            async def client(_i):
                return ServiceClient(svc)

            # Warm-up: create contexts, ramp the batch-staging scratch to
            # its high-water mark, prime the codec caches.
            await run_blast(client, clients=clients, requests_per_client=2,
                            specs=[spec], payloads=payloads)
            report = await run_blast(
                client, clients=clients,
                requests_per_client=requests_per_client,
                specs=[spec], payloads=payloads,
            )
            report["mean_batch_size"] = round(svc.stats.mean_batch_size, 2)
        return report

    report = asyncio.run(run())
    assert report["errors"] == 0, f"bench cell errored: {report}"
    return report


def measure_cell(clients: int, max_batch: int, requests_per_client: int,
                 reps: int = 1) -> dict:
    """One grid cell: ``reps`` measurements, median-throughput rep kept."""
    reports = [
        _measure_once(clients, max_batch, requests_per_client)
        for _ in range(max(1, reps))
    ]
    reports.sort(key=lambda r: r["rps"])
    return reports[len(reports) // 2]


def _bench_payloads(name: str, n: int):
    import numpy as np

    rng = np.random.default_rng(11)
    datas = []
    for _ in range(n):
        d = rng.standard_normal(SHAPE).astype(np.float32)
        if name == "huffman-x":
            # Quantized-looking data so the entropy stage has structure.
            d = (d * 4).astype(np.int64).astype(np.float32)
        datas.append(np.ascontiguousarray(d))
    return datas


def measure_codec_batch(name: str, n: int = CODEC_BATCH_N,
                        reps: int = 3) -> dict:
    """Direct batch-vs-single speedup of one codec (no service).

    Times ``n`` single-shot calls against one ``*_batch`` call over the
    same payloads, for both directions, and keeps the median speedup of
    ``reps`` interleaved repetitions.  This isolates the GEM-launch
    amortization the serve grid measures end-to-end.
    """
    from repro.serve.spec import CodecSpec

    kwargs = {"error_bound": 1e-2} if name in ("mgard-x", "sz") else {}
    codec = CodecSpec(name, **kwargs).build()
    datas = _bench_payloads(name, n)
    blobs = codec.compress_batch(datas)

    # Warm both paths: contexts, scratch high-water marks, code paths.
    [codec.compress(d) for d in datas]
    codec.compress_batch(datas)
    restored = [codec.decompress(b) for b in blobs]
    assert len(restored) == n
    codec.decompress_batch(blobs)

    comp, decomp, rt = [], [], []
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        singles = [codec.compress(d) for d in datas]
        t1 = time.perf_counter()
        batched = codec.compress_batch(datas)
        t2 = time.perf_counter()
        assert [bytes(b) for b in batched] == [bytes(b) for b in singles]
        t3 = time.perf_counter()
        [codec.decompress(b) for b in blobs]
        t4 = time.perf_counter()
        codec.decompress_batch(blobs)
        t5 = time.perf_counter()
        comp.append((t1 - t0) / (t2 - t1))
        decomp.append((t4 - t3) / (t5 - t4))
        rt.append(((t1 - t0) + (t4 - t3)) / ((t2 - t1) + (t5 - t4)))
    comp.sort()
    decomp.sort()
    rt.sort()
    return {
        "batch": n,
        "compress_speedup": round(comp[len(comp) // 2], 2),
        "decompress_speedup": round(decomp[len(decomp) // 2], 2),
        # The gated number: one batched round trip against n single-shot
        # round trips.  Directions differ in how much per-item work the
        # batch path can amortize (huffman's per-chunk codebook build is
        # inherently per-item), so the round trip is the stable claim.
        "roundtrip_speedup": round(rt[len(rt) // 2], 2),
    }


def measure_grid(requests_per_client: int, reps: int = 1) -> dict:
    """Full record: every cell plus the headline speedups."""
    cells = {}
    for clients in CLIENTS:
        for max_batch in BATCHES:
            name = f"c{clients}_b{max_batch}"
            cells[name] = measure_cell(clients, max_batch,
                                       requests_per_client, reps=reps)
            print(f"  {name:<10} {cells[name]['rps']:>9.1f} req/s  "
                  f"p50={cells[name]['p50_ms']:.3f}ms "
                  f"p95={cells[name]['p95_ms']:.3f}ms "
                  f"p99={cells[name]['p99_ms']:.3f}ms "
                  f"(mean batch {cells[name]['mean_batch_size']})",
                  flush=True)
    speedup = {
        f"b{b}": round(cells[f"c64_b{b}"]["rps"] / cells["c64_b1"]["rps"], 2)
        for b in BATCHES if b != 1
    }
    idle_ratio = round(cells["c1_b64"]["rps"] / cells["c1_b1"]["rps"], 2)
    assert idle_ratio >= IDLE_FLUSH_FLOOR, (
        f"idle-flush regression: a single client at max_batch=64 runs at "
        f"{idle_ratio:.2f}x its unbatched throughput "
        f"(c1_b64={cells['c1_b64']['rps']:.1f} vs "
        f"c1_b1={cells['c1_b1']['rps']:.1f} req/s; floor "
        f"{IDLE_FLUSH_FLOOR})"
    )

    codec_batch = {}
    for name in BATCH_CODECS:
        codec_batch[name] = measure_codec_batch(name)
        print(f"  batch[{name:<10}] "
              f"compress {codec_batch[name]['compress_speedup']:>6.2f}x  "
              f"decompress {codec_batch[name]['decompress_speedup']:>6.2f}x  "
              f"roundtrip {codec_batch[name]['roundtrip_speedup']:>6.2f}x "
              f"(n={codec_batch[name]['batch']})", flush=True)

    return {
        "schema": 2,
        "codec": "zfp-x",
        "rate": 8.0,
        "shape": list(SHAPE),
        "dtype": "float32",
        "roundtrip": True,
        "requests_per_client": requests_per_client,
        "reps": reps,
        "current": cells,
        "speedup_c64": speedup,
        "c1_idle_flush_ratio": idle_ratio,
        "codec_batch": codec_batch,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="fewer requests per client, 1 rep (fast CI smoke)")
    ap.add_argument("--requests", type=int, default=100,
                    help="requests per client per cell (default 100; "
                         "longer timed windows damp scheduler noise)")
    ap.add_argument("--reps", type=int, default=3,
                    help="repetitions per cell, median kept (default 3)")
    ap.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                    help=f"output JSON path (default {DEFAULT_OUT})")
    args = ap.parse_args(argv)

    requests = 10 if args.smoke else args.requests
    reps = 1 if args.smoke else args.reps
    print(f"serve grid: clients {CLIENTS} x max_batch {BATCHES}, "
          f"zfp-x rate 8, {SHAPE} float32 round-trips, "
          f"{requests} requests/client, median of {reps}\n", flush=True)
    record = measure_grid(requests, reps=reps)
    args.out.write_text(json.dumps(record, indent=2) + "\n")

    print("\nmicro-batching speedup at 64 clients (vs max_batch=1):")
    for name, s in sorted(record["speedup_c64"].items()):
        print(f"  {name:<4} {s:.2f}x")
    print(f"single-client idle-flush ratio (c1_b64/c1_b1): "
          f"{record['c1_idle_flush_ratio']:.2f}x")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
