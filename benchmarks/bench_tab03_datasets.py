"""Table III — evaluation datasets.

Prints the paper's dataset inventory next to the synthetic stand-ins
(scaled shapes), with measured value ranges and per-compressor ratios at
eb=1e-2 so the compressibility character is visible.
"""

import numpy as np

from repro.bench.report import print_table
from repro.data.registry import DATASETS

from benchmarks.common import BENCH_SHAPES, bench_dataset, measured_ratio, save_table


def test_tab03_dataset_inventory(benchmark):
    rows = []
    for key, spec in DATASETS.items():
        data = bench_dataset(key)
        mg = measured_ratio("mgard-x", key, 1e-2)
        sz = measured_ratio("cusz", key, 1e-2)
        rows.append([
            spec.name,
            spec.field,
            "x".join(map(str, spec.full_shape)),
            spec.dtype,
            spec.full_size_label,
            "x".join(map(str, BENCH_SHAPES[key])),
            f"{mg:.1f}",
            f"{sz:.1f}",
        ])
        assert data.dtype == np.dtype(spec.dtype)
    text = print_table(
        ["dataset", "field", "paper dims", "dtype", "paper size",
         "bench dims", "MGARD-X CR@1e-2", "SZ CR@1e-2"],
        rows,
        title="Table III — datasets (paper metadata + scaled synthetic stand-ins)",
    )
    save_table("tab03_datasets", text)
    benchmark(bench_dataset.__wrapped__, "nyx")


if __name__ == "__main__":
    test_tab03_dataset_inventory(lambda f, *a, **k: f(*a, **k))
