"""Shared benchmark helpers: measured compression ratios, result files.

Every bench regenerates one of the paper's tables/figures.  Absolute
numbers come from (a) really compressing scaled synthetic stand-ins of
the Table III datasets and (b) the calibrated discrete-event simulator;
each bench prints a paper-vs-measured table and saves it under
``benchmarks/results/``.
"""

from __future__ import annotations

import functools
from pathlib import Path

import numpy as np

from repro import Config, ErrorMode, LZ4, MGARDX, SZ, ZFPX, rate_for_error_bound
from repro.data import load

RESULTS_DIR = Path(__file__).parent / "results"

#: scaled dataset shapes used throughout the benches (full sizes in the
#: paper; scale factors documented in EXPERIMENTS.md).
BENCH_SHAPES = {
    "nyx": (48, 48, 48),
    "e3sm": (24, 40, 80),
    "xgc": (2, 16, 256, 16),
}


def save_table(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@functools.lru_cache(maxsize=None)
def bench_dataset(name: str, seed: int = 0) -> np.ndarray:
    return load(name, BENCH_SHAPES[name], seed=seed)


@functools.lru_cache(maxsize=None)
def measured_ratio(method: str, dataset: str, error_bound: float = 1e-2) -> float:
    """Real compression ratio of ``method`` on a scaled dataset."""
    data = bench_dataset(dataset)
    cfg = Config(error_bound=error_bound, error_mode=ErrorMode.REL)
    if method in ("mgard-x", "mgard-gpu"):
        comp = MGARDX(cfg)
    elif method in ("zfp-x", "zfp-cuda"):
        comp = ZFPX(rate=rate_for_error_bound(error_bound, data.dtype, data.ndim))
    elif method == "cusz":
        comp = SZ(cfg)
    elif method == "nvcomp-lz4":
        comp = LZ4()
    else:
        raise KeyError(f"unknown method {method!r}")
    blob = comp.compress(data if method != "nvcomp-lz4" else data)
    return data.nbytes / len(blob)


def fresh_device(processor: str = "V100"):
    from repro.machine.device import SimDevice
    from repro.machine.engine import Simulator

    sim = Simulator()
    return SimDevice(sim, processor), sim
