"""Fig. 16 — Multi-GPU scalability on a Summit node (6× V100).

Paper (average real-to-ideal speed ratios across GPU counts):

==========  ===========  =============
method      compression  decompression
==========  ===========  =============
MGARD-X     96 %         88 %
MGARD-GPU   72 %         76 %
ZFP-CUDA    48 %         55 %
cuSZ        46 %         48 %
NVCOMP-LZ4  74 %         70 %
==========  ===========  =============

The mechanism is the shared runtime: per-call allocations serialize
across the node's GPUs; HPDR's CMM removes them from the steady state.
"""

import pytest

from repro.bench.methods import EVAL_METHODS, method_at_scale
from repro.bench.report import print_table
from repro.io.parallel import node_reduction_time
from repro.machine.topology import SUMMIT

from benchmarks.common import measured_ratio, save_table

GB = int(1e9)
PER_GPU = 2 * GB

PAPER = {
    "mgard-x": (0.96, 0.88),
    "mgard-gpu": (0.72, 0.76),
    "zfp-cuda": (0.48, 0.55),
    "cusz": (0.46, 0.48),
    "nvcomp-lz4": (0.74, 0.70),
}


def avg_efficiency(name: str, decompress: bool) -> float:
    m = method_at_scale(name, ratio=measured_ratio(name, "nyx", 1e-2))
    t1 = node_reduction_time(SUMMIT, m, PER_GPU, num_gpus=1,
                             decompress=decompress)
    effs = [
        t1 / node_reduction_time(SUMMIT, m, PER_GPU, num_gpus=g,
                                 decompress=decompress)
        for g in range(2, 7)
    ]
    return sum(effs) / len(effs)


def test_fig16_scalability_table(benchmark):
    rows = []
    measured = {}
    for name, (paper_c, paper_d) in PAPER.items():
        c = avg_efficiency(name, decompress=False)
        d = avg_efficiency(name, decompress=True)
        measured[name] = (c, d)
        rows.append([EVAL_METHODS[name].name,
                     f"{100*c:.0f}%", f"{100*paper_c:.0f}%",
                     f"{100*d:.0f}%", f"{100*paper_d:.0f}%"])
    text = print_table(
        ["method", "compress eff", "paper", "decompress eff", "paper"],
        rows,
        title="Fig. 16 — average real/ideal multi-GPU scalability (6× V100)",
    )
    save_table("fig16_multigpu", text)

    # Headline: MGARD-X ≈ 96 % while baselines fall well short.
    assert measured["mgard-x"][0] == pytest.approx(0.96, abs=0.04)
    assert measured["mgard-gpu"][0] == pytest.approx(0.72, abs=0.12)
    # Ordering: CMM-enabled scales best; fast-kernel legacy tools worst.
    assert measured["mgard-x"][0] > measured["mgard-gpu"][0]
    assert measured["mgard-gpu"][0] > measured["zfp-cuda"][0]
    assert measured["nvcomp-lz4"][0] > measured["cusz"][0]
    benchmark(avg_efficiency, "mgard-x", False)


def test_fig16_contention_grows_with_gpu_count(benchmark):
    """Per-GPU time grows monotonically with GPU count for no-CMM tools."""
    m = method_at_scale("cusz", ratio=measured_ratio("cusz", "nyx", 1e-2))
    times = [
        node_reduction_time(SUMMIT, m, PER_GPU, num_gpus=g)
        for g in (1, 2, 4, 6)
    ]
    assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))
    benchmark(node_reduction_time, SUMMIT, m, PER_GPU, 6)


if __name__ == "__main__":
    test_fig16_scalability_table(lambda f, *a, **k: f(*a, **k))
