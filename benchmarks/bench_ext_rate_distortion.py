"""Extension bench — rate-distortion curves of all lossy compressors.

Not a paper figure, but the canonical companion plot of any compression
study: bits/value vs PSNR for MGARD-X, SZ and ZFP-X on each Table III
stand-in.  The shape claims tested: every codec's curve is monotone
(more bits → higher PSNR), and on smooth scientific data the
error-bounded predictors (MGARD/SZ) dominate fixed-rate ZFP at low
rates.
"""

import numpy as np

from repro import Config, ErrorMode, MGARDX, SZ, ZFPX
from repro.analysis import rate_distortion
from repro.bench.report import print_table

from benchmarks.common import bench_dataset, save_table

EBS = [1e-1, 1e-2, 1e-3, 1e-4]
RATES = [2, 4, 8, 16]


def curves(dataset: str):
    data = bench_dataset(dataset)
    out = {}
    out["MGARD-X"] = rate_distortion(
        data, lambda eb: MGARDX(Config(error_bound=eb, error_mode=ErrorMode.REL)),
        EBS,
    )
    out["SZ"] = rate_distortion(
        data, lambda eb: SZ(Config(error_bound=eb, error_mode=ErrorMode.REL)),
        EBS,
    )
    out["ZFP-X"] = rate_distortion(data, lambda r: ZFPX(rate=r), RATES)
    return out


def test_rate_distortion_curves(benchmark):
    rows = []
    for dataset in ("nyx", "e3sm"):
        result = curves(dataset)
        for name, pts in result.items():
            for p in pts:
                rows.append([
                    dataset.upper(), name, f"{p.parameter:g}",
                    f"{p.bits_per_value:.2f}", f"{p.ratio:.1f}",
                    f"{p.psnr:.1f} dB",
                ])
            # Monotone curve: more bits, better PSNR.
            ordered = sorted(pts, key=lambda p: p.bits_per_value)
            psnrs = [p.psnr for p in ordered]
            assert all(a <= b + 1.0 for a, b in zip(psnrs, psnrs[1:])), name

        # Error-bounded predictors beat fixed-rate ZFP at ~equal bits on
        # these smooth-ish fields: compare PSNR at the closest bit-rates.
        zfp = sorted(result["ZFP-X"], key=lambda p: p.bits_per_value)
        sz = sorted(result["SZ"], key=lambda p: p.bits_per_value)
        mid_z = zfp[len(zfp) // 2]
        closest_sz = min(sz, key=lambda p: abs(p.bits_per_value - mid_z.bits_per_value))
        if abs(closest_sz.bits_per_value - mid_z.bits_per_value) < 3.0:
            assert closest_sz.psnr > mid_z.psnr - 6.0
    text = print_table(
        ["dataset", "codec", "param", "bits/value", "ratio", "PSNR"],
        rows,
        title="Extension — rate-distortion on synthetic Table III stand-ins",
    )
    save_table("ext_rate_distortion", text)
    benchmark(curves, "nyx")


if __name__ == "__main__":
    test_rate_distortion_curves(lambda f, *a, **k: f(*a, **k))
