"""Ablations of the Section V design choices.

Each optimization the paper builds is toggled independently so its
individual contribution is visible:

* overlapped pipeline on/off (the Fig. 9 DAG itself);
* 2 vs 3 buffer sets (the extra anti-dependencies trade a little
  latency for a 33 % smaller footprint);
* reconstruction launch-order reversal (red edges);
* CMM context caching on/off (per-call allocations);
* pipeline depth (1-4 queues; the paper argues 3 is the minimum for
  full latency hiding by Little's law).
"""

import pytest

from repro.bench.report import print_table
from repro.core.pipeline import ReductionPipeline, chunk_sizes_for
from repro.perf.models import kernel_model

from benchmarks.common import fresh_device, save_table

GB = int(1e9)
MB = int(1e6)
TOTAL = 4 * GB
CHUNKS = chunk_sizes_for(TOTAL, 200 * MB)


def run(direction="compress", **kw):
    dev, _ = fresh_device("V100")
    model = kernel_model("mgard-x", "V100", error_bound=1e-2)
    pipe = ReductionPipeline(dev, model, **kw)
    if direction == "compress":
        return pipe.run_compression(CHUNKS, ratio=8)
    return pipe.run_reconstruction(CHUNKS, ratio=8)


def test_ablation_each_optimization(benchmark):
    rows = []
    base = run()  # all optimizations on
    variants = [
        ("full HPDR pipeline", {}),
        ("no overlap (serial)", dict(overlapped=False)),
        ("no CMM (per-call allocs)", dict(context_cached=False)),
        ("3 buffer sets (no anti-deps)", dict(num_buffers=3)),
        ("4-deep pipeline", dict(num_queues=4)),
        ("2-deep pipeline", dict(num_queues=2)),
    ]
    results = {}
    for label, kw in variants:
        res = run(**kw)
        results[label] = res
        rows.append([
            label,
            f"{res.throughput/1e9:.1f} GB/s",
            f"{res.throughput/base.throughput:.2f}x",
            f"{100*res.hidden_copy_ratio:.0f}%",
        ])
    text = print_table(
        ["configuration", "throughput", "vs full", "copy hidden"],
        rows,
        title="Ablation — Section V optimizations (compression, 4 GB, V100)",
    )
    save_table("ablation_pipeline", text)

    assert results["no overlap (serial)"].throughput < 0.7 * base.throughput
    assert results["no CMM (per-call allocs)"].throughput < base.throughput
    # 3 buffers may be marginally faster (fewer deps) but costs memory.
    assert results["3 buffer sets (no anti-deps)"].throughput >= 0.99 * base.throughput
    # Depth 3 is already sufficient: going deeper adds nothing.
    assert results["4-deep pipeline"].throughput <= 1.02 * base.throughput
    benchmark(run)


def test_ablation_reconstruction_reversal(benchmark):
    rows = []
    rev = run("reconstruct", reversed_order=True)
    plain = run("reconstruct", reversed_order=False)
    rows.append(["reversed launch order", f"{rev.throughput/1e9:.2f} GB/s"])
    rows.append(["default launch order", f"{plain.throughput/1e9:.2f} GB/s"])
    text = print_table(
        ["configuration", "reconstruction throughput"],
        rows,
        title="Ablation — deserialization/output-copy launch order (Fig. 9 red edges)",
    )
    save_table("ablation_reversal", text)
    assert rev.throughput >= plain.throughput
    benchmark(run, "reconstruct")


def test_ablation_buffer_footprint(benchmark):
    """The 2-buffer anti-dependencies halve the footprint a 3-buffer
    pipeline needs while giving up almost no throughput."""
    two = run(num_buffers=2)
    three = run(num_buffers=3)
    # Footprint proxy: buffers × max chunk.
    max_chunk = max(CHUNKS)
    assert 2 * max_chunk < 3 * max_chunk
    assert two.throughput >= 0.95 * three.throughput
    benchmark(run, num_buffers=3)


if __name__ == "__main__":
    test_ablation_each_optimization(lambda f, *a, **k: f(*a, **k))
    test_ablation_reconstruction_reversal(lambda f, *a, **k: f(*a, **k))
