"""Wall-clock throughput benchmark (real implementation, not simulated).

Times HuffmanX / MGARD-X / ZFP-X end to end on the scaled ``nyx`` bench
dataset and writes ``BENCH_wallclock.json`` at the repo root — the
record ``scripts/perf_gate.py`` gates CI against.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py           # full run
    PYTHONPATH=src python benchmarks/bench_wallclock.py --smoke   # 1 rep, CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_wallclock.json"


def main(argv: list[str] | None = None) -> int:
    from repro.bench.wallclock import measure_all, speedups

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="single rep per measurement (fast CI smoke run)")
    ap.add_argument("--reps", type=int, default=5,
                    help="timing repetitions (min is reported)")
    ap.add_argument("--threads", type=int, default=None,
                    help="openmp adapter thread count")
    ap.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                    help=f"output JSON path (default {DEFAULT_OUT})")
    ap.add_argument("--trace", type=pathlib.Path, default=None,
                    metavar="OUT.json",
                    help="after timing, run each codec once traced and "
                         "write Chrome trace-event JSON (the timed reps "
                         "are never traced)")
    args = ap.parse_args(argv)

    reps = 1 if args.smoke else args.reps
    record = measure_all(reps=reps, threads=args.threads)
    args.out.write_text(json.dumps(record, indent=2) + "\n")

    cur = record["current"]
    print(f"nyx {record['shape']} float32, {record['megabytes']} MB, "
          f"min of {reps} rep(s)\n")
    print(f"{'codec':<16} {'comp MB/s':>10} {'dec MB/s':>10} {'ratio':>7}")
    for name in ("huffman", "huffman_openmp", "mgard", "zfp"):
        r = cur[name]
        print(f"{name:<16} {r['compress_MBps']:>10.2f} "
              f"{r['decompress_MBps']:>10.2f} {r['ratio']:>7.2f}")
    print("\nspeedup vs pre-refactor baseline:")
    for name, s in speedups(record).items():
        print(f"  {name:<10} compress {s['compress_MBps']:.2f}x   "
              f"decompress {s['decompress_MBps']:.2f}x")
    st = cur["mgard_stages"]
    total = sum(st.values()) or 1.0
    print("\nmgard compress stages:")
    for stage, secs in st.items():
        print(f"  {stage:<14} {secs * 1e3:8.2f} ms  ({100 * secs / total:4.1f}%)")
    print(f"\nwrote {args.out}")
    if args.trace is not None:
        from repro.bench.wallclock import trace_run

        path = trace_run(args.trace, threads=args.threads)
        print(f"wrote {path} (chrome://tracing / Perfetto)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
