"""System topologies and filesystem bandwidth models."""

import pytest

from repro.machine.topology import (
    FRONTIER,
    JETSTREAM2,
    SUMMIT,
    WORKSTATION,
    FilesystemSpec,
    get_system,
)


def test_summit_matches_paper():
    assert SUMMIT.num_nodes == 4608
    assert SUMMIT.node.gpus_per_node == 6
    assert SUMMIT.node.gpus[0].name == "V100"
    assert SUMMIT.filesystem.peak_bandwidth == pytest.approx(2.5e12)
    assert SUMMIT.aggregation == "node"


def test_frontier_matches_paper():
    assert FRONTIER.num_nodes == 9408
    assert FRONTIER.node.gpus_per_node == 4
    assert FRONTIER.node.gpus[0].name == "MI250X"
    assert FRONTIER.filesystem.peak_bandwidth == pytest.approx(9.4e12)
    assert FRONTIER.aggregation == "gpu"


def test_jetstream2_and_workstation():
    assert JETSTREAM2.node.gpus[0].name == "A100"
    assert JETSTREAM2.num_nodes == 90
    assert WORKSTATION.node.gpus[0].name == "RTX3090"


def test_writers_follow_aggregation_strategy():
    # One writer per node on Summit; one per GPU on Frontier.
    assert SUMMIT.writers(512) == 512
    assert FRONTIER.writers(1024) == 4096


def test_writers_rejects_excess_nodes():
    with pytest.raises(ValueError):
        SUMMIT.writers(SUMMIT.num_nodes + 1)
    with pytest.raises(ValueError):
        SUMMIT.writers(0)


def test_total_gpus():
    assert SUMMIT.total_gpus(512) == 3072  # the paper's 3,072 V100s
    assert FRONTIER.total_gpus(1024) == 4096


def test_fs_bandwidth_caps_at_peak():
    fs = SUMMIT.filesystem
    assert fs.effective_bandwidth(1) == pytest.approx(fs.per_node_bandwidth)
    many = fs.effective_bandwidth(4096)
    assert many <= fs.peak_bandwidth


def test_fs_bandwidth_monotonic_then_saturates():
    fs = FRONTIER.filesystem
    b = [fs.effective_bandwidth(n) for n in (1, 16, 256, 1024)]
    assert all(x <= y * 1.0001 for x, y in zip(b, b[1:]))


def test_fs_contention_beyond_knee():
    fs = FilesystemSpec("t", 1e12, 1e9, contention_knee=10, contention_floor=0.5)
    at_knee = fs.effective_bandwidth(10)
    past = fs.effective_bandwidth(1000)
    # raw caps at peak either way; efficiency decays past the knee
    assert past <= at_knee * 1.0001 or past < 1e12


def test_fs_invalid_writers():
    with pytest.raises(ValueError):
        SUMMIT.filesystem.effective_bandwidth(0)


def test_get_system():
    assert get_system("summit") is SUMMIT
    assert get_system("FRONTIER") is FRONTIER
    with pytest.raises(KeyError):
        get_system("aurora")
