"""Trace timeline rendering."""

import pytest

from repro.core.pipeline import ReductionPipeline, chunk_sizes_for
from repro.machine.device import SimDevice
from repro.machine.engine import Simulator, TaskKind, Trace
from repro.machine.timeline import render_timeline, utilization_summary
from repro.perf.models import kernel_model


def make_trace() -> Trace:
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    model = kernel_model("mgard-x", "V100")
    pipe = ReductionPipeline(dev, model)
    return pipe.run_compression(chunk_sizes_for(int(1e9), int(2e8)), ratio=8).trace


def test_renders_all_resources():
    text = render_timeline(make_trace())
    assert "dma_h2d" in text
    assert "compute" in text
    assert "dma_d2h" in text


def test_busy_percentages_present():
    text = render_timeline(make_trace())
    assert "%" in text
    # Compute engine should be the busiest for MGARD (compute-bound).
    util = utilization_summary(make_trace())
    compute = [v for k, v in util.items() if "compute" in k][0]
    h2d = [v for k, v in util.items() if "dma_h2d" in k][0]
    assert compute > h2d


def test_legend_lists_present_kinds():
    text = render_timeline(make_trace())
    assert "compute" in text.splitlines()[-1]


def test_empty_trace():
    assert render_timeline(Trace([])) == "(empty trace)"
    assert utilization_summary(Trace([])) == {}


def test_width_validation():
    with pytest.raises(ValueError):
        render_timeline(make_trace(), width=4)


def test_custom_width():
    text = render_timeline(make_trace(), width=30)
    row = text.splitlines()[1]
    bar = row.split("|")[1]
    assert len(bar) == 30
