"""SimDevice and SharedRuntime behaviour."""

import pytest

from repro.machine.device import SimDevice
from repro.machine.engine import Simulator, TaskKind
from repro.machine.runtime import SharedRuntime
from repro.machine.specs import V100, get_processor


def test_device_has_hdem_resources():
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    assert dev.dma_h2d.bandwidth == V100.link_h2d
    assert dev.dma_d2h.bandwidth == V100.link_d2h
    assert dev.compute_engine.bandwidth is None


def test_h2d_d2h_use_separate_engines():
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    q1, q2 = dev.create_queues(2)
    a = dev.h2d(int(50e9), q1)  # 1 second
    b = dev.d2h(int(50e9), q2)
    trace = sim.run()
    assert trace.makespan == pytest.approx(1.0)  # overlapped


def test_malloc_over_capacity_raises():
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    q = dev.create_queue()
    with pytest.raises(MemoryError):
        dev.malloc(int(17e9), q)  # V100 has 16 GB


def test_malloc_free_accounting():
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    q = dev.create_queue()
    dev.malloc(int(4e9), q)
    assert dev.mem_in_use == pytest.approx(4e9)
    dev.free(int(4e9), q)
    assert dev.mem_in_use == 0.0


def test_shared_runtime_serializes_allocs():
    """Allocations from two devices on one runtime cannot overlap."""
    sim = Simulator()
    rt = SharedRuntime(sim, "node-rt")
    d1 = SimDevice(sim, "V100", runtime=rt, index=0)
    d2 = SimDevice(sim, "V100", runtime=rt, index=1)
    q1 = d1.create_queue()
    q2 = d2.create_queue()
    a = d1.malloc(int(1e9), q1)
    b = d2.malloc(int(1e9), q2)
    sim.run()
    assert a.end <= b.start or b.end <= a.start
    assert rt.alloc_count == 2


def test_private_runtimes_do_not_contend():
    sim = Simulator()
    d1 = SimDevice(sim, "V100", index=0)
    d2 = SimDevice(sim, "V100", index=1)
    a = d1.malloc(int(1e9), d1.create_queue())
    b = d2.malloc(int(1e9), d2.create_queue())
    sim.run()
    assert a.start == b.start == 0.0


def test_contention_increases_latency():
    """Arbitration overhead grows with attached devices."""
    def alloc_time(n_devices: int) -> float:
        sim = Simulator()
        rt = SharedRuntime(sim, "rt")
        devs = [SimDevice(sim, "V100", runtime=rt, index=i) for i in range(n_devices)]
        t = devs[0].malloc(int(1e9), devs[0].create_queue())
        sim.run()
        return t.end - t.start

    assert alloc_time(6) > alloc_time(1)


def test_free_cheaper_than_alloc():
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    q = dev.create_queue()
    a = dev.malloc(int(1e9), q)
    f = dev.free(int(1e9), q)
    sim.run()
    assert (f.end - f.start) < (a.end - a.start)


def test_launch_arbitration_serializes():
    sim = Simulator()
    rt = SharedRuntime(sim, "rt")
    d1 = SimDevice(sim, "V100", runtime=rt, index=0)
    d2 = SimDevice(sim, "V100", runtime=rt, index=1)
    a = rt.launch(d1, d1.create_queue())
    b = rt.launch(d2, d2.create_queue())
    sim.run()
    assert a.end <= b.start or b.end <= a.start


def test_serialize_rides_d2h_engine():
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    q = dev.create_queue()
    s = dev.serialize(4096, q)
    assert s.resource is dev.dma_d2h
    d = dev.deserialize(4096, q)
    assert d.resource is dev.dma_h2d


def test_get_processor_case_insensitive():
    assert get_processor("v100") is V100
    with pytest.raises(KeyError):
        get_processor("H100")
