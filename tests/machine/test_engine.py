"""Discrete-event engine: scheduling semantics and trace metrics."""

import math

import pytest

from repro.machine.engine import Simulator, TaskKind, Trace


def test_single_task_runs_immediately():
    sim = Simulator()
    r = sim.resource("r")
    q = sim.queue("q")
    t = sim.submit("t", TaskKind.COMPUTE, r, q, duration=2.0)
    trace = sim.run()
    assert t.start == 0.0
    assert t.end == 2.0
    assert trace.makespan == 2.0


def test_queue_preserves_submission_order():
    sim = Simulator()
    r1, r2 = sim.resource("r1"), sim.resource("r2")
    q = sim.queue("q")
    a = sim.submit("a", TaskKind.COMPUTE, r1, q, duration=1.0)
    b = sim.submit("b", TaskKind.COMPUTE, r2, q, duration=1.0)
    sim.run()
    # b is on a different resource but same queue: starts after a.
    assert b.start >= a.end


def test_resource_exclusive_across_queues():
    sim = Simulator()
    r = sim.resource("dma")
    q1, q2 = sim.queue("q1"), sim.queue("q2")
    a = sim.submit("a", TaskKind.H2D, r, q1, duration=3.0)
    b = sim.submit("b", TaskKind.H2D, r, q2, duration=3.0)
    sim.run()
    assert {a.start, b.start} == {0.0, 3.0}


def test_dependency_enforced_across_queues():
    sim = Simulator()
    r1, r2 = sim.resource("r1"), sim.resource("r2")
    q1, q2 = sim.queue("q1"), sim.queue("q2")
    a = sim.submit("a", TaskKind.COMPUTE, r1, q1, duration=5.0)
    b = sim.submit("b", TaskKind.COMPUTE, r2, q2, duration=1.0, deps=[a])
    sim.run()
    assert b.start >= a.end


def test_bandwidth_derived_duration():
    sim = Simulator()
    r = sim.resource("dma", bandwidth=100.0)
    q = sim.queue("q")
    t = sim.submit("t", TaskKind.H2D, r, q, nbytes=250)
    sim.run()
    assert t.end - t.start == pytest.approx(2.5)


def test_duration_requires_bandwidth_or_explicit():
    sim = Simulator()
    r = sim.resource("r")  # no bandwidth
    q = sim.queue("q")
    with pytest.raises(ValueError):
        sim.submit("t", TaskKind.H2D, r, q, nbytes=100)


def test_negative_duration_rejected():
    sim = Simulator()
    r = sim.resource("r")
    q = sim.queue("q")
    with pytest.raises(ValueError):
        sim.submit("t", TaskKind.COMPUTE, r, q, duration=-1.0)


def test_deadlock_detected():
    sim = Simulator()
    r = sim.resource("r")
    q1, q2 = sim.queue("q1"), sim.queue("q2")
    a = sim.submit("a", TaskKind.COMPUTE, r, q1, duration=1.0)
    b = sim.submit("b", TaskKind.COMPUTE, r, q2, duration=1.0)
    # Cycle: a depends on b, b depends on a.
    a.add_dep(b)
    b.add_dep(a)
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run()


def test_two_dma_engines_overlap():
    """H2D and D2H on separate engines overlap; overlap_ratio sees it."""
    sim = Simulator()
    h2d = sim.resource("h2d", bandwidth=1.0)
    d2h = sim.resource("d2h", bandwidth=1.0)
    q1, q2 = sim.queue("q1"), sim.queue("q2")
    sim.submit("in", TaskKind.H2D, h2d, q1, duration=4.0)
    sim.submit("out", TaskKind.D2H, d2h, q2, duration=4.0)
    trace = sim.run()
    assert trace.makespan == 4.0
    assert trace.overlap_ratio() == pytest.approx(1.0)


def test_overlap_ratio_zero_when_serial():
    sim = Simulator()
    h2d = sim.resource("h2d")
    d2h = sim.resource("d2h")
    q = sim.queue("q")
    sim.submit("in", TaskKind.H2D, h2d, q, duration=2.0)
    sim.submit("out", TaskKind.D2H, d2h, q, duration=2.0)
    trace = sim.run()
    assert trace.overlap_ratio() == 0.0


def test_hidden_copy_ratio():
    sim = Simulator()
    h2d = sim.resource("h2d")
    comp = sim.resource("comp")
    q1, q2 = sim.queue("q1"), sim.queue("q2")
    sim.submit("k", TaskKind.COMPUTE, comp, q1, duration=10.0)
    sim.submit("c", TaskKind.H2D, h2d, q2, duration=4.0)
    trace = sim.run()
    assert trace.hidden_copy_ratio() == pytest.approx(1.0)


def test_breakdown_sums_busy_time():
    sim = Simulator()
    r = sim.resource("r")
    q = sim.queue("q")
    sim.submit("a", TaskKind.H2D, r, q, duration=1.0)
    sim.submit("b", TaskKind.COMPUTE, r, q, duration=2.0)
    sim.submit("c", TaskKind.D2H, r, q, duration=3.0)
    trace = sim.run()
    bd = trace.breakdown()
    assert bd == {"h2d": 1.0, "compute": 2.0, "d2h": 3.0}


def test_utilization():
    sim = Simulator()
    r = sim.resource("busy")
    idle = sim.resource("idle")
    q = sim.queue("q")
    sim.submit("a", TaskKind.COMPUTE, r, q, duration=2.0)
    sim.submit("b", TaskKind.COMPUTE, idle, q, duration=2.0)
    trace = sim.run()
    assert trace.utilization(r) == pytest.approx(0.5)


def test_validate_catches_dependency_violation():
    sim = Simulator()
    r = sim.resource("r")
    q = sim.queue("q")
    a = sim.submit("a", TaskKind.COMPUTE, r, q, duration=1.0)
    trace = sim.run()
    # Forge an inconsistent trace.
    a.deps.append(a)
    with pytest.raises(AssertionError):
        trace.validate()


def test_reset_clears_state():
    sim = Simulator()
    r = sim.resource("r")
    q = sim.queue("q")
    sim.submit("a", TaskKind.COMPUTE, r, q, duration=1.0)
    sim.run()
    sim.reset()
    assert r.busy_until == 0.0
    assert not q.pending
    t = sim.submit("b", TaskKind.COMPUTE, r, q, duration=1.0)
    sim.run()
    assert t.start == 0.0


def test_empty_simulation():
    sim = Simulator()
    trace = sim.run()
    assert trace.makespan == 0.0
    assert trace.tasks == []


def test_fifo_tie_break_is_submission_order():
    sim = Simulator()
    r = sim.resource("r")
    q1, q2 = sim.queue("q1"), sim.queue("q2")
    a = sim.submit("a", TaskKind.COMPUTE, r, q1, duration=1.0)
    b = sim.submit("b", TaskKind.COMPUTE, r, q2, duration=1.0)
    sim.run()
    assert a.start < b.start
