"""Coverage of miscellaneous paths not exercised elsewhere."""

import numpy as np
import pytest

from repro.adapters import get_adapter
from repro.adapters.base import _n_elements
from repro.core.functor import FnDomain, FnLocality
from repro.machine.engine import Simulator, TaskKind
from repro.perf.models import _eb_factor


class TestEngineMisc:
    def test_add_dep_skips_none(self):
        sim = Simulator()
        r = sim.resource("r")
        q = sim.queue("q")
        a = sim.submit("a", TaskKind.COMPUTE, r, q, duration=1.0)
        b = sim.submit("b", TaskKind.COMPUTE, r, q, duration=1.0)
        b.add_dep(None, a, None)
        assert b.deps == [a]
        sim.run()

    def test_register_external_resource_and_queue(self):
        sim1 = Simulator()
        r = sim1.resource("shared")
        sim2 = Simulator()
        sim2.register_resource(r)
        q = sim2.queue("q")
        sim2.submit("t", TaskKind.COMPUTE, r, q, duration=1.0)
        trace = sim2.run()
        assert trace.makespan == 1.0

    def test_trace_of_kind_multiple(self):
        sim = Simulator()
        r = sim.resource("r")
        q = sim.queue("q")
        sim.submit("a", TaskKind.H2D, r, q, duration=1.0)
        sim.submit("b", TaskKind.D2H, r, q, duration=1.0)
        sim.submit("c", TaskKind.COMPUTE, r, q, duration=1.0)
        trace = sim.run()
        assert len(trace.of_kind(TaskKind.H2D, TaskKind.D2H)) == 2

    def test_overlap_ratio_empty(self):
        sim = Simulator()
        trace = sim.run()
        assert trace.overlap_ratio() == 0.0
        assert trace.hidden_copy_ratio() == 1.0


class TestAdapterElementCounting:
    def test_counts_arrays_tuples_dicts(self):
        assert _n_elements(np.zeros((3, 4))) == 12
        assert _n_elements((np.zeros(2), np.zeros(3))) == 5
        assert _n_elements({"a": np.zeros(2), "b": [np.zeros(1)]}) == 3
        assert _n_elements("scalar-ish") == 1

    def test_dem_trace_counts_structure(self):
        a = get_adapter("cuda")
        data = [np.zeros(10), np.zeros(20)]
        a.execute_domain(FnDomain(lambda d: d, name="noop"), data)
        assert a.trace[-1].n_elements == 30


class TestPerfEdges:
    def test_eb_factor_clamped(self):
        assert _eb_factor(1e-30) == pytest.approx(0.6)
        assert _eb_factor(1e30) == pytest.approx(1.4)
        assert _eb_factor(None) == 1.0
        assert _eb_factor(-1.0) == 1.0

    def test_kernel_model_accepts_spec_object(self):
        from repro.machine.specs import V100
        from repro.perf.models import kernel_model

        m = kernel_model("mgard-x", V100)
        assert m.processor is V100


class TestHuffmanEdges:
    def test_decode_table_default_width(self):
        from repro.compressors.huffman.codebook import build_codebook

        book = build_codebook(np.array([4, 2, 1, 1], dtype=np.int64))
        sym, ln, width = book.decode_table()
        assert width == book.max_length
        assert sym.size == 1 << width

    def test_empty_codebook_table(self):
        from repro.compressors.huffman.codebook import build_codebook

        book = build_codebook(np.zeros(4, dtype=np.int64))
        sym, ln, width = book.decode_table()
        assert np.all(ln == 0)


class TestPipelineEdges:
    def test_invalid_pipeline_params(self):
        from repro.core.pipeline import ReductionPipeline
        from repro.machine.device import SimDevice
        from repro.perf.models import kernel_model

        sim = Simulator()
        dev = SimDevice(sim, "V100")
        model = kernel_model("mgard-x", "V100")
        with pytest.raises(ValueError):
            ReductionPipeline(dev, model, num_queues=0)
        with pytest.raises(ValueError):
            ReductionPipeline(dev, model, num_buffers=1)
        with pytest.raises(ValueError):
            ReductionPipeline(dev, model, allocs_per_call=-1)

    def test_locality_functor_wrappers_cost(self):
        f = FnLocality(lambda b: b, "x", bytes_per_element=3.0)
        assert f.cost_bytes(10) == 30.0
