"""Stage-split pipeline traces."""

from repro.core.pipeline import ReductionPipeline, chunk_sizes_for
from repro.machine.device import SimDevice
from repro.machine.engine import Simulator, TaskKind
from repro.perf.models import STAGE_SPLIT, kernel_model

GB = int(1e9)
MB = int(1e6)


def run(stage_split: bool, pipeline="mgard-x", direction="compress"):
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    model = kernel_model(pipeline, "V100")
    p = ReductionPipeline(dev, model, stage_split=stage_split)
    chunks = chunk_sizes_for(1 * GB, 200 * MB)
    if direction == "compress":
        return p.run_compression(chunks, ratio=8)
    return p.run_reconstruction(chunks, ratio=8)


def test_split_preserves_total_time():
    assert abs(run(False).makespan - run(True).makespan) < 1e-12


def test_split_emits_stage_tasks():
    res = run(True)
    names = {t.name.rsplit(".", 1)[-1] for t in res.trace.of_kind(TaskKind.COMPUTE)}
    assert names == set(STAGE_SPLIT["mgard-x"])


def test_split_stage_time_fractions():
    res = run(True)
    total = res.trace.total_time(TaskKind.COMPUTE)
    for stage, frac in STAGE_SPLIT["mgard-x"].items():
        t = sum(
            x.end - x.start
            for x in res.trace.of_kind(TaskKind.COMPUTE)
            if x.name.endswith("." + stage)
        )
        assert abs(t / total - frac) < 1e-9


def test_split_in_reconstruction():
    res = run(True, direction="reconstruct")
    assert any("." in t.name.split("]")[-1]
               for t in res.trace.of_kind(TaskKind.COMPUTE))


def test_split_for_every_modeled_pipeline():
    for pipeline in STAGE_SPLIT:
        if pipeline in ("mgard-x", "zfp-x", "huffman-x"):
            res = run(True, pipeline=pipeline)
            res.trace.validate()
