"""Algorithm 4: adaptive chunk scheduling."""

import pytest

from repro.core.adaptive import (
    AdaptiveConfig,
    adaptive_schedule,
    bottleneck_chunk,
    run_adaptive_compression,
)
from repro.core.pipeline import ReductionPipeline, chunk_sizes_for
from repro.machine.device import SimDevice
from repro.machine.engine import Simulator
from repro.perf.models import kernel_model

GB = int(1e9)
MB = int(1e6)


def test_schedule_sums_to_total():
    model = kernel_model("mgard-x", "V100")
    for total in (3 * MB, 500 * MB, int(4.3 * GB)):
        sizes = adaptive_schedule(total, model)
        assert sum(sizes) == total
        assert all(s > 0 for s in sizes)


def test_first_chunk_is_initial_size():
    model = kernel_model("mgard-x", "V100")
    cfg = AdaptiveConfig(initial_chunk=8 * MB)
    sizes = adaptive_schedule(2 * GB, model, cfg)
    assert sizes[0] == 8 * MB


def test_chunks_grow_for_compute_bound_kernel():
    """MGARD (14 GB/s) on a 50 GB/s link: Θ > C, chunks must grow."""
    model = kernel_model("mgard-x", "V100")
    sizes = adaptive_schedule(int(4.3 * GB), model)
    # Growth until C_limit or the tail.
    growing = sizes[:-1]
    assert all(a <= b for a, b in zip(growing, growing[1:]))
    assert sizes[-2] > sizes[0]


def test_chunk_limit_respected():
    model = kernel_model("mgard-x", "V100")
    cfg = AdaptiveConfig(max_chunk=256 * MB)
    sizes = adaptive_schedule(4 * GB, model, cfg)
    assert max(sizes) <= 256 * MB


def test_default_limit_fits_device_memory():
    model = kernel_model("mgard-x", "V100")  # 16 GB card
    sizes = adaptive_schedule(100 * GB, model)
    assert max(sizes) <= 4 * GB


def test_transfer_bound_kernel_floors_at_bottleneck():
    """ZFP outruns the link; chunks must not shrink into the ramp."""
    model = kernel_model("zfp-x", "V100")
    floor = bottleneck_chunk(model, ratio=4.0)
    sizes = adaptive_schedule(4 * GB, model, ratio=4.0)
    assert all(s >= min(floor, sizes[0]) for s in sizes[1:-1])


def test_bottleneck_chunk_compute_bound_is_saturation():
    model = kernel_model("mgard-x", "V100")
    assert bottleneck_chunk(model) == int(model.c_threshold)


def test_bottleneck_chunk_monotone_in_ratio():
    """Lower compression ratio → larger output copies → bigger floor."""
    model = kernel_model("zfp-x", "V100")
    assert bottleneck_chunk(model, ratio=2.0) >= bottleneck_chunk(model, ratio=10.0)


def test_invalid_inputs():
    model = kernel_model("mgard-x", "V100")
    with pytest.raises(ValueError):
        adaptive_schedule(0, model)
    with pytest.raises(ValueError):
        AdaptiveConfig(initial_chunk=0)
    with pytest.raises(ValueError):
        AdaptiveConfig(min_chunk=0)


def test_adaptive_beats_fixed_for_compute_bound():
    """Fig. 13's adaptive-vs-fixed claim for MGARD-class kernels."""
    model = kernel_model("mgard-x", "V100", error_bound=1e-2)
    total = int(4.3 * GB)
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    adaptive = run_adaptive_compression(dev, model, total, ratio=10)
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    fixed = ReductionPipeline(dev, model).run_compression(
        chunk_sizes_for(total, 100 * MB), ratio=10
    )
    assert adaptive.throughput > 1.1 * fixed.throughput


def test_adaptive_not_worse_for_transfer_bound():
    model = kernel_model("zfp-x", "V100", error_bound=1e-2)
    total = int(4.3 * GB)
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    adaptive = run_adaptive_compression(dev, model, total, ratio=4)
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    fixed = ReductionPipeline(dev, model).run_compression(
        chunk_sizes_for(total, 100 * MB), ratio=4
    )
    assert adaptive.throughput >= 0.97 * fixed.throughput


def test_single_chunk_when_total_small():
    model = kernel_model("mgard-x", "V100")
    sizes = adaptive_schedule(5 * MB, model)
    assert sizes == [5 * MB]
