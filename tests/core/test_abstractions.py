"""The four parallelization abstractions and block decomposition."""

import numpy as np
import pytest

from repro.core.abstractions import (
    blockize,
    global_pipeline,
    iterative,
    locality,
    map_and_process,
    unblockize,
)
from repro.core.functor import FnDomain, FnIterative, FnLocality


class TestBlockize:
    def test_exact_tiling_roundtrip(self, rng):
        x = rng.normal(size=(8, 12))
        batch, grid = blockize(x, (4, 3))
        assert batch.shape == (2 * 4, 4, 3)
        assert grid == (2, 4)
        assert np.array_equal(unblockize(batch, grid, x.shape), x)

    def test_padding_roundtrip(self, rng):
        x = rng.normal(size=(7, 11, 5))
        batch, grid = blockize(x, (4, 4, 4))
        assert grid == (2, 3, 2)
        assert np.array_equal(unblockize(batch, grid, x.shape), x)

    def test_halo_blocks_contain_neighbors(self):
        x = np.arange(16, dtype=float).reshape(4, 4)
        batch, grid = blockize(x, (2, 2), halo=1)
        assert batch.shape == (4, 4, 4)
        # Second block's core is x[0:2, 2:4]; its left halo column holds
        # x[:, 1] values.
        core = batch[1][1:3, 1:3]
        assert np.array_equal(core, x[0:2, 2:4])
        assert np.array_equal(batch[1][1:3, 0], x[0:2, 1])

    def test_halo_roundtrip(self, rng):
        x = rng.normal(size=(10, 9))
        batch, grid = blockize(x, (3, 3), halo=2)
        assert np.array_equal(unblockize(batch, grid, x.shape, halo=2), x)

    def test_1d_and_4d(self, rng):
        for shape, bs in [((17,), (4,)), ((3, 4, 5, 6), (2, 2, 2, 2))]:
            x = rng.normal(size=shape)
            batch, grid = blockize(x, bs)
            assert np.array_equal(unblockize(batch, grid, x.shape), x)

    def test_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            blockize(np.zeros((4, 4)), (2,))

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            blockize(np.zeros(4), (0,))
        with pytest.raises(ValueError):
            blockize(np.zeros(4), (2,), halo=-1)


class TestLocality:
    def test_identity_functor_roundtrip(self, rng, any_adapter):
        x = rng.normal(size=(9, 14))
        out = locality(x, FnLocality(lambda b: b.copy(), "id"), (4, 4),
                       adapter=any_adapter)
        assert np.allclose(out, x)

    def test_whole_array_single_block(self, rng, serial_adapter):
        x = rng.normal(size=(5, 5))
        seen = []
        f = FnLocality(lambda b: (seen.append(b.shape), b * 2)[1], "dbl")
        out = locality(x, f, adapter=serial_adapter)
        # Under HPDR_SAN the shadow pass re-executes the functor, so it
        # may run more than once — but every call must still see the
        # whole array as a single block.
        assert seen and set(seen) == {(1, 5, 5)}
        assert np.allclose(out, 2 * x)

    def test_shape_changing_output_returns_batch(self, rng, serial_adapter):
        x = rng.normal(size=(8, 8))
        f = FnLocality(lambda b: b.reshape(b.shape[0], -1).sum(axis=1, keepdims=True),
                       "sum")
        out = locality(x, f, (4, 4), adapter=serial_adapter)
        assert out.shape == (4, 1)

    def test_block_count_change_rejected(self, rng, serial_adapter):
        x = rng.normal(size=(8,))
        f = FnLocality(lambda b: b[:1], "bad")
        with pytest.raises(ValueError, match="block count"):
            locality(x, f, (4,), adapter=serial_adapter)

    def test_halo_requires_block_shape(self, rng):
        with pytest.raises(ValueError):
            locality(rng.normal(size=(4,)), FnLocality(lambda b: b, "f"), halo=1)

    def test_halo_neighbor_stencil(self, serial_adapter):
        """A 3-point mean via halo=1 equals the direct computation."""
        x = np.arange(12, dtype=float)
        f = FnLocality(
            lambda b: (b[:, :-2] + b[:, 1:-1] + b[:, 2:]) / 3.0, "mean3"
        )
        out = locality(x, f, (4,), halo=1, adapter=serial_adapter)
        padded = np.pad(x, 1, mode="edge")
        expect = (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0
        assert np.allclose(out, expect)


class TestIterative:
    def test_cumsum_along_each_axis(self, rng, any_adapter):
        x = rng.normal(size=(6, 10))
        f = FnIterative(lambda v: np.cumsum(v, axis=1), "cumsum")
        for axis in (0, 1):
            out = iterative(x, f, axis=axis, group_size=4, adapter=any_adapter)
            assert np.allclose(out, np.cumsum(x, axis=axis))

    def test_group_padding_dropped(self, rng, serial_adapter):
        x = rng.normal(size=(5, 3))  # 5 vectors, group_size 4 → pad to 8
        f = FnIterative(lambda v: v * 2, "dbl")
        out = iterative(x, f, axis=1, group_size=4, adapter=serial_adapter)
        assert out.shape == x.shape
        assert np.allclose(out, 2 * x)

    def test_3d_middle_axis(self, rng, serial_adapter):
        x = rng.normal(size=(3, 7, 4))
        f = FnIterative(lambda v: np.flip(v, axis=1), "flip")
        out = iterative(x, f, axis=1, adapter=serial_adapter)
        assert np.allclose(out, np.flip(x, axis=1))

    def test_invalid_group_size(self, rng):
        with pytest.raises(ValueError):
            iterative(rng.normal(size=(4, 4)),
                      FnIterative(lambda v: v, "id"), group_size=0)


class TestMapAndProcess:
    def test_per_subset_functions(self, rng, serial_adapter):
        x = rng.normal(size=(10,))
        out = map_and_process(
            x,
            lambda d: [d[:5], d[5:]],
            [lambda s: s + 1, lambda s: s * 2],
            adapter=serial_adapter,
        )
        assert np.allclose(out[0], x[:5] + 1)
        assert np.allclose(out[1], x[5:] * 2)

    def test_single_callable_gets_index(self, rng, serial_adapter):
        x = rng.normal(size=(9,))
        out = map_and_process(
            x, lambda d: [d[:3], d[3:6], d[6:]], lambda s, i: s * i,
            adapter=serial_adapter,
        )
        assert np.allclose(out[0], 0)
        assert np.allclose(out[2], x[6:] * 2)

    def test_mismatched_processors_raise(self, rng, serial_adapter):
        with pytest.raises(ValueError):
            map_and_process(
                rng.normal(size=(4,)),
                lambda d: [d[:2], d[2:]],
                [lambda s: s],
                adapter=serial_adapter,
            )


class TestGlobalPipeline:
    def test_multi_stage_order(self, serial_adapter):
        f = FnDomain(lambda d: d + 1, lambda d: d * 10, name="chain")
        assert global_pipeline(np.array([1.0]), f, adapter=serial_adapter) == 20.0

    def test_histogram_style_reduction(self, rng, any_adapter):
        keys = rng.integers(0, 8, size=100)
        f = FnDomain(lambda k: np.bincount(k, minlength=8), name="hist")
        out = global_pipeline(keys, f, adapter=any_adapter)
        assert out.sum() == 100
