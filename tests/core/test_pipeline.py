"""Fig. 9 pipeline DAG: overlap, buffer anti-dependencies, ordering."""

import numpy as np
import pytest

from repro.core.pipeline import (
    ReductionPipeline,
    chunk_sizes_for,
    chunked_compress,
    chunked_decompress,
)
from repro.machine.device import SimDevice
from repro.machine.engine import Simulator, TaskKind
from repro.perf.models import kernel_model

GB = int(1e9)
MB = int(1e6)


def make_pipe(**kw):
    sim = Simulator()
    dev = SimDevice(sim, "V100")
    model = kernel_model("mgard-x", "V100")
    return ReductionPipeline(dev, model, **kw), sim, dev


class TestCompressionDag:
    def test_overlapped_beats_serial(self):
        chunks = chunk_sizes_for(2 * GB, 100 * MB)
        pipe, *_ = make_pipe()
        fast = pipe.run_compression(chunks, ratio=8)
        pipe, *_ = make_pipe(overlapped=False)
        slow = pipe.run_compression(chunks, ratio=8)
        assert fast.throughput > slow.throughput

    def test_copy_time_mostly_hidden(self):
        """The paper's headline: transfer overhead shrinks to a few %."""
        chunks = chunk_sizes_for(4 * GB, 200 * MB)
        pipe, *_ = make_pipe()
        res = pipe.run_compression(chunks, ratio=8)
        assert res.hidden_copy_ratio > 0.9

    def test_no_two_compute_tasks_overlap(self):
        pipe, sim, dev = make_pipe()
        res = pipe.run_compression(chunk_sizes_for(1 * GB, 100 * MB), ratio=4)
        comp = sorted(res.trace.of_kind(TaskKind.COMPUTE), key=lambda t: t.start)
        for a, b in zip(comp, comp[1:]):
            assert a.end <= b.start + 1e-12

    def test_buffer_antidependency_enforced(self):
        """h2d[i] must start after serialize[i-2] with 2 buffer sets."""
        pipe, sim, dev = make_pipe(num_buffers=2)
        res = pipe.run_compression([100 * MB] * 6, ratio=4)
        h2d = [t for t in res.trace.tasks if t.name.endswith(f"h2d[{4}]")]
        ser = [t for t in res.trace.tasks if t.name.endswith(f"ser[{2}]")]
        assert h2d and ser
        assert h2d[0].start >= ser[0].end - 1e-12

    def test_three_buffers_relax_dependency(self):
        chunks = [200 * MB] * 8
        pipe, *_ = make_pipe(num_buffers=2)
        two = pipe.run_compression(chunks, ratio=4)
        pipe, *_ = make_pipe(num_buffers=3)
        three = pipe.run_compression(chunks, ratio=4)
        assert three.makespan <= two.makespan + 1e-9

    def test_throughput_accounts_all_bytes(self):
        pipe, *_ = make_pipe()
        res = pipe.run_compression([100 * MB, 50 * MB], ratio=4)
        assert res.total_in_bytes == 150 * MB
        assert res.throughput == pytest.approx(res.total_in_bytes / res.makespan)

    def test_empty_chunks_rejected(self):
        pipe, *_ = make_pipe()
        with pytest.raises(ValueError):
            pipe.run_compression([], ratio=4)
        with pytest.raises(ValueError):
            pipe.run_compression([MB], ratio=0)

    def test_staging_copies_only_in_legacy(self):
        pipe, *_ = make_pipe(overlapped=False)
        res = pipe.run_compression([100 * MB], ratio=4)
        hosts = res.trace.of_kind(TaskKind.HOST)
        assert len(hosts) == 2  # stage in + stage out
        pipe, *_ = make_pipe()
        res = pipe.run_compression([100 * MB], ratio=4)
        assert not res.trace.of_kind(TaskKind.HOST)

    def test_cmm_removes_alloc_tasks(self):
        pipe, *_ = make_pipe(context_cached=False)
        res = pipe.run_compression([100 * MB] * 2, ratio=4)
        allocs = [t for t in res.trace.of_kind(TaskKind.ALLOC)
                  if "malloc" in t.name or "alloc" in t.name]
        frees = res.trace.of_kind(TaskKind.FREE)
        assert allocs and frees
        pipe, *_ = make_pipe(context_cached=True)
        res = pipe.run_compression([100 * MB] * 2, ratio=4)
        assert not res.trace.of_kind(TaskKind.FREE)


class TestReconstructionDag:
    def test_reversed_order_helps(self):
        chunks = [200 * MB] * 8
        pipe, *_ = make_pipe(reversed_order=True)
        rev = pipe.run_reconstruction(chunks, ratio=4)
        pipe, *_ = make_pipe(reversed_order=False)
        plain = pipe.run_reconstruction(chunks, ratio=4)
        assert rev.makespan <= plain.makespan + 1e-9

    def test_reconstruction_bytes_direction(self):
        pipe, *_ = make_pipe()
        res = pipe.run_reconstruction([100 * MB], ratio=4)
        assert res.total_out_bytes == 100 * MB
        assert res.total_in_bytes == 25 * MB

    def test_schedule_valid(self):
        pipe, *_ = make_pipe()
        res = pipe.run_reconstruction([150 * MB] * 5, ratio=4)
        res.trace.validate()


class TestChunkedFunctional:
    def test_chunked_equals_concatenated(self, smooth_3d):
        """Chunk-wise compression reconstructs the full array exactly
        as chunk-wise decompression concatenates."""
        from repro import ZFPX

        z = ZFPX(rate=16)
        blob = chunked_compress(z, smooth_3d, chunk_elems=7)
        back = chunked_decompress(z, blob)
        assert back.shape == smooth_3d.shape
        direct = z.decompress(z.compress(smooth_3d))
        # Chunking along axis 0 changes block padding at boundaries but
        # errors stay within the same magnitude.
        assert np.max(np.abs(back - smooth_3d)) < 10 * max(
            1e-7, np.max(np.abs(direct - smooth_3d))
        )

    def test_chunked_roundtrip_lossless(self, rng):
        from repro import LZ4

        data = (rng.integers(0, 4, size=(30, 8)) * 17).astype(np.int64)
        lz = LZ4()
        blob = chunked_compress(lz, data, chunk_elems=11)
        assert np.array_equal(chunked_decompress(lz, blob), data)

    def test_chunk_sizes_for(self):
        assert chunk_sizes_for(10, 4) == [4, 4, 2]
        assert chunk_sizes_for(8, 4) == [4, 4]
        with pytest.raises(ValueError):
            chunk_sizes_for(0, 4)
        with pytest.raises(ValueError):
            chunk_sizes_for(4, 0)

    def test_bad_magic_rejected(self):
        from repro import LZ4

        with pytest.raises(ValueError):
            chunked_decompress(LZ4(), b"XXXX1234")
