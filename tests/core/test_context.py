"""Context Memory Model: hash-map caching, persistence, eviction."""

import numpy as np
import pytest

from repro.core.context import ContextCache, ReductionContext


def test_buffer_persists_across_lookups():
    ctx = ReductionContext(("k",))
    b1 = ctx.buffer("work", (16,), np.float64)
    b1[:] = 7.0
    b2 = ctx.buffer("work", (16,), np.float64)
    assert b1 is b2
    assert ctx.alloc_count == 1


def test_buffer_reallocates_on_shape_change():
    ctx = ReductionContext(("k",))
    ctx.buffer("work", (16,), np.float64)
    b2 = ctx.buffer("work", (32,), np.float64)
    assert b2.shape == (32,)
    assert ctx.alloc_count == 2


def test_buffer_reallocates_on_dtype_change():
    ctx = ReductionContext(("k",))
    ctx.buffer("work", (8,), np.float32)
    b = ctx.buffer("work", (8,), np.float64)
    assert b.dtype == np.float64
    assert ctx.alloc_count == 2


def test_alloc_hook_fires_on_real_allocations_only():
    calls = []
    ctx = ReductionContext(("k",))
    ctx.buffer("a", (4,), np.float64, on_alloc=calls.append)
    ctx.buffer("a", (4,), np.float64, on_alloc=calls.append)
    assert calls == [32]


def test_object_builder_runs_once():
    ctx = ReductionContext(("k",))
    built = []
    obj1 = ctx.object("h", lambda: built.append(1) or "hierarchy")
    obj2 = ctx.object("h", lambda: built.append(1) or "other")
    assert obj1 == obj2 == "hierarchy"
    assert built == [1]


def test_cache_hit_miss_stats():
    cache = ContextCache()
    cache.get(("a",))
    cache.get(("a",))
    cache.get(("b",))
    assert cache.hits == 1
    assert cache.misses == 2
    assert cache.hit_rate == pytest.approx(1 / 3)


def test_cache_returns_same_context():
    cache = ContextCache()
    c1 = cache.get(("shape", "dtype"))
    c1.buffer("x", (8,))
    c2 = cache.get(("shape", "dtype"))
    assert c1 is c2
    assert "x" in c2


def test_lru_eviction():
    cache = ContextCache(capacity=2)
    cache.get(("a",))
    cache.get(("b",))
    cache.get(("a",))   # refresh a
    cache.get(("c",))   # evicts b
    assert ("a",) in cache
    assert ("b",) not in cache
    assert ("c",) in cache
    assert cache.evictions == 1


def test_eviction_invokes_free_hook():
    freed = []
    cache = ContextCache(capacity=1, on_free=freed.append)
    c1 = cache.get(("a",))
    c1.buffer("buf", (100,), np.float64)
    cache.get(("b",))
    assert freed == [800]


def test_clear_frees_everything():
    freed = []
    cache = ContextCache(on_free=freed.append)
    cache.get(("a",)).buffer("x", (10,), np.float64)
    cache.get(("b",)).buffer("y", (20,), np.float64)
    cache.clear()
    assert sorted(freed) == [80, 160]
    assert len(cache) == 0


def test_invalid_capacity():
    with pytest.raises(ValueError):
        ContextCache(capacity=0)


def test_config_cache_key_distinguishes_settings():
    from repro.core.config import Config, ErrorMode

    base = Config(error_bound=1e-3)
    assert base.cache_key((4, 4), np.float32) == base.cache_key((4, 4), np.float32)
    assert base.cache_key((4, 4), np.float32) != base.cache_key((4, 4), np.float64)
    assert base.cache_key((4, 4), np.float32) != base.cache_key((4, 5), np.float32)
    other = Config(error_bound=1e-4)
    assert base.cache_key((4, 4), np.float32) != other.cache_key((4, 4), np.float32)
