"""Zero-alloc steady state (CMM, paper III-B) and cache-eviction safety.

The Context Memory Model's whole point is that the *steady state*
performs no runtime memory management: after warm-up, repeated
reductions of same-shaped data must not allocate through their cached
contexts.  These tests pin that property for all three codecs, and pin
the safety/accounting contracts of :class:`ContextCache` eviction.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Config, ErrorMode, HuffmanX, MGARDX, ZFPX
from repro.core.context import POISON_BYTE, ContextCache, UseAfterEvictError


def _steady_state_events(codec, data):
    """New cache-wide allocation events on a 3rd same-shaped compress
    and a 2nd same-stream decompress (calls 1-2 are warm-up)."""
    blob = codec.compress(data)
    codec.compress(data)
    codec.decompress(blob)
    before = codec.cache.alloc_events
    codec.compress(data)
    codec.decompress(blob)
    return codec.cache.alloc_events - before


class TestZeroAllocSteadyState:
    def test_huffman(self, rng):
        data = rng.normal(size=(32, 32, 32)).astype(np.float32)
        assert _steady_state_events(HuffmanX(), data) == 0

    def test_huffman_openmp_segments(self, rng):
        from repro.adapters import get_adapter

        # Large enough for the HUFP chunk-parallel container (threads
        # pinned so it triggers on any host): the per-segment contexts
        # must also reach steady state.
        data = rng.integers(0, 256, size=400_000).astype(np.uint8)
        codec = HuffmanX(adapter=get_adapter("openmp", num_threads=4))
        assert _steady_state_events(codec, data) == 0

    def test_mgard(self, rng):
        data = rng.normal(size=(24, 24, 24)).astype(np.float32)
        codec = MGARDX(Config(error_bound=1e-3, error_mode=ErrorMode.REL))
        assert _steady_state_events(codec, data) == 0

    def test_zfp(self, rng):
        data = rng.normal(size=(24, 24, 24)).astype(np.float32)
        assert _steady_state_events(ZFPX(rate=10), data) == 0

    def test_alloc_count_stops_increasing(self, rng):
        # The per-context counter (not just the cache aggregate) must
        # flatline too: same context, zero new buffer/scratch entries.
        keys = rng.integers(0, 64, size=10_000).astype(np.int64)
        h = HuffmanX()
        h.compress_keys(keys, 64)
        h.compress_keys(keys, 64)
        ctx = h._key_context(keys.shape, keys.dtype, 64, tag=None)
        before = ctx.alloc_count
        h.compress_keys(keys, 64)
        assert ctx.alloc_count == before


class TestEvictionSafety:
    def test_eviction_poisons_buffers_and_invalidates_context(self):
        # Satellite fix: eviction used to leave buffers reachable from
        # caller-held views — silently stale.  Now it is loud: floats
        # read NaN, ints read 0xA5, and further context use raises.
        cache = ContextCache(capacity=1)
        ctx = cache.get("a")
        buf = ctx.buffer("x", (128,), np.float64)
        ints = ctx.buffer("y", (16,), np.int64)
        buf[:] = 7.0
        cache.get("b")  # evicts "a" mid-run
        assert "a" not in cache
        assert cache.evictions == 1
        assert ctx.evicted
        assert np.all(np.isnan(buf))
        assert np.all(ints.view(np.uint8) == POISON_BYTE)
        with pytest.raises(UseAfterEvictError):
            ctx.buffer("x", (128,), np.float64)
        with pytest.raises(UseAfterEvictError):
            ctx.scratch("s", 8)
        with pytest.raises(UseAfterEvictError):
            ctx.object("o", lambda: 1)

    def test_pinned_context_survives_eviction_pressure(self):
        cache = ContextCache(capacity=1)
        ctx = cache.get("a", pin=True)
        buf = ctx.buffer("x", (64,), np.float64)
        buf[:] = 7.0
        other = cache.get("b")  # "a" is pinned: "b" is the only victim…
        assert not ctx.evicted  # …but never evicts itself on creation
        assert not other.evicted
        assert len(cache) == 2  # temporarily over capacity
        assert np.all(buf == 7.0)
        cache.release(ctx)
        assert len(cache) == 1  # release() shrinks back to capacity
        assert ctx.evicted

    def test_pins_nest(self):
        cache = ContextCache(capacity=1)
        ctx = cache.get("a", pin=True)
        assert cache.get("a", pin=True) is ctx
        cache.release(ctx)
        cache.get("b")
        assert not ctx.evicted  # still one pin outstanding
        cache.release(ctx)
        cache.get("c")
        assert ctx.evicted

    def test_reacquired_key_gets_fresh_context(self):
        cache = ContextCache(capacity=1)
        first = cache.get("a")
        first.buffer("x", (8,), np.uint8)
        cache.get("b")
        again = cache.get("a")
        assert again is not first
        assert "x" not in again

    def test_codec_roundtrips_under_eviction_pressure(self, rng):
        # capacity=1 forces an eviction on every shape change; streams
        # must still round-trip exactly (evicted contexts are dropped,
        # never recycled under in-flight work).
        cache = ContextCache(capacity=1)
        h = HuffmanX(context_cache=cache)
        for n in (1_000, 2_000, 3_000, 1_000):
            keys = rng.integers(0, 64, size=n).astype(np.int64)
            blob = h.compress_keys(keys, 64)
            assert np.array_equal(h.decompress_keys(blob), keys)
        assert cache.evictions >= 3


class TestByteAccounting:
    @settings(deadline=None, max_examples=60)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 5), st.integers(1, 2048)),
            min_size=1,
            max_size=40,
        ),
        capacity=st.integers(1, 4),
    )
    def test_alloc_and_free_totals_balance(self, ops, capacity):
        """Every allocated byte is eventually freed exactly once:
        replacement, eviction and clear() keep the totals balanced, and
        the external hooks observe the same byte counts."""
        hook = {"alloc": 0, "free": 0}
        cache = ContextCache(
            capacity=capacity,
            on_alloc=lambda nb: hook.__setitem__("alloc", hook["alloc"] + nb),
            on_free=lambda nb: hook.__setitem__("free", hook["free"] + nb),
        )
        for key, size in ops:
            ctx = cache.get(key)
            ctx.scratch("s", size, np.uint8)  # grow-only capacity
            ctx.buffer("b", (size,), np.float32)  # realloc on size change
        live = cache.live_bytes
        assert cache.alloc_bytes_total - cache.free_bytes_total == live
        cache.clear()
        assert cache.live_bytes == 0
        assert cache.free_bytes_total == cache.alloc_bytes_total
        assert hook["alloc"] == cache.alloc_bytes_total
        assert hook["free"] == cache.free_bytes_total
