"""Config validation and error-bound resolution."""

import numpy as np
import pytest

from repro.core.config import Config, ErrorMode


def test_defaults():
    c = Config()
    assert c.error_mode is ErrorMode.REL
    assert c.error_bound == 1e-4


def test_abs_bound_passthrough():
    c = Config(error_bound=0.5, error_mode=ErrorMode.ABS)
    data = np.array([0.0, 100.0])
    assert c.absolute_bound(data) == 0.5


def test_rel_bound_scales_with_range():
    c = Config(error_bound=1e-2, error_mode=ErrorMode.REL)
    data = np.array([-5.0, 15.0])  # range 20
    assert c.absolute_bound(data) == pytest.approx(0.2)


def test_rel_bound_constant_field():
    c = Config(error_bound=1e-2, error_mode=ErrorMode.REL)
    data = np.full(10, 3.0)
    assert c.absolute_bound(data) == pytest.approx(1e-2)


def test_invalid_error_bound():
    with pytest.raises(ValueError):
        Config(error_bound=0.0)
    with pytest.raises(ValueError):
        Config(error_bound=-1.0)


def test_invalid_rate():
    with pytest.raises(ValueError):
        Config(rate=0)
    with pytest.raises(ValueError):
        Config(rate=100)


def test_invalid_lossless():
    with pytest.raises(ValueError):
        Config(lossless="zstd")


def test_frozen():
    c = Config()
    with pytest.raises(AttributeError):
        c.error_bound = 1.0
