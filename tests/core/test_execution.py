"""Execution models (GEM/DEM) and the Table I mapping."""

import numpy as np
import pytest

from repro.core.abstractions import Abstraction
from repro.core.execution import (
    ABSTRACTION_TO_MODEL,
    DEM,
    GEM,
    ExecutionModel,
    model_for,
)
from repro.core.functor import FnLocality


def test_table1_mapping_matches_paper():
    """Table I: Locality/Iterative → GEM; Map&Process/Global → DEM."""
    assert model_for(Abstraction.LOCALITY) is ExecutionModel.GEM
    assert model_for(Abstraction.ITERATIVE) is ExecutionModel.GEM
    assert model_for(Abstraction.MAP_AND_PROCESS) is ExecutionModel.DEM
    assert model_for(Abstraction.GLOBAL) is ExecutionModel.DEM


def test_table1_resource_mapping_strings():
    assert ABSTRACTION_TO_MODEL[Abstraction.LOCALITY][1] == "block -> group"
    assert ABSTRACTION_TO_MODEL[Abstraction.ITERATIVE][1] == "B vectors -> group"


def test_gem_single_stage(serial_adapter, rng):
    batch = rng.normal(size=(4, 3))
    gem = GEM(serial_adapter, [FnLocality(lambda b: b + 1, "inc")])
    assert np.allclose(gem.run(batch), batch + 1)


def test_gem_multi_stage_fusion(serial_adapter, rng):
    """Fused stages behave exactly like sequential application."""
    batch = rng.normal(size=(5, 4))
    s1 = FnLocality(lambda b: b * 2, "dbl")
    s2 = FnLocality(lambda b: b - 1, "dec")
    gem = GEM(serial_adapter, [s1, s2])
    assert np.allclose(gem.run(batch), batch * 2 - 1)


def test_gem_fused_name_and_cost():
    s1 = FnLocality(lambda b: b, "a", bytes_per_element=4)
    s2 = FnLocality(lambda b: b, "b", bytes_per_element=6)
    from repro.adapters import get_adapter

    gem = GEM(get_adapter("serial"), [s1, s2])
    assert gem._fused.name == "a+b"
    assert gem._fused.bytes_per_element == 10


def test_gem_requires_stages(serial_adapter):
    with pytest.raises(ValueError):
        GEM(serial_adapter, [])


def test_dem_stage_order(serial_adapter):
    dem = DEM(serial_adapter, [lambda d: d + "b", lambda d: d + "c"], name="abc")
    assert dem.run("a") == "abc"


def test_dem_requires_stages(serial_adapter):
    with pytest.raises(ValueError):
        DEM(serial_adapter, [])


def test_gem_on_all_adapters_identical(rng):
    from repro.adapters import get_adapter

    batch = rng.normal(size=(6, 8))
    stages = [FnLocality(lambda b: np.sqrt(np.abs(b)), "sqrt")]
    results = [
        GEM(get_adapter(fam), stages).run(batch)
        for fam in ("serial", "openmp", "cuda", "hip")
    ]
    for r in results[1:]:
        assert np.array_equal(results[0], r)
