"""Table II: execution-model → device mapping is recorded faithfully."""

from repro.adapters import get_adapter
from repro.machine.specs import ALL_SPECS, CPU_SPECS, GPU_SPECS


def test_every_gpu_spec_has_an_adapter_family():
    for spec in GPU_SPECS.values():
        assert spec.family in ("cuda", "hip")
        adapter = get_adapter(spec.family, spec=spec)
        assert adapter.spec is spec


def test_every_cpu_spec_drives_openmp():
    for spec in CPU_SPECS.values():
        assert spec.family == "openmp"
        adapter = get_adapter("openmp", spec=spec)
        assert adapter.num_threads == spec.units
        adapter.close()


def test_gem_group_width_matches_units():
    """Groups map to SMs (CUDA), CUs (HIP), cores (OpenMP) — Table II."""
    assert ALL_SPECS["V100"].units == 80    # SMs
    assert ALL_SPECS["MI250X"].units == 220  # CUs
    assert ALL_SPECS["EPYC7713"].units == 64  # cores


def test_extensibility_via_registration():
    """The paper's claim: new backends = new device adapters."""
    from repro.adapters.base import _REGISTRY, register_adapter
    from repro.adapters.serial import SerialAdapter

    class KokkosLikeAdapter(SerialAdapter):
        family = "kokkos-test"

    register_adapter("kokkos-test", KokkosLikeAdapter)
    try:
        a = get_adapter("kokkos-test")
        assert isinstance(a, KokkosLikeAdapter)
    finally:
        _REGISTRY.pop("kokkos-test", None)
