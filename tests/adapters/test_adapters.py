"""Device adapters: registry, execution semantics, tracing."""

import numpy as np
import pytest

from repro.adapters import (
    CudaSimAdapter,
    HipSimAdapter,
    OpenMPAdapter,
    SerialAdapter,
    get_adapter,
    list_adapters,
)
from repro.core.functor import FnDomain, FnLocality
from repro.machine.specs import A100, EPYC7713, MI250X, V100


def test_registry_lists_all_families():
    assert set(list_adapters()) == {"serial", "openmp", "cuda", "hip", "sycl"}


def test_get_adapter_unknown():
    with pytest.raises(KeyError):
        get_adapter("metal")


def test_default_specs():
    assert get_adapter("cuda").spec is V100
    assert get_adapter("hip").spec is MI250X
    assert get_adapter("serial").spec is None


def test_cuda_adapter_accepts_cuda_specs_only():
    CudaSimAdapter(spec=A100)
    with pytest.raises(ValueError):
        CudaSimAdapter(spec=MI250X)
    with pytest.raises(ValueError):
        HipSimAdapter(spec=V100)


def test_openmp_thread_count_from_spec():
    a = OpenMPAdapter(spec=EPYC7713)
    assert a.num_threads == 64
    a.close()


def test_openmp_invalid_threads():
    with pytest.raises(ValueError):
        OpenMPAdapter(num_threads=0)


def test_openmp_single_thread_no_pool():
    a = OpenMPAdapter(num_threads=1)
    assert a._pool is None
    out = a.execute_group_batch(FnLocality(lambda b: b + 1, "inc"), np.zeros((3, 2)))
    assert np.all(out == 1)


def test_all_adapters_same_gem_result(rng):
    batch = rng.normal(size=(13, 5, 5))
    f = FnLocality(lambda b: b**2 - b, "poly")
    ref = get_adapter("serial").execute_group_batch(f, batch)
    for fam in ("openmp", "cuda", "hip", "sycl"):
        out = get_adapter(fam).execute_group_batch(f, batch)
        assert np.array_equal(ref, out), fam


def test_strict_serial_detects_impure_functor(rng):
    """A functor leaking state across blocks diverges between strict
    (per-block) and batched execution — the purity oracle."""
    batch = rng.normal(size=(6, 4))
    impure = FnLocality(lambda b: b - b.mean(), "impure")  # mean over batch!
    strict = get_adapter("serial", strict=True).execute_group_batch(impure, batch)
    batched = get_adapter("cuda").execute_group_batch(impure, batch)
    assert not np.allclose(strict, batched)


def test_sim_adapters_record_kernel_trace(rng):
    a = get_adapter("cuda")
    f = FnLocality(lambda b: b, "noop", bytes_per_element=16)
    a.execute_group_batch(f, rng.normal(size=(4, 100)))
    assert len(a.trace) == 1
    rec = a.trace[0]
    assert rec.name == "noop"
    assert rec.model == "GEM"
    assert rec.traffic_bytes == 16 * 400
    assert rec.duration == pytest.approx(16 * 400 / V100.mem_bandwidth)


def test_trace_accumulates_and_resets(rng):
    a = get_adapter("hip")
    f = FnLocality(lambda b: b, "noop")
    a.execute_group_batch(f, rng.normal(size=(2, 10)))
    a.execute_domain(FnDomain(lambda d: d, name="dem"), rng.normal(size=50))
    assert len(a.trace) == 2
    assert a.simulated_time() > 0
    a.reset_trace()
    assert a.trace == []


def test_specless_adapter_records_nothing(rng):
    a = get_adapter("serial")
    a.execute_group_batch(FnLocality(lambda b: b, "noop"), rng.normal(size=(2, 3)))
    assert a.trace == []


def test_empty_batch_passthrough():
    a = get_adapter("serial")
    batch = np.zeros((0, 4))
    out = a.execute_group_batch(FnLocality(lambda b: b, "noop"), batch)
    assert out.shape[0] == 0


def test_adapter_name():
    assert get_adapter("cuda").name == "cuda(V100)"
    # Under HPDR_SAN get_adapter auto-wraps CPU families in the
    # sanitizer, which brackets the name without hiding it.
    assert get_adapter("serial").name in ("serial", "san(serial)")


def test_openmp_many_groups_chunked(rng):
    """More groups than threads: results must stitch back in order."""
    a = OpenMPAdapter(num_threads=4)
    batch = np.arange(100, dtype=float).reshape(100, 1)
    out = a.execute_group_batch(FnLocality(lambda b: b * 2, "dbl"), batch)
    assert np.array_equal(out, batch * 2)
    a.close()


def test_sycl_adapter_is_vendor_agnostic():
    """The SYCL backend accepts any processor spec (portability layer)."""
    from repro.adapters.sycl_sim import SyclSimAdapter
    from repro.machine.specs import A100, MI250X

    assert SyclSimAdapter(spec=A100).spec is A100
    assert SyclSimAdapter(spec=MI250X).spec is MI250X
