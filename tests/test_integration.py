"""End-to-end integration: data → HPDR reduction → BP file → cross-
backend reconstruction, plus the simulated platform path."""

import numpy as np
import pytest

from repro import (
    LZ4,
    SZ,
    Config,
    ErrorMode,
    HuffmanX,
    MGARDX,
    ZFPX,
    get_adapter,
)
from repro.data import load
from repro.io.engine import BPReader, BPWriter


def test_full_write_read_campaign(tmp_path):
    """Simulated campaign: 4 ranks compress NYX slices on a 'GPU'
    backend, aggregate into 2 subfiles, read back on a CPU backend."""
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    fields = {r: load("nyx", (24, 24, 24), seed=r) for r in range(4)}

    writer = BPWriter(tmp_path / "campaign", num_aggregators=2)
    gpu = get_adapter("cuda")
    for rank, data in fields.items():
        writer.put("density", data, rank=rank, operator="mgard-x",
                   compressor=MGARDX(cfg, adapter=gpu))
    stats = writer.close()
    assert stats["stored_bytes"] < stats["original_bytes"]

    reader = BPReader(tmp_path / "campaign")
    cpu = get_adapter("openmp")
    for rank, original in fields.items():
        back = reader.get("density", rank=rank,
                          compressor=MGARDX(cfg, adapter=cpu))
        assert np.max(np.abs(back - original)) <= 1e-3 * np.ptp(original)


def test_every_compressor_on_every_dataset():
    """All Table III stand-ins flow through every reduction operator."""
    cfg = Config(error_bound=1e-2, error_mode=ErrorMode.REL)
    datasets = {
        "nyx": load("nyx", (16, 16, 16)),
        "e3sm": load("e3sm", (8, 12, 24)),
        "xgc": load("xgc", (2, 8, 32, 8)),
    }
    for name, data in datasets.items():
        vr = float(np.ptp(data))
        # MGARD-X (lossy, bound)
        m = MGARDX(cfg)
        assert m.max_error(data, m.compress(data)) <= 1e-2 * vr
        # SZ (lossy, bound)
        s = SZ(cfg)
        assert s.max_error(data, s.compress(data)) <= 1e-2 * vr
        # ZFP-X (fixed rate) — supports up to 4D
        z = ZFPX(rate=16)
        back = z.decompress(z.compress(data.astype(np.float32)))
        assert back.shape == data.shape
        # Huffman-X / LZ4 (lossless)
        h = HuffmanX()
        assert np.array_equal(h.decompress(h.compress(data)), data)
        small = np.ascontiguousarray(data).reshape(-1)[:8192]
        l = LZ4()
        assert np.array_equal(l.decompress(l.compress(small)), small)


def test_simulated_platform_end_to_end():
    """Measure a real compression ratio, feed it to the Frontier-scale
    simulation, and check the headline claim's shape."""
    from repro.bench.methods import method_at_scale
    from repro.io.parallel import aggregate_reduction, weak_scaling_io
    from repro.machine.topology import FRONTIER

    data = load("nyx", (32, 32, 32))
    cfg = Config(error_bound=1e-2, error_mode=ErrorMode.REL)
    comp = MGARDX(cfg)
    ratio = comp.compression_ratio(data, comp.compress(data))
    assert ratio > 2

    method = method_at_scale("mgard-x", ratio=ratio, error_bound=1e-2)
    agg = aggregate_reduction(FRONTIER, 1024, method, int(15e9))
    assert agg > 80e12  # ~103 TB/s headline territory

    io = weak_scaling_io(FRONTIER, [1024], method, bytes_per_gpu=int(7.5e9))[0]
    assert io.write_speedup > 2


def test_chunked_pipeline_functional_equivalence(tmp_path):
    """Compressing in pipeline chunks and storing each chunk reproduces
    the field within the same bound as whole-array compression."""
    from repro.core.pipeline import chunked_compress, chunked_decompress

    data = load("e3sm", (16, 24, 32))
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    comp = MGARDX(cfg)
    blob = chunked_compress(comp, data, chunk_elems=4)
    back = chunked_decompress(comp, blob)
    # Per-chunk relative bounds are per-chunk ranges; globally the error
    # stays within the bound computed on the global range.
    assert np.max(np.abs(back - data)) <= 1e-3 * np.ptp(data) * 2


def test_public_api_surface():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__ == "1.0.0"
