"""Stream-robustness: corrupt/truncated inputs fail cleanly.

A data-reduction library sits in I/O paths; malformed bytes must raise
``ValueError``-family errors, never crash the interpreter or return
silently wrong data.
"""

import numpy as np
import pytest

from repro import Config, ErrorMode, LZ4, MGARDX, SZ, ZFPX, HuffmanX
from repro.io.bp import BPFile

ACCEPTABLE = (ValueError, KeyError, IndexError, struct_err := __import__("struct").error)


@pytest.fixture(scope="module")
def streams(rng=np.random.default_rng(0)):
    data = rng.normal(size=(12, 12)).astype(np.float32)
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    out = {
        "mgard": (MGARDX(cfg), MGARDX(cfg).compress(data)),
        "zfp": (ZFPX(rate=12), ZFPX(rate=12).compress(data)),
        "sz": (SZ(cfg), SZ(cfg).compress(data)),
        "huffman": (HuffmanX(), HuffmanX().compress(data)),
        "lz4": (LZ4(), LZ4().compress(data)),
    }
    return out


@pytest.mark.parametrize("name", ["mgard", "zfp", "sz", "huffman", "lz4"])
def test_truncated_stream_raises(streams, name):
    comp, blob = streams[name]
    for cut in (8, len(blob) // 3, len(blob) - 3):
        with pytest.raises(ACCEPTABLE):
            comp.decompress(blob[:cut])


@pytest.mark.parametrize("name", ["mgard", "zfp", "sz", "huffman", "lz4"])
def test_wrong_magic_raises(streams, name):
    comp, blob = streams[name]
    with pytest.raises(ACCEPTABLE):
        comp.decompress(b"ZZZZ" + blob[4:])


def test_cross_codec_streams_rejected(streams):
    """Feeding one codec's stream to another must fail, not misdecode."""
    mgard, mgard_blob = streams["mgard"]
    zfp, zfp_blob = streams["zfp"]
    with pytest.raises(ACCEPTABLE):
        mgard.decompress(zfp_blob)
    with pytest.raises(ACCEPTABLE):
        zfp.decompress(mgard_blob)


def test_bp_truncation(streams, rng=np.random.default_rng(1)):
    bp = BPFile()
    bp.put("x", rng.normal(size=(16,)))
    blob = bp.tobytes()
    with pytest.raises(ACCEPTABLE):
        BPFile.frombytes(blob[: len(blob) // 2])


def test_bitflip_in_payload_detected_by_bp_crc(rng=np.random.default_rng(2)):
    bp = BPFile()
    bp.put("x", rng.normal(size=(64,)))
    blob = bytearray(bp.tobytes())
    blob[-10] ^= 0x40
    with pytest.raises(ValueError, match="CRC"):
        BPFile.frombytes(bytes(blob))


def test_mgard_stream_length_mismatch_detected(streams):
    """Tampering with the MGARD header's shape must be caught by the
    coefficient-count consistency check."""
    comp, blob = streams["mgard"]
    mutated = bytearray(blob)
    # shape starts after magic(4)+BBBB(4)+dtype string('<f4' = 3 bytes)
    mutated[11] = 99  # change first dim 12 -> 99
    with pytest.raises(ACCEPTABLE):
        comp.decompress(bytes(mutated))
