"""perf_gate schema validation: null/missing cells exit 2, never crash.

Regression test for the raw ``KeyError``/``TypeError`` the gate used to
raise when a benchmark record contained ``null`` where a number belongs
(a generator that recorded a failed measurement): every malformed cell
must surface as :class:`MissingBenchCell` → exit 2 with the offending
field named, distinct from exit 1 (a real measured regression).
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "perf_gate", REPO / "scripts" / "perf_gate.py")
perf_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_gate)


def codec_record(**overrides):
    cells = {
        codec: {"compress_MBps": 50.0, "decompress_MBps": 40.0}
        for codec in perf_gate._CODECS
    }
    cells.update(overrides)
    return {"current": cells}


def serve_record(**overrides):
    cells = {cell: {"rps": 1000.0, "p95_ms": 1.0}
             for cell in perf_gate._SERVE_CELLS}
    cells.update(overrides)
    return {"current": cells, "speedup_c64": {"b8": 3.0}, "codec_batch": {}}


def tune_record(cells):
    return {"current": cells}


# ---------------------------------------------------------------------------
# _metric: the null-cell guard itself
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("value", [None, "fast", [], {}, True])
def test_metric_rejects_non_numbers(value):
    with pytest.raises(perf_gate.MissingBenchCell, match="numeric"):
        perf_gate._metric({"rps": value}, "rps", "test record")


def test_metric_rejects_missing_key():
    with pytest.raises(perf_gate.MissingBenchCell, match="rps"):
        perf_gate._metric({}, "rps", "test record")


def test_metric_accepts_ints_and_floats():
    assert perf_gate._metric({"rps": 3}, "rps", "r") == 3.0
    assert perf_gate._metric({"rps": 2.5}, "rps", "r") == 2.5


# ---------------------------------------------------------------------------
# compare / compare_serve / compare_cluster on records with null cells
# ---------------------------------------------------------------------------
def test_compare_null_metric_raises_missing_cell():
    fresh = codec_record(huffman={"compress_MBps": None,
                                  "decompress_MBps": 40.0})
    with pytest.raises(perf_gate.MissingBenchCell, match="huffman"):
        perf_gate.compare(codec_record(), fresh, tolerance=0.2)


def test_compare_serve_null_rps_raises_missing_cell():
    fresh = serve_record(c1_b1={"rps": None, "p95_ms": 1.0})
    with pytest.raises(perf_gate.MissingBenchCell, match="c1_b1"):
        perf_gate.compare_serve(serve_record(), fresh, 0.2, 2.0)


def test_compare_serve_null_speedup_raises_missing_cell():
    fresh = serve_record()
    fresh["speedup_c64"] = {"b8": None}
    with pytest.raises(perf_gate.MissingBenchCell, match="speedup_c64"):
        perf_gate.compare_serve(serve_record(), fresh, 0.2, 2.0)


def test_compare_cluster_null_scaling_raises_missing_cell():
    cells = {cell: {"rps": 1000.0} for cell in perf_gate._CLUSTER_CELLS}
    committed = {"current": cells, "scaling": {"s4_over_s1": 2.0}}
    fresh = {"current": cells, "scaling": {"s4_over_s1": None}}
    with pytest.raises(perf_gate.MissingBenchCell, match="s4_over_s1"):
        perf_gate.compare_cluster(committed, fresh, 0.2, 1.6)


def test_main_exits_2_on_null_cell(tmp_path):
    committed = tmp_path / "committed.json"
    fresh = tmp_path / "fresh.json"
    committed.write_text(json.dumps(codec_record()))
    fresh.write_text(json.dumps(
        codec_record(zfp={"compress_MBps": 50.0, "decompress_MBps": None})))
    rc = perf_gate.main(["--committed", str(committed),
                         "--fresh", str(fresh)])
    assert rc == 2


def test_main_report_only_swallows_null_cell(tmp_path):
    committed = tmp_path / "committed.json"
    fresh = tmp_path / "fresh.json"
    committed.write_text(json.dumps(codec_record()))
    fresh.write_text(json.dumps(
        codec_record(zfp={"compress_MBps": None, "decompress_MBps": 1.0})))
    rc = perf_gate.main(["--committed", str(committed),
                         "--fresh", str(fresh), "--report-only"])
    assert rc == 0


# ---------------------------------------------------------------------------
# compare_tune: the auto-tuner gate
# ---------------------------------------------------------------------------
def good_tune_cells():
    return {
        "nyx_zfp-x": {"default_s": 0.02, "tuned_s": 0.02, "speedup": 1.0},
        "ints_huffman-x": {"default_s": 0.05, "tuned_s": 0.04,
                           "speedup": 1.25},
        "serve_c32": {"default_s": 0.40, "tuned_s": 0.25, "speedup": 1.6},
    }


def test_compare_tune_passes_good_record():
    record = tune_record(good_tune_cells())
    assert perf_gate.compare_tune(record, record) == []


def test_compare_tune_fails_below_floor():
    cells = good_tune_cells()
    cells["nyx_zfp-x"]["speedup"] = 0.93
    failures = perf_gate.compare_tune(tune_record(good_tune_cells()),
                                      tune_record(cells))
    assert any("nyx_zfp-x" in f for f in failures)


def test_compare_tune_requires_winning_cells():
    cells = {k: dict(v, speedup=1.0) for k, v in good_tune_cells().items()}
    failures = perf_gate.compare_tune(tune_record(cells), tune_record(cells))
    assert any("strictly-winning" in f for f in failures)


def test_compare_tune_null_speedup_raises_missing_cell():
    cells = good_tune_cells()
    cells["serve_c32"]["speedup"] = None
    with pytest.raises(perf_gate.MissingBenchCell, match="serve_c32"):
        perf_gate.compare_tune(tune_record(good_tune_cells()),
                               tune_record(cells))


def test_compare_tune_missing_fresh_cell_raises():
    fresh = good_tune_cells()
    fresh.pop("serve_c32")
    with pytest.raises(perf_gate.MissingBenchCell, match="serve_c32"):
        perf_gate.compare_tune(tune_record(good_tune_cells()),
                               tune_record(fresh))


def test_main_gates_tune_record(tmp_path):
    committed = tmp_path / "committed.json"
    fresh = tmp_path / "fresh.json"
    codec_committed = tmp_path / "codec.json"
    codec_committed.write_text(json.dumps(codec_record()))
    committed.write_text(json.dumps(tune_record(good_tune_cells())))
    fresh.write_text(json.dumps(tune_record(good_tune_cells())))
    rc = perf_gate.main([
        "--committed", str(codec_committed),
        "--fresh", str(codec_committed),
        "--tune-committed", str(committed),
        "--tune-fresh", str(fresh),
    ])
    assert rc == 0

    losing = good_tune_cells()
    losing["ints_huffman-x"]["speedup"] = 0.8
    fresh.write_text(json.dumps(tune_record(losing)))
    rc = perf_gate.main([
        "--committed", str(codec_committed),
        "--fresh", str(codec_committed),
        "--tune-committed", str(committed),
        "--tune-fresh", str(fresh),
    ])
    assert rc == 1
