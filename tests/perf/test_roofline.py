"""Fig. 11 roofline fitting."""

import numpy as np
import pytest

from repro.perf.models import kernel_model
from repro.perf.roofline import RooflineModel, fit_roofline, profile_points

MB = 1e6


def synthetic_profile(gamma=30e9, c_th=128e6, floor=0.05):
    chunks = np.array([1, 2, 4, 8, 16, 32, 64, 128, 256, 512]) * MB
    phi = np.where(
        chunks >= c_th,
        gamma,
        (floor + (1 - floor) * chunks / c_th) * gamma,
    )
    return chunks, phi


def test_fit_recovers_plateau():
    chunks, phi = synthetic_profile()
    m = fit_roofline(chunks, phi)
    assert m.gamma == pytest.approx(30e9)
    assert m.c_threshold <= 128 * MB * 1.01


def test_fit_ramp_slope_positive():
    chunks, phi = synthetic_profile()
    m = fit_roofline(chunks, phi)
    assert m.alpha > 0
    # Ramp predictions close to truth at a mid chunk.
    mid = 32 * MB
    truth = (0.05 + 0.95 * mid / (128 * MB)) * 30e9
    assert m.phi(mid) == pytest.approx(truth, rel=0.15)


def test_predict_vectorized_monotone():
    chunks, phi = synthetic_profile()
    m = fit_roofline(chunks, phi)
    xs = np.linspace(1 * MB, 600 * MB, 50)
    ys = m.predict(xs)
    assert np.all(np.diff(ys) >= -1e-6)
    assert ys[-1] == pytest.approx(m.gamma)


def test_fit_on_calibrated_model_round_trips():
    """Fitting the simulator's own Φ must recover it closely — this is
    exactly the paper's profiling procedure."""
    km = kernel_model("mgard-x", "V100")
    chunks = np.array([4, 8, 16, 32, 64, 128, 256, 512, 1024]) * MB
    c, p = profile_points(km.phi, chunks)
    m = fit_roofline(c, p)
    assert m.gamma == pytest.approx(km.gamma, rel=0.01)
    for test_chunk in (16 * MB, 64 * MB, 300 * MB):
        assert m.phi(test_chunk) == pytest.approx(km.phi(test_chunk), rel=0.25)


def test_all_saturated_flat_model():
    chunks = np.array([256, 512, 1024]) * MB
    phi = np.full(3, 10e9)
    m = fit_roofline(chunks, phi)
    assert m.phi(1 * MB) == pytest.approx(10e9)


def test_ramp_cutoff_excludes_launch_dominated_points():
    """Tiny chunks below f·γ are excluded from the fit (paper: f=0.1)."""
    chunks, phi = synthetic_profile()
    phi = phi.copy()
    phi[0] = 0.001 * 30e9  # pathological tiny-chunk point
    m = fit_roofline(chunks, phi, ramp_cutoff=0.1)
    assert m.alpha > 0


def test_validation_errors():
    with pytest.raises(ValueError):
        fit_roofline(np.array([1.0]), np.array([1.0]))
    with pytest.raises(ValueError):
        fit_roofline(np.array([1.0, 2.0]), np.array([1.0]))
    with pytest.raises(ValueError):
        fit_roofline(np.array([1.0, -2.0]), np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        fit_roofline(np.array([[1.0, 2.0]]), np.array([[1.0, 2.0]]))


def test_single_ramp_point_line_through_knee():
    chunks = np.array([32, 256, 512]) * MB
    phi = np.array([10e9, 30e9, 30e9])
    m = fit_roofline(chunks, phi)
    assert m.phi(32 * MB) == pytest.approx(10e9, rel=0.05)
    assert m.gamma == pytest.approx(30e9)
