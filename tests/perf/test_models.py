"""Calibrated kernel models: Fig. 12 shapes, Φ behaviour, eb factor."""

import pytest

from repro.machine.specs import FIG12_PROCESSORS
from repro.perf.models import (
    STAGE_SPLIT,
    kernel_model,
    kernel_throughput,
    list_pipelines,
    supported_processors,
)

GB = 1e9


def test_fig12_gpu_throughput_ranges():
    """Paper: up to 45 / 210 / 150 GB/s on GPUs for the three kernels."""
    gpus = [p for p in FIG12_PROCESSORS if p != "EPYC7713"]
    mg = max(kernel_throughput("mgard-x", g) for g in gpus)
    zf = max(kernel_throughput("zfp-x", g) for g in gpus)
    hf = max(kernel_throughput("huffman-x", g) for g in gpus)
    assert 40 * GB <= mg <= 50 * GB
    assert 190 * GB <= zf <= 230 * GB
    assert 130 * GB <= hf <= 170 * GB


def test_fig12_cpu_throughputs():
    """Paper: up to 2 / 18 / 48 GB/s on CPUs."""
    assert kernel_throughput("mgard-x", "EPYC7713") == pytest.approx(2 * GB)
    assert kernel_throughput("zfp-x", "EPYC7713") == pytest.approx(18 * GB)
    assert kernel_throughput("huffman-x", "EPYC7713") == pytest.approx(48 * GB)


def test_ordering_zfp_fastest_mgard_slowest():
    for proc in FIG12_PROCESSORS:
        mg = kernel_throughput("mgard-x", proc)
        zf = kernel_throughput("zfp-x", proc)
        hf = kernel_throughput("huffman-x", proc)
        assert mg < hf < zf or mg < zf  # MGARD always the heaviest


def test_phi_ramp_then_plateau():
    m = kernel_model("mgard-x", "V100")
    small = m.phi(1e6)
    mid = m.phi(m.c_threshold / 2)
    sat = m.phi(m.c_threshold * 2)
    assert small < mid < sat
    assert sat == m.gamma
    assert m.phi(m.c_threshold * 10) == sat


def test_phi_floor_at_zero_chunk():
    m = kernel_model("zfp-x", "A100")
    assert m.phi(0) == pytest.approx(m.ramp_floor * m.gamma)


def test_kernel_time_inverse_of_phi():
    m = kernel_model("huffman-x", "V100")
    c = 64e6
    assert m.kernel_time(c) == pytest.approx(c / m.phi(c))


def test_theta_linear_in_time():
    m = kernel_model("mgard-x", "V100")
    assert m.theta(2.0) == pytest.approx(2 * m.processor.link_h2d)


def test_error_bound_factor_direction():
    loose = kernel_throughput("mgard-x", "V100", error_bound=1e-2)
    mid = kernel_throughput("mgard-x", "V100", error_bound=1e-4)
    tight = kernel_throughput("mgard-x", "V100", error_bound=1e-6)
    assert loose > mid > tight


def test_decompress_factor():
    c = kernel_throughput("mgard-x", "V100")
    d = kernel_throughput("mgard-x", "V100", decompress=True)
    assert d < c  # recomposition slower (tridiagonal solves)
    z = kernel_throughput("zfp-x", "V100", decompress=True)
    assert z > kernel_throughput("zfp-x", "V100")  # zfp decode faster


def test_unsupported_combinations_raise():
    with pytest.raises(KeyError):
        kernel_model("zfp-cuda", "MI250X")
    with pytest.raises(KeyError):
        kernel_model("unknown-algo", "V100")


def test_supported_processors():
    assert "MI250X" in supported_processors("mgard-x")
    assert "MI250X" not in supported_processors("cusz")
    with pytest.raises(KeyError):
        supported_processors("nope")


def test_list_pipelines_complete():
    have = set(list_pipelines())
    assert {"mgard-x", "zfp-x", "huffman-x", "mgard-gpu",
            "zfp-cuda", "cusz", "nvcomp-lz4"} <= have


def test_stage_splits_sum_to_one():
    for name, split in STAGE_SPLIT.items():
        assert sum(split.values()) == pytest.approx(1.0), name
