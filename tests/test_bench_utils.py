"""Bench harness utilities (report tables, method registry, util)."""

import pytest

from repro.bench.methods import EVAL_METHODS, method_at_scale
from repro.bench.report import Comparison, print_comparisons, print_table
from repro.util import CorruptStreamError, stream_errors


class TestReport:
    def test_table_alignment(self, capsys):
        text = print_table(["a", "bb"], [[1, 2.5], ["xxx", 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_empty_rows(self):
        text = print_table(["col"], [])
        assert "col" in text

    def test_comparisons(self):
        comps = [Comparison("Fig. 1", "mem share", "34-89%", "39-92%")]
        text = print_comparisons(comps, title="x")
        assert "Fig. 1" in text and "39-92%" in text


class TestMethodsRegistry:
    def test_all_paper_methods_present(self):
        assert set(EVAL_METHODS) == {
            "mgard-x", "zfp-x", "huffman-x",
            "mgard-gpu", "zfp-cuda", "cusz", "nvcomp-lz4",
        }

    def test_hpdr_methods_use_cmm_and_pipeline(self):
        for name in ("mgard-x", "zfp-x", "huffman-x"):
            m = EVAL_METHODS[name]
            assert m.context_cached and m.overlapped

    def test_legacy_methods_do_not(self):
        for name in ("mgard-gpu", "zfp-cuda", "cusz", "nvcomp-lz4"):
            m = EVAL_METHODS[name]
            assert not m.context_cached and not m.overlapped

    def test_method_at_scale_overrides(self):
        m = method_at_scale("mgard-x", ratio=42.0, error_bound=1e-5)
        assert m.ratio == 42.0
        assert m.error_bound == 1e-5
        base = EVAL_METHODS["mgard-x"]
        assert base.ratio != 42.0  # original untouched

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            method_at_scale("blosc")


class TestStreamErrors:
    def test_converts_low_level_errors(self):
        @stream_errors
        def bad(_blob):
            raise IndexError("oops")

        with pytest.raises(CorruptStreamError):
            bad(b"")

    def test_value_error_becomes_corrupt_stream(self):
        @stream_errors
        def bad(_blob):
            raise ValueError("bad magic")

        with pytest.raises(CorruptStreamError, match="bad magic"):
            bad(b"")
        # CorruptStreamError is a ValueError: existing callers keep working.
        with pytest.raises(ValueError):
            bad(b"")

    def test_passthrough_on_success(self):
        @stream_errors
        def good(x):
            return x + 1

        assert good(1) == 2
