"""Streaming (in-situ) compression API."""

import numpy as np
import pytest

from repro import Config, ErrorMode, MGARDX, SZ, ZFPX
from repro.core.streaming import StreamingCompressor, StreamingDecompressor
from repro.util import CorruptStreamError


@pytest.fixture
def steps(rng):
    base = rng.normal(size=(6, 16, 16))
    return [base[i] + 0.01 * i for i in range(6)]


def test_push_and_roundtrip(steps):
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    sc = StreamingCompressor(MGARDX(cfg))
    for s in steps:
        assert sc.push(s) > 0
    blob = sc.finalize()
    sd = StreamingDecompressor(MGARDX(cfg), blob)
    assert len(sd) == len(steps)
    for original, restored in zip(steps, sd):
        assert np.max(np.abs(restored - original)) <= 1e-3 * np.ptp(original)


def test_random_access_decodes_single_chunk(steps):
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    sc = StreamingCompressor(SZ(cfg))
    sc.extend(steps)
    sd = StreamingDecompressor(SZ(cfg), sc.finalize())
    mid = sd.chunk(3)
    assert np.max(np.abs(mid - steps[3])) <= 1e-3 * np.ptp(steps[3])


def test_cmm_reuse_across_steps(steps):
    """Same-shape steps hit the compressor's context cache."""
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    comp = MGARDX(cfg)
    sc = StreamingCompressor(comp)
    sc.extend(steps)
    assert comp.cache.misses <= 2  # one mgard context (+ huffman buffers)
    assert comp.cache.hits >= len(steps) - 1


def test_ratio_and_counters(steps):
    sc = StreamingCompressor(ZFPX(rate=8))
    sc.extend(steps)
    assert sc.num_chunks == len(steps)
    assert 0 < sc.compressed_bytes < sum(s.nbytes for s in steps)
    assert sc.ratio > 1.0


def test_concatenate(steps):
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    sc = StreamingCompressor(SZ(cfg))
    sc.extend(steps)
    sd = StreamingDecompressor(SZ(cfg), sc.finalize())
    full = sd.concatenate(axis=0)
    assert full.shape == (6 * 16, 16)


def test_push_after_finalize_rejected(steps):
    sc = StreamingCompressor(ZFPX(rate=8))
    sc.push(steps[0])
    sc.finalize()
    with pytest.raises(RuntimeError):
        sc.push(steps[1])


def test_corrupt_container_rejected(steps):
    sc = StreamingCompressor(ZFPX(rate=8))
    sc.push(steps[0])
    blob = sc.finalize()
    with pytest.raises(CorruptStreamError):
        StreamingDecompressor(ZFPX(rate=8), blob[: len(blob) // 2])
    with pytest.raises(CorruptStreamError):
        StreamingDecompressor(ZFPX(rate=8), b"XXXX" + blob[4:])


def test_empty_stream():
    sc = StreamingCompressor(ZFPX(rate=8))
    blob = sc.finalize()
    sd = StreamingDecompressor(ZFPX(rate=8), blob)
    assert len(sd) == 0
    assert list(sd) == []
