"""Adapter conformance kit."""

import numpy as np
import pytest

from repro.adapters import get_adapter
from repro.adapters.serial import SerialAdapter
from repro.testing import AdapterConformanceError, check_adapter


@pytest.mark.parametrize("family", ["serial", "openmp", "cuda", "hip", "sycl"])
def test_all_builtin_adapters_conform(family):
    check_adapter(get_adapter(family))


def test_broken_adapter_detected_reordering():
    class Reorders(SerialAdapter):
        def execute_group_batch(self, functor, batch):
            out = super().execute_group_batch(functor, batch)
            return out[::-1] if out.shape[0] > 1 else out

    with pytest.raises(AdapterConformanceError):
        check_adapter(Reorders())


def test_broken_adapter_detected_numerics():
    class Drifts(SerialAdapter):
        def execute_group_batch(self, functor, batch):
            return super().execute_group_batch(functor, batch) * (1 + 1e-9)

    with pytest.raises(AdapterConformanceError):
        check_adapter(Drifts())


def test_broken_adapter_detected_dem_order():
    class SkipsStages(SerialAdapter):
        def execute_domain(self, functor, data):
            stages = list(functor.stages())
            return stages[-1](data)  # drops all but the last stage

    with pytest.raises(AdapterConformanceError):
        check_adapter(SkipsStages())


def test_strict_serial_conforms():
    check_adapter(get_adapter("serial", strict=True))
