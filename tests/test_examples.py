"""Every shipped example must run clean end to end.

Examples are the repository's living documentation; these tests execute
each one (they all self-assert their claims internally).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates its result


def test_examples_inventory():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "portability",
        "adaptive_pipeline",
        "campaign_io",
        "multi_gpu_scaling",
        "progressive_retrieval",
    } <= names
