"""mpi_sim collectives under rank drop-out (ULFM-style shrink semantics)."""

from __future__ import annotations

import operator

import pytest

from repro.mpi_sim import Communicator, RankDropout, run_ranks


@pytest.mark.parametrize("size", [1, 2, 8, 64])
def test_allgather_over_survivors(size):
    """One rank drops before the collective; survivors still agree."""
    victim = size - 1  # rank 0 must survive (it is often the root)

    def prog(comm: Communicator):
        if size > 1 and comm.rank == victim:
            raise RankDropout(comm.rank, "injected")
        comm.barrier()
        return comm.allgather(comm.rank)

    results = run_ranks(size, prog, tolerate_dropouts=True)
    expected = [r for r in range(size) if not (size > 1 and r == victim)]
    for rank, res in enumerate(results):
        if size > 1 and rank == victim:
            assert isinstance(res, RankDropout)
        else:
            assert res == expected


@pytest.mark.parametrize("size", [2, 8, 64])
def test_allreduce_excludes_dropped_contribution(size):
    def prog(comm: Communicator):
        if comm.rank == 1:
            raise RankDropout(comm.rank, "device lost")
        comm.barrier()
        return comm.allreduce(comm.rank, op=operator.add)

    results = run_ranks(size, prog, tolerate_dropouts=True)
    expected = sum(r for r in range(size) if r != 1)
    for rank, res in enumerate(results):
        if rank != 1:
            assert res == expected


@pytest.mark.parametrize("size", [2, 8])
def test_gather_at_root_after_dropout(size):
    def prog(comm: Communicator):
        if comm.rank == size - 1:
            raise RankDropout(comm.rank, "injected")
        return comm.gather(comm.rank * 10, root=0)

    results = run_ranks(size, prog, tolerate_dropouts=True)
    assert results[0] == [r * 10 for r in range(size - 1)]


def test_mid_run_drop_via_comm_api():
    """comm.drop() mid-program releases barrier waiters immediately."""

    def prog(comm: Communicator):
        comm.barrier()  # full round first
        if comm.rank == 2:
            comm.drop("leaving")
            raise RankDropout(comm.rank, "leaving")
        comm.barrier()  # must not deadlock on the departed rank
        return comm.active_ranks()

    results = run_ranks(4, prog, tolerate_dropouts=True)
    for rank in (0, 1, 3):
        assert results[rank] == [0, 1, 3]


def test_bcast_from_dead_root_is_hard_error():
    def prog(comm: Communicator):
        if comm.rank == 0:
            raise RankDropout(comm.rank, "root lost")
        comm.barrier()
        return comm.bcast("payload", root=0)

    with pytest.raises(RuntimeError, match="root 0 dropped"):
        run_ranks(2, prog, tolerate_dropouts=True)


def test_sequential_dropouts_shrink_progressively():
    def prog(comm: Communicator):
        sizes = []
        for round_no in range(3):
            if comm.rank == round_no + 1:
                raise RankDropout(comm.rank, f"round {round_no}")
            sizes.append(len(comm.allgather(None)))
        return sizes

    results = run_ranks(8, prog, tolerate_dropouts=True)
    assert results[0] == [7, 6, 5]
    assert results[7] == [7, 6, 5]
    for dead in (1, 2, 3):
        assert isinstance(results[dead], RankDropout)


def test_without_tolerance_dropout_aborts():
    def prog(comm: Communicator):
        if comm.rank == 1:
            raise RankDropout(comm.rank, "boom")
        comm.barrier()
        return comm.rank

    with pytest.raises(RuntimeError):
        run_ranks(2, prog)  # tolerate_dropouts defaults to False


def test_dropout_instances_carry_rank_and_reason():
    def prog(comm: Communicator):
        if comm.rank == 0:
            raise RankDropout(comm.rank, "ecc storm")
        comm.barrier()
        return "ok"

    results = run_ranks(2, prog, tolerate_dropouts=True)
    exc = results[0]
    assert isinstance(exc, RankDropout)
    assert exc.rank == 0 and "ecc storm" in exc.reason
    assert results[1] == "ok"
