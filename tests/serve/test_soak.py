"""Soak/stress: >=1k mixed-codec requests, zero-alloc steady state.

Budgeted at ~60 s of wall clock and compatible with ``HPDR_SAN=1``
(the service builds its adapters through ``get_adapter``, so the
sanitizer wraps them automatically).  The zero-alloc claim is the CMM
one: after warm-up waves, the worker's ContextCache accounting must not
move — pinned serve contexts, codec buffers and the batch-staging
scratch are all at their high-water marks.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.check import assert_steady_state
from repro.serve import BatchLimits, CodecSpec, ReductionService, ServiceConfig

#: requests per wave (compress + decompress halves).
_WAVE = 48
#: hard floor the issue pins.
_MIN_REQUESTS = 1000
#: soft wall-clock budget (seconds).
_BUDGET_S = 60.0

SPECS = [CodecSpec("zfp-x", rate=8.0), CodecSpec("huffman-x"),
         CodecSpec("lz4")]


@pytest.mark.timing_sensitive
def test_soak_mixed_traffic_zero_alloc_steady_state():
    rng = np.random.default_rng(5)
    payloads = {
        s.key(): np.ascontiguousarray(
            rng.standard_normal((16, 16)).astype(np.float32)
        )
        for s in SPECS
    }
    loop = asyncio.new_event_loop()
    started = time.monotonic()
    requests = 0
    try:
        cfg = ServiceConfig(
            limits=BatchLimits(max_batch=16, max_latency_s=0.002),
            max_pending=4 * _WAVE,
            cache_capacity=128,
        )
        svc = loop.run_until_complete(ReductionService(cfg).start())

        async def wave() -> int:
            specs = [SPECS[i % len(SPECS)] for i in range(_WAVE)]
            blobs = await asyncio.gather(
                *(svc.compress(s, payloads[s.key()]) for s in specs)
            )
            backs = await asyncio.gather(
                *(svc.decompress(s, b) for s, b in zip(specs, blobs))
            )
            assert len(backs) == len(blobs) == _WAVE
            return 2 * _WAVE

        def run_wave() -> None:
            nonlocal requests
            requests += loop.run_until_complete(wave())

        # Zero-alloc steady state on the worker's CMM cache: warm-up
        # waves may allocate (context creation, scratch ramp); after
        # them the accounting must freeze.
        worker_cache = svc.workers[0].cache
        assert_steady_state(run_wave, worker_cache, warmup=3, reps=3)

        # Soak to the request floor within the wall-clock budget.
        while requests < _MIN_REQUESTS:
            assert time.monotonic() - started < _BUDGET_S, (
                f"soak exceeded {_BUDGET_S}s with only {requests} requests"
            )
            run_wave()

        stats = svc.stats
        # Exactly-once bookkeeping over the whole soak.
        assert stats.submitted == requests
        assert stats.completed == requests
        assert stats.errors == 0
        assert stats.cancelled == 0
        assert stats.rejected == 0
        assert svc.inflight == 0
        assert stats.batches > 0
        assert stats.mean_batch_size > 1.0, (
            "mixed concurrent traffic must actually batch"
        )
        # The pinned-context design keeps the cache hot: after warm-up
        # every serve context lookup is a hit.
        assert worker_cache.hit_rate > 0.9

        loop.run_until_complete(svc.close())
    finally:
        loop.close()
    assert requests >= _MIN_REQUESTS
