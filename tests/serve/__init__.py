"""HPDR-Serve test suite."""
