"""Shared-memory payload channel: arena, registry validation, bad peers.

The shm channel moves request bodies out of the socket for local
clients; its threat surface is the wire *reference* — a peer can name
any segment, any window.  The registry must reject every malformed
reference with a typed :class:`ProtocolError` (which the connection
handler escalates to a hangup) while honest traffic stays
byte-identical with the inline-TCP path.
"""

from __future__ import annotations

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.serve import (
    BatchLimits,
    BlastClient,
    CodecSpec,
    ReductionService,
    ServiceConfig,
    serve_tcp,
)
from repro.serve.errors import ProtocolError
from repro.serve.net import _PREAMBLE, _MAGIC, _VERSION, _write_frame
from repro.serve.shm import MIN_ARENA_BYTES, ShmArena, ShmRegistry


# -- arena ------------------------------------------------------------------
def test_arena_stage_returns_resolvable_reference():
    arena = ShmArena()
    registry = ShmRegistry()
    try:
        payload = b"x" * 100
        ref = arena.stage(payload)
        assert ref == {"name": arena.name, "offset": 0, "nbytes": 100}
        window = registry.resolve(ref)
        assert bytes(window) == payload
        del window  # release the exported buffer before detach
    finally:
        registry.close()
        arena.close()


def test_arena_regrows_by_doubling_with_fresh_segment():
    arena = ShmArena(MIN_ARENA_BYTES)
    try:
        first_name = arena.name
        big = np.arange(MIN_ARENA_BYTES, dtype=np.float64)  # 8x the arena
        ref = arena.stage(big)
        assert arena.name != first_name  # regrow re-creates the segment
        assert ref["nbytes"] == big.nbytes
        assert arena.nbytes >= big.nbytes
        registry = ShmRegistry()
        try:
            back = np.frombuffer(registry.resolve(ref), dtype=np.float64)
            assert np.array_equal(back, big)
            del back
        finally:
            registry.close()
    finally:
        arena.close()


# -- registry validation ----------------------------------------------------
@pytest.mark.parametrize(
    "ref",
    [
        "not-a-dict",
        {"offset": 0, "nbytes": 1},                          # missing name
        {"name": "x", "nbytes": 1},                          # missing offset
        {"name": "x", "offset": 0},                          # missing nbytes
        {"name": "", "offset": 0, "nbytes": 1},              # empty name
        {"name": 7, "offset": 0, "nbytes": 1},               # non-str name
        {"name": "a" * 300, "offset": 0, "nbytes": 1},       # oversized name
        {"name": "a/../b", "offset": 0, "nbytes": 1},        # traversal
        {"name": "x", "offset": "0", "nbytes": 1},           # str offset
        {"name": "x", "offset": True, "nbytes": 1},          # bool offset
        {"name": "x", "offset": -1, "nbytes": 1},            # negative
        {"name": "x", "offset": 0, "nbytes": -4},            # negative
        {"name": "hpdr-definitely-missing", "offset": 0, "nbytes": 1},
    ],
)
def test_registry_rejects_malformed_reference(ref):
    registry = ShmRegistry()
    try:
        with pytest.raises(ProtocolError):
            registry.resolve(ref)
    finally:
        registry.close()


def test_registry_rejects_window_past_segment_end():
    arena = ShmArena()
    registry = ShmRegistry()
    try:
        ref = arena.stage(b"abc")
        bad = dict(ref, nbytes=arena.nbytes + 1)
        with pytest.raises(ProtocolError):
            registry.resolve(bad)
    finally:
        registry.close()
        arena.close()


def test_registry_caches_attachments_and_never_unlinks():
    arena = ShmArena()
    registry = ShmRegistry()
    try:
        ref = arena.stage(b"hello")
        a = registry.resolve(ref)
        b = registry.resolve(ref)
        assert bytes(a) == bytes(b) == b"hello"
        assert len(registry._segments) == 1  # one mmap per segment
        del a, b
        registry.close()
        # The client still owns a live segment after server detach.
        again = ShmRegistry()
        assert bytes(again.resolve(ref)) == b"hello"
        again.close()
    finally:
        arena.close()


# -- end to end -------------------------------------------------------------
def _served():
    async def boot():
        svc = await ReductionService(ServiceConfig(
            limits=BatchLimits(max_batch=8, max_latency_s=0.002)
        )).start()
        server = await serve_tcp(svc)
        host, port = server.sockets[0].getsockname()[:2]
        return svc, server, host, port

    return boot


def test_shm_channel_is_byte_identical_with_inline_tcp():
    """Same streams whether the body rides the socket or shared memory,
    including a payload large enough to force an arena regrow."""
    spec = CodecSpec("zfp-x", rate=8.0)
    small = np.random.default_rng(0).standard_normal((16, 16)).astype(np.float32)
    big = np.random.default_rng(1).standard_normal((64, 64)).astype(np.float32)

    async def run():
        svc, server, host, port = await _served()()
        try:
            inline = await BlastClient.connect(host, port)
            shm = await BlastClient.connect(host, port, use_shm=True,
                                            shm_bytes=MIN_ARENA_BYTES)
            out = []
            for data in (small, big):  # big (16 KiB) regrows the arena
                want = await inline.compress(spec, data)
                got = await shm.compress(spec, data)
                assert got == want
                back = await shm.decompress(spec, got)
                assert np.array_equal(back,
                                      await inline.decompress(spec, want))
                out.append(got)
            await inline.close()
            await shm.close()
            return out
        finally:
            server.close()
            await server.wait_closed()
            await svc.close()

    blobs = asyncio.run(run())
    assert blobs[0] == spec.build().compress(small)
    assert blobs[1] == spec.build().compress(big)


def test_malformed_shm_reference_drops_connection_only():
    """A bad shm ref is a protocol violation: hangup for that peer, no
    damage to the service or other connections."""
    spec = CodecSpec("zfp-x", rate=8.0)

    async def run():
        svc, server, host, port = await _served()()
        try:
            reader, writer = await asyncio.open_connection(host, port)
            _write_frame(writer, {
                "op": "decompress",
                "spec": dataclasses.asdict(spec),
                "form": "blob",
                "shm": {"name": "hpdr-no-such-segment", "offset": 0,
                        "nbytes": 16},
            }, b"")
            await writer.drain()
            assert await reader.read(64) == b""  # server hung up
            writer.close()

            # Honest clients are unaffected.
            client = await BlastClient.connect(host, port, use_shm=True)
            data = np.ones((8, 8), dtype=np.float32)
            blob = await client.compress(spec, data)
            assert blob == spec.build().compress(data)
            await client.close()
        finally:
            server.close()
            await server.wait_closed()
            await svc.close()

    asyncio.run(run())


def test_preamble_struct_is_stable():
    """The wire preamble is a public contract: 17 bytes, little-endian."""
    assert _PREAMBLE.size == 17
    assert _PREAMBLE.pack(_MAGIC, _VERSION, 0, 0)[:4] == b"HPDS"
