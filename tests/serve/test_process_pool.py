"""Multi-process worker pool: byte-identity across the pickle boundary.

``ReductionService(process=True)`` swaps the thread workers for a spawn
``ProcessPoolExecutor``; each child builds its own adapter, CMM cache
and resilience stack in the pool initializer.  The contract is the same
as every other execution mode: the process hop must be invisible in the
bytes, and failures must come back as typed exceptions — pickled when
they survive the trip, wrapped when they don't.

Spawn start-up is expensive on CI, so the suite boots few services and
reuses them across assertions.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import (
    BatchLimits,
    CodecSpec,
    ReductionService,
    ServiceConfig,
)
from repro.serve.worker import ProcessWorkerConfig, _init_process_worker, \
    _run_payloads_in_process
from repro.serve.worker import OK, ERR
from repro.testing import check_service


def _cfg(**kw):
    kw.setdefault("limits", BatchLimits(max_batch=8, max_latency_s=0.002))
    kw.setdefault("process", True)
    kw.setdefault("workers", 2)
    return ServiceConfig(**kw)


def test_process_pool_streams_are_byte_identical():
    """Every codec round-trips byte-for-byte through pool processes."""
    rng = np.random.default_rng(2)
    # Quantized-looking values so huffman-x sees structured input; the
    # lossy codecs accept them just as well.
    datas = [
        np.ascontiguousarray(
            (rng.standard_normal((16, 16)) * 4).astype(np.int64)
            .astype(np.float32)
        )
        for _ in range(6)
    ]
    specs = [CodecSpec("zfp-x", rate=8.0),
             CodecSpec("mgard-x", error_bound=1e-2),
             CodecSpec("huffman-x")]

    async def run():
        async with ReductionService(_cfg()) as svc:
            out = {}
            for spec in specs:
                blobs = await asyncio.gather(
                    *(svc.compress(spec, d) for d in datas)
                )
                backs = await asyncio.gather(
                    *(svc.decompress(spec, b) for b in blobs)
                )
                out[spec.name] = (blobs, backs)
            return out

    out = asyncio.run(run())
    for spec in specs:
        codec = spec.build()
        blobs, backs = out[spec.name]
        for d, blob, back in zip(datas, blobs, backs):
            assert blob == codec.compress(d), spec.name
            assert np.array_equal(np.asarray(back), codec.decompress(blob))


def test_process_pool_errors_come_back_typed():
    spec = CodecSpec("zfp-x", rate=8.0)
    data = np.ones((8, 8), dtype=np.float32)

    async def run():
        async with ReductionService(_cfg(workers=1)) as svc:
            good = asyncio.ensure_future(svc.compress(spec, data))
            bad = asyncio.ensure_future(
                svc.decompress(spec, b"not a zfp stream at all")
            )
            blob, err = await asyncio.gather(good, bad,
                                             return_exceptions=True)
            return blob, err, svc.stats.errors

    blob, err, errors = asyncio.run(run())
    assert blob == spec.build().compress(data)
    assert isinstance(err, Exception) and not isinstance(err, asyncio.CancelledError)
    assert errors == 1


def test_process_pool_conformance_matrix():
    """The differential harness holds across the pickle boundary."""
    check_service("serial", codecs=("zfp-x",), batch_sizes=(1, 7),
                  workers=2, process=True)


def test_process_config_rejects_retry_sleep():
    with pytest.raises(ValueError):
        ServiceConfig(process=True, retry_sleep=lambda s: None)


def test_process_worker_entry_points_run_without_a_pool():
    """The module-level hooks the pool uses are testable in-process:
    initializer builds the global worker, the dispatch hook runs batches
    on it and pickle-checks error values."""
    from repro.serve import worker as worker_mod

    saved = worker_mod._PROCESS_WORKER
    try:
        _init_process_worker(ProcessWorkerConfig(
            adapter="serial", threads=None, cache_capacity=8,
            pin_contexts=True, policy=worker_mod.RetryPolicy(),
            fault_plan=None,
        ))
        spec = CodecSpec("zfp-x", rate=8.0)
        data = np.ones((4, 4), dtype=np.float32)
        outs = _run_payloads_in_process("compress", spec, [data, data])
        assert [tag for tag, _ in outs] == [OK, OK]
        assert outs[0][1] == spec.build().compress(data)

        outs = _run_payloads_in_process("decompress", spec, [b"junk"])
        tag, value = outs[0]
        assert tag == ERR
        assert isinstance(value, Exception)
        import pickle

        pickle.loads(pickle.dumps(value))  # guaranteed picklable
    finally:
        worker_mod._PROCESS_WORKER = saved
