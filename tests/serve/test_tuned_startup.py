"""Serve startup × tuning cache: hit, miss, and stale-schema paths.

The contract under test: a service started with ``tune="auto"``
consults the injected tuning cache *before* building any worker — a
hit rewrites the micro-batch limits and worker device, a miss (or a
cache written by a different schema version) leaves the config exactly
as handed in and the service still serves correctly.  Both worker
backends are covered: the process lane crosses the spawn-pickle
boundary the cluster shards rely on.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.serve import BatchLimits, CodecSpec, ReductionService, ServiceConfig
from repro.trace.metrics import REGISTRY
from repro.tune import (
    CACHE_VERSION,
    TuneEntry,
    TuningCache,
    TuningKey,
    service_knob_space,
)

TUNED = {
    "max_batch": 64,
    "max_bytes": 16 << 20,
    "max_latency_ms": 5.0,
    "adapter": "serial",
    "threads": 1,
}


def seed_cache(path, *, process):
    cache = TuningCache(path)
    cache.put(
        TuningKey.for_service(process=process),
        TuneEntry(config=dict(TUNED), cost_s=0.5, default_cost_s=0.9,
                  digest="d", source="test"),
    )
    return cache


def run_service(cfg):
    """Start the service, compress once, return the started config."""
    spec = CodecSpec("zfp-x")
    data = np.linspace(0, 1, 256, dtype=np.float32).reshape(16, 16)

    async def drive():
        async with ReductionService(cfg) as svc:
            blob = await svc.compress(spec, data)
            return svc.config, bytes(blob)

    started_cfg, blob = asyncio.run(drive())
    want = bytes(spec.build().compress(data))
    assert blob == want  # tuning must never change served bytes
    return started_cfg


@pytest.mark.parametrize("process", [False, True],
                         ids=["thread", "process"])
def test_hit_rewrites_limits_and_device(tmp_path, process):
    assert service_knob_space().contains(TUNED)
    seed_cache(tmp_path / "t.json", process=process)
    cfg = ServiceConfig(tune="auto", tuning_cache=str(tmp_path / "t.json"),
                        process=process)
    started = run_service(cfg)
    assert started.limits.max_batch == 64
    assert started.limits.max_bytes == 16 << 20
    assert started.limits.max_latency_s == pytest.approx(0.005)
    assert started.adapter == "serial"


@pytest.mark.parametrize("process", [False, True],
                         ids=["thread", "process"])
def test_miss_leaves_config_untouched(tmp_path, process):
    before = REGISTRY.counter(
        "hpdr_tune_cache_misses_total").value(codec="__service__")
    cfg = ServiceConfig(tune="auto",
                        tuning_cache=str(tmp_path / "absent.json"),
                        process=process)
    started = run_service(cfg)
    assert started.limits == BatchLimits()
    assert started.adapter == "serial"
    assert REGISTRY.counter(
        "hpdr_tune_cache_misses_total").value(codec="__service__") > before


@pytest.mark.parametrize("process", [False, True],
                         ids=["thread", "process"])
def test_stale_schema_version_falls_back(tmp_path, process):
    path = tmp_path / "t.json"
    seed_cache(path, process=process)
    record = json.loads(path.read_text())
    record["version"] = CACHE_VERSION + 1  # written by a future repro
    path.write_text(json.dumps(record))

    invalid_before = REGISTRY.counter("hpdr_tune_cache_invalid_total").total()
    cfg = ServiceConfig(tune="auto", tuning_cache=str(path), process=process)
    started = run_service(cfg)
    assert started.limits == BatchLimits()  # defaults, not the stale entry
    assert REGISTRY.counter(
        "hpdr_tune_cache_invalid_total").total() > invalid_before


def test_off_never_touches_the_cache(tmp_path):
    seed_cache(tmp_path / "t.json", process=False)
    cfg = ServiceConfig(tune="off", tuning_cache=str(tmp_path / "t.json"))
    started = run_service(cfg)
    assert started.limits == BatchLimits()


def test_wrong_worker_mode_is_a_miss(tmp_path):
    # A thread-mode entry must not leak into a process-mode service:
    # the worker mode is part of the tuning key.
    seed_cache(tmp_path / "t.json", process=False)
    cfg = ServiceConfig(tune="auto", tuning_cache=str(tmp_path / "t.json"),
                        process=True)
    started = run_service(cfg)
    assert started.limits == BatchLimits()


def test_bad_tune_mode_rejected():
    with pytest.raises(ValueError):
        ServiceConfig(tune="sometimes")
