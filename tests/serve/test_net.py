"""TCP transport: framing round-trips, remote error mapping, bad peers."""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest

from repro.serve import (
    BatchLimits,
    BlastClient,
    CodecSpec,
    ProtocolError,
    ReductionService,
    RemoteRequestError,
    ServiceConfig,
    ServiceClient,
    ServiceOverloaded,
    run_blast,
    serve_tcp,
)


def _served(cfg=None):
    """Start service + TCP server; return (svc, server, host, port)."""

    async def boot():
        svc = await ReductionService(
            cfg if cfg is not None else ServiceConfig(
                limits=BatchLimits(max_batch=8, max_latency_s=0.002)
            )
        ).start()
        server = await serve_tcp(svc)
        host, port = server.sockets[0].getsockname()[:2]
        return svc, server, host, port

    return boot


def test_tcp_roundtrip_matches_in_process():
    spec = CodecSpec("zfp-x", rate=8.0)
    data = np.random.default_rng(0).standard_normal((16, 16)).astype(np.float32)
    want = spec.build().compress(data)

    async def run():
        svc, server, host, port = await _served()()
        try:
            client = await BlastClient.connect(host, port)
            blob = await client.compress(spec, data)
            back = await client.decompress(spec, blob)
            await client.close()
            return blob, back
        finally:
            server.close()
            await server.wait_closed()
            await svc.close()

    blob, back = asyncio.run(run())
    assert blob == want
    assert np.array_equal(back, spec.build().decompress(want))
    assert back.dtype == data.dtype and back.shape == data.shape


def test_remote_errors_are_typed():
    spec = CodecSpec("zfp-x", rate=8.0)

    async def run():
        svc, server, host, port = await _served()()
        try:
            client = await BlastClient.connect(host, port)
            with pytest.raises(RemoteRequestError) as exc:
                await client.decompress(spec, b"garbage stream")
            assert exc.value.kind  # carries the server-side class name
            # The connection survives a failed request.
            data = np.ones((4, 4), dtype=np.float32)
            blob = await client.compress(spec, data)
            assert blob == spec.build().compress(data)
            await client.close()
        finally:
            server.close()
            await server.wait_closed()
            await svc.close()

    asyncio.run(run())


@pytest.mark.timing_sensitive
def test_remote_overload_maps_to_service_overloaded(monkeypatch):
    import threading

    from repro.serve import worker as worker_mod

    spec = CodecSpec("zfp-x", rate=8.0)
    data = np.ones((16, 16), dtype=np.float32)
    # Hold the first request inside the worker so it deterministically
    # occupies the single admission slot (idle-flush dispatches it
    # immediately, so timing alone can no longer keep it in flight).
    release = threading.Event()
    original = worker_mod.Worker.run_batch

    def slow_run_batch(self, flush):
        release.wait(timeout=10)
        return original(self, flush)

    monkeypatch.setattr(worker_mod.Worker, "run_batch", slow_run_batch)

    async def run():
        cfg = ServiceConfig(
            limits=BatchLimits(max_batch=64, max_latency_s=0.2),
            max_pending=1,
        )
        svc, server, host, port = await _served(cfg)()
        try:
            c1 = await BlastClient.connect(host, port)
            c2 = await BlastClient.connect(host, port)
            first = asyncio.ensure_future(c1.compress(spec, data))
            await asyncio.sleep(0.02)  # first request occupies the one slot
            with pytest.raises(ServiceOverloaded) as exc:
                await c2.compress(spec, data)
            assert exc.value.limit == 1
            release.set()
            await first
            await c1.close()
            await c2.close()
        finally:
            release.set()
            server.close()
            await server.wait_closed()
            await svc.close()

    asyncio.run(run())


def test_malformed_frame_drops_connection_only():
    async def run():
        svc, server, host, port = await _served()()
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GETX" + struct.pack("<BIQ", 1, 4, 0) + b"oops")
            await writer.drain()
            got = await reader.read(64)
            assert got == b""  # server hung up on the bad peer
            writer.close()
            # The service itself is unharmed.
            client = await BlastClient.connect(host, port)
            spec = CodecSpec("lz4")
            data = np.arange(64, dtype=np.float32)
            blob = await client.compress(spec, data)
            back = await client.decompress(spec, blob)
            assert np.array_equal(back, data)
            await client.close()
        finally:
            server.close()
            await server.wait_closed()
            await svc.close()

    asyncio.run(run())


def test_run_blast_in_process_and_tcp_agree_on_verification():
    spec = CodecSpec("huffman-x")

    async def run():
        svc, server, host, port = await _served()()
        try:
            tcp = await run_blast(
                lambda i: BlastClient.connect(host, port),
                clients=4, requests_per_client=5, specs=[spec],
                verify=True,
            )

            async def inproc_client(i):
                return ServiceClient(svc)

            inproc = await run_blast(
                inproc_client,
                clients=4, requests_per_client=5, specs=[spec],
                verify=True,
            )
            return tcp, inproc
        finally:
            server.close()
            await server.wait_closed()
            await svc.close()

    tcp, inproc = asyncio.run(run())
    for report in (tcp, inproc):
        assert report["completed"] == 20
        assert report["errors"] == 0
        assert report["mismatches"] == 0
        assert report["rps"] > 0
        assert report["p99_ms"] >= report["p95_ms"] >= report["p50_ms"] > 0
