"""ReductionService behaviour: round-trips, overload, drain, cancel.

No pytest-asyncio in the toolchain: every test drives its own event
loop with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import (
    BatchLimits,
    CodecSpec,
    ReductionService,
    ServiceConfig,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.trace.metrics import REGISTRY as METRICS


def _data(shape=(16, 16), seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(np.float32)


def _cfg(**kw):
    limits = kw.pop("limits", BatchLimits(max_batch=8, max_latency_s=0.002))
    return ServiceConfig(limits=limits, **kw)


def test_roundtrip_matches_single_shot():
    spec = CodecSpec("zfp-x", rate=8.0)
    data = _data()
    want_blob = spec.build().compress(data)
    want_back = spec.build().decompress(want_blob)

    async def run():
        async with ReductionService(_cfg()) as svc:
            blob = await svc.compress(spec, data)
            back = await svc.decompress(spec, blob)
            return blob, back

    blob, back = asyncio.run(run())
    assert blob == want_blob
    assert np.array_equal(np.asarray(back), want_back)


def test_concurrent_requests_coalesce_into_batches():
    spec = CodecSpec("zfp-x", rate=8.0)
    data = _data()
    want = spec.build().compress(data)

    async def run():
        cfg = _cfg(limits=BatchLimits(max_batch=64, max_latency_s=0.05))
        async with ReductionService(cfg) as svc:
            blobs = await asyncio.gather(
                *(svc.compress(spec, data) for _ in range(16))
            )
            return blobs, svc.stats

    blobs, stats = asyncio.run(run())
    assert all(b == want for b in blobs)
    # All 16 shared one batch key and fit one flush (the idle check
    # runs after the whole same-tick burst has landed, then flushes
    # everything at once instead of waiting out the deadline).
    assert stats.batches == 1
    assert stats.mean_batch_size == 16.0
    assert stats.completed == 16


def test_distinct_shapes_do_not_share_batches():
    spec = CodecSpec("zfp-x", rate=8.0)
    a, b = _data((16, 16)), _data((8, 8))

    async def run():
        cfg = _cfg(limits=BatchLimits(max_batch=64, max_latency_s=0.05))
        async with ReductionService(cfg) as svc:
            blobs = await asyncio.gather(
                svc.compress(spec, a), svc.compress(spec, b)
            )
            return blobs, svc.stats.batches

    blobs, batches = asyncio.run(run())
    assert batches == 2
    assert blobs[0] == spec.build().compress(a)
    assert blobs[1] == spec.build().compress(b)


def test_admission_control_rejects_beyond_max_pending():
    spec = CodecSpec("zfp-x", rate=8.0)
    data = _data()

    async def run():
        cfg = _cfg(
            limits=BatchLimits(max_batch=64, max_latency_s=0.05),
            max_pending=1,
        )
        before = METRICS.counter("hpdr_serve_rejected_total").total()
        async with ReductionService(cfg) as svc:
            first = asyncio.ensure_future(svc.compress(spec, data))
            await asyncio.sleep(0)  # let the first submit admit itself
            with pytest.raises(ServiceOverloaded) as exc:
                await svc.compress(spec, data)
            assert exc.value.depth == 1
            assert exc.value.limit == 1
            assert svc.stats.rejected == 1
            after = METRICS.counter("hpdr_serve_rejected_total").total()
            assert after == before + 1
            await first  # still answered: rejection sheds only the newcomer
            return svc.stats

    stats = asyncio.run(run())
    assert stats.completed == 1


def test_submit_after_close_raises_service_closed():
    spec = CodecSpec("zfp-x", rate=8.0)

    async def run():
        svc = ReductionService(_cfg())
        await svc.start()
        await svc.close()
        with pytest.raises(ServiceClosed):
            await svc.compress(spec, _data())

    asyncio.run(run())


def test_close_drains_pending_requests():
    spec = CodecSpec("zfp-x", rate=8.0)
    data = _data()
    want = spec.build().compress(data)

    async def run():
        # Deadline far away: only the drain can flush these.
        cfg = _cfg(limits=BatchLimits(max_batch=64, max_latency_s=30.0))
        svc = ReductionService(cfg)
        await svc.start()
        futures = [asyncio.ensure_future(svc.compress(spec, data))
                   for _ in range(5)]
        await asyncio.sleep(0)
        await svc.close()
        return await asyncio.gather(*futures), svc.stats

    blobs, stats = asyncio.run(run())
    assert all(b == want for b in blobs)
    assert stats.completed == 5


def test_cancellation_withdraws_pending_request():
    spec = CodecSpec("zfp-x", rate=8.0)
    data = _data()

    async def run():
        cfg = _cfg(limits=BatchLimits(max_batch=64, max_latency_s=30.0))
        svc = ReductionService(cfg)
        await svc.start()
        doomed = asyncio.ensure_future(svc.compress(spec, data))
        kept = asyncio.ensure_future(svc.compress(spec, data))
        await asyncio.sleep(0)
        doomed.cancel()
        await asyncio.sleep(0)
        assert svc.stats.cancelled == 1
        assert svc.inflight == 1  # slot released immediately
        await svc.close()
        assert doomed.cancelled()
        blob = await kept
        assert blob == spec.build().compress(data)
        return svc.stats

    stats = asyncio.run(run())
    assert stats.completed == 1
    assert stats.cancelled == 1


def test_error_is_delivered_to_its_request_only():
    spec = CodecSpec("zfp-x", rate=8.0)
    data = _data()
    want = spec.build().compress(data)

    async def run():
        cfg = _cfg(limits=BatchLimits(max_batch=64, max_latency_s=0.05))
        async with ReductionService(cfg) as svc:
            good = asyncio.ensure_future(svc.compress(spec, data))
            bad = asyncio.ensure_future(
                svc.decompress(spec, b"definitely not a zfp stream")
            )
            results = await asyncio.gather(good, bad, return_exceptions=True)
            return results, svc.stats

    (blob, err), stats = asyncio.run(run())
    assert blob == want
    assert isinstance(err, Exception)
    assert stats.completed == 1
    assert stats.errors == 1


def test_requests_counter_and_latency_reservoir():
    spec = CodecSpec("zfp-x", rate=8.0)
    data = _data()

    async def run():
        before = METRICS.counter("hpdr_serve_requests_total").total()
        async with ReductionService(_cfg()) as svc:
            for _ in range(3):
                await svc.compress(spec, data)
            after = METRICS.counter("hpdr_serve_requests_total").total()
            assert after == before + 3
            snap = svc.stats.snapshot()
            assert snap["submitted"] == snap["completed"] == 3
            assert snap["p95_ms"] >= snap["p50_ms"] >= 0.0
            assert snap["p50_ms"] > 0.0

    asyncio.run(run())


def test_multiple_workers_split_the_load():
    spec = CodecSpec("zfp-x", rate=8.0)

    async def run():
        cfg = _cfg(
            limits=BatchLimits(max_batch=1, max_latency_s=0.001),
            workers=2,
        )
        async with ReductionService(cfg) as svc:
            datas = [_data(seed=i) for i in range(8)]
            blobs = await asyncio.gather(
                *(svc.compress(spec, d) for d in datas)
            )
            ran = [w.batches_run for w in svc.workers]
            for d, blob in zip(datas, blobs):
                assert blob == spec.build().compress(d)
            return ran

    ran = asyncio.run(run())
    assert sum(ran) == 8
    # max_batch=1 forces 8 flushes; least-backlog routing uses both.
    assert all(n > 0 for n in ran)


def test_service_config_validation():
    with pytest.raises(ValueError):
        ServiceConfig(max_pending=0)
    with pytest.raises(ValueError):
        ServiceConfig(workers=0)


def test_codec_spec_validation_and_keys():
    with pytest.raises(ValueError):
        CodecSpec("gzip")
    with pytest.raises(ValueError):
        CodecSpec("zfp-x", error_mode="weird")
    spec = CodecSpec("zfp-x", rate=8.0)
    with pytest.raises(ValueError):
        spec.batch_key("transmogrify", _data())
    # Unused parameters do not split batches.
    assert CodecSpec("zfp-x", rate=8.0, error_bound=1e-3).key() == \
        CodecSpec("zfp-x", rate=8.0, error_bound=1e-9).key()
    d = _data()
    assert spec.batch_key("compress", d) == spec.batch_key("compress", d.copy())
    assert spec.batch_key("compress", d) != \
        CodecSpec("zfp-x", rate=16.0).batch_key("compress", d)
