"""Served-stream conformance: codec x adapter x batch-size matrix.

Every cell requires byte-identity with single-shot compression —
micro-batching, context pinning and worker routing must be invisible in
the bytes.  The matrix the issue pins: {mgard-x, zfp-x, huffman-x} x
{serial, openmp} x batch sizes {1, 7, 64}.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import BatchLimits, CodecSpec, ReductionService, ServiceConfig
from repro.testing import check_service

CODECS = ("mgard-x", "zfp-x", "huffman-x")
BATCHES = (1, 7, 64)


@pytest.mark.parametrize("adapter,threads", [("serial", None), ("openmp", 2)])
def test_service_matrix(adapter, threads):
    check_service(
        adapter, codecs=CODECS, batch_sizes=BATCHES, threads=threads
    )


def test_service_matrix_detects_divergence(monkeypatch):
    """The differential harness must actually bite."""
    from repro.testing import AdapterConformanceError
    from repro.serve import worker as worker_mod

    original = worker_mod._apply_batch

    def corrupting(codec, op, payloads):
        out = original(codec, op, payloads)
        if out is not None and op == "compress" and len(out) > 1:
            out = list(out)
            out[0] = out[0][:-1] + bytes([out[0][-1] ^ 1])
        return out

    monkeypatch.setattr(worker_mod, "_apply_batch", corrupting)
    with pytest.raises(AdapterConformanceError):
        check_service("serial", codecs=("zfp-x",), batch_sizes=(7,))


def test_decompress_batches_match_single_shot():
    """Uniform compressed streams ride the decompress batch path."""
    spec = CodecSpec("zfp-x", rate=8.0)
    rng = np.random.default_rng(3)
    datas = [rng.standard_normal((16, 16)).astype(np.float32)
             for _ in range(12)]
    codec = spec.build()
    blobs = [codec.compress(d) for d in datas]
    want = [codec.decompress(b) for b in blobs]

    async def run():
        cfg = ServiceConfig(
            limits=BatchLimits(max_batch=64, max_latency_s=0.05)
        )
        async with ReductionService(cfg) as svc:
            return await asyncio.gather(
                *(svc.decompress(spec, b) for b in blobs)
            ), svc.stats.batches

    got, batches = asyncio.run(run())
    assert batches == 1  # same size-class -> one flush
    for g, w in zip(got, want):
        assert np.array_equal(np.asarray(g), w)


def test_mixed_codec_traffic_stays_isolated():
    """Interleaved codecs never cross-contaminate batches."""
    rng = np.random.default_rng(9)
    data = np.ascontiguousarray(
        rng.standard_normal((16, 16)).astype(np.float32)
    )
    specs = [CodecSpec("zfp-x", rate=8.0), CodecSpec("huffman-x"),
             CodecSpec("lz4"), CodecSpec("mgard-x")]
    want = {s.name: s.build().compress(data) for s in specs}

    async def run():
        cfg = ServiceConfig(
            limits=BatchLimits(max_batch=16, max_latency_s=0.01)
        )
        async with ReductionService(cfg) as svc:
            jobs = [(s, asyncio.ensure_future(svc.compress(s, data)))
                    for s in specs for _ in range(4)]
            await asyncio.gather(*(f for _, f in jobs))
            return [(s.name, f.result()) for s, f in jobs]

    for name, blob in asyncio.run(run()):
        assert blob == want[name], name
