"""Zero-copy framing: scatter-gather writes vs the contiguous reference.

The transport rewrite replaced one staged ``bytes`` concatenation per
frame with three scatter-gather writes and an incremental
:class:`~repro.serve.net.FrameAssembler` over a preallocated receive
buffer.  This suite pins the wire contract the rewrite must preserve:

1. the scatter-gather writer emits **byte-for-byte** the stream the
   contiguous encoder produced (hypothesis-fuzzed headers/payloads);
2. the assembler recovers every frame identically no matter how the
   byte stream is chunked (fuzzed cut points and a deterministic
   split matrix);
3. malformed preambles are rejected *eagerly* — before the announced
   payload is ever buffered;
4. the receive buffer reaches a zero-alloc steady state under a stream
   of same-sized frames.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.errors import ProtocolError
from repro.serve.net import (
    _MAGIC,
    _PREAMBLE,
    _VERSION,
    MAX_HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    FrameAssembler,
    _decode_payload,
    _encode_payload,
    _write_frame,
)


def contiguous_frame(header: dict, payload: bytes) -> bytes:
    """Reference encoder: the old single-buffer framing."""
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return (
        _PREAMBLE.pack(_MAGIC, _VERSION, len(raw), len(payload))
        + raw
        + payload
    )


class _CollectingWriter:
    """Transport stub capturing scatter-gather write() calls."""

    def __init__(self) -> None:
        self.chunks: list[bytes] = []

    def write(self, data) -> None:
        self.chunks.append(bytes(data))


_HEADERS = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(
        st.integers(-(10 ** 6), 10 ** 6),
        st.text(max_size=16),
        st.booleans(),
        st.none(),
    ),
    max_size=4,
)
_PAYLOADS = st.binary(max_size=2048)


@settings(max_examples=120, deadline=None)
@given(header=_HEADERS, payload=_PAYLOADS)
def test_scatter_gather_matches_contiguous_encoding(header, payload):
    writer = _CollectingWriter()
    _write_frame(writer, header, payload)
    assert b"".join(writer.chunks) == contiguous_frame(header, payload)


@settings(max_examples=80, deadline=None)
@given(
    frames=st.lists(st.tuples(_HEADERS, _PAYLOADS), min_size=1, max_size=4),
    data=st.data(),
)
def test_assembler_recovers_frames_at_arbitrary_chunk_splits(frames, data):
    stream = b"".join(contiguous_frame(h, p) for h, p in frames)
    cuts = sorted(data.draw(
        st.lists(st.integers(0, len(stream)), max_size=12)
    ))
    pieces, prev = [], 0
    for cut in cuts + [len(stream)]:
        pieces.append(stream[prev:cut])
        prev = cut

    assembler = FrameAssembler(capacity=64)  # force regrow/compaction
    got = []
    for piece in pieces:
        assembler.feed(piece)
        while (frame := assembler.next_frame()) is not None:
            header, payload = frame
            # Views die at the next feed(): copy out immediately, as the
            # sequential connection handler does.
            got.append((header, bytes(payload)))
    assert got == [(h, p) for h, p in frames]
    assert assembler.pending == 0


def test_assembler_deterministic_split_matrix():
    """Every frame identical at fixed chunk sizes incl. 1-byte drip."""
    rng = np.random.default_rng(5)
    frames = [
        ({"op": "compress", "i": i}, rng.bytes(7 * i + 3)) for i in range(6)
    ]
    stream = b"".join(contiguous_frame(h, p) for h, p in frames)
    for step in (1, 3, 7, 64, 65536):
        assembler = FrameAssembler()
        got = []
        for off in range(0, len(stream), step):
            assembler.feed(stream[off : off + step])
            while (frame := assembler.next_frame()) is not None:
                got.append((frame[0], bytes(frame[1])))
        assert got == frames, f"diverged at chunk step {step}"


@pytest.mark.parametrize(
    "preamble",
    [
        _PREAMBLE.pack(b"HPDX", _VERSION, 4, 0),          # bad magic
        _PREAMBLE.pack(_MAGIC, 9, 4, 0),                  # bad version
        _PREAMBLE.pack(_MAGIC, _VERSION, MAX_HEADER_BYTES + 1, 0),
        _PREAMBLE.pack(_MAGIC, _VERSION, 4, MAX_PAYLOAD_BYTES + 1),
    ],
)
def test_assembler_rejects_bad_preamble_eagerly(preamble):
    """Rejection happens on the preamble alone — the announced payload
    is never awaited, so a hostile peer cannot make the server buffer
    gigabytes before the check."""
    assembler = FrameAssembler()
    assembler.feed(preamble)
    with pytest.raises(ProtocolError):
        assembler.next_frame()


def test_assembler_rejects_unparseable_header():
    bad = _PREAMBLE.pack(_MAGIC, _VERSION, 4, 0) + b"\xff\xfe\x00{"
    assembler = FrameAssembler()
    assembler.feed(bad)
    with pytest.raises(ProtocolError):
        assembler.next_frame()


def test_assembler_buffer_reaches_zero_alloc_steady_state():
    """Same-sized frames drained promptly never regrow the buffer."""
    header, payload = {"op": "x"}, b"p" * 40
    frame = contiguous_frame(header, payload)
    assembler = FrameAssembler(capacity=4 * len(frame))
    cap = len(assembler._buf)
    for _ in range(200):
        assembler.feed(frame)
        assert assembler.next_frame() is not None
    assert len(assembler._buf) == cap


def test_encode_decode_are_zero_copy():
    """Array payloads alias their buffers in both directions."""
    arr = np.arange(48, dtype=np.float32).reshape(6, 8)
    meta, view = _encode_payload("compress", arr)
    assert meta["form"] == "array"
    assert np.shares_memory(np.frombuffer(view, dtype=np.float32), arr)

    raw = memoryview(bytearray(view))  # simulated receive window
    back = _decode_payload(meta, raw)
    assert np.array_equal(back, arr)
    assert np.shares_memory(back, np.frombuffer(raw, dtype=np.uint8))

    blob = b"compressed-bytes"
    meta, view = _encode_payload("decompress", blob)
    assert meta["form"] == "blob"
    assert bytes(view) == blob
    assert _decode_payload(meta, view) is view  # no copy on the way out


def test_decode_rejects_unknown_form_and_unexpected_shm():
    with pytest.raises(ProtocolError):
        _decode_payload({"form": "tensor"}, b"")
    with pytest.raises(ProtocolError):
        _decode_payload(
            {"form": "blob", "shm": {"name": "x", "offset": 0, "nbytes": 1}},
            b"",
            shm=None,
        )
