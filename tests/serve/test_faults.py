"""Fault injection under load: retries accounted, bytes unchanged.

The acceptance check is the same metrics query the campaign runner
uses — every injected fault must surface as exactly one retry on
``hpdr_retries_total`` — plus the stronger serving guarantee: responses
under a fault storm are byte-identical to a fault-free run (retry
re-executes on intact state; exhaustion degrades to the serial
fallback, which is byte-identical by portability).
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.resilience.faults import FaultPlan
from repro.resilience.policy import RetryPolicy
from repro.serve import BatchLimits, CodecSpec, ReductionService, ServiceConfig
from repro.trace.metrics import REGISTRY as METRICS

SPECS = [CodecSpec("zfp-x", rate=8.0), CodecSpec("mgard-x"),
         CodecSpec("huffman-x")]


def _payloads():
    rng = np.random.default_rng(11)
    return [
        np.ascontiguousarray(rng.standard_normal((16, 16)).astype(np.float32))
        for _ in range(30)
    ]


def _run_workload(fault_plan):
    payloads = _payloads()

    async def run():
        cfg = ServiceConfig(
            limits=BatchLimits(max_batch=8, max_latency_s=0.002),
            fault_plan=fault_plan,
            # Deep budget: no request may exhaust (exhaustion would break
            # the 1 fault : 1 retry accounting this test pins).
            retry=RetryPolicy(max_attempts=10),
            retry_sleep=lambda s: None,  # backoff costs no wall-clock
        )
        async with ReductionService(cfg) as svc:
            specs = [SPECS[i % len(SPECS)] for i in range(len(payloads))]
            blobs = await asyncio.gather(
                *(svc.compress(s, p) for s, p in zip(specs, payloads))
            )
            backs = await asyncio.gather(
                *(svc.decompress(s, b) for s, b in zip(specs, blobs))
            )
            stats = svc.stats
        assert stats.errors == 0
        assert stats.completed == 2 * len(payloads)
        return blobs, [np.asarray(b) for b in backs]

    return asyncio.run(run())


def test_faults_under_load_are_counted_and_byte_identical():
    faults0 = METRICS.counter("hpdr_faults_injected_total").total()
    retries0 = METRICS.counter("hpdr_retries_total").total()

    plan = FaultPlan(seed=3, device_batch_rate=0.05, timeout_rate=0.03)
    got_blobs, got_backs = _run_workload(plan)

    faults = METRICS.counter("hpdr_faults_injected_total").total() - faults0
    retries = METRICS.counter("hpdr_retries_total").total() - retries0
    assert faults > 0, "the plan injected nothing; the test is vacuous"
    assert faults == retries, (
        f"every injected fault must cause exactly one retry "
        f"(faults={faults}, retries={retries})"
    )

    # Fault-free reference run: identical bytes, identical arrays.
    want_blobs, want_backs = _run_workload(None)
    assert got_blobs == want_blobs
    for got, want in zip(got_backs, want_backs):
        assert np.array_equal(got, want)


def test_fault_free_run_injects_nothing():
    faults0 = METRICS.counter("hpdr_faults_injected_total").total()
    _run_workload(None)
    assert METRICS.counter("hpdr_faults_injected_total").total() == faults0


def test_poisoned_request_degrades_not_fails():
    """A request whose retry budget dies degrades to the fallback codec
    and still gets the right answer; batchmates are unaffected."""
    data = np.ones((16, 16), dtype=np.float32)
    spec = CodecSpec("zfp-x", rate=8.0)
    want = spec.build().compress(data)

    async def run():
        cfg = ServiceConfig(
            limits=BatchLimits(max_batch=8, max_latency_s=0.002),
            # Every GEM call faults: the primary adapter is unusable.
            fault_plan=FaultPlan(seed=0, device_batch_rate=1.0),
            retry=RetryPolicy(max_attempts=2),
            retry_sleep=lambda s: None,
        )
        async with ReductionService(cfg) as svc:
            blobs = await asyncio.gather(
                *(svc.compress(spec, data) for _ in range(4))
            )
            degradations = sum(w.degradations for w in svc.workers)
            stats = svc.stats
        return blobs, degradations, stats

    degr0 = METRICS.counter("hpdr_degradations_total").total()
    blobs, degradations, stats = asyncio.run(run())
    assert all(b == want for b in blobs), (
        "degraded responses must be byte-identical (portability)"
    )
    assert stats.errors == 0
    assert degradations > 0
    assert METRICS.counter("hpdr_degradations_total").total() > degr0
