"""Property-based invariants of the micro-batch planner.

The planner is pure and clock-injected, so hypothesis can drive
arbitrary interleavings of request arrivals, clock advances and
cancellations against a synthetic clock and check the four documented
invariants:

1. exactly-once — every added item lands in exactly one flush unless
   discarded first;
2. no flush exceeds ``max_batch`` items;
3. no flush exceeds ``max_bytes`` unless it is a single oversized item;
4. after ``due(now)``, no open batch is older than ``max_latency_s``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.batcher import BatchLimits, MicroBatchPlanner

# Commands: ("add", key, nbytes) | ("advance", dt) | ("cancel", idx)
# The clock is integer "ticks" (units are irrelevant to the planner).
_COMMANDS = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 3), st.integers(0, 120)),
        st.tuples(st.just("advance"), st.just(0), st.integers(1, 7)),
        st.tuples(st.just("cancel"), st.just(0), st.integers(0, 10**6)),
    ),
    min_size=1,
    max_size=60,
)

_LIMITS = st.builds(
    BatchLimits,
    max_batch=st.integers(1, 5),
    max_bytes=st.integers(1, 300),
    max_latency_s=st.integers(0, 6).map(float),
)


class _Item:
    """Identity-tracked request stand-in."""

    __slots__ = ("uid", "nbytes")

    def __init__(self, uid: int, nbytes: int) -> None:
        self.uid = uid
        self.nbytes = nbytes


def _run(limits: BatchLimits, commands) -> None:
    planner = MicroBatchPlanner(limits)
    now = 0.0
    next_uid = 0
    added: dict[int, _Item] = {}
    pending: list[tuple[int, _Item]] = []  # (key, item) not yet flushed
    flushed_uids: list[int] = []
    cancelled_uids: list[int] = []

    def consume(flushes) -> None:
        for flush in flushes:
            # Invariant 2: size bound.
            assert len(flush.items) <= limits.max_batch, flush.reason
            # Invariant 3: byte bound, oversized singletons excepted.
            if len(flush.items) > 1:
                assert flush.nbytes <= limits.max_bytes, flush.reason
            assert flush.nbytes == sum(i.nbytes for i in flush.items)
            assert flush.reason in ("size", "bytes", "deadline", "drain")
            for item in flush.items:
                flushed_uids.append(item.uid)
                pending.remove((flush.key, item))

    for op, key, arg in commands:
        if op == "add":
            item = _Item(next_uid, arg)
            next_uid += 1
            added[item.uid] = item
            pending.append((key, item))
            consume(planner.add(key, item, arg, now))
        elif op == "advance":
            now += arg
            consume(planner.due(now))
            # Invariant 4: nothing open is past its deadline.
            deadline = planner.next_deadline()
            if deadline is not None:
                assert deadline > now
            else:
                assert planner.pending() == 0
        else:  # cancel some pending item (if any)
            if pending:
                key, item = pending[arg % len(pending)]
                assert planner.discard(key, item) is True
                cancelled_uids.append(item.uid)
                pending.remove((key, item))

        assert planner.pending() == len(pending)

    consume(planner.flush_all())
    assert planner.pending() == 0
    assert planner.open_batches() == 0
    assert planner.next_deadline() is None

    # Invariant 1: exactly-once, cancellations excepted.
    assert len(flushed_uids) == len(set(flushed_uids)), "item flushed twice"
    assert sorted(flushed_uids + cancelled_uids) == sorted(added), (
        "every added item must be flushed exactly once or cancelled"
    )


@given(limits=_LIMITS, commands=_COMMANDS)
@settings(max_examples=300, deadline=None)
def test_planner_invariants(limits, commands):
    _run(limits, commands)


@given(
    nbytes=st.lists(st.integers(0, 50), min_size=1, max_size=40),
    max_batch=st.integers(1, 8),
)
@settings(max_examples=100, deadline=None)
def test_size_flushes_are_exact(nbytes, max_batch):
    """With no byte/latency pressure, flushes carry exactly max_batch."""
    planner = MicroBatchPlanner(
        BatchLimits(max_batch=max_batch, max_bytes=1 << 30, max_latency_s=60.0)
    )
    flushes = []
    for i, nb in enumerate(nbytes):
        flushes += planner.add("k", _Item(i, nb), nb, now=0.0)
    for flush in flushes:
        assert len(flush.items) == max_batch
        assert flush.reason == "size"
    assert planner.pending() == len(nbytes) - max_batch * len(flushes)


def test_oversized_singleton_flushes_immediately():
    planner = MicroBatchPlanner(BatchLimits(max_batch=8, max_bytes=100))
    flushes = planner.add("k", _Item(0, 500), 500, now=0.0)
    assert [f.reason for f in flushes] == ["bytes"]
    assert [i.uid for i in flushes[0].items] == [0]
    assert planner.pending() == 0


def test_byte_overflow_closes_old_batch_first():
    planner = MicroBatchPlanner(BatchLimits(max_batch=8, max_bytes=100))
    assert planner.add("k", _Item(0, 60), 60, now=0.0) == []
    flushes = planner.add("k", _Item(1, 60), 60, now=1.0)
    # Old batch closes under the byte bound; the new item stays open.
    assert [f.reason for f in flushes] == ["bytes"]
    assert [i.uid for i in flushes[0].items] == [0]
    assert planner.pending() == 1


def test_deadline_uses_first_arrival():
    planner = MicroBatchPlanner(BatchLimits(max_batch=8, max_latency_s=5.0))
    planner.add("k", _Item(0, 1), 1, now=10.0)
    planner.add("k", _Item(1, 1), 1, now=13.0)
    assert planner.next_deadline() == 15.0
    assert planner.due(14.9) == []
    flushes = planner.due(15.0)
    assert [f.reason for f in flushes] == ["deadline"]
    assert len(flushes[0].items) == 2


def test_limits_validation():
    import pytest

    with pytest.raises(ValueError):
        BatchLimits(max_batch=0)
    with pytest.raises(ValueError):
        BatchLimits(max_bytes=0)
    with pytest.raises(ValueError):
        BatchLimits(max_latency_s=-1.0)
    with pytest.raises(ValueError):
        MicroBatchPlanner().add("k", _Item(0, 1), -1, now=0.0)
