"""BPWriter/BPReader aggregation engines."""

import numpy as np
import pytest

from repro import Config, ErrorMode, MGARDX
from repro.io.engine import BPReader, BPWriter


def test_single_rank_roundtrip(tmp_path, rng):
    w = BPWriter(tmp_path / "run", num_aggregators=1)
    data = rng.normal(size=(8, 8))
    w.put("u", data)
    stats = w.close()
    assert stats["subfiles"] == 1
    r = BPReader(tmp_path / "run")
    assert np.array_equal(r.get("u"), data)


def test_multi_rank_aggregation(tmp_path, rng):
    """12 ranks onto 4 aggregators (Summit-style: fewer writers)."""
    w = BPWriter(tmp_path / "run", num_aggregators=4)
    fields = {}
    for rank in range(12):
        data = rng.normal(size=(6,)) + rank
        fields[rank] = data
        w.put("u", data, rank=rank)
    w.close()
    r = BPReader(tmp_path / "run")
    for rank, data in fields.items():
        assert np.array_equal(r.get("u", rank=rank), data)
    # Exactly 4 subfiles on disk.
    assert len(list((tmp_path / "run").glob("data.*"))) == 4


def test_variables_listing(tmp_path, rng):
    w = BPWriter(tmp_path / "run", num_aggregators=2)
    w.put("a", rng.normal(size=(2,)), rank=0)
    w.put("b", rng.normal(size=(2,)), rank=1)
    w.close()
    r = BPReader(tmp_path / "run")
    assert r.variables() == ["a@0", "b@1"]


def test_reduced_variables_through_writer(tmp_path, smooth_2d):
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    w = BPWriter(tmp_path / "run", num_aggregators=2)
    for rank in range(4):
        w.put("psl", smooth_2d, rank=rank, operator="mgard-x",
              compressor=MGARDX(cfg))
    stats = w.close()
    assert stats["stored_bytes"] < stats["original_bytes"]
    r = BPReader(tmp_path / "run")
    back = r.get("psl", rank=3, compressor=MGARDX(cfg))
    assert np.max(np.abs(back - smooth_2d)) <= 1e-3 * np.ptp(smooth_2d)


def test_writer_close_only_once(tmp_path, rng):
    w = BPWriter(tmp_path / "run")
    w.put("x", rng.normal(size=(2,)))
    w.close()
    with pytest.raises(RuntimeError):
        w.close()
    with pytest.raises(RuntimeError):
        w.put("y", rng.normal(size=(2,)))


def test_reader_missing_index(tmp_path):
    with pytest.raises(FileNotFoundError):
        BPReader(tmp_path / "nothing")


def test_reader_missing_variable(tmp_path, rng):
    w = BPWriter(tmp_path / "run")
    w.put("x", rng.normal(size=(2,)))
    w.close()
    with pytest.raises(KeyError):
        BPReader(tmp_path / "run").get("y")


def test_invalid_aggregators(tmp_path):
    with pytest.raises(ValueError):
        BPWriter(tmp_path / "run", num_aggregators=0)


def test_hyperslab_selection(tmp_path, rng):
    w = BPWriter(tmp_path / "run")
    data = rng.normal(size=(10, 12, 14))
    w.put("u", data)
    w.close()
    r = BPReader(tmp_path / "run")
    sel = (slice(2, 5), slice(None), slice(0, 7))
    out = r.get("u", selection=sel)
    assert np.array_equal(out, data[sel])
    assert out.flags["C_CONTIGUOUS"]


def test_hyperslab_on_reduced_variable(tmp_path, smooth_2d):
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    w = BPWriter(tmp_path / "run")
    w.put("psl", smooth_2d, operator="mgard-x", compressor=MGARDX(cfg))
    w.close()
    r = BPReader(tmp_path / "run")
    out = r.get("psl", compressor=MGARDX(cfg), selection=(slice(0, 5),))
    assert out.shape == (5, smooth_2d.shape[1])
    assert np.max(np.abs(out - smooth_2d[:5])) <= 1e-3 * np.ptp(smooth_2d)


def test_hyperslab_rank_validated(tmp_path, rng):
    w = BPWriter(tmp_path / "run")
    w.put("u", rng.normal(size=(4, 4)))
    w.close()
    r = BPReader(tmp_path / "run")
    with pytest.raises(ValueError):
        r.get("u", selection=(slice(None),) * 3)
