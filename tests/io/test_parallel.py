"""At-scale reduction and I/O simulations (Figs. 15-18 machinery)."""

import pytest

from repro.bench.methods import EVAL_METHODS, method_at_scale
from repro.io.parallel import (
    ReductionAtScale,
    aggregate_reduction,
    node_reduction_time,
    strong_scaling_io,
    weak_scaling_io,
)
from repro.machine.topology import FRONTIER, SUMMIT

GB = int(1e9)
TB = int(1e12)


class TestNodeReduction:
    def test_weak_scaling_efficiency_with_cmm(self):
        m = EVAL_METHODS["mgard-x"]
        t1 = node_reduction_time(SUMMIT, m, 2 * GB, num_gpus=1)
        t6 = node_reduction_time(SUMMIT, m, 2 * GB, num_gpus=6)
        assert t6 / t1 < 1.12  # near-ideal scaling

    def test_no_cmm_contention_costs_scaling(self):
        m = EVAL_METHODS["mgard-gpu"]
        t1 = node_reduction_time(SUMMIT, m, 2 * GB, num_gpus=1)
        t6 = node_reduction_time(SUMMIT, m, 2 * GB, num_gpus=6)
        assert t6 / t1 > 1.25  # visible contention

    def test_fig16_ordering(self):
        """MGARD-X scales best; ZFP-CUDA/cuSZ worst (Fig. 16)."""
        def avg_eff(m):
            t1 = node_reduction_time(SUMMIT, m, 2 * GB, num_gpus=1)
            effs = [
                t1 / node_reduction_time(SUMMIT, m, 2 * GB, num_gpus=g)
                for g in range(2, 7)
            ]
            return sum(effs) / len(effs)

        mgx = avg_eff(EVAL_METHODS["mgard-x"])
        mgg = avg_eff(EVAL_METHODS["mgard-gpu"])
        zfc = avg_eff(EVAL_METHODS["zfp-cuda"])
        csz = avg_eff(EVAL_METHODS["cusz"])
        lz4 = avg_eff(EVAL_METHODS["nvcomp-lz4"])
        assert mgx > 0.9
        assert mgx > mgg > zfc
        assert mgx > lz4 > csz
        assert zfc < 0.65 and csz < 0.65

    def test_decompress_path(self):
        m = EVAL_METHODS["mgard-x"]
        t = node_reduction_time(SUMMIT, m, 1 * GB, decompress=True)
        assert t > 0

    def test_invalid_gpus(self):
        with pytest.raises(ValueError):
            node_reduction_time(SUMMIT, EVAL_METHODS["mgard-x"], GB, num_gpus=0)


class TestAggregate:
    def test_fig15_headline_summit(self):
        """MGARD-X ≈ 45 TB/s on 512 Summit nodes."""
        agg = aggregate_reduction(SUMMIT, 512, EVAL_METHODS["mgard-x"], 7 * GB)
        assert 35 * TB < agg < 60 * TB

    def test_fig15_headline_frontier(self):
        """MGARD-X ≈ 103 TB/s on 1,024 Frontier nodes."""
        agg = aggregate_reduction(FRONTIER, 1024, EVAL_METHODS["mgard-x"], 15 * GB)
        assert 85 * TB < agg < 125 * TB

    def test_fig15_baseline_gap(self):
        """Baselines land at a small fraction of MGARD-X (paper: 9-13
        vs 45 TB/s on Summit)."""
        mgx = aggregate_reduction(SUMMIT, 512, EVAL_METHODS["mgard-x"], 7 * GB)
        for name in ("mgard-gpu", "cusz", "zfp-cuda", "nvcomp-lz4"):
            base = aggregate_reduction(SUMMIT, 512, EVAL_METHODS[name], 7 * GB)
            assert base < 0.45 * mgx, name

    def test_linear_in_nodes(self):
        m = EVAL_METHODS["mgard-x"]
        a128 = aggregate_reduction(SUMMIT, 128, m, 2 * GB)
        a512 = aggregate_reduction(SUMMIT, 512, m, 2 * GB)
        assert a512 == pytest.approx(4 * a128)


class TestWeakScalingIO:
    def test_mgard_x_accelerates_io(self):
        m = method_at_scale("mgard-x", ratio=20.0)
        results = weak_scaling_io(SUMMIT, [64, 256, 512], m)
        for r in results:
            assert r.write_speedup > 3
            assert r.read_speedup > 2

    def test_lz4_fails_to_accelerate(self):
        """Paper: NVCOMP-LZ4's 1.1× ratio cannot pay for its overhead."""
        m = method_at_scale("nvcomp-lz4", ratio=1.1)
        results = weak_scaling_io(SUMMIT, [512], m)
        assert results[0].write_speedup < 1.0

    def test_mgard_x_beats_mgard_gpu(self):
        mx = weak_scaling_io(SUMMIT, [512], method_at_scale("mgard-x", ratio=20.0))[0]
        mg = weak_scaling_io(SUMMIT, [512], method_at_scale("mgard-gpu", ratio=20.0))[0]
        assert mx.write_speedup > mg.write_speedup
        assert mx.read_speedup > mg.read_speedup

    def test_ratio_reported(self):
        m = method_at_scale("mgard-x", ratio=10.0)
        r = weak_scaling_io(SUMMIT, [8], m, bytes_per_gpu=GB)[0]
        assert r.ratio == pytest.approx(10.0, rel=0.01)
        assert r.raw_bytes == 6 * GB * 8


class TestStrongScalingIO:
    def test_fixed_volume_split(self):
        m = method_at_scale("mgard-x", ratio=7.9, error_bound=1e-4)
        results = strong_scaling_io(FRONTIER, [512, 1024, 2048], m, 32 * TB)
        assert results[0].raw_bytes >= results[1].raw_bytes
        # More nodes → lower write time (both I/O share and reduction shrink)
        assert results[-1].write_time < results[0].write_time

    def test_fig18_mgard_x_accelerates_mgard_gpu_does_not(self):
        """Fig. 18: MGARD-X 1.7-3.4× write acceleration; MGARD-GPU adds
        overhead instead."""
        e3sm_x = strong_scaling_io(
            FRONTIER, [512, 1024, 2048],
            method_at_scale("mgard-x", ratio=7.9, error_bound=1e-4), 32 * TB,
            steps_per_gpu=64)
        e3sm_g = strong_scaling_io(
            FRONTIER, [512, 1024, 2048],
            method_at_scale("mgard-gpu", ratio=7.9, error_bound=1e-4), 32 * TB,
            steps_per_gpu=64)
        for rx, rg in zip(e3sm_x, e3sm_g):
            assert rx.write_speedup > 1.5
            assert rg.write_speedup < 1.0  # extra overhead, as in the paper
