"""BP5-like container format."""

import numpy as np
import pytest

from repro import Config, ErrorMode, MGARDX
from repro.io.bp import BPFile, get_operator, register_operator


class TestRawVariables:
    def test_put_get_roundtrip(self, rng):
        bp = BPFile()
        data = rng.normal(size=(10, 12)).astype(np.float32)
        bp.put("temperature", data)
        assert np.array_equal(bp.get("temperature"), data)

    def test_serialization_roundtrip(self, rng):
        bp = BPFile()
        a = rng.normal(size=(5, 6))
        b = rng.integers(0, 100, size=(7,)).astype(np.int32)
        bp.put("a", a)
        bp.put("b", b)
        bp2 = BPFile.frombytes(bp.tobytes())
        assert np.array_equal(bp2.get("a"), a)
        assert np.array_equal(bp2.get("b"), b)
        assert bp2.get("b").dtype == np.int32

    def test_file_save_load(self, rng, tmp_path):
        bp = BPFile()
        data = rng.normal(size=(4, 4))
        bp.put("x", data)
        n = bp.save(tmp_path / "out.bp")
        assert n > data.nbytes
        assert np.array_equal(BPFile.load(tmp_path / "out.bp").get("x"), data)

    def test_missing_variable(self):
        with pytest.raises(KeyError):
            BPFile().get("nope")

    def test_crc_detects_corruption(self, rng):
        bp = BPFile()
        bp.put("x", rng.normal(size=(64,)))
        blob = bytearray(bp.tobytes())
        blob[-5] ^= 0xFF  # flip a payload byte
        with pytest.raises(ValueError, match="CRC"):
            BPFile.frombytes(bytes(blob))

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            BPFile.frombytes(b"ADIO" + bytes(16))


class TestOperators:
    def test_reduced_variable_roundtrip(self, smooth_2d):
        cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
        bp = BPFile()
        bp.put("psl", smooth_2d, operator="mgard-x", compressor=MGARDX(cfg))
        back = bp.get("psl", compressor=MGARDX(cfg))
        assert np.max(np.abs(back - smooth_2d)) <= 1e-3 * np.ptp(smooth_2d)

    def test_reduced_smaller_than_raw(self, smooth_2d):
        cfg = Config(error_bound=1e-2, error_mode=ErrorMode.REL)
        bp = BPFile()
        bp.put("raw", smooth_2d)
        bp.put("red", smooth_2d, operator="mgard-x", compressor=MGARDX(cfg))
        raw = bp.variables["raw"].nbytes_stored
        red = bp.variables["red"].nbytes_stored
        assert red < raw

    def test_operator_from_registry(self, smooth_2d):
        bp = BPFile()
        data = smooth_2d.astype(np.float32)
        bp.put("v", data, operator="zfp-x")
        back = bp.get("v")  # registry default instance
        assert back.shape == data.shape

    def test_all_default_operators_registered(self):
        for name in ("mgard-x", "zfp-x", "huffman-x", "cusz",
                     "nvcomp-lz4", "mgard-gpu", "zfp-cuda"):
            assert get_operator(name) is not None

    def test_unknown_operator(self):
        with pytest.raises(KeyError):
            get_operator("blosc")

    def test_lossless_operator_exact(self, rng):
        bp = BPFile()
        data = rng.normal(size=(20, 20)).astype(np.float64)
        bp.put("v", data, operator="huffman-x")
        assert np.array_equal(bp.get("v"), data)

    def test_compression_ratio_property(self, smooth_2d):
        cfg = Config(error_bound=1e-2, error_mode=ErrorMode.REL)
        bp = BPFile()
        bp.put("v", smooth_2d, operator="mgard-x", compressor=MGARDX(cfg))
        assert bp.compression_ratio > 1.0

    def test_put_reduced_payload(self, smooth_2d):
        cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
        comp = MGARDX(cfg)
        payload = comp.compress(smooth_2d)
        bp = BPFile()
        bp.put_reduced("v", payload, smooth_2d.shape, smooth_2d.dtype, "mgard-x")
        back = bp.get("v", compressor=MGARDX(cfg))
        assert back.shape == smooth_2d.shape
