"""Step-based I/O (begin_step/end_step model)."""

import numpy as np
import pytest

from repro import Config, ErrorMode, MGARDX
from repro.io.steps import StepReader, StepWriter


def test_step_roundtrip(tmp_path, rng):
    fields = [rng.normal(size=(8, 10)) + i for i in range(4)]
    w = StepWriter(tmp_path / "run")
    for f in fields:
        with w.step() as s:
            s.put("u", f)
    stats = w.close()
    assert stats["steps"] == 4

    r = StepReader(tmp_path / "run")
    assert r.num_steps == 4
    for i, f in enumerate(fields):
        assert np.array_equal(r.get(i, "u"), f)


def test_iter_steps(tmp_path, rng):
    w = StepWriter(tmp_path / "run")
    for i in range(3):
        with w.step() as s:
            s.put("v", np.full((4,), float(i)))
    w.close()
    r = StepReader(tmp_path / "run")
    values = [v[0] for v in r.iter_steps("v")]
    assert values == [0.0, 1.0, 2.0]


def test_reduced_steps_multirank(tmp_path, smooth_2d):
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    w = StepWriter(tmp_path / "run", num_aggregators=2)
    for step in range(2):
        with w.step() as s:
            for rank in range(3):
                s.put("psl", smooth_2d + rank, rank=rank,
                      operator="mgard-x", compressor=MGARDX(cfg))
    w.close()
    r = StepReader(tmp_path / "run")
    out = r.get(1, "psl", rank=2, compressor=MGARDX(cfg))
    assert np.max(np.abs(out - (smooth_2d + 2))) <= 1e-3 * np.ptp(smooth_2d)


def test_unclosed_step_blocks_new_step(tmp_path, rng):
    w = StepWriter(tmp_path / "run")
    s = w.step()
    with pytest.raises(RuntimeError):
        w.step()
    with pytest.raises(RuntimeError):
        w.close()
    with s:
        s.put("u", rng.normal(size=(2,)))
    w.close()


def test_failed_step_abandoned(tmp_path, rng):
    w = StepWriter(tmp_path / "run")
    with pytest.raises(RuntimeError, match="boom"):
        with w.step() as s:
            s.put("u", rng.normal(size=(2,)))
            raise RuntimeError("boom")
    # The failed step did not count; the writer stays usable.
    with w.step() as s:
        s.put("u", rng.normal(size=(2,)))
    assert w.close()["steps"] == 1


def test_step_out_of_range(tmp_path, rng):
    w = StepWriter(tmp_path / "run")
    with w.step() as s:
        s.put("u", rng.normal(size=(2,)))
    w.close()
    r = StepReader(tmp_path / "run")
    with pytest.raises(IndexError):
        r.get(5, "u")


def test_hyperslab_through_steps(tmp_path, rng):
    data = rng.normal(size=(6, 8))
    w = StepWriter(tmp_path / "run")
    with w.step() as s:
        s.put("u", data)
    w.close()
    r = StepReader(tmp_path / "run")
    out = r.get(0, "u", selection=(slice(1, 3),))
    assert np.array_equal(out, data[1:3])
