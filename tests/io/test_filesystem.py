"""Filesystem time models."""

import pytest

from repro.io.filesystem import IO_LATENCY_S, effective_bandwidth, io_time, system_io_time
from repro.machine.topology import FRONTIER, SUMMIT

TB = 1e12
GB = 1e9


def test_io_time_includes_latency():
    fs = SUMMIT.filesystem
    assert io_time(fs, 0, 1) == IO_LATENCY_S
    t = io_time(fs, 1 * TB, 512)
    assert t > IO_LATENCY_S


def test_io_time_scales_with_volume():
    fs = FRONTIER.filesystem
    t1 = io_time(fs, 1 * TB, 1024)
    t2 = io_time(fs, 2 * TB, 1024)
    assert t2 > t1
    assert (t2 - IO_LATENCY_S) == pytest.approx(2 * (t1 - IO_LATENCY_S))


def test_more_writers_faster_until_peak():
    fs = SUMMIT.filesystem
    t_few = io_time(fs, 10 * TB, 8)
    t_many = io_time(fs, 10 * TB, 512)
    assert t_many < t_few


def test_peak_bandwidth_reached_at_scale():
    fs = SUMMIT.filesystem
    # 512 writers × 12.5 GB/s = 6.4 TB/s raw > 2.5 TB/s peak: capped.
    assert effective_bandwidth(fs, 512) == pytest.approx(2.5 * TB)


def test_system_io_time_uses_tuned_aggregation():
    # Frontier aggregates per GPU → 4× the writers of per-node.
    t = system_io_time(FRONTIER, 128, 10 * TB)
    assert t > 0
    few_writers = io_time(FRONTIER.filesystem, 10 * TB, 128)
    assert t <= few_writers


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        io_time(SUMMIT.filesystem, -1, 4)


def test_writing_full_summit_dataset():
    """Paper scale check: 23 TB over GPFS at 512 nodes ≈ 9-10 s."""
    t = system_io_time(SUMMIT, 512, 23 * TB)
    assert 8 < t < 12
