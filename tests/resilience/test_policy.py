"""RetryPolicy, retry_call, CircuitBreaker."""

from __future__ import annotations

import pytest

from repro.resilience.errors import (
    AdapterTimeoutFault,
    CampaignKilled,
    DeviceBatchFault,
    ResilienceExhausted,
)
from repro.resilience.policy import CircuitBreaker, RetryPolicy, retry_call
from repro.trace.metrics import REGISTRY


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy().delay(0)


def test_backoff_is_exponential_capped_and_jitter_free():
    p = RetryPolicy(max_attempts=6, base_delay_s=0.01, multiplier=2.0,
                    max_delay_s=0.05)
    assert p.delays() == [0.01, 0.02, 0.04, 0.05, 0.05]
    assert p.delays() == p.delays()  # deterministic: no jitter


def test_retry_call_success_no_retries():
    calls = []
    out = retry_call(lambda: calls.append(1) or "ok", RetryPolicy())
    assert out == "ok" and len(calls) == 1


def test_retry_call_recovers_and_counts_retries():
    counter = REGISTRY.counter("hpdr_retries_total")
    before = counter.total()
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise DeviceBatchFault("gem.q", "boom")
        return 42

    slept = []
    out = retry_call(flaky, RetryPolicy(max_attempts=4, base_delay_s=0.01),
                     site="gem.q", sleep=slept.append)
    assert out == 42
    assert len(attempts) == 3
    assert slept == [0.01, 0.02]
    # Exactly the actual re-attempts are counted, not the first try.
    assert counter.total() == before + 2


def test_retry_budget_exhaustion_is_typed():
    def always_fail():
        raise AdapterTimeoutFault("dem.z", "wedged")

    with pytest.raises(ResilienceExhausted) as ei:
        retry_call(always_fail, RetryPolicy(max_attempts=3),
                   site="dem.z", sleep=lambda s: None)
    exc = ei.value
    assert exc.site == "dem.z"
    assert exc.attempts == 3
    assert isinstance(exc.last_error, AdapterTimeoutFault)
    assert isinstance(exc.__cause__, AdapterTimeoutFault)


def test_exhausting_failure_not_counted_as_retry():
    counter = REGISTRY.counter("hpdr_retries_total")
    before = counter.total()

    def always_fail():
        raise DeviceBatchFault("s", "no")

    with pytest.raises(ResilienceExhausted):
        retry_call(always_fail, RetryPolicy(max_attempts=3),
                   site="s", sleep=lambda s: None)
    # 3 attempts -> 2 re-attempts; the final failure is not a retry.
    assert counter.total() == before + 2


def test_non_transient_errors_propagate_immediately():
    calls = []

    def fatal():
        calls.append(1)
        raise CampaignKilled(7)

    with pytest.raises(CampaignKilled):
        retry_call(fatal, RetryPolicy(max_attempts=5), sleep=lambda s: None)
    assert len(calls) == 1

    def bug():
        calls.append(1)
        raise ZeroDivisionError

    with pytest.raises(ZeroDivisionError):
        retry_call(bug, RetryPolicy(max_attempts=5), sleep=lambda s: None)


def test_retry_on_is_configurable():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 2:
            raise KeyError("transient-for-this-caller")
        return "ok"

    out = retry_call(flaky, RetryPolicy(max_attempts=3),
                     retry_on=(KeyError,), sleep=lambda s: None)
    assert out == "ok" and len(calls) == 2


def test_callbacks_feed_the_breaker():
    breaker = CircuitBreaker(threshold=2)
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 2:
            raise DeviceBatchFault("s")
        return 1

    retry_call(
        flaky, RetryPolicy(max_attempts=3), sleep=lambda s: None,
        on_failure=lambda exc: breaker.record_failure(),
        on_success=breaker.record_success,
    )
    assert breaker.consecutive_failures == 0
    assert breaker.total_failures == 1
    assert not breaker.is_open


def test_circuit_breaker_opens_and_resets():
    b = CircuitBreaker(threshold=3)
    for _ in range(2):
        b.record_failure()
    assert not b.is_open
    b.record_success()
    for _ in range(2):
        b.record_failure()
    assert not b.is_open  # success reset the consecutive count
    b.record_failure()
    assert b.is_open
    assert b.total_failures == 5
    b.reset()
    assert not b.is_open and b.consecutive_failures == 0
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
