"""FaultyAdapter / ResilientAdapter: retries, degradation, bit-equality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters.base import get_adapter
from repro.compressors.zfp.compressor import ZFPX
from repro.resilience.adapter import (
    FaultyAdapter,
    ResilientAdapter,
    resilient_adapter,
)
from repro.resilience.errors import (
    AdapterTimeoutFault,
    DeviceBatchFault,
    ResilienceExhausted,
)
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.policy import CircuitBreaker, RetryPolicy
from repro.trace.metrics import REGISTRY


class _Square:
    name = "square"
    bytes_per_element = 4

    def apply(self, groups):
        return groups * groups


def _field():
    return np.linspace(0, 1, 32 * 16, dtype=np.float32).reshape(32, 16)


def test_faulty_adapter_injects_deterministically():
    base = get_adapter("serial")
    batch = np.arange(8, dtype=np.float32).reshape(2, 2, 2)

    def run_once():
        fa = FaultyAdapter(base, FaultPlan(seed=2, device_batch_rate=0.5))
        kinds = []
        for _ in range(12):
            try:
                out = fa.execute_group_batch(_Square(), batch)
                np.testing.assert_array_equal(out, batch * batch)
                kinds.append("ok")
            except DeviceBatchFault:
                kinds.append("fault")
        return kinds

    seq = run_once()
    assert seq == run_once()
    assert "fault" in seq and "ok" in seq


def test_faulty_adapter_timeout_drawn_before_device_batch():
    fa = FaultyAdapter(
        get_adapter("serial"),
        FaultPlan(seed=0, timeout_rate=1.0, device_batch_rate=1.0),
    )
    with pytest.raises(AdapterTimeoutFault):
        fa.execute_group_batch(_Square(), np.ones((1, 2, 2), np.float32))


def test_resilient_adapter_retries_through_faults():
    # A lenient breaker isolates the retry path: with a 50% fault rate a
    # default threshold-3 breaker would legitimately open and demote.
    chain = resilient_adapter(
        plan=FaultPlan(seed=2, device_batch_rate=0.5),
        policy=RetryPolicy(max_attempts=8),
        breaker=CircuitBreaker(threshold=100),
        sleep=lambda s: None,
    )
    batch = np.arange(8, dtype=np.float32).reshape(2, 2, 2)
    for _ in range(10):
        np.testing.assert_array_equal(
            chain.execute_group_batch(_Square(), batch), batch * batch
        )
    assert not chain.degraded


def test_degradation_on_exhaustion_keeps_bytes_identical():
    counter = REGISTRY.counter("hpdr_degradations_total")
    before = counter.total()
    # Every attempt faults: the budget exhausts, then the fallback
    # serial adapter runs the call once — output must be correct.
    chain = resilient_adapter(
        plan=FaultPlan(seed=0, device_batch_rate=1.0),
        policy=RetryPolicy(max_attempts=3),
        sleep=lambda s: None,
    )
    batch = np.arange(8, dtype=np.float32).reshape(2, 2, 2)
    out = chain.execute_group_batch(_Square(), batch)
    np.testing.assert_array_equal(out, batch * batch)
    assert chain.degraded
    assert counter.total() == before + 1
    # Degraded: further calls go straight to the fallback, no faults.
    np.testing.assert_array_equal(
        chain.execute_group_batch(_Square(), batch), batch * batch
    )


def test_exhaustion_propagates_without_fallback():
    chain = resilient_adapter(
        plan=FaultPlan(seed=0, device_batch_rate=1.0),
        policy=RetryPolicy(max_attempts=2),
        fallback=None,
        sleep=lambda s: None,
    )
    with pytest.raises(ResilienceExhausted):
        chain.execute_group_batch(_Square(), np.ones((1, 2, 2), np.float32))


def test_open_breaker_pre_demotes():
    breaker = CircuitBreaker(threshold=1)
    breaker.record_failure()
    assert breaker.is_open
    inner = FaultyAdapter(
        get_adapter("serial"), FaultPlan(seed=0, device_batch_rate=1.0)
    )
    chain = ResilientAdapter(inner, breaker=breaker, sleep=lambda s: None)
    batch = np.ones((1, 2, 2), np.float32)
    # Breaker already open: the faulty primary is never consulted.
    np.testing.assert_array_equal(
        chain.execute_group_batch(_Square(), batch), batch
    )
    assert chain.degraded
    assert inner.injector.count() == 0


def test_wrappers_satisfy_adapter_contract():
    chain = resilient_adapter(plan=FaultPlan(seed=1), sleep=lambda s: None)
    assert chain.parallel_width() >= 1
    assert chain.map_tasks(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
    chain.synchronize()
    assert "resilient" in chain.name


def test_compressed_stream_identical_under_faults():
    """The portability guarantee under fire: a heavily faulted, retried,
    possibly degraded chain produces byte-identical streams."""
    data = _field()
    clean = ZFPX(rate=8.0, adapter=get_adapter("serial")).compress(data)
    for seed in (0, 1, 2):
        chain = resilient_adapter(
            plan=FaultPlan(seed=seed, device_batch_rate=0.6, timeout_rate=0.3),
            policy=RetryPolicy(max_attempts=6),
            sleep=lambda s: None,
        )
        assert ZFPX(rate=8.0, adapter=chain).compress(data) == clean
