"""CampaignRunner end-to-end: kill/resume bit-exactness, scale-out faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import (
    CampaignKilled,
    CampaignRunner,
    FaultPlan,
    ResilienceExhausted,
)
from repro.resilience.campaign import reconstruct
from repro.trace.metrics import REGISTRY


def _data(n0=64, n1=8):
    rng = np.random.default_rng(123)
    base = np.linspace(0, 1, n0 * n1).reshape(n0, n1)
    return (base + rng.normal(0, 0.01, (n0, n1))).astype(np.float32)


def _mk(adapter):
    from repro.compressors.zfp.compressor import ZFPX

    return ZFPX(rate=8.0, adapter=adapter)


def _runner(data, workdir, **kw):
    kw.setdefault("make_compressor", _mk)
    kw.setdefault("method", "zfp-x")
    kw.setdefault("chunk_elems", 8)
    kw.setdefault("sleep", lambda s: None)
    return CampaignRunner(data, workdir, **kw)


def test_clean_campaign(tmp_path):
    data = _data()
    res = _runner(data, tmp_path / "c", ranks=4).run()
    assert res.total_chunks == 8
    assert res.resumed_chunks == 0
    assert res.dropped_ranks == []
    assert res.faults_injected == 0 and res.retries == 0
    assert sum(res.rank_progress.values()) == 8
    out = reconstruct(tmp_path / "c", make_compressor=_mk)
    assert out.shape == data.shape
    assert np.abs(out - data).max() < 0.1  # rate-8 ZFP tolerance


def test_rank_count_does_not_change_bytes(tmp_path):
    data = _data()
    digests = {
        _runner(data, tmp_path / f"r{r}", ranks=r).run().output_digest
        for r in (1, 2, 8)
    }
    assert len(digests) == 1


def test_fresh_dir_guard(tmp_path):
    data = _data(16)
    _runner(data, tmp_path / "c", ranks=2).run()
    with pytest.raises(ValueError, match="already holds a campaign"):
        _runner(data, tmp_path / "c", ranks=2).run()


def test_resume_fingerprint_mismatch(tmp_path):
    _runner(_data(16), tmp_path / "c", ranks=2).run()
    with pytest.raises(ValueError, match="fingerprint mismatch"):
        _runner(_data(32), tmp_path / "c", ranks=2).run(resume=True)


def test_killed_campaign_resumes_bit_exact(tmp_path):
    """The tentpole acceptance: kill mid-run, resume, byte-identical."""
    data = _data()
    clean = _runner(data, tmp_path / "clean", ranks=4).run()

    kill_plan = FaultPlan(seed=3, device_batch_rate=0.2, corrupt_rate=0.2,
                          transport_rate=0.1, kill_after_chunks=3)
    with pytest.raises(CampaignKilled) as ei:
        _runner(data, tmp_path / "c", ranks=4, plan=kill_plan).run()
    assert ei.value.completed_chunks >= 3

    # Resume under continued (but kill-free) fire.
    resume_plan = FaultPlan(seed=3, device_batch_rate=0.2, corrupt_rate=0.2,
                            transport_rate=0.1)
    res = _runner(data, tmp_path / "c", ranks=4, plan=resume_plan).run(
        resume=True
    )
    assert res.resumed_chunks >= 3  # finished chunks were not recompressed
    assert res.output_digest == clean.output_digest
    np.testing.assert_array_equal(
        reconstruct(tmp_path / "c", make_compressor=_mk),
        reconstruct(tmp_path / "clean", make_compressor=_mk),
    )


def test_double_kill_then_resume(tmp_path):
    """Each restart makes forward progress past repeated kills."""
    data = _data()
    clean = _runner(data, tmp_path / "clean", ranks=2).run()
    plan = FaultPlan(seed=1, kill_after_chunks=3)
    with pytest.raises(CampaignKilled):
        _runner(data, tmp_path / "c", ranks=2, plan=plan).run()
    with pytest.raises(CampaignKilled):
        _runner(data, tmp_path / "c", ranks=2, plan=plan).run(resume=True)
    res = _runner(data, tmp_path / "c", ranks=2).run(resume=True)
    assert res.output_digest == clean.output_digest


def test_rank_dropout_work_is_adopted(tmp_path):
    data = _data()
    clean = _runner(data, tmp_path / "clean", ranks=4).run()
    plan = FaultPlan(seed=0, drop_ranks=(1, 2), drop_after_chunks=1)
    res = _runner(data, tmp_path / "c", ranks=4, plan=plan).run()
    assert sorted(res.dropped_ranks) == [1, 2]
    assert res.output_digest == clean.output_digest  # zero data loss
    # Survivors did the dropped ranks' share.
    assert sum(res.rank_progress.values()) == res.total_chunks


def test_all_ranks_dropping_exhausts(tmp_path):
    plan = FaultPlan(seed=0, drop_ranks=(0, 1), drop_after_chunks=0)
    with pytest.raises(ResilienceExhausted) as ei:
        _runner(_data(), tmp_path / "c", ranks=2, plan=plan).run()
    assert ei.value.site == "campaign"
    # The checkpoint remains resumable afterwards.
    res = _runner(_data(), tmp_path / "c", ranks=2).run(resume=True)
    assert res.total_chunks == 8


def test_64_rank_campaign_under_5pct_device_faults(tmp_path):
    """Acceptance: >=5% device-batch faults at 64 simulated ranks completes
    with zero data loss and faults == retries on the metrics registry."""
    data = _data(128, 8)
    clean = _runner(data, tmp_path / "clean", ranks=8, chunk_elems=2).run()

    faults_c = REGISTRY.counter("hpdr_faults_injected_total")
    retries_c = REGISTRY.counter("hpdr_retries_total")
    f0, r0 = faults_c.total(), retries_c.total()

    plan = FaultPlan(seed=5, device_batch_rate=0.05)
    res = _runner(data, tmp_path / "c", ranks=64, chunk_elems=2,
                  plan=plan).run()
    assert res.total_chunks == 64
    assert res.output_digest == clean.output_digest  # zero data loss
    assert res.faults_injected > 0
    # Every injected fault was recovered by exactly one re-attempt.
    assert res.faults_injected == res.retries
    assert faults_c.total() - f0 == res.faults_injected
    assert retries_c.total() - r0 == res.retries


def test_campaign_records_context_digests(tmp_path):
    res = _runner(_data(), tmp_path / "c", ranks=2).run()
    ckpt_digests = res.rank_progress  # progress recorded per rank
    assert ckpt_digests
    from repro.resilience.checkpoint import CheckpointManager

    manifest = CheckpointManager(tmp_path / "c").load()
    assert manifest is not None
    assert set(manifest.context_digests) == set(manifest.rank_progress)
    assert all(len(d) == 64 for d in manifest.context_digests.values())
