"""FaultPlan / FaultInjector: determinism, serialization, scheduling."""

from __future__ import annotations

import threading

import pytest

from repro.machine.topology import FRONTIER, WORKSTATION, get_system
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    _unit_draw,
    plan_for_system,
)


def test_unit_draw_deterministic_and_uniformish():
    a = _unit_draw(7, "device_batch", "gem.x", 3)
    assert a == _unit_draw(7, "device_batch", "gem.x", 3)
    assert 0.0 <= a < 1.0
    # Different seed/kind/site/index all perturb the draw.
    assert a != _unit_draw(8, "device_batch", "gem.x", 3)
    assert a != _unit_draw(7, "timeout", "gem.x", 3)
    assert a != _unit_draw(7, "device_batch", "gem.y", 3)
    assert a != _unit_draw(7, "device_batch", "gem.x", 4)
    draws = [_unit_draw(0, "corrupt", "s", n) for n in range(2000)]
    assert 0.3 < sum(d < 0.5 for d in draws) / len(draws) < 0.7


def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(device_batch_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(corrupt_rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(drop_after_chunks=-1)
    with pytest.raises(ValueError):
        FaultPlan(kill_after_chunks=-2)
    with pytest.raises(KeyError):
        FaultPlan().rate("cosmic_ray")


def test_plan_roundtrip(tmp_path):
    plan = FaultPlan(
        seed=42, device_batch_rate=0.05, timeout_rate=0.01,
        corrupt_rate=0.02, transport_rate=0.03,
        drop_ranks=(3, 7), drop_after_chunks=2, kill_after_chunks=10,
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    path = tmp_path / "plan.json"
    plan.save(path)
    assert FaultPlan.load(path) == plan


def test_plan_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown FaultPlan fields"):
        FaultPlan.from_dict({"seed": 1, "flux_capacitor_rate": 0.5})


def test_draw_schedule_is_reproducible():
    plan = FaultPlan(seed=5, device_batch_rate=0.3)
    inj1 = FaultInjector(plan)
    seq1 = [inj1.draw("device_batch", "s") for _ in range(50)]
    inj2 = FaultInjector(plan)
    seq2 = [inj2.draw("device_batch", "s") for _ in range(50)]
    assert seq1 == seq2
    assert any(seq1) and not all(seq1)
    assert inj2.count("device_batch") == sum(seq2)


def test_sites_are_independent():
    """Interleaving draws at other sites must not shift a site's schedule."""
    plan = FaultPlan(seed=9, device_batch_rate=0.4, timeout_rate=0.4)
    inj_a = FaultInjector(plan)
    seq_a = [inj_a.draw("device_batch", "gem.q") for _ in range(30)]
    inj_b = FaultInjector(plan)
    seq_b = []
    for i in range(30):
        inj_b.draw("timeout", f"other{i % 3}")
        seq_b.append(inj_b.draw("device_batch", "gem.q"))
        inj_b.draw("device_batch", f"other{i % 5}")
    assert seq_a == seq_b


def test_thread_interleaving_preserves_total_schedule():
    """N draws at one site fire the same multiset of injections no matter
    how many threads issue them."""
    plan = FaultPlan(seed=3, corrupt_rate=0.25)
    serial = FaultInjector(plan)
    expected = sum(serial.draw("corrupt", "chunk") for _ in range(80))

    threaded = FaultInjector(plan)
    hits = []

    def worker():
        hits.append(sum(threaded.draw("corrupt", "chunk") for _ in range(20)))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sum(hits) == expected


def test_corrupt_is_deterministic_and_detectable():
    plan = FaultPlan(seed=1, corrupt_rate=1.0)
    payload = bytes(range(64))
    c1 = FaultInjector(plan).corrupt(payload, "chunk[0]")
    c2 = FaultInjector(plan).corrupt(payload, "chunk[0]")
    assert c1 == c2
    assert c1 != payload and len(c1) == len(payload)
    assert sum(x != y for x, y in zip(c1, payload)) == 1
    assert FaultInjector(FaultPlan(seed=1)).corrupt(payload, "s") is None
    assert FaultInjector(plan).corrupt(b"", "s") is None


def test_drop_and_kill_scheduling():
    plan = FaultPlan(drop_ranks=(2,), drop_after_chunks=3, kill_after_chunks=5)
    inj = FaultInjector(plan)
    assert not inj.should_drop(1, 99)
    assert not inj.should_drop(2, 2)
    assert inj.should_drop(2, 3)
    assert not inj.should_kill(4)
    assert inj.should_kill(5)
    assert not FaultInjector(FaultPlan()).should_kill(10**6)


def test_faults_metric_increments(tmp_path):
    from repro.trace.metrics import REGISTRY

    counter = REGISTRY.counter("hpdr_faults_injected_total")
    before = counter.total()
    inj = FaultInjector(FaultPlan(seed=0, timeout_rate=1.0))
    assert inj.draw("timeout", "gem.z")
    assert counter.total() == before + 1


def test_expected_faults_model():
    assert WORKSTATION.expected_faults(1, 0.0) == 0.0
    # 1,024 Frontier nodes for 12 h at 2e5 node-hours MTBF.
    assert FRONTIER.expected_faults(1024, 12.0) == pytest.approx(
        1024 * 12.0 / 2.0e5
    )
    with pytest.raises(ValueError):
        FRONTIER.expected_faults(0, 1.0)
    with pytest.raises(ValueError):
        FRONTIER.expected_faults(10**6, 1.0)
    with pytest.raises(ValueError):
        FRONTIER.expected_faults(8, -1.0)


def test_plan_for_system_is_deterministic():
    p1 = plan_for_system(get_system("frontier"), 1024, 12.0, seed=4)
    p2 = plan_for_system(get_system("frontier"), 1024, 12.0, seed=4)
    assert p1 == p2
    assert p1.device_batch_rate > 0
    # A long campaign on many nodes schedules at least one drop-out.
    big = plan_for_system(get_system("frontier"), 9408, 500.0, seed=4)
    assert len(big.drop_ranks) >= 1
    assert all(0 <= r < 9408 for r in big.drop_ranks)
