"""CheckpointManager / CampaignManifest: atomicity, recovery, transport."""

from __future__ import annotations

import json

import pytest

from repro.io.engine import BPReader, BPWriter
from repro.resilience.checkpoint import (
    CampaignManifest,
    CheckpointManager,
    payload_digest,
)
from repro.resilience.errors import CorruptPayloadFault, TransportFault
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.policy import RetryPolicy
from repro.resilience.transport import FaultyTransport, VerifiedWriter


def test_chunk_roundtrip(tmp_path):
    ckpt = CheckpointManager(tmp_path)
    ckpt.write_chunk(3, b"hello chunk")
    assert ckpt.read_chunk(3) == b"hello chunk"


def test_chunk_file_is_self_validating(tmp_path):
    ckpt = CheckpointManager(tmp_path)
    ckpt.write_chunk(0, b"payload-bytes")
    path = ckpt.chunk_path(0)

    blob = path.read_bytes()
    path.write_bytes(blob[:-4])  # torn tail
    with pytest.raises(ValueError, match="bad magic/length"):
        ckpt.read_chunk(0)

    flipped = bytearray(blob)
    flipped[-1] ^= 0xFF  # bit rot in the payload
    path.write_bytes(bytes(flipped))
    with pytest.raises(ValueError, match="CRC mismatch"):
        ckpt.read_chunk(0)

    path.write_bytes(b"xx")  # truncated below header size
    with pytest.raises(ValueError, match="truncated"):
        ckpt.read_chunk(0)


def test_manifest_roundtrip(tmp_path):
    m = CampaignManifest(fingerprint="f" * 64, total_chunks=4)
    m.completed[2] = {"digest": payload_digest(b"x"), "nbytes": 1, "rank": 1}
    m.rank_progress[1] = 1
    m.context_digests[1] = "c" * 64
    ckpt = CheckpointManager(tmp_path)
    ckpt.save(m)
    loaded = ckpt.load()
    assert loaded.fingerprint == m.fingerprint
    assert loaded.completed == m.completed  # int keys survive JSON
    assert loaded.rank_progress == {1: 1}
    assert not loaded.done
    assert CheckpointManager(tmp_path / "empty").load() is None


def test_manifest_version_gate(tmp_path):
    with pytest.raises(ValueError, match="version"):
        CampaignManifest.from_dict({"version": 99, "fingerprint": "x",
                                    "total_chunks": 1})


def test_record_cadence(tmp_path):
    ckpt = CheckpointManager(tmp_path, every=3)
    m = CampaignManifest(fingerprint="f", total_chunks=6)
    for i in range(2):
        ckpt.record(m, i, b"p%d" % i, rank=0)
    assert not ckpt.manifest_path.exists()  # below cadence: chunks only
    ckpt.record(m, 2, b"p2", rank=0)
    assert ckpt.load().completed.keys() == {0, 1, 2}


def test_recover_rebuilds_from_chunk_files(tmp_path):
    ckpt = CheckpointManager(tmp_path, every=100)  # manifest never saved
    m = CampaignManifest(fingerprint="fp", total_chunks=4)
    for i in range(3):
        ckpt.record(m, i, b"chunk%d" % i, rank=i % 2)

    fresh = CheckpointManager(tmp_path).recover("fp", 4)
    assert fresh.completed.keys() == {0, 1, 2}
    assert fresh.completed[1]["digest"] == payload_digest(b"chunk1")
    assert not fresh.done


def test_recover_discards_torn_chunks_and_stale_manifest(tmp_path):
    ckpt = CheckpointManager(tmp_path, every=1)
    m = CampaignManifest(fingerprint="fp", total_chunks=4)
    for i in range(3):
        ckpt.record(m, i, b"chunk%d" % i, rank=0)
    # Tear chunk 1 on disk after the manifest recorded it as complete.
    path = ckpt.chunk_path(1)
    path.write_bytes(path.read_bytes()[:-2])
    fresh = CheckpointManager(tmp_path).recover("fp", 4)
    assert fresh.completed.keys() == {0, 2}  # disk beats manifest

    # A torn manifest falls back to the chunk scan entirely.
    ckpt.manifest_path.write_text('{"version": 1, "fingerpr')
    fresh2 = CheckpointManager(tmp_path).recover("fp", 4)
    assert fresh2.completed.keys() == {0, 2}


def test_recover_rejects_fingerprint_mismatch(tmp_path):
    ckpt = CheckpointManager(tmp_path)
    ckpt.save(CampaignManifest(fingerprint="aaa", total_chunks=2))
    with pytest.raises(ValueError, match="fingerprint mismatch"):
        ckpt.recover("bbb", 2)


def test_atomic_manifest_leaves_no_tmp_files(tmp_path):
    ckpt = CheckpointManager(tmp_path)
    for i in range(5):
        ckpt.save(CampaignManifest(fingerprint="f", total_chunks=i + 1))
    leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
    assert leftovers == []
    assert json.loads(ckpt.manifest_path.read_text())["total_chunks"] == 5


# -- transport-level corruption + verified writes -------------------------

def test_faulty_transport_corrupts_silently(tmp_path):
    inj = FaultInjector(FaultPlan(seed=1, corrupt_rate=1.0))
    writer = BPWriter(tmp_path / "bp")
    ft = FaultyTransport(writer, inj)
    payload = bytes(range(100))
    ft.put_reduced("v", payload, (100,), "uint8", "none")
    import zlib

    assert ft.stored_crc("v") != zlib.crc32(payload)  # flipped in transit
    assert inj.count("corrupt") == 1


def test_faulty_transport_raises_transport_faults(tmp_path):
    inj = FaultInjector(FaultPlan(seed=0, transport_rate=1.0))
    ft = FaultyTransport(BPWriter(tmp_path / "bp"), inj)
    with pytest.raises(TransportFault):
        ft.put_reduced("v", b"x", (1,), "uint8", "none")


def test_verified_writer_retries_corruption_to_success(tmp_path):
    # corrupt_rate 0.5: some attempts corrupt, the retry loop must land
    # a clean write and the stored CRC must match the true payload.
    inj = FaultInjector(FaultPlan(seed=7, corrupt_rate=0.5))
    writer = BPWriter(tmp_path / "bp")
    vw = VerifiedWriter(
        FaultyTransport(writer, inj),
        policy=RetryPolicy(max_attempts=10),
        sleep=lambda s: None,
    )
    import numpy as np
    import zlib

    payload = np.arange(256, dtype=np.uint8).tobytes()
    for i in range(6):
        vw.put_reduced(f"v{i}", payload, (256,), "uint8", "none")
        assert writer.stored_crc(f"v{i}") == zlib.crc32(payload)
    vw.close()
    # The final BP directory holds only verified payloads.
    reader = BPReader(tmp_path / "bp")
    assert len(reader.variables()) == 6
