"""Shared fixtures and the flaky-test quarantine for the HPDR suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from _pytest.runner import runtestprotocol

from repro.adapters import get_adapter

ADAPTER_FAMILIES = ["serial", "openmp", "cuda", "hip", "sycl"]

# -- flaky quarantine -------------------------------------------------------
# Tests marked ``timing_sensitive`` depend on scheduler or wall-clock
# behaviour (soak budgets, health-probe intervals, subprocess spawn).
# On a loaded single-core CI runner they can fail spuriously; the
# quarantine grants exactly ONE retry and reports every rerun so a test
# that needs its retry is visible, not silently green.

#: nodeids that failed once and were rerun (pass or fail).
_RERUNS: list[str] = []


def pytest_runtest_protocol(item, nextitem):
    if item.get_closest_marker("timing_sensitive") is None:
        return None
    item.ihook.pytest_runtest_logstart(
        nodeid=item.nodeid, location=item.location
    )
    reports = runtestprotocol(item, nextitem=nextitem, log=False)
    if any(r.failed for r in reports):
        _RERUNS.append(item.nodeid)
        item._initrequest()  # fresh fixture state for the clean rerun
        reports = runtestprotocol(item, nextitem=nextitem, log=False)
    for report in reports:
        item.ihook.pytest_runtest_logreport(report=report)
    item.ihook.pytest_runtest_logfinish(
        nodeid=item.nodeid, location=item.location
    )
    return True


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RERUNS:
        return
    terminalreporter.section("flaky quarantine")
    terminalreporter.line(
        f"{len(_RERUNS)} timing_sensitive test(s) failed once and were "
        "retried:"
    )
    for nodeid in _RERUNS:
        terminalreporter.line(f"  RERUN {nodeid}")
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as fh:
            fh.write(
                f"\n### Flaky quarantine: {len(_RERUNS)} rerun(s)\n\n"
            )
            for nodeid in _RERUNS:
                fh.write(f"- `{nodeid}`\n")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def smooth_3d():
    """Small smooth 3-D FP32 field (compressible)."""
    axes = [np.linspace(0, 3 * np.pi, 24)] * 3
    x, y, z = np.meshgrid(*axes, indexing="ij")
    return (np.sin(x) * np.cos(y) * np.sin(z) + 0.05 * np.sin(7 * x)).astype(
        np.float32
    )


@pytest.fixture
def smooth_2d():
    axes = [np.linspace(0, 2 * np.pi, 40), np.linspace(0, 2 * np.pi, 56)]
    x, y = np.meshgrid(*axes, indexing="ij")
    return (np.cos(2 * x) + np.sin(3 * y)).astype(np.float64)


@pytest.fixture(params=ADAPTER_FAMILIES)
def any_adapter(request):
    """Parametrized over every adapter family."""
    return get_adapter(request.param)


@pytest.fixture
def serial_adapter():
    return get_adapter("serial")


@pytest.fixture
def strict_serial_adapter():
    """Per-group oracle mode (functor purity checking)."""
    return get_adapter("serial", strict=True)


@pytest.fixture(params=["serial", "openmp"])
def sanitizing_adapter(request):
    """HPDR-San shadow-checked adapter (tsan mode) over both CPU backends."""
    from repro.check import SanitizingAdapter

    kwargs = {"num_threads": 2} if request.param == "openmp" else {}
    return SanitizingAdapter(get_adapter(request.param, **kwargs))
