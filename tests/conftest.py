"""Shared fixtures for the HPDR test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import get_adapter

ADAPTER_FAMILIES = ["serial", "openmp", "cuda", "hip", "sycl"]


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def smooth_3d():
    """Small smooth 3-D FP32 field (compressible)."""
    axes = [np.linspace(0, 3 * np.pi, 24)] * 3
    x, y, z = np.meshgrid(*axes, indexing="ij")
    return (np.sin(x) * np.cos(y) * np.sin(z) + 0.05 * np.sin(7 * x)).astype(
        np.float32
    )


@pytest.fixture
def smooth_2d():
    axes = [np.linspace(0, 2 * np.pi, 40), np.linspace(0, 2 * np.pi, 56)]
    x, y = np.meshgrid(*axes, indexing="ij")
    return (np.cos(2 * x) + np.sin(3 * y)).astype(np.float64)


@pytest.fixture(params=ADAPTER_FAMILIES)
def any_adapter(request):
    """Parametrized over every adapter family."""
    return get_adapter(request.param)


@pytest.fixture
def serial_adapter():
    return get_adapter("serial")


@pytest.fixture
def strict_serial_adapter():
    """Per-group oracle mode (functor purity checking)."""
    return get_adapter("serial", strict=True)


@pytest.fixture(params=["serial", "openmp"])
def sanitizing_adapter(request):
    """HPDR-San shadow-checked adapter (tsan mode) over both CPU backends."""
    from repro.check import SanitizingAdapter

    kwargs = {"num_threads": 2} if request.param == "openmp" else {}
    return SanitizingAdapter(get_adapter(request.param, **kwargs))
