"""BP-store form: byte-range reads through the engine's span index."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Config, ProgressiveMGARD, ProgressiveRetriever
from repro.io.engine import BPReader
from repro.progressive import archive_bytes, is_store, write_store
from repro.progressive.store import read_store_index


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(9)
    data = (np.linspace(0, 2, 16 * 20).reshape(16, 20)
            + rng.normal(0, 0.1, (16, 20))).astype(np.float32)
    index, segments = ProgressiveMGARD(Config(error_bound=1e-3)).refactor(data)
    return data, index, segments


@pytest.mark.parametrize("aggregators", [1, 3])
def test_store_roundtrip(tmp_path, stream, aggregators):
    data, index, segments = stream
    path = tmp_path / "field.bp"
    write_store(path, index, segments, num_aggregators=aggregators)
    assert is_store(path)
    full, report = ProgressiveRetriever().retrieve(path)
    assert report.source == "store"
    blob_full, _ = ProgressiveRetriever().retrieve(archive_bytes(index, segments))
    assert full.tobytes() == blob_full.tobytes()


def test_store_index_spans_pin_every_segment(tmp_path, stream):
    _data, index, segments = stream
    path = tmp_path / "field.bp"
    write_store(path, index, segments, num_aggregators=2)
    meta = json.loads((path / "index.json").read_text())
    for rec in index.records:
        entry = meta["variables"][f"seg.{rec.seq:05d}@{rec.seq}"]
        assert entry["span"][1] == rec.nbytes


def test_store_bounded_read_counts_ranged_bytes(tmp_path, stream):
    """A bounded request reads only the planned segments' ranges."""
    import repro.trace as trace
    from repro.trace.metrics import REGISTRY

    data, index, segments = stream
    path = tmp_path / "field.bp"
    write_store(path, index, segments, num_aggregators=2)
    eps = index.frontier()[0].error_bound * 1.0001
    trace.enable(clear=True)
    try:
        coarse, report = ProgressiveRetriever().retrieve(path, eps=eps)
    finally:
        counter = REGISTRY.counter(
            "hpdr_io_range_read_bytes_total",
            "bytes fetched by BPReader ranged payload reads",
        )
        ranged = counter.total()
        trace.disable()
    assert report.bytes_fetched < report.total_bytes
    # Ranged reads cover the index payload + exactly the planned bytes.
    assert ranged >= report.bytes_fetched
    assert ranged < report.total_bytes + len(
        json.dumps(index.to_json()).encode()
    )
    err = float(np.max(np.abs(coarse.astype(np.float64)
                              - data.astype(np.float64))))
    assert err <= eps


def test_store_matches_blob_for_bounded_requests(tmp_path, stream):
    from repro.progressive import archive_bytes

    _data, index, segments = stream
    path = tmp_path / "field.bp"
    write_store(path, index, segments)
    blob = archive_bytes(index, segments)
    for kwargs in ({"eps": index.frontier()[0].error_bound * 1.0001},
                   {"resolution": 2}, {}):
        via_store, _ = ProgressiveRetriever().retrieve(path, **kwargs)
        via_blob, _ = ProgressiveRetriever().retrieve(blob, **kwargs)
        assert via_store.tobytes() == via_blob.tobytes()


def test_store_index_survives_reader_roundtrip(tmp_path, stream):
    _data, index, segments = stream
    path = tmp_path / "field.bp"
    write_store(path, index, segments)
    back = read_store_index(BPReader(path))
    assert back == index


def test_write_store_validates_lengths(tmp_path, stream):
    _data, index, segments = stream
    with pytest.raises(ValueError):
        write_store(tmp_path / "bad.bp", index, segments[:-1])
