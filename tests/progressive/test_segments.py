"""Segment model: exact plane arithmetic + self-describing payloads."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HuffmanX
from repro.progressive import merge_planes, split_planes
from repro.progressive.errors import MalformedIndexError, TruncatedSegmentError
from repro.progressive.segments import (
    decode_segment,
    encode_segment,
    plane_shifts,
    SegmentRecord,
)


# ----------------------------------------------------------------------
# plane_shifts
# ----------------------------------------------------------------------
def test_shifts_descend_to_zero():
    for max_abs in (0, 1, 7, 255, 1 << 20, (1 << 62) - 1):
        for bits, planes in ((4, 3), (8, 3), (1, 8), (16, 2)):
            shifts = plane_shifts(max_abs, bits, planes)
            assert shifts[-1] == 0
            assert shifts == sorted(shifts, reverse=True)
            assert len(shifts) <= planes


def test_shifts_cover_all_bits():
    shifts = plane_shifts((1 << 24) - 1, 8, 8)
    assert shifts == [16, 8, 0]


# ----------------------------------------------------------------------
# split/merge round-trip
# ----------------------------------------------------------------------
def test_split_merge_exact_roundtrip():
    rng = np.random.default_rng(0)
    q = rng.integers(-(1 << 40), 1 << 40, size=500, dtype=np.int64)
    planes = split_planes(q, 8, 3)
    assert np.array_equal(merge_planes(planes), q)


def test_prefix_sums_refine():
    """Every plane prefix is a coarser rounding of the exact codes."""
    rng = np.random.default_rng(1)
    q = rng.integers(-100000, 100000, size=300, dtype=np.int64)
    planes = split_planes(q, 4, 4)
    prev = np.abs(q).astype(np.float64).max() + 1
    for k in range(1, len(planes) + 1):
        err = int(np.abs(merge_planes(planes[:k]) - q).max())
        assert err <= prev
        prev = err
    assert err == 0


def test_zero_codes_single_plane():
    planes = split_planes(np.zeros(10, dtype=np.int64), 8, 3)
    assert len(planes) == 1 and planes[0][0] == 0
    assert np.array_equal(merge_planes(planes), np.zeros(10, dtype=np.int64))


def test_merge_requires_planes():
    with pytest.raises(ValueError):
        merge_planes([])


@given(
    codes=st.lists(st.integers(-(1 << 55), 1 << 55), min_size=1, max_size=64),
    bits=st.integers(1, 16),
    nplanes=st.integers(1, 6),
)
@settings(max_examples=120, deadline=None)
def test_split_merge_roundtrip_property(codes, bits, nplanes):
    q = np.array(codes, dtype=np.int64)
    planes = split_planes(q, bits, nplanes)
    assert len(planes) <= nplanes
    assert planes[-1][0] == 0
    assert np.array_equal(merge_planes(planes), q)


# ----------------------------------------------------------------------
# segment encode/decode
# ----------------------------------------------------------------------
def test_segment_roundtrip():
    rng = np.random.default_rng(2)
    huffman = HuffmanX()
    plane = rng.integers(-5000, 5000, size=400, dtype=np.int64)
    blob = encode_segment(3, 8, plane, huffman, 4096)
    group, shift, back = decode_segment(blob, huffman)
    assert (group, shift) == (3, 8)
    assert np.array_equal(back, plane)


def test_segment_truncation_raises_typed_error():
    huffman = HuffmanX()
    blob = encode_segment(0, 0, np.arange(64, dtype=np.int64), huffman, 4096)
    for cut in (0, 5, len(blob) // 2, len(blob) - 1):
        with pytest.raises(TruncatedSegmentError):
            decode_segment(blob[:cut], huffman)


def test_segment_bad_magic_raises():
    huffman = HuffmanX()
    blob = encode_segment(0, 0, np.arange(8, dtype=np.int64), huffman, 4096)
    with pytest.raises(MalformedIndexError):
        decode_segment(b"XXXX" + blob[4:], huffman)


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
def test_record_json_roundtrip():
    rec = SegmentRecord(seq=2, group=1, shift=8, offset=100, nbytes=40,
                        crc=123456, error_bound=0.25)
    assert SegmentRecord.from_json(rec.to_json()) == rec


def test_record_json_missing_field():
    with pytest.raises(MalformedIndexError):
        SegmentRecord.from_json({"seq": 0})


def test_record_crc_check():
    import zlib

    blob = b"payload-bytes"
    rec = SegmentRecord(seq=0, group=0, shift=0, offset=0, nbytes=len(blob),
                        crc=zlib.crc32(blob), error_bound=0.0)
    rec.check_crc(blob)  # exact bytes pass
    from repro.progressive.errors import SegmentCRCError

    with pytest.raises(TruncatedSegmentError):
        rec.check_crc(blob[:-1])
    with pytest.raises(SegmentCRCError):
        rec.check_crc(b"payload-bytez")
