"""Property tests: prefix planning and index (de)serialization laws."""

from __future__ import annotations

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.progressive import BoundUnreachableError, SegmentIndex, SegmentRecord


def _index(bounds: list[float], groups: list[int] | None = None) -> SegmentIndex:
    """A synthetic index with the given per-record bounds."""
    n = len(bounds)
    groups = groups if groups is not None else [0] * n
    ngroups = max(groups) + 1
    records = []
    offset = 0
    for k, (b, g) in enumerate(zip(bounds, groups)):
        nbytes = 16 + k
        records.append(SegmentRecord(
            seq=k, group=g, shift=0, offset=offset, nbytes=nbytes,
            crc=zlib.crc32(bytes([k])), error_bound=b,
        ))
        offset += nbytes
    return SegmentIndex(
        dtype="<f4", shape=(4, 4), ngroups=ngroups, abs_eb=max(bounds),
        kappa=1.0, s=0.0, dict_size=4096, bins=[1.0] * ngroups,
        records=records,
    )


bounds_lists = st.lists(
    st.floats(1e-9, 1e3, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=20,
)


@given(bounds=bounds_lists, frac=st.floats(0.0, 1.0))
@settings(max_examples=150, deadline=None)
def test_plan_returns_minimal_satisfying_prefix(bounds, frac):
    index = _index(bounds)
    lo, hi = min(bounds), max(bounds)
    eps = lo + frac * (hi - lo) or lo
    plan = index.plan(eps=eps)
    # The prefix satisfies the bound...
    assert plan[-1].error_bound <= eps
    # ...and is minimal: no shorter prefix does.
    assert all(r.error_bound > eps for r in plan[:-1])
    # Records are an exact stream prefix.
    assert [r.seq for r in plan] == list(range(len(plan)))


@given(bounds=bounds_lists, f1=st.floats(0.0, 1.0), f2=st.floats(0.0, 1.0))
@settings(max_examples=150, deadline=None)
def test_plan_monotone_in_eps(bounds, f1, f2):
    """Tightening eps never shrinks the prefix nor worsens the error."""
    index = _index(bounds)
    lo, hi = min(bounds), max(bounds)
    e1 = lo + f1 * (hi - lo) or lo
    e2 = lo + f2 * (hi - lo) or lo
    tight, loose = min(e1, e2), max(e1, e2)
    p_tight = index.plan(eps=tight)
    p_loose = index.plan(eps=loose)
    assert len(p_tight) >= len(p_loose)
    assert p_tight[-1].error_bound <= p_loose[-1].error_bound


@given(bounds=bounds_lists)
@settings(max_examples=100, deadline=None)
def test_plan_endpoints_lie_on_frontier(bounds):
    index = _index(bounds)
    frontier = {r.seq for r in index.frontier()}
    for target in sorted(set(bounds)):
        plan = index.plan(eps=target)
        assert plan[-1].seq in frontier


@given(bounds=bounds_lists)
@settings(max_examples=100, deadline=None)
def test_frontier_strictly_decreases(bounds):
    frontier = [r.error_bound for r in _index(bounds).frontier()]
    assert all(b < a for a, b in zip(frontier, frontier[1:]))
    assert frontier[0] == bounds[0]
    assert frontier[-1] == min(bounds)


@given(
    ngroups=st.integers(1, 6),
    planes=st.integers(1, 4),
    level=st.integers(1, 6),
)
@settings(max_examples=100, deadline=None)
def test_plan_resolution_selects_group_prefix(ngroups, planes, level):
    groups = [g for g in range(ngroups) for _ in range(planes)]
    index = _index([1.0 / (k + 1) for k in range(len(groups))], groups)
    if level > ngroups:
        with pytest.raises(ValueError):
            index.plan(resolution=level)
        return
    plan = index.plan(resolution=level)
    assert len(plan) == level * planes
    assert {r.group for r in plan} == set(range(level))


@given(bounds=bounds_lists)
@settings(max_examples=100, deadline=None)
def test_plan_unreachable_eps_raises(bounds):
    index = _index(bounds)
    eps = min(bounds) / 2
    if eps <= 0:
        return
    with pytest.raises(BoundUnreachableError) as exc:
        index.plan(eps=eps)
    assert exc.value.requested == eps
    assert exc.value.floor == index.floor
    # Non-strict mode degrades to the full stream instead.
    assert index.plan(eps=eps, strict=False) == index.records


@given(bounds=bounds_lists)
@settings(max_examples=60, deadline=None)
def test_index_json_roundtrip(bounds):
    index = _index(bounds)
    back = SegmentIndex.from_json(index.to_json())
    assert back == index


def test_plan_argument_validation():
    index = _index([1.0, 0.5])
    with pytest.raises(ValueError):
        index.plan(eps=0.6, resolution=1)
    with pytest.raises(ValueError):
        index.plan(eps=0.0)
    with pytest.raises(ValueError):
        index.plan(eps=-1.0)
    with pytest.raises(ValueError):
        index.plan(resolution=0)
