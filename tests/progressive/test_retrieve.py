"""Retrieval engine: byte identity, bounded fetches, the full matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Config, MGARDX, ProgressiveMGARD, ProgressiveRetriever
from repro.progressive import archive_bytes, is_archive, read_archive_prefix
from repro.testing import check_progressive, default_progressive_datasets


def _stream(data, **kwargs):
    codec = ProgressiveMGARD(Config(error_bound=1e-3), **kwargs)
    index, segments = codec.refactor(data)
    return codec, index, segments


def test_conformance_matrix():
    """The acceptance suite across every dtype/shape class."""
    check_progressive()


def test_full_prefix_byte_identity_explicit():
    data = default_progressive_datasets()[0][1]
    cfg = Config(error_bound=1e-3)
    _codec, index, segments = _stream(data)
    oneshot = MGARDX(cfg)
    want = oneshot.decompress(oneshot.compress(data))
    got, report = ProgressiveRetriever().retrieve(archive_bytes(index, segments))
    assert got.dtype == want.dtype and got.shape == want.shape
    assert got.tobytes() == want.tobytes()
    assert report.segments_fetched == len(index.records)


def test_eps_fetches_fewer_bytes():
    data = default_progressive_datasets()[2][1]
    _codec, index, segments = _stream(data)
    blob = archive_bytes(index, segments)
    frontier = index.frontier()
    assert len(frontier) >= 2
    eps = frontier[0].error_bound * 1.0001
    coarse, report = ProgressiveRetriever().retrieve(blob, eps=eps)
    err = float(np.max(np.abs(coarse.astype(np.float64)
                              - data.astype(np.float64))))
    assert err <= eps
    assert report.bytes_fetched < report.total_bytes
    assert report.fraction_fetched < 1.0


def test_file_retrieval_reads_prefix_only(tmp_path):
    data = default_progressive_datasets()[3][1]
    _codec, index, segments = _stream(data)
    blob = archive_bytes(index, segments)
    assert is_archive(blob)
    path = tmp_path / "field.hpgx"
    path.write_bytes(blob)
    eps = index.frontier()[0].error_bound * 1.0001
    idx, plan, fetched = read_archive_prefix(path, eps=eps)
    assert len(plan) < len(idx.records)
    assert sum(len(s) for s in fetched) == sum(r.nbytes for r in plan)
    via_file, report = ProgressiveRetriever().retrieve(path, eps=eps)
    via_blob, _ = ProgressiveRetriever().retrieve(blob, eps=eps)
    assert report.source == "file"
    assert via_file.tobytes() == via_blob.tobytes()


def test_resolution_prefix_is_group_complete():
    data = default_progressive_datasets()[1][1]
    _codec, index, segments = _stream(data)
    blob = archive_bytes(index, segments)
    for level in (1, index.ngroups // 2 or 1, index.ngroups):
        plan = index.plan(resolution=level)
        assert {r.group for r in plan} == set(range(level))
        arr, report = ProgressiveRetriever().retrieve(blob, resolution=level)
        assert arr.shape == data.shape
        assert report.segments_fetched == len(plan)


def test_strict_false_degrades_to_full():
    data = default_progressive_datasets()[4][1]
    _codec, index, segments = _stream(data)
    blob = archive_bytes(index, segments)
    tiny = index.floor / 10 if index.floor else 1e-300
    arr, report = ProgressiveRetriever().retrieve(blob, eps=tiny, strict=False)
    assert report.bytes_fetched == report.total_bytes
    full, _ = ProgressiveRetriever().retrieve(blob)
    assert arr.tobytes() == full.tobytes()


def test_refactor_rejects_bad_inputs():
    codec = ProgressiveMGARD()
    with pytest.raises(TypeError):
        codec.refactor(np.arange(10, dtype=np.int32))
    with pytest.raises(ValueError):
        codec.refactor(np.zeros((2, 2, 2, 2, 2), dtype=np.float32))


def test_plane_granularity_round_trips():
    """Different bitplane schedules change segmentation, not the answer."""
    data = default_progressive_datasets()[0][1]
    cfg = Config(error_bound=1e-3)
    oneshot = MGARDX(cfg)
    want = oneshot.decompress(oneshot.compress(data)).tobytes()
    for kwargs in ({"bits_per_plane": 4, "max_planes": 5},
                   {"bits_per_plane": 16, "max_planes": 1}):
        _codec, index, segments = _stream(data, **kwargs)
        got, _ = ProgressiveRetriever().retrieve(archive_bytes(index, segments))
        assert got.tobytes() == want


def test_bytes_fetched_counter_always_on():
    from repro.trace.metrics import REGISTRY

    data = default_progressive_datasets()[3][1]
    _codec, index, segments = _stream(data)
    counter = REGISTRY.counter(
        "hpdr_progressive_bytes_fetched_total",
        "segment bytes fetched by bounded retrievals",
    )
    before = counter.value(source="blob")
    _, report = ProgressiveRetriever().retrieve(archive_bytes(index, segments))
    assert counter.value(source="blob") == before + report.bytes_fetched
