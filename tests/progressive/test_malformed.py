"""Malformed inputs: typed rejection, no partial outputs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Config, ProgressiveMGARD, ProgressiveRetriever
from repro.progressive import (
    ARCHIVE_MAGIC,
    archive_bytes,
    make_retrieve_request,
    parse_archive_index,
    parse_retrieve_request,
    MalformedIndexError,
    SegmentCRCError,
    SegmentIndex,
    TruncatedSegmentError,
)


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(5)
    data = rng.normal(size=(14, 18)).astype(np.float32)
    index, segments = ProgressiveMGARD(Config(error_bound=1e-3)).refactor(data)
    return data, index, segments


def test_truncated_archive_header(stream):
    _data, index, segments = stream
    blob = archive_bytes(index, segments)
    for cut in (0, 3, 8):
        with pytest.raises(TruncatedSegmentError):
            parse_archive_index(blob[:cut])


def test_bad_archive_magic(stream):
    _data, index, segments = stream
    blob = archive_bytes(index, segments)
    with pytest.raises(MalformedIndexError):
        parse_archive_index(b"NOPE" + blob[4:])


def test_truncated_index_json(stream):
    _data, index, segments = stream
    blob = archive_bytes(index, segments)
    header_len = blob.index(b"{")
    with pytest.raises(TruncatedSegmentError):
        parse_archive_index(blob[: header_len + 10])


def test_truncated_segment_region(stream):
    """An index that promises more bytes than the blob holds."""
    _data, index, segments = stream
    blob = archive_bytes(index, segments)
    with pytest.raises(TruncatedSegmentError):
        ProgressiveRetriever().retrieve(blob[:-5])


def test_crc_flip_detected(stream):
    _data, index, segments = stream
    blob = bytearray(archive_bytes(index, segments))
    blob[-3] ^= 0xFF  # flip a bit inside the last segment's bytes
    with pytest.raises(SegmentCRCError):
        ProgressiveRetriever().retrieve(bytes(blob))


def test_index_wrong_format_or_version(stream):
    _data, index, _segments = stream
    obj = index.to_json()
    bad = dict(obj, format="something-else")
    with pytest.raises(MalformedIndexError):
        SegmentIndex.from_json(bad)
    bad = dict(obj, version=99)
    with pytest.raises(MalformedIndexError):
        SegmentIndex.from_json(bad)
    with pytest.raises(MalformedIndexError):
        SegmentIndex.from_json([1, 2, 3])


def test_index_structural_violations(stream):
    _data, index, _segments = stream
    obj = index.to_json()

    gap = json.loads(json.dumps(obj))
    gap["segments"][1]["offset"] += 4  # non-contiguous byte ranges
    with pytest.raises(MalformedIndexError):
        SegmentIndex.from_json(gap)

    regress = json.loads(json.dumps(obj))
    regress["segments"][-1]["group"] = 0  # breaks group-major order
    with pytest.raises(MalformedIndexError):
        SegmentIndex.from_json(regress)

    bins = json.loads(json.dumps(obj))
    bins["bins"] = bins["bins"][:-1]  # bins/groups mismatch
    with pytest.raises(MalformedIndexError):
        SegmentIndex.from_json(bins)


def test_retrieve_request_roundtrip_and_rejection(stream):
    _data, index, segments = stream
    blob = archive_bytes(index, segments)
    eps, resolution, back = parse_retrieve_request(
        make_retrieve_request(blob, eps=0.5)
    )
    assert (eps, resolution) == (0.5, None)
    assert back == blob
    eps, resolution, back = parse_retrieve_request(
        make_retrieve_request(blob, resolution=2)
    )
    assert (eps, resolution) == (None, 2)
    with pytest.raises(ValueError):
        make_retrieve_request(blob, eps=0.5, resolution=2)
    with pytest.raises(MalformedIndexError):
        parse_retrieve_request(b"JUNK" + blob)
    with pytest.raises(MalformedIndexError):
        parse_retrieve_request(b"HP")


def test_failed_retrieve_writes_nothing(tmp_path, stream):
    """The CLI must not leave a partial .npy behind a failed retrieval."""
    from repro.cli import main

    _data, index, segments = stream
    blob = archive_bytes(index, segments)
    src = tmp_path / "field.hpgx"
    src.write_bytes(blob[:-5])  # truncated mid-segment
    out = tmp_path / "out.npy"
    with pytest.raises(TruncatedSegmentError):
        main(["retrieve", str(src), str(out)])
    assert not out.exists()

    # An unreachable bound exits with a message, also without output.
    src.write_bytes(blob)
    floor = index.floor
    with pytest.raises(SystemExit):
        main(["retrieve", str(src), str(out),
              "--error-bound", str(floor / 10 if floor else 1e-300)])
    assert not out.exists()


def test_store_missing_segment_rejected(tmp_path, stream):
    from repro.io.engine import BPReader
    from repro.progressive import write_store
    from repro.progressive.store import read_store_index, read_store_segments

    _data, index, segments = stream
    write_store(tmp_path / "s.bp", index, segments)
    reader = BPReader(tmp_path / "s.bp")
    got = read_store_index(reader)
    # Drop one planned segment from the store's index.json view.
    victim = got.records[1]
    idx_path = tmp_path / "s.bp" / "index.json"
    meta = json.loads(idx_path.read_text())
    del meta["variables"][f"seg.{victim.seq:05d}@{victim.seq}"]
    idx_path.write_text(json.dumps(meta))
    reader = BPReader(tmp_path / "s.bp")
    with pytest.raises(MalformedIndexError):
        read_store_segments(reader, got.records[:3])
