"""CLI: ``repro refactor --progressive`` and bounded ``repro retrieve``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def field_file(tmp_path):
    rng = np.random.default_rng(4)
    data = (np.linspace(0, 1, 18 * 22).reshape(18, 22)
            + rng.normal(0, 0.05, (18, 22))).astype(np.float32)
    path = tmp_path / "field.npy"
    np.save(path, data)
    return path, data


def test_progressive_blob_roundtrip(field_file, tmp_path, capsys):
    src, data = field_file
    hpgx = tmp_path / "field.hpgx"
    out = tmp_path / "full.npy"
    assert main(["refactor", str(src), str(hpgx), "--progressive",
                 "--eb", "1e-3"]) == 0
    report = capsys.readouterr().out
    assert "retrievable frontier" in report
    assert hpgx.read_bytes()[:4] == b"HPGX"

    from repro import Config, MGARDX

    oneshot = MGARDX(Config(error_bound=1e-3))
    want = oneshot.decompress(oneshot.compress(data))
    assert main(["retrieve", str(hpgx), str(out)]) == 0
    assert np.load(out).tobytes() == want.tobytes()


def test_progressive_bounded_retrieve(field_file, tmp_path, capsys):
    src, data = field_file
    hpgx = tmp_path / "field.hpgx"
    coarse = tmp_path / "coarse.npy"
    main(["refactor", str(src), str(hpgx), "--progressive", "--eb", "1e-3"])
    capsys.readouterr()
    assert main(["retrieve", str(hpgx), str(coarse),
                 "--error-bound", "0.05"]) == 0
    report = capsys.readouterr().out
    assert "achieved error" in report
    restored = np.load(coarse)
    assert np.max(np.abs(restored.astype(np.float64)
                         - data.astype(np.float64))) <= 0.05


def test_progressive_bp_store_roundtrip(field_file, tmp_path):
    src, data = field_file
    store = tmp_path / "field.bp"
    out = tmp_path / "level.npy"
    assert main(["refactor", str(src), str(store), "--progressive",
                 "--store", "bp", "--aggregators", "2"]) == 0
    assert (store / "index.json").exists()
    assert main(["retrieve", str(store), str(out), "--resolution", "2"]) == 0
    assert np.load(out).shape == data.shape


def test_retrieve_flag_validation(field_file, tmp_path):
    src, _data = field_file
    hpgx = tmp_path / "field.hpgx"
    mgrf = tmp_path / "field.mgrf"
    out = tmp_path / "out.npy"
    main(["refactor", str(src), str(hpgx), "--progressive"])
    main(["refactor", str(src), str(mgrf)])
    # Progressive source rejects the legacy --levels flag.
    with pytest.raises(SystemExit):
        main(["retrieve", str(hpgx), str(out), "--levels", "2"])
    # Legacy source rejects the progressive flags.
    with pytest.raises(SystemExit):
        main(["retrieve", str(mgrf), str(out), "--error-bound", "1e-2"])
    with pytest.raises(SystemExit):
        main(["retrieve", str(mgrf), str(out), "--resolution", "1"])
    assert not out.exists()


def test_unreachable_bound_exits_with_guidance(field_file, tmp_path, capsys):
    src, _data = field_file
    hpgx = tmp_path / "field.hpgx"
    out = tmp_path / "out.npy"
    main(["refactor", str(src), str(hpgx), "--progressive"])
    with pytest.raises(SystemExit) as exc:
        main(["retrieve", str(hpgx), str(out), "--error-bound", "1e-300"])
    assert "retry with eps >=" in str(exc.value)
    assert not out.exists()


def test_legacy_refactor_retrieve_still_works(field_file, tmp_path, capsys):
    src, data = field_file
    mgrf = tmp_path / "field.mgrf"
    out = tmp_path / "out.npy"
    assert main(["refactor", str(src), str(mgrf)]) == 0
    assert main(["retrieve", str(mgrf), str(out), "--levels", "2"]) == 0
    assert np.load(out).shape == data.shape
