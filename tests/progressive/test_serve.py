"""The ``retrieve`` op through the service, the cluster, and TCP."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import Config, ProgressiveMGARD, ProgressiveRetriever
from repro.cluster import ClusterConfig, ClusterService
from repro.progressive import archive_bytes
from repro.serve import (
    BatchLimits,
    BlastClient,
    CodecSpec,
    ReductionService,
    RemoteRequestError,
    ServiceConfig,
    serve_tcp,
)
from repro.testing import check_service


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(3)
    data = rng.normal(size=(12, 16)).astype(np.float32)
    index, segments = ProgressiveMGARD(Config(error_bound=1e-3)).refactor(data)
    archive = archive_bytes(index, segments)
    eps = float(index.frontier()[0].error_bound) * 1.0001
    oracle = ProgressiveRetriever()
    wants = {
        "full": oracle.retrieve(archive)[0],
        "eps": oracle.retrieve(archive, eps=eps)[0],
        "resolution": oracle.retrieve(archive, resolution=2)[0],
    }
    return archive, eps, wants


def test_service_conformance_includes_retrieve():
    check_service(codecs=("mgard-x",), batch_sizes=(1, 5))


def test_cluster_conformance_includes_retrieve():
    def factory(cfg):
        return ClusterService(
            ClusterConfig(shards=2, backend="task", service=cfg)
        )

    check_service(codecs=("mgard-x",), batch_sizes=(1, 5),
                  service_factory=factory)


def test_service_retrieve_matches_direct(case):
    archive, eps, wants = case
    spec = CodecSpec("mgard-x")

    async def run():
        cfg = ServiceConfig(limits=BatchLimits(max_batch=4,
                                               max_latency_s=0.002))
        async with ReductionService(cfg) as svc:
            return {
                "full": await svc.retrieve(spec, archive),
                "eps": await svc.retrieve(spec, archive, eps=eps),
                "resolution": await svc.retrieve(spec, archive, resolution=2),
            }

    got = asyncio.run(run())
    for key, want in wants.items():
        assert np.asarray(got[key]).tobytes() == want.tobytes(), key


def test_retrieve_batches_with_same_size_class(case):
    """Concurrent retrieves batch like decompress (blob size class)."""
    archive, eps, wants = case
    spec = CodecSpec("mgard-x")

    async def run():
        cfg = ServiceConfig(limits=BatchLimits(max_batch=8,
                                               max_latency_s=0.02))
        async with ReductionService(cfg) as svc:
            outs = await asyncio.gather(
                *(svc.retrieve(spec, archive, eps=eps) for _ in range(6))
            )
            return outs, svc.stats.snapshot()

    outs, stats = asyncio.run(run())
    for out in outs:
        assert np.asarray(out).tobytes() == wants["eps"].tobytes()
    assert stats["batches"] < stats["completed"]


def test_tcp_retrieve_roundtrip(case):
    archive, eps, wants = case
    spec = CodecSpec("mgard-x")

    async def run():
        svc = await ReductionService(
            ServiceConfig(limits=BatchLimits(max_batch=4,
                                             max_latency_s=0.002))
        ).start()
        server = await serve_tcp(svc)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            client = await BlastClient.connect(host, port)
            full = await client.retrieve(spec, archive)
            coarse = await client.retrieve(spec, archive, eps=eps)
            level = await client.retrieve(spec, archive, resolution=2)
            await client.close()
            return full, coarse, level
        finally:
            server.close()
            await server.wait_closed()
            await svc.close()

    full, coarse, level = asyncio.run(run())
    assert np.asarray(full).tobytes() == wants["full"].tobytes()
    assert np.asarray(coarse).tobytes() == wants["eps"].tobytes()
    assert np.asarray(level).tobytes() == wants["resolution"].tobytes()


def test_tcp_retrieve_unreachable_bound_maps_to_remote_error(case):
    archive, _eps, _wants = case
    spec = CodecSpec("mgard-x")

    async def run():
        svc = await ReductionService(ServiceConfig()).start()
        server = await serve_tcp(svc)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            client = await BlastClient.connect(host, port)
            try:
                with pytest.raises(RemoteRequestError) as exc:
                    await client.retrieve(spec, archive, eps=1e-300)
                return str(exc.value)
            finally:
                await client.close()
        finally:
            server.close()
            await server.wait_closed()
            await svc.close()

    message = asyncio.run(run())
    assert "unreachable" in message


def test_cluster_retrieve_through_front_door(case):
    archive, eps, wants = case
    spec = CodecSpec("mgard-x")

    async def run():
        cfg = ClusterConfig(shards=3, backend="task")
        async with ClusterService(cfg) as cluster:
            outs = await asyncio.gather(
                *(cluster.retrieve(spec, archive, eps=eps) for _ in range(4))
            )
            return outs

    for out in asyncio.run(run()):
        assert np.asarray(out).tobytes() == wants["eps"].tobytes()
