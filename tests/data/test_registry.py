"""Table III dataset registry."""

import numpy as np
import pytest

from repro.data.registry import DATASETS, get_dataset, load


def test_table3_inventory():
    assert set(DATASETS) == {"nyx", "xgc", "e3sm"}


def test_nyx_row_matches_paper():
    d = get_dataset("nyx")
    assert d.field == "density"
    assert d.full_shape == (512, 512, 512)
    assert d.dtype == "float32"
    assert d.full_size_label == "536.9 MB"


def test_xgc_row_matches_paper():
    d = get_dataset("xgc")
    assert d.field == "e_f"
    assert d.full_shape == (8, 33, 1_117_528, 37)
    assert d.dtype == "float64"
    assert d.full_size_label == "87.3 GB"


def test_e3sm_row_matches_paper():
    d = get_dataset("e3sm")
    assert d.field == "PSL"
    assert d.full_shape == (2880, 240, 960)
    assert d.full_size_label == "2.7 GB"


def test_load_scaled_default():
    data = load("nyx")
    assert data.shape == get_dataset("nyx").default_shape
    assert data.dtype == np.float32


def test_load_custom_shape_and_seed():
    a = load("e3sm", shape=(4, 12, 24), seed=1)
    b = load("e3sm", shape=(4, 12, 24), seed=2)
    assert a.shape == (4, 12, 24)
    assert not np.array_equal(a, b)


def test_unknown_dataset():
    with pytest.raises(KeyError):
        get_dataset("hacc")


def test_case_insensitive():
    assert get_dataset("NYX") is get_dataset("nyx")
