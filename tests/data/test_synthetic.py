"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    e3sm_like,
    gaussian_random_field,
    nyx_like,
    xgc_like,
)


class TestGaussianRandomField:
    def test_statistics(self):
        f = gaussian_random_field((32, 32, 32), seed=1)
        assert abs(f.mean()) < 0.1
        assert f.std() == pytest.approx(1.0, rel=0.01)

    def test_deterministic_per_seed(self):
        a = gaussian_random_field((16, 16), seed=5)
        b = gaussian_random_field((16, 16), seed=5)
        c = gaussian_random_field((16, 16), seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_spectral_index_controls_smoothness(self):
        """Steeper spectrum → smaller gradients (smoother field)."""
        rough = gaussian_random_field((64, 64), spectral_index=-1.0, seed=0)
        smooth = gaussian_random_field((64, 64), spectral_index=-4.0, seed=0)
        g_rough = np.abs(np.diff(rough, axis=0)).mean()
        g_smooth = np.abs(np.diff(smooth, axis=0)).mean()
        assert g_smooth < g_rough

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            gaussian_random_field((0, 4))

    def test_1d_and_4d(self):
        assert gaussian_random_field((100,)).shape == (100,)
        assert gaussian_random_field((4, 5, 6, 7)).shape == (4, 5, 6, 7)


class TestNyx:
    def test_shape_dtype(self):
        d = nyx_like((16, 16, 16))
        assert d.shape == (16, 16, 16)
        assert d.dtype == np.float32

    def test_density_positive_mean_one(self):
        d = nyx_like((24, 24, 24), seed=2)
        assert np.all(d > 0)
        assert d.mean() == pytest.approx(1.0, rel=0.01)

    def test_lognormal_skew(self):
        """Cosmological density: rare dense filaments → heavy right tail."""
        d = nyx_like((32, 32, 32), seed=1)
        assert d.max() / np.median(d) > 3

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            nyx_like((16, 16))

    def test_compressible_by_mgard(self):
        from repro import Config, ErrorMode, MGARDX

        d = nyx_like((32, 32, 32), seed=0)
        c = MGARDX(Config(error_bound=1e-2, error_mode=ErrorMode.REL))
        assert c.compression_ratio(d, c.compress(d)) > 3


class TestXgc:
    def test_shape_dtype(self):
        d = xgc_like((2, 8, 64, 8))
        assert d.shape == (2, 8, 64, 8)
        assert d.dtype == np.float64

    def test_velocity_space_maxwellian_profile(self):
        """f decays away from the flow velocity along v_par (axis 1)."""
        d = xgc_like((2, 16, 32, 8), seed=0)
        core = d[:, 7:9].mean()
        edge = d[:, :2].mean()
        assert core > 3 * edge

    def test_requires_4d(self):
        with pytest.raises(ValueError):
            xgc_like((4, 4, 4))

    def test_highly_compressible(self):
        """XGC's v-space smoothness → very high MGARD ratios (the paper
        reports XGC CR 9.1 at 1e-4; far higher at loose bounds)."""
        from repro import Config, ErrorMode, MGARDX

        d = xgc_like((2, 16, 128, 16), seed=0).astype(np.float64)
        c = MGARDX(Config(error_bound=1e-2, error_mode=ErrorMode.REL))
        assert c.compression_ratio(d, c.compress(d)) > 10


class TestE3sm:
    def test_shape_dtype(self):
        d = e3sm_like((10, 20, 40))
        assert d.shape == (10, 20, 40)
        assert d.dtype == np.float32

    def test_pressure_magnitude(self):
        d = e3sm_like((8, 24, 48), seed=0)
        assert 90_000 < d.mean() < 110_000  # sea-level pressure in Pa

    def test_temporal_evolution(self):
        """Waves move: successive time steps differ but correlate."""
        d = e3sm_like((6, 24, 48), seed=0).astype(np.float64)
        diff = np.abs(d[1] - d[0]).mean()
        assert diff > 0
        c = np.corrcoef(d[0].ravel(), d[1].ravel())[0, 1]
        assert c > 0.9

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            e3sm_like((10, 10))
