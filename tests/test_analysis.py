"""Quality metrics and rate-distortion sweeps."""

import numpy as np
import pytest

from repro import Config, ErrorMode, MGARDX, SZ, ZFPX
from repro.analysis import (
    RatePoint,
    max_abs_error,
    preserved_gradient_error,
    preserved_mean_error,
    psnr,
    rate_distortion,
    rmse,
)


class TestMetrics:
    def test_exact_reconstruction(self, rng):
        a = rng.normal(size=(10, 10))
        assert max_abs_error(a, a) == 0.0
        assert rmse(a, a) == 0.0
        assert psnr(a, a) == float("inf")
        assert preserved_mean_error(a, a) == 0.0
        assert preserved_gradient_error(a, a) == 0.0

    def test_known_error(self):
        a = np.zeros((4,))
        b = np.array([0.0, 0.0, 0.0, 1.0])
        assert max_abs_error(a, b) == 1.0
        assert rmse(a, b) == pytest.approx(0.5)

    def test_psnr_decreases_with_noise(self, rng):
        a = rng.normal(size=(32, 32))
        small = a + 1e-4 * rng.normal(size=a.shape)
        large = a + 1e-1 * rng.normal(size=a.shape)
        assert psnr(a, small) > psnr(a, large)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            max_abs_error(rng.normal(size=(3,)), rng.normal(size=(4,)))

    def test_empty_arrays(self):
        e = np.zeros((0,))
        assert max_abs_error(e, e) == 0.0
        assert rmse(e, e) == 0.0


class TestQoIPreservation:
    """MGARD's purpose: bounded pointwise error bounds linear QoIs too."""

    def test_mean_preserved_within_bound(self, smooth_3d):
        eb = 1e-3 * float(np.ptp(smooth_3d))
        c = MGARDX(Config(error_bound=eb, error_mode=ErrorMode.ABS))
        back = c.decompress(c.compress(smooth_3d))
        # |mean(x) - mean(x')| <= max|x - x'| <= eb.
        assert preserved_mean_error(smooth_3d, back) <= eb

    def test_gradient_error_bounded_by_twice_eb(self, smooth_2d):
        eb = 1e-3 * float(np.ptp(smooth_2d))
        c = MGARDX(Config(error_bound=eb, error_mode=ErrorMode.ABS))
        back = c.decompress(c.compress(smooth_2d))
        # First differences amplify pointwise error by at most 2.
        assert preserved_gradient_error(smooth_2d, back) <= 2 * eb

    def test_smoothness_parameter_trades_qoi_for_ratio(self, rng):
        """s>0 keeps the coarse scales (and the mean) extra accurate."""
        x, y = np.meshgrid(*[np.linspace(0, 2 * np.pi, 33)] * 2, indexing="ij")
        data = np.sin(x) * np.cos(y) + 0.01 * rng.normal(size=(33, 33))
        cfg = Config(error_bound=5e-3, error_mode=ErrorMode.REL)
        flat = MGARDX(cfg, s=0.0)
        smooth = MGARDX(cfg, s=1.0)
        mean_flat = preserved_mean_error(data, flat.decompress(flat.compress(data)))
        mean_s = preserved_mean_error(data, smooth.decompress(smooth.compress(data)))
        assert mean_s <= mean_flat * 1.5  # never substantially worse


class TestRateDistortion:
    def test_mgard_curve_monotone(self, smooth_3d):
        ebs = [1e-1, 1e-2, 1e-3]
        pts = rate_distortion(
            smooth_3d,
            lambda eb: MGARDX(Config(error_bound=eb, error_mode=ErrorMode.REL)),
            ebs,
        )
        assert [p.parameter for p in pts] == ebs
        # Tighter bound → more bits, less error, higher PSNR.
        assert pts[0].bits_per_value < pts[-1].bits_per_value
        assert pts[0].max_error > pts[-1].max_error
        assert pts[0].psnr < pts[-1].psnr

    def test_zfp_rate_sweep(self, smooth_3d):
        pts = rate_distortion(smooth_3d, lambda r: ZFPX(rate=r), [4, 8, 16])
        for p, r in zip(pts, (4, 8, 16)):
            assert p.bits_per_value == pytest.approx(r, rel=0.2)

    def test_compressors_comparable_at_same_bound(self, smooth_3d):
        eb = 1e-3
        for comp in (
            MGARDX(Config(error_bound=eb, error_mode=ErrorMode.REL)),
            SZ(Config(error_bound=eb, error_mode=ErrorMode.REL)),
        ):
            pts = rate_distortion(smooth_3d, lambda _: comp, [eb])
            assert pts[0].max_error <= eb * np.ptp(smooth_3d)

    def test_empty_parameters_rejected(self, smooth_3d):
        with pytest.raises(ValueError):
            rate_distortion(smooth_3d, lambda _: None, [])
