"""Measurement tests: FakeClock timing and trace-sink attribution."""

import pytest

from repro.trace import tracer as tracer_mod
from repro.tune import (
    FakeClock,
    Measurement,
    MeasurementSink,
    attributed_measure,
    digest_bytes,
    measure_call,
    stage_share,
)


def test_fake_clock_advances():
    clock = FakeClock(10.0)
    assert clock() == 10.0
    clock.advance(2.5)
    assert clock() == 12.5
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_measure_call_min_over_reps():
    clock = FakeClock()
    durations = iter([5.0, 2.0, 3.0])

    def fn():
        clock.advance(next(durations))
        return "value"

    seconds, value = measure_call(fn, reps=3, clock=clock)
    assert seconds == 2.0
    assert value == "value"


def test_measure_call_validates_reps():
    with pytest.raises(ValueError):
        measure_call(lambda: None, reps=0)


def test_measurement_rejects_negative_seconds():
    with pytest.raises(ValueError):
        Measurement(config={}, seconds=-0.1)


def test_digest_bytes_concatenates():
    assert digest_bytes(b"ab", b"c") == digest_bytes(b"abc")
    assert digest_bytes(b"ab") != digest_bytes(b"ba")


def test_sink_aggregates_spans():
    t = tracer_mod.Tracer()
    t.enable()
    sink = MeasurementSink(t)
    with sink.attached():
        with t.span("stage.alpha"):
            pass
        with t.span("stage.alpha"):
            pass
        with t.span("stage.beta"):
            pass
    with t.span("stage.alpha"):  # after detach: not counted
        pass
    counts = sink.stage_counts()
    assert counts == {"stage.alpha": 2, "stage.beta": 1}
    seconds = sink.stage_seconds()
    assert set(seconds) == {"stage.alpha", "stage.beta"}
    assert all(v >= 0 for v in seconds.values())
    assert sink.total_seconds() == pytest.approx(sum(seconds.values()))
    sink.reset()
    assert sink.stage_counts() == {}


def test_broken_sink_never_breaks_traced_code():
    t = tracer_mod.Tracer()
    t.enable()

    def bad_sink(event):
        raise RuntimeError("boom")

    t.add_sink(bad_sink)
    try:
        with t.span("stage.ok"):
            pass  # must not raise despite the sink blowing up
        assert [e.name for e in t.snapshot()] == ["stage.ok"]
    finally:
        t.remove_sink(bad_sink)


def test_add_sink_is_idempotent_and_removable():
    t = tracer_mod.Tracer()
    t.enable()
    seen = []
    sink = seen.append
    t.add_sink(sink)
    t.add_sink(sink)  # duplicate registration must not double-deliver
    with t.span("s"):
        pass
    assert len(seen) == 1
    t.remove_sink(sink)
    with t.span("s"):
        pass
    assert len(seen) == 1


def test_module_level_sink_helpers():
    seen = []
    sink = seen.append  # bound once: remove_sink matches by identity
    tracer_mod.add_sink(sink)
    try:
        was = tracer_mod.TRACER.enabled
        tracer_mod.TRACER.enable()
        try:
            with tracer_mod.TRACER.span("module.level"):
                pass
        finally:
            if not was:
                tracer_mod.TRACER.disable()
        assert [e.name for e in seen] == ["module.level"]
    finally:
        tracer_mod.remove_sink(sink)
    assert sink not in tracer_mod.TRACER._sinks


def test_attributed_measure_enables_tracer_temporarily():
    t = tracer_mod.Tracer()
    assert not t.enabled

    def fn():
        with t.span("inner.stage"):
            return 42

    seconds, value, stages = attributed_measure(fn, reps=2, tracer=t)
    assert value == 42
    assert "inner.stage" in stages
    assert not t.enabled  # restored


def test_stage_share_normalizes():
    assert stage_share({}) == {}
    share = stage_share({"a": 3.0, "b": 1.0})
    assert share["a"] == pytest.approx(0.75)
    assert share["b"] == pytest.approx(0.25)
