"""AutoTuner tests: byte-identity guard, persistence, config resolution.

Runners here are synthetic (FakeClock-backed cost surfaces), so every
assertion about what the tuner accepts, rejects, and persists is exact.
"""

import dataclasses

import pytest

from repro.trace.metrics import REGISTRY
from repro.tune import (
    AutoTuner,
    Knob,
    KnobSpace,
    Measurement,
    TuneEntry,
    TuningCache,
    TuningKey,
    resolve_codec_config,
    service_knob_space,
)

SPACE = KnobSpace((
    Knob("threads", (1, 2, 4), 1),
    Knob("flavor", ("a", "b"), "a"),
    Knob("chunk", (100, 200), 100, stream_affecting=True),
))

KEY = TuningKey("fake", "<f4", (2, 256), "cpu-test")


def surface_runner(digest_map=None):
    """A runner over a synthetic surface: optimum threads=4, flavor=b.

    ``digest_map`` maps knob values to digests; defaults make every
    config byte-identical except non-default ``chunk`` values.
    """

    def run(config):
        cost = 1.0 / config["threads"] + (0.3 if config["flavor"] == "a" else 0.0)
        digest = "base" if config["chunk"] == 100 else f"chunk{config['chunk']}"
        return Measurement(config=dict(config), seconds=cost, digest=digest)

    return run


def test_finds_optimum_and_rejects_stream_affecting():
    tuner = AutoTuner(SPACE, seed=1, budget=32)
    report = tuner.tune(KEY, surface_runner())
    assert report.best_config["threads"] == 4
    assert report.best_config["flavor"] == "b"
    assert report.best_config["chunk"] == 100  # guard held the default
    assert report.improved
    assert report.speedup > 1.0
    assert report.rejected >= 1  # chunk=200 looked legal but flipped bytes
    assert report.digest == "base"


def test_rejection_bumps_the_metric():
    before = REGISTRY.counter("hpdr_tune_rejected_total").value(codec="fake")
    tuner = AutoTuner(SPACE, seed=1, budget=32)
    report = tuner.tune(KEY, surface_runner())
    after = REGISTRY.counter("hpdr_tune_rejected_total").value(codec="fake")
    assert after - before == report.rejected


def test_persists_only_byte_identical_winner(tmp_path):
    cache = TuningCache(tmp_path / "t.json")
    tuner = AutoTuner(SPACE, seed=1, budget=32)
    report = tuner.tune(KEY, surface_runner(), cache=cache, source="unit")
    entry = cache.get(KEY)
    assert entry is not None
    assert entry.config == report.best_config
    assert entry.digest == "base"
    assert entry.source == "unit"
    assert entry.speedup == pytest.approx(report.speedup)


def test_runner_without_digest_is_an_error():
    def bad(config):
        return Measurement(config=dict(config), seconds=1.0, digest="")

    with pytest.raises(ValueError, match="digest"):
        AutoTuner(SPACE, seed=0).tune(KEY, bad)


def test_budget_bounds_evaluations():
    calls = []

    def run(config):
        calls.append(config)
        return surface_runner()(config)

    AutoTuner(SPACE, seed=0, budget=3).tune(KEY, run)
    # Baseline + at most budget candidate runs (default re-asks replay
    # the baseline without calling the runner again).
    assert len(calls) <= 4


def test_worse_everywhere_keeps_the_default(tmp_path):
    def run(config):
        default = SPACE.default_config()
        cost = 1.0 if config == default else 2.0
        return Measurement(config=dict(config), seconds=cost, digest="base")

    cache = TuningCache(tmp_path / "t.json")
    report = AutoTuner(SPACE, seed=0, budget=16).tune(KEY, run, cache=cache)
    assert report.best_config == SPACE.default_config()
    assert not report.improved
    assert report.speedup == pytest.approx(1.0)
    assert cache.get(KEY).config == SPACE.default_config()


# ---------------------------------------------------------------------------
# resolve_codec_config: the CLI --tune mode switch
# ---------------------------------------------------------------------------
def test_resolve_off_is_defaults_without_cache():
    import numpy as np

    data = np.zeros((8, 8), dtype=np.float32)
    config = resolve_codec_config("off", "zfp-x", data)
    from repro.tune import knob_space_for

    assert config == knob_space_for("zfp-x").default_config()


def test_resolve_rejects_unknown_mode():
    import numpy as np

    with pytest.raises(ValueError):
        resolve_codec_config("sometimes", "zfp-x", np.zeros(4))


def test_resolve_auto_hits_and_misses(tmp_path):
    import numpy as np

    from repro.tune import knob_space_for

    data = np.zeros((8, 8), dtype=np.float32)
    cache = TuningCache(tmp_path / "t.json")
    space = knob_space_for("zfp-x")

    miss_before = REGISTRY.counter(
        "hpdr_tune_cache_misses_total").value(codec="zfp-x")
    assert resolve_codec_config(
        "auto", "zfp-x", data, cache=cache) == space.default_config()
    assert REGISTRY.counter(
        "hpdr_tune_cache_misses_total").value(codec="zfp-x") == miss_before + 1

    tuned = dict(space.default_config(), adapter="openmp")
    cache.put(TuningKey.for_array("zfp-x", data),
              TuneEntry(config=tuned, cost_s=0.1))
    hit_before = REGISTRY.counter(
        "hpdr_tune_cache_hits_total").value(codec="zfp-x")
    assert resolve_codec_config("auto", "zfp-x", data, cache=cache) == tuned
    assert REGISTRY.counter(
        "hpdr_tune_cache_hits_total").value(codec="zfp-x") == hit_before + 1


def test_resolve_auto_ignores_off_grid_entry(tmp_path):
    import numpy as np

    from repro.tune import knob_space_for

    data = np.zeros((8, 8), dtype=np.float32)
    cache = TuningCache(tmp_path / "t.json")
    cache.put(TuningKey.for_array("zfp-x", data),
              TuneEntry(config={"adapter": "cuda", "threads": 9999},
                        cost_s=0.1))
    config = resolve_codec_config("auto", "zfp-x", data, cache=cache)
    assert config == knob_space_for("zfp-x").default_config()


def test_resolve_force_tunes_and_persists(tmp_path):
    import numpy as np

    data = np.linspace(0, 1, 512, dtype=np.float32).reshape(8, 8, 8)
    cache = TuningCache(tmp_path / "t.json")
    config = resolve_codec_config("force", "zfp-x", data,
                                  cache=cache, budget=2)
    key = TuningKey.for_array("zfp-x", data)
    entry = cache.get(key)
    assert entry is not None
    assert entry.config == config


# ---------------------------------------------------------------------------
# TuneReport.entry round-trips through the cache file
# ---------------------------------------------------------------------------
def test_report_entry_round_trip(tmp_path):
    tuner = AutoTuner(SPACE, seed=2, budget=16)
    report = tuner.tune(KEY, surface_runner())
    entry = report.entry(source="round-trip")
    cache = TuningCache(tmp_path / "t.json")
    cache.put(KEY, entry)
    assert cache.get(KEY) == dataclasses.replace(entry)


def test_service_knob_space_defaults_match_serve():
    from repro.serve import BatchLimits

    defaults = service_knob_space().default_config()
    limits = BatchLimits()
    assert defaults["max_batch"] == limits.max_batch
    assert defaults["max_bytes"] == limits.max_bytes
    assert defaults["max_latency_ms"] == pytest.approx(
        limits.max_latency_s * 1e3)
