"""Property-based tests: the tuner's persistence invariant.

The property the whole subsystem hangs on: **no matter the cost
surface and no matter which configs change bytes, a persisted entry is
always byte-identical to the default configuration.**  Hypothesis gets
to pick adversarial surfaces — byte-changing configs that look
arbitrarily fast — and the guard must hold for every one of them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tune import (
    AutoTuner,
    Knob,
    KnobSpace,
    Measurement,
    TuneEntry,
    TuningCache,
    TuningKey,
    config_key,
)

SPACE = KnobSpace((
    Knob("a", (1, 2, 4), 1),
    Knob("b", ("p", "q", "r"), "p"),
))
ALL_CONFIGS = [
    {"a": a, "b": b} for a in (1, 2, 4) for b in ("p", "q", "r")
]
KEY = TuningKey("prop", "<f4", (1, 64), "cpu-test")


class RecordingCache:
    def __init__(self):
        self.puts = []

    def put(self, key, entry):
        self.puts.append((key, entry))


@given(
    costs=st.lists(
        st.floats(min_value=1e-4, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        min_size=len(ALL_CONFIGS), max_size=len(ALL_CONFIGS),
    ),
    byte_changers=st.sets(st.integers(0, len(ALL_CONFIGS) - 1)),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_persisted_entry_is_always_byte_identical(costs, byte_changers, seed):
    surface = {
        config_key(c): (cost, "flip" if i in byte_changers else "base")
        for i, (c, cost) in enumerate(zip(ALL_CONFIGS, costs))
    }
    # The default config always defines the baseline digest, whatever
    # hypothesis assigned it.
    default_key = config_key(SPACE.default_config())
    baseline_digest = surface[default_key][1]

    def run(config):
        cost, digest = surface[config_key(config)]
        return Measurement(config=dict(config), seconds=cost, digest=digest)

    cache = RecordingCache()
    report = AutoTuner(SPACE, seed=seed, budget=32).tune(
        KEY, run, cache=cache)

    assert len(cache.puts) == 1
    _key, entry = cache.puts[0]
    assert entry.digest == baseline_digest
    assert surface[config_key(entry.config)][1] == baseline_digest
    assert report.best_config == entry.config
    # The winner is genuinely the cheapest *byte-identical* config seen.
    assert entry.cost_s <= surface[default_key][0] + 1e-12


@given(
    configs=st.dictionaries(
        st.sampled_from(["adapter", "threads", "chunk", "rate"]),
        st.one_of(st.integers(-1000, 1000),
                  st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=8)),
        min_size=1,
    ),
    cost=st.floats(min_value=0.0, max_value=1e6,
                   allow_nan=False, allow_infinity=False),
    default_cost=st.floats(min_value=0.0, max_value=1e6,
                           allow_nan=False, allow_infinity=False),
    digest=st.text(max_size=16),
)
@settings(max_examples=60, deadline=None)
def test_cache_round_trips_arbitrary_entries(tmp_path_factory, configs,
                                             cost, default_cost, digest):
    cache = TuningCache(
        tmp_path_factory.mktemp("prop") / "tuning.json")
    entry = TuneEntry(config=configs, cost_s=cost,
                      default_cost_s=default_cost, digest=digest)
    cache.put(KEY, entry)
    assert cache.get(KEY) == entry
