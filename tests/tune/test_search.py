"""Search-strategy tests: deterministic convergence on known surfaces.

Everything here is driven by synthetic cost functions — zero wall
clock, zero codecs — so convergence and determinism are exact
assertions, not statistical hopes.
"""

import pytest

from repro.tune import CoordinateDescent, Knob, KnobSpace, config_key, run_search

SPACE = KnobSpace((
    Knob("a", (1, 2, 4, 8), 1),
    Knob("b", (0.0, 0.5, 1.0), 0.0),
    Knob("c", ("x", "y"), "x"),
))


def convex_cost(config):
    """Separable convex surface: unique optimum at a=8, b=1.0, c=y."""
    return (
        1.0 / config["a"]
        + (1.0 - config["b"]) ** 2
        + (0.25 if config["c"] == "x" else 0.0)
    )


def drive(strategy, cost, budget=200):
    trace = []
    for _ in range(budget):
        config = strategy.ask()
        if config is None:
            break
        trace.append(config_key(config))
        strategy.tell(config, cost(config))
    return trace


def test_converges_to_known_optimum():
    strat = CoordinateDescent(SPACE, seed=3)
    drive(strat, convex_cost)
    best, cost = strat.best()
    assert best == {"a": 8, "b": 1.0, "c": "y"}
    assert cost == pytest.approx(convex_cost(best))


@pytest.mark.parametrize("seed", [0, 1, 42])
def test_same_seed_same_trajectory(seed):
    t1 = drive(CoordinateDescent(SPACE, seed=seed), convex_cost)
    t2 = drive(CoordinateDescent(SPACE, seed=seed), convex_cost)
    assert t1 == t2
    assert len(t1) > 1


def test_first_proposal_is_the_default():
    strat = CoordinateDescent(SPACE, seed=0)
    assert strat.ask() == SPACE.default_config()


def test_never_reproposes_a_measured_config():
    strat = CoordinateDescent(SPACE, seed=5, epsilon=0.5)
    trace = drive(strat, convex_cost)
    assert len(trace) == len(set(trace))
    assert strat.evaluations == len(trace)


def test_proposals_stay_on_the_grid():
    strat = CoordinateDescent(SPACE, seed=9, epsilon=1.0)
    for _ in range(100):
        config = strat.ask()
        if config is None:
            break
        assert SPACE.contains(config)
        strat.tell(config, convex_cost(config))


def test_stops_after_unimproving_round():
    # A flat surface: the first round cannot improve on the default, so
    # the strategy must converge well before exhausting the grid.
    strat = CoordinateDescent(SPACE, seed=0, epsilon=0.0, max_rounds=4)
    trace = drive(strat, lambda config: 1.0)
    assert strat.done
    assert len(trace) < SPACE.grid_size()


def test_ask_twice_without_tell_raises():
    strat = CoordinateDescent(SPACE, seed=0)
    strat.ask()
    with pytest.raises(RuntimeError):
        strat.ask()


def test_tell_without_ask_raises():
    strat = CoordinateDescent(SPACE, seed=0)
    with pytest.raises(RuntimeError):
        strat.tell(SPACE.default_config(), 1.0)


def test_tell_with_wrong_config_raises():
    strat = CoordinateDescent(SPACE, seed=0)
    config = strat.ask()
    wrong = dict(config, a=8 if config["a"] != 8 else 4)
    with pytest.raises(ValueError):
        strat.tell(wrong, 1.0)


def test_run_search_respects_budget():
    strat = CoordinateDescent(SPACE, seed=0)
    calls = []

    def cost(config):
        calls.append(config)
        return convex_cost(config)

    run_search(strat, cost, budget=3)
    assert len(calls) == 3


def test_epsilon_validation():
    with pytest.raises(ValueError):
        CoordinateDescent(SPACE, epsilon=1.5)
    with pytest.raises(ValueError):
        CoordinateDescent(SPACE, max_rounds=0)
