"""The tuner conformance harness, run the way downstreams would run it."""

import pytest

from repro.testing import AdapterConformanceError, check_tuner
from repro.tune import CoordinateDescent


def test_shipped_strategy_conforms():
    check_tuner()


def test_conformance_is_seed_stable():
    check_tuner(seed=0)
    check_tuner(seed=12345)


def test_catches_nondeterministic_strategy():
    class Jittery(CoordinateDescent):
        _instances = 0

        def __init__(self, space, **kw):
            super().__init__(space, **kw)
            # Hidden state outside (seed, costs): every other *instance*
            # pins a knob — exactly what the determinism check must
            # catch, since two same-seed strategies now diverge.
            Jittery._instances += 1
            self._skew = Jittery._instances % 2 == 0

        def ask(self):
            config = super().ask()
            if config is None:
                return None
            if self._skew:
                config = dict(config, alpha=8)
                self._outstanding = dict(config)
            return config

    with pytest.raises(AdapterConformanceError, match="deterministic"):
        check_tuner(strategy_factory=Jittery)


def test_catches_out_of_bounds_strategy():
    class Rogue(CoordinateDescent):
        def ask(self):
            config = super().ask()
            if config is None:
                return None
            config = dict(config, alpha=3)  # 3 is not on the grid
            self._outstanding = dict(config)
            return config

    with pytest.raises(AdapterConformanceError, match="outside"):
        check_tuner(strategy_factory=Rogue)
