"""Tuning-cache tests: CRC validation, fail-open loads, atomic writes.

The cache is the one component a learning system persists across runs,
so corruption handling is the whole point: every malformed file must
load as *empty* (defaults everywhere), bump the invalid counter, and
never raise into the startup path consulting it.
"""

import json
import multiprocessing
import sys

import pytest

from repro.trace.metrics import REGISTRY
from repro.tune import (
    CACHE_FORMAT,
    CACHE_VERSION,
    TuneEntry,
    TuningCache,
    TuningKey,
    default_cache_path,
)

KEY = TuningKey("zfp-x", "<f4", (3, 4096), "cpu4")
ENTRY = TuneEntry(
    config={"adapter": "openmp", "threads": 4},
    cost_s=0.010,
    default_cost_s=0.013,
    digest="abc123",
    source="test",
)


@pytest.fixture
def cache(tmp_path):
    return TuningCache(tmp_path / "tuning.json")


def test_round_trip(cache):
    cache.put(KEY, ENTRY)
    got = cache.get(KEY)
    assert got == ENTRY
    assert got.speedup == pytest.approx(1.3)
    assert len(cache) == 1


def test_put_merges_instead_of_clobbering(cache):
    other = TuningKey("mgard-x", "<f8", (2, 1024), "cpu4")
    cache.put(KEY, ENTRY)
    cache.put(other, TuneEntry(config={"adapter": "serial", "threads": 1},
                               cost_s=0.5))
    entries = cache.load()
    assert set(entries) == {str(KEY), str(other)}


def test_evict_and_clear(cache):
    cache.put(KEY, ENTRY)
    assert cache.evict(KEY) is True
    assert cache.evict(KEY) is False
    cache.put(KEY, ENTRY)
    cache.clear()
    assert cache.load() == {}


def test_missing_file_loads_empty(cache):
    assert cache.load() == {}
    assert cache.get(KEY) is None


def _invalid_count():
    return REGISTRY.counter("hpdr_tune_cache_invalid_total").total()


def corrupt_crc(path):
    record = json.loads(path.read_text())
    record["crc"] = (record["crc"] + 1) & 0xFFFFFFFF
    path.write_text(json.dumps(record))


def corrupt_truncate(path):
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])


def corrupt_version(path):
    record = json.loads(path.read_text())
    record["version"] = CACHE_VERSION + 1
    path.write_text(json.dumps(record))


def corrupt_format(path):
    record = json.loads(path.read_text())
    record["format"] = "not-" + CACHE_FORMAT
    path.write_text(json.dumps(record))


def corrupt_not_json(path):
    path.write_bytes(b"\x00\xffdefinitely not json")


def corrupt_bad_key(path):
    record = json.loads(path.read_text())
    entries = record["entries"]
    entries["not a tuning key"] = next(iter(entries.values()))
    # Keep the CRC honest so the *key* validation is what trips.
    import zlib

    record["crc"] = zlib.crc32(
        json.dumps(entries, sort_keys=True, separators=(",", ":")).encode()
    ) & 0xFFFFFFFF
    path.write_text(json.dumps(record))


@pytest.mark.parametrize("corrupt", [
    corrupt_crc,
    corrupt_truncate,
    corrupt_version,
    corrupt_format,
    corrupt_not_json,
    corrupt_bad_key,
], ids=lambda f: f.__name__)
def test_corrupt_file_loads_empty_and_counts(cache, corrupt):
    cache.put(KEY, ENTRY)
    corrupt(cache.path)
    before = _invalid_count()
    assert cache.load() == {}
    assert cache.get(KEY) is None
    assert _invalid_count() == before + 2  # one per load() above


def test_corrupt_cache_recovers_on_next_put(cache):
    cache.put(KEY, ENTRY)
    corrupt_crc(cache.path)
    cache.put(KEY, ENTRY)  # read-merge sees {}, rewrites a valid file
    assert cache.get(KEY) == ENTRY


def test_default_cache_path_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("HPDR_TUNE_CACHE", str(tmp_path / "o.json"))
    assert default_cache_path() == tmp_path / "o.json"
    monkeypatch.delenv("HPDR_TUNE_CACHE")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_path() == tmp_path / "xdg" / "hpdr" / "tuning.json"


def test_table_renders_entries(cache):
    assert "empty" in cache.table()
    cache.put(KEY, ENTRY)
    text = cache.table()
    assert str(KEY) in text
    assert "adapter=openmp" in text


def test_put_rejects_non_entry(cache):
    with pytest.raises(TypeError):
        cache.put(KEY, {"config": {}})


# ---------------------------------------------------------------------------
# Concurrent-writer atomicity: real processes racing put(); a reader
# polling throughout must never observe a torn or invalid file.
# ---------------------------------------------------------------------------
def _writer(path, codec, n):
    sys.path.insert(0, "src")
    from repro.tune import TuneEntry, TuningCache, TuningKey

    cache = TuningCache(path)
    for i in range(n):
        key = TuningKey(codec, "<f4", (3, 4096), f"cpu{i}")
        cache.put(key, TuneEntry(config={"adapter": "serial", "threads": 1},
                                 cost_s=0.001 * (i + 1)))


@pytest.mark.timing_sensitive
def test_concurrent_writers_never_tear(tmp_path):
    path = tmp_path / "tuning.json"
    ctx = multiprocessing.get_context("spawn")
    writers = [
        ctx.Process(target=_writer, args=(str(path), codec, 20))
        for codec in ("zfp-x", "mgard-x")
    ]
    for w in writers:
        w.start()
    reader = TuningCache(path)
    invalid_before = _invalid_count()
    reads = 0
    while any(w.is_alive() for w in writers):
        if path.exists():
            reader.load()
            reads += 1
    for w in writers:
        w.join()
        assert w.exitcode == 0
    # No read ever hit a torn/invalid file — atomic rename guarantees
    # every observed file is a complete record with a matching CRC.
    assert _invalid_count() == invalid_before
    assert reads > 0
    # Both writers' final updates survive the merge (last rename of each
    # key wins; the *other* writer's keys are merged in, not clobbered).
    final = reader.load()
    codecs = {TuningKey.parse(k).codec for k in final}
    assert codecs == {"zfp-x", "mgard-x"}
