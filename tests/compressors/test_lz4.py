"""LZ4-flavoured lossless baseline."""

import numpy as np
import pytest

from repro.compressors.baselines.lz4 import (
    LZ4,
    compress_block,
    decompress_block,
)


class TestBlockCodec:
    def test_empty(self):
        assert decompress_block(compress_block(b""), 0) == b""

    def test_short_literal_only(self):
        src = b"abc"
        assert decompress_block(compress_block(src), len(src)) == src

    def test_repetitive_compresses(self):
        src = b"abcd" * 5000
        out = compress_block(src)
        assert len(out) < len(src) / 10
        assert decompress_block(out, len(src)) == src

    def test_self_overlapping_match(self):
        """RLE-style runs use offset < match length (overlap copy)."""
        src = b"a" * 1000
        out = compress_block(src)
        assert decompress_block(out, len(src)) == src
        assert len(out) < 50

    def test_incompressible_random(self, rng):
        src = rng.integers(0, 256, size=4096).astype(np.uint8).tobytes()
        out = compress_block(src)
        assert decompress_block(out, len(src)) == src
        # Bounded expansion on incompressible input.
        assert len(out) < len(src) * 1.1

    def test_long_literal_run_length_encoding(self, rng):
        """Literal runs > 15 need length continuation bytes."""
        src = bytes(rng.integers(0, 256, size=300).astype(np.uint8)) + b"ab" * 40
        assert decompress_block(compress_block(src), len(src)) == src

    def test_long_match_length_encoding(self):
        src = b"x" * 20 + b"0123456789abcdef" * 100
        assert decompress_block(compress_block(src), len(src)) == src

    def test_corrupt_size_rejected(self):
        out = compress_block(b"hello world, hello world")
        with pytest.raises(ValueError):
            decompress_block(out, 999)

    def test_window_limit_respected(self, rng):
        """Matches beyond the 64 KiB window are not referenced."""
        chunk = rng.integers(0, 256, size=70_000).astype(np.uint8).tobytes()
        src = b"MAGIC-PREFIX-123" + chunk + b"MAGIC-PREFIX-123"
        assert decompress_block(compress_block(src), len(src)) == src


class TestContainer:
    def test_array_roundtrip(self, rng):
        data = (rng.integers(0, 3, size=(50, 20)) * 1000).astype(np.int32)
        lz = LZ4()
        back = lz.decompress(lz.compress(data))
        assert back.dtype == np.int32
        assert np.array_equal(back, data)

    def test_bytes_roundtrip(self):
        raw = b"scientific data reduction" * 300
        lz = LZ4()
        assert lz.decompress(lz.compress(raw)).tobytes() == raw

    def test_float_data_ratio_near_one(self, rng):
        """The paper's observation: LZ4 on floats ≈ 1.1× — no real
        reduction, hence no I/O acceleration in Fig. 17."""
        from repro.data import nyx_like

        data = nyx_like((24, 24, 24), seed=3)
        lz = LZ4()
        blob = lz.compress(data)
        ratio = lz.compression_ratio(data, blob)
        assert 0.9 < ratio < 1.6
        assert np.array_equal(lz.decompress(blob), data)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            LZ4().decompress(b"AAAA" + bytes(32))
