"""cuSZ-style baseline: dual-quantized Lorenzo + Huffman."""

import numpy as np
import pytest

from repro.core.config import Config, ErrorMode
from repro.compressors.baselines.sz import SZ, lorenzo_forward, lorenzo_inverse


class TestLorenzo:
    @pytest.mark.parametrize("shape", [(64,), (9, 13), (5, 6, 7), (3, 4, 5, 2)])
    def test_forward_inverse_exact(self, shape, rng):
        xq = rng.integers(-1000, 1000, size=shape).astype(np.int64)
        assert np.array_equal(lorenzo_inverse(lorenzo_forward(xq)), xq)

    def test_1d_is_first_difference(self):
        xq = np.array([3, 5, 4, 4], dtype=np.int64)
        assert np.array_equal(lorenzo_forward(xq), [3, 2, -1, 0])

    def test_2d_mixed_difference(self):
        xq = np.arange(9, dtype=np.int64).reshape(3, 3)
        delta = lorenzo_forward(xq)
        # interior of a bilinear ramp has zero mixed difference
        assert np.all(delta[1:, 1:] == 0)

    def test_smooth_data_small_deltas(self, smooth_2d):
        xq = np.round(smooth_2d / 0.01).astype(np.int64)
        delta = lorenzo_forward(xq)
        assert np.abs(delta[1:, 1:]).mean() < np.abs(xq).mean()


class TestSZCompressor:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3, 1e-4])
    def test_rel_error_bound_guaranteed(self, eb, smooth_3d):
        sz = SZ(Config(error_bound=eb, error_mode=ErrorMode.REL))
        blob = sz.compress(smooth_3d)
        vr = float(smooth_3d.max() - smooth_3d.min())
        assert sz.max_error(smooth_3d, blob) <= eb * vr

    def test_abs_bound_on_random_data(self, rng):
        data = rng.normal(size=(31, 17)) * 50
        sz = SZ(Config(error_bound=0.1, error_mode=ErrorMode.ABS))
        assert sz.max_error(data, sz.compress(data)) <= 0.1

    def test_bound_is_exact_by_construction(self, rng):
        """Even adversarial data satisfies |x - x'| ≤ eb exactly."""
        data = rng.uniform(-1, 1, size=1000) * 10.0 ** rng.integers(-3, 4, size=1000)
        data = data.astype(np.float64)
        sz = SZ(Config(error_bound=1e-3, error_mode=ErrorMode.ABS))
        assert sz.max_error(data, sz.compress(data)) <= 1e-3

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_dtype_preserved(self, dtype, smooth_2d):
        data = smooth_2d.astype(dtype)
        sz = SZ(Config(error_bound=1e-3))
        back = sz.decompress(sz.compress(data))
        assert back.dtype == dtype
        assert back.shape == data.shape

    def test_smooth_data_compresses_well(self, smooth_3d):
        sz = SZ(Config(error_bound=1e-2, error_mode=ErrorMode.REL))
        blob = sz.compress(smooth_3d)
        assert sz.compression_ratio(smooth_3d, blob) > 4

    def test_looser_bound_better_ratio(self, smooth_3d):
        r = []
        for eb in (1e-2, 1e-4):
            sz = SZ(Config(error_bound=eb, error_mode=ErrorMode.REL))
            r.append(sz.compression_ratio(smooth_3d, sz.compress(smooth_3d)))
        assert r[0] > r[1]

    def test_constant_field_tiny_stream(self):
        data = np.full((64, 64), 2.5, dtype=np.float32)
        sz = SZ(Config(error_bound=1e-3))
        blob = sz.compress(data)
        # One-symbol Huffman floors at 1 bit/value (512 B for 4096
        # values) plus a ~100 B header.
        assert len(blob) < data.nbytes / 20

    def test_1d_and_4d(self, rng):
        for shape in [(200,), (4, 5, 6, 7)]:
            data = rng.normal(size=shape)
            sz = SZ(Config(error_bound=0.01, error_mode=ErrorMode.ABS))
            assert sz.max_error(data, sz.compress(data)) <= 0.01

    def test_bad_dtype(self):
        with pytest.raises(TypeError):
            SZ().compress(np.zeros(4, dtype=np.int32))

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            SZ().decompress(b"NOPE" + bytes(64))
