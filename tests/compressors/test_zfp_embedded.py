"""Reference embedded bitplane coder (zfp's encode_ints/decode_ints)."""

import numpy as np
import pytest

from repro.compressors.zfp import ZFPX
from repro.compressors.zfp.embedded import (
    BitReader,
    BitWriter,
    ZFPEmbedded,
    decode_block_embedded,
    encode_block_embedded,
)


class TestBitIO:
    def test_bit_roundtrip(self):
        w = BitWriter()
        pattern = [1, 0, 1, 1, 0, 0, 1]
        for b in pattern:
            w.write_bit(b)
        r = BitReader(w.tobytes())
        assert [r.read_bit() for _ in pattern] == pattern

    def test_multibit_roundtrip(self):
        w = BitWriter()
        w.write_bits(0b1011010, 7)
        w.write_bits(0xFF, 8)
        r = BitReader(w.tobytes())
        assert r.read_bits(7) == 0b1011010
        assert r.read_bits(8) == 0xFF

    def test_write_bits_returns_shifted(self):
        w = BitWriter()
        assert w.write_bits(0b110101, 3) == 0b110

    def test_padding_and_overflow(self):
        w = BitWriter()
        w.write_bits(0b11, 2)
        assert len(w.tobytes(pad_to_bits=16)) == 2
        with pytest.raises(ValueError):
            w.tobytes(pad_to_bits=1)

    def test_read_past_end_returns_zero(self):
        r = BitReader(b"\x01")
        assert r.read_bits(8) == 1
        assert r.read_bits(16) == 0


class TestBlockCoder:
    @pytest.mark.parametrize("size", [4, 16, 64])
    def test_unlimited_budget_is_lossless(self, size, rng):
        vals = rng.integers(0, 2**31, size=size).astype(np.uint64)
        w = encode_block_embedded(vals, maxbits=10**6, maxprec=32)
        back = decode_block_embedded(BitReader(w.tobytes()), 10**6, 32, size)
        assert np.array_equal(back, vals)

    def test_truncation_keeps_top_planes(self, rng):
        vals = rng.integers(0, 2**31, size=16).astype(np.uint64)
        errs = []
        for budget in (64, 128, 256, 2048):
            w = encode_block_embedded(vals, budget, 32)
            back = decode_block_embedded(BitReader(w.tobytes()), budget, 32, 16)
            errs.append(int(np.max(np.abs(back.astype(np.int64)
                                          - vals.astype(np.int64)))))
        assert errs[0] >= errs[1] >= errs[2] >= errs[3]
        assert errs[-1] == 0

    def test_sparse_block_cheap(self):
        """One significant coefficient: group testing spends almost all
        budget on it rather than on the 63 zeros."""
        vals = np.zeros(64, dtype=np.uint64)
        vals[0] = 2**30
        w = encode_block_embedded(vals, maxbits=10**6, maxprec=32)
        # Lossless in far fewer bits than 64 coefficients × 32 planes.
        assert len(w) < 300
        back = decode_block_embedded(BitReader(w.tobytes()), 10**6, 32, 64)
        assert np.array_equal(back, vals)

    def test_zero_block_minimal(self):
        vals = np.zeros(16, dtype=np.uint64)
        w = encode_block_embedded(vals, maxbits=10**6, maxprec=32)
        assert len(w) <= 32  # one group-test zero per plane


class TestEmbeddedCodec:
    @pytest.fixture(scope="class")
    def field(self):
        axes = [np.linspace(0, 3 * np.pi, 16)] * 3
        x, y, z = np.meshgrid(*axes, indexing="ij")
        return (np.sin(x) * np.cos(y) * np.sin(z)).astype(np.float32)

    def test_high_rate_tiny_error(self, field):
        z = ZFPEmbedded(rate=24)
        back = z.decompress(z.compress(field))
        assert np.max(np.abs(back - field)) < 1e-6 * np.ptp(field)

    def test_beats_truncation_coder_at_low_rate(self, field):
        """The group-testing advantage: same bits, far smaller error."""
        for rate in (4, 8):
            emb = ZFPEmbedded(rate=rate)
            raw = ZFPX(rate=rate)
            e_emb = np.max(np.abs(emb.decompress(emb.compress(field)) - field))
            e_raw = np.max(np.abs(raw.decompress(raw.compress(field)) - field))
            assert e_emb < 0.5 * e_raw

    def test_fixed_stream_size(self, field, rng):
        z = ZFPEmbedded(rate=8)
        a = z.compress(field)
        b = z.compress(rng.normal(size=field.shape).astype(np.float32))
        assert len(a) == len(b)

    def test_float64(self, rng):
        data = rng.normal(size=(8, 8)).astype(np.float64)
        z = ZFPEmbedded(rate=40)
        back = z.decompress(z.compress(data))
        assert np.max(np.abs(back - data)) < 1e-9 * np.ptp(data)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZFPEmbedded(rate=0)
        with pytest.raises(ValueError):
            ZFPEmbedded(rate=8).decompress(b"XXXX" + bytes(64))
        with pytest.raises(TypeError):
            ZFPEmbedded(rate=8).compress(np.zeros(4, dtype=np.int32))
