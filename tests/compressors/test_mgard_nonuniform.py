"""MGARD-X on non-uniform tensor grids (a core MGARD capability)."""

import numpy as np
import pytest

from repro import Config, ErrorMode, MGARDX
from repro.compressors.mgard.decompose import decompose, recompose
from repro.compressors.mgard.hierarchy import Hierarchy


def stretched_coords(n: int, power: float = 2.0) -> np.ndarray:
    """Boundary-refined grid (classic CFD clustering)."""
    u = np.linspace(0, 1, n)
    return u**power


class TestNonUniformDecompose:
    def test_roundtrip_exact(self, rng):
        shape = (17, 12)
        coords = (stretched_coords(17), stretched_coords(12, 1.5))
        h = Hierarchy(shape, coords)
        data = rng.normal(size=shape)
        c, g = decompose(data, h)
        back = recompose(c, g, h)
        assert np.max(np.abs(back - data)) < 1e-9

    def test_linear_function_exact_on_any_grid(self):
        coords = (stretched_coords(21, 3.0),)
        h = Hierarchy((21,), coords)
        data = 5.0 * coords[0] + 1.0  # linear in physical space
        cfs, _ = decompose(data, h)
        for c in cfs:
            assert np.max(np.abs(c)) < 1e-10

    def test_uniform_and_nonuniform_differ(self, rng):
        data = rng.normal(size=(17,))
        hu = Hierarchy((17,))
        hn = Hierarchy((17,), (stretched_coords(17),))
        cu, _ = decompose(data, hu)
        cn, _ = decompose(data, hn)
        assert not np.allclose(cu[0], cn[0])


class TestNonUniformCompressor:
    def test_bound_holds_on_stretched_grid(self, rng):
        shape = (25, 19)
        coords = (stretched_coords(25), stretched_coords(19, 2.5))
        data = rng.normal(size=shape)
        c = MGARDX(Config(error_bound=0.02, error_mode=ErrorMode.ABS))
        blob = c.compress(data, coords=coords)
        back = c.decompress(blob, coords=coords)
        assert np.max(np.abs(back - data)) <= 0.02

    def test_smooth_physical_field_compresses_better_with_true_grid(self):
        """A field smooth in *physical* space looks rough on index space
        near the refined boundary; the true coordinates recover the
        smoothness and with it compression ratio."""
        n = 65
        x = stretched_coords(n, 3.0)
        data = np.sin(6.0 * x)
        cfg = Config(error_bound=1e-4, error_mode=ErrorMode.REL)
        with_grid = MGARDX(cfg)
        blob_grid = with_grid.compress(data, coords=(x,))
        without = MGARDX(cfg)
        blob_index = without.compress(data)
        assert len(blob_grid) <= len(blob_index)

    def test_coords_cached_separately(self, rng):
        data = rng.normal(size=(17,))
        c = MGARDX(Config(error_bound=0.1, error_mode=ErrorMode.ABS))
        c.compress(data)
        misses = c.cache.misses
        c.compress(data, coords=(stretched_coords(17),))
        assert c.cache.misses > misses  # different hierarchy context

    def test_coords_validation(self, rng):
        data = rng.normal(size=(8, 8))
        c = MGARDX()
        with pytest.raises(ValueError):
            c.compress(data, coords=(np.arange(8.0),))  # wrong count
        with pytest.raises(ValueError):
            c.compress(data, coords=(np.arange(8.0), np.arange(7.0)))
        with pytest.raises(ValueError):
            # non-monotone coordinates rejected by the hierarchy
            bad = np.array([0.0, 2.0, 1.0, 3.0, 4.0, 5.0, 6.0, 7.0])
            c.compress(data, coords=(bad, np.arange(8.0)))
