"""MGARD 1-D operators: lerp, mass matrix, restriction, Thomas solver."""

import numpy as np
import pytest

from repro.compressors.mgard.hierarchy import DimHierarchy
from repro.compressors.mgard.ops1d import (
    TridiagFactors,
    lerp_fill,
    mass_apply,
    prolong,
    restrict,
)


def mass_matrix(coords: np.ndarray) -> np.ndarray:
    """Dense P1 mass matrix for verification."""
    n = coords.size
    h = np.diff(coords)
    M = np.zeros((n, n))
    for i in range(n - 1):
        M[i, i] += h[i] / 3
        M[i + 1, i + 1] += h[i] / 3
        M[i, i + 1] += h[i] / 6
        M[i + 1, i] += h[i] / 6
    return M


class TestLerpFill:
    def test_linear_function_reproduced_exactly(self):
        """P1 interpolation is exact on linear data → coefficients 0."""
        lvl = DimHierarchy(17).level(0)
        u = 3.0 * np.arange(17) + 2.0
        approx = u.copy()
        lerp_fill(approx, lvl, 0)
        assert np.allclose(approx, u)

    def test_2d_axis_selection(self, rng):
        lvl = DimHierarchy(9).level(0)
        u = rng.normal(size=(9, 4))
        v = u.copy()
        lerp_fill(v, lvl, 0)
        # Coarse rows untouched; fine rows replaced by neighbor means.
        assert np.allclose(v[lvl.coarse_idx], u[lvl.coarse_idx])
        assert np.allclose(v[1], 0.5 * (u[0] + u[2]))

    def test_nonuniform_weights(self):
        coords = np.array([0.0, 0.25, 1.0])
        lvl = DimHierarchy(3, coords).level(0)
        u = np.array([0.0, 99.0, 4.0])
        lerp_fill(u, lvl, 0)
        assert u[1] == pytest.approx(1.0)  # 0 + 0.25 * (4 - 0)


class TestMassApply:
    def test_matches_dense_matrix(self, rng):
        for n in (5, 8, 13):
            d = DimHierarchy(n)
            lvl = d.level(0)
            u = rng.normal(size=n)
            y = mass_apply(u, lvl, 0)
            assert np.allclose(y, mass_matrix(lvl.coords) @ u)

    def test_along_second_axis(self, rng):
        d = DimHierarchy(7)
        lvl = d.level(0)
        u = rng.normal(size=(3, 7))
        y = mass_apply(u, lvl, 1)
        M = mass_matrix(lvl.coords)
        assert np.allclose(y, u @ M.T)


class TestRestrictProlong:
    def test_restrict_is_prolong_transpose(self, rng):
        """⟨P^T y, b⟩ = ⟨y, P b⟩ — adjointness on random vectors."""
        d = DimHierarchy(11)
        lvl = d.level(0)
        y = rng.normal(size=11)
        b = rng.normal(size=lvl.n_coarse)
        lhs = np.dot(restrict(y, lvl, 0), b)
        rhs = np.dot(y, prolong(b, lvl, 0))
        assert lhs == pytest.approx(rhs)

    def test_prolong_shape(self, rng):
        lvl = DimHierarchy(9).level(0)
        b = rng.normal(size=(5,))
        assert prolong(b, lvl, 0).shape == (9,)

    def test_restrict_multi_axis(self, rng):
        d0, d1 = DimHierarchy(9), DimHierarchy(7)
        u = rng.normal(size=(9, 7))
        r0 = restrict(u, d0.level(0), 0)
        assert r0.shape == (5, 7)
        r01 = restrict(r0, d1.level(0), 1)
        assert r01.shape == (5, 4)


class TestTridiagSolve:
    def test_solver_matches_numpy(self, rng):
        for n in (2, 3, 5, 9, 17):
            coords = np.sort(rng.uniform(0, 10, size=n))
            f = TridiagFactors.from_coords(coords)
            M = mass_matrix(coords)
            b = rng.normal(size=n)
            x = f.solve_along(b, axis=0)
            assert np.allclose(x, np.linalg.solve(M, b), rtol=1e-10)

    def test_solve_along_higher_axis(self, rng):
        coords = np.arange(9.0)
        f = TridiagFactors.from_coords(coords)
        M = mass_matrix(coords)
        b = rng.normal(size=(4, 9, 3))
        x = f.solve_along(b, axis=1)
        expect = np.einsum("ij,ajb->aib", np.linalg.inv(M), b)
        assert np.allclose(x, expect)

    def test_length_mismatch(self, rng):
        f = TridiagFactors.from_coords(np.arange(5.0))
        with pytest.raises(ValueError):
            f.solve_along(rng.normal(size=4), axis=0)

    def test_solve_uses_iterative_abstraction(self, rng):
        """The solve dispatches through a device adapter (GEM groups)."""
        from repro.adapters import get_adapter

        adapter = get_adapter("cuda")
        f = TridiagFactors.from_coords(np.arange(9.0))
        f.solve_along(rng.normal(size=(9, 20)), axis=0, adapter=adapter)
        assert any(r.name == "mgard.tridiag" for r in adapter.trace)
