"""ZFP building blocks: fixed point, lifting transform, negabinary,
bitplane coding."""

import numpy as np
import pytest

from repro.compressors.zfp.bitplane import (
    INTPREC,
    decode_blocks,
    encode_blocks,
    from_negabinary,
    to_negabinary,
)
from repro.compressors.zfp.fixedpoint import (
    block_exponents,
    from_fixed_point,
    to_fixed_point,
)
from repro.compressors.zfp.transform import (
    fwd_lift,
    fwd_transform,
    inv_lift,
    inv_transform,
    sequency_order,
)


class TestFixedPoint:
    def test_exponent_bounds_magnitude(self, rng):
        blocks = rng.normal(size=(20, 64)).astype(np.float32) * 100
        emax = block_exponents(blocks)
        assert np.all(np.abs(blocks).max(axis=1) < 2.0 ** emax.astype(np.float64))

    def test_zero_block_exponent(self):
        blocks = np.zeros((2, 16), dtype=np.float32)
        emax = block_exponents(blocks)
        assert np.all(emax == -126)  # clipped to -bias+1

    def test_fixed_point_magnitude_under_q(self, rng):
        for dt, q in ((np.float32, 30), (np.float64, 62)):
            blocks = (rng.normal(size=(10, 64)) * 1e5).astype(dt)
            emax = block_exponents(blocks)
            ib = to_fixed_point(blocks, emax)
            assert np.all(np.abs(ib) < 2**q)

    def test_roundtrip_precision(self, rng):
        blocks = rng.normal(size=(10, 64)).astype(np.float64)
        emax = block_exponents(blocks)
        back = from_fixed_point(to_fixed_point(blocks, emax), emax, np.float64)
        # Truncation error ≤ 1 ulp of the fixed-point grid.
        scale = 2.0 ** (emax.astype(np.float64) - 62)
        assert np.all(np.abs(back - blocks) <= scale[:, None] * 1.0001)

    def test_unsupported_dtype(self):
        with pytest.raises(TypeError):
            to_fixed_point(np.zeros((1, 4), dtype=np.int32), np.zeros(1, np.int32))


class TestLifting:
    def test_fwd_lift_requires_length4(self):
        with pytest.raises(ValueError):
            fwd_lift(np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            inv_lift(np.zeros((2, 5), dtype=np.int64))

    def test_lift_nearly_invertible(self, rng):
        """zfp's lifting drops low bits in shifts: |error| stays tiny."""
        v = rng.integers(-(2**28), 2**28, size=(100, 4)).astype(np.int64)
        err = np.abs(inv_lift(fwd_lift(v)) - v)
        assert err.max() <= 4

    def test_transform_error_negligible_at_scale(self, rng):
        """Relative transform error is ~2^-26 of the fixed-point range."""
        for ndim in (1, 2, 3):
            ib = rng.integers(-(2**29), 2**29, size=(50, 4**ndim)).astype(np.int64)
            back = inv_transform(fwd_transform(ib, ndim), ndim)
            assert np.abs(back - ib).max() <= 64

    def test_transform_decorrelates_smooth_ramp(self):
        """A linear ramp concentrates energy in low-sequency coeffs."""
        ramp = np.arange(64, dtype=np.int64).reshape(1, 64) * 1000
        coeffs = fwd_transform(ramp, 3)
        head = np.abs(coeffs[0, :8]).sum()
        tail = np.abs(coeffs[0, 32:]).sum()
        assert head > tail

    def test_sequency_order_is_permutation(self):
        for ndim in (1, 2, 3, 4):
            p = sequency_order(ndim)
            assert sorted(p) == list(range(4**ndim))

    def test_sequency_order_starts_with_dc(self):
        for ndim in (1, 2, 3):
            assert sequency_order(ndim)[0] == 0

    def test_sequency_bad_ndim(self):
        with pytest.raises(ValueError):
            sequency_order(5)


class TestNegabinary:
    @pytest.mark.parametrize("width", [32, 64])
    def test_roundtrip(self, width, rng):
        lim = 2 ** (width - 2)
        x = rng.integers(-lim, lim, size=5000).astype(np.int64)
        assert np.array_equal(from_negabinary(to_negabinary(x, width), width), x)

    def test_small_values_have_leading_zeros(self):
        """The property zfp exploits: small |x| → high bits zero."""
        x = np.array([0, 1, -1, 2, -2, 3, -3], dtype=np.int64)
        neg = to_negabinary(x, 32)
        assert np.all(neg < 16)

    def test_zero_maps_to_zero(self):
        assert to_negabinary(np.array([0]), 64)[0] == 0


class TestBitplaneCoding:
    def test_full_rate_roundtrip_fp32(self, rng):
        coeffs = rng.integers(-(2**20), 2**20, size=(30, 16)).astype(np.int64)
        emax = rng.integers(-10, 10, size=30).astype(np.int32)
        maxbits = 1 + 8 + 32 * 16  # full precision
        rec = encode_blocks(coeffs, emax, maxbits, np.float32)
        c2, e2 = decode_blocks(rec, maxbits, 16, np.float32)
        assert np.array_equal(c2, coeffs)
        assert np.array_equal(e2, emax)

    def test_truncation_shrinks_magnitude_error(self, rng):
        coeffs = rng.integers(-(2**24), 2**24, size=(50, 16)).astype(np.int64)
        emax = np.zeros(50, dtype=np.int32)
        errs = []
        for planes in (8, 16, 24, 32):
            maxbits = 1 + 8 + planes * 16
            rec = encode_blocks(coeffs, emax, maxbits, np.float32)
            c2, _ = decode_blocks(rec, maxbits, 16, np.float32)
            errs.append(np.abs(c2 - coeffs).max())
        assert all(a >= b for a, b in zip(errs, errs[1:]))

    def test_records_have_fixed_size(self, rng):
        coeffs = rng.integers(-100, 100, size=(7, 64)).astype(np.int64)
        emax = np.zeros(7, dtype=np.int32)
        rec = encode_blocks(coeffs, emax, 515, np.float32)
        assert rec.shape == (7, -(-515 // 8))

    def test_zero_block_flag(self):
        coeffs = np.zeros((3, 16), dtype=np.int64)
        emax = np.full(3, -127, dtype=np.int32)
        rec = encode_blocks(coeffs, emax, 64, np.float32)
        assert np.all(rec == 0)
        c2, _ = decode_blocks(rec, 64, 16, np.float32)
        assert np.all(c2 == 0)

    def test_header_must_fit(self):
        with pytest.raises(ValueError):
            encode_blocks(np.zeros((1, 16), dtype=np.int64),
                          np.zeros(1, dtype=np.int32), 8, np.float32)
