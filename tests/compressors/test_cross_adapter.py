"""Cross-adapter portability — the framework's central guarantee.

Data reduced on any backend must reconstruct bit-exactly on every other
backend (paper Section II-B: without portability, "data reduced by one
type of processor cannot be reconstructed by another type of processor
with a guarantee").
"""

import itertools

import numpy as np
import pytest

from repro import MGARDX, SZ, ZFPX, Config, ErrorMode, HuffmanX, get_adapter

FAMILIES = ["serial", "openmp", "cuda", "hip"]


@pytest.fixture(scope="module")
def field():
    axes = [np.linspace(0, 2 * np.pi, 20)] * 3
    x, y, z = np.meshgrid(*axes, indexing="ij")
    return (np.sin(x) + np.cos(y) * np.sin(2 * z)).astype(np.float32)


class TestStreamEquality:
    """Same input → byte-identical stream on every adapter."""

    def test_mgard_streams_equal(self, field):
        cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
        blobs = {
            fam: MGARDX(cfg, adapter=get_adapter(fam)).compress(field)
            for fam in FAMILIES
        }
        ref = blobs["serial"]
        assert all(b == ref for b in blobs.values())

    def test_zfp_streams_equal(self, field):
        blobs = {
            fam: ZFPX(rate=10, adapter=get_adapter(fam)).compress(field)
            for fam in FAMILIES
        }
        ref = blobs["serial"]
        assert all(b == ref for b in blobs.values())

    def test_huffman_streams_equal(self, rng):
        keys = rng.integers(0, 50, size=3000).astype(np.int64)
        blobs = {
            fam: HuffmanX(adapter=get_adapter(fam)).compress_keys(keys, 64)
            for fam in FAMILIES
        }
        ref = blobs["serial"]
        assert all(b == ref for b in blobs.values())

    def test_sz_streams_equal(self, field):
        cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
        blobs = {
            fam: SZ(cfg, adapter=get_adapter(fam)).compress(field)
            for fam in FAMILIES
        }
        ref = blobs["serial"]
        assert all(b == ref for b in blobs.values())


class TestCrossDecode:
    """Compress on A, decompress on B, for every ordered pair."""

    @pytest.mark.parametrize("src,dst", list(itertools.permutations(FAMILIES, 2)))
    def test_mgard_pairwise(self, src, dst, field):
        cfg = Config(error_bound=1e-2, error_mode=ErrorMode.REL)
        blob = MGARDX(cfg, adapter=get_adapter(src)).compress(field)
        back = MGARDX(cfg, adapter=get_adapter(dst)).decompress(blob)
        assert np.max(np.abs(back - field)) <= 1e-2 * np.ptp(field)

    def test_zfp_gpu_to_cpu(self, field):
        blob = ZFPX(rate=12, adapter=get_adapter("cuda")).compress(field)
        back = ZFPX(rate=12, adapter=get_adapter("openmp")).decompress(blob)
        ref = ZFPX(rate=12, adapter=get_adapter("serial")).decompress(blob)
        assert np.array_equal(back, ref)  # identical reconstruction

    def test_strict_serial_oracle_agrees(self, field):
        """The per-block oracle confirms functor purity on real kernels."""
        strict = get_adapter("serial", strict=True)
        batched = get_adapter("cuda")
        a = ZFPX(rate=10, adapter=strict).compress(field)
        b = ZFPX(rate=10, adapter=batched).compress(field)
        assert a == b
