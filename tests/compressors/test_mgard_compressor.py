"""MGARD-X compressor: error bounds, formats, CMM integration."""

import numpy as np
import pytest

from repro.core.config import Config, ErrorMode
from repro.core.context import ContextCache
from repro.compressors.mgard.compressor import MGARDX
from repro.compressors.mgard.quantize import from_symbols, to_symbols


class TestErrorBound:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3, 1e-4])
    def test_rel_bound_holds_smooth(self, eb, smooth_3d):
        c = MGARDX(Config(error_bound=eb, error_mode=ErrorMode.REL))
        blob = c.compress(smooth_3d)
        vr = float(smooth_3d.max() - smooth_3d.min())
        assert c.max_error(smooth_3d, blob) <= eb * vr

    def test_abs_bound_holds_random(self, rng):
        data = rng.normal(size=(19, 23))
        c = MGARDX(Config(error_bound=0.03, error_mode=ErrorMode.ABS))
        blob = c.compress(data)
        assert c.max_error(data, blob) <= 0.03

    @pytest.mark.parametrize("shape", [(50,), (13, 17), (9, 8, 7), (5, 4, 6, 3)])
    def test_bound_across_dimensionalities(self, shape, rng):
        data = rng.normal(size=shape)
        c = MGARDX(Config(error_bound=0.01, error_mode=ErrorMode.ABS))
        assert c.max_error(data, c.compress(data)) <= 0.01

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_dtypes(self, dtype, smooth_2d):
        data = smooth_2d.astype(dtype)
        c = MGARDX(Config(error_bound=1e-3, error_mode=ErrorMode.REL))
        blob = c.compress(data)
        back = c.decompress(blob)
        assert back.dtype == dtype
        assert c.max_error(data, blob) <= 1e-3 * np.ptp(data) + 1e-6

    def test_verify_mode_tightens_until_met(self, rng):
        data = rng.normal(size=(15, 15)) * 100
        c = MGARDX(Config(error_bound=0.5, error_mode=ErrorMode.ABS),
                   kappa=0.01, verify=True)  # absurdly loose kappa
        blob = c.compress(data)
        assert c.max_error(data, blob) <= 0.5

    def test_constant_field(self):
        data = np.full((9, 9), 5.0, dtype=np.float64)
        c = MGARDX(Config(error_bound=1e-3, error_mode=ErrorMode.REL))
        blob = c.compress(data)
        assert c.max_error(data, blob) <= 1e-3


class TestCompressionBehaviour:
    def test_smooth_better_than_random(self, smooth_3d, rng):
        c = MGARDX(Config(error_bound=1e-3, error_mode=ErrorMode.REL))
        smooth_ratio = smooth_3d.nbytes / len(c.compress(smooth_3d))
        noise = rng.normal(size=smooth_3d.shape).astype(np.float32)
        c2 = MGARDX(Config(error_bound=1e-3, error_mode=ErrorMode.REL))
        noise_ratio = noise.nbytes / len(c2.compress(noise))
        assert smooth_ratio > noise_ratio

    def test_looser_bound_better_ratio(self, smooth_3d):
        sizes = []
        for eb in (1e-2, 1e-4):
            c = MGARDX(Config(error_bound=eb, error_mode=ErrorMode.REL))
            sizes.append(len(c.compress(smooth_3d)))
        assert sizes[0] < sizes[1]

    def test_lossless_none_mode(self, rng):
        """lossless='none' stores raw symbols; still bound-correct."""
        data = rng.normal(size=(12, 12))
        c = MGARDX(Config(error_bound=0.01, error_mode=ErrorMode.ABS,
                          lossless="none"))
        assert c.max_error(data, c.compress(data)) <= 0.01

    def test_outlier_channel_roundtrip(self, rng):
        """Spiky data forces escape symbols; the bound must still hold."""
        data = rng.normal(size=(20, 20))
        data[5, 5] = 1e6
        data[10, 3] = -1e6
        c = MGARDX(Config(error_bound=0.5, error_mode=ErrorMode.ABS),
                   dict_size=64)
        assert c.max_error(data, c.compress(data)) <= 0.5


class TestContextCaching:
    def test_repeated_compression_hits_cache(self, smooth_2d):
        cache = ContextCache()
        c = MGARDX(Config(error_bound=1e-3), context_cache=cache)
        c.compress(smooth_2d)
        misses = cache.misses
        c.compress(smooth_2d)
        assert cache.misses == misses  # no new context built

    def test_different_shapes_different_contexts(self, rng):
        cache = ContextCache()
        c = MGARDX(Config(error_bound=1e-3, error_mode=ErrorMode.ABS),
                   context_cache=cache)
        c.compress(rng.normal(size=(8, 8)))
        c.compress(rng.normal(size=(16, 8)))
        assert cache.misses >= 2

    def test_decompress_reuses_compress_context(self, smooth_2d):
        cache = ContextCache()
        c = MGARDX(Config(error_bound=1e-3), context_cache=cache)
        blob = c.compress(smooth_2d)
        misses = cache.misses
        c.decompress(blob)
        assert cache.misses == misses


class TestValidation:
    def test_bad_dtype(self):
        c = MGARDX()
        with pytest.raises(TypeError):
            c.compress(np.zeros((4, 4), dtype=np.int64))

    def test_bad_ndim(self):
        c = MGARDX()
        with pytest.raises(ValueError):
            c.compress(np.zeros((2,) * 5, dtype=np.float32))

    def test_bad_magic(self):
        c = MGARDX()
        with pytest.raises(ValueError):
            c.decompress(b"JUNK" + bytes(128))

    def test_bad_dict_size(self):
        with pytest.raises(ValueError):
            MGARDX(dict_size=1)
        with pytest.raises(ValueError):
            MGARDX(dict_size=1 << 17)


class TestSymbolMapping:
    def test_zigzag_roundtrip(self, rng):
        q = rng.integers(-1000, 1000, size=500).astype(np.int64)
        syms, outliers = to_symbols(q, 4096)
        assert np.array_equal(from_symbols(syms, outliers), q)

    def test_outliers_escape(self):
        q = np.array([0, 5, 100000, -3], dtype=np.int64)
        syms, outliers = to_symbols(q, 16)
        assert syms[2] == 0
        assert list(outliers) == [100000]
        assert np.array_equal(from_symbols(syms, outliers), q)

    def test_outlier_count_mismatch_rejected(self):
        q = np.array([100000], dtype=np.int64)
        syms, outliers = to_symbols(q, 16)
        with pytest.raises(ValueError):
            from_symbols(syms, outliers[:0])

    def test_all_values_in_dict(self, rng):
        q = rng.integers(-5, 6, size=100).astype(np.int64)
        syms, outliers = to_symbols(q, 4096)
        assert outliers.size == 0
        assert np.all(syms > 0)


class TestSmoothnessParameter:
    def test_s_zero_matches_default(self, smooth_2d):
        cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
        a = MGARDX(cfg).compress(smooth_2d)
        b = MGARDX(cfg, s=0.0).compress(smooth_2d)
        assert a == b

    @pytest.mark.parametrize("s", [0.5, 1.0, -0.5])
    def test_bound_holds_for_any_s(self, s, rng):
        """The budget redistribution preserves the total error budget."""
        data = rng.normal(size=(21, 17))
        c = MGARDX(Config(error_bound=0.02, error_mode=ErrorMode.ABS), s=s)
        assert c.max_error(data, c.compress(data)) <= 0.02

    def test_s_changes_stream(self, smooth_2d):
        cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
        a = MGARDX(cfg, s=0.0).compress(smooth_2d)
        b = MGARDX(cfg, s=1.0).compress(smooth_2d)
        assert a != b

    def test_positive_s_helps_fine_scale_noise(self, rng):
        """With fine-scale noise on a smooth background, s>0 spends the
        budget where it buys compression: the noisy finest level."""
        x, y = np.meshgrid(*[np.linspace(0, 2 * np.pi, 48)] * 2, indexing="ij")
        data = np.sin(x) * np.cos(y) + 0.002 * rng.normal(size=(48, 48))
        cfg = Config(error_bound=2e-3, error_mode=ErrorMode.REL)
        size0 = len(MGARDX(cfg, s=0.0).compress(data))
        size1 = len(MGARDX(cfg, s=1.0).compress(data))
        assert size1 < size0
