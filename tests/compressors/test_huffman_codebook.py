"""Huffman two-phase codebook generation."""

import numpy as np
import pytest

from repro.compressors.huffman.codebook import (
    MAX_CODE_LENGTH,
    Codebook,
    build_codebook,
    canonical_codes,
    huffman_code_lengths,
)


def kraft(lengths: np.ndarray) -> float:
    used = lengths[lengths > 0].astype(np.float64)
    return float(np.sum(2.0 ** -used))


class TestCodeLengths:
    def test_uniform_frequencies_balanced(self):
        ls = huffman_code_lengths(np.full(8, 10, dtype=np.int64))
        assert np.all(ls == 3)

    def test_skewed_frequencies_short_code_for_frequent(self):
        freqs = np.array([1000, 10, 10, 10], dtype=np.int64)
        ls = huffman_code_lengths(freqs)
        assert ls[0] == ls.min()
        assert kraft(ls) <= 1.0 + 1e-12

    def test_zero_frequency_gets_no_code(self):
        freqs = np.array([5, 0, 3, 0], dtype=np.int64)
        ls = huffman_code_lengths(freqs)
        assert ls[1] == 0 and ls[3] == 0
        assert ls[0] > 0 and ls[2] > 0

    def test_single_symbol(self):
        ls = huffman_code_lengths(np.array([42], dtype=np.int64))
        assert list(ls) == [1]

    def test_two_symbols(self):
        ls = huffman_code_lengths(np.array([1, 99], dtype=np.int64))
        assert list(ls) == [1, 1]

    def test_empty_histogram(self):
        ls = huffman_code_lengths(np.zeros(16, dtype=np.int64))
        assert np.all(ls == 0)

    def test_fibonacci_worst_case_length_limited(self):
        """Fibonacci frequencies force maximal skew; the limiter must
        clamp to MAX_CODE_LENGTH with a valid Kraft sum."""
        fib = [1, 1]
        for _ in range(38):
            fib.append(fib[-1] + fib[-2])
        ls = huffman_code_lengths(np.array(fib, dtype=np.int64))
        assert ls.max() <= MAX_CODE_LENGTH
        assert kraft(ls) <= 1.0 + 1e-12

    def test_optimality_vs_entropy(self):
        """Expected length within 1 bit of entropy (Huffman guarantee)."""
        rng = np.random.default_rng(0)
        freqs = rng.integers(1, 1000, size=64).astype(np.int64)
        ls = huffman_code_lengths(freqs)
        p = freqs / freqs.sum()
        entropy = -np.sum(p * np.log2(p))
        expected_len = np.sum(p * ls)
        assert entropy <= expected_len + 1e-9 <= entropy + 1 + 1e-9

    def test_negative_frequencies_rejected(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.array([-1, 2], dtype=np.int64))

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.ones((2, 2), dtype=np.int64))


class TestCanonicalCodes:
    def test_prefix_free(self):
        rng = np.random.default_rng(1)
        freqs = rng.integers(0, 500, size=100).astype(np.int64)
        book = build_codebook(freqs)
        used = np.flatnonzero(book.lengths)
        codes = [
            format(book.codes[s], f"0{book.lengths[s]}b") for s in used
        ]
        for i, a in enumerate(codes):
            for j, b in enumerate(codes):
                if i != j:
                    assert not b.startswith(a), (a, b)

    def test_canonical_ordering(self):
        """Within a length, codes increase with symbol index."""
        freqs = np.array([10, 10, 10, 10], dtype=np.int64)
        book = build_codebook(freqs)
        assert list(book.codes) == [0, 1, 2, 3]

    def test_codes_from_lengths_only(self):
        """Decoder-side reconstruction: same lengths → same codes."""
        freqs = np.array([7, 1, 3, 9, 9, 2], dtype=np.int64)
        book = build_codebook(freqs)
        again = canonical_codes(book.lengths)
        assert np.array_equal(book.codes, again)


class TestDecodeTable:
    def test_table_decodes_every_code(self):
        freqs = np.array([50, 20, 20, 5, 5], dtype=np.int64)
        book = build_codebook(freqs)
        sym, ln, width = book.decode_table()
        for s in np.flatnonzero(book.lengths):
            l = int(book.lengths[s])
            window = int(book.codes[s]) << (width - l)
            assert sym[window] == s
            assert ln[window] == l

    def test_width_too_small_rejected(self):
        book = build_codebook(np.array([1, 1, 1, 1], dtype=np.int64))
        with pytest.raises(ValueError):
            book.decode_table(width=1)

    def test_kraft_sum_property(self):
        book = build_codebook(np.array([3, 3, 2], dtype=np.int64))
        assert book.kraft_sum() <= 1.0 + 1e-12
