"""Huffman-X end-to-end: bitstream, chunked decode, container format."""

import numpy as np
import pytest

from repro.compressors.huffman import HuffmanX, gather_windows, pack_bits


class TestBitstream:
    def test_pack_single_code(self):
        out = pack_bits(np.array([0b101]), np.array([3]))
        assert out[0] == 0b10100000

    def test_pack_across_byte_boundary(self):
        out = pack_bits(np.array([0b11111, 0b0001]), np.array([5, 4]))
        # stream: 11111 0001 → bytes 11111000 1xxxxxxx
        assert out[0] == 0b11111000
        assert out[1] == 0b10000000

    def test_zero_length_codes_write_nothing(self):
        out = pack_bits(np.array([7, 0, 3]), np.array([3, 0, 2]))
        # 111 then 11 → 11111xxx
        assert out[0] == 0b11111000

    def test_gather_windows_roundtrip(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(1, 12, size=200)
        codes = np.array([rng.integers(0, 1 << l) for l in lengths], dtype=np.uint64)
        packed = pack_bits(codes, lengths)
        offsets = np.cumsum(lengths) - lengths
        win = gather_windows(packed, offsets, 16)
        for i, (c, l) in enumerate(zip(codes, lengths)):
            assert win[i] >> (16 - l) == c

    def test_gather_past_end_reads_zero(self):
        packed = np.array([0xFF], dtype=np.uint8)
        win = gather_windows(packed, np.array([100]), 8)
        assert win[0] == 0

    def test_gather_bad_width(self):
        with pytest.raises(ValueError):
            gather_windows(np.zeros(4, dtype=np.uint8), np.array([0]), 25)
        with pytest.raises(ValueError):
            gather_windows(np.zeros(4, dtype=np.uint8), np.array([0]), 0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            gather_windows(np.zeros(4, dtype=np.uint8), np.array([-1]), 8)

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([1, 2]), np.array([3]))


class TestRoundTrip:
    @pytest.mark.parametrize("n", [0, 1, 7, 255, 256, 4096, 10_000])
    def test_sizes(self, n, rng):
        keys = rng.integers(0, 64, size=n).astype(np.int32)
        h = HuffmanX(chunk_size=256)
        assert np.array_equal(h.decompress_keys(h.compress_keys(keys, 64)), keys)

    def test_nd_shape_restored(self, rng):
        keys = rng.integers(0, 10, size=(6, 7, 8)).astype(np.int16)
        h = HuffmanX()
        back = h.decompress_keys(h.compress_keys(keys, 10))
        assert back.shape == (6, 7, 8)
        assert back.dtype == np.int16
        assert np.array_equal(back, keys)

    def test_single_symbol_stream(self):
        keys = np.full(1000, 3, dtype=np.int64)
        h = HuffmanX()
        assert np.array_equal(h.decompress_keys(h.compress_keys(keys, 8)), keys)

    def test_geometric_distribution_compresses(self, rng):
        keys = np.minimum(rng.geometric(0.5, size=20_000) - 1, 255).astype(np.int64)
        h = HuffmanX()
        blob = h.compress_keys(keys, 256)
        assert len(blob) < keys.size  # < 1 byte per 8-byte symbol
        assert np.array_equal(h.decompress_keys(blob), keys)

    def test_uniform_distribution_near_log2(self, rng):
        keys = rng.integers(0, 16, size=50_000).astype(np.int64)
        h = HuffmanX()
        blob = h.compress_keys(keys, 16)
        payload_bits = 8 * len(blob)
        assert payload_bits / keys.size < 4.5  # ~log2(16)=4 bits/key + overhead

    def test_keys_out_of_range_rejected(self, rng):
        h = HuffmanX()
        with pytest.raises(ValueError):
            h.compress_keys(np.array([0, 5]), 4)
        with pytest.raises(ValueError):
            h.compress_keys(np.array([-1, 0]), 4)

    def test_non_integer_keys_rejected(self):
        h = HuffmanX()
        with pytest.raises(TypeError):
            h.compress_keys(np.array([1.5]), 4)

    def test_chunk_size_from_stream(self, rng):
        keys = rng.integers(0, 8, size=5000).astype(np.int64)
        blob = HuffmanX(chunk_size=128).compress_keys(keys, 8)
        # A decoder configured differently adopts the stream's chunking.
        back = HuffmanX(chunk_size=4096).decompress_keys(blob)
        assert np.array_equal(back, keys)

    def test_decompress_does_not_mutate_chunk_size(self, rng):
        keys = rng.integers(0, 8, size=5000).astype(np.int64)
        blob = HuffmanX(chunk_size=128).compress_keys(keys, 8)
        h = HuffmanX(chunk_size=4096)
        h.decompress_keys(blob)
        # The stream's chunking must not leak into the decoder instance:
        # how it *encodes* is configuration, not whatever it last read.
        assert h.chunk_size == 4096
        assert len(HuffmanX(chunk_size=4096).compress_keys(keys, 8)) == len(
            h.compress_keys(keys, 8)
        )

    def test_overlong_code_length_rejected(self):
        from repro.compressors.huffman.codebook import MAX_CODE_LENGTH, Codebook

        h = HuffmanX()
        lengths = np.array([MAX_CODE_LENGTH + 9, 2], dtype=np.uint8)
        book = Codebook(codes=np.zeros(2, dtype=np.uint64), lengths=lengths)
        blob = h._serialize(
            (4,), np.dtype(np.int64), 2, 4, book,
            np.zeros(1, dtype=np.uint64), np.zeros(1, dtype=np.uint8), 256,
        )
        with pytest.raises(ValueError, match="24"):
            h.decompress_keys(blob)


class TestByteLevel:
    def test_lossless_float_array(self, rng):
        data = rng.normal(size=(40, 25)).astype(np.float64)
        h = HuffmanX()
        back = h.decompress(h.compress(data))
        assert back.dtype == np.float64
        assert np.array_equal(back, data)

    def test_lossless_bytes(self):
        raw = b"the quick brown fox" * 100
        h = HuffmanX()
        back = h.decompress(h.compress(raw))
        assert back.tobytes() == raw

    def test_bad_magic(self):
        h = HuffmanX()
        with pytest.raises(ValueError):
            h.decompress_keys(b"XXXX" + b"\x00" * 64)

    def test_compression_ratio_helper(self, rng):
        data = np.zeros((100,), dtype=np.float32)
        h = HuffmanX()
        blob = h.compress(data)
        assert h.compression_ratio(data, blob) > 1.0


class TestAdapterPortability:
    @pytest.mark.parametrize("family", ["serial", "openmp", "cuda", "hip"])
    def test_identical_streams_across_adapters(self, family, rng):
        from repro.adapters import get_adapter

        keys = rng.integers(0, 32, size=4000).astype(np.int64)
        reference = HuffmanX().compress_keys(keys, 32)
        other = HuffmanX(adapter=get_adapter(family)).compress_keys(keys, 32)
        assert reference == other  # bit-exact portability

    def test_cross_decode(self, rng):
        from repro.adapters import get_adapter

        keys = rng.integers(0, 100, size=3000).astype(np.int64)
        blob = HuffmanX(adapter=get_adapter("cuda")).compress_keys(keys, 128)
        back = HuffmanX(adapter=get_adapter("openmp")).decompress_keys(blob)
        assert np.array_equal(back, keys)

    def test_parallel_container_decodes_on_serial(self, rng):
        from repro.adapters import get_adapter

        # Large enough for several HUFP segments; num_threads is pinned
        # so the parallel container triggers even on single-core hosts.
        raw = rng.integers(0, 256, size=300_000).astype(np.uint8).tobytes()
        par = HuffmanX(adapter=get_adapter("openmp", num_threads=4))
        blob = par.compress(raw)
        assert b"HUFP" in blob[:64]  # chunk-parallel container chosen
        assert HuffmanX().decompress(blob).tobytes() == raw
        assert par.decompress(blob).tobytes() == raw

    def test_serial_container_decodes_on_openmp(self, rng):
        from repro.adapters import get_adapter

        raw = rng.integers(0, 256, size=300_000).astype(np.uint8).tobytes()
        blob = HuffmanX().compress(raw)
        assert b"HUFP" not in blob[:64]  # serial path stays single-segment
        back = HuffmanX(adapter=get_adapter("openmp", num_threads=4)).decompress(blob)
        assert back.tobytes() == raw
