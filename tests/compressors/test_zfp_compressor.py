"""ZFP-X fixed-rate compressor end-to-end."""

import numpy as np
import pytest

from repro.compressors.zfp import ZFPX, rate_for_error_bound


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("shape", [(64,), (16, 20), (9, 10, 11), (4, 4, 4, 4)])
    def test_high_rate_small_error(self, dtype, shape, rng):
        data = rng.normal(size=shape).astype(dtype)
        z = ZFPX(rate=28.0)
        back = z.decompress(z.compress(data))
        assert back.shape == data.shape
        assert back.dtype == data.dtype
        vr = float(data.max() - data.min())
        assert np.max(np.abs(back - data)) < 1e-4 * vr

    def test_error_monotone_in_rate(self, smooth_3d):
        errs = []
        for rate in (4, 8, 16, 28):
            z = ZFPX(rate=rate)
            back = z.decompress(z.compress(smooth_3d))
            errs.append(float(np.max(np.abs(back - smooth_3d))))
        assert all(a >= b * 0.999 for a, b in zip(errs, errs[1:]))

    def test_smooth_data_low_rate_decent(self, smooth_3d, rng):
        """Smooth fields survive aggressive rates far better than noise
        (the decorrelating transform works).  Note: this codec
        serializes raw truncated bitplanes — the design the paper
        describes for ZFP-X — not zfp's embedded group-testing, so its
        rate-distortion sits above the reference codec's."""
        z = ZFPX(rate=6)
        back = z.decompress(z.compress(smooth_3d))
        vr = float(smooth_3d.max() - smooth_3d.min())
        smooth_err = np.max(np.abs(back - smooth_3d)) / vr
        assert smooth_err < 0.35
        noise = rng.normal(size=smooth_3d.shape).astype(np.float32)
        nb = z.decompress(z.compress(noise))
        noise_err = np.max(np.abs(nb - noise)) / float(noise.max() - noise.min())
        assert smooth_err < noise_err

    def test_constant_field_exact(self):
        data = np.full((8, 8, 8), 3.25, dtype=np.float32)
        z = ZFPX(rate=8)
        back = z.decompress(z.compress(data))
        assert np.allclose(back, data, atol=1e-6)

    def test_zero_field_exact(self):
        data = np.zeros((8, 8), dtype=np.float64)
        z = ZFPX(rate=4)
        assert np.all(z.decompress(z.compress(data)) == 0)

    def test_negative_values(self, rng):
        data = -np.abs(rng.normal(size=(12, 12)).astype(np.float64)) * 1e6
        z = ZFPX(rate=32)
        back = z.decompress(z.compress(data))
        assert np.max(np.abs(back - data)) < 1e-3 * np.abs(data).max()


class TestFixedRateProperty:
    def test_stream_size_is_rate_determined(self, rng):
        """Fixed rate: stream size depends only on shape, not content."""
        z = ZFPX(rate=8)
        a = z.compress(rng.normal(size=(32, 32)).astype(np.float32))
        b = z.compress(np.zeros((32, 32), dtype=np.float32))
        assert len(a) == len(b)

    def test_expected_ratio(self):
        z = ZFPX(rate=8)
        # fp32, 3-D: 32 bits/value → 8 bits/value ≈ 4× (modulo padding)
        r = z.expected_ratio(3, np.float32)
        assert 3.5 < r < 4.5

    def test_actual_matches_expected_on_aligned_shape(self, rng):
        z = ZFPX(rate=8)
        data = rng.normal(size=(32, 32, 32)).astype(np.float32)
        blob = z.compress(data)
        actual = z.compression_ratio(data, blob)
        assert abs(actual - z.expected_ratio(3, np.float32)) < 0.5


class TestValidation:
    def test_bad_rate(self):
        with pytest.raises(ValueError):
            ZFPX(rate=0)
        with pytest.raises(ValueError):
            ZFPX(rate=100)

    def test_bad_dtype(self):
        z = ZFPX()
        with pytest.raises(TypeError):
            z.compress(np.zeros((4, 4), dtype=np.int32))

    def test_bad_ndim(self):
        z = ZFPX()
        with pytest.raises(ValueError):
            z.compress(np.zeros((2, 2, 2, 2, 2), dtype=np.float32))

    def test_bad_magic(self):
        z = ZFPX()
        with pytest.raises(ValueError):
            z.decompress(b"NOPE" + bytes(64))


class TestRateHeuristic:
    def test_tighter_bound_higher_rate(self):
        assert rate_for_error_bound(1e-6) > rate_for_error_bound(1e-2)

    def test_rate_bounds(self):
        assert rate_for_error_bound(0.5) >= 2
        assert rate_for_error_bound(1e-12, np.float32) <= 34

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            rate_for_error_bound(0.0)
        with pytest.raises(ValueError):
            rate_for_error_bound(2.0)

    def test_achieves_target_on_smooth_data(self, smooth_3d):
        """The heuristic rate should deliver roughly the requested
        relative error on smooth data."""
        for eb in (1e-2, 1e-4):
            rate = rate_for_error_bound(eb, np.float32, ndim=3)
            z = ZFPX(rate=rate)
            back = z.decompress(z.compress(smooth_3d))
            vr = float(smooth_3d.max() - smooth_3d.min())
            assert np.max(np.abs(back - smooth_3d)) <= eb * vr * 8


class TestAdapterPortability:
    @pytest.mark.parametrize("family", ["serial", "openmp", "cuda", "hip"])
    def test_bitstreams_identical(self, family, rng):
        from repro.adapters import get_adapter

        data = rng.normal(size=(17, 23)).astype(np.float32)
        ref = ZFPX(rate=12).compress(data)
        alt = ZFPX(rate=12, adapter=get_adapter(family)).compress(data)
        assert ref == alt

    def test_cross_decode(self, rng):
        from repro.adapters import get_adapter

        data = rng.normal(size=(10, 10, 10)).astype(np.float64)
        blob = ZFPX(rate=20, adapter=get_adapter("hip")).compress(data)
        back = ZFPX(rate=20, adapter=get_adapter("serial")).decompress(blob)
        assert np.max(np.abs(back - data)) < 1e-4 * np.ptp(data)
