"""MGARD grid hierarchy construction."""

import numpy as np
import pytest

from repro.compressors.mgard.hierarchy import DimHierarchy, Hierarchy


class TestDimHierarchy:
    def test_dyadic_sizes(self):
        d = DimHierarchy(17)  # 17 → 9 → 5 → 3 → 2
        assert [d.size_at(l) for l in range(5)] == [17, 9, 5, 3, 2]
        assert d.num_levels == 4

    def test_even_sizes_keep_endpoint(self):
        d = DimHierarchy(16)  # 16 → 9 → 5 → 3 → 2
        lvl = d.level(0)
        assert lvl.coarse_idx[-1] == 15
        assert 15 not in lvl.fine_idx
        assert d.size_at(1) == 9

    def test_small_dims_do_not_decompose(self):
        for n in (1, 2):
            d = DimHierarchy(n)
            assert d.num_levels == 0
            assert d.size_at(0) == n
            assert d.size_at(5) == n

    def test_fine_nodes_have_interior_neighbors(self):
        for n in (9, 10, 33, 100):
            lvl = DimHierarchy(n).level(0)
            assert np.all(lvl.left_idx >= 0)
            assert np.all(lvl.right_idx < n)
            in_coarse = np.zeros(n, dtype=bool)
            in_coarse[lvl.coarse_idx] = True
            assert np.all(in_coarse[lvl.left_idx])
            assert np.all(in_coarse[lvl.right_idx])

    def test_lerp_weights_sum_to_one(self):
        lvl = DimHierarchy(21).level(0)
        assert np.allclose(lvl.wl + lvl.wr, 1.0)
        assert np.all(lvl.wl > 0) and np.all(lvl.wr > 0)

    def test_uniform_grid_weights_are_half(self):
        lvl = DimHierarchy(9).level(0)
        assert np.allclose(lvl.wl, 0.5)

    def test_custom_coords(self):
        coords = np.array([0.0, 0.1, 0.5, 0.6, 2.0])
        d = DimHierarchy(5, coords)
        lvl = d.level(0)
        # Fine node 1 at 0.1 between 0.0 and 0.5: wr = 0.2.
        i = list(lvl.fine_idx).index(1)
        assert lvl.wr[i] == pytest.approx(0.2)

    def test_non_monotonic_coords_rejected(self):
        with pytest.raises(ValueError):
            DimHierarchy(3, np.array([0.0, 2.0, 1.0]))

    def test_coords_length_mismatch(self):
        with pytest.raises(ValueError):
            DimHierarchy(4, np.zeros(3))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DimHierarchy(0)


class TestHierarchy:
    def test_total_levels_is_max_over_dims(self):
        h = Hierarchy((33, 5, 2))
        assert h.total_levels == DimHierarchy(33).num_levels

    def test_shape_at_levels(self):
        h = Hierarchy((9, 5))
        assert h.shape_at(0) == (9, 5)
        assert h.shape_at(1) == (5, 3)
        assert h.shape_at(2) == (3, 2)

    def test_active_dims_drop_out(self):
        h = Hierarchy((17, 5))
        assert h.active_dims(0) == [0, 1]
        assert h.active_dims(2) == [0]  # dim1 exhausted at 2 levels

    def test_coefficient_counts_partition_data(self):
        for shape in [(12,), (9, 7), (6, 5, 4)]:
            h = Hierarchy(shape)
            total = sum(h.num_coefficients(l) for l in range(h.total_levels))
            total += int(np.prod(h.shape_at(h.total_levels)))
            assert total == int(np.prod(shape))

    def test_too_many_dims(self):
        with pytest.raises(ValueError):
            Hierarchy((2, 2, 2, 2, 2))
