"""Progressive refactoring / retrieval on the MGARD hierarchy."""

import numpy as np
import pytest

from repro.compressors.mgard.refactor import MGARDRefactor, RefactoredData


@pytest.fixture(scope="module")
def field():
    axes = [np.linspace(0, 2 * np.pi, 33)] * 2
    x, y = np.meshgrid(*axes, indexing="ij")
    return (np.sin(x) * np.cos(y) + 0.1 * np.sin(5 * x)).astype(np.float64)


@pytest.fixture(scope="module")
def refactored(field):
    return MGARDRefactor(precision=1e-7).refactor(field)


class TestRefactor:
    def test_full_retrieval_near_lossless(self, field, refactored):
        r = MGARDRefactor(precision=1e-7)
        back = r.retrieve(refactored)
        assert np.max(np.abs(back - field)) < 1e-5 * np.ptp(field)

    def test_error_decreases_with_levels(self, field, refactored):
        r = MGARDRefactor(precision=1e-7)
        errs = []
        for k in range(1, refactored.num_levels + 1):
            approx = r.retrieve(refactored, num_levels=k)
            errs.append(float(np.max(np.abs(approx - field))))
        # Essentially monotone: MGARD guarantees monotonicity in the L2
        # sense; tiny local L-infinity bumps (<15%) can occur when one
        # level arrives without its finer corrections.
        assert all(b <= a * 1.15 for a, b in zip(errs, errs[1:]))
        assert errs[-1] < 0.01 * errs[0]

    def test_prefix_bytes_increase(self, refactored):
        sizes = [refactored.prefix_bytes(k)
                 for k in range(1, refactored.num_levels + 1)]
        assert all(a < b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] == refactored.total_bytes

    def test_partial_retrieval_reads_fewer_bytes(self, field, refactored):
        """The refactoring payoff: a coarse read touches a fraction of
        the bytes."""
        coarse = refactored.prefix_bytes(2)
        assert coarse < 0.5 * refactored.total_bytes

    def test_error_estimates_are_upper_bounds_in_shape(self, field, refactored):
        """Estimates decrease with the prefix and order the real errors."""
        ests = [refactored.error_estimate(k)
                for k in range(1, refactored.num_levels + 1)]
        assert all(a >= b for a, b in zip(ests, ests[1:]))

    def test_bytes_for_error_target(self, field, refactored):
        r = MGARDRefactor(precision=1e-7)
        k_loose, b_loose = r.bytes_for(refactored, 0.5 * np.ptp(field))
        k_tight, b_tight = r.bytes_for(refactored, 1e-6)
        assert k_loose <= k_tight
        assert b_loose <= b_tight
        with pytest.raises(ValueError):
            r.bytes_for(refactored, 0.0)

    def test_serialization_roundtrip(self, field, refactored):
        blob = refactored.tobytes()
        again = RefactoredData.frombytes(blob)
        r = MGARDRefactor(precision=1e-7)
        a = r.retrieve(refactored, num_levels=3)
        b = r.retrieve(again, num_levels=3)
        assert np.array_equal(a, b)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            RefactoredData.frombytes(b"XXXX" + bytes(64))

    def test_retrieve_validates_levels(self, refactored):
        r = MGARDRefactor()
        with pytest.raises(ValueError):
            r.retrieve(refactored, num_levels=0)
        with pytest.raises(ValueError):
            r.retrieve(refactored, num_levels=99)

    def test_3d_field(self, rng):
        data = rng.normal(size=(9, 10, 11))
        r = MGARDRefactor(precision=1e-8)
        ref = r.refactor(data)
        full = r.retrieve(ref)
        assert np.max(np.abs(full - data)) < 1e-5
        coarse = r.retrieve(ref, num_levels=1)
        assert coarse.shape == data.shape

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            MGARDRefactor(precision=0.0)
        with pytest.raises(TypeError):
            MGARDRefactor().refactor(np.zeros(4, dtype=np.int32))
