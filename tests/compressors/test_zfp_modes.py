"""ZFP fix-accuracy and fix-precision modes (paper extension)."""

import numpy as np
import pytest

from repro.compressors.zfp.modes import (
    ZFPAccuracy,
    ZFPPrecision,
    planes_for_tolerance,
)


class TestFixAccuracy:
    @pytest.mark.parametrize("shape", [(40,), (20, 24), (12, 12, 12), (4, 6, 8, 4)])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_tolerance_met(self, shape, dtype, rng):
        data = rng.normal(size=shape).astype(dtype) * 7.3
        tol = 1e-3 * float(np.abs(data).max())
        z = ZFPAccuracy(tolerance=tol)
        assert z.max_error(data, z.compress(data)) <= tol

    def test_randomized_magnitudes(self, rng):
        for trial in range(15):
            ndim = int(rng.integers(1, 5))
            shape = tuple(rng.integers(4, 12, size=ndim))
            data = (rng.normal(size=shape) * 10.0 ** rng.integers(-2, 3)).astype(
                np.float64 if trial % 2 else np.float32
            )
            tol = 10.0 ** rng.uniform(-4, -1) * float(np.abs(data).max())
            z = ZFPAccuracy(tolerance=tol)
            assert z.max_error(data, z.compress(data)) <= tol

    def test_mixed_magnitude_blocks_adapt(self):
        """Small-magnitude blocks keep fewer planes than large ones —
        the per-block adaptivity fix-rate cannot provide."""
        field = np.outer(np.logspace(-3, 3, 32), np.ones(32)).astype(np.float32)
        tol = 1e-2
        z = ZFPAccuracy(tolerance=tol)
        blob = z.compress(field)
        assert z.max_error(field, blob) <= tol
        # It should beat fix-rate at equal quality: the fix-rate rate
        # needed for the worst block wastes bits on the tiny blocks.
        from repro import ZFPX

        for rate in range(30, 4, -2):
            zr = ZFPX(rate=rate)
            rb = zr.compress(field)
            if np.max(np.abs(zr.decompress(rb) - field)) <= tol:
                fixed_size = len(rb)
        assert len(blob) < fixed_size

    def test_looser_tolerance_smaller_stream(self, smooth_2d):
        data = smooth_2d.astype(np.float32)
        loose = ZFPAccuracy(tolerance=1e-1)
        tight = ZFPAccuracy(tolerance=1e-4)
        assert len(loose.compress(data)) < len(tight.compress(data))

    def test_zero_field_minimal(self):
        data = np.zeros((16, 16), dtype=np.float32)
        z = ZFPAccuracy(tolerance=1e-6)
        blob = z.compress(data)
        assert np.all(z.decompress(blob) == 0)
        assert len(blob) < 200

    def test_validation(self):
        with pytest.raises(ValueError):
            ZFPAccuracy(tolerance=0.0)
        with pytest.raises(ValueError):
            ZFPAccuracy(tolerance=1.0).decompress(b"XXXX" + bytes(32))
        with pytest.raises(TypeError):
            ZFPAccuracy(tolerance=1.0).compress(np.zeros(4, dtype=np.int32))

    def test_planes_clamped(self):
        emax = np.array([0, 100, -100], dtype=np.int32)
        kept = planes_for_tolerance(emax, 1e-3, 3, np.float32)
        assert np.all(kept >= 0)
        assert np.all(kept <= 32)
        assert kept[1] == 32  # huge block: everything kept
        assert kept[2] == 0   # tiny block: nothing needed


class TestFixPrecision:
    def test_roundtrip_quality_scales_with_precision(self, rng):
        data = rng.normal(size=(16, 16)).astype(np.float32)
        errs = []
        for precision in (6, 12, 24):
            z = ZFPPrecision(precision=precision)
            back = z.decompress(z.compress(data))
            errs.append(float(np.max(np.abs(back - data))))
        assert errs[0] > errs[1] > errs[2]

    def test_stream_decodable_by_fixed_rate(self, rng):
        """Fix-precision emits standard fix-rate streams."""
        from repro import ZFPX

        data = rng.normal(size=(12, 12)).astype(np.float64)
        blob = ZFPPrecision(precision=16).compress(data)
        back = ZFPX().decompress(blob)
        assert back.shape == data.shape

    def test_validation(self):
        with pytest.raises(ValueError):
            ZFPPrecision(precision=0)
        with pytest.raises(ValueError):
            ZFPPrecision(precision=65)

    def test_precision_capped_at_intprec(self, rng):
        data = rng.normal(size=(8, 8)).astype(np.float32)
        z = ZFPPrecision(precision=60)  # fp32 has only 32 planes
        back = z.decompress(z.compress(data))
        assert np.max(np.abs(back - data)) < 1e-5
