"""Multilevel decomposition: exactness, structure, linear reproduction."""

import numpy as np
import pytest

from repro.compressors.mgard.decompose import decompose, recompose
from repro.compressors.mgard.hierarchy import Hierarchy


@pytest.mark.parametrize(
    "shape",
    [(17,), (16,), (9, 13), (8, 8), (7, 6, 5), (33, 32, 31), (5, 4, 3, 6)],
)
def test_roundtrip_exact(shape, rng):
    data = rng.normal(size=shape)
    h = Hierarchy(shape)
    coeffs, coarsest = decompose(data, h)
    back = recompose(coeffs, coarsest, h)
    assert np.max(np.abs(back - data)) < 1e-9


def test_coefficient_count_partition(rng):
    shape = (12, 10)
    h = Hierarchy(shape)
    coeffs, coarsest = decompose(rng.normal(size=shape), h)
    assert sum(c.size for c in coeffs) + coarsest.size == 120
    for l, c in enumerate(coeffs):
        assert c.size == h.num_coefficients(l)


def test_linear_field_zero_coefficients(rng):
    """Multilinear data is exactly reproduced by lerp → all mc ≈ 0."""
    x, y = np.meshgrid(np.arange(17.0), np.arange(9.0), indexing="ij")
    data = 2.0 * x + 3.0 * y + 1.0
    h = Hierarchy(data.shape)
    coeffs, _ = decompose(data, h)
    for c in coeffs:
        assert np.max(np.abs(c)) < 1e-9


def test_smooth_field_decaying_coefficients(smooth_2d):
    """Finer levels of a smooth field carry smaller coefficients."""
    h = Hierarchy(smooth_2d.shape)
    coeffs, _ = decompose(smooth_2d.astype(np.float64), h)
    norms = [np.abs(c).max() for c in coeffs if c.size]
    # finest level (index 0) ≪ coarsest coefficient level
    assert norms[0] < norms[-1]


def test_shape_mismatch_rejected(rng):
    h = Hierarchy((8, 8))
    with pytest.raises(ValueError):
        decompose(rng.normal(size=(8, 9)), h)


def test_wrong_level_count_rejected(rng):
    h = Hierarchy((9,))
    coeffs, coarsest = decompose(rng.normal(size=9), h)
    with pytest.raises(ValueError):
        recompose(coeffs[:-1], coarsest, h)


def test_decompose_is_deterministic(rng):
    data = rng.normal(size=(11, 7))
    h = Hierarchy(data.shape)
    c1, g1 = decompose(data, h)
    c2, g2 = decompose(data, h)
    assert all(np.array_equal(a, b) for a, b in zip(c1, c2))
    assert np.array_equal(g1, g2)


def test_energy_compaction_on_smooth_data(smooth_2d):
    """Dropping the finest level's coefficients perturbs the field only
    slightly — the multiresolution property MGARD compression exploits."""
    data = smooth_2d.astype(np.float64)
    h = Hierarchy(data.shape)
    coeffs, coarsest = decompose(data, h)
    coeffs[0] = np.zeros_like(coeffs[0])
    approx = recompose(coeffs, coarsest, h)
    rel = np.max(np.abs(approx - data)) / np.ptp(data)
    assert rel < 0.05


def test_cached_factors_match_fresh(rng):
    from repro.compressors.mgard.decompose import level_factors

    data = rng.normal(size=(17, 9))
    h = Hierarchy(data.shape)
    factors = [level_factors(h, l) for l in range(h.total_levels)]
    c1, g1 = decompose(data, h, factors_per_level=factors)
    c2, g2 = decompose(data, h)
    assert all(np.array_equal(a, b) for a, b in zip(c1, c2))
    assert np.array_equal(g1, g2)
