"""Legacy execution profiles of the baseline wrappers."""

import numpy as np
import pytest

from repro.core.config import Config, ErrorMode
from repro.compressors.baselines import (
    HPDR_PROFILE,
    LEGACY_PROFILE,
    MGARDGPU,
    ZFPCUDA,
)
from repro.compressors.baselines.profile import profile_for


def test_profiles_distinguish_runtime_behaviour():
    assert HPDR_PROFILE.context_caching and HPDR_PROFILE.overlapped_pipeline
    assert not LEGACY_PROFILE.context_caching
    assert not LEGACY_PROFILE.overlapped_pipeline


def test_profile_for_convention():
    assert profile_for("mgard-x").context_caching
    assert not profile_for("cusz").context_caching
    assert profile_for("zfp-x").overlapped_pipeline


def test_mgard_gpu_same_maths_as_mgard_x(smooth_2d):
    """Functional twin: same algorithm, same error guarantee."""
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    legacy = MGARDGPU(cfg)
    blob = legacy.compress(smooth_2d)
    assert legacy.max_error(smooth_2d, blob) <= 1e-3 * np.ptp(smooth_2d)


def test_mgard_gpu_streams_decode_with_mgard_x(smooth_2d):
    """The paper's portability point inverted: streams are compatible
    because the algorithm design is shared."""
    from repro import MGARDX

    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    blob = MGARDGPU(cfg).compress(smooth_2d)
    back = MGARDX(cfg).decompress(blob)
    assert np.max(np.abs(back - smooth_2d)) <= 1e-3 * np.ptp(smooth_2d)


def test_mgard_gpu_does_not_cache_contexts(smooth_2d):
    cfg = Config(error_bound=1e-3)
    legacy = MGARDGPU(cfg)
    legacy.compress(smooth_2d)
    assert len(legacy.cache) == 0  # everything released per call
    legacy.compress(smooth_2d)
    assert legacy.cache.misses >= 2  # rebuilt every time


def test_zfp_cuda_matches_zfp_x_bitstream(rng):
    from repro import ZFPX

    data = rng.normal(size=(16, 16)).astype(np.float32)
    assert ZFPCUDA(rate=10).compress(data) == ZFPX(rate=10).compress(data)


def test_zfp_cuda_has_no_hip_kernel_model():
    """The paper excludes unstable HIP ports from its evaluation."""
    from repro.perf.models import kernel_model

    with pytest.raises(KeyError):
        kernel_model("zfp-cuda", "MI250X")
    with pytest.raises(KeyError):
        kernel_model("cusz", "MI250X")
    # MGARD-X is portable: HIP model exists.
    kernel_model("mgard-x", "MI250X")
