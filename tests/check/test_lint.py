"""hpdrlint rule tests (seeded defects) and the clean-tree gate."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.check.lint import RULES, format_findings, lint_paths, lint_source

REPO = Path(__file__).resolve().parents[2]

HEADER = "import numpy as np\nfrom repro.util import hot_path\n"


def _rules(src: str) -> list[str]:
    return [f.rule for f in lint_source("seeded.py", HEADER + src)]


class TestHPL001Allocations:
    @pytest.mark.parametrize(
        "stmt",
        [
            "np.empty(x.size, dtype=np.uint8)",
            "np.zeros((4, 4))",
            "np.array(x)",
            "np.concatenate([x, x])",
            "x.astype(np.float32)",
            "x.copy()",
            "x.flatten()",
        ],
    )
    def test_alloc_in_hot_path_flagged(self, stmt):
        src = f"@hot_path\ndef k(x, ctx):\n    return {stmt}\n"
        assert "HPL001" in _rules(src)

    def test_same_alloc_outside_hot_path_ok(self):
        src = "def setup(x):\n    return np.array(x, dtype=np.uint8)\n"
        assert _rules(src) == []

    def test_nested_function_inherits_hotness(self):
        src = (
            "@hot_path\n"
            "def k(x):\n"
            "    def inner(y):\n"
            "        return y.copy()\n"
            "    return inner(x)\n"
        )
        assert "HPL001" in _rules(src)

    def test_astype_copy_false_is_a_cast_not_an_alloc(self):
        src = (
            "@hot_path\n"
            "def k(x):\n"
            "    return x.astype(np.int64, copy=False)\n"
        )
        assert _rules(src) == []

    def test_hot_path_with_reason_still_detected(self):
        src = (
            "@hot_path(reason='bench')\n"
            "def k(x):\n"
            "    return x.copy()\n"
        )
        assert "HPL001" in _rules(src)


class TestHPL002ImplicitFloat64:
    def test_dtypeless_constructor_in_kernel_module(self):
        src = (
            "@hot_path\n"
            "def k(x, out):\n"
            "    return out\n"
            "def setup(n):\n"
            "    return np.zeros(n)\n"
        )
        assert "HPL002" in _rules(src)

    def test_explicit_dtype_ok(self):
        src = (
            "@hot_path\n"
            "def k(x, out):\n"
            "    return out\n"
            "def setup(n):\n"
            "    return np.zeros(n, dtype=np.float32)\n"
        )
        assert "HPL002" not in _rules(src)

    def test_non_kernel_module_exempt(self):
        # No @hot_path anywhere: plain library code may use defaults.
        assert _rules("def setup(n):\n    return np.zeros(n)\n") == []

    def test_hot_alloc_reports_alloc_not_dtype(self):
        # Inside a hot path HPL001 is the actionable finding; the same
        # call must not double-report as HPL002.
        src = "@hot_path\ndef k(n):\n    return np.zeros(n)\n"
        rules = _rules(src)
        assert rules.count("HPL001") == 1 and "HPL002" not in rules


class TestHPL003UfuncOut:
    def test_missing_out_flagged(self):
        src = "@hot_path\ndef k(x, y):\n    return np.add(x, y)\n"
        assert "HPL003" in _rules(src)

    def test_out_kwarg_ok(self):
        src = "@hot_path\ndef k(x, y):\n    return np.add(x, y, out=x)\n"
        assert "HPL003" not in _rules(src)

    def test_cold_ufunc_ok(self):
        assert _rules("def stats(x):\n    return np.add(x, 1)\n") == []


class TestHPL004FunctorContract:
    def test_extra_required_arg_flagged(self):
        src = (
            "from repro.core.functor import LocalityFunctor\n"
            "class Bad(LocalityFunctor):\n"
            "    def apply(self, blocks, scale):\n"
            "        return blocks\n"
        )
        assert "HPL004" in _rules(src)

    def test_missing_data_arg_flagged(self):
        src = (
            "from repro.core.functor import Functor\n"
            "class Bad(Functor):\n"
            "    def apply(self):\n"
            "        return None\n"
        )
        assert "HPL004" in _rules(src)

    def test_required_kwonly_flagged(self):
        src = (
            "from repro.core.functor import IterativeFunctor\n"
            "class Bad(IterativeFunctor):\n"
            "    def apply(self, vectors, *, axis):\n"
            "        return vectors\n"
        )
        assert "HPL004" in _rules(src)

    def test_defaulted_extras_ok(self):
        src = (
            "from repro.core.functor import LocalityFunctor\n"
            "class Good(LocalityFunctor):\n"
            "    def apply(self, blocks, scale=2.0, *, check=False):\n"
            "        return blocks\n"
        )
        assert "HPL004" not in _rules(src)

    def test_unrelated_class_exempt(self):
        src = "class Thing:\n    def apply(self, a, b, c):\n        return a\n"
        assert _rules(src) == []


class TestSuppression:
    def test_inline_suppression(self):
        src = (
            "@hot_path\n"
            "def k(x):\n"
            "    return x.copy()  # hpdrlint: disable=HPL001 — seeded\n"
        )
        assert _rules(src) == []

    def test_comment_above_statement(self):
        src = (
            "@hot_path\n"
            "def k(x):\n"
            "    # hpdrlint: disable=HPL001 — seeded\n"
            "    y = np.zeros(\n"
            "        x.size, dtype=np.uint8\n"
            "    )\n"
            "    return y\n"
        )
        assert _rules(src) == []

    def test_suppression_is_rule_specific(self):
        src = (
            "@hot_path\n"
            "def k(x, y):\n"
            "    return np.add(x, y)  # hpdrlint: disable=HPL001 — wrong id\n"
        )
        assert _rules(src) == ["HPL003"]

    def test_disable_all(self):
        src = (
            "@hot_path\n"
            "def k(x):\n"
            "    return x.copy()  # hpdrlint: disable=all — seeded\n"
        )
        assert _rules(src) == []


class TestDriver:
    def test_tree_is_clean(self):
        # Satellite: the shipped tree must carry zero unsuppressed
        # findings (genuine fixes + documented suppressions only).
        findings = lint_paths([REPO / "src" / "repro"])
        assert findings == [], format_findings(findings)

    def test_cli_exit_codes(self, tmp_path):
        script = REPO / "scripts" / "hpdrlint.py"
        clean = subprocess.run(
            [sys.executable, str(script), str(REPO / "src" / "repro")],
            capture_output=True, text=True,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr

        seeded = tmp_path / "bad.py"
        seeded.write_text(
            HEADER + "@hot_path\ndef k(x):\n    return x.copy()\n"
        )
        dirty = subprocess.run(
            [sys.executable, str(script), str(seeded)],
            capture_output=True, text=True,
        )
        assert dirty.returncode == 1
        assert "HPL001" in dirty.stdout

        missing = subprocess.run(
            [sys.executable, str(script), str(tmp_path / "nope.py")],
            capture_output=True, text=True,
        )
        assert missing.returncode == 2

    def test_findings_carry_location_and_hint(self):
        findings = lint_source(
            "seeded.py", HEADER + "@hot_path\ndef k(x):\n    return x.copy()\n"
        )
        (f,) = findings
        assert f.path == "seeded.py" and f.line == 5
        assert f.rule in RULES and f.hint
        assert "seeded.py:5:" in f.format()

    def test_rule_table_complete(self):
        # Core (syntactic) pack only; dataflow packs live in
        # repro.check.static and are covered by test_static_driver.py.
        assert set(RULES) == {"HPL001", "HPL002", "HPL003", "HPL004"}
        from repro.check.static import ALL_RULES
        assert set(RULES) <= set(ALL_RULES)
