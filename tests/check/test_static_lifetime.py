"""Seeded-defect tests for the buffer-lifetime pack (HPL201–HPL203)."""

from repro.check.static import analyze_source


def _rules(src: str) -> list[str]:
    result = analyze_source("seeded.py", src, packs=("lifetime",))
    return [f.rule for f in result.findings]


class TestHPL201BufferEscape:
    def test_return_of_locally_pinned_buffer(self):
        src = (
            "def f(self, key):\n"
            "    ctx = self.cache.get(key, pin=True)\n"
            "    buf = ctx.buffer('out', 100)\n"
            "    self.cache.release(ctx)\n"
            "    return buf\n"
        )
        assert "HPL201" in _rules(src)

    def test_store_on_self_escapes(self):
        src = (
            "def g(self, ctx):\n"
            "    buf = ctx.scratch('t', 4)\n"
            "    self.keep = buf\n"
        )
        assert "HPL201" in _rules(src)

    def test_append_to_self_attr_escapes(self):
        src = (
            "def g(self, ctx):\n"
            "    view = ctx.buffer('o', 8)[:4]\n"
            "    self.views.append(view)\n"
        )
        assert "HPL201" in _rules(src)

    def test_returning_param_ctx_buffer_to_pin_owner_ok(self):
        # Helpers that receive the ctx as a parameter hand buffers back
        # to the caller that owns the pin — legitimate by contract.
        src = (
            "def h(ctx):\n"
            "    buf = ctx.buffer('o', 4)\n"
            "    return buf\n"
        )
        assert _rules(src) == []


class TestHPL202UseAfterRelease:
    def test_use_after_conditional_release(self):
        src = (
            "def f(self, key):\n"
            "    ctx = self.cache.get(key)\n"
            "    buf = ctx.buffer('out', 100)\n"
            "    if key:\n"
            "        self.cache.release(ctx)\n"
            "    buf[0] = 1\n"
        )
        assert "HPL202" in _rules(src)

    def test_use_after_invalidate(self):
        src = (
            "def f(self, key):\n"
            "    ctx = self.cache.get(key)\n"
            "    buf = ctx.buffer('out', 10)\n"
            "    ctx.invalidate()\n"
            "    return bytes(buf)\n"
        )
        assert "HPL202" in _rules(src)

    def test_release_in_finally_after_all_uses_ok(self):
        src = (
            "def f(self, key):\n"
            "    ctx = self.cache.get(key)\n"
            "    buf = ctx.buffer('out', 100)\n"
            "    try:\n"
            "        buf[0] = 1\n"
            "        return bytes(buf)\n"
            "    finally:\n"
            "        self.cache.release(ctx)\n"
        )
        assert _rules(src) == []

    def test_reacquire_clears_released_state(self):
        src = (
            "def f(self, key):\n"
            "    ctx = self.cache.get(key)\n"
            "    self.cache.release(ctx)\n"
            "    ctx = self.cache.get(key)\n"
            "    buf = ctx.buffer('out', 4)\n"
            "    return bytes(buf)\n"
        )
        assert _rules(src) == []


class TestHPL203UnvalidatedShmAttach:
    def test_attach_from_peer_ref_without_validation(self):
        src = (
            "from multiprocessing import shared_memory\n"
            "def resolve(ref):\n"
            "    return shared_memory.SharedMemory(name=ref['name'])\n"
        )
        assert "HPL203" in _rules(src)

    def test_attach_from_derived_name_without_validation(self):
        src = (
            "from multiprocessing import shared_memory\n"
            "def resolve(ref):\n"
            "    name = ref['name']\n"
            "    return shared_memory.SharedMemory(name=name)\n"
        )
        assert "HPL203" in _rules(src)

    def test_validated_attach_ok(self):
        src = (
            "from multiprocessing import shared_memory\n"
            "def resolve(ref):\n"
            "    if not isinstance(ref.get('name'), str):\n"
            "        raise ValueError('bad shm ref')\n"
            "    return shared_memory.SharedMemory(name=ref['name'])\n"
        )
        assert _rules(src) == []

    def test_create_true_is_not_an_attach(self):
        src = (
            "from multiprocessing import shared_memory\n"
            "def make(n):\n"
            "    return shared_memory.SharedMemory(create=True, size=n)\n"
        )
        assert _rules(src) == []
