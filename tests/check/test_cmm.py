"""CMM misuse detection: steady-state leaks, context thrash, eviction.

The zero-alloc steady state is the CMM's core contract; these tests
seed each way of breaking it and check the corresponding rule fires.
"""

import numpy as np
import pytest

from repro import HuffmanX
from repro.check import (
    CMMWatch,
    ContextThrashError,
    SteadyStateLeakError,
    UseAfterEvictError,
    assert_steady_state,
)
from repro.core.context import ContextCache


class TestSteadyStateLeak:
    def test_real_codec_is_steady(self, rng):
        data = rng.integers(0, 64, size=20_000).astype(np.int64)
        h = HuffmanX()
        assert_steady_state(lambda: h.compress_keys(data, 64), h.cache)

    def test_fresh_name_every_call_is_a_leak(self):
        cache = ContextCache()
        calls = {"n": 0}

        def leaky():
            calls["n"] += 1
            ctx = cache.get("work")
            # a per-call buffer name defeats the cache entirely
            ctx.buffer(f"tmp{calls['n']}", (256,), np.float32)

        with pytest.raises(SteadyStateLeakError, match="SAN-LEAK"):
            assert_steady_state(leaky, cache)

    def test_growing_scratch_is_a_leak(self):
        cache = ContextCache()
        calls = {"n": 0}

        def growing():
            calls["n"] += 1
            cache.get("work").scratch("buf", 1024 * calls["n"], np.uint8)

        with pytest.raises(SteadyStateLeakError):
            assert_steady_state(growing, cache)

    def test_failure_names_the_offending_context(self):
        cache = ContextCache()
        calls = {"n": 0}

        def leaky():
            calls["n"] += 1
            cache.get("leaker").buffer(f"b{calls['n']}", (8,), np.uint8)

        with pytest.raises(SteadyStateLeakError, match="leaker"):
            assert_steady_state(leaky, cache)


class TestContextThrash:
    def test_shape_rebinding_is_thrash(self):
        cache = ContextCache()
        calls = {"n": 0}

        def thrashing():
            calls["n"] += 1
            # same name, alternating shape: the key should have carried
            # the shape — every call reallocates and poisons old views
            n = 128 if calls["n"] % 2 else 256
            cache.get("work").buffer("io", (n,), np.float32)

        with pytest.raises(ContextThrashError, match="SAN-CTX"):
            assert_steady_state(thrashing, cache)

    def test_dtype_flip_is_thrash(self):
        cache = ContextCache()
        calls = {"n": 0}

        def flipping():
            calls["n"] += 1
            dt = np.float32 if calls["n"] % 2 else np.int32
            cache.get("work").buffer("io", (64,), dt)

        with pytest.raises(ContextThrashError):
            assert_steady_state(flipping, cache)

    def test_stable_binding_is_clean(self):
        cache = ContextCache()
        assert_steady_state(
            lambda: cache.get("work").buffer("io", (64,), np.float32), cache
        )


class TestCMMWatch:
    def test_mark_resets_baseline(self):
        cache = ContextCache()
        watch = CMMWatch(cache)
        cache.get("a").buffer("x", (32,), np.uint8)
        assert watch.new_events == 1
        assert watch.new_bytes == 32
        watch.mark()
        assert watch.new_events == 0
        watch.check_leak()  # must not raise after re-mark

    def test_use_after_evict_still_raises_under_watch(self):
        # SAN-EVICT belongs to the context layer but is part of the same
        # taxonomy: a watched workload holding an evicted context fails
        # loudly, not silently.
        cache = ContextCache(capacity=1)
        ctx = cache.get("a")
        cache.get("b")
        with pytest.raises(UseAfterEvictError, match="SAN-EVICT"):
            ctx.buffer("x", (8,), np.uint8)
