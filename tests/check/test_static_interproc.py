"""Seeded-defect tests for the interprocedural pack (HPL301–HPL302)."""

from repro.check.static import analyze_source

HEADER = "import numpy as np\nfrom repro.util import hot_path\n"


def _rules(src: str) -> list[str]:
    result = analyze_source("seeded.py", HEADER + src, packs=("interproc",))
    return [f.rule for f in result.findings]


def _messages(src: str) -> list[str]:
    result = analyze_source("seeded.py", HEADER + src, packs=("interproc",))
    return [f.message for f in result.findings]


class TestHPL301TransitiveAllocation:
    def test_hot_path_calls_allocating_helper(self):
        src = (
            "def helper(x):\n"
            "    return np.zeros(x.size)\n"
            "@hot_path\n"
            "def k(x, ctx):\n"
            "    return helper(x)\n"
        )
        assert "HPL301" in _rules(src)

    def test_depth_two_chain_is_found(self):
        src = (
            "def inner(x):\n"
            "    return x.copy()\n"
            "def mid(x):\n"
            "    return inner(x)\n"
            "@hot_path\n"
            "def k(x):\n"
            "    return mid(x)\n"
        )
        rules = _rules(src)
        assert "HPL301" in rules
        # The message names the call chain to the offending site.
        (msg,) = _messages(src)
        assert "mid -> inner" in msg

    def test_method_helper_via_self_call(self):
        src = (
            "class K:\n"
            "    def _tmp(self, x):\n"
            "        return np.empty(x.size, dtype=np.uint8)\n"
            "    @hot_path\n"
            "    def run(self, x):\n"
            "        return self._tmp(x)\n"
        )
        assert "HPL301" in _rules(src)

    def test_out_parameter_helper_is_clean(self):
        src = (
            "def helper(x, out):\n"
            "    np.add(x, 1, out=out)\n"
            "    return out\n"
            "@hot_path\n"
            "def k(x, out):\n"
            "    return helper(x, out)\n"
        )
        assert _rules(src) == []

    def test_suppression_at_alloc_site_propagates(self):
        src = (
            "def cold_fallback(x):\n"
            "    return np.array(x)  "
            "# hpdrlint: disable=HPL001,HPL301 — cold path\n"
            "@hot_path\n"
            "def k(x):\n"
            "    return cold_fallback(x)\n"
        )
        assert _rules(src) == []


class TestHPL302TransitiveUfunc:
    def test_helper_ufunc_without_out(self):
        src = (
            "def h(x, y):\n"
            "    return np.add(x, y)\n"
            "@hot_path\n"
            "def k(x, y):\n"
            "    return h(x, y)\n"
        )
        assert "HPL302" in _rules(src)

    def test_second_ufunc_variant(self):
        src = (
            "def scale(x, y):\n"
            "    return np.multiply(x, y)\n"
            "@hot_path\n"
            "def k(x, y):\n"
            "    return scale(x, y)\n"
        )
        assert "HPL302" in _rules(src)

    def test_helper_with_out_is_clean(self):
        src = (
            "def h(x, y, out):\n"
            "    np.add(x, y, out=out)\n"
            "    return out\n"
            "@hot_path\n"
            "def k(x, y, out):\n"
            "    return h(x, y, out)\n"
        )
        assert _rules(src) == []

    def test_non_hot_caller_is_not_flagged(self):
        src = (
            "def h(x, y):\n"
            "    return np.add(x, y)\n"
            "def cold(x, y):\n"
            "    return h(x, y)\n"
        )
        assert _rules(src) == []


class TestCallGraphHygiene:
    def test_recursive_helpers_terminate(self):
        src = (
            "def a(x):\n"
            "    return b(x)\n"
            "def b(x):\n"
            "    return a(x)\n"
            "@hot_path\n"
            "def k(x):\n"
            "    return a(x)\n"
        )
        # Mutually recursive clean helpers: no findings, no hang.
        assert _rules(src) == []

    def test_unresolvable_call_stays_quiet(self):
        src = (
            "@hot_path\n"
            "def k(x, mystery):\n"
            "    return mystery.transform(x)\n"
        )
        assert _rules(src) == []
