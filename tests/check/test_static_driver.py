"""Statica driver tests: suppressions, baseline, SARIF, CLI, perf."""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.check.lint import (
    parse_suppressions,
    unknown_suppression_ids,
)
from repro.check.static import (
    ALL_PACKS,
    ALL_RULES,
    RULE_PACKS,
    analyze_paths,
    analyze_source,
    load_baseline,
    partition_findings,
    to_sarif,
    write_baseline,
)
from repro.check.static.sarif import SARIF_SCHEMA_URI, SARIF_VERSION

REPO = Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "hpdrlint.py"

SEEDED = "import time\nasync def f():\n    time.sleep(1)\n"


def _run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True,
    )


class TestSuppressionParsing:
    def test_multiple_rule_ids_on_one_line(self):
        src = "x = f()  # hpdrlint: disable=HPL101,HPL201 — both\n"
        assert parse_suppressions(src)[1] == {"HPL101", "HPL201"}

    def test_suppression_on_continuation_line(self):
        # The offending statement spans lines 3-5; a disable comment on
        # its closing line must still suppress the finding.
        src = (
            "import time\n"
            "async def f():\n"
            "    time.sleep(\n"
            "        1\n"
            "    )  # hpdrlint: disable=HPL101 — seeded\n"
        )
        result = analyze_source("s.py", src, packs=("async",))
        assert result.findings == []

    def test_suppression_on_line_above(self):
        src = (
            "import time\n"
            "async def f():\n"
            "    # hpdrlint: disable=HPL101 — seeded\n"
            "    time.sleep(1)\n"
        )
        result = analyze_source("s.py", src, packs=("async",))
        assert result.findings == []

    def test_unknown_rule_id_warns_not_silently_passes(self):
        src = "def f():\n    return 1  # hpdrlint: disable=HPL999 — bogus\n"
        assert unknown_suppression_ids(src, ALL_RULES) == [(2, "HPL999")]
        result = analyze_source("s.py", src)
        assert any("HPL999" in w for w in result.warnings)

    def test_known_new_pack_id_does_not_warn(self):
        src = "x = 1  # hpdrlint: disable=HPL203 — trusted peer\n"
        assert unknown_suppression_ids(src, ALL_RULES) == []


class TestBaseline:
    def test_round_trip_grandfathers_findings(self, tmp_path):
        seeded = tmp_path / "bad.py"
        seeded.write_text(SEEDED)
        findings = analyze_paths([seeded]).findings
        assert len(findings) == 1

        bl = tmp_path / "baseline.json"
        write_baseline(bl, findings, tmp_path)
        loaded = load_baseline(bl)
        fresh, known = partition_findings(findings, loaded, tmp_path)
        assert fresh == [] and known == findings

    def test_changed_line_retires_entry(self, tmp_path):
        seeded = tmp_path / "bad.py"
        seeded.write_text(SEEDED)
        findings = analyze_paths([seeded]).findings
        bl = tmp_path / "baseline.json"
        write_baseline(bl, findings, tmp_path)

        # Editing the offending line invalidates the content hash: the
        # finding comes back as fresh.
        seeded.write_text(SEEDED.replace("time.sleep(1)", "time.sleep(2)"))
        findings2 = analyze_paths([seeded]).findings
        fresh, known = partition_findings(
            findings2, load_baseline(bl), tmp_path
        )
        assert len(fresh) == 1 and known == []

    def test_version_mismatch_rejected(self, tmp_path):
        bl = tmp_path / "baseline.json"
        bl.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(bl)

    def test_shipped_baseline_is_empty(self):
        assert load_baseline(REPO / ".hpdrlint-baseline.json") == set()


class TestSarif:
    def _log(self, tmp_path):
        seeded = tmp_path / "bad.py"
        seeded.write_text(SEEDED)
        findings = analyze_paths([seeded]).findings
        return to_sarif(findings, ALL_RULES, tmp_path), findings

    def test_log_matches_2_1_0_shape(self, tmp_path):
        log, findings = self._log(tmp_path)
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA_URI
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "hpdrlint"
        assert {r["id"] for r in driver["rules"]} == set(ALL_RULES)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] == "error"

    def test_results_reference_rules_consistently(self, tmp_path):
        log, findings = self._log(tmp_path)
        (run,) = log["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert len(run["results"]) == len(findings)
        for res in run["results"]:
            assert rules[res["ruleIndex"]]["id"] == res["ruleId"]
            assert res["level"] == "error"
            assert res["message"]["text"]
            (loc,) = res["locations"]
            phys = loc["physicalLocation"]
            assert phys["artifactLocation"]["uri"] == "bad.py"
            assert phys["artifactLocation"]["uriBaseId"] == "SRCROOT"
            assert phys["region"]["startLine"] >= 1
            assert res["partialFingerprints"]["hpdrlint/v1"]

    def test_fingerprint_stable_under_line_drift(self, tmp_path):
        log1, _ = self._log(tmp_path)
        padded = tmp_path / "bad.py"
        padded.write_text("# leading comment\n" + SEEDED)
        findings = analyze_paths([padded]).findings
        log2 = to_sarif(findings, ALL_RULES, tmp_path)
        fp = lambda log: log["runs"][0]["results"][0][  # noqa: E731
            "partialFingerprints"]["hpdrlint/v1"]
        assert fp(log1) == fp(log2)


class TestCLI:
    def test_clean_tree_exits_zero(self):
        proc = _run(str(REPO / "src" / "repro"))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_findings_exit_one(self, tmp_path):
        seeded = tmp_path / "bad.py"
        seeded.write_text(SEEDED)
        proc = _run(str(seeded))
        assert proc.returncode == 1
        assert "HPL101" in proc.stdout

    def test_non_python_file_is_usage_error(self, tmp_path):
        readme = tmp_path / "README.md"
        readme.write_text("hello\n")
        proc = _run(str(readme))
        assert proc.returncode == 2
        assert "not a Python file" in proc.stderr

    def test_dangling_symlink_is_usage_error(self, tmp_path):
        link = tmp_path / "gone.py"
        link.symlink_to(tmp_path / "no-such-target.py")
        proc = _run(str(link))
        assert proc.returncode == 2
        assert "dangling symlink" in proc.stderr

    def test_missing_path_is_usage_error(self, tmp_path):
        proc = _run(str(tmp_path / "nope.py"))
        assert proc.returncode == 2

    def test_unknown_pack_is_usage_error(self):
        proc = _run("--packs", "bogus")
        assert proc.returncode == 2
        assert "unknown pack" in proc.stderr

    def test_list_rules_grouped_by_pack(self):
        proc = _run("--list-rules")
        assert proc.returncode == 0
        for pack in ALL_PACKS:
            assert f"[{pack}]" in proc.stdout
        for rule in ALL_RULES:
            assert rule in proc.stdout

    def test_sarif_flag_writes_report(self, tmp_path):
        seeded = tmp_path / "bad.py"
        seeded.write_text(SEEDED)
        out = tmp_path / "out.sarif"
        proc = _run("--sarif", str(out), str(seeded))
        assert proc.returncode == 1
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        assert len(log["runs"][0]["results"]) == 1

    def test_write_baseline_then_clean(self, tmp_path):
        seeded = tmp_path / "bad.py"
        seeded.write_text(SEEDED)
        bl = tmp_path / "bl.json"
        proc = _run("--baseline", str(bl), "--write-baseline", str(seeded))
        assert proc.returncode == 0
        proc = _run("--baseline", str(bl), str(seeded))
        assert proc.returncode == 0
        assert "1 baselined" in proc.stdout

    def test_unknown_suppression_warns_on_stderr(self, tmp_path):
        seeded = tmp_path / "odd.py"
        seeded.write_text("x = 1  # hpdrlint: disable=HPL999 — typo\n")
        proc = _run(str(seeded))
        assert proc.returncode == 0  # warning, not finding
        assert "HPL999" in proc.stderr


class TestTreeGate:
    def test_full_tree_clean_all_packs_empty_baseline(self):
        # Acceptance: all packs over the whole tree, no baseline
        # entries, zero findings and zero suppression warnings.
        result = analyze_paths([REPO / "src" / "repro"], packs=ALL_PACKS)
        assert result.findings == [], [f.format() for f in result.findings]
        assert result.warnings == []

    def test_full_tree_under_ten_seconds(self):
        start = time.perf_counter()
        analyze_paths([REPO / "src" / "repro"], packs=ALL_PACKS)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0, f"analysis took {elapsed:.2f}s"

    def test_rule_tables_are_disjoint_and_complete(self):
        seen: set[str] = set()
        for pack, rules in RULE_PACKS.items():
            assert not (seen & set(rules)), f"duplicate ids in {pack}"
            seen |= set(rules)
        assert seen == set(ALL_RULES)
        assert {
            "HPL001", "HPL101", "HPL102", "HPL103", "HPL104",
            "HPL201", "HPL202", "HPL203", "HPL301", "HPL302",
        } <= seen
