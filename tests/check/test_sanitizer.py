"""Seeded-defect tests: the sanitizer must catch what it claims to.

Each defect class from DESIGN.md §3.2 gets a deliberately-broken
functor; the test passes only when the sanitizer raises the right rule.
A well-behaved functor and the real codecs must sail through unchanged.
"""

import numpy as np
import pytest

from repro import Config, ErrorMode, HuffmanX, MGARDX, ZFPX
from repro.adapters import get_adapter
from repro.adapters.serial import SerialAdapter
from repro.check import (
    HaloRaceError,
    SanitizingAdapter,
    ScratchAliasError,
    sanitize_enabled,
    wrap_if_enabled,
)
from repro.core.abstractions import locality
from repro.core.functor import LocalityFunctor


class _Doubler(LocalityFunctor):
    name = "good.doubler"

    def apply(self, blocks):
        return blocks * 2


class _HaloRacer(LocalityFunctor):
    """Writes one row beyond its own slice — the classic halo race."""

    name = "bad.halo"

    def apply(self, blocks):
        out = blocks * 2
        base = blocks.base
        if base is not None and blocks.shape[0] < base.shape[0]:
            base[-1] = -1  # smash a row some other group owns
        return out


class _Stateful(LocalityFunctor):
    """Output depends on previously-seen blocks (cross-block read)."""

    name = "bad.stateful"

    def __init__(self):
        self.acc = 0.0

    def apply(self, blocks):
        self.acc += float(blocks.sum())
        return blocks + self.acc


class _UndeclaredScratch(LocalityFunctor):
    """Returns views of one persistent buffer without reuses_output."""

    name = "bad.alias"

    def __init__(self, capacity=4096):
        self._scratch = np.zeros(capacity, dtype=np.float64)

    def apply(self, blocks):
        flat = blocks.reshape(-1)
        out = self._scratch[: flat.size]
        np.multiply(flat, 2, out=out)
        return out.reshape(blocks.shape)


class _DeclaredScratch(_UndeclaredScratch):
    """Same aliasing, but declared — adapters copy, so it is legal."""

    name = "good.alias"
    reuses_output = True


@pytest.fixture
def batch(rng):
    return rng.normal(size=(16, 8)).astype(np.float64)


class TestSeededDefects:
    def test_halo_race_caught(self, sanitizing_adapter, batch):
        with pytest.raises(HaloRaceError, match="SAN-RACE"):
            sanitizing_adapter.execute_group_batch(_HaloRacer(), batch)

    def test_partitioning_dependence_caught(self, sanitizing_adapter, batch):
        with pytest.raises(HaloRaceError, match="SAN-RACE"):
            sanitizing_adapter.execute_group_batch(_Stateful(), batch)

    def test_undeclared_scratch_alias_caught(self, sanitizing_adapter, batch):
        with pytest.raises(ScratchAliasError, match="SAN-ALIAS"):
            sanitizing_adapter.execute_group_batch(_UndeclaredScratch(), batch)

    def test_declared_scratch_alias_allowed(self, sanitizing_adapter, batch):
        out = sanitizing_adapter.execute_group_batch(_DeclaredScratch(), batch)
        assert np.array_equal(np.asarray(out), batch * 2)

    def test_well_behaved_functor_passes(self, sanitizing_adapter, batch):
        out = sanitizing_adapter.execute_group_batch(_Doubler(), batch)
        assert np.array_equal(np.asarray(out), batch * 2)
        assert sanitizing_adapter.checked_batches == 1

    def test_race_caught_through_abstraction(self, sanitizing_adapter, rng):
        # Not just the raw adapter API: the Locality abstraction routes
        # through the wrapper too.
        data = rng.normal(size=(64,)).astype(np.float64)
        with pytest.raises(HaloRaceError):
            locality(
                data, _HaloRacer(), block_shape=(8,),
                adapter=sanitizing_adapter,
            )


class TestTransparency:
    """Sanitized results must be bit-identical to unsanitized ones."""

    def test_codecs_roundtrip_sanitized(self, sanitizing_adapter, rng):
        data = rng.normal(size=(20, 20, 20)).astype(np.float32)
        plain = get_adapter("serial")
        for make in (
            lambda a: HuffmanX(adapter=a),
            lambda a: ZFPX(rate=10, adapter=a),
            lambda a: MGARDX(
                Config(error_bound=1e-3, error_mode=ErrorMode.REL), adapter=a
            ),
        ):
            san_blob = make(sanitizing_adapter).compress(data)
            assert make(plain).compress(data) == san_blob
            out = make(sanitizing_adapter).decompress(san_blob)
            assert out.dtype == data.dtype and out.shape == data.shape
        assert sanitizing_adapter.checked_batches > 0

    def test_delegation(self, sanitizing_adapter):
        inner = sanitizing_adapter.inner
        assert sanitizing_adapter.family == inner.family
        assert sanitizing_adapter.parallel_width() == inner.parallel_width()
        assert sanitizing_adapter.name == f"san({inner.name})"
        assert sanitizing_adapter.trace is inner.trace

    def test_rejects_simulated_gpu_backends(self):
        with pytest.raises(ValueError, match="serial"):
            SanitizingAdapter(get_adapter("cuda"))


class TestEnvOptIn:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("HPDR_SAN", raising=False)
        assert not sanitize_enabled()
        assert isinstance(get_adapter("serial"), SerialAdapter)

    def test_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("HPDR_SAN", "0")
        assert not sanitize_enabled()

    def test_env_auto_wraps_cpu_families(self, monkeypatch):
        monkeypatch.setenv("HPDR_SAN", "1")
        assert sanitize_enabled()
        for family in ("serial", "openmp"):
            assert isinstance(get_adapter(family), SanitizingAdapter)
        # simulated GPU families have no shadow support: untouched
        assert not isinstance(get_adapter("cuda"), SanitizingAdapter)

    def test_wrap_if_enabled_never_double_wraps(self, monkeypatch):
        monkeypatch.setenv("HPDR_SAN", "1")
        san = wrap_if_enabled(get_adapter("serial"))
        assert wrap_if_enabled(san) is san
