"""Unit tests for the Statica CFG builder and dataflow engine."""

import ast

import pytest

from repro.check.static import build_cfg
from repro.check.static.dataflow import ReachingDefs, assigned_names


def _fn(src: str):
    tree = ast.parse(src)
    return next(
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )


def _cfg(src: str):
    return build_cfg(_fn(src))


class TestCFGShape:
    def test_straight_line_is_one_path(self):
        cfg = _cfg("def f(x):\n    a = x\n    b = a\n    return b\n")
        reachable = cfg.reachable()
        assert cfg.exit in reachable
        # Entry holds the two assignments and the return, in order.
        kinds = [type(e).__name__ for e in cfg.entry.elements]
        assert kinds == ["Assign", "Assign", "Return"]

    def test_if_else_forms_a_diamond(self):
        cfg = _cfg(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        # The entry (holding the test) must fan out to two blocks which
        # re-join before the return.
        assert len(cfg.entry.succs) == 2
        joins = {s for b in cfg.entry.succs for s in b.succs}
        assert len(joins) == 1
        assert cfg.exit in cfg.reachable()

    def test_while_has_back_edge_and_exit_edge(self):
        cfg = _cfg(
            "def f(n):\n"
            "    i = 0\n"
            "    while i < n:\n"
            "        i = i + 1\n"
            "    return i\n"
        )
        header = next(
            b for b in cfg.reachable()
            if any(isinstance(e, ast.Compare) for e in b.elements)
        )
        assert len(header.succs) == 2  # body + after
        body = next(
            s for s in header.succs
            if any(isinstance(e, ast.Assign) for e in s.elements)
        )
        assert header in body.succs  # back edge

    def test_code_after_return_is_unreachable(self):
        cfg = _cfg("def f(x):\n    return x\n    y = 1\n")
        reachable_elems = [
            e for b in cfg.reachable() for e in b.elements
        ]
        assert not any(isinstance(e, ast.Assign) for e in reachable_elems)
        assert cfg.exit in cfg.reachable()

    def test_try_body_edges_into_handler(self):
        cfg = _cfg(
            "def f(x):\n"
            "    try:\n"
            "        a = g(x)\n"
            "    except ValueError:\n"
            "        a = None\n"
            "    return a\n"
        )
        body = next(
            b for b in cfg.reachable()
            if any(
                isinstance(e, ast.Assign)
                and isinstance(e.value, ast.Call)
                for e in b.elements
            )
        )
        handler = next(
            b for b in cfg.reachable()
            if any(
                isinstance(e, ast.Assign)
                and isinstance(e.value, ast.Constant)
                for e in b.elements
            )
        )
        assert handler in body.succs

    def test_return_routes_through_finally(self):
        cfg = _cfg(
            "def f(x):\n"
            "    try:\n"
            "        return g(x)\n"
            "    finally:\n"
            "        release(x)\n"
        )
        fin = next(
            b for b in cfg.reachable()
            if any(
                isinstance(e, ast.Expr)
                and isinstance(e.value, ast.Call)
                and isinstance(e.value.func, ast.Name)
                and e.value.func.id == "release"
                for e in b.elements
            )
        )
        # The finally block runs on the abrupt (return) path too.
        assert fin in cfg.reachable()
        assert cfg.exit in {s for s in fin.succs} | {
            s for b in fin.succs for s in b.succs
        }

    def test_break_exits_the_loop(self):
        cfg = _cfg(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x:\n"
            "            break\n"
            "    return 1\n"
        )
        # The return statement stays reachable despite the break.
        assert any(
            isinstance(e, ast.Return)
            for b in cfg.reachable() for e in b.elements
        )


class TestReachingDefs:
    def test_branch_defs_both_reach_exit(self):
        cfg = _cfg(
            "def f(x):\n"
            "    a = 1\n"
            "    if x:\n"
            "        a = 2\n"
            "    return a\n"
        )
        lines = ReachingDefs().defs_reaching(cfg, "a")
        assert lines == {2, 4}  # may-analysis keeps both

    def test_sequential_redefinition_kills(self):
        cfg = _cfg("def f():\n    a = 1\n    a = 2\n    return a\n")
        assert ReachingDefs().defs_reaching(cfg, "a") == {3}

    def test_loop_body_def_reaches_exit(self):
        cfg = _cfg(
            "def f(xs):\n"
            "    out = None\n"
            "    for x in xs:\n"
            "        out = x\n"
            "    return out\n"
        )
        assert ReachingDefs().defs_reaching(cfg, "out") == {2, 4}


class TestAssignedNames:
    @pytest.mark.parametrize(
        "src,want",
        [
            ("a = 1", ["a"]),
            ("a, b = 1, 2", ["a", "b"]),
            ("a += 1", ["a"]),
            ("a: int = 1", ["a"]),
            ("[x, y] = p", ["x", "y"]),
        ],
    )
    def test_statement_targets(self, src, want):
        stmt = ast.parse(src).body[0]
        assert assigned_names(stmt) == want

    def test_withitem_target(self):
        stmt = ast.parse("with open(p) as fh:\n    pass\n").body[0]
        assert assigned_names(stmt.items[0]) == ["fh"]

    def test_non_assignment_is_empty(self):
        stmt = ast.parse("f(x)").body[0]
        assert assigned_names(stmt) == []
