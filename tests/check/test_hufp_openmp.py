"""HUFP chunk-parallel byte-path decode under the sanitizer.

Exercises the segment-count boundaries (the container splits at
``_MIN_SEGMENT_BYTES`` = 64 KiB granularity) across thread counts, with
every adapter wrapped in :class:`SanitizingAdapter` — the exact
configuration where a halo race or context misuse between concurrent
segments would surface.
"""

import numpy as np
import pytest

from repro import HuffmanX
from repro.adapters import get_adapter
from repro.check import SanitizingAdapter
from repro.compressors.huffman.compressor import _MIN_SEGMENT_BYTES, _PAR_MAGIC

SEG = _MIN_SEGMENT_BYTES
#: ±1 around every segment-count transition up to 4 segments.
BOUNDARY_SIZES = [
    SEG - 1, SEG, SEG + 1,
    2 * SEG - 1, 2 * SEG, 2 * SEG + 1,
    4 * SEG, 4 * SEG + 1,
]


def _san_openmp(threads: int) -> SanitizingAdapter:
    return SanitizingAdapter(get_adapter("openmp", num_threads=threads))


def _payload(rng, nbytes: int) -> bytes:
    # Low-entropy bytes: compressible, and decode touches every chunk.
    return rng.integers(0, 17, size=nbytes).astype(np.uint8).tobytes()


@pytest.mark.parametrize("threads", [1, 2, 4])
@pytest.mark.parametrize("nbytes", BOUNDARY_SIZES)
def test_roundtrip_at_segment_boundaries(rng, threads, nbytes):
    codec = HuffmanX(adapter=_san_openmp(threads))
    data = _payload(rng, nbytes)
    blob = codec.compress(data)
    out = codec.decompress(blob)
    assert out.tobytes() == data

    body_is_parallel = _PAR_MAGIC in blob[:64]
    expected_segments = max(1, min(threads, nbytes // SEG))
    assert body_is_parallel == (expected_segments > 1)


@pytest.mark.parametrize("nbytes", [2 * SEG - 1, 2 * SEG, 2 * SEG + 1])
def test_cross_thread_count_decode(rng, nbytes):
    # A stream written with N threads must decode bit-exactly with any
    # other thread count (and serially): the container is adapter-
    # agnostic by contract.
    data = _payload(rng, nbytes)
    blobs = {
        t: HuffmanX(adapter=_san_openmp(t)).compress(data) for t in (1, 2, 4)
    }
    readers = [
        HuffmanX(adapter=_san_openmp(t)) for t in (1, 2, 4)
    ] + [HuffmanX(adapter=SanitizingAdapter(get_adapter("serial")))]
    for blob in blobs.values():
        for reader in readers:
            assert reader.decompress(blob).tobytes() == data


@pytest.mark.parametrize("threads", [2, 4])
def test_segmented_steady_state_under_sanitizer(rng, threads):
    # Per-segment contexts must reach the zero-alloc steady state even
    # while the sanitizer re-executes every GEM batch.
    from repro.check import assert_steady_state

    codec = HuffmanX(adapter=_san_openmp(threads))
    data = _payload(rng, 3 * SEG)
    assert_steady_state(lambda: codec.compress(data), codec.cache)
