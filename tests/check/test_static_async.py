"""Seeded-defect tests for the async-safety pack (HPL101–HPL104)."""

from repro.check.static import analyze_source


def _rules(src: str) -> list[str]:
    result = analyze_source("seeded.py", src, packs=("async",))
    return [f.rule for f in result.findings]


class TestHPL101Blocking:
    def test_time_sleep_in_async_def(self):
        src = "import time\nasync def f():\n    time.sleep(1)\n"
        assert "HPL101" in _rules(src)

    def test_sync_codec_call_in_async_def(self):
        src = "async def f(codec, x):\n    return codec.compress(x)\n"
        assert "HPL101" in _rules(src)

    def test_requests_and_subprocess(self):
        src = (
            "import requests\nimport subprocess\n"
            "async def f(url):\n"
            "    subprocess.run(['ls'])\n"
            "    return requests.get(url)\n"
        )
        assert _rules(src).count("HPL101") == 2

    def test_coroutine_fed_to_gather_is_not_blocking(self):
        src = (
            "import asyncio\n"
            "async def f(svc, spec, arrays):\n"
            "    return await asyncio.gather(\n"
            "        *(svc.compress(spec, a) for a in arrays)\n"
            "    )\n"
        )
        assert _rules(src) == []

    def test_same_call_in_sync_def_ok(self):
        src = "import time\ndef f():\n    time.sleep(1)\n"
        assert _rules(src) == []


class TestHPL102AwaitUnderLock:
    def test_module_level_threading_lock(self):
        src = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "async def f(q):\n"
            "    with lock:\n"
            "        await q.get()\n"
        )
        assert "HPL102" in _rules(src)

    def test_self_attribute_lock_by_name(self):
        src = (
            "async def f(self, q):\n"
            "    with self._lock:\n"
            "        await q.get()\n"
        )
        assert "HPL102" in _rules(src)

    def test_asyncio_lock_is_fine(self):
        src = (
            "import asyncio\n"
            "_lk = asyncio.Lock()\n"
            "async def f(q):\n"
            "    async with _lk:\n"
            "        await q.get()\n"
        )
        assert _rules(src) == []

    def test_sync_lock_without_await_ok(self):
        src = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "async def f(stats):\n"
            "    with lock:\n"
            "        stats['n'] += 1\n"
        )
        assert _rules(src) == []


class TestHPL103FireAndForget:
    def test_discarded_create_task(self):
        src = (
            "import asyncio\n"
            "async def f(coro):\n"
            "    asyncio.create_task(coro())\n"
        )
        assert "HPL103" in _rules(src)

    def test_executor_future_assigned_never_used(self):
        src = (
            "async def f(loop, fn):\n"
            "    fut = loop.run_in_executor(None, fn)\n"
        )
        assert "HPL103" in _rules(src)

    def test_awaited_task_ok(self):
        src = (
            "import asyncio\n"
            "async def f(coro):\n"
            "    t = asyncio.create_task(coro())\n"
            "    await t\n"
        )
        assert _rules(src) == []

    def test_done_callback_counts_as_consumed(self):
        src = (
            "async def f(loop, fn, on_done):\n"
            "    fut = loop.run_in_executor(None, fn)\n"
            "    fut.add_done_callback(on_done)\n"
        )
        assert _rules(src) == []


class TestHPL104ExecutorSharedState:
    def test_run_in_executor_bound_method_mutates_shared_attr(self):
        src = (
            "class S:\n"
            "    async def tick(self):\n"
            "        self.count = self.count + 1\n"
            "    def _job(self):\n"
            "        self.count += 1\n"
            "    async def go(self, loop):\n"
            "        await loop.run_in_executor(None, self._job)\n"
        )
        assert "HPL104" in _rules(src)

    def test_pool_submit_bound_method_mutates_shared_attr(self):
        src = (
            "class S:\n"
            "    async def tick(self):\n"
            "        self.count = self.count + 1\n"
            "    def _job(self):\n"
            "        self.count += 1\n"
            "    async def go(self):\n"
            "        fut = self._pool.submit(self._job)\n"
            "        await fut\n"
        )
        assert "HPL104" in _rules(src)

    def test_private_state_not_shared_is_ok(self):
        src = (
            "class S:\n"
            "    def _job(self):\n"
            "        self._scratch = 1\n"
            "    async def go(self, loop):\n"
            "        await loop.run_in_executor(None, self._job)\n"
        )
        assert _rules(src) == []
