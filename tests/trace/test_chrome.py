"""Chrome trace-event export: schema, round-trip, validation."""

from __future__ import annotations

import json

import pytest

import repro.trace as trace
from repro.trace.chrome import (
    chrome_events,
    export_chrome,
    load_chrome,
    spans_from_chrome,
    validate_events,
)


def _record_some_spans():
    trace.enable()
    with trace.span("mgard.decompose", cat="mgard", nbytes=4096):
        with trace.span("gem.tridiag", cat="adapter.serial"):
            pass
    with trace.span("io.put", cat="io"):
        pass


def test_chrome_events_schema():
    _record_some_spans()
    evs = chrome_events()
    xs = [e for e in evs if e["ph"] == "X"]
    assert len(xs) == 3
    for e in xs:
        for field in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
            assert field in e, field
        assert isinstance(e["pid"], int)
        assert isinstance(e["tid"], int)
        assert e["ts"] >= 0 and e["dur"] >= 0
    # one thread_name metadata record per lane
    ms = [e for e in evs if e["ph"] == "M"]
    assert ms and all(m["name"] == "thread_name" for m in ms)


def test_timestamps_rebased_to_zero():
    _record_some_spans()
    xs = [e for e in chrome_events() if e["ph"] == "X"]
    assert min(e["ts"] for e in xs) == 0


def test_export_load_round_trip(tmp_path):
    _record_some_spans()
    path = export_chrome(tmp_path / "trace.json")
    loaded = load_chrome(path)  # load_chrome validates
    raw = json.loads(path.read_text())
    assert loaded == raw
    xs = [e for e in loaded if e["ph"] == "X"]
    assert {e["name"] for e in xs} == {"mgard.decompose", "gem.tridiag", "io.put"}


def test_spans_round_trip_preserve_fields(tmp_path):
    _record_some_spans()
    original = trace.events()
    path = export_chrome(tmp_path / "trace.json")
    back = spans_from_chrome(load_chrome(path))
    assert len(back) == len(original)
    by_name = {e.name: e for e in back}
    src = by_name["mgard.decompose"]
    assert src.cat == "mgard"
    assert src.args["nbytes"] == 4096


def test_validate_rejects_missing_fields():
    with pytest.raises(ValueError):
        validate_events([{"ph": "X", "name": "x"}])
    with pytest.raises(ValueError):
        validate_events([{"ph": "X", "name": "x", "ts": -1.0, "dur": 0,
                          "pid": 1, "tid": 1}])
    with pytest.raises(ValueError):
        validate_events("not a list")


def test_validate_accepts_exported_stream(tmp_path):
    _record_some_spans()
    path = export_chrome(tmp_path / "t.json")
    validate_events(json.loads(path.read_text()))  # must not raise
