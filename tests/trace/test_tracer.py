"""Tracer core: disabled fast path, span recording, nesting, threads."""

from __future__ import annotations

import threading

import pytest

import repro.trace as trace
from repro.trace.tracer import NULL_SPAN, TRACER


# -- disabled fast path ---------------------------------------------------
def test_disabled_span_is_shared_null_singleton():
    assert not trace.enabled()
    s1 = trace.span("mgard.decompose", chunk=1)
    s2 = trace.span("zfp.transform")
    assert s1 is NULL_SPAN
    assert s2 is NULL_SPAN


def test_disabled_span_records_nothing():
    with trace.span("stage", nbytes=10):
        pass
    assert trace.events() == []
    assert TRACER.snapshot() == []


def test_null_span_api_is_inert():
    with trace.span("anything") as s:
        assert s.set(extra=1) is s  # chainable no-op


# -- enabled recording ----------------------------------------------------
def test_span_records_event_with_timing():
    trace.enable()
    with trace.span("mgard.decompose", cat="mgard", chunk=3):
        x = sum(range(100))
    (ev,) = trace.events()
    assert ev.name == "mgard.decompose"
    assert ev.cat == "mgard"
    assert ev.args["chunk"] == 3
    assert ev.dur_ns >= 0
    assert ev.end_ns == ev.start_ns + ev.dur_ns
    assert ev.tid == threading.get_ident()


def test_nested_spans_record_depth():
    trace.enable()
    with trace.span("outer"):
        with trace.span("inner"):
            pass
    by_name = {e.name: e for e in trace.events()}
    assert by_name["outer"].depth == 0
    assert by_name["inner"].depth == 1


def test_span_set_merges_args():
    trace.enable()
    with trace.span("s", a=1) as sp:
        sp.set(b=2)
    (ev,) = trace.events()
    assert ev.args == {"a": 1, "b": 2}


def test_span_records_error_flag_on_exception():
    trace.enable()
    with pytest.raises(ValueError):
        with trace.span("failing"):
            raise ValueError("boom")
    (ev,) = trace.events()
    assert ev.args["error"] == "ValueError"


def test_traced_decorator():
    trace.enable()

    @trace.traced(cat="host")
    def work(n):
        return n * 2

    assert work(21) == 42
    (ev,) = trace.events()
    assert ev.name.endswith("work")  # __qualname__ of the wrapped fn


def test_enable_clear_and_disable():
    trace.enable()
    with trace.span("a"):
        pass
    assert len(trace.events()) == 1
    trace.enable(clear=True)
    assert trace.events() == []
    trace.disable()
    assert not trace.enabled()
    with trace.span("b"):
        pass
    assert trace.events() == []


def test_spans_commit_from_worker_threads():
    trace.enable()

    def work(i):
        with trace.span("worker", cat="host", i=i):
            pass

    threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    evs = trace.events()
    assert len(evs) == 8
    assert len({e.tid for e in evs}) >= 1
    assert sorted(e.args["i"] for e in evs) == list(range(8))


def test_stage_table_and_summary_nonempty():
    trace.enable()
    with trace.span("stage.one"):
        pass
    table = trace.stage_table()
    assert "stage.one" in table
    assert "stage.one" in trace.summary()


def test_disabled_overhead_is_flag_check(benchmark=None):
    """The disabled path must not allocate a new object per call."""
    ids = {id(trace.span("x")) for _ in range(100)}
    assert len(ids) == 1
