"""Acceptance: every codec traced end to end, Gantt adapter, CLI, env."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.trace as trace
from repro.trace.chrome import export_chrome, load_chrome
from repro.trace.gantt import kind_for_category, render_spans, to_sim_trace

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _codec(name, adapter=None):
    from repro import Config, ErrorMode, HuffmanX, MGARDX, ZFPX

    if name == "mgard":
        return MGARDX(
            Config(error_bound=1e-3, error_mode=ErrorMode.ABS), adapter=adapter
        )
    if name == "zfp":
        return ZFPX(rate=16, adapter=adapter)
    return HuffmanX(adapter=adapter)


@pytest.mark.parametrize("name", ["mgard", "zfp", "huffman"])
@pytest.mark.parametrize("family", ["serial", "openmp"])
def test_codec_emits_valid_chrome_trace(name, family, tmp_path, smooth_3d):
    """ISSUE acceptance: compress+decompress of each codec under
    HPDR_TRACE emits loadable Chrome JSON and a non-empty summary."""
    from repro.adapters import get_adapter

    trace.enable(clear=True)
    codec = _codec(name, adapter=get_adapter(family))
    data = smooth_3d if name != "huffman" else smooth_3d.view(np.uint8)
    out = codec.decompress(codec.compress(data))
    assert out.shape == data.shape

    path = export_chrome(tmp_path / f"{name}.json")
    events = load_chrome(path)  # validates schema
    xs = [e for e in events if e["ph"] == "X"]
    assert xs, "traced run produced no spans"
    # codec-category spans present (not just adapter-level ones)
    assert any(e["cat"] == name for e in xs)
    summary = trace.summary()
    assert summary.strip()
    assert name in summary


def test_trace_spans_render_through_machine_timeline():
    """Real executions render through the same Gantt as simulated
    Traces (the shared machine.timeline adapter)."""
    trace.enable()
    with trace.span("mgard.decompose", cat="mgard"):
        pass
    with trace.span("io.put", cat="io"):
        pass
    sim_trace = to_sim_trace(trace.events())
    assert len(sim_trace.tasks) == 2
    kinds = {t.kind for t in sim_trace.tasks}
    from repro.machine.engine import TaskKind

    assert kinds == {TaskKind.COMPUTE, TaskKind.IO}
    text = render_spans(trace.events())
    assert "thread-0" in text  # one lane per (pid, tid)


def test_kind_mapping_covers_known_categories():
    from repro.machine.engine import TaskKind

    assert kind_for_category("io") == TaskKind.IO
    assert kind_for_category("mgard") == TaskKind.COMPUTE
    assert kind_for_category("adapter.openmp") == TaskKind.COMPUTE
    assert kind_for_category("pipeline") == TaskKind.HOST


def test_sanitizer_composition_emits_san_spans(smooth_3d):
    from repro.adapters import get_adapter
    from repro.check import SanitizingAdapter

    trace.enable()
    adapter = SanitizingAdapter(get_adapter("serial"))
    codec = _codec("zfp", adapter=adapter)
    codec.decompress(codec.compress(smooth_3d))
    cats = {e.cat for e in trace.events()}
    assert "san" in cats
    assert any(c.startswith("adapter.") for c in cats)


def test_pipeline_queue_wait_metrics():
    from repro.core.pipeline import ReductionPipeline
    from repro.machine.device import SimDevice
    from repro.machine.engine import Simulator
    from repro.perf.models import kernel_model
    from repro.trace.metrics import REGISTRY

    trace.enable(clear=True)
    dev = SimDevice(Simulator(), "V100")
    pipe = ReductionPipeline(dev, kernel_model("mgard-x", "V100", 1e-3))
    pipe.run_compression([1 << 20] * 6)
    wait = REGISTRY.get("hpdr_pipeline_queue_wait_seconds_total")
    assert wait is not None
    assert len(wait.samples()) == 3  # one per queue
    assert REGISTRY.get("hpdr_pipeline_makespan_seconds").total() > 0
    names = {e.name for e in trace.events()}
    assert {"pipeline.build_compression", "pipeline.run_compression"} <= names


def test_cmm_metrics_hit_miss_and_evictions():
    from repro.core.context import ContextCache
    from repro.trace.metrics import REGISTRY

    trace.enable(clear=True)
    cache = ContextCache(capacity=4)
    ctx = cache.get(("a",))
    ctx.buffer("buf", (128,), np.float64)
    cache.get(("a",))  # hit
    lookups = REGISTRY.get("hpdr_cmm_lookups_total")
    assert lookups.value(outcome="miss") == 1
    assert lookups.value(outcome="hit") == 1
    # overflow the 4-context capacity to force LRU evictions
    for i in range(8):
        cache.get(("fill", i)).buffer("buf", (128,), np.float64)
    assert REGISTRY.get("hpdr_cmm_evictions_total").total() > 0


def test_hpdr_trace_env_enables_tracing(tmp_path):
    """HPDR_TRACE=1 turns tracing on at import (fresh interpreter)."""
    code = (
        "import repro.trace as t; "
        "assert t.enabled(); "
        "print('enabled-ok')"
    )
    env = dict(os.environ, HPDR_TRACE="1",
               PYTHONPATH=str(REPO_ROOT / "src"))
    r = subprocess.run([sys.executable, "-c", code], env=env,
                       capture_output=True, text=True)
    assert r.returncode == 0, r.stderr
    assert "enabled-ok" in r.stdout

    env["HPDR_TRACE"] = "0"
    code = "import repro.trace as t; assert not t.enabled(); print('off-ok')"
    r = subprocess.run([sys.executable, "-c", code], env=env,
                       capture_output=True, text=True)
    assert r.returncode == 0, r.stderr


def test_cli_trace_and_metrics_flags(tmp_path):
    field = tmp_path / "field.npy"
    np.save(field, np.linspace(0, 1, 32 * 32, dtype=np.float32).reshape(32, 32))
    out = tmp_path / "field.hpdr"
    tr = tmp_path / "trace.json"
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.pop("HPDR_TRACE", None)
    r = subprocess.run(
        [sys.executable, "-m", "repro", "compress", str(field), str(out),
         "--method", "zfp-x", "--trace", str(tr), "--metrics"],
        env=env, capture_output=True, text=True,
    )
    assert r.returncode == 0, r.stderr
    assert "== metrics ==" in r.stdout
    events = json.loads(tr.read_text())
    assert any(e.get("cat") == "zfp" for e in events if e["ph"] == "X")

    back = tmp_path / "back.npy"
    r = subprocess.run(
        [sys.executable, "-m", "repro", "decompress", str(out), str(back),
         "--trace", str(tmp_path / "dec.json")],
        env=env, capture_output=True, text=True,
    )
    assert r.returncode == 0, r.stderr
    assert (tmp_path / "dec.json").exists()


def test_bench_trace_run_writes_chrome_json(tmp_path):
    from repro.bench.wallclock import trace_run

    path = trace_run(tmp_path / "bench_trace.json")
    events = load_chrome(path)
    cats = {e.get("cat") for e in events if e["ph"] == "X"}
    assert {"mgard", "zfp", "huffman"} <= cats
    # trace_run must restore the disabled state it found
    assert not trace.enabled()
