"""Trace-test fixtures: isolate the global tracer/metrics state."""

from __future__ import annotations

import pytest

import repro.trace as trace


@pytest.fixture(autouse=True)
def clean_trace_state():
    """Every trace test starts and ends with tracing off and empty."""
    trace.reset()
    trace.disable()
    yield
    trace.reset()
    trace.disable()
