"""Metrics registry: counters, gauges, histograms, thread safety."""

from __future__ import annotations

import numpy as np
import pytest

import repro.trace as trace
from repro.trace.metrics import REGISTRY, Counter, Gauge, Histogram


def test_counter_labels_and_total():
    c = REGISTRY.counter("test_total", "help")
    c.inc(3, codec="mgard")
    c.inc(2, codec="zfp")
    c.inc()  # unlabeled
    assert c.value(codec="mgard") == 3
    assert c.value(codec="zfp") == 2
    assert c.total() == 6


def test_counter_rejects_negative_and_gauge_allows():
    c = REGISTRY.counter("test_c_total", "help")
    with pytest.raises(ValueError):
        c.inc(-1)
    g = REGISTRY.gauge("test_g", "help")
    g.inc(-5)
    g.set(7, direction="compress")
    assert g.value() == -5
    assert g.value(direction="compress") == 7


def test_histogram_buckets_cumulative():
    h = REGISTRY.histogram("test_h", "help", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0, 500.0):
        h.observe(v)
    assert h.count() == 4
    assert h.sum() == pytest.approx(555.5)
    assert h.max() == 500.0


def test_registry_kind_collision_raises():
    REGISTRY.counter("test_kind", "help")
    with pytest.raises(TypeError):
        REGISTRY.gauge("test_kind", "help")


def test_render_prometheus_exposition():
    REGISTRY.counter("hpdr_demo_total", "demo counter").inc(5, codec="x")
    REGISTRY.histogram("hpdr_demo_seconds", "demo hist",
                       buckets=(0.1, 1.0)).observe(0.5)
    text = trace.render_prometheus()
    assert "# HELP hpdr_demo_total demo counter" in text
    assert "# TYPE hpdr_demo_total counter" in text
    assert 'hpdr_demo_total{codec="x"} 5' in text
    assert 'le="+Inf"' in text
    assert "hpdr_demo_seconds_count 1" in text


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_codec_byte_counters_exact_under_openmp(threads):
    """Counter totals must be exact whatever the pool fan-out is."""
    from repro import HuffmanX
    from repro.adapters import get_adapter

    trace.enable(clear=True)
    adapter = get_adapter("openmp", num_threads=threads)
    codec = HuffmanX(adapter=adapter)
    rng = np.random.default_rng(7)
    data = rng.integers(0, 64, size=200_000).astype(np.uint8)
    reps = 3
    for _ in range(reps):
        blob = codec.compress(data)
        out = codec.decompress(blob)
    assert np.array_equal(out, data)
    c = REGISTRY.get("hpdr_bytes_in_total")
    assert c.value(codec="huffman") == reps * data.nbytes
    assert REGISTRY.get("hpdr_bytes_out_total").value(codec="huffman") == (
        reps * len(blob)
    )


@pytest.mark.parametrize("threads", [2, 4])
def test_concurrent_counter_increments_are_atomic(threads):
    """Parallel inc() from pool threads must never lose updates."""
    from repro.adapters import get_adapter

    trace.enable(clear=True)
    c = REGISTRY.counter("test_atomic_total", "help")
    adapter = get_adapter("openmp", num_threads=threads)
    n = 2000

    def bump(_):
        c.inc(1, kind="w")
        return None

    adapter.map_tasks(bump, range(n))
    assert c.value(kind="w") == n


def test_metrics_idle_without_tracing():
    """Instrumented code paths must not record metrics when disabled."""
    from repro import HuffmanX

    assert not trace.enabled()
    codec = HuffmanX()
    data = np.arange(50_000, dtype=np.uint8) % 17
    codec.decompress(codec.compress(data))
    assert REGISTRY.get("hpdr_bytes_in_total") is None
