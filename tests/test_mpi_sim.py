"""In-process MPI-style communicator."""

import operator

import numpy as np
import pytest

from repro.mpi_sim import run_ranks


class TestPointToPoint:
    def test_send_recv_pair(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"a": 7}, dest=1, tag=11)
                return None
            if comm.rank == 1:
                return comm.recv(source=0, tag=11)

        results = run_ranks(2, prog)
        assert results[1] == {"a": 7}

    def test_numpy_arrays_pass(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(10), dest=1)
                return None
            return comm.recv(source=0)

        results = run_ranks(2, prog)
        assert np.array_equal(results[1], np.arange(10))

    def test_ring_exchange(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank, dest=right)
            return comm.recv(source=left)

        assert run_ranks(4, prog) == [3, 0, 1, 2]

    def test_tags_separate_channels(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            # Receive in the opposite order of sending: tags route.
            b = comm.recv(source=0, tag=2)
            a = comm.recv(source=0, tag=1)
            return (a, b)

        assert run_ranks(2, prog)[1] == ("a", "b")

    def test_invalid_peer(self):
        def prog(comm):
            comm.send(1, dest=5)

        with pytest.raises(RuntimeError):
            run_ranks(2, prog)


class TestCollectives:
    def test_bcast(self):
        def prog(comm):
            data = {"key": [1, 2, 3]} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        results = run_ranks(4, prog)
        assert all(r == {"key": [1, 2, 3]} for r in results)

    def test_scatter_gather(self):
        def prog(comm):
            data = [(i + 1) ** 2 for i in range(comm.size)] if comm.rank == 0 else None
            mine = comm.scatter(data, root=0)
            assert mine == (comm.rank + 1) ** 2
            return comm.gather(mine * 10, root=0)

        results = run_ranks(3, prog)
        assert results[0] == [10, 40, 90]
        assert results[1] is None

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(comm.rank)

        results = run_ranks(4, prog)
        assert all(r == [0, 1, 2, 3] for r in results)

    def test_allreduce_sum_and_max(self):
        def prog(comm):
            total = comm.allreduce(comm.rank + 1)
            biggest = comm.allreduce(comm.rank, op=max)
            return total, biggest

        for total, biggest in run_ranks(4, prog):
            assert total == 10
            assert biggest == 3

    def test_reduce_to_root(self):
        def prog(comm):
            return comm.reduce(np.full(3, comm.rank + 1.0), op=operator.add)

        results = run_ranks(3, prog)
        assert np.allclose(results[0], 6.0)
        assert results[1] is None

    def test_consecutive_collectives_stay_in_sync(self):
        def prog(comm):
            a = comm.bcast(comm.rank, root=0)
            b = comm.bcast(comm.rank, root=1)
            c = comm.allgather(a + b)
            return (a, b, tuple(c))

        results = run_ranks(3, prog)
        assert all(r == (0, 1, (1, 1, 1)) for r in results)

    def test_barrier_all_arrive(self):
        order = []

        def prog(comm):
            order.append(("pre", comm.rank))
            comm.barrier()
            order.append(("post", comm.rank))

        run_ranks(3, prog)
        pres = [i for i, (phase, _) in enumerate(order) if phase == "pre"]
        posts = [i for i, (phase, _) in enumerate(order) if phase == "post"]
        assert max(pres) < min(posts)


class TestRankParallelReduction:
    def test_domain_decomposed_compression(self, rng):
        """The paper's rank pattern: each rank reduces its slab, root
        gathers blobs and reconstructs the global field."""
        from repro import Config, ErrorMode, MGARDX

        global_field = rng.normal(size=(16, 20))
        cfg = Config(error_bound=0.01, error_mode=ErrorMode.ABS)

        def prog(comm):
            slabs = (
                np.array_split(global_field, comm.size, axis=0)
                if comm.rank == 0 else None
            )
            mine = comm.scatter(slabs, root=0)
            blob = MGARDX(cfg).compress(np.ascontiguousarray(mine))
            blobs = comm.gather(blob, root=0)
            if comm.rank == 0:
                parts = [MGARDX(cfg).decompress(b) for b in blobs]
                return np.concatenate(parts, axis=0)
            return None

        restored = run_ranks(4, prog)[0]
        assert restored.shape == global_field.shape
        assert np.max(np.abs(restored - global_field)) <= 0.01

    def test_failure_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("rank exploded")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            run_ranks(2, prog)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            run_ranks(0, lambda comm: None)
