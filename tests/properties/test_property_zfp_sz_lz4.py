"""Property-based tests: ZFP, SZ and LZ4 invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro import LZ4, SZ, ZFPX, Config, ErrorMode
from repro.compressors.baselines.sz import lorenzo_forward, lorenzo_inverse
from repro.compressors.zfp.bitplane import from_negabinary, to_negabinary
from repro.compressors.zfp.transform import fwd_transform, inv_transform

finite32 = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)

fields32 = arrays(
    dtype=np.float32,
    shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=12),
    elements=finite32,
)


@given(
    x=arrays(dtype=np.int64, shape=st.integers(1, 200),
             elements=st.integers(-(2**30), 2**30)),
    width=st.sampled_from([32, 64]),
)
@settings(max_examples=80, deadline=None)
def test_negabinary_bijective(x, width):
    assert np.array_equal(from_negabinary(to_negabinary(x, width), width), x)


@given(
    ib=arrays(dtype=np.int64, shape=st.tuples(st.integers(1, 20), st.just(16)),
              elements=st.integers(-(2**28), 2**28)),
)
@settings(max_examples=50, deadline=None)
def test_transform_near_inverse(ib):
    back = inv_transform(fwd_transform(ib, 2), 2)
    assert np.abs(back - ib).max() <= 16  # bounded lifting shift loss


@given(data=fields32, rate=st.sampled_from([8, 16, 28]))
@settings(max_examples=40, deadline=None)
def test_zfp_fixed_rate_size_depends_only_on_shape(data, rate):
    z = ZFPX(rate=rate)
    blob = z.compress(data)
    zeros = z.compress(np.zeros_like(data))
    assert len(blob) == len(zeros)
    back = z.decompress(blob)
    assert back.shape == data.shape and back.dtype == data.dtype


@given(
    xq=arrays(dtype=np.int64,
              shape=array_shapes(min_dims=1, max_dims=4, min_side=1, max_side=8),
              elements=st.integers(-(2**40), 2**40)),
)
@settings(max_examples=60, deadline=None)
def test_lorenzo_bijective(xq):
    assert np.array_equal(lorenzo_inverse(lorenzo_forward(xq)), xq)


@given(data=fields32, eb=st.floats(min_value=1e-5, max_value=0.5))
@settings(max_examples=40, deadline=None)
def test_sz_error_bound_universal(data, eb):
    """SZ's bound holds for *any* finite input — exact by construction
    in float64; the final cast back to the input dtype can add at most
    half an ulp of the reconstructed value."""
    scale = max(1.0, float(np.abs(data).max()))
    bound = eb * scale
    sz = SZ(Config(error_bound=bound, error_mode=ErrorMode.ABS))
    ulp = float(np.spacing(np.float32(scale)))
    assert sz.max_error(data, sz.compress(data)) <= bound + ulp


@given(raw=st.binary(min_size=0, max_size=3000))
@settings(max_examples=60, deadline=None)
def test_lz4_lossless_any_bytes(raw):
    lz = LZ4()
    back = lz.decompress(lz.compress(raw))
    assert back.tobytes() == raw
