"""Property-based tests: MGARD invariants (transform exactness and the
error-bound guarantee)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro import Config, ErrorMode, MGARDX
from repro.compressors.mgard.decompose import decompose, recompose
from repro.compressors.mgard.hierarchy import Hierarchy
from repro.compressors.mgard.quantize import from_symbols, to_symbols

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)

small_fields = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=3, min_side=2, max_side=14),
    elements=finite_floats,
)


@given(data=small_fields)
@settings(max_examples=40, deadline=None)
def test_decompose_recompose_identity(data):
    h = Hierarchy(data.shape)
    coeffs, coarsest = decompose(data, h)
    back = recompose(coeffs, coarsest, h)
    scale = max(1.0, np.abs(data).max())
    assert np.max(np.abs(back - data)) <= 1e-8 * scale


@given(data=small_fields, eb=st.floats(min_value=1e-4, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_absolute_error_bound_holds(data, eb):
    scale = max(1.0, np.abs(data).max())
    bound = eb * scale
    c = MGARDX(Config(error_bound=bound, error_mode=ErrorMode.ABS))
    blob = c.compress(data)
    assert c.max_error(data, blob) <= bound * (1 + 1e-9)


@given(
    q=arrays(
        dtype=np.int64,
        shape=st.integers(0, 300),
        elements=st.integers(-(2**40), 2**40),
    ),
    dict_size=st.sampled_from([2, 16, 256, 4096]),
)
@settings(max_examples=60, deadline=None)
def test_symbol_mapping_roundtrip(q, dict_size):
    syms, outliers = to_symbols(q, dict_size)
    assert np.all(syms >= 0) and np.all(syms < dict_size)
    assert np.array_equal(from_symbols(syms, outliers), q)


@given(data=small_fields)
@settings(max_examples=25, deadline=None)
def test_coefficient_count_invariant(data):
    h = Hierarchy(data.shape)
    coeffs, coarsest = decompose(data, h)
    assert sum(c.size for c in coeffs) + coarsest.size == data.size
