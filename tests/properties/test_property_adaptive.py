"""Property-based tests: adaptive chunk scheduling invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveConfig, adaptive_schedule, bottleneck_chunk
from repro.perf.models import kernel_model, list_pipelines
from repro.machine.specs import GPU_SPECS

MB = int(1e6)
GB = int(1e9)

pipelines = st.sampled_from(["mgard-x", "zfp-x", "huffman-x"])
processors = st.sampled_from(sorted(GPU_SPECS))


@given(
    total=st.integers(1, 20 * GB),
    pipeline=pipelines,
    proc=processors,
    init=st.integers(1 * MB, 256 * MB),
    ratio=st.floats(1.1, 100.0),
)
@settings(max_examples=80, deadline=None)
def test_schedule_partitions_total(total, pipeline, proc, init, ratio):
    model = kernel_model(pipeline, proc)
    cfg = AdaptiveConfig(initial_chunk=init)
    sizes = adaptive_schedule(total, model, cfg, ratio=ratio)
    assert sum(sizes) == total
    assert all(s > 0 for s in sizes)


@given(
    total=st.integers(1 * GB, 20 * GB),
    pipeline=pipelines,
    proc=processors,
    limit=st.integers(64 * MB, 2 * GB),
)
@settings(max_examples=60, deadline=None)
def test_schedule_respects_limit(total, pipeline, proc, limit):
    model = kernel_model(pipeline, proc)
    cfg = AdaptiveConfig(max_chunk=limit)
    sizes = adaptive_schedule(total, model, cfg)
    assert max(sizes) <= limit


@given(pipeline=pipelines, proc=processors,
       ratio=st.floats(1.1, 100.0))
@settings(max_examples=60, deadline=None)
def test_bottleneck_chunk_bounded(pipeline, proc, ratio):
    model = kernel_model(pipeline, proc)
    c = bottleneck_chunk(model, ratio)
    assert 0 <= c <= model.c_threshold


@given(pipeline=pipelines, proc=processors)
@settings(max_examples=40, deadline=None)
def test_steady_state_chunks_do_not_shrink(pipeline, proc):
    """After the ramp-up, chunks never fall below the floor — no
    occupancy-collapse regression in the steady state."""
    model = kernel_model(pipeline, proc)
    sizes = adaptive_schedule(30 * GB, model, ratio=8.0)
    if len(sizes) > 3:
        steady = sizes[1:-1]
        assert min(steady) >= min(steady[0], bottleneck_chunk(model, 8.0))
