"""Property-based tests: Huffman coding invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compressors.huffman import HuffmanX, build_codebook, huffman_code_lengths
from repro.compressors.huffman.codebook import MAX_CODE_LENGTH

key_arrays = arrays(
    dtype=np.int64,
    shape=st.integers(0, 600),
    elements=st.integers(0, 63),
)

frequency_arrays = arrays(
    dtype=np.int64,
    shape=st.integers(1, 128),
    elements=st.integers(0, 10_000),
)


@given(keys=key_arrays)
@settings(max_examples=60, deadline=None)
def test_roundtrip_lossless(keys):
    h = HuffmanX(chunk_size=64)
    assert np.array_equal(h.decompress_keys(h.compress_keys(keys, 64)), keys)


@given(freqs=frequency_arrays)
@settings(max_examples=100, deadline=None)
def test_kraft_inequality_always_holds(freqs):
    lengths = huffman_code_lengths(freqs)
    used = lengths[lengths > 0].astype(np.float64)
    if used.size:
        assert np.sum(2.0 ** -used) <= 1.0 + 1e-12
    assert lengths.max(initial=0) <= MAX_CODE_LENGTH


@given(freqs=frequency_arrays)
@settings(max_examples=60, deadline=None)
def test_prefix_freeness(freqs):
    book = build_codebook(freqs)
    used = np.flatnonzero(book.lengths)
    codes = [format(book.codes[s], f"0{book.lengths[s]}b") for s in used]
    codes.sort()
    for a, b in zip(codes, codes[1:]):
        assert not b.startswith(a)


@given(freqs=frequency_arrays)
@settings(max_examples=60, deadline=None)
def test_monotone_lengths_vs_frequency(freqs):
    """More frequent symbols never get longer codes (optimality)."""
    lengths = huffman_code_lengths(freqs)
    used = np.flatnonzero(freqs)
    for i in used:
        for j in used:
            if freqs[i] > freqs[j]:
                assert lengths[i] <= lengths[j]


@given(
    data=arrays(
        dtype=np.uint8, shape=st.integers(0, 400), elements=st.integers(0, 255)
    )
)
@settings(max_examples=50, deadline=None)
def test_byte_level_lossless(data):
    h = HuffmanX(chunk_size=128)
    back = h.decompress(h.compress(data))
    assert np.array_equal(back, data)
