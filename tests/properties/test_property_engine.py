"""Property-based tests: discrete-event engine schedule invariants.

Random task graphs (random queues, resources, chain dependencies) must
always produce a valid schedule: queue order respected, resources
exclusive, dependencies satisfied, makespan bounded by total work.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.abstractions import blockize, unblockize
from repro.machine.engine import Simulator, TaskKind


@st.composite
def task_graphs(draw):
    n_tasks = draw(st.integers(1, 30))
    n_queues = draw(st.integers(1, 4))
    n_resources = draw(st.integers(1, 4))
    specs = []
    for i in range(n_tasks):
        specs.append(
            dict(
                queue=draw(st.integers(0, n_queues - 1)),
                resource=draw(st.integers(0, n_resources - 1)),
                duration=draw(
                    st.floats(min_value=0.001, max_value=10.0,
                              allow_nan=False, allow_infinity=False)
                ),
                # dependencies only on earlier tasks → acyclic
                deps=draw(
                    st.lists(st.integers(0, i - 1), max_size=3, unique=True)
                )
                if i > 0
                else [],
            )
        )
    return n_queues, n_resources, specs


@given(graph=task_graphs())
@settings(max_examples=80, deadline=None)
def test_random_dags_schedule_validly(graph):
    n_queues, n_resources, specs = graph
    sim = Simulator()
    queues = [sim.queue(f"q{i}") for i in range(n_queues)]
    resources = [sim.resource(f"r{i}") for i in range(n_resources)]
    tasks = []
    for i, s in enumerate(specs):
        t = sim.submit(
            f"t{i}",
            TaskKind.COMPUTE,
            resources[s["resource"]],
            queues[s["queue"]],
            duration=s["duration"],
            deps=[tasks[d] for d in s["deps"]],
        )
        tasks.append(t)
    trace = sim.run()
    trace.validate()  # raises on any invariant violation
    total_work = sum(s["duration"] for s in specs)
    assert trace.makespan <= total_work + 1e-9
    # Work conservation: busy time equals submitted durations.
    assert sum(t.end - t.start for t in trace.tasks) <= total_work + 1e-6


@given(
    shape=st.lists(st.integers(1, 12), min_size=1, max_size=3),
    block=st.integers(1, 5),
    halo=st.integers(0, 2),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=80, deadline=None)
def test_blockize_unblockize_roundtrip(shape, block, halo, seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=tuple(shape))
    block_shape = tuple(min(block, n) if halo == 0 else block for n in shape)
    batch, grid = blockize(data, block_shape, halo=halo)
    back = unblockize(batch, grid, data.shape, halo=halo)
    assert np.array_equal(back, data)
