"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import _envelope, _open_envelope, main


@pytest.fixture
def field_file(tmp_path, rng):
    data = rng.normal(size=(20, 24)).astype(np.float32)
    path = tmp_path / "field.npy"
    np.save(path, data)
    return path, data


class TestEnvelope:
    def test_roundtrip(self):
        method, payload = _open_envelope(_envelope("mgard-x", b"\x01\x02"))
        assert method == "mgard-x"
        assert payload == b"\x01\x02"

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            _open_envelope(b"NOPE....")


@pytest.mark.parametrize("method", ["mgard-x", "zfp-x", "sz", "huffman-x", "lz4"])
def test_compress_decompress_cycle(method, field_file, tmp_path, capsys):
    src, data = field_file
    hpdr = tmp_path / "out.hpdr"
    back = tmp_path / "back.npy"
    assert main(["compress", str(src), str(hpdr), "--method", method,
                 "--eb", "1e-3"]) == 0
    assert main(["decompress", str(hpdr), str(back)]) == 0
    restored = np.load(back)
    assert restored.shape == data.shape
    if method in ("huffman-x", "lz4"):
        assert np.array_equal(restored, data)
    else:
        assert np.max(np.abs(restored - data)) <= 1e-2 * np.ptp(data)


def test_info(field_file, tmp_path, capsys):
    src, _ = field_file
    hpdr = tmp_path / "out.hpdr"
    main(["compress", str(src), str(hpdr), "--method", "lz4"])
    assert main(["info", str(hpdr)]) == 0
    out = capsys.readouterr().out
    assert "method=lz4" in out


def test_refactor_retrieve_cycle(field_file, tmp_path, capsys):
    src, data = field_file
    mgrf = tmp_path / "f.mgrf"
    out = tmp_path / "coarse.npy"
    assert main(["refactor", str(src), str(mgrf), "--precision", "1e-7"]) == 0
    assert main(["retrieve", str(mgrf), str(out), "--levels", "2"]) == 0
    coarse = np.load(out)
    assert coarse.shape == data.shape
    assert main(["retrieve", str(mgrf), str(out)]) == 0  # full retrieval
    full = np.load(out)
    assert np.max(np.abs(full - data)) < 1e-4 * np.ptp(data)


def test_datasets_listing(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "NYX" in out and "XGC" in out and "E3SM" in out


def test_adapter_flag(field_file, tmp_path):
    src, data = field_file
    hpdr = tmp_path / "out.hpdr"
    assert main(["compress", str(src), str(hpdr), "--method", "mgard-x",
                 "--adapter", "cuda"]) == 0


def test_unknown_method_rejected(field_file, tmp_path):
    src, _ = field_file
    with pytest.raises(SystemExit):
        main(["compress", str(src), str(tmp_path / "x"), "--method", "brotli"])


def test_zfp_accuracy_mode(field_file, tmp_path):
    src, data = field_file
    hpdr = tmp_path / "out.hpdr"
    back = tmp_path / "back.npy"
    assert main(["compress", str(src), str(hpdr), "--method", "zfp-accuracy",
                 "--tolerance", "0.01"]) == 0
    assert main(["decompress", str(hpdr), str(back)]) == 0
    restored = np.load(back)
    assert np.max(np.abs(restored - data)) <= 0.01


def test_blast_selfhost_roundtrip(capsys):
    assert main(["blast", "--selfhost", "--clients", "4", "--requests", "5",
                 "--codec", "zfp-x", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "20 requests" in out
    assert "mismatches=0" in out
    assert "errors=0" in out


def test_blast_requires_port_or_selfhost():
    with pytest.raises(SystemExit):
        main(["blast", "--clients", "1", "--requests", "1"])


def test_blast_bad_shape_rejected():
    with pytest.raises(SystemExit):
        main(["blast", "--selfhost", "--shape", "banana"])
