"""Hash-ring invariants: determinism, balance, minimal disruption.

The minimal-disruption property is the one the cluster's failover
correctness leans on: when a shard is removed (adoption), only the keys
it owned may move.  Hypothesis drives it at 2/4/8 shards over arbitrary
key sets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DEFAULT_VNODES, HashRing, mixed_specs, route_key

_KEYS = st.lists(
    st.one_of(st.text(max_size=12), st.integers(-1000, 1000),
              st.tuples(st.text(max_size=6), st.integers(0, 50))),
    min_size=1, max_size=40, unique=True,
)


def _ring(n: int) -> HashRing:
    return HashRing([f"s{i}" for i in range(n)])


def test_lookup_is_deterministic_across_instances():
    keys = [("zfp-x", 8.0, "<f4", (2, 1024)), "plain", 42]
    a, b = _ring(4), _ring(4)
    assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]


def test_add_remove_idempotent_and_contains():
    ring = _ring(2)
    assert "s0" in ring and len(ring) == 2
    ring.add("s0")  # idempotent
    assert len(ring) == 2
    ring.remove("nope")  # unknown: no-op
    ring.remove("s0")
    assert "s0" not in ring and len(ring) == 1
    assert ring.lookup("anything") == "s1"


def test_empty_ring_raises_lookup_error():
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.lookup("k")


def test_vnodes_validation():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)


def test_virtual_nodes_spread_load():
    """With vnodes, every shard owns a non-trivial share of many keys."""
    ring = _ring(4)
    share = ring.share([f"key-{i}" for i in range(4000)])
    assert sum(share.values()) == 4000
    for node, count in share.items():
        # Perfect balance is 1000; SHA-256 vnode placement keeps every
        # share within a loose band (the test pins "no starved shard").
        assert count > 400, f"{node} owns only {count}/4000 keys"


@settings(max_examples=60, deadline=None)
@given(n=st.sampled_from([2, 4, 8]), keys=_KEYS,
       victim=st.integers(0, 7))
def test_minimal_disruption_on_removal(n, keys, victim):
    """Removing one shard moves ONLY the keys that shard owned."""
    ring = _ring(n)
    before = {k: ring.lookup(k) for k in keys}
    dead = f"s{victim % n}"
    ring.remove(dead)
    for k in keys:
        after = ring.lookup(k)
        if before[k] == dead:
            assert after != dead, f"{k!r} still maps to the removed shard"
        else:
            assert after == before[k], (
                f"{k!r} moved from {before[k]} to {after} although "
                f"{dead} never owned it"
            )


def test_route_key_separates_mixed_roster():
    """Every mixed-workload spec routes independently (distinct keys)."""
    arr = np.zeros((16, 16), dtype=np.float32)
    keys = {route_key(s, "compress", arr) for s in mixed_specs()}
    assert len(keys) == len(mixed_specs())


def test_route_key_compress_vs_decompress_differ():
    spec = mixed_specs(1)[0]
    arr = np.zeros((16, 16), dtype=np.float32)
    assert route_key(spec, "compress", arr) != route_key(spec, "decompress",
                                                         b"x" * 100)


def test_route_key_buckets_by_shape_class():
    """Shapes in one class share a route key; different classes split."""
    spec = mixed_specs(1)[0]
    a = np.zeros((16, 16), dtype=np.float32)
    b = np.zeros((4, 64), dtype=np.float32)  # same rank, same elems
    c = np.zeros((256, 256), dtype=np.float32)
    assert route_key(spec, "compress", a) == route_key(spec, "compress", b)
    assert route_key(spec, "compress", a) != route_key(spec, "compress", c)


def test_default_vnodes_constant():
    assert DEFAULT_VNODES == 64


def test_mixed_specs_bounds():
    assert len(mixed_specs()) == 16
    assert len(mixed_specs(3)) == 3
    with pytest.raises(ValueError):
        mixed_specs(0)
    with pytest.raises(ValueError):
        mixed_specs(17)
