"""Router behaviour: routing, backpressure, replicas, lifecycle, metrics."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

import repro.trace as trace
from repro.cluster import (
    ClusterConfig,
    ClusterService,
    NoHealthyShards,
    ShardDied,
    ShardOverloaded,
    mixed_specs,
)
from repro.cluster.router import _Replica, _ShardGroup
from repro.resilience.policy import RetryPolicy
from repro.serve import (
    BatchLimits,
    CodecSpec,
    ServiceConfig,
    ServiceClosed,
    ServiceOverloaded,
)


def _run(coro):
    return asyncio.run(coro)


def _quick_config(**kw) -> ClusterConfig:
    kw.setdefault("service", ServiceConfig(
        limits=BatchLimits(max_batch=8, max_latency_s=0.002)
    ))
    kw.setdefault("health_interval_s", 0.0)  # request-path failover only
    return ClusterConfig(**kw)


SPEC = CodecSpec("zfp-x", rate=8.0)
DATA = np.arange(256, dtype=np.float32).reshape(16, 16)


# -- config validation ------------------------------------------------------
@pytest.mark.parametrize("kw", [
    {"shards": 0},
    {"replicas": 0},
    {"backend": "thread"},
    {"shard_max_pending": 0},
    {"connections_per_shard": 0},
])
def test_config_validation(kw):
    with pytest.raises(ValueError):
        ClusterConfig(**kw)


def test_per_shard_limit_defaults_to_service_max_pending():
    cfg = ClusterConfig(service=ServiceConfig(max_pending=77))
    assert cfg.per_shard_limit == 77
    assert ClusterConfig(shard_max_pending=5).per_shard_limit == 5


# -- routing ----------------------------------------------------------------
def test_requests_land_on_the_owning_shard():
    async def run():
        async with ClusterService(_quick_config(shards=4)) as cs:
            for spec in mixed_specs(6):
                owner = cs.owner("compress", spec, DATA)
                before = cs.stats.per_shard.get(owner, 0)
                await cs.compress(spec, DATA)
                assert cs.stats.per_shard[owner] == before + 1

    _run(run())


def test_traffic_spreads_across_shards():
    async def run():
        async with ClusterService(_quick_config(shards=4)) as cs:
            for spec in mixed_specs():
                await cs.compress(spec, DATA)
            return cs.stats.snapshot()

    snap = _run(run())
    assert snap["completed"] == 16
    assert len(snap["per_shard"]) >= 2, (
        f"16 distinct route keys all landed on {snap['per_shard']}"
    )


def test_roundtrip_byte_identity_through_cluster():
    async def run():
        reference = SPEC.build()
        want = reference.compress(DATA)
        async with ClusterService(_quick_config(shards=3)) as cs:
            got = await cs.compress(SPEC, DATA)
            back = await cs.decompress(SPEC, got)
        assert bytes(got) == bytes(want)
        assert np.array_equal(np.asarray(back), reference.decompress(want))

    _run(run())


# -- backpressure -----------------------------------------------------------
def test_shard_overloaded_is_typed_and_counted():
    async def run():
        cfg = _quick_config(
            shards=1, shard_max_pending=1,
            service=ServiceConfig(
                limits=BatchLimits(max_batch=1, max_latency_s=0.02)
            ),
        )
        async with ClusterService(cfg) as cs:
            results = await asyncio.gather(
                *(cs.submit("compress", SPEC, DATA) for _ in range(8)),
                return_exceptions=True,
            )
            rejected = [r for r in results
                        if isinstance(r, ShardOverloaded)]
            completed = [r for r in results
                         if not isinstance(r, BaseException)]
            assert completed, "every request was shed"
            assert rejected, "no request was shed at cap 1"
            exc = rejected[0]
            assert exc.shard == "s0"
            assert exc.limit == 1
            # The typed error IS a ServiceOverloaded: every existing
            # client backoff path handles it unchanged.
            assert isinstance(exc, ServiceOverloaded)
            assert cs.stats.rejected == len(rejected)

    _run(run())


# -- replicas ---------------------------------------------------------------
def test_pick_prefers_least_backlog_healthy_replica():
    r0 = _Replica("s0r0", object(), threshold=2)
    r1 = _Replica("s0r1", object(), threshold=2)
    r0.inflight, r1.inflight = 3, 1
    group = _ShardGroup("s0", [r0, r1])
    assert group.pick() is r1
    r1.breaker.record_failure()
    r1.breaker.record_failure()
    assert not r1.healthy
    assert group.pick() is r0
    r0.breaker.record_failure()
    r0.breaker.record_failure()
    with pytest.raises(ShardDied):
        group.pick()
    assert not group.alive


def test_replicated_shards_serve_and_survive_one_replica_kill():
    async def run():
        cfg = _quick_config(shards=2, replicas=2, breaker_threshold=1,
                            retry=RetryPolicy(max_attempts=3,
                                              base_delay_s=0.0))
        async with ClusterService(cfg) as cs:
            owner = cs.owner("compress", SPEC, DATA)
            # Kill ONE replica of the owning shard: the group stays
            # alive, the other replica absorbs the range, no adoption.
            cs._groups[owner].replicas[0].shard.kill()
            for _ in range(4):
                await cs.compress(SPEC, DATA)
            assert cs.stats.adoptions == 0
            assert owner in cs.alive_shards

    _run(run())


# -- failover / no-healthy-shards ------------------------------------------
def test_all_shards_dead_raises_no_healthy_shards():
    async def run():
        cfg = _quick_config(shards=1, breaker_threshold=1,
                            retry=RetryPolicy(max_attempts=3,
                                              base_delay_s=0.0))
        async with ClusterService(cfg) as cs:
            cs.kill_shard("s0")
            with pytest.raises(NoHealthyShards):
                await cs.submit("compress", SPEC, DATA)
            assert cs.stats.adoptions == 1
            assert not cs.alive_shards

    _run(run())


@pytest.mark.timing_sensitive
def test_health_loop_adopts_dead_shard_without_traffic():
    async def run():
        cfg = _quick_config(shards=2, breaker_threshold=1,
                            health_interval_s=0.01)
        async with ClusterService(cfg) as cs:
            victim = cs.owner("compress", SPEC, DATA)
            cs.kill_shard(victim)
            for _ in range(200):
                if victim not in cs.alive_shards:
                    break
                await asyncio.sleep(0.01)
            assert victim not in cs.alive_shards, (
                "the health prober never adopted the dead shard"
            )
            # The survivor now owns the range; traffic flows on.
            blob = await cs.compress(SPEC, DATA)
            assert bytes(blob) == bytes(SPEC.build().compress(DATA))

    _run(run())


# -- lifecycle --------------------------------------------------------------
def test_submit_before_start_and_after_close_raises_closed():
    cs = ClusterService(_quick_config())
    with pytest.raises(ServiceClosed):
        _run(cs.submit("compress", SPEC, DATA))

    async def run():
        svc = await ClusterService(_quick_config()).start()
        await svc.close()
        await svc.close()  # idempotent
        with pytest.raises(ServiceClosed):
            await svc.submit("compress", SPEC, DATA)

    _run(run())


def test_drain_waits_for_inflight():
    async def run():
        async with ClusterService(_quick_config(shards=2)) as cs:
            tasks = [asyncio.ensure_future(cs.compress(s, DATA))
                     for s in mixed_specs(4)]
            await asyncio.sleep(0)
            await cs.drain()
            assert cs.inflight == 0
            assert all(t.done() for t in tasks)
            await asyncio.gather(*tasks)

    _run(run())


# -- observability ----------------------------------------------------------
def test_cluster_metrics_exported():
    async def run():
        async with ClusterService(_quick_config(shards=2,
                                                breaker_threshold=1)) as cs:
            for spec in mixed_specs(4):
                await cs.compress(spec, DATA)

    _run(run())
    prom = trace.render_prometheus()
    assert "hpdr_cluster_requests_total" in prom
    assert "hpdr_cluster_shards_alive" in prom


def test_failover_spans_emitted_when_tracing():
    async def run():
        cfg = _quick_config(shards=2, breaker_threshold=1,
                            retry=RetryPolicy(max_attempts=3,
                                              base_delay_s=0.0))
        async with ClusterService(cfg) as cs:
            cs.kill_shard(cs.owner("compress", SPEC, DATA))
            await cs.compress(SPEC, DATA)

    trace.enable(clear=True)
    try:
        _run(run())
        names = {e.name for e in trace.events()}
    finally:
        trace.disable()
    assert "cluster.failover" in names
    assert "cluster.adopt" in names
