"""Process-backend smoke: real subprocess shards over loopback TCP.

One small end-to-end pass — spawn is expensive, so the heavy failover
coverage lives in the (deterministic, in-loop) task-backend suites and
the blast CLI drill; this file pins that the subprocess plumbing
(spawn, port handshake, connection pool, SIGTERM drain) actually works.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterService, mixed_specs
from repro.serve import BatchLimits, ServiceConfig

DATA = np.arange(1024, dtype=np.float32).reshape(32, 32)


@pytest.mark.timing_sensitive
def test_process_backend_roundtrips_and_drains():
    async def run():
        cfg = ClusterConfig(
            shards=2,
            backend="process",
            service=ServiceConfig(
                limits=BatchLimits(max_batch=8, max_latency_s=0.002)
            ),
        )
        async with ClusterService(cfg) as cs:
            for spec in mixed_specs(4):
                want = spec.build().compress(DATA)
                blob = await cs.compress(spec, DATA)
                assert bytes(blob) == bytes(want)
                back = await cs.decompress(spec, bytes(blob))
                assert np.array_equal(
                    np.asarray(back), spec.build().decompress(want)
                )
            assert cs.stats.completed == 8
            assert len(cs.stats.per_shard) == 2

    asyncio.run(run())


def test_process_shard_rejects_unpicklable_retry_sleep():
    from repro.cluster.shard import ProcessShard

    cfg = ServiceConfig(retry_sleep=lambda s: None)
    with pytest.raises(ValueError):
        ProcessShard("p0", cfg)
