"""The cluster front door speaks the serve protocol unchanged.

``serve_tcp`` takes the router exactly as it takes a single service,
existing clients round-trip byte-identically, ``check_service`` passes
against the cluster via its ``service_factory`` hook, and the typed
per-shard backpressure error crosses the wire intact.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterService, mixed_specs
from repro.serve import (
    BatchLimits,
    BlastClient,
    CodecSpec,
    ReductionService,
    ServiceConfig,
    ShardOverloaded,
    serve_tcp,
)
from repro.serve.net import _raise_remote
from repro.testing import check_service

SPEC = CodecSpec("zfp-x", rate=8.0)
DATA = np.arange(1024, dtype=np.float32).reshape(32, 32)


def _quick_config(**kw) -> ClusterConfig:
    kw.setdefault("service", ServiceConfig(
        limits=BatchLimits(max_batch=8, max_latency_s=0.002)
    ))
    kw.setdefault("health_interval_s", 0.0)
    return ClusterConfig(**kw)


def test_check_service_passes_against_cluster_front_door():
    """The serve conformance oracle, unchanged, against the cluster."""
    check_service(
        codecs=("zfp-x", "huffman-x"),
        batch_sizes=(1, 7),
        service_factory=lambda cfg: ClusterService(
            ClusterConfig(shards=3, health_interval_s=0.0, service=cfg)
        ),
    )


def test_tcp_roundtrip_through_cluster_is_byte_identical():
    async def run():
        async with ClusterService(_quick_config(shards=3)) as cs:
            server = await serve_tcp(cs, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            client = await BlastClient.connect(host, port)
            try:
                for spec in mixed_specs(5):
                    want = spec.build().compress(DATA)
                    blob = await client.compress(spec, DATA)
                    assert bytes(blob) == bytes(want)
                    back = await client.decompress(spec, bytes(blob))
                    assert np.array_equal(
                        np.asarray(back), spec.build().decompress(want)
                    )
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

    asyncio.run(run())


def test_ping_roundtrip_against_service_and_cluster():
    async def run():
        async with ReductionService(ServiceConfig()) as svc:
            server = await serve_tcp(svc, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            client = await BlastClient.connect(host, port)
            await client.ping()
            await client.close()
            server.close()
            await server.wait_closed()
        async with ClusterService(_quick_config(shards=2)) as cs:
            server = await serve_tcp(cs, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            client = await BlastClient.connect(host, port)
            await client.ping()
            await client.close()
            server.close()
            await server.wait_closed()

    asyncio.run(run())


def test_shard_overloaded_crosses_the_wire_typed():
    """A shed request surfaces client-side as ShardOverloaded with the
    shard name — through the unchanged framing."""

    async def run():
        cfg = _quick_config(
            shards=1, shard_max_pending=1,
            service=ServiceConfig(
                limits=BatchLimits(max_batch=1, max_latency_s=0.02)
            ),
        )
        async with ClusterService(cfg) as cs:
            server = await serve_tcp(cs, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            clients = [await BlastClient.connect(host, port)
                       for _ in range(6)]
            try:
                results = await asyncio.gather(
                    *(c.request("compress", SPEC, DATA) for c in clients),
                    return_exceptions=True,
                )
            finally:
                for c in clients:
                    await c.close()
                server.close()
                await server.wait_closed()
            rejected = [r for r in results
                        if isinstance(r, ShardOverloaded)]
            completed = [r for r in results
                         if not isinstance(r, BaseException)]
            assert completed and rejected
            assert rejected[0].shard == "s0"
            assert rejected[0].limit == 1

    asyncio.run(run())


def test_raise_remote_reconstructs_shard_overloaded():
    with pytest.raises(ShardOverloaded) as ei:
        _raise_remote({"kind": "ShardOverloaded", "shard": "s3",
                       "depth": 9, "limit": 4})
    assert ei.value.shard == "s3"
    assert ei.value.depth == 9
    assert ei.value.limit == 4
    assert "s3" in str(ei.value)
