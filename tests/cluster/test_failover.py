"""Failover property: shard death mid-stream never changes a byte.

Hypothesis schedules a kill of the owning shard at arbitrary points in
a stream of concurrent requests — before the first request, mid-flight,
after the last — across 2 and 4 shard clusters.  Every response must be
byte-identical to the single-shot codec baseline: the router's
retry-on-survivor path re-executes lost requests, and determinism
guarantees the survivor reproduces exactly the stream the dead shard
would have produced.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ClusterService, mixed_specs
from repro.resilience.policy import RetryPolicy
from repro.serve import BatchLimits, CodecSpec, ServiceConfig

#: specs under test (two shard-distinct route keys keep traffic on
#: more than one shard without the full roster's cost).
SPECS = mixed_specs(4)
_RNG = np.random.default_rng(3)
ARRAYS = [
    np.ascontiguousarray(_RNG.standard_normal((16, 16)).astype(np.float32))
    for _ in range(6)
]

#: baseline: single-shot streams, computed once per process.
BASELINE = {
    (i, j): bytes(spec.build().compress(arr))
    for i, spec in enumerate(SPECS)
    for j, arr in enumerate(ARRAYS)
}


def _config(shards: int) -> ClusterConfig:
    return ClusterConfig(
        shards=shards,
        breaker_threshold=1,
        health_interval_s=0.0,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.0001),
        service=ServiceConfig(
            limits=BatchLimits(max_batch=8, max_latency_s=0.001)
        ),
    )


async def _blast_with_kill(shards: int, kill_after: int | None) -> dict:
    """Submit every (spec, array) pair concurrently; kill the owner of
    spec 0's range after ``kill_after`` completions (None = never)."""
    done = 0
    results: dict[tuple[int, int], bytes] = {}
    async with ClusterService(_config(shards)) as cs:
        target = cs.owner("compress", SPECS[0], ARRAYS[0])
        killed = False

        async def one(i: int, j: int) -> None:
            nonlocal done, killed
            blob = await cs.compress(SPECS[i], ARRAYS[j])
            results[(i, j)] = bytes(blob)
            done += 1
            if kill_after is not None and not killed and done >= kill_after:
                killed = True
                cs.kill_shard(target)

        await asyncio.gather(*(one(i, j)
                               for i in range(len(SPECS))
                               for j in range(len(ARRAYS))))
        if kill_after is not None and not killed:
            # The schedule asked for a kill after the stream: still
            # exercise the path so late kills cover close() of a dead
            # shard group.
            cs.kill_shard(target)
    return results


@settings(max_examples=10, deadline=None)
@given(shards=st.sampled_from([2, 4]),
       kill_after=st.one_of(st.none(), st.integers(0, 24)))
def test_mid_stream_kill_preserves_byte_identity(shards, kill_after):
    results = asyncio.run(_blast_with_kill(shards, kill_after))
    assert len(results) == len(SPECS) * len(ARRAYS)
    for key, blob in results.items():
        assert blob == BASELINE[key], (
            f"response for {key} diverged from single-shot after a "
            f"kill_after={kill_after} shard death ({shards} shards)"
        )


def test_kill_then_fresh_requests_land_on_survivors():
    """After adoption, the dead shard's keys all resolve to survivors."""

    async def run():
        async with ClusterService(_config(4)) as cs:
            victim = cs.owner("compress", SPECS[0], ARRAYS[0])
            cs.kill_shard(victim)
            for spec in SPECS:
                for arr in ARRAYS[:2]:
                    blob = await cs.compress(spec, arr)
                    assert bytes(blob) == bytes(spec.build().compress(arr))
            assert victim not in cs.alive_shards
            for spec in SPECS:
                assert cs.owner("compress", spec, ARRAYS[0]) != victim

    asyncio.run(run())


def test_exhausted_retries_surface_resilience_exhausted():
    """When the breaker never opens (high threshold), a dying shard
    exhausts the retry budget and the typed terminal error names the
    failover site and attempt count."""
    from repro.resilience.errors import ResilienceExhausted

    async def run():
        cfg = ClusterConfig(
            shards=1, breaker_threshold=100, health_interval_s=0.0,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            service=ServiceConfig(
                limits=BatchLimits(max_batch=4, max_latency_s=0.001)
            ),
        )
        async with ClusterService(cfg) as cs:
            cs.kill_shard("s0")
            with pytest.raises(ResilienceExhausted) as ei:
                await cs.submit("compress", SPECS[0], ARRAYS[0])
            assert ei.value.site == "cluster.forward"
            assert ei.value.attempts == 2

    asyncio.run(run())
