"""Segment model for progressive MGARD retrieval.

The progressive encoder splits each resolution level's quantized
coefficients into **bitplane segments**: integer residual planes,
coarsest first, whose shifted sum reconstructs the exact quantization
codes.  Each segment is independently decodable (its own Huffman
payload + outlier side channel behind a self-describing header) and is
pinned by a :class:`SegmentRecord` — byte range, resolution group,
cumulative error bound, CRC32 — inside a :class:`SegmentIndex`.

Plane arithmetic
----------------
For a plane shift ``s`` the residual ``r`` splits as

    t = (r + 2**(s-1)) >> s        # round-half-up division by 2**s
    r' = r - (t << s)              # residual in [-2**(s-1), 2**(s-1))

and the final plane uses ``s = 0`` (``t = r``), so

    q == sum(t_p << s_p)           # exact, for every int64 input

which is what makes full-prefix retrieval byte-identical to one-shot
decompression: the merged planes are *the same integers* the one-shot
path quantized.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.progressive.errors import (
    BoundUnreachableError,
    MalformedIndexError,
    SegmentCRCError,
    TruncatedSegmentError,
)

_SEG_MAGIC = b"HSEG"
_SEG_VERSION = 1
_SEG_HEADER = struct.Struct("<4sBBHIIQ")  # magic ver group shift count nout plen

INDEX_FORMAT = "hpdr-progressive"
INDEX_VERSION = 1


# ----------------------------------------------------------------------
# Bitplane split/merge (exact integer decomposition)
# ----------------------------------------------------------------------
def plane_shifts(max_abs: int, bits_per_plane: int, max_planes: int) -> list[int]:
    """Shift schedule for one group, coarsest plane first, ending at 0."""
    if bits_per_plane < 1:
        raise ValueError(f"bits_per_plane must be >= 1, got {bits_per_plane}")
    if max_planes < 1:
        raise ValueError(f"max_planes must be >= 1, got {max_planes}")
    nbits = int(max_abs).bit_length()
    nplanes = min(max_planes, max(1, -(-nbits // bits_per_plane)))
    step = -(-nbits // nplanes) if nbits else 0
    return [step * (nplanes - 1 - p) for p in range(nplanes)]


def split_planes(
    q: np.ndarray, bits_per_plane: int, max_planes: int
) -> list[tuple[int, np.ndarray]]:
    """Split int64 codes into ``(shift, plane)`` residual planes.

    The planes are coarsest-first and their shifted sum reconstructs
    ``q`` exactly (see module docstring).  At least one plane (shift 0)
    is always produced so every group is represented in the stream.
    """
    q = np.ascontiguousarray(q, dtype=np.int64)
    max_abs = int(np.abs(q).max()) if q.size else 0
    shifts = plane_shifts(max_abs, bits_per_plane, max_planes)
    planes: list[tuple[int, np.ndarray]] = []
    r = q.copy()
    for shift in shifts:
        if shift:
            half = np.int64(1) << np.int64(shift - 1)
            t = (r + half) >> np.int64(shift)
            r = r - (t << np.int64(shift))
        else:
            t = r
            r = np.zeros_like(r)
        planes.append((shift, t))
    return planes


def merge_planes(planes: list[tuple[int, np.ndarray]]) -> np.ndarray:
    """Invert :func:`split_planes` (exact for any plane prefix sum)."""
    if not planes:
        raise ValueError("need at least one plane")
    out = np.zeros_like(planes[0][1], dtype=np.int64)
    for shift, t in planes:
        out += t.astype(np.int64) << np.int64(shift)
    return out


# ----------------------------------------------------------------------
# Segment payload (independently decodable)
# ----------------------------------------------------------------------
def encode_segment(
    group: int, shift: int, plane: np.ndarray, huffman: Any, dict_size: int
) -> bytes:
    """Serialize one residual plane as a self-describing segment."""
    from repro.compressors.mgard.quantize import to_symbols

    plane = np.ascontiguousarray(plane, dtype=np.int64)
    symbols, outliers = to_symbols(plane, dict_size)
    payload = huffman.compress_keys(symbols.astype(np.int64), dict_size)
    header = _SEG_HEADER.pack(
        _SEG_MAGIC, _SEG_VERSION, group, shift, plane.size,
        outliers.size, len(payload),
    )
    return header + payload + outliers.astype(np.int64).tobytes()


def decode_segment(blob: bytes, huffman: Any) -> tuple[int, int, np.ndarray]:
    """Invert :func:`encode_segment` -> ``(group, shift, plane)``.

    Raises :class:`TruncatedSegmentError` when the bytes end before the
    lengths the header announces, :class:`MalformedIndexError` on a bad
    magic/version.
    """
    from repro.compressors.mgard.quantize import from_symbols

    if len(blob) < _SEG_HEADER.size:
        raise TruncatedSegmentError(
            f"segment header truncated: {len(blob)} < {_SEG_HEADER.size} bytes"
        )
    magic, version, group, shift, count, nout, plen = _SEG_HEADER.unpack_from(
        blob, 0
    )
    if magic != _SEG_MAGIC:
        raise MalformedIndexError(f"bad segment magic {bytes(magic)!r}")
    if version != _SEG_VERSION:
        raise MalformedIndexError(f"unsupported segment version {version}")
    need = _SEG_HEADER.size + plen + 8 * nout
    if len(blob) < need:
        raise TruncatedSegmentError(
            f"segment truncated: {len(blob)} < {need} bytes"
        )
    payload = bytes(blob[_SEG_HEADER.size : _SEG_HEADER.size + plen])
    outliers = np.frombuffer(
        blob, dtype=np.int64, count=nout, offset=_SEG_HEADER.size + plen
    ).copy()
    try:
        symbols = huffman.decompress_keys(payload)
        plane = from_symbols(symbols, outliers)
    except ValueError as exc:
        raise TruncatedSegmentError(f"segment payload corrupt: {exc}") from exc
    if plane.size != count:
        raise TruncatedSegmentError(
            f"segment decoded {plane.size} codes, header says {count}"
        )
    return int(group), int(shift), plane


# ----------------------------------------------------------------------
# Index records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SegmentRecord:
    """Byte-range metadata for one segment in emission order."""

    seq: int          #: position in the segment stream (0-based)
    group: int        #: resolution group, 0 = coarsest approximation
    shift: int        #: bitplane shift inside the group (0 = exact)
    offset: int       #: byte offset inside the segment region
    nbytes: int       #: segment length in bytes
    crc: int          #: CRC32 of the segment bytes
    error_bound: float  #: measured max error of the prefix ending here

    def to_json(self) -> dict[str, Any]:
        return {
            "seq": self.seq, "group": self.group, "shift": self.shift,
            "offset": self.offset, "nbytes": self.nbytes, "crc": self.crc,
            "error_bound": self.error_bound,
        }

    @classmethod
    def from_json(cls, obj: dict[str, Any]) -> "SegmentRecord":
        try:
            return cls(
                seq=int(obj["seq"]), group=int(obj["group"]),
                shift=int(obj["shift"]), offset=int(obj["offset"]),
                nbytes=int(obj["nbytes"]), crc=int(obj["crc"]),
                error_bound=float(obj["error_bound"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise MalformedIndexError(f"bad segment record: {exc}") from exc

    def check_crc(self, blob: bytes) -> None:
        """Verify segment bytes against this record (typed errors)."""
        if len(blob) != self.nbytes:
            raise TruncatedSegmentError(
                f"segment {self.seq}: got {len(blob)} bytes, "
                f"record says {self.nbytes}"
            )
        if zlib.crc32(blob) != self.crc:
            raise SegmentCRCError(
                f"segment {self.seq}: CRC mismatch (bytes corrupted "
                "in storage or transit)"
            )


@dataclass
class SegmentIndex:
    """Self-describing metadata for one progressive stream.

    ``bins`` are in MGARD group order (group 0 = finest coefficients,
    last = coarsest approximation) — exactly what
    :func:`repro.compressors.mgard.quantize.level_bins` produced at
    write time, so reconstruction dequantizes identically to the
    one-shot path.  ``records`` are in emission order: group-major,
    coarsest group first, planes coarsest-first within a group — which
    makes both ``--resolution`` and ``--error-bound`` requests *prefix*
    requests.
    """

    dtype: str
    shape: tuple[int, ...]
    ngroups: int
    abs_eb: float
    kappa: float
    s: float
    dict_size: int
    bins: list[float]
    records: list[SegmentRecord]

    # -- derived -----------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    @property
    def floor(self) -> float:
        """Error the full stream achieves (= the one-shot codec error)."""
        return self.records[-1].error_bound if self.records else 0.0

    def frontier(self) -> list[SegmentRecord]:
        """Records on the bytes-vs-error Pareto frontier.

        Recorded bounds are *measured* prefix errors and may blip
        upward by a percent or two mid-stream (recomposition is linear,
        so sharpened codes can shift cancellation patterns).  The
        frontier keeps each record that strictly improves on every
        earlier one — exactly the prefixes :meth:`plan` can select as
        endpoints, with strictly decreasing bounds by construction.
        """
        out: list[SegmentRecord] = []
        best = float("inf")
        for rec in self.records:
            if rec.error_bound < best:
                best = rec.error_bound
                out.append(rec)
        return out

    # -- planning ----------------------------------------------------------
    def plan(
        self,
        eps: float | None = None,
        resolution: int | None = None,
        strict: bool = True,
    ) -> list[SegmentRecord]:
        """Minimal segment prefix satisfying the request.

        ``eps`` selects the shortest prefix whose measured error bound
        is ``<= eps`` (:class:`BoundUnreachableError` if even the full
        stream falls short, unless ``strict=False`` which degrades to
        the full stream).  Minimality means the selected endpoint is
        always on the :meth:`frontier`, so tightening ``eps`` never
        shrinks the prefix and never worsens the achieved error.
        ``resolution`` selects every plane of the first ``resolution``
        groups.  With neither, the full stream.
        """
        if eps is not None and resolution is not None:
            raise ValueError("pass either eps or resolution, not both")
        if resolution is not None:
            if not 1 <= resolution <= self.ngroups:
                raise ValueError(
                    f"resolution must be in [1, {self.ngroups}], "
                    f"got {resolution}"
                )
            return [r for r in self.records if r.group < resolution]
        if eps is None:
            return list(self.records)
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        for k, rec in enumerate(self.records):
            if rec.error_bound <= eps:
                return self.records[: k + 1]
        if strict:
            raise BoundUnreachableError(eps, self.floor)
        return list(self.records)

    # -- (de)serialization -------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "format": INDEX_FORMAT,
            "version": INDEX_VERSION,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "ngroups": self.ngroups,
            "abs_eb": self.abs_eb,
            "kappa": self.kappa,
            "s": self.s,
            "dict_size": self.dict_size,
            "bins": list(self.bins),
            "total_bytes": self.total_bytes,
            "segments": [r.to_json() for r in self.records],
        }

    @classmethod
    def from_json(cls, obj: Any) -> "SegmentIndex":
        if not isinstance(obj, dict):
            raise MalformedIndexError("segment index must be a JSON object")
        if obj.get("format") != INDEX_FORMAT:
            raise MalformedIndexError(
                f"not a progressive index (format={obj.get('format')!r})"
            )
        if obj.get("version") != INDEX_VERSION:
            raise MalformedIndexError(
                f"unsupported index version {obj.get('version')!r}"
            )
        try:
            index = cls(
                dtype=str(obj["dtype"]),
                shape=tuple(int(n) for n in obj["shape"]),
                ngroups=int(obj["ngroups"]),
                abs_eb=float(obj["abs_eb"]),
                kappa=float(obj["kappa"]),
                s=float(obj["s"]),
                dict_size=int(obj["dict_size"]),
                bins=[float(b) for b in obj["bins"]],
                records=[SegmentRecord.from_json(r) for r in obj["segments"]],
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, MalformedIndexError):
                raise
            raise MalformedIndexError(f"bad segment index: {exc}") from exc
        index.validate()
        return index

    def validate(self) -> None:
        """Structural invariants (raise :class:`MalformedIndexError`)."""
        if self.ngroups < 1:
            raise MalformedIndexError(f"ngroups must be >= 1, got {self.ngroups}")
        if len(self.bins) != self.ngroups:
            raise MalformedIndexError(
                f"{self.ngroups} groups but {len(self.bins)} bins"
            )
        try:
            np.dtype(self.dtype)
        except TypeError as exc:
            raise MalformedIndexError(f"bad dtype {self.dtype!r}") from exc
        offset = 0
        last_group = -1
        for k, rec in enumerate(self.records):
            if rec.seq != k:
                raise MalformedIndexError(
                    f"record {k} has seq {rec.seq} (must be emission order)"
                )
            if rec.offset != offset:
                raise MalformedIndexError(
                    f"segment {k} offset {rec.offset} != expected {offset} "
                    "(byte ranges must be contiguous)"
                )
            if rec.nbytes <= 0:
                raise MalformedIndexError(f"segment {k} has {rec.nbytes} bytes")
            if not 0 <= rec.group < self.ngroups:
                raise MalformedIndexError(
                    f"segment {k} names group {rec.group} of {self.ngroups}"
                )
            if rec.group < last_group:
                raise MalformedIndexError(
                    f"segment {k} regresses to group {rec.group}: records "
                    "must be group-major (prefix property)"
                )
            last_group = rec.group
            offset += rec.nbytes
