"""Progressive MGARD refactoring: multilevel coefficients to segments.

:class:`ProgressiveMGARD` runs the *same* pipeline as
:class:`repro.MGARDX` up to and including quantization — identical
decomposition, identical per-level bins from
:func:`~repro.compressors.mgard.quantize.level_bins` — then, instead of
one Huffman stream, emits the quantized codes as an ordered list of
(resolution group x bitplane) segments:

* groups run coarsest-first (the coarsest approximation, then each
  coefficient level fine-ward), so a ``--resolution L`` request is a
  stream prefix;
* within a group, residual bitplanes run coarsest-first (see
  :mod:`repro.progressive.segments`), so adding segments only sharpens
  the codes;
* after appending each segment the writer **reconstructs the prefix and
  measures** its max error against the original data — the recorded
  per-segment ``error_bound`` is therefore the error a reader will
  *achieve*, by determinism, not an estimate.

Because the merged planes reproduce the quantized codes exactly and
reconstruction replays the one-shot decompressor's dequantize +
recompose + ``astype`` arithmetic, retrieving the full prefix is
byte-identical to ``MGARDX(config).decompress(compress(data))``.
"""

from __future__ import annotations

import zlib
from typing import Any

import numpy as np

from repro.core.config import Config
from repro.core.context import ContextCache
from repro.progressive.errors import MalformedIndexError
from repro.progressive.segments import (
    SegmentIndex,
    SegmentRecord,
    decode_segment,
    encode_segment,
    split_planes,
)
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import NULL_SPAN, Span, TRACER as _TRACER


def _span(name: str, **args: Any) -> Any:
    """Progressive stage span (shared NULL_SPAN when tracing is off)."""
    if not _TRACER.enabled:
        return NULL_SPAN
    return Span(_TRACER, name, "progressive", args)


class ProgressiveMGARD:
    """Refactor arrays into error-bounded progressive segments.

    Parameters
    ----------
    config:
        Error bound / mode, exactly as for :class:`repro.MGARDX`; the
        full-prefix reconstruction satisfies this bound and the
        per-segment recorded bounds refine toward it.
    bits_per_plane / max_planes:
        Bitplane granularity: each group's quantized codes split into
        at most ``max_planes`` residual planes of roughly
        ``bits_per_plane`` bits each.  More planes mean finer
        bytes-for-accuracy steps at a small per-segment header cost.
    """

    def __init__(
        self,
        config: Config | None = None,
        adapter: Any = None,
        context_cache: ContextCache | None = None,
        dict_size: int = 4096,
        kappa: float | None = None,
        s: float = 0.0,
        bits_per_plane: int = 8,
        max_planes: int = 3,
    ) -> None:
        from repro.compressors.huffman import HuffmanX
        from repro.compressors.mgard.quantize import DEFAULT_KAPPA

        self.config = config if config is not None else Config()
        self.adapter = adapter
        self.cache = context_cache if context_cache is not None else ContextCache()
        if dict_size < 2 or dict_size > 1 << 16:
            raise ValueError(f"dict_size must be in [2, 65536], got {dict_size}")
        self.dict_size = dict_size
        self.kappa = float(DEFAULT_KAPPA if kappa is None else kappa)
        self.s = float(s)
        if bits_per_plane < 1:
            raise ValueError(f"bits_per_plane must be >= 1, got {bits_per_plane}")
        if max_planes < 1:
            raise ValueError(f"max_planes must be >= 1, got {max_planes}")
        self.bits_per_plane = bits_per_plane
        self.max_planes = max_planes
        self._huffman = HuffmanX(adapter=adapter, context_cache=self.cache)

    # ------------------------------------------------------------------
    def _context(self, shape: tuple[int, ...], dtype: Any) -> Any:
        from repro.compressors.mgard.decompose import level_factors
        from repro.compressors.mgard.hierarchy import Hierarchy

        key = ("progressive",) + self.config.cache_key(shape, np.dtype(dtype))
        ctx = self.cache.get(key, pin=True)
        hierarchy = ctx.object("hierarchy", lambda: Hierarchy(shape, None))
        factors = ctx.object(
            "factors",
            lambda: [
                level_factors(hierarchy, l) for l in range(hierarchy.total_levels)
            ],
        )
        return ctx, hierarchy, factors

    def _reconstruct(
        self, qhat: list, bins: np.ndarray, hierarchy: Any, factors: Any,
        ctx: Any, dtype: Any,
    ) -> np.ndarray:
        """One-shot decompressor arithmetic from (partial) codes."""
        from repro.compressors.mgard.decompose import recompose
        from repro.compressors.mgard.quantize import dequantize_levels

        groups = dequantize_levels(qhat, bins, adapter=self.adapter)
        coeffs = groups[:-1]
        coarsest = groups[-1].reshape(hierarchy.shape_at(hierarchy.total_levels))
        out = recompose(
            coeffs, coarsest, hierarchy, adapter=self.adapter,
            factors_per_level=factors, ctx=ctx,
        )
        return out.astype(dtype, copy=True)

    # ------------------------------------------------------------------
    def refactor(self, data: np.ndarray) -> tuple[SegmentIndex, list[bytes]]:
        """Refactor ``data`` into ``(index, segments)``.

        The returned segments are in emission order and align 1:1 with
        ``index.records``; the index carries everything needed to
        reconstruct any prefix (dtype, shape, bins, byte ranges, CRCs,
        measured error bounds).
        """
        from repro.compressors.mgard.decompose import decompose
        from repro.compressors.mgard.quantize import level_bins, quantize_levels

        data = np.ascontiguousarray(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(
                f"progressive MGARD supports float32/float64, got {data.dtype}"
            )
        if data.ndim < 1 or data.ndim > 4:
            raise ValueError(
                f"progressive MGARD supports 1-4 dims, got {data.ndim}"
            )
        abs_eb = self.config.absolute_bound(data)
        ctx, hierarchy, factors = self._context(data.shape, data.dtype)
        try:
            with _span("progressive.refactor", nbytes=int(data.nbytes),
                       levels=hierarchy.total_levels):
                coeffs, coarsest = decompose(
                    data, hierarchy, adapter=self.adapter,
                    factors_per_level=factors, ctx=ctx,
                )
                mgroups = coeffs + [coarsest.reshape(-1)]
                bins = level_bins(abs_eb, len(mgroups), self.kappa, s=self.s)
                qgroups = [
                    q.reshape(-1)
                    for q in quantize_levels(mgroups, bins, adapter=self.adapter)
                ]
                return self._emit(
                    data, abs_eb, bins, qgroups, hierarchy, factors, ctx
                )
        finally:
            self.cache.release(ctx)

    def _emit(
        self, data: np.ndarray, abs_eb: float, bins: np.ndarray,
        qgroups: list, hierarchy: Any, factors: Any, ctx: Any,
    ) -> tuple[SegmentIndex, list[bytes]]:
        """Split codes into segments, measuring each prefix's error."""
        ngroups = len(qgroups)
        data64 = data.astype(np.float64)
        qhat = [np.zeros_like(q) for q in qgroups]
        segments: list[bytes] = []
        records: list[SegmentRecord] = []
        offset = 0
        # Emission order: coarsest group first (prog group g maps to
        # MGARD group index ngroups-1-g), planes coarsest-first within.
        for g in range(ngroups):
            mi = ngroups - 1 - g
            for shift, plane in split_planes(
                qgroups[mi], self.bits_per_plane, self.max_planes
            ):
                seg = encode_segment(
                    g, shift, plane, self._huffman, self.dict_size
                )
                qhat[mi] = qhat[mi] + (plane.astype(np.int64) << np.int64(shift))
                recon = self._reconstruct(
                    qhat, bins, hierarchy, factors, ctx, data.dtype
                )
                err = (
                    float(np.max(np.abs(recon.astype(np.float64) - data64)))
                    if data.size
                    else 0.0
                )
                records.append(SegmentRecord(
                    seq=len(records), group=g, shift=int(shift),
                    offset=offset, nbytes=len(seg), crc=zlib.crc32(seg),
                    error_bound=err,
                ))
                segments.append(seg)
                offset += len(seg)
        index = SegmentIndex(
            dtype=data.dtype.str, shape=tuple(data.shape), ngroups=ngroups,
            abs_eb=float(abs_eb), kappa=self.kappa, s=self.s,
            dict_size=self.dict_size, bins=[float(b) for b in bins],
            records=records,
        )
        if _TRACER.enabled:
            _METRICS.counter(
                "hpdr_progressive_segments_total",
                "segments emitted by progressive refactoring",
            ).inc(len(segments))
        return index, segments

    # ------------------------------------------------------------------
    def reconstruct(
        self, index: SegmentIndex, segments: list[bytes]
    ) -> np.ndarray:
        """Reconstruct from a segment *prefix* (emission order).

        ``segments[k]`` must be the bytes ``index.records[k]`` pins;
        each is CRC-checked against its record before decoding, so
        truncation and bit-rot surface as
        :class:`~repro.progressive.errors.TruncatedSegmentError` /
        :class:`~repro.progressive.errors.SegmentCRCError` rather than
        a wrong array.  With the full prefix the result is
        byte-identical to the one-shot decompressor's output.
        """
        if len(segments) > len(index.records):
            raise MalformedIndexError(
                f"{len(segments)} segments but index records only "
                f"{len(index.records)}"
            )
        if not segments:
            raise MalformedIndexError("need at least one segment")
        shape = tuple(index.shape)
        dtype = np.dtype(index.dtype)
        ctx, hierarchy, factors = self._context(shape, dtype)
        try:
            ngroups = index.ngroups
            sizes = [
                hierarchy.num_coefficients(l)
                for l in range(hierarchy.total_levels)
            ]
            sizes.append(int(np.prod(hierarchy.shape_at(hierarchy.total_levels))))
            if len(sizes) != ngroups:
                raise MalformedIndexError(
                    f"index names {ngroups} groups; shape {shape} "
                    f"decomposes into {len(sizes)}"
                )
            qhat = [np.zeros(n, dtype=np.int64) for n in sizes]
            with _span("progressive.reconstruct", segments=len(segments)):
                for rec, blob in zip(index.records, segments):
                    rec.check_crc(bytes(blob))
                    group, shift, plane = decode_segment(
                        bytes(blob), self._huffman
                    )
                    if group != rec.group or shift != rec.shift:
                        raise MalformedIndexError(
                            f"segment {rec.seq} decodes as group {group} "
                            f"shift {shift}, index says {rec.group}/{rec.shift}"
                        )
                    mi = ngroups - 1 - group
                    if plane.size != sizes[mi]:
                        raise MalformedIndexError(
                            f"segment {rec.seq} carries {plane.size} codes, "
                            f"group {group} holds {sizes[mi]}"
                        )
                    qhat[mi] = qhat[mi] + (plane << np.int64(shift))
                bins = np.asarray(index.bins, dtype=np.float64)
                return self._reconstruct(
                    qhat, bins, hierarchy, factors, ctx, dtype
                )
        finally:
            self.cache.release(ctx)
