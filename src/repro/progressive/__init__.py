"""Progressive retrieval: bytes-for-accuracy reads of MGARD streams.

The HP-MDR extension of HPDR's one-shot pipeline: MGARD-X multilevel
coefficients become an ordered list of (resolution level x bitplane)
segments, each independently decodable and pinned by a byte range,
cumulative error bound, and CRC in a :class:`SegmentIndex`.  A reader
asks for ``eps`` (error bound) or ``L`` (resolution) and fetches only
the minimal segment prefix — through an in-memory ``HPGX`` archive, a
ranged-read ``HPGX`` file, or a BP store directory
(:mod:`repro.io.engine` byte-range reads).

>>> import numpy as np
>>> from repro.progressive import ProgressiveMGARD, ProgressiveRetriever
>>> from repro.progressive import archive_bytes
>>> data = np.linspace(0, 1, 512, dtype=np.float32).reshape(16, 32)
>>> index, segments = ProgressiveMGARD().refactor(data)
>>> blob = archive_bytes(index, segments)
>>> coarse, report = ProgressiveRetriever().retrieve(blob, eps=1e-2)
>>> report.bytes_fetched < report.total_bytes
True
>>> exact, _ = ProgressiveRetriever().retrieve(blob)
>>> bool(np.max(np.abs(exact - data)) <= index.abs_eb)
True
"""

from repro.progressive.archive import (
    ARCHIVE_MAGIC,
    REQUEST_MAGIC,
    archive_bytes,
    is_archive,
    make_retrieve_request,
    parse_archive_index,
    parse_retrieve_request,
    read_archive_prefix,
)
from repro.progressive.codec import ProgressiveMGARD
from repro.progressive.errors import (
    BoundUnreachableError,
    MalformedIndexError,
    ProgressiveError,
    SegmentCRCError,
    TruncatedSegmentError,
)
from repro.progressive.retrieve import (
    ProgressiveRetriever,
    RetrievalReport,
    retrieve_request,
)
from repro.progressive.segments import (
    SegmentIndex,
    SegmentRecord,
    merge_planes,
    split_planes,
)
from repro.progressive.store import is_store, write_store

__all__ = [
    "ARCHIVE_MAGIC",
    "BoundUnreachableError",
    "MalformedIndexError",
    "ProgressiveError",
    "ProgressiveMGARD",
    "ProgressiveRetriever",
    "REQUEST_MAGIC",
    "RetrievalReport",
    "SegmentCRCError",
    "SegmentIndex",
    "SegmentRecord",
    "TruncatedSegmentError",
    "archive_bytes",
    "is_archive",
    "is_store",
    "make_retrieve_request",
    "merge_planes",
    "parse_archive_index",
    "parse_retrieve_request",
    "read_archive_prefix",
    "retrieve_request",
    "split_planes",
    "write_store",
]
