"""Typed failure modes of the progressive-retrieval surface.

Every error subclasses :class:`ProgressiveError` (itself a
``ValueError``) so callers can catch the whole family, while tests and
the serve transport distinguish the concrete kinds by name:

* :class:`MalformedIndexError` — the segment index is structurally
  invalid (bad magic/version, missing fields, non-contiguous byte
  ranges);
* :class:`TruncatedSegmentError` — a segment's bytes end before the
  length its record or header announces;
* :class:`SegmentCRCError` — a segment's bytes do not match the CRC32
  its index record pinned at write time;
* :class:`BoundUnreachableError` — the requested error bound is below
  what even the full segment stream achieves (carries the achievable
  floor so callers can retry with a feasible bound).
"""

from __future__ import annotations


class ProgressiveError(ValueError):
    """Base class for progressive-retrieval failures."""


class MalformedIndexError(ProgressiveError):
    """The segment index is structurally invalid."""


class TruncatedSegmentError(ProgressiveError):
    """A segment's bytes end before its recorded length."""


class SegmentCRCError(ProgressiveError):
    """A segment's bytes fail its index record's CRC32."""


class BoundUnreachableError(ProgressiveError):
    """The requested bound is below the full stream's achieved error."""

    def __init__(self, requested: float, floor: float) -> None:
        self.requested = float(requested)
        self.floor = float(floor)
        super().__init__(
            f"error bound {requested:g} is unreachable: the full segment "
            f"stream achieves {floor:g}; retry with eps >= {floor:g} or "
            f"retrieve without a bound for the exact reconstruction"
        )
