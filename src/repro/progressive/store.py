"""Progressive segment store inside the BP5-like container.

``write_store`` lays one refactored stream into a
:class:`~repro.io.engine.BPWriter` directory: every segment is its own
variable (``seg.00000`` ... spread round-robin over the aggregator
subfiles via its sequence number as the rank) plus a ``pindex``
variable holding the JSON :class:`~repro.progressive.segments.SegmentIndex`.
The writer pins each payload's byte span in ``index.json``, so
``read_store`` fetches a bounded request with *ranged reads only* —
the index payload plus exactly the planned segments' byte ranges,
through :meth:`~repro.io.engine.BPReader.read_payload`.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.io.engine import BPReader, BPWriter
from repro.progressive.errors import MalformedIndexError
from repro.progressive.segments import SegmentIndex, SegmentRecord

#: variable name of the JSON segment index inside the store.
INDEX_VARIABLE = "pindex"


def _segment_variable(seq: int) -> str:
    return f"seg.{seq:05d}"


def write_store(
    path: Any,
    index: SegmentIndex,
    segments: list[bytes],
    num_aggregators: int = 1,
) -> dict[str, Any]:
    """Write ``(index, segments)`` as a BP store; returns flush stats."""
    if len(segments) != len(index.records):
        raise ValueError(
            f"{len(segments)} segments but {len(index.records)} records"
        )
    writer = BPWriter(path, num_aggregators=num_aggregators)
    raw_index = json.dumps(index.to_json(), separators=(",", ":")).encode("utf-8")
    writer.put_reduced(
        INDEX_VARIABLE, raw_index, shape=(len(raw_index),),
        dtype=np.uint8, operator="none",
    )
    for rec, seg in zip(index.records, segments):
        writer.put_reduced(
            _segment_variable(rec.seq), bytes(seg), shape=(len(seg),),
            dtype=np.uint8, operator="none", rank=rec.seq,
        )
    return writer.close()


def is_store(path: Any) -> bool:
    """True when ``path`` looks like a BP directory with a ``pindex``."""
    from pathlib import Path

    p = Path(path)
    return p.is_dir() and (p / "index.json").exists()


def read_store_index(reader: BPReader) -> SegmentIndex:
    """Load and validate the store's segment index (ranged read)."""
    try:
        raw = reader.read_payload(INDEX_VARIABLE)
    except KeyError as exc:
        raise MalformedIndexError(
            f"BP store has no {INDEX_VARIABLE!r} variable: {exc}"
        ) from exc
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MalformedIndexError(f"unparseable store index: {exc}") from exc
    return SegmentIndex.from_json(obj)


def read_store_segments(
    reader: BPReader, plan: list[SegmentRecord]
) -> list[bytes]:
    """Fetch the planned segments' byte ranges (CRC-checked)."""
    out = []
    for rec in plan:
        try:
            blob = reader.read_payload(_segment_variable(rec.seq), rank=rec.seq)
        except KeyError as exc:
            raise MalformedIndexError(
                f"store is missing segment {rec.seq}: {exc}"
            ) from exc
        rec.check_crc(blob)
        out.append(blob)
    return out
