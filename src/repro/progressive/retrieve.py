"""Progressive retrieval engine: minimal-prefix planning + fetch.

:class:`ProgressiveRetriever` answers "give me this array to error
``eps``" (or "at resolution ``L``") from any of the three storage
forms — an in-memory ``HPGX`` blob, an ``HPGX`` file, or a BP store
directory — fetching **only the byte ranges the plan names** and
reconstructing coarse-to-fine.  The achieved error equals the recorded
bound by determinism (the writer measured the same reconstruction),
and with the full prefix the result is byte-identical to one-shot
decompression.

``retrieve_request`` is the serve-layer entry point: it unwraps one
``HPRQ`` envelope (see :mod:`repro.progressive.archive`) and returns
the reconstructed array, which the existing response framing ships
back as a typed ndarray.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.context import ContextCache
from repro.progressive.archive import (
    parse_archive_index,
    parse_retrieve_request,
    read_archive_prefix,
    slice_segments,
)
from repro.progressive.codec import ProgressiveMGARD, _span
from repro.progressive.segments import SegmentIndex, SegmentRecord
from repro.trace.metrics import REGISTRY as _METRICS


@dataclass(frozen=True)
class RetrievalReport:
    """What one bounded retrieval request cost and achieved."""

    source: str              #: "blob" | "file" | "store"
    eps: float | None        #: requested error bound (None = not given)
    resolution: int | None   #: requested resolution (None = not given)
    segments_fetched: int
    total_segments: int
    bytes_fetched: int       #: segment bytes actually read
    total_bytes: int         #: full segment stream size
    error_bound: float       #: recorded (= achieved) bound of the prefix
    floor: float             #: bound the full stream achieves

    @property
    def fraction_fetched(self) -> float:
        return self.bytes_fetched / self.total_bytes if self.total_bytes else 1.0


class ProgressiveRetriever:
    """Plan, fetch and reconstruct bounded prefixes of a stream."""

    def __init__(
        self,
        adapter: Any = None,
        context_cache: ContextCache | None = None,
    ) -> None:
        self.codec = ProgressiveMGARD(
            adapter=adapter, context_cache=context_cache
        )

    # ------------------------------------------------------------------
    def retrieve(
        self,
        source: Any,
        eps: float | None = None,
        resolution: int | None = None,
        strict: bool = True,
    ) -> tuple[np.ndarray, RetrievalReport]:
        """Retrieve from ``source`` under a bound -> ``(array, report)``.

        ``source`` is an HPGX blob (bytes-like), an HPGX file path, or
        a BP store directory.  ``strict=True`` raises
        :class:`~repro.progressive.errors.BoundUnreachableError` for an
        eps below the stream's floor; ``strict=False`` degrades to the
        exact full-prefix reconstruction instead.
        """
        if isinstance(source, (bytes, bytearray, memoryview)):
            kind, index, plan, segments = self._fetch_blob(
                source, eps, resolution, strict
            )
        else:
            path = Path(source)
            if path.is_dir():
                kind, index, plan, segments = self._fetch_store(
                    path, eps, resolution, strict
                )
            else:
                with _span("progressive.fetch", source="file"):
                    index, plan, segments = read_archive_prefix(
                        path, eps=eps, resolution=resolution, strict=strict
                    )
                kind = "file"
        report = self._report(kind, index, plan, eps, resolution)
        _METRICS.counter(
            "hpdr_progressive_bytes_fetched_total",
            "segment bytes fetched by bounded retrievals",
        ).inc(report.bytes_fetched, source=kind)
        with _span("progressive.reconstruct", segments=len(segments),
                   nbytes=report.bytes_fetched):
            array = self.codec.reconstruct(index, segments)
        return array, report

    # ------------------------------------------------------------------
    def _fetch_blob(
        self, blob: Any, eps: float | None, resolution: int | None,
        strict: bool,
    ) -> tuple[str, SegmentIndex, list[SegmentRecord], list[bytes]]:
        with _span("progressive.plan", source="blob"):
            index, base = parse_archive_index(blob)
            plan = index.plan(eps=eps, resolution=resolution, strict=strict)
        with _span("progressive.fetch", source="blob", segments=len(plan)):
            segments = slice_segments(blob, base, plan)
        return "blob", index, plan, segments

    def _fetch_store(
        self, path: Path, eps: float | None, resolution: int | None,
        strict: bool,
    ) -> tuple[str, SegmentIndex, list[SegmentRecord], list[bytes]]:
        from repro.io.engine import BPReader
        from repro.progressive.store import read_store_index, read_store_segments

        reader = BPReader(path)
        with _span("progressive.plan", source="store"):
            index = read_store_index(reader)
            plan = index.plan(eps=eps, resolution=resolution, strict=strict)
        with _span("progressive.fetch", source="store", segments=len(plan)):
            segments = read_store_segments(reader, plan)
        return "store", index, plan, segments

    @staticmethod
    def _report(
        kind: str, index: SegmentIndex, plan: list[SegmentRecord],
        eps: float | None, resolution: int | None,
    ) -> RetrievalReport:
        return RetrievalReport(
            source=kind,
            eps=eps,
            resolution=resolution,
            segments_fetched=len(plan),
            total_segments=len(index.records),
            bytes_fetched=sum(r.nbytes for r in plan),
            total_bytes=index.total_bytes,
            error_bound=plan[-1].error_bound if plan else float("inf"),
            floor=index.floor,
        )


def retrieve_request(
    payload: Any,
    adapter: Any = None,
    context_cache: ContextCache | None = None,
) -> np.ndarray:
    """Serve-layer ``retrieve`` op: HPRQ envelope in, ndarray out."""
    eps, resolution, archive = parse_retrieve_request(payload)
    retriever = ProgressiveRetriever(
        adapter=adapter, context_cache=context_cache
    )
    array, _report = retriever.retrieve(
        archive, eps=eps, resolution=resolution
    )
    return array
