"""Single-file progressive archive (``HPGX``) + serve request envelope.

Archive layout (little-endian)::

    b"HPGX" | version:u8 | index_len:u32
    index   : UTF-8 JSON (the SegmentIndex, byte ranges relative to the
              segment region)
    region  : the segments, concatenated in emission order

The header + index are tiny and read first; a bounded request then
touches only the byte range ``[0, prefix_bytes)`` of the segment
region — which is how file retrieval fetches strictly fewer bytes than
the full stream.

The serve layer's ``retrieve`` op carries one opaque blob; the
``HPRQ`` envelope frames the request parameters in front of the
archive::

    b"HPRQ" | version:u8 | eps:f64 (NaN = none) | resolution:i32 (-1 = none)
    archive : one HPGX blob
"""

from __future__ import annotations

import json
import math
import struct
from typing import Any

from repro.progressive.errors import MalformedIndexError, TruncatedSegmentError
from repro.progressive.segments import SegmentIndex, SegmentRecord

ARCHIVE_MAGIC = b"HPGX"
_ARCHIVE_VERSION = 1
_ARCHIVE_HEADER = struct.Struct("<4sBI")

REQUEST_MAGIC = b"HPRQ"
_REQUEST_VERSION = 1
_REQUEST_HEADER = struct.Struct("<4sBdi")


# ----------------------------------------------------------------------
# HPGX archive
# ----------------------------------------------------------------------
def archive_bytes(index: SegmentIndex, segments: list[bytes]) -> bytes:
    """Serialize ``(index, segments)`` into one HPGX blob."""
    if len(segments) != len(index.records):
        raise ValueError(
            f"{len(segments)} segments but {len(index.records)} records"
        )
    raw_index = json.dumps(index.to_json(), separators=(",", ":")).encode("utf-8")
    header = _ARCHIVE_HEADER.pack(ARCHIVE_MAGIC, _ARCHIVE_VERSION, len(raw_index))
    return header + raw_index + b"".join(segments)


def is_archive(blob: bytes) -> bool:
    """True when ``blob`` starts with the HPGX magic."""
    return bytes(blob[:4]) == ARCHIVE_MAGIC


def parse_archive_index(blob: Any) -> tuple[SegmentIndex, int]:
    """Parse an HPGX header -> ``(index, segment_region_offset)``.

    Only the header + index bytes are touched, so callers can hand in
    a prefix of the file (at least ``header + index`` long).
    """
    if len(blob) < _ARCHIVE_HEADER.size:
        raise TruncatedSegmentError(
            f"archive header truncated: {len(blob)} bytes"
        )
    magic, version, index_len = _ARCHIVE_HEADER.unpack_from(blob, 0)
    if magic != ARCHIVE_MAGIC:
        raise MalformedIndexError(f"not an HPGX archive (magic {bytes(magic)!r})")
    if version != _ARCHIVE_VERSION:
        raise MalformedIndexError(f"unsupported HPGX version {version}")
    base = _ARCHIVE_HEADER.size + index_len
    if len(blob) < base:
        raise TruncatedSegmentError(
            f"archive index truncated: {len(blob)} < {base} bytes"
        )
    try:
        obj = json.loads(bytes(blob[_ARCHIVE_HEADER.size : base]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MalformedIndexError(f"unparseable archive index: {exc}") from exc
    return SegmentIndex.from_json(obj), base


def slice_segments(
    blob: Any, base: int, records: list[SegmentRecord]
) -> list[bytes]:
    """Cut the records' byte ranges out of an in-memory archive."""
    out = []
    for rec in records:
        start = base + rec.offset
        end = start + rec.nbytes
        if len(blob) < end:
            raise TruncatedSegmentError(
                f"segment {rec.seq} needs bytes [{start}, {end}), "
                f"archive has {len(blob)}"
            )
        out.append(bytes(blob[start:end]))
    return out


def read_archive_prefix(
    path: Any, eps: float | None = None, resolution: int | None = None,
    strict: bool = True,
) -> tuple[SegmentIndex, list[SegmentRecord], list[bytes]]:
    """Open an HPGX file and read **only** the planned byte ranges.

    Returns ``(index, plan, segments)``; the file reads are the header,
    the index, and one contiguous range covering the prefix — never the
    tail segments a bounded request does not need.
    """
    with open(path, "rb") as f:
        head = f.read(_ARCHIVE_HEADER.size)
        if len(head) < _ARCHIVE_HEADER.size:
            raise TruncatedSegmentError(
                f"archive header truncated: {len(head)} bytes"
            )
        magic, version, index_len = _ARCHIVE_HEADER.unpack(head)
        if magic != ARCHIVE_MAGIC:
            raise MalformedIndexError(
                f"not an HPGX archive (magic {bytes(magic)!r})"
            )
        if version != _ARCHIVE_VERSION:
            raise MalformedIndexError(f"unsupported HPGX version {version}")
        raw_index = f.read(index_len)
        if len(raw_index) < index_len:
            raise TruncatedSegmentError(
                f"archive index truncated: {len(raw_index)} < {index_len}"
            )
        try:
            index = SegmentIndex.from_json(json.loads(raw_index.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise MalformedIndexError(
                f"unparseable archive index: {exc}"
            ) from exc
        plan = index.plan(eps=eps, resolution=resolution, strict=strict)
        if not plan:
            return index, plan, []
        span = plan[-1].offset + plan[-1].nbytes - plan[0].offset
        f.seek(_ARCHIVE_HEADER.size + index_len + plan[0].offset)
        region = f.read(span)
    if len(region) < span:
        raise TruncatedSegmentError(
            f"archive data truncated: wanted {span} bytes, got {len(region)}"
        )
    base = plan[0].offset
    segments = [
        region[rec.offset - base : rec.offset - base + rec.nbytes]
        for rec in plan
    ]
    return index, plan, segments


# ----------------------------------------------------------------------
# HPRQ serve request envelope
# ----------------------------------------------------------------------
def make_retrieve_request(
    archive: bytes, eps: float | None = None, resolution: int | None = None
) -> bytes:
    """Frame a ``retrieve`` request for the serve layer."""
    if eps is not None and resolution is not None:
        raise ValueError("pass either eps or resolution, not both")
    header = _REQUEST_HEADER.pack(
        REQUEST_MAGIC, _REQUEST_VERSION,
        float("nan") if eps is None else float(eps),
        -1 if resolution is None else int(resolution),
    )
    return header + bytes(archive)


def parse_retrieve_request(blob: Any) -> tuple[float | None, int | None, bytes]:
    """Invert :func:`make_retrieve_request` -> ``(eps, resolution, archive)``."""
    if len(blob) < _REQUEST_HEADER.size:
        raise MalformedIndexError(
            f"retrieve request truncated: {len(blob)} bytes"
        )
    magic, version, eps, resolution = _REQUEST_HEADER.unpack_from(blob, 0)
    if magic != REQUEST_MAGIC:
        raise MalformedIndexError(
            f"not a retrieve request (magic {bytes(magic)!r})"
        )
    if version != _REQUEST_VERSION:
        raise MalformedIndexError(f"unsupported request version {version}")
    return (
        None if math.isnan(eps) else float(eps),
        None if resolution < 0 else int(resolution),
        bytes(blob[_REQUEST_HEADER.size :]),
    )
