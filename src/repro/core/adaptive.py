"""Adaptive chunk-size strategy (paper Algorithm 4, Section V-C).

Small chunks start the pipeline quickly (high overlap ratio) but
under-occupy the device; large chunks saturate it but expose the first
transfer's latency.  Algorithm 4 starts from a small user-specified
chunk and grows each next chunk to the largest size transferable while
the device reduces the current one:

    C_next = min( Θ(C_curr / Φ(C_curr)), C_limit )

with Φ the (roofline-modelled) reduction throughput and Θ(t) = t·β the
host-to-device transfer model.  The schedule therefore converges to the
steady state where copy time exactly hides under compute time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.pipeline import PipelineResult, ReductionPipeline
from repro.machine.device import SimDevice
from repro.perf.models import KernelModel


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tunables for Algorithm 4."""

    initial_chunk: int = 16 * 1000 * 1000   # C_init: small leading chunk
    max_chunk: int | None = None            # C_limit; default from device memory
    min_chunk: int = 1000 * 1000            # floor to avoid degenerate tails

    def __post_init__(self) -> None:
        if self.initial_chunk < 1:
            raise ValueError("initial_chunk must be positive")
        if self.min_chunk < 1:
            raise ValueError("min_chunk must be positive")

    @classmethod
    def from_tuning(cls, config: Mapping[str, Any]) -> "AdaptiveConfig":
        """Build Algorithm 4's tunables from an auto-tuner configuration.

        The feedback tuner (:mod:`repro.tune`) searches ``chunk_bytes``
        (the leading-chunk size) instead of trusting the a-priori
        roofline pick; unrecognized keys (adapter/threads/codec knobs)
        are simply not Algorithm 4's business and are ignored.
        """
        kwargs: dict[str, Any] = {}
        if "chunk_bytes" in config:
            kwargs["initial_chunk"] = int(config["chunk_bytes"])
        if "max_chunk_bytes" in config:
            kwargs["max_chunk"] = int(config["max_chunk_bytes"])
        return cls(**kwargs)


def tuned_schedule(
    total_bytes: int,
    model: KernelModel,
    tuning_config: Mapping[str, Any],
    ratio: float = 4.0,
) -> list[int]:
    """Chunk schedule seeded by a learned configuration.

    The measurement-driven counterpart of :func:`adaptive_schedule`'s
    pure-model form: the tuner supplies the starting chunk it observed
    to win, Algorithm 4 still governs the growth to steady state.
    """
    return adaptive_schedule(
        total_bytes, model,
        config=AdaptiveConfig.from_tuning(tuning_config),
        ratio=ratio,
    )


def bottleneck_chunk(model: KernelModel, ratio: float = 4.0) -> int:
    """Smallest chunk whose throughput Φ(C) keeps the pipeline stall-free.

    For compute-bound kernels (γ ≤ link bandwidth) that is full kernel
    saturation.  For transfer-bound kernels, the 2-buffer
    anti-dependency (h2d[i] waits on serialize[i-2]) makes the exact
    steady-state condition ``C/Φ + C/(ratio·link) ≤ C/link``, i.e.
    ``Φ ≥ link · ratio/(ratio-1)`` — the kernel plus the output copy
    must fit inside one input-copy period.  Shrinking the chunk below
    the size achieving that reintroduces the occupancy ramp for no
    benefit.
    """
    if ratio <= 1.0:
        headroom = 4.0  # incompressible data: require ample compute slack
    else:
        headroom = 1.05 * ratio / (ratio - 1.0)
    link = model.processor.link_h2d
    target = min(model.gamma, headroom * link)
    if target >= model.gamma:
        return int(model.c_threshold)
    # Invert the ramp: phi(C) = (floor + (1-floor)·C/C_th)·γ = target.
    frac = target / model.gamma
    c = (frac - model.ramp_floor) / (1.0 - model.ramp_floor) * model.c_threshold
    return int(min(max(c, 0.0), model.c_threshold))


def adaptive_schedule(
    total_bytes: int,
    model: KernelModel,
    config: AdaptiveConfig | None = None,
    ratio: float = 4.0,
) -> list[int]:
    """Chunk sizes per Algorithm 4 (lines 2-21).

    The returned sizes sum exactly to ``total_bytes``.  Beyond the
    verbatim recurrence ``C_next = min(Θ(C_curr/Φ(C_curr)), C_limit)``,
    chunks never drop below :func:`bottleneck_chunk` — the paper's Φ
    model is only profiled down to pipeline-efficient sizes ("we do not
    consider small chunk sizes that … would lead to an inefficient
    pipeline"), so the steady state must not drift back into the ramp.
    """
    if total_bytes <= 0:
        raise ValueError(f"total_bytes must be positive, got {total_bytes}")
    cfg = config if config is not None else AdaptiveConfig()
    c_limit = cfg.max_chunk
    if c_limit is None:
        # Two buffer sets of input+output must fit: keep a chunk within
        # a quarter of device memory.
        c_limit = int(model.processor.mem_capacity // 4)
    c_floor = max(cfg.min_chunk, bottleneck_chunk(model, ratio))
    c_curr = min(cfg.initial_chunk, total_bytes, c_limit)

    sizes = [c_curr]
    rest = total_bytes - c_curr
    while rest > 0:
        # Θ(C/Φ(C)): bytes transferable while the current chunk reduces.
        t_compute = c_curr / model.phi(c_curr)
        c_next = int(min(model.theta(t_compute), c_limit))
        c_next = max(c_next, min(c_floor, c_limit))
        c_next = min(c_next, rest)
        sizes.append(c_next)
        rest -= c_next
        c_curr = c_next
    return sizes


def run_adaptive_compression(
    device: SimDevice,
    model: KernelModel,
    total_bytes: int,
    ratio: float = 4.0,
    config: AdaptiveConfig | None = None,
    **pipeline_kwargs,
) -> PipelineResult:
    """Convenience: schedule chunks adaptively and run the Fig. 9 DAG."""
    sizes = adaptive_schedule(total_bytes, model, config, ratio=ratio)
    pipe = ReductionPipeline(device, model, **pipeline_kwargs)
    return pipe.run_compression(sizes, ratio=ratio)


def run_adaptive_reconstruction(
    device: SimDevice,
    model: KernelModel,
    total_bytes: int,
    ratio: float = 4.0,
    config: AdaptiveConfig | None = None,
    **pipeline_kwargs,
) -> PipelineResult:
    sizes = adaptive_schedule(total_bytes, model, config, ratio=ratio)
    pipe = ReductionPipeline(device, model, **pipeline_kwargs)
    return pipe.run_reconstruction(sizes, ratio=ratio)
