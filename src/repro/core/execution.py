"""Execution models (paper Section III-B, Table I).

GEM partitions threads into groups executing independently; DEM puts all
threads in one synchronized domain.  Both support multi-stage execution:
operations sharing an execution model fuse into one model instance so
intermediate data stays staged (cache / shared memory for GEM, DRAM for
DEM) instead of round-tripping through global memory between launches.

The :data:`ABSTRACTION_TO_MODEL` table is the machine-checkable form of
the paper's Table I.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.abstractions import Abstraction
from repro.core.functor import DomainFunctor, LocalityFunctor


class ExecutionModel(enum.Enum):
    GEM = "group"
    DEM = "domain"
    HDEM = "host-device"


#: Table I — which execution model serves each parallel abstraction,
#: and what maps onto a group/domain.
ABSTRACTION_TO_MODEL: dict[Abstraction, tuple[ExecutionModel, str]] = {
    Abstraction.LOCALITY: (ExecutionModel.GEM, "block -> group"),
    Abstraction.ITERATIVE: (ExecutionModel.GEM, "B vectors -> group"),
    Abstraction.MAP_AND_PROCESS: (ExecutionModel.DEM, "all subsets -> whole domain"),
    Abstraction.GLOBAL: (ExecutionModel.DEM, "domain -> whole domain"),
}


class _FusedGroupStages(LocalityFunctor):
    """Stage-fused GEM functor: stages run back-to-back per group batch,
    so intermediates stay "staged" (one live array) rather than being
    written out between separate launches."""

    def __init__(self, stages: Sequence[LocalityFunctor]) -> None:
        self._stages = list(stages)
        self.name = "+".join(s.name for s in self._stages)
        self.bytes_per_element = sum(s.bytes_per_element for s in self._stages)

    def apply(self, blocks: np.ndarray) -> np.ndarray:
        for stage in self._stages:
            blocks = stage.apply(blocks)
        return blocks


class GEM:
    """Group Execution Model: multi-stage group-parallel execution.

    Build with an adapter and one or more :class:`LocalityFunctor`
    stages; :meth:`run` executes the fused stages over a pre-blocked
    batch.  Stage order is maintained by block-level synchronization
    (Table II), which sequential per-group execution satisfies.
    """

    model = ExecutionModel.GEM

    def __init__(self, adapter, stages: Sequence[LocalityFunctor]) -> None:
        if not stages:
            raise ValueError("GEM requires at least one stage")
        self.adapter = adapter
        self.stages = list(stages)
        self._fused = (
            self.stages[0] if len(self.stages) == 1 else _FusedGroupStages(self.stages)
        )

    def run(self, batch: np.ndarray) -> np.ndarray:
        """Execute over ``(ngroups, ...)``; returns the transformed batch."""
        return self.adapter.execute_group_batch(self._fused, batch)


class DEM:
    """Domain Execution Model: whole-domain multi-stage execution.

    Stages are separated by a global synchronization; on CUDA/HIP this
    uses cooperative groups, on OpenMP sequential execution (Table II).
    """

    model = ExecutionModel.DEM

    def __init__(self, adapter, stages: Sequence[Callable[[Any], Any]],
                 name: str = "dem") -> None:
        if not stages:
            raise ValueError("DEM requires at least one stage")
        from repro.core.functor import FnDomain

        self.adapter = adapter
        self.stages = list(stages)
        self._functor = FnDomain(*self.stages, name=name)

    def run(self, data: Any) -> Any:
        return self.adapter.execute_domain(self._functor, data)


def model_for(abstraction: Abstraction) -> ExecutionModel:
    """Resolve the Table I mapping for one abstraction."""
    return ABSTRACTION_TO_MODEL[abstraction][0]
