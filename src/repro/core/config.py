"""Framework configuration: error-bound modes and compression settings."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class ErrorMode(enum.Enum):
    """Error-bound interpretation for lossy pipelines.

    ``ABS``: ``max|x - x'| <= eb``.
    ``REL``: ``max|x - x'| <= eb * (max(x) - min(x))`` — the "relative
    error bound" convention the paper uses in its evaluation.
    """

    ABS = "abs"
    REL = "rel"


@dataclass(frozen=True)
class Config:
    """Immutable reduction configuration.

    The tuple form (:meth:`cache_key`) keys the Context Memory Model's
    hash map: two reduction calls with equal keys can share a cached
    context (buffers, hierarchy, codebooks).
    """

    error_bound: float = 1e-4
    error_mode: ErrorMode = ErrorMode.REL
    #: ZFP fixed-rate mode: compressed bits per value.
    rate: float = 8.0
    #: Huffman symbol width for quantized coefficients.
    huffman_bits: int = 16
    #: Lossless stage toggle for lossy pipelines.
    lossless: str = "huffman"
    #: Adapter name: serial | openmp | cuda | hip.
    adapter: str = "serial"

    def __post_init__(self) -> None:
        if self.error_bound <= 0:
            raise ValueError(f"error_bound must be positive, got {self.error_bound}")
        if self.rate <= 0 or self.rate > 64:
            raise ValueError(f"rate must be in (0, 64], got {self.rate}")
        if self.lossless not in ("huffman", "none"):
            raise ValueError(f"lossless must be huffman|none, got {self.lossless!r}")

    def absolute_bound(self, data: np.ndarray) -> float:
        """Resolve the configured bound to an absolute tolerance for ``data``."""
        if self.error_mode is ErrorMode.ABS:
            return self.error_bound
        lo = float(np.min(data))
        hi = float(np.max(data))
        value_range = hi - lo
        if value_range == 0.0:
            return self.error_bound  # constant field: any bound is satisfiable
        return self.error_bound * value_range

    def cache_key(self, shape: tuple[int, ...], dtype: np.dtype) -> tuple:
        """Hashable CMM key for a (config, shape, dtype) combination."""
        return (
            self.error_bound,
            self.error_mode.value,
            self.rate,
            self.huffman_bits,
            self.lossless,
            self.adapter,
            tuple(shape),
            np.dtype(dtype).str,
        )
