"""HPDR framework core — the paper's primary contribution.

Layers (bottom-up, Fig. 2):

* :mod:`repro.core.functor` — the kernel interface reduction algorithms
  implement.
* :mod:`repro.core.abstractions` — the four parallelization abstractions
  (Locality, Iterative, Map&Process, Global pipeline).
* :mod:`repro.core.execution` — the Group and Domain Execution Models
  (GEM/DEM) with multi-stage fusion, and the Table I mapping.
* :mod:`repro.core.context` — the Context Memory Model (CMM): hash-map
  cached reduction contexts with persistent buffers.
* :mod:`repro.core.pipeline` — the Host-Device Execution Model pipeline
  (Fig. 9): 3 queues, 2 buffer sets, overlap-enabling dependencies.
* :mod:`repro.core.adaptive` — Algorithm 4's adaptive chunk sizing.
"""

from repro.core.config import Config, ErrorMode
from repro.core.functor import (
    DomainFunctor,
    Functor,
    IterativeFunctor,
    LocalityFunctor,
)
from repro.core.abstractions import (
    Abstraction,
    global_pipeline,
    iterative,
    locality,
    map_and_process,
)
from repro.core.execution import (
    DEM,
    GEM,
    ABSTRACTION_TO_MODEL,
    ExecutionModel,
)
from repro.core.context import ContextCache, ReductionContext

__all__ = [
    "Config",
    "ErrorMode",
    "Functor",
    "LocalityFunctor",
    "IterativeFunctor",
    "DomainFunctor",
    "Abstraction",
    "locality",
    "iterative",
    "map_and_process",
    "global_pipeline",
    "GEM",
    "DEM",
    "ExecutionModel",
    "ABSTRACTION_TO_MODEL",
    "ContextCache",
    "ReductionContext",
]
