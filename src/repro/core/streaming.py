"""Streaming (in-situ) compression API.

The paper's contribution list stresses that "for applications that
continuously generate data, reduction and data movement must be
optimized in tandem".  This module is the functional counterpart of that
pipeline: an application hands chunks to :class:`StreamingCompressor` as
they are produced (one per simulation step, say); every chunk is reduced
immediately with contexts reused through the CMM, and the stream can be
finalized into a single self-describing container at any point.

The reader side (:class:`StreamingDecompressor`) iterates chunks lazily,
touching only the bytes of the chunks it yields — suitable for
out-of-core analysis.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

import numpy as np

from repro.util import stream_errors

_MAGIC = b"HPST"
_VERSION = 1


class StreamingCompressor:
    """Compress a sequence of chunks with one persistent compressor.

    Parameters
    ----------
    compressor:
        Any HPDR compressor (MGARD-X, ZFP-X, SZ, …).  Its context cache
        makes repeated same-shape chunks allocation-free — the CMM in
        its natural habitat.
    """

    def __init__(self, compressor) -> None:
        self.compressor = compressor
        self._chunks: list[bytes] = []
        self._shapes: list[tuple[int, ...]] = []
        self._raw_bytes = 0
        self._finalized = False

    def push(self, chunk: np.ndarray) -> int:
        """Reduce one chunk; returns its compressed size in bytes."""
        if self._finalized:
            raise RuntimeError("stream already finalized")
        chunk = np.ascontiguousarray(chunk)
        blob = self.compressor.compress(chunk)
        self._chunks.append(blob)
        self._shapes.append(chunk.shape)
        self._raw_bytes += chunk.nbytes
        return len(blob)

    def extend(self, chunks: Iterable[np.ndarray]) -> int:
        """Push many chunks; returns total compressed bytes added."""
        return sum(self.push(c) for c in chunks)

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    @property
    def compressed_bytes(self) -> int:
        return sum(len(b) for b in self._chunks)

    @property
    def ratio(self) -> float:
        stored = self.compressed_bytes
        return self._raw_bytes / stored if stored else float("inf")

    def finalize(self) -> bytes:
        """Seal the stream into one container (chunks stay independent)."""
        self._finalized = True
        parts = [_MAGIC, struct.pack("<BI", _VERSION, len(self._chunks))]
        for blob in self._chunks:
            parts.append(struct.pack("<Q", len(blob)))
        parts.extend(self._chunks)
        return b"".join(parts)


class StreamingDecompressor:
    """Lazy chunk iterator over a finalized stream."""

    def __init__(self, compressor, blob: bytes) -> None:
        self.compressor = compressor
        self._blob = blob
        self._offsets = self._parse_index(blob)

    @staticmethod
    @stream_errors
    def _parse_index(blob: bytes) -> list[tuple[int, int]]:
        if blob[:4] != _MAGIC:
            raise ValueError("not an HPDR stream container (bad magic)")
        version, nchunks = struct.unpack_from("<BI", blob, 4)
        if version != _VERSION:
            raise ValueError(f"unsupported stream version {version}")
        off = 4 + struct.calcsize("<BI")
        sizes = []
        for _ in range(nchunks):
            (s,) = struct.unpack_from("<Q", blob, off)
            sizes.append(s)
            off += 8
        offsets = []
        for s in sizes:
            if off + s > len(blob):
                raise ValueError("truncated stream container")
            offsets.append((off, s))
            off += s
        return offsets

    def __len__(self) -> int:
        return len(self._offsets)

    def chunk(self, i: int) -> np.ndarray:
        """Decode chunk ``i`` only (random access)."""
        off, size = self._offsets[i]
        return self.compressor.decompress(self._blob[off : off + size])

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(len(self)):
            yield self.chunk(i)

    def concatenate(self, axis: int = 0) -> np.ndarray:
        """Materialize the whole stream along ``axis``."""
        return np.concatenate(list(self), axis=axis)
