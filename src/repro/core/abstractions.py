"""The four parallelization abstractions (paper Section III-A, Fig. 3).

* :func:`locality` — decompose the input into blocks (optionally with
  halo regions), execute an algorithm-defined functor cooperatively per
  block, reassemble.  Used by ZFP's 4^d blocks, MGARD's interpolation /
  mass-transfer passes, Huffman's chunked encoder.
* :func:`iterative` — process vectors along one dimension, each vector
  sequentially, B vectors per group.  Used by MGARD's tridiagonal
  solves.
* :func:`map_and_process` — map data into subsets and process each with
  its own function.  Used by MGARD's per-level quantization.
* :func:`global_pipeline` — whole-domain processing with global
  synchronization between stages.  Used by Huffman's histogram and
  parallel serialization.

Each abstraction dispatches to a device adapter following the Table I
mapping (Locality/Iterative → GEM, Map&Process/Global → DEM).
"""

from __future__ import annotations

import enum
import math
from typing import Any, Callable, Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.functor import (
    DomainFunctor,
    FnDomain,
    IterativeFunctor,
    LocalityFunctor,
)


class Abstraction(enum.Enum):
    """The four abstractions, for the Table I mapping in execution.py."""

    LOCALITY = "locality"
    ITERATIVE = "iterative"
    MAP_AND_PROCESS = "map_and_process"
    GLOBAL = "global"


def _default_adapter() -> Any:
    from repro.adapters import get_adapter

    return get_adapter("serial")


# ----------------------------------------------------------------------
# Block decomposition helpers
# ----------------------------------------------------------------------
def block_grid(
    shape: tuple[int, ...], block_shape: tuple[int, ...]
) -> tuple[int, ...]:
    """Blocks per dimension (ceil-division) for :func:`blockize`."""
    return tuple(-(-n // b) for n, b in zip(shape, block_shape))


def blockize(
    data: np.ndarray,
    block_shape: tuple[int, ...],
    halo: int = 0,
    pad_mode: str = "edge",
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Decompose ``data`` into a batch of blocks.

    Returns ``(batch, grid_shape)`` where ``batch`` has shape
    ``(nblocks, *(block_shape + 2*halo))`` and ``grid_shape`` is the
    number of blocks per dimension.  The input is padded (``pad_mode``)
    up to a multiple of ``block_shape``, plus ``halo`` cells on every
    boundary so edge blocks also carry full halos.

    ``out`` (shape ``(nblocks, *window)``, matching dtype) receives the
    batch in place — typically a persistent CMM buffer — so the steady
    state performs no batch allocation.  Without ``out``, the 1-D
    no-halo case still returns a zero-copy view of the (padded) input.
    """
    if data.ndim != len(block_shape):
        raise ValueError(
            f"block_shape rank {len(block_shape)} != data rank {data.ndim}"
        )
    if any(b < 1 for b in block_shape):
        raise ValueError(f"block sizes must be >= 1, got {block_shape}")
    if halo < 0:
        raise ValueError(f"halo must be >= 0, got {halo}")

    grid_shape = block_grid(data.shape, block_shape)
    pad = [
        (halo, g * b - n + halo)
        for n, b, g in zip(data.shape, block_shape, grid_shape)
    ]
    padded = np.pad(data, pad, mode=pad_mode) if any(p != (0, 0) for p in pad) else data

    window = tuple(b + 2 * halo for b in block_shape)
    nblocks = int(np.prod(grid_shape))
    if out is not None and (
        out.shape != (nblocks,) + window or out.dtype != data.dtype
    ):
        raise ValueError(
            f"out has shape {out.shape}/{out.dtype}, expected "
            f"{(nblocks,) + window}/{data.dtype}"
        )
    if halo == 0:
        # Fast path: pure reshape/transpose; the single copy (when one
        # is needed at all) lands directly in ``out``.
        g = grid_shape
        b = block_shape
        interleaved = padded.reshape(
            *(dim for pair in zip(g, b) for dim in pair)
        )
        ndim = data.ndim
        axes = tuple(range(0, 2 * ndim, 2)) + tuple(range(1, 2 * ndim, 2))
        arranged = interleaved.transpose(axes)
        if out is None:
            return np.ascontiguousarray(arranged).reshape(-1, *b), grid_shape
        np.copyto(out.reshape(*g, *b), arranged)
        return out, grid_shape
    windows = sliding_window_view(padded, window)
    # windows has shape (padded - window + 1 per dim, *window); take
    # block-stride steps.
    idx = tuple(slice(None, None, b) for b in block_shape)
    strided = windows[idx]
    if out is None:
        return np.ascontiguousarray(strided).reshape(-1, *window), grid_shape
    np.copyto(out.reshape(strided.shape), strided)
    return out, grid_shape


def unblockize(
    batch: np.ndarray,
    grid_shape: tuple[int, ...],
    out_shape: tuple[int, ...],
    halo: int = 0,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Reassemble a block batch produced by :func:`blockize`.

    When ``halo > 0`` only each block's core region is written back.
    ``out`` receives the result in place.  When every output dimension
    is an exact multiple of its block size the stitch is a single copy
    (no intermediate assembly buffer).
    """
    ndim = len(out_shape)
    if batch.ndim != ndim + 1:
        raise ValueError(
            f"batch rank {batch.ndim} incompatible with out rank {ndim}"
        )
    window = batch.shape[1:]
    block_shape = tuple(w - 2 * halo for w in window)
    if any(b < 1 for b in block_shape):
        raise ValueError("halo larger than block")
    if halo > 0:
        core = (slice(None),) + tuple(slice(halo, halo + b) for b in block_shape)
        batch = batch[core]
    g = grid_shape
    b = block_shape
    if out is not None and (
        out.shape != tuple(out_shape) or out.dtype != batch.dtype
    ):
        raise ValueError(
            f"out has shape {out.shape}/{out.dtype}, expected "
            f"{tuple(out_shape)}/{batch.dtype}"
        )
    full = batch.reshape(*g, *b)
    axes: list[int] = []
    for i in range(ndim):
        axes.extend([i, ndim + i])
    arranged = full.transpose(axes)  # (g0, b0, g1, b1, ...) view
    if tuple(out_shape) == tuple(gi * bi for gi, bi in zip(g, b)):
        # Exact tiling: one copy straight into the destination.
        if out is None:
            out = np.empty(out_shape, dtype=batch.dtype)
        np.copyto(
            out.reshape(*(dim for pair in zip(g, b) for dim in pair)),
            arranged,
        )
        return out
    stitched = arranged.reshape(*(gi * bi for gi, bi in zip(g, b)))
    crop = tuple(slice(0, n) for n in out_shape)
    if out is None:
        return np.ascontiguousarray(stitched[crop])
    np.copyto(out, stitched[crop])
    return out


# ----------------------------------------------------------------------
# Abstraction entry points
# ----------------------------------------------------------------------
def locality(
    data: np.ndarray,
    functor: LocalityFunctor,
    block_shape: tuple[int, ...] | None = None,
    halo: int = 0,
    adapter=None,
    pad_mode: str = "edge",
    reassemble: bool | None = None,
    ctx=None,
) -> np.ndarray:
    """Locality abstraction (Fig. 3a).

    ``block_shape=None`` treats the whole array as a single block (an
    algorithm-defined choice MGARD's level passes use).  When the
    functor's output blocks match its input block shape the result is
    reassembled to ``data.shape``; otherwise the raw output batch is
    returned (encoded outputs, e.g. ZFP bitplanes), or force the
    behaviour via ``reassemble``.

    ``ctx`` is an optional :class:`~repro.core.context.ReductionContext`
    supplying the persistent block-batch buffer (CMM, Section III-B):
    with it, repeated same-shaped calls perform no batch allocation.
    """
    adapter = adapter if adapter is not None else _default_adapter()
    if block_shape is None:
        block_shape = data.shape
        if halo != 0:
            raise ValueError("halo requires an explicit block_shape")
    block_shape = tuple(block_shape)
    batch_out = None
    if ctx is not None and (halo > 0 or data.ndim > 1):
        # 1-D no-halo blockize is a zero-copy reshape; forcing it into a
        # persistent buffer would *add* a copy, so only multi-dim /
        # halo decompositions draw their batch from the context.
        grid = block_grid(data.shape, block_shape)
        window = tuple(b + 2 * halo for b in block_shape)
        shape_tag = "x".join(map(str, data.shape))
        batch_out = ctx.buffer(
            f"locality.{functor.name}.{shape_tag}.batch",
            (int(np.prod(grid)),) + window,
            data.dtype,
        )
    batch, grid_shape = blockize(
        data, block_shape, halo, pad_mode, out=batch_out
    )
    out = adapter.execute_group_batch(functor, batch)
    if out.shape[0] != batch.shape[0]:
        raise ValueError(
            f"functor {functor.name!r} changed the block count: "
            f"{batch.shape[0]} -> {out.shape[0]}"
        )
    core_shape = tuple(block_shape)
    if reassemble is None:
        reassemble = out.shape[1:] in (batch.shape[1:], core_shape)
    if not reassemble:
        return out
    if halo > 0 and out.shape[1:] == core_shape:
        # Functor already cropped its halo: stitch the cores directly.
        return unblockize(out, grid_shape, data.shape, halo=0)
    return unblockize(out, grid_shape, data.shape, halo)


class _GroupedIterative(LocalityFunctor):
    """Internal shim: presents B-vector groups to the adapter as GEM
    groups while the user functor still sees flat ``(nvec, n)``."""

    def __init__(self, inner: IterativeFunctor) -> None:
        self._inner = inner
        self.name = inner.name
        self.bytes_per_element = inner.bytes_per_element

    def apply(self, groups: np.ndarray) -> np.ndarray:
        ngroups, b, n = groups.shape
        flat = groups.reshape(ngroups * b, n)
        out = self._inner.apply(flat)
        return out.reshape(ngroups, b, n)


def iterative(
    data: np.ndarray,
    functor: IterativeFunctor,
    axis: int = -1,
    group_size: int = 16,
    adapter=None,
    ctx=None,
) -> np.ndarray:
    """Iterative abstraction (Fig. 3b).

    Extracts all vectors along ``axis``, organizes every ``group_size``
    vectors into a group (the paper's B:1 mapping for memory locality),
    and applies the functor, whose computation is sequential along the
    vector but parallel across vectors.

    ``ctx`` supplies the persistent vector-batch buffer (CMM): the
    axis-move gather and group padding then reuse cached memory and the
    steady state allocates nothing for the batch.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    adapter = adapter if adapter is not None else _default_adapter()
    moved = np.moveaxis(data, axis, -1)
    lead_shape = moved.shape[:-1]
    n = moved.shape[-1]
    nvec = int(np.prod(lead_shape)) if lead_shape else 1

    ngroups = -(-nvec // group_size)
    padded_n = ngroups * group_size
    if ctx is not None:
        # The shape tag keeps one buffer per distinct problem size, so
        # pipelines that sweep several sizes per call (MGARD's level
        # hierarchy) still reach a zero-alloc steady state.
        shape_tag = "x".join(map(str, moved.shape))
        vectors = ctx.buffer(
            f"iterative.{functor.name}.{axis}.{shape_tag}.vectors",
            (padded_n, n),
            data.dtype,
        )
        np.copyto(vectors[:nvec].reshape(moved.shape), moved)
        if padded_n != nvec:
            vectors[nvec:] = vectors[nvec - 1]
    else:
        vectors = np.ascontiguousarray(moved.reshape(-1, n))
        if padded_n != nvec:
            pad = np.repeat(vectors[-1:], padded_n - nvec, axis=0)
            vectors = np.concatenate([vectors, pad], axis=0)
    groups = vectors.reshape(ngroups, group_size, n)
    out = adapter.execute_group_batch(_GroupedIterative(functor), groups)
    out = out.reshape(padded_n, n)[:nvec]
    return np.moveaxis(out.reshape(*lead_shape, n), -1, axis)


def map_and_process(
    data: Any,
    mapper: Callable[[Any], Sequence[Any]],
    processors: Sequence[Callable[[Any], Any]] | Callable[[Any, int], Any],
    adapter=None,
) -> list[Any]:
    """Map&Process abstraction (Fig. 3c) — DEM.

    ``mapper`` splits the input into subsets; each subset *i* is
    processed by ``processors[i]`` (or ``processors(subset, i)`` when a
    single callable is given).  All subsets are processed within one
    whole-domain execution.
    """
    adapter = adapter if adapter is not None else _default_adapter()
    subsets = list(mapper(data))

    def _process(subs: list[Any]) -> list[Any]:
        out = []
        for i, s in enumerate(subs):
            if callable(processors):
                out.append(processors(s, i))
            else:
                out.append(processors[i](s))
        return out

    if not callable(processors) and len(processors) != len(subsets):
        raise ValueError(
            f"{len(subsets)} subsets but {len(processors)} processors"
        )
    functor = FnDomain(_process, name="map_and_process")
    return adapter.execute_domain(functor, subsets)


def global_pipeline(
    data: Any,
    functor: DomainFunctor,
    adapter=None,
) -> Any:
    """Global pipeline abstraction (Fig. 3d) — DEM.

    The whole domain is processed at once; the functor's stages are
    separated by global synchronization (trivially satisfied by
    sequential stage execution on every backend).
    """
    adapter = adapter if adapter is not None else _default_adapter()
    return adapter.execute_domain(functor, data)
