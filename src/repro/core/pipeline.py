"""Host-Device Execution Model pipeline (paper Section V, Fig. 9).

Builds the optimized reduction/reconstruction DAGs on a simulated
device:

* three in-order queues (the minimum depth, by Little's law, to keep
  one compute engine and two DMA engines busy);
* two input/output buffer sets, enforced by the *extra dependencies*
  (Fig. 9's dotted edges): the pipeline stage on queue X must not start
  until stage (X+2) mod 3's buffer-releasing operation finished;
* one kernel at a time (restriction 1) — guaranteed by the single
  compute-engine resource;
* one DMA per direction (restriction 2) — input copies on the H2D
  engine, output copies and (de)serialization on the D2H engine;
* the reconstruction launch-order reversal (red edges): the next
  chunk's deserialization is issued before the current chunk's output
  copy on their shared DMA.

Also provides the *functional* chunked compression path (real bytes,
real compressors) used to study the chunk-size/compression-ratio
interplay of Fig. 14.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.machine.device import SimDevice
from repro.machine.engine import Task, TaskKind, Trace
from repro.perf.models import KernelModel
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import NULL_SPAN, Span, TRACER as _TRACER, _NullSpan

#: metadata embedded/extracted per chunk (bytes) — rides the DMA engines.
META_BYTES = 4096


def _pipeline_span(name: str, **args: object) -> Span | _NullSpan:
    """Span for a pipeline build/run step (shared NULL_SPAN when off)."""
    if not _TRACER.enabled:
        return NULL_SPAN
    return Span(_TRACER, name, "pipeline", args)


def _record_pipeline_metrics(trace: Trace, direction: str) -> None:
    """Derive Fig. 9 health metrics from a completed simulated schedule.

    Queue wait is the idle time between consecutive tasks on each
    in-order stream: the per-queue sum of start-gaps, i.e. how long the
    stream head sat blocked on dependencies or a busy engine.
    """
    if not _TRACER.enabled:
        return
    per_queue: dict[str, list[Task]] = {}
    for t in trace.tasks:
        if t.queue is not None and t.scheduled:
            per_queue.setdefault(t.queue.name, []).append(t)
    wait = _METRICS.counter(
        "hpdr_pipeline_queue_wait_seconds_total",
        "idle gaps between consecutive tasks on each pipeline queue",
    )
    for qname, tasks in per_queue.items():
        tasks.sort(key=lambda t: (t.start, t.seq))
        gaps = 0.0
        prev_end = 0.0
        for t in tasks:
            if t.start > prev_end:
                gaps += t.start - prev_end
            prev_end = max(prev_end, t.end)
        wait.inc(gaps, queue=qname, direction=direction)
    _METRICS.gauge(
        "hpdr_pipeline_makespan_seconds", "simulated schedule makespan"
    ).set(trace.makespan, direction=direction)
    _METRICS.gauge(
        "hpdr_pipeline_overlap_ratio", "copy/compute overlap achieved"
    ).set(trace.overlap_ratio(), direction=direction)


@dataclass
class PipelineResult:
    """Outcome of one simulated pipeline execution."""

    trace: Trace
    chunk_sizes: list[int]
    total_in_bytes: int
    total_out_bytes: int

    @property
    def makespan(self) -> float:
        return self.trace.makespan

    @property
    def throughput(self) -> float:
        """End-to-end input bytes per second."""
        return self.total_in_bytes / self.makespan if self.makespan > 0 else 0.0

    @property
    def overlap_ratio(self) -> float:
        return self.trace.overlap_ratio()

    @property
    def hidden_copy_ratio(self) -> float:
        return self.trace.hidden_copy_ratio()


class ReductionPipeline:
    """Fig. 9 pipeline builder over a :class:`SimDevice`.

    Parameters
    ----------
    device:
        The simulated device.
    model:
        Chunk-size-dependent kernel model Φ (compression direction).
    num_queues:
        Pipeline depth (paper: 3 is the minimum for full overlap).
    num_buffers:
        Input/output buffer sets.  2 enables the paper's
        memory-footprint optimization via extra dependencies; 3 removes
        the anti-dependencies (ablation).
    overlapped:
        False degenerates to the naive copy-in / compute / copy-out
        serial pipeline (the "None" configuration of Fig. 13).
    context_cached:
        CMM on/off.  Off ⇒ every chunk allocates its buffers through
        the device's (possibly shared) runtime before use.
    reversed_order:
        Reconstruction launch-order reversal (red edges).  On by
        default; off for the ablation bench.
    fault_plan:
        Optional :class:`repro.resilience.faults.FaultPlan`.  Chunks
        whose kernel draws a ``device_batch`` fault are *re-executed*:
        the schedule gains a second kernel task (``…retry``) plus the
        runtime launch arbitration, so the simulated makespan prices in
        the recovery cost of the resilience layer.  Faults and modeled
        retries surface on the standard counters.
    """

    def __init__(
        self,
        device: SimDevice,
        model: KernelModel,
        num_queues: int = 3,
        num_buffers: int = 2,
        overlapped: bool = True,
        context_cached: bool = True,
        reversed_order: bool = True,
        staging_copies: bool | None = None,
        allocs_per_call: int = 4,
        call_overhead_s: float = 0.0,
        stage_split: bool = False,
        fault_plan=None,
    ) -> None:
        if num_queues < 1:
            raise ValueError(f"num_queues must be >= 1, got {num_queues}")
        if num_buffers < 2:
            raise ValueError(f"num_buffers must be >= 2, got {num_buffers}")
        self.device = device
        self.model = model
        self.num_queues = num_queues if overlapped else 1
        self.num_buffers = num_buffers
        self.overlapped = overlapped
        self.context_cached = context_cached
        self.reversed_order = reversed_order
        # Legacy pipelines stage through host buffers (application →
        # reduction buffer, reduction → I/O buffer); HPDR DMA-copies
        # directly from the application buffer (Section V).
        self.staging_copies = (not overlapped) if staging_copies is None else staging_copies
        if allocs_per_call < 0 or call_overhead_s < 0:
            raise ValueError("allocs_per_call/call_overhead_s must be non-negative")
        self.allocs_per_call = allocs_per_call
        # Host-side fixed cost per reduction invocation (e.g. cuSZ's
        # partially CPU-resident codebook construction).
        self.call_overhead_s = call_overhead_s
        # Emit one compute task per algorithm stage (decompose /
        # quantize / encode …) using the perf model's stage split —
        # finer-grained Fig. 1-style traces at identical total time.
        self.stage_split = stage_split
        self._injector = None
        if fault_plan is not None:
            # Lazy import: repro.resilience imports this module's users.
            from repro.resilience.faults import FaultInjector

            self._injector = FaultInjector(fault_plan)

    @classmethod
    def from_tuning(
        cls,
        device: SimDevice,
        model: KernelModel,
        tuning_config,
        **kwargs,
    ) -> "ReductionPipeline":
        """Build a pipeline as a learned configuration dictates.

        The auto-tuner's parameterized fusion entry point: a
        ``stage_split`` key toggles fused-vs-split kernel tasks (the
        only pipeline-shape knob that is byte-neutral — it reshapes the
        schedule, never the data).  Explicit ``kwargs`` win over the
        tuned value; unrelated tuner keys are ignored.
        """
        if "stage_split" in tuning_config:
            kwargs.setdefault("stage_split", bool(tuning_config["stage_split"]))
        return cls(device, model, **kwargs)

    def _maybe_retry_kernel(self, queue, chunk: int, label: str) -> None:
        """Model kernel re-execution when the fault plan strikes."""
        if self._injector is None:
            return
        if not self._injector.draw("device_batch", "pipeline.kernel"):
            return
        _METRICS.counter(
            "hpdr_retries_total", "recovery re-attempts performed"
        ).inc(site="pipeline.kernel")
        # A failed batch pays launch arbitration again, then re-runs.
        self.device.runtime.launch(self.device, queue)
        self._submit_kernel(queue, chunk, f"{label}.retry")

    def _submit_kernel(self, queue, chunk: int, label: str) -> Task:
        """One fused kernel task, or a stage chain when splitting."""
        total = self.model.kernel_time(chunk)
        if not self.stage_split:
            return self.device.kernel(total, queue, label=label, nbytes=chunk)
        from repro.perf.models import STAGE_SPLIT

        split = STAGE_SPLIT.get(self.model.pipeline)
        if not split:
            return self.device.kernel(total, queue, label=label, nbytes=chunk)
        last = None
        for stage, frac in split.items():
            last = self.device.kernel(
                total * frac, queue, label=f"{label}.{stage}", nbytes=chunk
            )
        return last

    # ------------------------------------------------------------------
    def _alloc_tasks(self, queue, chunk_bytes: int, ratio: float) -> list[Task]:
        """Per-chunk runtime memory management when the CMM is disabled.

        Release-version tools allocate their reduction context on every
        call and free it afterwards; both directions serialize on the
        node-shared runtime, which is the Fig. 16 contention mechanism.
        """
        if self.call_overhead_s > 0:
            self.device.sim.submit(
                f"{self.device.spec.name}[{self.device.index}].call_overhead",
                TaskKind.HOST,
                self.device.host_memcpy,
                queue,
                duration=self.call_overhead_s,
            )
        # Kernel-launch arbitration always passes through the runtime.
        self.device.runtime.launch(self.device, queue)
        if self.context_cached:
            return []
        out_bytes = max(1, int(chunk_bytes / ratio))
        sizes = [chunk_bytes, out_bytes] + [chunk_bytes // 2] * max(
            0, self.allocs_per_call - 2
        )
        tasks = []
        for k, nbytes in enumerate(sizes[: self.allocs_per_call]):
            tasks.append(self.device.malloc(nbytes, queue, label=f"alloc{k}"))
            self.device.mem_in_use -= nbytes  # steady-state accounting only
        for k, nbytes in enumerate(sizes[: self.allocs_per_call]):
            self.device.free(nbytes, queue, label=f"free{k}")
        return tasks

    # ------------------------------------------------------------------
    def build_compression(
        self,
        chunk_sizes: list[int],
        ratio: float = 4.0,
    ) -> None:
        """Submit the compression DAG without running the simulator.

        Use this to co-schedule several devices' pipelines on one shared
        simulator (multi-GPU nodes), then call ``sim.run()`` once.
        """
        if not chunk_sizes:
            raise ValueError("need at least one chunk")
        if ratio <= 0:
            raise ValueError(f"ratio must be positive, got {ratio}")
        dev = self.device
        with _pipeline_span(
            "pipeline.build_compression",
            chunks=len(chunk_sizes),
            queues=self.num_queues,
        ):
            queues = dev.create_queues(self.num_queues)
            h2d_tasks: list[Task] = []
            serialize_tasks: list[Task] = []

            for i, chunk in enumerate(chunk_sizes):
                q = queues[i % self.num_queues]
                out_bytes = max(1, int(chunk / ratio))
                deps: list[Task] = []
                # Buffer anti-dependency (dotted edges): with B buffer
                # sets, chunk i reuses chunk i-B's input buffer, which
                # frees at that chunk's serialization.
                j = i - self.num_buffers
                if self.overlapped and j >= 0:
                    deps.append(serialize_tasks[j])
                self._alloc_tasks(q, chunk, ratio)
                if self.staging_copies:
                    dev.host_copy(chunk, q, label=f"stage_in[{i}]")
                t_h2d = dev.h2d(chunk, q, deps=deps, label=f"h2d[{i}]")
                t_k = self._submit_kernel(q, chunk, f"reduce[{i}]")
                self._maybe_retry_kernel(q, chunk, f"reduce[{i}]")
                t_d2h = dev.d2h(out_bytes, q, label=f"out[{i}]")
                t_ser = dev.serialize(META_BYTES, q, label=f"ser[{i}]")
                if self.staging_copies:
                    dev.host_copy(out_bytes, q, label=f"stage_out[{i}]")
                h2d_tasks.append(t_h2d)
                serialize_tasks.append(t_ser)

    def run_compression(
        self,
        chunk_sizes: list[int],
        ratio: float = 4.0,
    ) -> PipelineResult:
        """Simulate compressing chunks of the given sizes (bytes)."""
        self.build_compression(chunk_sizes, ratio)
        with _pipeline_span("pipeline.run_compression", chunks=len(chunk_sizes)):
            trace = self.device.sim.run()
        _record_pipeline_metrics(trace, direction="compress")
        return PipelineResult(
            trace=trace,
            chunk_sizes=list(chunk_sizes),
            total_in_bytes=int(sum(chunk_sizes)),
            total_out_bytes=int(sum(max(1, int(c / ratio)) for c in chunk_sizes)),
        )

    # ------------------------------------------------------------------
    def build_reconstruction(
        self,
        chunk_sizes: list[int],
        ratio: float = 4.0,
    ) -> None:
        """Submit the reconstruction DAG without running the simulator."""
        if not chunk_sizes:
            raise ValueError("need at least one chunk")
        dev = self.device
        with _pipeline_span(
            "pipeline.build_reconstruction",
            chunks=len(chunk_sizes),
            queues=self.num_queues,
        ):
            queues = dev.create_queues(self.num_queues)
            out_tasks: list[Task] = []
            deser_tasks: list[Task] = []
            pending: list[tuple] = []

            # First pass: create per-chunk task descriptors in *launch
            # order*.  With reversed_order, chunk i+1's deserialize is
            # issued before chunk i's output copy (they share the D2H
            # DMA engine).
            for i, chunk in enumerate(chunk_sizes):
                q = queues[i % self.num_queues]
                in_bytes = max(1, int(chunk / ratio))
                deps: list[Task] = []
                j = i - self.num_buffers
                if self.overlapped and j >= 0 and j < len(out_tasks):
                    deps.append(out_tasks[j])
                self._alloc_tasks(q, chunk, ratio)
                if self.staging_copies:
                    dev.host_copy(in_bytes, q, label=f"stage_in[{i}]")
                t_h2d = dev.h2d(in_bytes, q, deps=deps, label=f"h2d[{i}]")
                t_deser = dev.deserialize(META_BYTES, q, label=f"deser[{i}]")
                deser_tasks.append(t_deser)
                t_k = self._submit_kernel(q, chunk, f"recon[{i}]")
                self._maybe_retry_kernel(q, chunk, f"recon[{i}]")
                # Output copy launch: reversed order lets the *next*
                # chunk's deserialization win scheduler ties on the
                # shared DMA; the non-reversed ablation instead makes
                # the next deserialize explicitly wait for this copy.
                t_out = dev.d2h(chunk, q, label=f"out[{i}]")
                if self.staging_copies:
                    dev.host_copy(chunk, q, label=f"stage_out[{i}]")
                out_tasks.append(t_out)
                if not self.reversed_order and i + 1 < len(chunk_sizes):
                    pending.append((i + 1, t_out))

            for idx, t_out in pending:
                deser_tasks[idx].add_dep(t_out)

    def run_reconstruction(
        self,
        chunk_sizes: list[int],
        ratio: float = 4.0,
    ) -> PipelineResult:
        """Simulate reconstructing chunks (sizes are *decompressed* bytes)."""
        self.build_reconstruction(chunk_sizes, ratio)
        with _pipeline_span("pipeline.run_reconstruction", chunks=len(chunk_sizes)):
            trace = self.device.sim.run()
        _record_pipeline_metrics(trace, direction="reconstruct")
        return PipelineResult(
            trace=trace,
            chunk_sizes=list(chunk_sizes),
            total_in_bytes=int(sum(max(1, int(c / ratio)) for c in chunk_sizes)),
            total_out_bytes=int(sum(chunk_sizes)),
        )


# ----------------------------------------------------------------------
# Functional chunked compression (real bytes)
# ----------------------------------------------------------------------
_CHUNK_MAGIC = b"HPDC"


def chunked_compress(compressor, data: np.ndarray, chunk_elems: int) -> bytes:
    """Compress ``data`` in chunks along axis 0 (real compression).

    This is the functional counterpart of the pipeline: each chunk is an
    independent stream, which is exactly why small chunks degrade
    MGARD's ratio (less correlation per stream — Fig. 14).
    """
    if chunk_elems < 1:
        raise ValueError(f"chunk_elems must be >= 1, got {chunk_elems}")
    data = np.ascontiguousarray(data)
    n0 = data.shape[0]
    blobs = []
    for start in range(0, n0, chunk_elems):
        piece = data[start : start + chunk_elems]
        blobs.append(compressor.compress(piece))
    header = _CHUNK_MAGIC + struct.pack("<I", len(blobs))
    for b in blobs:
        header += struct.pack("<Q", len(b))
    return header + b"".join(blobs)


def chunked_decompress(compressor, blob: bytes) -> np.ndarray:
    """Invert :func:`chunked_compress` (concatenates along axis 0)."""
    if blob[:4] != _CHUNK_MAGIC:
        raise ValueError("not a chunked HPDR stream")
    (nchunks,) = struct.unpack_from("<I", blob, 4)
    off = 8
    sizes = []
    for _ in range(nchunks):
        (s,) = struct.unpack_from("<Q", blob, off)
        sizes.append(s)
        off += 8
    pieces = []
    for s in sizes:
        pieces.append(compressor.decompress(blob[off : off + s]))
        off += s
    return np.concatenate(pieces, axis=0)


def chunk_sizes_for(total_bytes: int, chunk_bytes: int) -> list[int]:
    """Split a byte volume into fixed-size chunks (last may be short)."""
    if total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    full, rem = divmod(total_bytes, chunk_bytes)
    sizes = [chunk_bytes] * full
    if rem:
        sizes.append(rem)
    return sizes
