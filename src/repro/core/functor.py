"""Functor protocol: how reduction kernels plug into the abstractions.

The paper's abstractions all take an *algorithm-defined function f*
(Fig. 3).  HPDR-Python expresses f as a functor object exposing a
batched NumPy apply so device adapters can choose their parallelization
strategy:

* :class:`LocalityFunctor` receives a batch of blocks
  ``(nblocks, *block_shape)`` — one group per block (GEM, Table I).
* :class:`IterativeFunctor` receives a batch of vectors
  ``(nvec, length)`` — B vectors per group (GEM).
* :class:`DomainFunctor` receives the whole domain (DEM) and may declare
  multiple stages separated by global synchronization.

Functors also carry lightweight cost metadata (bytes read/written per
element) so simulated adapters can derive task durations without
profiling.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Sequence

import numpy as np


class Functor(abc.ABC):
    """Base kernel interface.

    ``name`` labels simulator traces; ``bytes_per_element`` feeds the
    memory-bound cost model (reduction kernels are memory bound, per the
    paper's Section II-B).
    """

    #: trace label; subclasses usually override.
    name: str = "functor"
    #: average device-memory traffic per input element (read+write).
    bytes_per_element: float = 8.0
    #: True when :meth:`apply` may return a view over reused scratch
    #: (e.g. CMM-backed per-thread buffers): the result is only valid
    #: until the same thread's next ``apply``, so adapters that collect
    #: several results before combining them must copy each one first.
    reuses_output: bool = False

    def cost_bytes(self, n_elements: int) -> float:
        """Simulated memory traffic for ``n_elements`` inputs."""
        return self.bytes_per_element * n_elements


class LocalityFunctor(Functor):
    """Block-wise kernel for the Locality abstraction."""

    @abc.abstractmethod
    def apply(self, blocks: np.ndarray) -> np.ndarray:
        """Transform a batch of blocks ``(nblocks, *block_shape)``.

        Must return an array whose leading dimension is ``nblocks``.
        Implementations must be pure with respect to block order: block
        *i*'s output may depend only on block *i*'s input (including any
        halo the abstraction attached).
        """


class IterativeFunctor(Functor):
    """Per-vector sequential kernel for the Iterative abstraction.

    Each row of the batch is an independent 1-D problem processed
    sequentially along its length (e.g. the Thomas algorithm); different
    rows are independent and parallelize across groups.
    """

    @abc.abstractmethod
    def apply(self, vectors: np.ndarray) -> np.ndarray:
        """Transform a batch of vectors ``(nvec, length)`` → same shape."""


class DomainFunctor(Functor):
    """Whole-domain kernel for Map&Process / Global pipeline (DEM).

    Stages execute in order with a global synchronization between them;
    each stage receives the previous stage's output.
    """

    def stages(self) -> Sequence[Callable[[Any], Any]]:
        """Ordered stage callables; default is the single :meth:`apply`."""
        return (self.apply,)

    @abc.abstractmethod
    def apply(self, data: Any) -> Any:
        """Single-stage entry point."""


class FnLocality(LocalityFunctor):
    """Adapter turning a plain callable into a :class:`LocalityFunctor`."""

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], name: str = "fn",
                 bytes_per_element: float = 8.0) -> None:
        self._fn = fn
        self.name = name
        self.bytes_per_element = bytes_per_element

    def apply(self, blocks: np.ndarray) -> np.ndarray:
        return self._fn(blocks)


class FnIterative(IterativeFunctor):
    """Adapter turning a plain callable into an :class:`IterativeFunctor`."""

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], name: str = "fn",
                 bytes_per_element: float = 8.0) -> None:
        self._fn = fn
        self.name = name
        self.bytes_per_element = bytes_per_element

    def apply(self, vectors: np.ndarray) -> np.ndarray:
        return self._fn(vectors)


class FnDomain(DomainFunctor):
    """Adapter turning callables into a (possibly multi-stage) DEM functor."""

    def __init__(self, *fns: Callable[[Any], Any], name: str = "fn",
                 bytes_per_element: float = 8.0) -> None:
        if not fns:
            raise ValueError("FnDomain needs at least one stage callable")
        self._fns = fns
        self.name = name
        self.bytes_per_element = bytes_per_element

    def stages(self) -> Sequence[Callable[[Any], Any]]:
        return self._fns

    def apply(self, data: Any) -> Any:
        for fn in self._fns:
            data = fn(data)
        return data
