"""Context Memory Model (CMM) — paper Section III-B.

Reduction pipelines repeatedly invoked by an application (every write
iteration) would otherwise re-allocate their working buffers on every
call; on dense multi-GPU nodes those allocations serialize inside the
shared runtime and destroy scalability.  The CMM caches *reduction
contexts* in a hash map keyed by the data characteristics
(shape/dtype/config): all allocations associated with a context persist
across calls, so the steady state performs **zero** runtime memory
management.

Two layers are provided:

* :class:`ReductionContext` — a named bag of persistent NumPy buffers
  plus arbitrary cached objects (grid hierarchies, Huffman codebooks).
  Fixed-shape working sets use :meth:`ReductionContext.buffer`;
  data-dependent sizes (bitstreams, outlier lists) use
  :meth:`ReductionContext.scratch`, which keeps a geometrically grown
  capacity buffer so the steady state stops allocating even when sizes
  fluctuate slightly between calls.
* :class:`ContextCache` — the hash map with hit/miss statistics and an
  LRU eviction bound, plus optional hooks invoked on every real
  allocation/free so the simulator can charge runtime-lock time for
  misses only.  The cache also keeps byte-accurate running totals
  (``alloc_events``, ``alloc_bytes_total``, ``free_bytes_total``) used
  by the zero-alloc steady-state tests.

Eviction is *loud*: an evicted context is invalidated — its buffers are
poisoned (floats become NaN, integer bytes become ``0xA5``) and any
further :meth:`ReductionContext.buffer` / :meth:`~ReductionContext.scratch`
call raises :class:`UseAfterEvictError`.  Stale views held by a caller
across an eviction therefore read poison instead of silently aliasing
recycled memory (the pre-sanitizer behaviour left them reachable and
plausible-looking).  Reductions that must survive cache pressure pin
their context for the duration of the call (``get(key, pin=True)`` +
:meth:`ContextCache.release`); pinned contexts are skipped by the LRU
eviction scan.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np

from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import TRACER as _TRACER

#: Byte pattern written over evicted integer buffers.  0xA5 is the
#: classic heap-poison value: visually obvious in hex dumps and very
#: unlikely to decode into plausible keys/offsets.
POISON_BYTE = 0xA5


class UseAfterEvictError(RuntimeError):
    """A buffer/scratch/object request hit an evicted context.

    Sanitizer rule ``SAN-EVICT``: the caller held a
    :class:`ReductionContext` (or a view of its memory) across a cache
    eviction.  Re-fetch the context from the cache — and pin it
    (``cache.get(key, pin=True)``) if it must survive cache pressure
    for the duration of a call.
    """

    rule = "SAN-EVICT"

    def __init__(self, message: str) -> None:
        super().__init__(f"[{self.rule}] {message}")


def _poison(buf: np.ndarray) -> None:
    """Overwrite a buffer with an unmistakable poison pattern."""
    if np.issubdtype(buf.dtype, np.floating):
        buf.fill(np.nan)
    elif np.issubdtype(buf.dtype, np.complexfloating):
        buf.fill(complex(np.nan, np.nan))
    else:
        # Context buffers come from np.empty and are C-contiguous.
        buf.view(np.uint8).fill(POISON_BYTE)


class ReductionContext:
    """Persistent buffers and derived objects for one reduction setup."""

    def __init__(
        self,
        key: Hashable,
        on_alloc: Callable[[int], None] | None = None,
        on_free: Callable[[int], None] | None = None,
    ) -> None:
        self.key = key
        self._buffers: dict[str, np.ndarray] = {}
        self._objects: dict[str, Any] = {}
        self.alloc_count = 0
        self.alloc_bytes = 0
        #: per-buffer-name count of shape/dtype rebinds — a buffer that
        #: keeps reallocating under one name means the context key does
        #: not capture the data characteristics (sanitizer rule SAN-CTX).
        self.rebinds: dict[str, int] = {}
        self._evicted = False
        self._pins = 0
        self._on_alloc = on_alloc
        self._on_free = on_free
        # Functors executing on a thread-pool adapter may request
        # per-thread scratch concurrently; the map itself must stay
        # consistent (the returned arrays are the caller's to serialize).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _account(
        self,
        new_nbytes: int,
        freed_nbytes: int,
        per_call_hook: Callable[[int], None] | None = None,
    ) -> None:
        self.alloc_count += 1
        self.alloc_bytes += new_nbytes
        if freed_nbytes and self._on_free is not None:
            self._on_free(freed_nbytes)
        if self._on_alloc is not None:
            self._on_alloc(new_nbytes)
        if per_call_hook is not None:
            per_call_hook(new_nbytes)

    def buffer(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
        on_alloc: Callable[[int], None] | None = None,
    ) -> np.ndarray:
        """Return the named buffer, allocating it on first use.

        Subsequent calls with the same name return the same memory; a
        shape/dtype change (data characteristics changed under the same
        key) reallocates, which counts as a new allocation (and frees
        the old buffer for byte accounting).
        """
        dtype = np.dtype(dtype)
        with self._lock:
            self._check_live(f"buffer {name!r}")
            buf = self._buffers.get(name)
            if buf is not None and buf.shape == tuple(shape) and buf.dtype == dtype:
                return buf
            freed = buf.nbytes if buf is not None else 0
            if buf is not None:
                self.rebinds[name] = self.rebinds.get(name, 0) + 1
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
            self._account(buf.nbytes, freed, on_alloc)
            return buf

    def scratch(
        self,
        name: str,
        size: int,
        dtype: np.dtype | type = np.uint8,
    ) -> np.ndarray:
        """Return a 1-D view of ``size`` elements over persistent capacity.

        Unlike :meth:`buffer`, the underlying allocation only *grows*
        (geometrically, to the next power of two), so repeated calls
        with fluctuating data-dependent sizes stop allocating once the
        high-water mark is reached.  The returned view is uninitialized;
        callers must overwrite it fully.
        """
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        dtype = np.dtype(dtype)
        with self._lock:
            self._check_live(f"scratch {name!r}")
            buf = self._buffers.get(name)
            if buf is not None and buf.dtype == dtype and buf.size >= size:
                return buf[:size]
            capacity = 1 << max(0, int(size - 1).bit_length()) if size else 1
            freed = buf.nbytes if buf is not None else 0
            if buf is not None and buf.dtype != dtype:
                # Capacity growth is the designed steady-state ramp;
                # a dtype flip under the same name is a rebind.
                self.rebinds[name] = self.rebinds.get(name, 0) + 1
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buf
            self._account(buf.nbytes, freed)
            return buf[:size]

    def set_object(self, name: str, value: Any) -> Any:
        self._objects[name] = value
        return value

    def get_object(self, name: str, default: Any = None) -> Any:
        return self._objects.get(name, default)

    def object(self, name: str, builder: Callable[[], Any]) -> Any:
        """Return the cached object, building it on first use."""
        with self._lock:
            self._check_live(f"object {name!r}")
            if name not in self._objects:
                self._objects[name] = builder()
            return self._objects[name]

    # ------------------------------------------------------------------
    def _check_live(self, what: str) -> None:
        if self._evicted:
            raise UseAfterEvictError(
                f"context {self.key!r} was evicted; {what} is gone — "
                f"re-fetch the context from the cache (pin it with "
                f"get(key, pin=True) if it must survive cache pressure)"
            )

    @property
    def evicted(self) -> bool:
        return self._evicted

    @property
    def pinned(self) -> bool:
        return self._pins > 0

    def invalidate(self) -> None:
        """Poison every buffer and mark the context dead.

        Called by :class:`ContextCache` on eviction/:meth:`~ContextCache.clear`
        so stale caller-held views read NaN/``0xA5`` instead of silently
        aliasing memory the cache considers freed.  Idempotent.
        """
        with self._lock:
            if self._evicted:
                return
            self._evicted = True
            for buf in self._buffers.values():
                _poison(buf)
            self._buffers.clear()
            self._objects.clear()

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def __contains__(self, name: str) -> bool:
        return name in self._buffers or name in self._objects


class ContextCache:
    """Hash-map cache of :class:`ReductionContext` with LRU eviction.

    Parameters
    ----------
    capacity:
        Maximum number of live contexts; least-recently-used contexts
        are evicted beyond it (their device memory is "freed").
    on_alloc / on_free:
        Optional hooks called with a byte count whenever context memory
        is allocated/released — the simulator charges runtime-lock time
        here, so cache *hits* cost nothing, reproducing the CMM effect.
        ``on_alloc`` fires for every buffer/scratch allocation inside a
        cached context; ``on_free`` fires when a buffer is replaced,
        when a context is evicted, and on :meth:`clear`, so the byte
        totals balance exactly over a context's lifetime.

    :meth:`get` is thread-safe; per-thread reduction paths may share one
    cache.  Eviction *invalidates*: the victim's buffers are poisoned
    and later use raises :class:`UseAfterEvictError`, so stale views are
    caught loudly instead of reading recycled memory.  In-flight
    reductions protect themselves by pinning (``get(key, pin=True)`` /
    :meth:`release`): pinned contexts are never chosen as victims (the
    cache temporarily exceeds ``capacity`` if every context is pinned).
    """

    def __init__(
        self,
        capacity: int = 16,
        on_alloc: Callable[[int], None] | None = None,
        on_free: Callable[[int], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._map: OrderedDict[Hashable, ReductionContext] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.on_alloc = on_alloc
        self.on_free = on_free
        self.alloc_events = 0
        self.alloc_bytes_total = 0
        self.free_bytes_total = 0
        self._lock = threading.RLock()

    # -- hook plumbing ---------------------------------------------------
    def _context_alloc(self, nbytes: int) -> None:
        self.alloc_events += 1
        self.alloc_bytes_total += nbytes
        if self.on_alloc is not None:
            self.on_alloc(nbytes)
        if _TRACER.enabled:
            _METRICS.counter(
                "hpdr_cmm_alloc_bytes_total", "bytes allocated through contexts"
            ).inc(nbytes)

    def _context_free(self, nbytes: int) -> None:
        self.free_bytes_total += nbytes
        if self.on_free is not None:
            self.on_free(nbytes)
        if _TRACER.enabled:
            _METRICS.counter(
                "hpdr_cmm_free_bytes_total", "context bytes released"
            ).inc(nbytes)

    def _observe_pinned(self) -> None:
        """Refresh the bytes-pinned gauge (tracing-enabled runs only).

        Called with ``self._lock`` held wherever a pin count changes;
        the gauge aggregates across every live cache in the process.
        """
        pinned = sum(c.nbytes for c in self._map.values() if c.pinned)
        _METRICS.gauge(
            "hpdr_cmm_bytes_pinned", "bytes held by pinned contexts"
        ).set(pinned, cache=hex(id(self)))

    def get(self, key: Hashable, pin: bool = False) -> ReductionContext:
        """Return the context for ``key``, creating it on a miss.

        ``pin=True`` additionally increments the context's pin count so
        LRU eviction skips it until a matching :meth:`release`; callers
        that hold a context (or views of its buffers) across operations
        that may touch the cache — nested codecs, parallel segments —
        pin for the duration and release in a ``finally``.
        """
        with self._lock:
            ctx = self._map.get(key)
            found = ctx is not None
            if ctx is None:
                self.misses += 1
                ctx = ReductionContext(
                    key, on_alloc=self._context_alloc, on_free=self._context_free
                )
                self._map[key] = ctx
                # Shield the newcomer during the eviction scan — it must
                # never become its own victim (e.g. when every older
                # context is pinned by in-flight work).
                ctx._pins += 1
                self._evict_over_capacity()
                if not pin:
                    ctx._pins -= 1
            else:
                self.hits += 1
                self._map.move_to_end(key)
                if pin:
                    ctx._pins += 1
            if _TRACER.enabled:
                _METRICS.counter(
                    "hpdr_cmm_lookups_total", "context cache lookups"
                ).inc(outcome="hit" if found else "miss")
                self._observe_pinned()
            return ctx

    def release(self, ctx: ReductionContext) -> None:
        """Drop one pin taken by ``get(key, pin=True)``."""
        with self._lock:
            if ctx._pins > 0:
                ctx._pins -= 1
            self._evict_over_capacity()
            if _TRACER.enabled:
                self._observe_pinned()

    def _evict_over_capacity(self) -> None:
        while len(self._map) > self.capacity:
            victim_key = next(
                (k for k, c in self._map.items() if not c.pinned), None
            )
            if victim_key is None:
                # Every context is pinned by in-flight work; run over
                # capacity until a release frees a victim.
                return
            evicted = self._map.pop(victim_key)
            self.evictions += 1
            if _TRACER.enabled:
                _METRICS.counter(
                    "hpdr_cmm_evictions_total", "contexts evicted (LRU)"
                ).inc()
            self._context_free(evicted.nbytes)
            evicted.invalidate()

    def buffer_hook(self) -> Callable[[int], None] | None:
        return self.on_alloc

    def contexts(self) -> list[ReductionContext]:
        """Live (non-evicted) contexts, LRU-first."""
        with self._lock:
            return list(self._map.values())

    def clear(self) -> None:
        with self._lock:
            for ctx in self._map.values():
                self._context_free(ctx.nbytes)
                ctx.invalidate()
            self._map.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def live_bytes(self) -> int:
        """Bytes currently held by live (non-evicted) contexts."""
        with self._lock:
            return sum(ctx.nbytes for ctx in self._map.values())

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._map
