"""Context Memory Model (CMM) — paper Section III-B.

Reduction pipelines repeatedly invoked by an application (every write
iteration) would otherwise re-allocate their working buffers on every
call; on dense multi-GPU nodes those allocations serialize inside the
shared runtime and destroy scalability.  The CMM caches *reduction
contexts* in a hash map keyed by the data characteristics
(shape/dtype/config): all allocations associated with a context persist
across calls, so the steady state performs **zero** runtime memory
management.

Two layers are provided:

* :class:`ReductionContext` — a named bag of persistent NumPy buffers
  plus arbitrary cached objects (grid hierarchies, Huffman codebooks).
* :class:`ContextCache` — the hash map with hit/miss statistics and an
  LRU eviction bound, plus an optional hook invoked on every real
  allocation so the simulator can charge runtime-lock time for misses
  only.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np


class ReductionContext:
    """Persistent buffers and derived objects for one reduction setup."""

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self._buffers: dict[str, np.ndarray] = {}
        self._objects: dict[str, Any] = {}
        self.alloc_count = 0
        self.alloc_bytes = 0

    def buffer(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
        on_alloc: Callable[[int], None] | None = None,
    ) -> np.ndarray:
        """Return the named buffer, allocating it on first use.

        Subsequent calls with the same name return the same memory; a
        shape/dtype change (data characteristics changed under the same
        key) reallocates, which counts as a new allocation.
        """
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is not None and buf.shape == tuple(shape) and buf.dtype == dtype:
            return buf
        buf = np.empty(shape, dtype=dtype)
        self._buffers[name] = buf
        self.alloc_count += 1
        self.alloc_bytes += buf.nbytes
        if on_alloc is not None:
            on_alloc(buf.nbytes)
        return buf

    def set_object(self, name: str, value: Any) -> Any:
        self._objects[name] = value
        return value

    def get_object(self, name: str, default: Any = None) -> Any:
        return self._objects.get(name, default)

    def object(self, name: str, builder: Callable[[], Any]) -> Any:
        """Return the cached object, building it on first use."""
        if name not in self._objects:
            self._objects[name] = builder()
        return self._objects[name]

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def __contains__(self, name: str) -> bool:
        return name in self._buffers or name in self._objects


class ContextCache:
    """Hash-map cache of :class:`ReductionContext` with LRU eviction.

    Parameters
    ----------
    capacity:
        Maximum number of live contexts; least-recently-used contexts
        are evicted beyond it (their device memory is "freed").
    on_alloc / on_free:
        Optional hooks called with a byte count whenever a context is
        created/evicted — the simulator charges runtime-lock time here,
        so cache *hits* cost nothing, reproducing the CMM effect.
    """

    def __init__(
        self,
        capacity: int = 16,
        on_alloc: Callable[[int], None] | None = None,
        on_free: Callable[[int], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._map: OrderedDict[Hashable, ReductionContext] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.on_alloc = on_alloc
        self.on_free = on_free

    def get(self, key: Hashable) -> ReductionContext:
        """Return the context for ``key``, creating it on a miss."""
        ctx = self._map.get(key)
        if ctx is not None:
            self.hits += 1
            self._map.move_to_end(key)
            return ctx
        self.misses += 1
        ctx = ReductionContext(key)
        self._map[key] = ctx
        while len(self._map) > self.capacity:
            _, evicted = self._map.popitem(last=False)
            self.evictions += 1
            if self.on_free is not None:
                self.on_free(evicted.nbytes)
        return ctx

    def buffer_hook(self) -> Callable[[int], None] | None:
        return self.on_alloc

    def clear(self) -> None:
        if self.on_free is not None:
            for ctx in self._map.values():
                self.on_free(ctx.nbytes)
        self._map.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._map
