"""Progressive data refactoring on the MGARD hierarchy.

The paper's introduction motivates *data refactoring* [23-25]: write the
data once as a multilevel byte hierarchy, then retrieve only the prefix
needed for the accuracy a reader requires.  The multilevel decomposition
already orders information coarse-to-fine, so refactoring falls out of
the MGARD-X machinery:

* :meth:`MGARDRefactor.refactor` decomposes the data and stores each
  level as an independent Huffman-encoded substream (coarsest first),
  with per-level error contributions recorded in the header;
* :meth:`MGARDRefactor.retrieve` reconstructs from any prefix of the
  substreams — fewer levels → coarser field, fewer bytes touched;
* :meth:`MGARDRefactor.bytes_for` maps an error target onto the prefix
  length, the incremental-retrieval query of [23].
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.context import ContextCache
from repro.compressors.huffman import HuffmanX
from repro.compressors.mgard.decompose import decompose, level_factors, recompose
from repro.compressors.mgard.hierarchy import Hierarchy
from repro.compressors.mgard.quantize import from_symbols, to_symbols

_MAGIC = b"MGRF"
_VERSION = 1


class RefactoredData:
    """A refactored field: ordered substreams + retrieval metadata.

    ``substreams[0]`` is the coarsest approximation; ``substreams[k]``
    adds detail level ``total_levels - k`` (coarse→fine).  The error
    estimate of a prefix is the sum of the *remaining* levels'
    contributions.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        dtype: np.dtype,
        bins: np.ndarray,
        substreams: list[bytes],
        level_errors: np.ndarray,
        outliers: list[np.ndarray],
    ) -> None:
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.bins = bins
        self.substreams = substreams
        self.level_errors = level_errors
        self.outliers = outliers

    @property
    def num_levels(self) -> int:
        return len(self.substreams)

    def prefix_bytes(self, k: int) -> int:
        """Bytes touched when retrieving the first ``k`` substreams."""
        return sum(len(s) for s in self.substreams[:k])

    @property
    def total_bytes(self) -> int:
        return self.prefix_bytes(self.num_levels)

    def error_estimate(self, k: int) -> float:
        """Upper estimate of max error when the finest levels beyond
        prefix ``k`` are dropped."""
        return float(np.sum(self.level_errors[k:]))

    # -- serialization ---------------------------------------------------
    def tobytes(self) -> bytes:
        dts = self.dtype.str.encode("ascii")
        parts = [
            _MAGIC,
            struct.pack("<BBBB", _VERSION, len(dts), len(self.shape),
                        self.num_levels),
            dts,
            struct.pack(f"<{len(self.shape)}q", *self.shape),
            self.bins.astype(np.float64).tobytes(),
            self.level_errors.astype(np.float64).tobytes(),
        ]
        for sub, out in zip(self.substreams, self.outliers):
            parts.append(struct.pack("<QQ", len(sub), out.size))
            parts.append(sub)
            parts.append(out.astype(np.int64).tobytes())
        return b"".join(parts)

    @classmethod
    def frombytes(cls, blob: bytes) -> "RefactoredData":
        if blob[:4] != _MAGIC:
            raise ValueError("not an MGARD refactored stream (bad magic)")
        version, dts_len, ndim, nlevels = struct.unpack_from("<BBBB", blob, 4)
        if version != _VERSION:
            raise ValueError(f"unsupported refactor version {version}")
        off = 8
        dtype = np.dtype(bytes(blob[off : off + dts_len]).decode("ascii"))
        off += dts_len
        shape = struct.unpack_from(f"<{ndim}q", blob, off)
        off += 8 * ndim
        bins = np.frombuffer(blob, np.float64, count=nlevels, offset=off).copy()
        off += 8 * nlevels
        errors = np.frombuffer(blob, np.float64, count=nlevels, offset=off).copy()
        off += 8 * nlevels
        subs, outs = [], []
        for _ in range(nlevels):
            slen, olen = struct.unpack_from("<QQ", blob, off)
            off += 16
            subs.append(blob[off : off + slen])
            off += slen
            outs.append(np.frombuffer(blob, np.int64, count=olen, offset=off).copy())
            off += 8 * olen
        return cls(tuple(shape), dtype, bins, subs, errors, outs)


class MGARDRefactor:
    """Refactor/retrieve driver over the MGARD hierarchy.

    Parameters
    ----------
    precision:
        Relative quantization precision of the *full* representation
        (the error floor when every level is retrieved).
    """

    def __init__(
        self,
        precision: float = 1e-6,
        adapter=None,
        dict_size: int = 4096,
        context_cache: ContextCache | None = None,
    ) -> None:
        if precision <= 0:
            raise ValueError(f"precision must be positive, got {precision}")
        self.precision = float(precision)
        self.adapter = adapter
        self.dict_size = dict_size
        self.cache = context_cache if context_cache is not None else ContextCache()

    def _context(self, shape, dtype):
        key = ("mgard-refactor", tuple(shape), np.dtype(dtype).str, self.precision)
        ctx = self.cache.get(key)
        hierarchy = ctx.object("hierarchy", lambda: Hierarchy(tuple(shape)))
        factors = ctx.object(
            "factors",
            lambda: [level_factors(hierarchy, l) for l in range(hierarchy.total_levels)],
        )
        return hierarchy, factors

    # ------------------------------------------------------------------
    def refactor(self, data: np.ndarray) -> RefactoredData:
        data = np.ascontiguousarray(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"refactor supports float32/float64, got {data.dtype}")
        hierarchy, factors = self._context(data.shape, data.dtype)
        coeffs, coarsest = decompose(
            data, hierarchy, adapter=self.adapter, factors_per_level=factors
        )

        value_range = float(np.ptp(data)) or 1.0
        bin_size = self.precision * value_range

        # Substreams, coarse-first: coarsest grid, then levels L-1 … 0.
        groups = [coarsest.reshape(-1)] + coeffs[::-1]
        huff = HuffmanX(adapter=self.adapter)
        substreams, outliers, errors, bins = [], [], [], []
        for gi, group in enumerate(groups):
            b = bin_size
            q = np.round(group / b).astype(np.int64)
            syms, outs = to_symbols(q, self.dict_size)
            substreams.append(huff.compress_keys(syms, self.dict_size))
            outliers.append(outs)
            bins.append(b)
            # Contribution of *losing* this group entirely: its max
            # coefficient magnitude (lerp-propagated, amplification ≤ ~1
            # per level — measured precisely by the retrieval tests).
            errors.append(float(np.abs(group).max()) if group.size else 0.0)
        return RefactoredData(
            data.shape, data.dtype, np.array(bins), substreams,
            np.array(errors), outliers,
        )

    # ------------------------------------------------------------------
    def retrieve(
        self,
        refactored: RefactoredData,
        num_levels: int | None = None,
    ) -> np.ndarray:
        """Reconstruct from the first ``num_levels`` substreams
        (default: all)."""
        k = refactored.num_levels if num_levels is None else int(num_levels)
        if not 1 <= k <= refactored.num_levels:
            raise ValueError(
                f"num_levels must be in [1, {refactored.num_levels}], got {k}"
            )
        hierarchy, factors = self._context(refactored.shape, refactored.dtype)
        huff = HuffmanX(adapter=self.adapter)

        groups = []
        for gi in range(refactored.num_levels):
            if gi < k:
                syms = huff.decompress_keys(refactored.substreams[gi])
                q = from_symbols(syms, refactored.outliers[gi])
                groups.append(q.astype(np.float64) * refactored.bins[gi])
            else:
                groups.append(None)

        coarsest_shape = hierarchy.shape_at(hierarchy.total_levels)
        coarsest = groups[0].reshape(coarsest_shape)
        coeffs: list[np.ndarray] = []
        # groups[1] is level L-1 … groups[L] is level 0.
        for level in range(hierarchy.total_levels - 1, -1, -1):
            gi = hierarchy.total_levels - level
            n = hierarchy.num_coefficients(level)
            if groups[gi] is None:
                coeffs.insert(0, np.zeros(n))
            else:
                coeffs.insert(0, groups[gi])
        out = recompose(
            coeffs, coarsest, hierarchy, adapter=self.adapter,
            factors_per_level=factors,
        )
        return out.astype(refactored.dtype)

    def bytes_for(self, refactored: RefactoredData, error_target: float) -> tuple[int, int]:
        """Smallest prefix (levels, bytes) whose estimated error meets
        ``error_target``."""
        if error_target <= 0:
            raise ValueError("error_target must be positive")
        for k in range(1, refactored.num_levels + 1):
            if refactored.error_estimate(k) <= error_target:
                return k, refactored.prefix_bytes(k)
        return refactored.num_levels, refactored.total_bytes
