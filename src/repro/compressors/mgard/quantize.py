"""Per-level linear quantization (Algorithm 1, line 14).

Each decomposition level's coefficients — plus the coarsest
approximation, treated as one more group — get their own quantization
bin, sized so the per-group reconstruction errors compose into the
user's bound:

    δ_l = 2 · eb / (κ · (L + 1))

``κ`` absorbs the multilevel error amplification of recomposition
(interpolation and correction propagate per-level errors with a bounded
factor); the default is conservative and the compressor can verify and
tighten bins when asked.

Quantized integers map to Huffman symbols by zigzag with an escape
symbol (0): values outside the dictionary are emitted verbatim in an
outlier side channel, so the bound holds for arbitrarily wild data.

The per-level dispatch runs under the Map&Process abstraction, matching
the paper's mapping of quantization onto DEM.
"""

from __future__ import annotations

import numpy as np

from repro.core.abstractions import map_and_process

#: Default multilevel error-amplification allowance.  The per-group
#: budget eb/(L+1) already covers additive accumulation across levels;
#: empirical worst-case amplification over random/smooth inputs stays
#: below 0.6 at κ=1 (see tests/compressors/test_mgard_bounds.py), so
#: κ=1 keeps a ~2× safety margin without sacrificing ratio.
DEFAULT_KAPPA = 1.0


def level_bins(
    error_bound: float,
    num_groups: int,
    kappa: float = DEFAULT_KAPPA,
    s: float = 0.0,
) -> np.ndarray:
    """Bin size per group for an absolute error bound.

    ``s`` is MGARD's smoothness parameter: it redistributes the error
    budget across levels with weights ``2^(-s·g)`` (group 0 = finest
    coefficients, the last group = coarsest approximation).  ``s > 0``
    allows larger errors on fine-scale detail while keeping coarse
    scales — and with them smooth quantities of interest — accurate;
    ``s = 0`` is the uniform L∞-style split.  The total budget
    ``Σ ε_g = eb/κ`` is preserved for every ``s``, so the overall bound
    argument is unchanged.
    """
    if error_bound <= 0:
        raise ValueError(f"error_bound must be positive, got {error_bound}")
    if num_groups < 1:
        raise ValueError("need at least one group")
    g = np.arange(num_groups, dtype=np.float64)
    weights = np.exp2(-s * g)
    eps = (error_bound / kappa) * weights / weights.sum()
    return 2.0 * eps


def quantize_levels(
    groups: list[np.ndarray],
    bins: np.ndarray,
    adapter=None,
) -> list[np.ndarray]:
    """Quantize each coefficient group with its own bin (Map&Process)."""
    if len(groups) != bins.size:
        raise ValueError(f"{len(groups)} groups but {bins.size} bins")

    def _q(group: np.ndarray, i: int) -> np.ndarray:
        return np.round(group / bins[i]).astype(np.int64)

    return map_and_process(groups, lambda g: list(g), _q, adapter=adapter)


def dequantize_levels(
    qgroups: list[np.ndarray],
    bins: np.ndarray,
    adapter=None,
) -> list[np.ndarray]:
    """Invert :func:`quantize_levels` (to bin centers)."""
    if len(qgroups) != bins.size:
        raise ValueError(f"{len(qgroups)} groups but {bins.size} bins")

    def _dq(group: np.ndarray, i: int) -> np.ndarray:
        return group.astype(np.float64) * bins[i]

    return map_and_process(qgroups, lambda g: list(g), _dq, adapter=adapter)


# ----------------------------------------------------------------------
# Zigzag symbol mapping with escape/outlier channel
# ----------------------------------------------------------------------
def to_symbols(q: np.ndarray, dict_size: int) -> tuple[np.ndarray, np.ndarray]:
    """Map signed quantization codes to Huffman symbols.

    Symbol 0 is the escape marker; zigzag values ``z < dict_size - 1``
    map to ``z + 1``.  Returns ``(symbols, outliers)`` where outliers
    are the escaped raw codes in stream order.
    """
    if dict_size < 2:
        raise ValueError(f"dict_size must be >= 2, got {dict_size}")
    q = q.astype(np.int64)
    z = (q << 1) ^ (q >> 63)  # zigzag: 0,-1,1,-2,2… → 0,1,2,3,4…
    fits = z < dict_size - 1
    symbols = np.where(fits, z + 1, 0)
    outliers = q[~fits]
    return symbols, outliers


def from_symbols(symbols: np.ndarray, outliers: np.ndarray) -> np.ndarray:
    """Invert :func:`to_symbols`."""
    symbols = symbols.astype(np.int64)
    escaped = symbols == 0
    n_escaped = int(escaped.sum())
    if n_escaped != outliers.size:
        raise ValueError(
            f"{n_escaped} escape markers but {outliers.size} outliers"
        )
    z = symbols - 1
    q = (z >> 1) ^ -(z & 1)  # zigzag inverse
    if n_escaped:
        q[escaped] = outliers
    return q
