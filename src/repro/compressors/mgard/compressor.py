"""MGARD-X compressor: ties decomposition, quantization and Huffman
together behind the HPDR public API (Algorithm 1 end-to-end).

Hierarchies and tridiagonal factorizations are cached through the
Context Memory Model so repeated compressions of the same shape/dtype
perform no reconstruction work — the optimization behind the paper's
multi-GPU scalability results.
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from repro.core.config import Config, ErrorMode
from repro.core.context import ContextCache
from repro.compressors.huffman import HuffmanX
from repro.compressors.mgard.decompose import (
    decompose,
    decompose_batched,
    level_factors,
    recompose,
    recompose_batched,
)
from repro.compressors.mgard.hierarchy import Hierarchy
from repro.compressors.mgard.quantize import (
    DEFAULT_KAPPA,
    dequantize_levels,
    from_symbols,
    level_bins,
    quantize_levels,
    to_symbols,
)
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import NULL_SPAN, Span, TRACER as _TRACER
from repro.util import stream_errors

_MAGIC = b"MGRX"
_VERSION = 1


def _span(name: str, **args):
    """MGARD stage span (shared NULL_SPAN when tracing is off)."""
    if not _TRACER.enabled:
        return NULL_SPAN
    return Span(_TRACER, name, "mgard", args)


class MGARDX:
    """HPDR multilevel error-bounded lossy compressor.

    Parameters
    ----------
    config:
        Error bound / mode / lossless settings.  ``config.error_bound``
        with ``ErrorMode.REL`` matches the paper's "relative error
        bound" convention (relative to the data's value range).
    adapter:
        Device adapter shared by all stages.
    dict_size:
        Huffman dictionary size for quantized coefficients.
    kappa:
        Multilevel error-amplification allowance (see quantize.py).
    verify:
        When True, compression round-trip-checks the bound and tightens
        bins (up to 3 halvings) if the conservative estimate ever falls
        short — turning the statistical guarantee into a hard one.
    """

    def __init__(
        self,
        config: Config | None = None,
        adapter=None,
        context_cache: ContextCache | None = None,
        dict_size: int = 4096,
        kappa: float = DEFAULT_KAPPA,
        verify: bool = False,
        s: float = 0.0,
    ) -> None:
        self.config = config if config is not None else Config()
        self.adapter = adapter
        self.cache = context_cache if context_cache is not None else ContextCache()
        if dict_size < 2 or dict_size > 1 << 16:
            raise ValueError(f"dict_size must be in [2, 65536], got {dict_size}")
        self.dict_size = dict_size
        self.kappa = float(kappa)
        self.verify = verify
        # MGARD smoothness parameter: redistributes the error budget
        # across levels (see quantize.level_bins).  The total budget is
        # invariant, so the error bound holds for every s.
        self.s = float(s)
        # One lossless coder for the instance's lifetime, sharing the
        # CMM cache: its working buffers persist across calls too.
        self._huffman = HuffmanX(adapter=adapter, context_cache=self.cache)

    @classmethod
    def tunable_knobs(cls) -> tuple:
        """Tunable-knob declarations (see ``codec_knob_declarations``).

        ``dict_size`` shapes the embedded Huffman dictionary and is
        serialized into the stream — ``stream_affecting``, so the
        byte-identity guard pins it to the default.
        """
        return (
            {"name": "dict_size", "values": (1024, 4096, 16384),
             "default": 4096, "stream_affecting": True},
        )

    # ------------------------------------------------------------------
    def _context(
        self,
        shape: tuple[int, ...],
        dtype: np.dtype,
        coords: tuple[np.ndarray, ...] | None = None,
        pin: bool = False,
        tag: str = "mgard",
    ):
        coords_key = (
            None
            if coords is None
            else tuple(hash(c.tobytes()) for c in coords)
        )
        key = (tag, coords_key) + self.config.cache_key(shape, dtype)
        # ``pin`` protects the context while the nested Huffman coder
        # opens its own contexts in the shared cache (a tight-capacity
        # cache would otherwise evict — and poison — ours mid-call).
        ctx = self.cache.get(key, pin=pin)
        hierarchy = ctx.object("hierarchy", lambda: Hierarchy(shape, coords))
        factors = ctx.object(
            "factors",
            lambda: [
                level_factors(hierarchy, l) for l in range(hierarchy.total_levels)
            ],
        )
        return ctx, hierarchy, factors

    @staticmethod
    def _check_coords(
        coords, shape: tuple[int, ...]
    ) -> tuple[np.ndarray, ...] | None:
        """Validate per-dimension node coordinates (non-uniform grids).

        MGARD compresses non-uniform tensor grids; the same coordinates
        must be supplied on decompression (grids are application
        metadata, not embedded in the stream — matching MGARD's API).
        """
        if coords is None:
            return None
        if len(coords) != len(shape):
            raise ValueError(
                f"need {len(shape)} coordinate arrays, got {len(coords)}"
            )
        out = []
        for d, (c, n) in enumerate(zip(coords, shape)):
            c = np.asarray(c, dtype=np.float64)
            if c.shape != (n,):
                raise ValueError(
                    f"coords[{d}] has length {c.size}, expected {n}"
                )
            out.append(c)
        return tuple(out)

    # ------------------------------------------------------------------
    def compress(self, data: np.ndarray, coords=None) -> bytes:
        data = np.ascontiguousarray(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"MGARD-X supports float32/float64, got {data.dtype}")
        if data.ndim < 1 or data.ndim > 4:
            raise ValueError(f"MGARD-X supports 1-4 dims, got {data.ndim}")
        abs_eb = self.config.absolute_bound(data)
        coords = self._check_coords(coords, data.shape)

        ctx, hierarchy, factors = self._context(
            data.shape, data.dtype, coords, pin=True
        )
        try:
            with _span("mgard.decompose", nbytes=int(data.nbytes),
                       levels=hierarchy.total_levels):
                coeffs, coarsest = decompose(
                    data, hierarchy, adapter=self.adapter,
                    factors_per_level=factors, ctx=ctx,
                )
            groups = coeffs + [coarsest.reshape(-1)]

            kappa = self.kappa
            for attempt in range(6):
                bins = level_bins(abs_eb, len(groups), kappa, s=self.s)
                blob = self._encode(data, abs_eb, kappa, hierarchy, groups, bins)
                if not self.verify:
                    self._count_bytes(data.nbytes, len(blob))
                    return blob
                back = self.decompress(blob)
                err = float(np.max(np.abs(back.astype(np.float64) - data.astype(np.float64)))) if data.size else 0.0
                if err <= abs_eb:
                    self._count_bytes(data.nbytes, len(blob))
                    return blob
                # Scale κ by the measured overshoot (with margin): the error
                # is linear in the bin sizes, so this converges in one or
                # two rounds even from a wildly loose starting κ.
                kappa *= 2.0 * err / abs_eb
            raise RuntimeError(
                f"could not satisfy error bound {abs_eb} after tightening"
            )
        finally:
            self.cache.release(ctx)

    @staticmethod
    def _count_bytes(nbytes_in: int, nbytes_out: int) -> None:
        if not _TRACER.enabled:
            return
        _METRICS.counter("hpdr_bytes_in_total", "bytes fed to compress()").inc(
            int(nbytes_in), codec="mgard"
        )
        _METRICS.counter(
            "hpdr_bytes_out_total", "compressed bytes produced"
        ).inc(int(nbytes_out), codec="mgard")

    def _encode(self, data, abs_eb, kappa, hierarchy, groups, bins) -> bytes:
        with _span("mgard.quantize", levels=len(groups)):
            qgroups = quantize_levels(groups, bins, adapter=self.adapter)
            qflat = (
                np.concatenate([q.reshape(-1) for q in qgroups])
                if qgroups
                else np.zeros(0, dtype=np.int64)
            )
            symbols, outliers = to_symbols(qflat, self.dict_size)

        with _span("mgard.encode", symbols=int(symbols.size)):
            if self.config.lossless == "huffman":
                payload = self._huffman.compress_keys(
                    symbols.astype(np.int64), self.dict_size
                )
            else:
                payload = symbols.astype(np.int32).tobytes()

        with _span("mgard.serialize", payload=len(payload)):
            return self._serialize_stream(
                data.dtype, data.shape, abs_eb, kappa, bins, outliers, payload
            )

    def _serialize_stream(
        self, dtype, shape, abs_eb, kappa, bins, outliers, payload: bytes
    ) -> bytes:
        """Assemble one ``MGRX`` stream (shared by both encode paths)."""
        dts = np.dtype(dtype).str.encode("ascii")
        header = (
            _MAGIC
            + struct.pack(
                "<BBBB",
                _VERSION,
                1 if self.config.lossless == "huffman" else 0,
                len(dts),
                len(shape),
            )
            + dts
            + struct.pack(f"<{len(shape)}q", *shape)
            + struct.pack("<ddIIQQ", abs_eb, kappa, self.dict_size,
                          bins.size, outliers.size, len(payload))
            + bins.astype(np.float64).tobytes()
            + outliers.astype(np.int64).tobytes()
        )
        return header + payload

    # ------------------------------------------------------------------
    @staticmethod
    def _parse_stream(blob: bytes):
        """Parse one ``MGRX`` stream into
        ``(lossless, dtype, shape, bins, outliers, payload)``."""
        if blob[:4] != _MAGIC:
            raise ValueError("not an MGARD-X stream (bad magic)")
        off = 4
        version, lossless, dts_len, ndim = struct.unpack_from("<BBBB", blob, off)
        if version != _VERSION:
            raise ValueError(f"unsupported MGARD-X version {version}")
        off += 4
        dtype = np.dtype(bytes(blob[off : off + dts_len]).decode("ascii"))
        off += dts_len
        shape = struct.unpack_from(f"<{ndim}q", blob, off)
        off += 8 * ndim
        abs_eb, kappa, dict_size, nbins, noutliers, payload_len = struct.unpack_from(
            "<ddIIQQ", blob, off
        )
        off += struct.calcsize("<ddIIQQ")
        bins = np.frombuffer(blob, dtype=np.float64, count=nbins, offset=off).copy()
        off += 8 * nbins
        outliers = np.frombuffer(blob, dtype=np.int64, count=noutliers, offset=off).copy()
        off += 8 * noutliers
        payload = blob[off : off + payload_len]
        return lossless, dtype, tuple(shape), bins, outliers, payload

    @stream_errors
    def decompress(self, blob: bytes, coords=None) -> np.ndarray:
        lossless, dtype, shape, bins, outliers, payload = self._parse_stream(blob)

        coords = self._check_coords(coords, tuple(shape))
        ctx, hierarchy, factors = self._context(
            tuple(shape), dtype, coords, pin=True
        )
        try:
            with _span("mgard.decode", payload=len(payload)):
                if lossless:
                    symbols = self._huffman.decompress_keys(payload)
                else:
                    symbols = np.frombuffer(payload, dtype=np.int32).astype(np.int64)
                qflat = from_symbols(symbols, outliers)

            with _span("mgard.dequantize", symbols=int(qflat.size)):
                # Split the flat stream back into per-level groups.
                sizes = [hierarchy.num_coefficients(l) for l in range(hierarchy.total_levels)]
                sizes.append(int(np.prod(hierarchy.shape_at(hierarchy.total_levels))))
                bounds = np.cumsum([0] + sizes)
                if bounds[-1] != qflat.size:
                    raise ValueError(
                        f"stream length {qflat.size} != expected {bounds[-1]}"
                    )
                qgroups = [qflat[bounds[i] : bounds[i + 1]] for i in range(len(sizes))]
                groups = dequantize_levels(qgroups, bins, adapter=self.adapter)

            with _span("mgard.recompose", levels=hierarchy.total_levels):
                coeffs = groups[:-1]
                coarsest = groups[-1].reshape(hierarchy.shape_at(hierarchy.total_levels))
                out = recompose(
                    coeffs, coarsest, hierarchy, adapter=self.adapter,
                    factors_per_level=factors, ctx=ctx,
                )
                # recompose's result aliases context memory;
                # astype(copy=True) hands the caller an independent array.
                return out.astype(dtype, copy=True)
        finally:
            self.cache.release(ctx)

    # ------------------------------------------------------------------
    # Batched API (serve fast path): one launch per pipeline stage
    # ------------------------------------------------------------------
    def compress_batch(self, arrays: Sequence[np.ndarray], coords=None) -> list[bytes]:
        """Compress N uniform-(shape, dtype) arrays, one launch per stage.

        Byte-identical to per-item :meth:`compress`: the error bounds,
        quantization bins and codebooks stay per-item (they are
        data-dependent), while decomposition, quantization and the
        nested Huffman stages run once over a leading batch axis (see
        :func:`~repro.compressors.mgard.decompose.decompose_batched` for
        the lane-identity argument).  Raises ``ValueError`` for
        non-uniform batches so callers can fall back per item.
        """
        datas = [np.ascontiguousarray(a) for a in arrays]
        if not datas:
            return []
        if len(datas) == 1:
            return [self.compress(datas[0], coords=coords)]
        first = datas[0]
        if first.dtype not in (np.float32, np.float64):
            raise TypeError(
                f"MGARD-X supports float32/float64, got {first.dtype}"
            )
        if first.ndim < 1 or first.ndim > 4:
            raise ValueError(f"MGARD-X supports 1-4 dims, got {first.ndim}")
        for d in datas[1:]:
            if d.shape != first.shape or d.dtype != first.dtype:
                raise ValueError(
                    "compress_batch requires uniform shape/dtype, got "
                    f"{d.shape}/{d.dtype} vs {first.shape}/{first.dtype}"
                )
        if self.verify:
            # The verify loop re-derives κ per item from round-trip
            # error measurements — inherently per-item control flow.
            return [self.compress(d, coords=coords) for d in datas]
        nbatch = len(datas)
        ebs = [self.config.absolute_bound(d) for d in datas]
        coords = self._check_coords(coords, first.shape)
        ctx, hierarchy, factors = self._context(
            first.shape, first.dtype, coords, pin=True, tag="mgard.batch"
        )
        try:
            stack = np.empty((nbatch,) + first.shape, dtype=np.float64)
            for i, d in enumerate(datas):
                stack[i] = d
            with _span("mgard.decompose", nbytes=int(first.nbytes) * nbatch,
                       levels=hierarchy.total_levels, batch=nbatch):
                coeffs, coarsest = decompose_batched(
                    stack, hierarchy, adapter=self.adapter,
                    factors_per_level=factors, ctx=ctx,
                )
            groups = coeffs + [coarsest.reshape(nbatch, -1)]

            with _span("mgard.quantize", levels=len(groups), batch=nbatch):
                bins2d = np.stack([
                    level_bins(eb, len(groups), self.kappa, s=self.s)
                    for eb in ebs
                ])
                qflat = (
                    np.concatenate(
                        [
                            np.round(g / bins2d[:, l][:, None]).astype(np.int64)
                            for l, g in enumerate(groups)
                        ],
                        axis=1,
                    )
                    if groups
                    else np.zeros((nbatch, 0), dtype=np.int64)
                )
                z = (qflat << 1) ^ (qflat >> 63)  # zigzag, per lane
                fits = z < self.dict_size - 1
                symbols = np.where(fits, z + 1, 0)
                outliers = [qflat[i][~fits[i]] for i in range(nbatch)]

            with _span("mgard.encode", symbols=int(symbols.size)):
                if self.config.lossless == "huffman":
                    payloads = self._huffman.compress_keys_batch(
                        [symbols[i] for i in range(nbatch)], self.dict_size
                    )
                else:
                    payloads = [
                        symbols[i].astype(np.int32).tobytes()
                        for i in range(nbatch)
                    ]

            blobs = []
            for i in range(nbatch):
                blob = self._serialize_stream(
                    first.dtype, first.shape, ebs[i], self.kappa,
                    bins2d[i], outliers[i], payloads[i],
                )
                self._count_bytes(first.nbytes, len(blob))
                blobs.append(blob)
            return blobs
        finally:
            self.cache.release(ctx)

    @stream_errors
    def decompress_batch(self, blobs: Sequence[bytes], coords=None) -> list[np.ndarray]:
        """Invert :meth:`compress_batch` with one launch per stage.

        Requires uniform stream headers (lossless mode, dtype, shape) —
        what a uniform :meth:`compress_batch` produces; ``ValueError``
        otherwise and callers fall back per stream.
        """
        blobs = list(blobs)
        if not blobs:
            return []
        if len(blobs) == 1:
            return [self.decompress(blobs[0], coords=coords)]
        parsed = [self._parse_stream(b) for b in blobs]
        lossless, dtype, shape = parsed[0][:3]
        for p in parsed[1:]:
            if p[:3] != (lossless, dtype, shape):
                raise ValueError(
                    "decompress_batch requires uniform stream headers"
                )
        nbatch = len(parsed)
        coords = self._check_coords(coords, shape)
        ctx, hierarchy, factors = self._context(
            shape, dtype, coords, pin=True, tag="mgard.batch"
        )
        try:
            with _span("mgard.decode", batch=nbatch):
                if lossless:
                    rows = self._huffman.decompress_keys_batch(
                        [p[5] for p in parsed]
                    )
                else:
                    rows = [
                        np.frombuffer(p[5], dtype=np.int32).astype(np.int64)
                        for p in parsed
                    ]
                qrows = [
                    from_symbols(row, p[4]) for row, p in zip(rows, parsed)
                ]

            with _span("mgard.dequantize", batch=nbatch):
                sizes = [
                    hierarchy.num_coefficients(l)
                    for l in range(hierarchy.total_levels)
                ]
                sizes.append(
                    int(np.prod(hierarchy.shape_at(hierarchy.total_levels)))
                )
                bounds = np.cumsum([0] + sizes)
                for q in qrows:
                    if bounds[-1] != q.size:
                        raise ValueError(
                            f"stream length {q.size} != expected {bounds[-1]}"
                        )
                for p in parsed:
                    if p[3].size != len(sizes):
                        raise ValueError(
                            f"{len(sizes)} groups but {p[3].size} bins"
                        )
                qflat = np.stack(qrows)
                bins2d = np.stack([p[3] for p in parsed])
                groups = [
                    qflat[:, bounds[i] : bounds[i + 1]].astype(np.float64)
                    * bins2d[:, i][:, None]
                    for i in range(len(sizes))
                ]

            with _span("mgard.recompose", levels=hierarchy.total_levels,
                       batch=nbatch):
                coeffs = groups[:-1]
                coarsest = groups[-1].reshape(
                    (nbatch,) + hierarchy.shape_at(hierarchy.total_levels)
                )
                out = recompose_batched(
                    coeffs, coarsest, hierarchy, adapter=self.adapter,
                    factors_per_level=factors, ctx=ctx,
                )
                return [out[i].astype(dtype, copy=True) for i in range(nbatch)]
        finally:
            self.cache.release(ctx)

    # ------------------------------------------------------------------
    def compression_ratio(self, data: np.ndarray, blob: bytes) -> float:
        return data.nbytes / len(blob)

    def max_error(self, data: np.ndarray, blob: bytes) -> float:
        back = self.decompress(blob)
        return float(np.max(np.abs(back.astype(np.float64) - data.astype(np.float64))))
