"""Coordinate-aware 1-D operators for the multilevel transform.

All operators act along one axis of an N-D array (the decomposition is a
tensor product, so N-D behaviour is the composition of 1-D passes):

* :func:`lerp_fill` — overwrite fine-only nodes with the linear
  interpolation of their coarse neighbors (the ``lerp`` kernel of
  Algorithm 1, line 6).
* :func:`mass_apply` — multiply by the piecewise-linear FEM mass matrix
  of the fine grid (tridiagonal, non-uniform spacing).
* :func:`restrict` — apply the interpolation transpose P^T, folding fine
  values into coarse positions.  ``mass_apply`` + ``restrict`` is the
  paper's ``mass_trans`` kernel (line 8).
* :class:`TridiagFactors` — prefactored Thomas solver for the coarse
  mass matrix (line 9); the sweep is sequential per vector, so it runs
  under the Iterative abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compressors.mgard.hierarchy import DimLevel
from repro.core.abstractions import iterative
from repro.core.functor import IterativeFunctor
from repro.util import hot_path


def interp_weights(level: DimLevel) -> tuple[np.ndarray, np.ndarray]:
    """Lerp weights (wl, wr) of each fine-only node's coarse neighbors."""
    return level.wl, level.wr


def _axis_first(u: np.ndarray, axis: int) -> np.ndarray:
    return np.moveaxis(u, axis, 0)


def _bshape(w: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape a per-node weight vector for axis-0 broadcasting."""
    return w.reshape((-1,) + (1,) * (ndim - 1))


@hot_path(reason="per-level lerp kernel of Algorithm 1 (every axis pass)")
def lerp_fill(u: np.ndarray, level: DimLevel, axis: int) -> None:
    """In place: fine-only nodes ← lerp of coarse neighbors, along axis."""
    v = _axis_first(u, axis)
    nd = v.ndim
    wl = _bshape(level.wl, nd)
    wr = _bshape(level.wr, nd)
    v[level.fine_idx] = wl * v[level.left_idx] + wr * v[level.right_idx]


def mass_apply(u: np.ndarray, level: DimLevel, axis: int) -> np.ndarray:
    """Fine-grid mass matrix along ``axis`` (non-uniform spacing).

    Row i: ``(h_{i-1}(u_{i-1} + 2u_i) + h_i(2u_i + u_{i+1})) / 6`` with
    single-sided boundary rows.
    """
    v = _axis_first(u, axis)
    nd = v.ndim
    h = np.diff(level.coords)
    hL = _bshape(h, nd)             # h_i between node i and i+1
    y = np.empty_like(v)
    # interior rows 1..n-2
    y[1:-1] = (
        hL[:-1] * (v[:-2] + 2.0 * v[1:-1]) + hL[1:] * (2.0 * v[1:-1] + v[2:])
    ) / 6.0
    y[0] = hL[0] * (2.0 * v[0] + v[1]) / 6.0
    y[-1] = hL[-1] * (v[-2] + 2.0 * v[-1]) / 6.0
    return np.moveaxis(y, 0, axis)


def restrict(y: np.ndarray, level: DimLevel, axis: int) -> np.ndarray:
    """Interpolation transpose P^T along ``axis``: fine → coarse size.

    ``b_j = y[coarse_j] + Σ_f wl_f·y_f [f's left neighbor is j]
                        + Σ_f wr_f·y_f [f's right neighbor is j]``.
    """
    v = _axis_first(y, axis)
    nd = v.ndim
    b = v[level.coarse_idx].copy()
    yf = v[level.fine_idx]
    np.add.at(b, level.left_coarse_pos, _bshape(level.wl, nd) * yf)
    np.add.at(b, level.right_coarse_pos, _bshape(level.wr, nd) * yf)
    return np.moveaxis(b, 0, axis)


def prolong(b: np.ndarray, level: DimLevel, axis: int, out_dtype=None) -> np.ndarray:
    """Interpolation P along ``axis``: coarse → fine size.

    Coarse values copy to their fine positions; fine-only nodes get the
    lerp of their neighbors (used when applying corrections back onto
    the fine grid is expressed explicitly; decompose/recompose use
    :func:`lerp_fill` on views instead).
    """
    v = _axis_first(b, axis)
    nd = v.ndim
    out = np.zeros((level.n,) + v.shape[1:], dtype=out_dtype or b.dtype)
    out[level.coarse_idx] = v
    out[level.fine_idx] = (
        _bshape(level.wl, nd) * out[level.left_idx]
        + _bshape(level.wr, nd) * out[level.right_idx]
    )
    return np.moveaxis(out, 0, axis)


class _ThomasFunctor(IterativeFunctor):
    """Iterative-abstraction kernel: prefactored Thomas sweeps.

    Forward/backward recurrences are sequential along each vector (the
    reason Algorithm 1 needs the Iterative abstraction) and vectorized
    across the vectors in a group.
    """

    name = "mgard.tridiag"
    bytes_per_element = 24.0

    def __init__(self, dprime: np.ndarray, c: np.ndarray) -> None:
        self._dprime = dprime
        self._c = c
        self._w = np.empty_like(dprime)
        self._w[0] = 0.0
        if c.size:
            self._w[1:] = c / dprime[:-1]

    @hot_path(reason="Thomas sweeps dominate the mgard correction solve")
    def apply(self, vectors: np.ndarray) -> np.ndarray:
        n = vectors.shape[1]
        if n != self._dprime.size:
            raise ValueError(
                f"vector length {n} != factored system size {self._dprime.size}"
            )
        # The sweep updates in place; the copy keeps apply() pure so the
        # iterative staging buffer can be reused across vector groups.
        # hpdrlint: disable=HPL001 — purity copy required by the contract
        x = np.array(vectors, dtype=np.float64, copy=True)
        w, c, dp = self._w, self._c, self._dprime
        for i in range(1, n):
            x[:, i] -= w[i] * x[:, i - 1]
        x[:, n - 1] /= dp[n - 1]
        for i in range(n - 2, -1, -1):
            x[:, i] = (x[:, i] - c[i] * x[:, i + 1]) / dp[i]
        return x


@dataclass
class TridiagFactors:
    """LU factorization of a coarse-grid mass matrix."""

    dprime: np.ndarray
    c: np.ndarray

    @classmethod
    def from_coords(cls, coords: np.ndarray) -> "TridiagFactors":
        """Factor the P1 mass matrix of the grid ``coords``."""
        n = coords.size
        if n < 2:
            return cls(
                dprime=np.ones(max(n, 1), dtype=np.float64),
                c=np.zeros(0, dtype=np.float64),
            )
        h = np.diff(coords)
        d = np.empty(n, dtype=np.float64)
        d[0] = h[0] / 3.0
        d[-1] = h[-1] / 3.0
        if n > 2:
            d[1:-1] = (h[:-1] + h[1:]) / 3.0
        c = h / 6.0
        dprime = np.empty(n, dtype=np.float64)
        dprime[0] = d[0]
        for i in range(1, n):
            dprime[i] = d[i] - c[i - 1] ** 2 / dprime[i - 1]
        return cls(dprime=dprime, c=c)

    def solve_along(
        self, b: np.ndarray, axis: int, adapter=None, group_size: int = 64,
        ctx=None,
    ) -> np.ndarray:
        """Solve ``M x = b`` along ``axis`` via the Iterative abstraction.

        ``ctx`` forwards to :func:`~repro.core.abstractions.iterative`
        so the vector-batch staging buffer persists across solves (CMM).
        """
        if b.shape[axis] != self.dprime.size:
            raise ValueError(
                f"axis length {b.shape[axis]} != system size {self.dprime.size}"
            )
        if self.dprime.size == 1:
            out = b / self.dprime[0]
            return out
        functor = _ThomasFunctor(self.dprime, self.c)
        return iterative(
            b.astype(np.float64, copy=False),
            functor,
            axis=axis,
            group_size=group_size,
            adapter=adapter,
            ctx=ctx,
        )
