"""Multilevel decomposition / recomposition (Algorithm 1, lines 5-13).

Per global level:

1. ``approx`` ← multilinear interpolation of the all-coarse subgrid,
   computed with one in-place :func:`lerp_fill` pass per active
   dimension (the passes compose into the tensor-product interpolant;
   intermediate mixed-node reads are overwritten by later passes, so the
   result depends only on all-coarse values).
2. multilevel coefficients ``mc = u - approx`` (zero at all-coarse
   nodes); the fine-node values are extracted in C order.
3. global correction: ``corr = (⊗_d M_d^c)^{-1} (⊗_d P_d^T M_d) mc`` —
   mass multiply + restriction per dimension, then a tridiagonal solve
   per dimension (Iterative abstraction).
4. next level ← all-coarse subgrid of ``u`` + ``corr``.

Recomposition runs the exact inverse; without quantization the round
trip is exact to floating-point roundoff.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.mgard.hierarchy import Hierarchy
from repro.compressors.mgard.ops1d import (
    TridiagFactors,
    lerp_fill,
    mass_apply,
    restrict,
)


def _coarse_selector(hierarchy: Hierarchy, level: int):
    """``np.ix_`` selector of the all-coarse subgrid at ``level``."""
    idx = []
    for d, dimh in enumerate(hierarchy.dims):
        if level < dimh.num_levels:
            idx.append(dimh.level(level).coarse_idx)
        else:
            idx.append(np.arange(dimh.size_at(level)))
    return np.ix_(*idx)


def _coarse_mask(hierarchy: Hierarchy, level: int) -> np.ndarray:
    """Boolean mask of all-coarse nodes on the level's fine grid."""
    shape = hierarchy.shape_at(level)
    mask = np.ones(shape, dtype=bool)
    for d, dimh in enumerate(hierarchy.dims):
        in_coarse = np.zeros(shape[d], dtype=bool)
        if level < dimh.num_levels:
            in_coarse[dimh.level(level).coarse_idx] = True
        else:
            in_coarse[:] = True
        expand = [None] * len(shape)
        expand[d] = slice(None)
        mask &= in_coarse[tuple(expand)]
    return mask


def level_factors(hierarchy: Hierarchy, level: int) -> dict[int, TridiagFactors]:
    """Tridiagonal factorizations of each active dim's coarse mass matrix."""
    out = {}
    for d in hierarchy.active_dims(level):
        lvl = hierarchy.dim_level(d, level)
        coarse_coords = lvl.coords[lvl.coarse_idx]
        out[d] = TridiagFactors.from_coords(coarse_coords)
    return out


def _correction(
    mc: np.ndarray,
    hierarchy: Hierarchy,
    level: int,
    factors: dict[int, TridiagFactors],
    adapter=None,
) -> np.ndarray:
    corr = mc
    dims = hierarchy.active_dims(level)
    for d in dims:
        lvl = hierarchy.dim_level(d, level)
        corr = restrict(mass_apply(corr, lvl, d), lvl, d)
    for d in dims:
        corr = factors[d].solve_along(corr, axis=d, adapter=adapter)
    return corr


def decompose(
    data: np.ndarray,
    hierarchy: Hierarchy,
    adapter=None,
    factors_per_level: list[dict[int, TridiagFactors]] | None = None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Full multilevel decomposition.

    Returns ``(coefficients, coarsest)``: per-level 1-D coefficient
    arrays (finest level first) and the coarsest-grid approximation.
    ``factors_per_level`` may come from a CMM context to skip
    refactorization on repeated calls.
    """
    if tuple(data.shape) != hierarchy.shape:
        raise ValueError(f"data shape {data.shape} != hierarchy {hierarchy.shape}")
    current = np.asarray(data, dtype=np.float64).copy()
    coeffs: list[np.ndarray] = []
    for level in range(hierarchy.total_levels):
        dims = hierarchy.active_dims(level)
        factors = (
            factors_per_level[level]
            if factors_per_level is not None
            else level_factors(hierarchy, level)
        )
        approx = current.copy()
        for d in dims:
            lerp_fill(approx, hierarchy.dim_level(d, level), d)
        mc = current - approx
        mask = _coarse_mask(hierarchy, level)
        coeffs.append(mc[~mask])
        corr = _correction(mc, hierarchy, level, factors, adapter)
        current = current[_coarse_selector(hierarchy, level)] + corr
    return coeffs, current


def recompose(
    coeffs: list[np.ndarray],
    coarsest: np.ndarray,
    hierarchy: Hierarchy,
    adapter=None,
    factors_per_level: list[dict[int, TridiagFactors]] | None = None,
) -> np.ndarray:
    """Exact inverse of :func:`decompose`."""
    if len(coeffs) != hierarchy.total_levels:
        raise ValueError(
            f"{len(coeffs)} coefficient levels != {hierarchy.total_levels}"
        )
    current = np.asarray(coarsest, dtype=np.float64).copy()
    for level in range(hierarchy.total_levels - 1, -1, -1):
        dims = hierarchy.active_dims(level)
        factors = (
            factors_per_level[level]
            if factors_per_level is not None
            else level_factors(hierarchy, level)
        )
        shape = hierarchy.shape_at(level)
        mask = _coarse_mask(hierarchy, level)
        mc = np.zeros(shape, dtype=np.float64)
        mc[~mask] = coeffs[level]
        corr = _correction(mc, hierarchy, level, factors, adapter)
        coarse_vals = current - corr
        new = np.zeros(shape, dtype=np.float64)
        new[_coarse_selector(hierarchy, level)] = coarse_vals
        for d in dims:
            lerp_fill(new, hierarchy.dim_level(d, level), d)
        new += mc
        current = new
    return current
