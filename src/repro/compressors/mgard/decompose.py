"""Multilevel decomposition / recomposition (Algorithm 1, lines 5-13).

Per global level:

1. ``approx`` ← multilinear interpolation of the all-coarse subgrid,
   computed with one in-place :func:`lerp_fill` pass per active
   dimension (the passes compose into the tensor-product interpolant;
   intermediate mixed-node reads are overwritten by later passes, so the
   result depends only on all-coarse values).
2. multilevel coefficients ``mc = u - approx`` (zero at all-coarse
   nodes); the fine-node values are extracted in C order.
3. global correction: ``corr = (⊗_d M_d^c)^{-1} (⊗_d P_d^T M_d) mc`` —
   mass multiply + restriction per dimension, then a tridiagonal solve
   per dimension (Iterative abstraction).
4. next level ← all-coarse subgrid of ``u`` + ``corr``.

Recomposition runs the exact inverse; without quantization the round
trip is exact to floating-point roundoff.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.mgard.hierarchy import Hierarchy
from repro.compressors.mgard.ops1d import (
    TridiagFactors,
    lerp_fill,
    mass_apply,
    restrict,
)


def _coarse_selector(hierarchy: Hierarchy, level: int):
    """``np.ix_`` selector of the all-coarse subgrid at ``level``."""
    idx = []
    for d, dimh in enumerate(hierarchy.dims):
        if level < dimh.num_levels:
            idx.append(dimh.level(level).coarse_idx)
        else:
            idx.append(np.arange(dimh.size_at(level)))
    return np.ix_(*idx)


def _coarse_mask(hierarchy: Hierarchy, level: int) -> np.ndarray:
    """Boolean mask of all-coarse nodes on the level's fine grid."""
    shape = hierarchy.shape_at(level)
    mask = np.ones(shape, dtype=bool)
    for d, dimh in enumerate(hierarchy.dims):
        in_coarse = np.zeros(shape[d], dtype=bool)
        if level < dimh.num_levels:
            in_coarse[dimh.level(level).coarse_idx] = True
        else:
            in_coarse[:] = True
        expand = [None] * len(shape)
        expand[d] = slice(None)
        mask &= in_coarse[tuple(expand)]
    return mask


def _level_geometry(hierarchy: Hierarchy, level: int, ctx=None):
    """``(selector, fine_idx)`` for a level, CMM-cached when ``ctx`` given.

    ``fine_idx`` are the flat C-order indices of the fine (non-coarse)
    nodes — the positions whose multilevel coefficients the level emits.
    Both are pure functions of the hierarchy, so repeated reductions
    reuse them instead of rebuilding full-grid boolean masks.
    """

    def _build_selector():
        return _coarse_selector(hierarchy, level)

    def _build_fine_idx():
        return np.flatnonzero(~_coarse_mask(hierarchy, level).ravel())

    if ctx is None:
        return _build_selector(), _build_fine_idx()
    return (
        ctx.object(f"geometry.selector.{level}", _build_selector),
        ctx.object(f"geometry.fine_idx.{level}", _build_fine_idx),
    )


def level_factors(hierarchy: Hierarchy, level: int) -> dict[int, TridiagFactors]:
    """Tridiagonal factorizations of each active dim's coarse mass matrix."""
    out = {}
    for d in hierarchy.active_dims(level):
        lvl = hierarchy.dim_level(d, level)
        coarse_coords = lvl.coords[lvl.coarse_idx]
        out[d] = TridiagFactors.from_coords(coarse_coords)
    return out


def _correction(
    mc: np.ndarray,
    hierarchy: Hierarchy,
    level: int,
    factors: dict[int, TridiagFactors],
    adapter=None,
    ctx=None,
) -> np.ndarray:
    corr = mc
    dims = hierarchy.active_dims(level)
    for d in dims:
        lvl = hierarchy.dim_level(d, level)
        corr = restrict(mass_apply(corr, lvl, d), lvl, d)
    for d in dims:
        corr = factors[d].solve_along(corr, axis=d, adapter=adapter, ctx=ctx)
    return corr


def _correction_batched(
    mc: np.ndarray,
    hierarchy: Hierarchy,
    level: int,
    factors: dict[int, TridiagFactors],
    adapter=None,
    ctx=None,
) -> np.ndarray:
    """:func:`_correction` over a leading batch axis (ops at ``d + 1``)."""
    corr = mc
    dims = hierarchy.active_dims(level)
    for d in dims:
        lvl = hierarchy.dim_level(d, level)
        corr = restrict(mass_apply(corr, lvl, d + 1), lvl, d + 1)
    for d in dims:
        corr = factors[d].solve_along(corr, axis=d + 1, adapter=adapter,
                                      ctx=ctx)
    return corr


def decompose_batched(
    stack: np.ndarray,
    hierarchy: Hierarchy,
    adapter=None,
    factors_per_level: list[dict[int, TridiagFactors]] | None = None,
    ctx=None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """:func:`decompose` over a ``(N,) + shape`` stack, one launch per stage.

    Lane ``i`` of every result is bit-identical to ``decompose(stack[i],
    ...)``: each 1-D operator pass runs along ``d + 1`` (the batch axis
    leads), which broadcasts the exact per-item arithmetic across lanes
    — elementwise lerp/mass kernels, per-output-element ``np.add.at``
    accumulation order, and per-vector Thomas sweeps are all independent
    of how many lanes ride along.  Returns per-level ``(N, size)``
    coefficient planes and the ``(N,) + coarse_shape`` approximation.
    """
    if tuple(stack.shape[1:]) != hierarchy.shape:
        raise ValueError(
            f"stack item shape {stack.shape[1:]} != hierarchy "
            f"{hierarchy.shape}"
        )
    nbatch = stack.shape[0]
    current = np.asarray(stack, dtype=np.float64).copy()
    coeffs: list[np.ndarray] = []
    for level in range(hierarchy.total_levels):
        dims = hierarchy.active_dims(level)
        factors = (
            factors_per_level[level]
            if factors_per_level is not None
            else level_factors(hierarchy, level)
        )
        shape = (nbatch,) + hierarchy.shape_at(level)
        if ctx is not None:
            approx = ctx.buffer(f"decompose.approx.{level}", shape, np.float64)
            np.copyto(approx, current)
            mc = ctx.buffer(f"decompose.mc.{level}", shape, np.float64)
        else:
            approx = current.copy()
            mc = None
        for d in dims:
            lerp_fill(approx, hierarchy.dim_level(d, level), d + 1)
        if mc is None:
            mc = current - approx
        else:
            np.subtract(current, approx, out=mc)
        selector, fine_idx = _level_geometry(hierarchy, level, ctx)
        if ctx is not None:
            level_coeffs = ctx.buffer(
                f"decompose.coeffs.{level}", (nbatch, fine_idx.size),
                np.float64,
            )
            np.take(mc.reshape(nbatch, -1), fine_idx, axis=1,
                    out=level_coeffs)
        else:
            level_coeffs = mc.reshape(nbatch, -1)[:, fine_idx]
        coeffs.append(level_coeffs)
        corr = _correction_batched(mc, hierarchy, level, factors, adapter,
                                   ctx=ctx)
        current = current[(slice(None),) + selector] + corr
    return coeffs, current


def recompose_batched(
    coeffs: list[np.ndarray],
    coarsest: np.ndarray,
    hierarchy: Hierarchy,
    adapter=None,
    factors_per_level: list[dict[int, TridiagFactors]] | None = None,
    ctx=None,
) -> np.ndarray:
    """Exact inverse of :func:`decompose_batched` (see its lane-identity
    argument; with ``ctx`` the result aliases context memory)."""
    if len(coeffs) != hierarchy.total_levels:
        raise ValueError(
            f"{len(coeffs)} coefficient levels != {hierarchy.total_levels}"
        )
    nbatch = coarsest.shape[0]
    current = np.asarray(coarsest, dtype=np.float64).copy()
    for level in range(hierarchy.total_levels - 1, -1, -1):
        dims = hierarchy.active_dims(level)
        factors = (
            factors_per_level[level]
            if factors_per_level is not None
            else level_factors(hierarchy, level)
        )
        shape = (nbatch,) + hierarchy.shape_at(level)
        selector, fine_idx = _level_geometry(hierarchy, level, ctx)
        if ctx is not None:
            mc = ctx.buffer(f"recompose.mc.{level}", shape, np.float64)
            mc[...] = 0.0
            new = ctx.buffer(f"recompose.new.{level}", shape, np.float64)
            new[...] = 0.0
        else:
            mc = np.zeros(shape, dtype=np.float64)
            new = np.zeros(shape, dtype=np.float64)
        mc.reshape(nbatch, -1)[:, fine_idx] = coeffs[level]
        corr = _correction_batched(mc, hierarchy, level, factors, adapter,
                                   ctx=ctx)
        coarse_vals = current - corr
        new[(slice(None),) + selector] = coarse_vals
        for d in dims:
            lerp_fill(new, hierarchy.dim_level(d, level), d + 1)
        new += mc
        current = new
    return current


def decompose(
    data: np.ndarray,
    hierarchy: Hierarchy,
    adapter=None,
    factors_per_level: list[dict[int, TridiagFactors]] | None = None,
    ctx=None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Full multilevel decomposition.

    Returns ``(coefficients, coarsest)``: per-level 1-D coefficient
    arrays (finest level first) and the coarsest-grid approximation.
    ``factors_per_level`` may come from a CMM context to skip
    refactorization on repeated calls; with ``ctx`` the per-level
    working grids, coefficient buffers, and node-geometry index tables
    also persist, so repeated same-shaped decompositions allocate
    nothing through the context.  Returned coefficient arrays then alias
    context memory and are valid until the next decomposition through
    the same context.
    """
    if tuple(data.shape) != hierarchy.shape:
        raise ValueError(f"data shape {data.shape} != hierarchy {hierarchy.shape}")
    current = np.asarray(data, dtype=np.float64).copy()
    coeffs: list[np.ndarray] = []
    for level in range(hierarchy.total_levels):
        dims = hierarchy.active_dims(level)
        factors = (
            factors_per_level[level]
            if factors_per_level is not None
            else level_factors(hierarchy, level)
        )
        shape = hierarchy.shape_at(level)
        if ctx is not None:
            approx = ctx.buffer(f"decompose.approx.{level}", shape, np.float64)
            np.copyto(approx, current)
            mc = ctx.buffer(f"decompose.mc.{level}", shape, np.float64)
        else:
            approx = current.copy()
            mc = None
        for d in dims:
            lerp_fill(approx, hierarchy.dim_level(d, level), d)
        if mc is None:
            mc = current - approx
        else:
            np.subtract(current, approx, out=mc)
        selector, fine_idx = _level_geometry(hierarchy, level, ctx)
        if ctx is not None:
            level_coeffs = ctx.buffer(
                f"decompose.coeffs.{level}", (fine_idx.size,), np.float64
            )
            np.take(mc.reshape(-1), fine_idx, out=level_coeffs)
        else:
            level_coeffs = mc.reshape(-1)[fine_idx]
        coeffs.append(level_coeffs)
        corr = _correction(mc, hierarchy, level, factors, adapter, ctx=ctx)
        current = current[selector] + corr
    return coeffs, current


def recompose(
    coeffs: list[np.ndarray],
    coarsest: np.ndarray,
    hierarchy: Hierarchy,
    adapter=None,
    factors_per_level: list[dict[int, TridiagFactors]] | None = None,
    ctx=None,
) -> np.ndarray:
    """Exact inverse of :func:`decompose`.

    With ``ctx`` the per-level grids come from persistent context
    buffers; the returned array then aliases context memory (callers
    copy or cast before handing it out).
    """
    if len(coeffs) != hierarchy.total_levels:
        raise ValueError(
            f"{len(coeffs)} coefficient levels != {hierarchy.total_levels}"
        )
    current = np.asarray(coarsest, dtype=np.float64).copy()
    for level in range(hierarchy.total_levels - 1, -1, -1):
        dims = hierarchy.active_dims(level)
        factors = (
            factors_per_level[level]
            if factors_per_level is not None
            else level_factors(hierarchy, level)
        )
        shape = hierarchy.shape_at(level)
        selector, fine_idx = _level_geometry(hierarchy, level, ctx)
        if ctx is not None:
            mc = ctx.buffer(f"recompose.mc.{level}", shape, np.float64)
            mc[...] = 0.0
            new = ctx.buffer(f"recompose.new.{level}", shape, np.float64)
            new[...] = 0.0
        else:
            mc = np.zeros(shape, dtype=np.float64)
            new = np.zeros(shape, dtype=np.float64)
        mc.reshape(-1)[fine_idx] = coeffs[level]
        corr = _correction(mc, hierarchy, level, factors, adapter, ctx=ctx)
        coarse_vals = current - corr
        new[selector] = coarse_vals
        for d in dims:
            lerp_fill(new, hierarchy.dim_level(d, level), d)
        new += mc
        current = new
    return current
