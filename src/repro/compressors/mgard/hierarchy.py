"""Grid hierarchy for the multilevel decomposition.

Each dimension refines independently: level *l*'s grid keeps the even
indices of level *l-1* plus the last node (so non-dyadic sizes stay
exactly representable; the boundary interval just becomes non-uniform,
which the coordinate-aware 1-D operators handle).  A dimension stops
coarsening below 3 nodes.  The global level count is the maximum across
dimensions; short dimensions simply stop refining early — the same
policy MGARD-X uses for arbitrary shapes.

Hierarchies are cached per (shape, dtype) through the CMM, since
rebuilding coordinates, interpolation weights and tridiagonal factors on
every call is part of the allocation overhead the paper eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class DimLevel:
    """Geometry of one (dimension, level) pair, fine side."""

    n: int                      # fine size
    n_coarse: int               # coarse size
    coords: np.ndarray          # fine coordinates, shape (n,)
    coarse_idx: np.ndarray      # indices (into fine) of coarse nodes
    fine_idx: np.ndarray        # indices of fine-only nodes
    left_idx: np.ndarray        # per fine-only node: left coarse neighbor (fine index)
    right_idx: np.ndarray       # per fine-only node: right coarse neighbor (fine index)
    wl: np.ndarray              # lerp weight of the left neighbor
    wr: np.ndarray              # lerp weight of the right neighbor
    #: per fine-only node: position of its coarse neighbors in the
    #: coarse grid (for the restriction scatter).
    left_coarse_pos: np.ndarray = field(default=None)
    right_coarse_pos: np.ndarray = field(default=None)


class DimHierarchy:
    """All levels of one dimension."""

    def __init__(self, n: int, coords: np.ndarray | None = None) -> None:
        if n < 1:
            raise ValueError(f"dimension size must be >= 1, got {n}")
        if coords is None:
            coords = np.arange(n, dtype=np.float64)
        else:
            coords = np.asarray(coords, dtype=np.float64)
            if coords.shape != (n,):
                raise ValueError("coords length mismatch")
            if n > 1 and not np.all(np.diff(coords) > 0):
                raise ValueError("coords must be strictly increasing")
        self.n = n
        self.levels: list[DimLevel] = []
        cur = coords
        while cur.size >= 3:
            lvl = _build_level(cur)
            self.levels.append(lvl)
            cur = cur[lvl.coarse_idx]
        self.coarsest_coords = cur

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def size_at(self, level: int) -> int:
        """Grid size after ``level`` coarsening steps of this dimension."""
        if level <= 0:
            return self.n
        if level >= self.num_levels:
            return self.coarsest_coords.size
        return self.levels[level].n

    def level(self, l: int) -> DimLevel:
        return self.levels[l]


def _build_level(coords: np.ndarray) -> DimLevel:
    n = coords.size
    evens = np.arange(0, n, 2)
    if (n - 1) % 2 == 0:
        coarse_idx = evens
    else:
        coarse_idx = np.concatenate([evens, [n - 1]])
    in_coarse = np.zeros(n, dtype=bool)
    in_coarse[coarse_idx] = True
    fine_idx = np.flatnonzero(~in_coarse)

    # Neighbors: fine nodes are odd indices strictly inside the grid, so
    # left = idx-1 (even, coarse) and right = idx+1 (coarse: either even
    # or the appended last node).
    left_idx = fine_idx - 1
    right_idx = fine_idx + 1

    xl = coords[left_idx]
    xr = coords[right_idx]
    xf = coords[fine_idx]
    h = xr - xl
    wr = (xf - xl) / h
    wl = 1.0 - wr

    coarse_pos_of = np.full(n, -1, dtype=np.int64)
    coarse_pos_of[coarse_idx] = np.arange(coarse_idx.size)
    return DimLevel(
        n=n,
        n_coarse=coarse_idx.size,
        coords=coords,
        coarse_idx=coarse_idx,
        fine_idx=fine_idx,
        left_idx=left_idx,
        right_idx=right_idx,
        wl=wl,
        wr=wr,
        left_coarse_pos=coarse_pos_of[left_idx],
        right_coarse_pos=coarse_pos_of[right_idx],
    )


class Hierarchy:
    """Multidimensional hierarchy: one :class:`DimHierarchy` per dim.

    ``total_levels`` is the paper's ``hierarchy.total_levels``: the
    number of global decomposition steps.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        coords: tuple[np.ndarray, ...] | None = None,
    ) -> None:
        if not 1 <= len(shape) <= 4:
            raise ValueError(f"MGARD-X supports 1-4 dims, got {len(shape)}")
        self.shape = tuple(int(n) for n in shape)
        self.dims = [
            DimHierarchy(n, None if coords is None else coords[d])
            for d, n in enumerate(self.shape)
        ]
        self.total_levels = max((d.num_levels for d in self.dims), default=0)

    def shape_at(self, level: int) -> tuple[int, ...]:
        """Array shape after ``level`` global decomposition steps."""
        return tuple(d.size_at(level) for d in self.dims)

    def active_dims(self, level: int) -> list[int]:
        """Dimensions that still refine at global step ``level`` (0-based)."""
        return [i for i, d in enumerate(self.dims) if level < d.num_levels]

    def dim_level(self, dim: int, level: int) -> DimLevel:
        return self.dims[dim].level(level)

    def num_coefficients(self, level: int) -> int:
        """Coefficients emitted by global step ``level``: all nodes of
        the step's fine grid except the all-coarse subgrid."""
        fine = np.prod([self.shape_at(level)[i] for i in range(len(self.shape))])
        coarse = np.prod(self.shape_at(level + 1))
        return int(fine - coarse)
