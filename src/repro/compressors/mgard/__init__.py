"""MGARD-X: multilevel error-bounded lossy compression on HPDR.

Pipeline (paper Algorithm 1 / Fig. 5):

1. Multilevel decomposition — per level:
   a. multilevel coefficients via multilinear interpolation (``lerp``,
      Locality abstraction);
   b. global correction = L2 projection of the coefficients:
      transfer-mass-matrix multiplication (Locality) followed by
      tridiagonal solves (Iterative — computations along each vector are
      sequential);
   c. apply correction to the coarse approximation.
2. Per-level linear quantization — Map&Process abstraction (each level
   gets its own bin size).
3. Huffman encoding of the quantized stream (Algorithm 2).

The decomposition is coordinate-aware (non-uniform spacing at non-dyadic
boundaries is handled exactly), supports 1-4 dimensions and FP32/FP64,
and is exactly invertible up to floating-point roundoff when
quantization is disabled.
"""

from repro.compressors.mgard.hierarchy import DimHierarchy, Hierarchy
from repro.compressors.mgard.ops1d import (
    interp_weights,
    lerp_fill,
    mass_apply,
    restrict,
    TridiagFactors,
)
from repro.compressors.mgard.decompose import decompose, recompose
from repro.compressors.mgard.quantize import quantize_levels, dequantize_levels
from repro.compressors.mgard.compressor import MGARDX
from repro.compressors.mgard.refactor import MGARDRefactor, RefactoredData

__all__ = [
    "DimHierarchy",
    "Hierarchy",
    "interp_weights",
    "lerp_fill",
    "mass_apply",
    "restrict",
    "TridiagFactors",
    "decompose",
    "recompose",
    "quantize_levels",
    "dequantize_levels",
    "MGARDX",
    "MGARDRefactor",
    "RefactoredData",
]
