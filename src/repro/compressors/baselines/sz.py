"""SZ baseline (cuSZ-style): dual-quantized Lorenzo prediction + Huffman.

cuSZ's key insight (Tian et al., PACT'20) is *dual quantization*:
pre-quantize the data onto the error-bound grid first, then run the
first-order Lorenzo predictor on integers.  Prediction errors cannot
propagate (everything is exact integer arithmetic), so both directions
vectorize completely — the property that made cuSZ GPU-friendly, and
what makes this NumPy implementation fast.

The n-D first-order Lorenzo residual is the mixed first difference,
whose inverse is an iterated prefix sum along each axis.

Error bound: ``|x - 2eb·round(x/2eb)| ≤ eb`` holds exactly by
construction, for any input.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.config import Config, ErrorMode
from repro.compressors.huffman import HuffmanX
from repro.compressors.mgard.quantize import from_symbols, to_symbols
from repro.util import stream_errors

_MAGIC = b"CUSZ"
_VERSION = 1


def lorenzo_forward(xq: np.ndarray) -> np.ndarray:
    """Mixed first difference (first-order Lorenzo residual), exact."""
    delta = xq.astype(np.int64)
    for axis in range(delta.ndim):
        delta = np.diff(delta, axis=axis, prepend=0)
    return delta


def lorenzo_inverse(delta: np.ndarray) -> np.ndarray:
    """Iterated prefix sum — exact inverse of :func:`lorenzo_forward`."""
    xq = delta.astype(np.int64)
    for axis in range(xq.ndim):
        xq = np.cumsum(xq, axis=axis)
    return xq


class SZ:
    """cuSZ-style error-bounded lossy compressor.

    Parameters
    ----------
    config:
        Error bound and mode (same conventions as MGARD-X).
    dict_size:
        Huffman dictionary size for quantization codes.
    """

    def __init__(
        self,
        config: Config | None = None,
        adapter=None,
        dict_size: int = 4096,
    ) -> None:
        self.config = config if config is not None else Config()
        self.adapter = adapter
        self.dict_size = dict_size

    def compress(self, data: np.ndarray) -> bytes:
        data = np.ascontiguousarray(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"SZ supports float32/float64, got {data.dtype}")
        abs_eb = self.config.absolute_bound(data)
        twice = 2.0 * abs_eb

        xq = np.round(data.astype(np.float64) / twice).astype(np.int64)
        delta = lorenzo_forward(xq)
        symbols, outliers = to_symbols(delta.reshape(-1), self.dict_size)
        huff = HuffmanX(adapter=self.adapter)
        payload = huff.compress_keys(symbols, self.dict_size)

        dts = np.dtype(data.dtype).str.encode("ascii")
        header = (
            _MAGIC
            + struct.pack("<BBB", _VERSION, len(dts), data.ndim)
            + dts
            + struct.pack(f"<{data.ndim}q", *data.shape)
            + struct.pack("<dIQQ", abs_eb, self.dict_size, outliers.size, len(payload))
            + outliers.astype(np.int64).tobytes()
        )
        return header + payload

    @stream_errors
    def decompress(self, blob: bytes) -> np.ndarray:
        if blob[:4] != _MAGIC:
            raise ValueError("not an SZ stream (bad magic)")
        off = 4
        version, dts_len, ndim = struct.unpack_from("<BBB", blob, off)
        if version != _VERSION:
            raise ValueError(f"unsupported SZ version {version}")
        off += 3
        dtype = np.dtype(bytes(blob[off : off + dts_len]).decode("ascii"))
        off += dts_len
        shape = struct.unpack_from(f"<{ndim}q", blob, off)
        off += 8 * ndim
        abs_eb, dict_size, noutliers, payload_len = struct.unpack_from("<dIQQ", blob, off)
        off += struct.calcsize("<dIQQ")
        outliers = np.frombuffer(blob, dtype=np.int64, count=noutliers, offset=off).copy()
        off += 8 * noutliers

        huff = HuffmanX(adapter=self.adapter)
        symbols = huff.decompress_keys(blob[off : off + payload_len])
        delta = from_symbols(symbols, outliers).reshape(shape)
        xq = lorenzo_inverse(delta)
        return (xq.astype(np.float64) * (2.0 * abs_eb)).astype(dtype)

    def compression_ratio(self, data: np.ndarray, blob: bytes) -> float:
        return data.nbytes / len(blob)

    def max_error(self, data: np.ndarray, blob: bytes) -> float:
        back = self.decompress(blob)
        return float(np.max(np.abs(back.astype(np.float64) - data.astype(np.float64))))
