"""MGARD-GPU baseline: release-version execution profile.

The paper implements MGARD-X "based on the published algorithm designs"
of MGARD-GPU — the maths is shared; the difference is runtime behaviour.
This wrapper therefore reuses the MGARD-X transform but:

* disables context caching (fresh :class:`ContextCache` with capacity 1
  that is cleared after every call → every invocation reallocates), and
* carries the legacy execution profile used by the simulator benches
  (no overlapped pipeline, per-call allocations, ``mgard-gpu`` kernel
  throughputs).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import Config
from repro.core.context import ContextCache
from repro.compressors.baselines.profile import ExecutionProfile
from repro.compressors.mgard.compressor import MGARDX


class MGARDGPU(MGARDX):
    """Legacy-profile MGARD (functional twin of MGARD-X)."""

    profile = ExecutionProfile(
        name="mgard-gpu",
        kernel="mgard-gpu",
        context_caching=False,
        overlapped_pipeline=False,
    )

    def __init__(self, config: Config | None = None, adapter=None, **kwargs) -> None:
        super().__init__(config=config, adapter=adapter,
                         context_cache=ContextCache(capacity=1), **kwargs)

    def compress(self, data: np.ndarray) -> bytes:
        try:
            return super().compress(data)
        finally:
            # Release-version behaviour: nothing persists across calls.
            self.cache.clear()

    def decompress(self, blob: bytes) -> np.ndarray:
        try:
            return super().decompress(blob)
        finally:
            self.cache.clear()
