"""Baseline reduction routines the paper compares against.

These are *functional* reimplementations of the released GPU tools:

* :class:`~repro.compressors.baselines.sz.SZ` — cuSZ's dual-quantized
  Lorenzo predictor + Huffman (error-bounded lossy).
* :class:`~repro.compressors.baselines.lz4.LZ4` — byte-level LZ77 with
  an LZ4-flavoured block format (NVCOMP-LZ4 stand-in, lossless).
* :class:`~repro.compressors.baselines.mgard_gpu.MGARDGPU` and
  :class:`~repro.compressors.baselines.zfp_cuda.ZFPCUDA` — the same
  maths as MGARD-X / ZFP-X (the paper implements all pipelines "based
  on their published algorithm designs") but carrying the *legacy
  execution profile*: per-call allocations (no CMM) and no overlapped
  pipeline, which is what the performance studies compare.
"""

from repro.compressors.baselines.sz import SZ
from repro.compressors.baselines.lz4 import LZ4
from repro.compressors.baselines.mgard_gpu import MGARDGPU
from repro.compressors.baselines.zfp_cuda import ZFPCUDA
from repro.compressors.baselines.profile import ExecutionProfile, LEGACY_PROFILE, HPDR_PROFILE

__all__ = [
    "SZ",
    "LZ4",
    "MGARDGPU",
    "ZFPCUDA",
    "ExecutionProfile",
    "LEGACY_PROFILE",
    "HPDR_PROFILE",
]
