"""LZ4-flavoured lossless byte compressor (NVCOMP-LZ4 stand-in).

A greedy LZ77 with a 4-byte hash table and LZ4-style skip acceleration.
The sequence format mirrors LZ4's: a token byte packs literal/match
lengths (15 = continued in extra bytes), followed by literals, a 2-byte
little-endian match offset, and match-length continuation bytes.
Minimum match length 4, window 65 535 bytes.

On floating-point scientific data this achieves the ~1.1× ratios the
paper measures for NVCOMP-LZ4 (floats rarely repeat byte-exactly),
which is precisely why LZ4 fails to accelerate I/O in Fig. 17.
"""

from __future__ import annotations

import struct

import numpy as np
from repro.util import stream_errors

_MAGIC = b"LZ4X"
_VERSION = 1
_MIN_MATCH = 4
_WINDOW = 0xFFFF
_HASH_LOG = 16


def _hash4(word: int) -> int:
    return (word * 2654435761) >> (32 - _HASH_LOG) & ((1 << _HASH_LOG) - 1)


def _write_length(out: bytearray, n: int) -> None:
    while n >= 255:
        out.append(255)
        n -= 255
    out.append(n)


def compress_block(src: bytes) -> bytes:
    """Compress one block; always decodable by :func:`decompress_block`."""
    n = len(src)
    out = bytearray()
    if n == 0:
        return bytes(out)
    table = np.full(1 << _HASH_LOG, -1, dtype=np.int64)
    i = 0
    anchor = 0
    search_limit = n - _MIN_MATCH - 1
    step_counter = 0
    while i <= search_limit:
        word = int.from_bytes(src[i : i + 4], "little")
        h = _hash4(word)
        cand = int(table[h])
        table[h] = i
        if (
            cand >= 0
            and i - cand <= _WINDOW
            and src[cand : cand + 4] == src[i : i + 4]
        ):
            # Extend the match forward.
            m = i + 4
            c = cand + 4
            while m < n and src[m] == src[c]:
                m += 1
                c += 1
            lit = src[anchor:i]
            match_len = m - i
            _emit_sequence(out, lit, i - cand, match_len)
            i = m
            anchor = i
            step_counter = 0
        else:
            # LZ4-style acceleration: skip faster through incompressible runs.
            step_counter += 1
            i += 1 + (step_counter >> 6)
    # Trailing literals (offset 0 marks a literal-only sequence).
    lit = src[anchor:n]
    _emit_sequence(out, lit, 0, 0)
    return bytes(out)


def _emit_sequence(out: bytearray, literals: bytes, offset: int, match_len: int) -> None:
    lit_len = len(literals)
    ml = max(0, match_len - _MIN_MATCH)
    token = (min(lit_len, 15) << 4) | min(ml, 15)
    out.append(token)
    if lit_len >= 15:
        _write_length(out, lit_len - 15)
    out += literals
    out += struct.pack("<H", offset)
    if offset and ml >= 15:
        _write_length(out, ml - 15)


def decompress_block(blob: bytes, expected_size: int) -> bytes:
    out = bytearray()
    i = 0
    n = len(blob)
    while i < n:
        token = blob[i]
        i += 1
        lit_len = token >> 4
        if lit_len == 15:
            while True:
                b = blob[i]
                i += 1
                lit_len += b
                if b != 255:
                    break
        out += blob[i : i + lit_len]
        i += lit_len
        (offset,) = struct.unpack_from("<H", blob, i)
        i += 2
        if offset == 0:
            continue  # literal-only (final) sequence
        ml = token & 0xF
        if ml == 15:
            while True:
                b = blob[i]
                i += 1
                ml += b
                if b != 255:
                    break
        match_len = ml + _MIN_MATCH
        start = len(out) - offset
        if start < 0:
            raise ValueError("corrupt LZ4X stream: offset past start")
        for k in range(match_len):  # byte-wise: matches may self-overlap
            out.append(out[start + k])
    if len(out) != expected_size:
        raise ValueError(
            f"corrupt LZ4X stream: got {len(out)} bytes, expected {expected_size}"
        )
    return bytes(out)


class LZ4:
    """Container API over the block codec (shape/dtype preserving)."""

    def __init__(self, adapter=None) -> None:
        self.adapter = adapter  # accepted for API symmetry; host-side codec

    def compress(self, data: np.ndarray | bytes) -> bytes:
        if isinstance(data, (bytes, bytearray, memoryview)):
            raw = bytes(data)
            dts, shape = "|u1", (len(raw),)
        else:
            arr = np.ascontiguousarray(data)
            raw = arr.tobytes()
            dts, shape = arr.dtype.str, arr.shape
        body = compress_block(raw)
        dtb = dts.encode("ascii")
        header = (
            _MAGIC
            + struct.pack("<BBB", _VERSION, len(dtb), len(shape))
            + dtb
            + struct.pack(f"<{len(shape)}q", *shape)
            + struct.pack("<QQ", len(raw), len(body))
        )
        return header + body

    @stream_errors
    def decompress(self, blob: bytes) -> np.ndarray:
        if blob[:4] != _MAGIC:
            raise ValueError("not an LZ4X stream (bad magic)")
        off = 4
        version, dts_len, ndim = struct.unpack_from("<BBB", blob, off)
        if version != _VERSION:
            raise ValueError(f"unsupported LZ4X version {version}")
        off += 3
        dtype = np.dtype(bytes(blob[off : off + dts_len]).decode("ascii"))
        off += dts_len
        shape = struct.unpack_from(f"<{ndim}q", blob, off)
        off += 8 * ndim
        raw_len, body_len = struct.unpack_from("<QQ", blob, off)
        off += 16
        raw = decompress_block(blob[off : off + body_len], raw_len)
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()

    def compression_ratio(self, data: np.ndarray, blob: bytes) -> float:
        nbytes = len(data) if isinstance(data, (bytes, bytearray)) else data.nbytes
        return nbytes / len(blob)
