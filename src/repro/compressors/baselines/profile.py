"""Execution profiles: how a reduction routine behaves at runtime.

The paper's performance gap between MGARD-X and the release baselines
comes from *runtime behaviour*, not kernel maths: the baselines allocate
their working buffers on every call (contending on the shared runtime)
and run without an overlapped pipeline.  :class:`ExecutionProfile`
captures those behavioural knobs so the simulator can execute any
compressor under either regime — which is also how the ablation benches
isolate each optimization's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExecutionProfile:
    """Runtime behaviour of a reduction routine.

    Attributes
    ----------
    name:
        Label used in traces and bench tables.
    kernel:
        Key into :mod:`repro.perf.models` throughput tables.
    context_caching:
        CMM on/off: when False, every pipeline invocation re-allocates
        its reduction context through the shared runtime.
    overlapped_pipeline:
        Whether the Fig. 9 overlapped pipeline is used; legacy tools
        copy in, compute, copy out, strictly serially.
    allocs_per_call:
        Distinct buffer allocations one reduction call performs when not
        cached (input, output, several intermediates).
    """

    name: str
    kernel: str
    context_caching: bool
    overlapped_pipeline: bool
    allocs_per_call: int = 6


HPDR_PROFILE = ExecutionProfile(
    name="hpdr",
    kernel="mgard-x",
    context_caching=True,
    overlapped_pipeline=True,
)

LEGACY_PROFILE = ExecutionProfile(
    name="legacy",
    kernel="mgard-gpu",
    context_caching=False,
    overlapped_pipeline=False,
)


def profile_for(kernel: str) -> ExecutionProfile:
    """Default profile for a kernel name: -x pipelines are HPDR-style."""
    hpdr = kernel.endswith("-x")
    return ExecutionProfile(
        name="hpdr" if hpdr else "legacy",
        kernel=kernel,
        context_caching=hpdr,
        overlapped_pipeline=hpdr,
    )
