"""ZFP-CUDA baseline: release-version execution profile over ZFP maths.

Same fixed-rate codec as ZFP-X (the transform is defined by the zfp
specification, so the bitstreams agree); distinct runtime profile for
the performance studies: per-call allocations and no overlapped
pipeline, with ``zfp-cuda`` kernel throughputs — and, as in the paper's
evaluation, no HIP build (the perf model raises for MI250X).
"""

from __future__ import annotations

from repro.compressors.baselines.profile import ExecutionProfile
from repro.compressors.zfp.compressor import ZFPX


class ZFPCUDA(ZFPX):
    """Legacy-profile fixed-rate ZFP (functional twin of ZFP-X)."""

    profile = ExecutionProfile(
        name="zfp-cuda",
        kernel="zfp-cuda",
        context_caching=False,
        overlapped_pipeline=False,
    )
