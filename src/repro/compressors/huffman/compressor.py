"""Huffman-X compressor (paper Algorithm 2).

Stages and the abstractions that run them:

====================  =====================================
histogram             Global pipeline (DEM)
sort + filter         host-side (tiny)
two-phase codebook    host-side (tiny; treeless, canonical)
encode                Locality (GEM) — chunk per group
serialize             Global pipeline (DEM) — prefix sums
====================  =====================================

The bitstream is chunked: per-chunk bit offsets are embedded so
decompression parallelizes across chunks (the vectorized decoder steps
one symbol at a time across *all* chunks simultaneously).

Steady-state compression performs zero runtime memory management: every
working buffer — the padded key batch, code/length planes, prefix-sum
offsets, and the bitstream word buffer — lives in a
:class:`~repro.core.context.ReductionContext` keyed by the input
characteristics, so repeated reductions of same-shaped data reuse the
same memory (CMM, paper Section III-B).

The byte-level API additionally supports a chunk-parallel container
(``HUFP``): on a multi-threaded adapter the input is split into
independently coded segments compressed concurrently (NumPy releases
the GIL), each with its own reduction context so the CMM wiring stays
race-free.  The container is adapter-agnostic — bytes produced by the
parallel path decode bit-exactly on the serial adapter and vice versa.
"""

from __future__ import annotations

import struct
import threading
from typing import Sequence

import numpy as np

from repro.core.abstractions import global_pipeline, locality
from repro.core.context import ContextCache
from repro.core.functor import FnDomain, LocalityFunctor
from repro.compressors.huffman.bitstream import PAYLOAD_SLACK, pack_bits, pad_payload
from repro.compressors.huffman.codebook import (
    MAX_CODE_LENGTH,
    Codebook,
    build_codebook,
)
from repro.compressors.huffman.histogram import histogram
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import NULL_SPAN, Span, TRACER as _TRACER
from repro.util import hot_path, stream_errors

_MAGIC = b"HUFX"
_PAR_MAGIC = b"HUFP"
_VERSION = 1


def _span(name: str, **args):
    """Huffman stage span (shared NULL_SPAN when tracing is off).

    Never used inside ``@hot_path`` functions — span construction
    allocates, and the hot paths must stay allocation-free even under
    tracing; hot stages are wrapped at their call sites instead.
    """
    if not _TRACER.enabled:
        return NULL_SPAN
    return Span(_TRACER, name, "huffman", args)


def _count_bytes(nbytes_in: int, nbytes_out: int) -> None:
    """Byte-level API volume counters (key-level calls are not counted
    here so MGARD's nested Huffman usage is attributed to mgard only)."""
    if not _TRACER.enabled:
        return
    _METRICS.counter("hpdr_bytes_in_total", "bytes fed to compress()").inc(
        int(nbytes_in), codec="huffman"
    )
    _METRICS.counter("hpdr_bytes_out_total", "compressed bytes produced").inc(
        int(nbytes_out), codec="huffman"
    )

#: Minimum bytes per parallel segment — below this the per-segment
#: codebook/container overhead outweighs the thread-level speedup.
_MIN_SEGMENT_BYTES = 1 << 16


def _rle_encode(lengths: np.ndarray) -> bytes:
    """Run-length encode a code-length table (mostly-zero for sparse
    alphabets).  Falls back to raw bytes when RLE would be larger."""
    raw = lengths.astype(np.uint8).tobytes()
    if lengths.size == 0:
        return b"\x00" + raw
    change = np.flatnonzero(np.diff(lengths)) + 1
    starts = np.concatenate([[0], change])
    counts = np.diff(np.concatenate([starts, [lengths.size]]))
    values = lengths[starts].astype(np.uint8)
    # Split runs longer than the 16-bit count field; every piece is the
    # full 0xFFFF except the last piece of each run.
    pieces = -(-counts // 0xFFFF)
    run_values = np.repeat(values, pieces)
    run_counts = np.full(run_values.size, 0xFFFF, dtype=np.uint16)
    last = np.cumsum(pieces) - 1
    run_counts[last] = (counts - (pieces - 1) * 0xFFFF).astype(np.uint16)
    packed = np.empty(run_values.size, dtype=np.dtype("<u2, u1"))
    packed["f0"] = run_counts
    packed["f1"] = run_values
    rle = struct.pack("<I", run_values.size) + packed.tobytes()
    if len(rle) < len(raw):
        return b"\x01" + rle
    return b"\x00" + raw


def _rle_decode(blob: bytes, offset: int, count: int) -> tuple[np.ndarray, int]:
    """Invert :func:`_rle_encode`; returns (lengths, bytes consumed)."""
    mode = blob[offset]
    pos = offset + 1
    if mode == 0:
        out = np.frombuffer(blob, dtype=np.uint8, count=count, offset=pos).copy()
        return out, 1 + count
    (nruns,) = struct.unpack_from("<I", blob, pos)
    pos += 4
    packed = np.frombuffer(blob, dtype=np.dtype("<u2, u1"), count=nruns, offset=pos)
    pos += 3 * nruns
    counts = packed["f0"].astype(np.int64)
    if int(counts.sum()) != count:
        raise ValueError(
            f"corrupt RLE length table: {int(counts.sum())} != {count}"
        )
    out = np.repeat(packed["f1"], counts)
    return out, pos - offset


class _EncodeFunctor(LocalityFunctor):
    """Locality stage: map each key in a chunk to (code << 8) | length.

    The codebook is fused into a single lookup table so each key costs
    one gather; callers split the planes back out with shift/mask.  An
    optional reduction context supplies persistent output scratch so the
    steady state allocates nothing.  ``per_thread`` scopes that scratch
    by pool-thread identity — required only when an adapter fans one
    context's batch out across threads; a context used by one caller at
    a time (serial path, HUFP segments) keeps a single deterministic
    buffer so which pool thread runs it never triggers an allocation.
    """

    name = "huffman.encode"
    bytes_per_element = 10.0
    reuses_output = True

    def __init__(
        self,
        codes: np.ndarray,
        lengths: np.ndarray,
        ctx=None,
        per_thread: bool = False,
    ) -> None:
        self._lut = (codes.astype(np.uint32) << np.uint32(8)) | lengths.astype(
            np.uint32
        )
        self._ctx = ctx
        self._per_thread = per_thread

    @hot_path(reason="Locality encode stage; one gather per key")
    def apply(self, blocks: np.ndarray) -> np.ndarray:
        flat = blocks.reshape(-1)
        if self._ctx is not None:
            name = (
                f"enc.out:{threading.get_ident()}"
                if self._per_thread
                else "enc.out"
            )
            out = self._ctx.scratch(name, flat.size, np.uint32)
        else:
            # hpdrlint: disable=HPL001 — documented ctx=None fallback path
            out = np.empty(flat.size, dtype=np.uint32)
        # Key range was validated by the histogram stage; "clip" skips a
        # second bounds-check pass.
        np.take(self._lut, flat, out=out, mode="clip")
        return out.reshape(blocks.shape)


def _map_tasks(adapter, fn, items):
    """Run ``fn`` over ``items`` via the adapter's task pool (serial
    fallback when no adapter is bound)."""
    if adapter is None:
        return [fn(x) for x in items]
    return adapter.map_tasks(fn, items)


class HuffmanX:
    """HPDR Huffman lossless compressor.

    Parameters
    ----------
    adapter:
        Device adapter (defaults to serial).  Multi-threaded adapters
        additionally parallelize the byte-level API across independent
        segments (``HUFP`` container).
    chunk_size:
        Symbols per encoding chunk — the Locality block size and the
        decode-parallelism grain.
    context_cache:
        Optional CMM cache; codebooks are *not* cached (they depend on
        the data), but all working buffers are: after a warm-up call,
        same-shaped compressions allocate nothing.
    """

    def __init__(
        self,
        adapter=None,
        chunk_size: int = 1024,
        context_cache: ContextCache | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.adapter = adapter
        self.chunk_size = chunk_size
        self.cache = context_cache if context_cache is not None else ContextCache()

    @classmethod
    def tunable_knobs(cls) -> tuple:
        """Tunable-knob declarations (see ``codec_knob_declarations``).

        ``chunk_size`` is serialized into the HUFP container, so it is
        declared ``stream_affecting``: the auto-tuner may propose other
        values, but its byte-identity guard rejects every one — the
        declaration documents the constraint and exercises the guard.
        """
        return (
            {"name": "chunk_size", "values": (512, 1024, 2048, 4096),
             "default": 1024, "stream_affecting": True},
        )

    # ------------------------------------------------------------------
    # Key-level API (alphabet supplied by the caller)
    # ------------------------------------------------------------------
    def compress_keys(self, keys: np.ndarray, num_symbols: int) -> bytes:
        """Compress an integer key array with values in [0, num_symbols)."""
        keys = np.ascontiguousarray(keys)
        if not np.issubdtype(keys.dtype, np.integer):
            raise TypeError(f"keys must be integers, got {keys.dtype}")
        ctx = self._key_context(keys.shape, keys.dtype, num_symbols, tag=None,
                                pin=True)
        try:
            return self._compress_keys(keys, num_symbols, ctx, self.adapter)
        finally:
            self.cache.release(ctx)

    def _key_context(self, shape, dtype, num_symbols: int, tag, pin=False):
        """CMM context for one key-stream shape.

        The key matches between encode and decode (buffer names are
        disjoint), so decompressing what was just compressed reuses the
        compression context instead of opening a second one.  ``pin``
        holds the context safe from LRU eviction while a call is in
        flight (many concurrent HUFP segments can exceed the cache
        capacity); callers release in a ``finally``.
        """
        n = int(np.prod(shape)) if shape else 1
        return self.cache.get(
            (
                "huffman",
                tag,
                tuple(shape),
                np.dtype(dtype).str,
                int(num_symbols),
                self._effective_chunk(n),
            ),
            pin=pin,
        )

    def _compress_keys(self, keys: np.ndarray, num_symbols: int, ctx, adapter) -> bytes:
        shape = keys.shape
        flat = keys.reshape(-1)
        n = flat.size

        with _span("huffman.histogram", symbols=num_symbols, keys=n):
            freqs = histogram(flat, num_symbols, adapter=adapter)
        with _span("huffman.codebook", symbols=num_symbols):
            book = build_codebook(freqs)

        if n == 0:
            payload = np.zeros(0, dtype=np.uint8)
            chunk_offsets = np.zeros(0, dtype=np.uint64)
            chunk = self.chunk_size
        else:
            chunk = self._effective_chunk(n)
            nchunks = -(-n // chunk)
            m = nchunks * chunk
            if m != n:
                # Edge-pad to a whole number of chunks in persistent
                # scratch; the padding tail writes no bits (length 0).
                padded = ctx.scratch("enc.keys_padded", m, flat.dtype)
                padded[:n] = flat
                padded[n:] = flat[-1]
            else:
                padded = flat

            # encode: Locality over chunks — each key independent.
            with _span("huffman.encode", keys=n, chunk=chunk):
                enc = locality(
                    padded,
                    _EncodeFunctor(
                        book.codes,
                        book.lengths,
                        ctx=ctx,
                        per_thread=adapter is not None,
                    ),
                    block_shape=(chunk,),
                    adapter=adapter,
                    pad_mode="edge",
                    reassemble=False,
                    ctx=ctx,
                )  # (nchunks, chunk) uint32, (code << 8) | length
            flat_enc = enc.reshape(-1)
            lens = ctx.scratch("enc.lens", m, np.int64)
            np.copyto(lens, flat_enc)
            lens &= 0xFF
            lens[n:] = 0  # padding tail writes no bits
            codes = ctx.scratch("enc.codes", m, np.uint64)
            np.copyto(codes, flat_enc)
            codes >>= np.uint64(8)

            # serialize: Global pipeline — prefix-sum bit offsets.
            def _offsets(lengths: np.ndarray) -> np.ndarray:
                off = ctx.scratch("enc.offsets", m, np.int64)
                np.cumsum(lengths, out=off)
                np.subtract(off, lengths, out=off)
                return off

            with _span("huffman.serialize", keys=n):
                offsets = global_pipeline(
                    lens,
                    FnDomain(
                        _offsets, name="huffman.serialize", bytes_per_element=16.0
                    ),
                    adapter=adapter,
                )
                chunk_offsets = offsets[::chunk].astype(np.uint64)
                assert chunk_offsets.size == nchunks
                total_bits = int(offsets[-1] + lens[-1])
                payload = pack_bits(
                    codes, lens, total_bits=total_bits, offsets=offsets, ctx=ctx
                )

        return self._serialize(
            shape, keys.dtype, num_symbols, n, book, chunk_offsets, payload, chunk
        )

    # ------------------------------------------------------------------
    # Batched key-level API (uniform shape/dtype, one launch per stage)
    # ------------------------------------------------------------------
    def compress_keys_batch(
        self, keys_list: Sequence[np.ndarray], num_symbols: int
    ) -> list[bytes]:
        """Compress N same-shape/same-dtype key arrays in one launch per stage.

        Byte-identical to calling :meth:`compress_keys` per array.  The
        codebooks stay per-item (they are data-dependent), but every
        array stage fuses across the batch: one offset-bincount histogram,
        one Locality encode gather over per-item lookup tables laid side
        by side, one 2-D prefix-sum serialize pass, and one
        :func:`~repro.compressors.huffman.bitstream.pack_bits` call over
        word-aligned per-item bit ranges.  Raises ``ValueError`` on
        non-uniform inputs (callers fall back to per-item execution).
        """
        keys_list = [np.ascontiguousarray(k) for k in keys_list]
        if not keys_list:
            return []
        first = keys_list[0]
        if not np.issubdtype(first.dtype, np.integer):
            raise TypeError(f"keys must be integers, got {first.dtype}")
        shape, dtype = first.shape, first.dtype
        for k in keys_list[1:]:
            if k.shape != shape or k.dtype != dtype:
                raise ValueError(
                    "compress_keys_batch requires uniform shape/dtype, got "
                    f"{k.shape}/{k.dtype} vs {shape}/{dtype}"
                )
        n = first.size
        if len(keys_list) == 1 or n == 0:
            return [self.compress_keys(k, num_symbols) for k in keys_list]

        ctx = self._key_context(shape, dtype, num_symbols, tag="batch",
                                pin=True)
        try:
            return self._compress_keys_batch(
                keys_list, num_symbols, ctx, self.adapter
            )
        finally:
            self.cache.release(ctx)

    def _compress_keys_batch(
        self, keys_list, num_symbols: int, ctx, adapter
    ) -> list[bytes]:
        shape, dtype = keys_list[0].shape, keys_list[0].dtype
        nbatch = len(keys_list)
        n = keys_list[0].size
        chunk = self._effective_chunk(n)
        nchunks = -(-n // chunk)
        m = nchunks * chunk

        # Stage every item's padded keys side by side, offset by
        # i*num_symbols: gathers through the concatenated per-item
        # lookup tables below then index the right item's table.
        staged = ctx.scratch("batch.enc.keys", nbatch * m, np.int64)
        staged2d = staged.reshape(nbatch, m)
        for i, k in enumerate(keys_list):
            flat = k.reshape(-1)
            np.copyto(staged2d[i, :n], flat, casting="unsafe")
            staged2d[i, n:] = staged2d[i, n - 1]
        lo = staged2d.min(axis=1)
        hi = staged2d.max(axis=1)
        if int(lo.min()) < 0 or int(hi.max()) >= num_symbols:
            raise ValueError(
                f"keys outside [0, {num_symbols}): range "
                f"[{int(lo.min())}, {int(hi.max())}]"
            )

        # histogram: one offset bincount for the whole batch (DEM), then
        # remove the edge-padding tail's contribution per item — counts
        # match the per-item histogram exactly (integer arithmetic).
        with _span("huffman.histogram", symbols=num_symbols,
                   keys=n, batch=nbatch):
            bases = np.arange(nbatch, dtype=np.int64) * num_symbols
            staged2d += bases[:, None]

            def _counts(flat_keys: np.ndarray) -> np.ndarray:
                return np.bincount(
                    flat_keys, minlength=nbatch * num_symbols
                ).astype(np.int64)

            freqs2d = global_pipeline(
                staged,
                FnDomain(_counts, name="huffman.histogram",
                         bytes_per_element=12.0),
                adapter=adapter,
            ).reshape(nbatch, num_symbols)
            if m != n:
                pad_keys = staged2d[:, n - 1] - bases
                freqs2d[np.arange(nbatch, dtype=np.int64), pad_keys] -= m - n

        with _span("huffman.codebook", symbols=num_symbols, batch=nbatch):
            books = [build_codebook(freqs2d[i]) for i in range(nbatch)]

        # encode: one Locality launch through the concatenated tables.
        with _span("huffman.encode", keys=n, chunk=chunk, batch=nbatch):
            all_codes = np.concatenate([b.codes for b in books])
            all_lengths = np.concatenate([b.lengths for b in books])
            enc = locality(
                staged,
                _EncodeFunctor(
                    all_codes, all_lengths, ctx=ctx,
                    per_thread=adapter is not None,
                ),
                block_shape=(chunk,),
                adapter=adapter,
                pad_mode="edge",
                reassemble=False,
                ctx=ctx,
            )
        flat_enc = enc.reshape(-1)
        lens = ctx.scratch("batch.enc.lens", nbatch * m, np.int64)
        np.copyto(lens, flat_enc)
        lens &= 0xFF
        lens2d = lens.reshape(nbatch, m)
        lens2d[:, n:] = 0  # padding tails write no bits
        codes = ctx.scratch("batch.enc.codes", nbatch * m, np.uint64)
        np.copyto(codes, flat_enc)
        codes >>= np.uint64(8)

        # serialize: one 2-D prefix-sum pass (DEM), then a single
        # pack_bits over per-item word-aligned bit ranges.  Item i's
        # payload starts at word ``wbase[i]``; codes never spill past a
        # word-aligned item end (their high spill at the boundary is
        # zero), so each item's byte slice equals its solo pack.
        def _offsets(lengths: np.ndarray) -> np.ndarray:
            off = ctx.scratch("batch.enc.offsets", nbatch * m, np.int64)
            off2d = off.reshape(nbatch, m)
            np.cumsum(lengths.reshape(nbatch, m), axis=1, out=off2d)
            np.subtract(off2d, lengths.reshape(nbatch, m), out=off2d)
            return off

        with _span("huffman.serialize", keys=n, batch=nbatch):
            offsets = global_pipeline(
                lens,
                FnDomain(_offsets, name="huffman.serialize",
                         bytes_per_element=16.0),
                adapter=adapter,
            )
            off2d = offsets.reshape(nbatch, m)
            totals = off2d[:, -1] + lens2d[:, -1]  # bits per item
            nwords = (totals + 63) >> 6
            wbase = np.concatenate([[0], np.cumsum(nwords)[:-1]])
            goff = ctx.scratch("batch.pack.offsets", nbatch * m, np.int64)
            goff2d = goff.reshape(nbatch, m)
            np.add(off2d, (wbase << 6)[:, None], out=goff2d)
            total_bits = int(wbase[-1] * 64 + totals[-1])
            packed = pack_bits(
                codes, lens, total_bits=total_bits, offsets=goff, ctx=ctx
            )

        blobs = []
        for i, book in enumerate(books):
            start = int(wbase[i]) * 8
            nbytes = (int(totals[i]) + 7) >> 3
            chunk_offsets = off2d[i, ::chunk].astype(np.uint64)
            blobs.append(
                self._serialize(
                    shape, dtype, num_symbols, n, book, chunk_offsets,
                    packed[start : start + nbytes], chunk,
                )
            )
        return blobs

    def decompress_keys_batch(self, blobs: Sequence[bytes]) -> list[np.ndarray]:
        """Decompress N uniform ``HUFX`` streams with one fused decode loop.

        The streams must agree on shape, dtype, alphabet and chunking
        (their codebooks and payloads may differ); otherwise
        ``ValueError`` and callers fall back per stream.  Results match
        :meth:`decompress_keys` exactly: the vectorized symbol loop runs
        the same per-lane arithmetic, just across all streams' chunks at
        once.
        """
        blobs = list(blobs)
        if not blobs:
            return []
        if len(blobs) == 1:
            return [self.decompress_keys(blobs[0])]
        return self._decompress_keys_batch(blobs, tag="batch")

    def _decompress_keys_batch(self, blobs, tag) -> list[np.ndarray]:
        parsed = [self._deserialize(b) for b in blobs]
        shape, dtype, num_symbols, n = parsed[0][:4]
        chunk_size = parsed[0][7]
        for p in parsed[1:]:
            if (p[0], p[1], p[2], p[3], p[7]) != (
                shape, dtype, num_symbols, n, chunk_size
            ):
                raise ValueError(
                    "decompress_keys_batch requires uniform stream "
                    "geometry (shape/dtype/alphabet/chunking)"
                )
        if n == 0:
            return [np.zeros(shape, dtype=dtype) for _ in parsed]

        nchunks = parsed[0][5].size
        rem = n - (nchunks - 1) * chunk_size
        if not 1 <= rem <= chunk_size:
            raise ValueError(
                f"corrupt stream: {n} symbols cannot fill {nchunks} chunks "
                f"of {chunk_size}"
            )
        for p in parsed[1:]:
            if p[5].size != nchunks:
                raise ValueError(
                    "decompress_keys_batch requires uniform chunk counts"
                )

        ctx = self._key_context(shape, dtype, num_symbols, tag, pin=True)
        try:
            with _span("huffman.decode", keys=n, chunks=nchunks,
                       batch=len(parsed)):
                return self._decode_chunks_batch(
                    ctx, parsed, chunk_size, nchunks, rem, n, shape, dtype
                )
        finally:
            self.cache.release(ctx)

    @hot_path(reason="fused batch decode loop; zero-alloc via batch.dec.*")
    def _decode_chunks_batch(
        self, ctx, parsed, chunk_size, nchunks, rem, n, shape, dtype
    ) -> list[np.ndarray]:
        nbatch = len(parsed)
        books = [p[4] for p in parsed]
        payloads = [p[6] for p in parsed]
        # One shared window width: a decode table only needs width >=
        # max code length, and wider tables decode identically (extra
        # low bits select replicated entries).
        width = max(1, max(b.max_length for b in books))
        tsize = 1 << width

        # Per-item combined (length << 32) | symbol tables, side by side.
        comb = ctx.scratch("batch.dec.comb", nbatch * tsize, np.int64)
        comb2d = comb.reshape(nbatch, tsize)
        for i, book in enumerate(books):
            sym_table, len_table, _ = book.decode_table(width)
            np.copyto(comb2d[i], len_table)
            comb2d[i] <<= 32
            comb2d[i] |= sym_table

        # Concatenate padded payloads (each keeps its own 4 slack zero
        # bytes, so per-item windows read exactly what a solo decode
        # reads) and precompute the 32-bit window at every byte.
        starts = ctx.scratch("batch.dec.starts", nbatch, np.int64)
        for i, p in enumerate(payloads):
            starts[i] = p.size + PAYLOAD_SLACK
        np.cumsum(starts, out=starts)
        total = int(starts[-1])
        for i in range(nbatch - 1, 0, -1):  # inclusive -> exclusive sums
            starts[i] = starts[i - 1]
        starts[0] = 0
        conc = ctx.scratch("batch.dec.payload", total, np.uint8)
        for i, p in enumerate(payloads):
            s = int(starts[i])
            conc[s : s + p.size] = p
            conc[s + p.size : s + p.size + PAYLOAD_SLACK] = 0
        nwin = total - PAYLOAD_SLACK + 1
        win = ctx.scratch("batch.dec.win", nwin, np.int64)
        np.copyto(win, conc[:nwin])
        for byte in range(1, 4):
            win <<= 8
            win |= conc[byte : byte + nwin]

        # Row layout is chunk-major (row = c*nbatch + i): every item's
        # short last chunk lands in the final nbatch rows, so the tail
        # slice of the per-item decoder generalizes to ``[:-nbatch]``.
        rows = nchunks * nbatch
        out = ctx.scratch("batch.dec.out", rows * chunk_size, np.int64)
        out2d = out.reshape(rows, chunk_size)
        pos = ctx.scratch("batch.dec.pos", rows, np.int64)
        pos2d = pos.reshape(nchunks, nbatch)
        for i, p in enumerate(parsed):
            np.copyto(pos2d[:, i], p[5], casting="unsafe")
        byte_base = ctx.scratch("batch.dec.bbase", rows, np.int64)
        np.copyto(byte_base.reshape(nchunks, nbatch), starts[None, :])
        comb_base = ctx.scratch("batch.dec.cbase", rows, np.int64)
        idx = ctx.scratch("batch.dec.idx", nbatch, np.int64)
        idx.fill(tsize)
        np.cumsum(idx, out=idx)
        idx -= tsize  # [0, tsize, 2*tsize, ...] without an arange alloc
        np.copyto(comb_base.reshape(nchunks, nbatch), idx[None, :])

        wshift = 32 - width
        wmask = (1 << width) - 1
        scr = [
            ctx.scratch(f"batch.dec.scr{i}", rows, np.int64) for i in range(3)
        ]
        full = (pos, out2d, byte_base, comb_base, *scr)
        tail = (
            tuple(a[:-nbatch] for a in (pos, out2d, byte_base, comb_base, *scr))
            if nchunks > 1
            else full
        )

        for step in range(chunk_size):
            if step < rem:
                p, o, bb, cb, b, s, w = full
            elif nchunks == 1:
                break
            else:
                p, o, bb, cb, b, s, w = tail
            np.right_shift(p, 3, out=b)
            np.add(b, bb, out=b)
            np.take(win, b, out=w, mode="clip")
            np.bitwise_and(p, 7, out=s)
            np.subtract(wshift, s, out=s)
            np.right_shift(w, s, out=w)
            np.bitwise_and(w, wmask, out=w)
            np.add(w, cb, out=w)
            np.take(comb, w, out=b)
            np.right_shift(b, 32, out=s)
            np.add(p, s, out=p)
            np.bitwise_and(b, 0xFFFFFFFF, out=b)
            o[:, step] = b

        out3d = out2d.reshape(nchunks, nbatch, chunk_size)
        # Results must leave context memory (poisoned on eviction).
        # hpdrlint: disable=HPL001 — results handed to the caller
        return [
            out3d[:, i, :].reshape(-1)[:n].astype(dtype).reshape(shape)
            for i in range(nbatch)
        ]

    def _effective_chunk(self, n: int) -> int:
        """Chunk size actually used for ``n`` symbols.

        The vectorized decoder runs ``chunk`` sequential steps over
        ``n/chunk``-element arrays, so per-step dispatch overhead is
        minimized around ``chunk ≈ sqrt(n)``.  The floor of 256 keeps
        the 8-byte-per-chunk offset table small relative to the payload
        on low-entropy streams; ``self.chunk_size`` stays the upper
        bound.  The stream records the choice, so decoders need no
        knowledge of this heuristic.
        """
        target = max(1.0, (2.0 * n) ** 0.5)
        chunk = 1 << max(0, round(float(np.log2(target))))
        return max(1, min(self.chunk_size, max(256, chunk)))

    @stream_errors
    def decompress_keys(self, blob: bytes) -> np.ndarray:
        """Invert :meth:`compress_keys`; returns the original key array."""
        return self._decompress_keys(blob, tag=None)

    def _decompress_keys(self, blob: bytes, tag) -> np.ndarray:
        (
            shape,
            dtype,
            num_symbols,
            n,
            book,
            chunk_offsets,
            payload,
            chunk_size,
        ) = self._deserialize(blob)
        if n == 0:
            return np.zeros(shape, dtype=dtype)

        nchunks = chunk_offsets.size
        rem = n - (nchunks - 1) * chunk_size
        if not 1 <= rem <= chunk_size:
            raise ValueError(
                f"corrupt stream: {n} symbols cannot fill {nchunks} chunks "
                f"of {chunk_size}"
            )

        ctx = self._key_context(shape, dtype, num_symbols, tag, pin=True)
        try:
            # Span wraps the call site, not the @hot_path body, so the
            # decode loop stays allocation-free under tracing too.
            with _span("huffman.decode", keys=n, chunks=nchunks):
                return self._decode_chunks(
                    ctx, book, chunk_offsets, payload, chunk_size, nchunks,
                    rem, n, shape, dtype,
                )
        finally:
            self.cache.release(ctx)

    @hot_path(reason="vectorized symbol loop; zero-alloc via dec.* scratch")
    def _decode_chunks(
        self, ctx, book, chunk_offsets, payload, chunk_size, nchunks, rem,
        n, shape, dtype,
    ) -> np.ndarray:
        width = max(1, book.max_length)
        sym_table, len_table, width = book.decode_table(width)
        out = ctx.buffer("dec.out", (nchunks, chunk_size), np.int64)
        pos = ctx.buffer("dec.pos", (nchunks,), np.int64)
        np.copyto(pos, chunk_offsets, casting="unsafe")

        # Combined (length << 32) | symbol table: one gather per decoded
        # symbol instead of two.
        comb = ctx.scratch("dec.comb", 1 << width, np.int64)
        np.copyto(comb, len_table)
        comb <<= 32
        comb |= sym_table

        # Precompute the 32-bit big-endian window starting at every
        # payload byte: the inner loop then needs one int64 gather where
        # four byte-gathers plus widening shifts used to run per step.
        padded = pad_payload(payload, ctx=ctx)
        nwin = payload.size + 1
        win = ctx.scratch("dec.win", nwin, np.int64)
        np.copyto(win, padded[:nwin])
        for byte in range(1, 4):
            win <<= 8
            win |= padded[byte : byte + nwin]

        wshift = 32 - width
        wmask = (1 << width) - 1
        scr = [
            ctx.buffer(f"dec.scr{i}", (nchunks,), np.int64) for i in range(3)
        ]
        full = (pos, out, *scr)
        tail = (
            tuple(a[:-1] for a in (pos, out, *scr)) if nchunks > 1 else full
        )

        # One symbol per step across all still-active chunks; only the
        # last chunk can run short, so "active" is a cheap slice.  Every
        # operand below lives in context scratch: the loop allocates
        # nothing.
        for step in range(chunk_size):
            if step < rem:
                p, o, b, s, w = full
            elif nchunks == 1:
                break
            else:
                p, o, b, s, w = tail
            np.right_shift(p, 3, out=b)
            np.take(win, b, out=w, mode="clip")
            np.bitwise_and(p, 7, out=s)
            np.subtract(wshift, s, out=s)
            np.right_shift(w, s, out=w)
            np.bitwise_and(w, wmask, out=w)
            np.take(comb, w, out=b)
            np.right_shift(b, 32, out=s)
            np.add(p, s, out=p)
            np.bitwise_and(b, 0xFFFFFFFF, out=b)
            o[:, step] = b
        # The result must leave context memory (the context may be
        # evicted and poisoned after release) — this is the one
        # allocation a decode call is allowed.
        # hpdrlint: disable=HPL001 — result handed to the caller
        return out.reshape(-1)[:n].astype(dtype).reshape(shape)

    # ------------------------------------------------------------------
    # Byte-level lossless API (arbitrary arrays/buffers)
    # ------------------------------------------------------------------
    def _num_segments(self, nbytes: int) -> int:
        width = 1 if self.adapter is None else self.adapter.parallel_width()
        if width <= 1:
            return 1
        return max(1, min(width, nbytes // _MIN_SEGMENT_BYTES))

    def compress(self, data: np.ndarray | bytes) -> bytes:
        """Losslessly compress arbitrary data as a uint8 symbol stream.

        On a multi-threaded adapter, large inputs are split into
        chunk-aligned segments compressed concurrently, each with its
        own reduction context (``HUFP`` container); the result decodes
        bit-exactly on every adapter.
        """
        if isinstance(data, (bytes, bytearray, memoryview)):
            arr = np.frombuffer(bytes(data), dtype=np.uint8)
            meta = ("|u1", (arr.size,))
        else:
            arr = np.ascontiguousarray(data)
            meta = (arr.dtype.str, arr.shape)
        keys = arr.reshape(-1).view(np.uint8)
        header = _pack_meta(meta[0], meta[1])

        nseg = self._num_segments(keys.size)
        if nseg <= 1:
            blob = header + self.compress_keys(keys, 256)
            _count_bytes(keys.size, len(blob))
            return blob

        seg = -(-keys.size // nseg)
        seg = -(-seg // self.chunk_size) * self.chunk_size  # chunk-aligned
        bounds = list(range(0, keys.size, seg)) + [keys.size]
        nseg = len(bounds) - 1

        def _one(i: int) -> bytes:
            part = keys[bounds[i] : bounds[i + 1]]
            ctx = self._key_context(part.shape, part.dtype, 256, tag=i, pin=True)
            try:
                return self._compress_keys(part, 256, ctx, None)
            finally:
                self.cache.release(ctx)

        parts = _map_tasks(self.adapter, _one, range(nseg))
        body = (
            _PAR_MAGIC
            + struct.pack("<BI", _VERSION, nseg)
            + struct.pack(f"<{nseg}Q", *(len(p) for p in parts))
            + b"".join(parts)
        )
        blob = header + body
        _count_bytes(keys.size, len(blob))
        return blob

    @stream_errors
    def decompress(self, blob: bytes) -> np.ndarray:
        dtype_str, shape, used = _unpack_meta(blob)
        body = blob[used:]
        if body[:4] == _PAR_MAGIC:
            keys = self._decompress_segments(body)
        else:
            keys = self.decompress_keys(body)
        return keys.astype(np.uint8).view(np.dtype(dtype_str)).reshape(shape)

    def _decompress_segments(self, body: bytes) -> np.ndarray:
        version, nseg = struct.unpack_from("<BI", body, 4)
        if version != _VERSION:
            raise ValueError(f"unsupported Huffman-X version {version}")
        off = 4 + struct.calcsize("<BI")
        seg_lens = struct.unpack_from(f"<{nseg}Q", body, off)
        off += 8 * nseg
        segments = []
        for i, length in enumerate(seg_lens):
            segments.append((i, body[off : off + length]))
            off += length

        parts = _map_tasks(
            self.adapter, lambda t: self._decompress_keys(t[1], tag=t[0]), segments
        )
        if not parts:
            return np.zeros(0, dtype=np.uint8)
        return np.concatenate([p.reshape(-1) for p in parts])

    # ------------------------------------------------------------------
    # Byte-level batched API (serve fast path)
    # ------------------------------------------------------------------
    def compress_batch(self, arrays: Sequence) -> list[bytes]:
        """Compress N uniform-(shape, dtype) inputs, one launch per stage.

        Byte-identical to per-item :meth:`compress` — the container
        choice (``HUFX`` vs chunk-parallel ``HUFP``) depends only on the
        uniform input size, and each segment index is key-batch
        compressed across all N inputs.  Raises ``ValueError`` for
        non-uniform batches (the serve worker then falls back to
        per-item execution).
        """
        datas = list(arrays)
        if not datas:
            return []
        if len(datas) == 1:
            return [self.compress(datas[0])]
        prepared = []
        for data in datas:
            if isinstance(data, (bytes, bytearray, memoryview)):
                arr = np.frombuffer(bytes(data), dtype=np.uint8)
                meta = ("|u1", (arr.size,))
            else:
                arr = np.ascontiguousarray(data)
                meta = (arr.dtype.str, arr.shape)
            prepared.append((arr.reshape(-1).view(np.uint8), meta))
        meta = prepared[0][1]
        for _, m in prepared[1:]:
            if m != meta:
                raise ValueError(
                    f"compress_batch requires uniform shape/dtype, got "
                    f"{m} vs {meta}"
                )
        keys_list = [p[0] for p in prepared]
        nbytes = keys_list[0].size
        header = _pack_meta(meta[0], meta[1])

        nseg = self._num_segments(nbytes)
        if nseg <= 1:
            blobs = [
                header + body
                for body in self.compress_keys_batch(keys_list, 256)
            ]
            for b in blobs:
                _count_bytes(nbytes, len(b))
            return blobs

        seg = -(-nbytes // nseg)
        seg = -(-seg // self.chunk_size) * self.chunk_size  # chunk-aligned
        bounds = list(range(0, nbytes, seg)) + [nbytes]
        nseg = len(bounds) - 1

        def _one_index(i: int) -> list[bytes]:
            parts = [k[bounds[i] : bounds[i + 1]] for k in keys_list]
            ctx = self._key_context(
                parts[0].shape, parts[0].dtype, 256, tag=("batch", i),
                pin=True,
            )
            try:
                return self._compress_keys_batch(parts, 256, ctx, None)
            finally:
                self.cache.release(ctx)

        by_index = _map_tasks(self.adapter, _one_index, range(nseg))
        blobs = []
        for j in range(len(datas)):
            parts = [by_index[i][j] for i in range(nseg)]
            body = (
                _PAR_MAGIC
                + struct.pack("<BI", _VERSION, nseg)
                + struct.pack(f"<{nseg}Q", *(len(p) for p in parts))
                + b"".join(parts)
            )
            blobs.append(header + body)
            _count_bytes(nbytes, len(blobs[-1]))
        return blobs

    @stream_errors
    def decompress_batch(self, blobs: Sequence[bytes]) -> list[np.ndarray]:
        """Invert :meth:`compress_batch` with one fused decode per stage.

        Requires uniform stream metadata and container layout (what a
        uniform :meth:`compress_batch` produces); ``ValueError``
        otherwise, and callers fall back per stream.
        """
        blobs = list(blobs)
        if not blobs:
            return []
        if len(blobs) == 1:
            return [self.decompress(blobs[0])]
        metas = [_unpack_meta(b) for b in blobs]
        dtype_str, shape, used = metas[0]
        for m in metas[1:]:
            if m[:2] != (dtype_str, shape):
                raise ValueError(
                    "decompress_batch requires uniform stream headers"
                )
        bodies = [b[m[2]:] for b, m in zip(blobs, metas)]
        pars = [body[:4] == _PAR_MAGIC for body in bodies]
        if any(pars) and not all(pars):
            raise ValueError(
                "decompress_batch requires uniform container layout"
            )
        if not pars[0]:
            keys_list = self.decompress_keys_batch(bodies)
        else:
            keys_list = self._decompress_segments_batch(bodies)
        return [
            k.astype(np.uint8).view(np.dtype(dtype_str)).reshape(shape)
            for k in keys_list
        ]

    def _decompress_segments_batch(self, bodies: list) -> list[np.ndarray]:
        """Batch-decode ``HUFP`` containers, segment index by index."""
        split = []
        nseg0 = None
        for body in bodies:
            version, nseg = struct.unpack_from("<BI", body, 4)
            if version != _VERSION:
                raise ValueError(f"unsupported Huffman-X version {version}")
            if nseg0 is None:
                nseg0 = nseg
            elif nseg != nseg0:
                raise ValueError(
                    "decompress_batch requires uniform segment counts"
                )
            off = 4 + struct.calcsize("<BI")
            seg_lens = struct.unpack_from(f"<{nseg}Q", body, off)
            off += 8 * nseg
            segments = []
            for length in seg_lens:
                segments.append(body[off : off + length])
                off += length
            split.append(segments)

        def _one_index(i: int) -> list[np.ndarray]:
            return self._decompress_keys_batch(
                [segments[i] for segments in split], tag=("batch", i)
            )

        by_index = _map_tasks(self.adapter, _one_index, range(nseg0))
        if not by_index:
            return [np.zeros(0, dtype=np.uint8) for _ in bodies]
        return [
            np.concatenate([by_index[i][j].reshape(-1)
                            for i in range(nseg0)])
            for j in range(len(bodies))
        ]

    def compression_ratio(self, data: np.ndarray, blob: bytes) -> float:
        return data.nbytes / len(blob)

    # ------------------------------------------------------------------
    # Container format
    # ------------------------------------------------------------------
    def _serialize(
        self,
        shape: tuple[int, ...],
        dtype: np.dtype,
        num_symbols: int,
        n: int,
        book: Codebook,
        chunk_offsets: np.ndarray,
        payload: np.ndarray,
        chunk_size: int,
    ) -> bytes:
        dts = np.dtype(dtype).str.encode("ascii")
        # Trailing unused symbols need no stored lengths, and the rest is
        # run-length coded — this keeps small-alphabet streams (constant
        # fields, tiny inputs) compact.
        nz = np.flatnonzero(book.lengths)
        stored = int(nz[-1]) + 1 if nz.size else 0
        parts = [
            _MAGIC,
            struct.pack(
                "<BBHIQIQI",
                _VERSION,
                len(dts),
                len(shape),
                num_symbols,
                n,
                chunk_size,
                payload.size,
                stored,
            ),
            dts,
            struct.pack(f"<{len(shape)}q", *shape),
            _rle_encode(book.lengths[:stored]),
            struct.pack("<I", chunk_offsets.size),
            chunk_offsets.astype(np.uint64).tobytes(),
            payload.tobytes(),
        ]
        return b"".join(parts)

    def _deserialize(self, blob: bytes):
        """Parse a ``HUFX`` stream.

        Streams are self-describing: the returned ``chunk_size`` is the
        *stream's* chunking, deliberately **not** written back to
        ``self.chunk_size`` — decoding a foreign stream must not change
        how this instance encodes (nor race the segment-parallel path).
        """
        if blob[:4] != _MAGIC:
            raise ValueError("not a Huffman-X stream (bad magic)")
        off = 4
        (
            version, dts_len, ndim, num_symbols, n, chunk_size, payload_len, stored,
        ) = struct.unpack_from("<BBHIQIQI", blob, off)
        if version != _VERSION:
            raise ValueError(f"unsupported Huffman-X version {version}")
        off += struct.calcsize("<BBHIQIQI")
        dtype = np.dtype(bytes(blob[off : off + dts_len]).decode("ascii"))
        off += dts_len
        shape = struct.unpack_from(f"<{ndim}q", blob, off)
        off += 8 * ndim
        lengths = np.zeros(num_symbols, dtype=np.uint8)
        head, consumed = _rle_decode(blob, off, stored)
        lengths[:stored] = head
        off += consumed
        if lengths.size and int(lengths.max()) > MAX_CODE_LENGTH:
            raise ValueError(
                f"corrupt stream: code length {int(lengths.max())} exceeds "
                f"the {MAX_CODE_LENGTH}-bit limit of length-limited "
                f"codebooks (decode windows support at most 24 bits)"
            )
        (nchunks,) = struct.unpack_from("<I", blob, off)
        off += 4
        chunk_offsets = np.frombuffer(
            blob, dtype=np.uint64, count=nchunks, offset=off
        ).copy()
        off += 8 * nchunks
        payload = np.frombuffer(blob, dtype=np.uint8, count=payload_len, offset=off)
        from repro.compressors.huffman.codebook import canonical_codes

        book = Codebook(codes=canonical_codes(lengths), lengths=lengths)
        return (
            tuple(shape), dtype, num_symbols, n, book, chunk_offsets, payload,
            chunk_size,
        )


def _pack_meta(dtype_str: str, shape: tuple[int, ...]) -> bytes:
    dts = dtype_str.encode("ascii")
    return (
        struct.pack("<BH", len(dts), len(shape))
        + dts
        + struct.pack(f"<{len(shape)}q", *shape)
    )


def _unpack_meta(blob: bytes) -> tuple[str, tuple[int, ...], int]:
    dts_len, ndim = struct.unpack_from("<BH", blob, 0)
    off = struct.calcsize("<BH")
    dtype_str = bytes(blob[off : off + dts_len]).decode("ascii")
    off += dts_len
    shape = struct.unpack_from(f"<{ndim}q", blob, off)
    off += 8 * ndim
    return dtype_str, tuple(shape), off
