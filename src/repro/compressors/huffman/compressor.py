"""Huffman-X compressor (paper Algorithm 2).

Stages and the abstractions that run them:

====================  =====================================
histogram             Global pipeline (DEM)
sort + filter         host-side (tiny)
two-phase codebook    host-side (tiny; treeless, canonical)
encode                Locality (GEM) — chunk per group
serialize             Global pipeline (DEM) — prefix sums
====================  =====================================

The bitstream is chunked: per-chunk bit offsets are embedded so
decompression parallelizes across chunks (the vectorized decoder steps
one symbol at a time across *all* chunks simultaneously).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.abstractions import global_pipeline, locality
from repro.core.context import ContextCache
from repro.core.functor import FnDomain, LocalityFunctor
from repro.compressors.huffman.bitstream import gather_windows, pack_bits
from repro.compressors.huffman.codebook import Codebook, build_codebook
from repro.compressors.huffman.histogram import histogram
from repro.util import stream_errors

_MAGIC = b"HUFX"
_VERSION = 1


def _rle_encode(lengths: np.ndarray) -> bytes:
    """Run-length encode a code-length table (mostly-zero for sparse
    alphabets).  Falls back to raw bytes when RLE would be larger."""
    raw = lengths.astype(np.uint8).tobytes()
    if lengths.size == 0:
        return b"\x00" + raw
    change = np.flatnonzero(np.diff(lengths)) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [lengths.size]])
    runs = []
    for s, e in zip(starts, ends):
        n = int(e - s)
        v = int(lengths[s])
        while n > 0:
            take = min(n, 0xFFFF)
            runs.append(struct.pack("<HB", take, v))
            n -= take
    rle = struct.pack("<I", len(runs)) + b"".join(runs)
    if len(rle) < len(raw):
        return b"\x01" + rle
    return b"\x00" + raw


def _rle_decode(blob: bytes, offset: int, count: int) -> tuple[np.ndarray, int]:
    """Invert :func:`_rle_encode`; returns (lengths, bytes consumed)."""
    mode = blob[offset]
    pos = offset + 1
    if mode == 0:
        out = np.frombuffer(blob, dtype=np.uint8, count=count, offset=pos).copy()
        return out, 1 + count
    (nruns,) = struct.unpack_from("<I", blob, pos)
    pos += 4
    out = np.empty(count, dtype=np.uint8)
    at = 0
    for _ in range(nruns):
        n, v = struct.unpack_from("<HB", blob, pos)
        pos += 3
        out[at : at + n] = v
        at += n
    if at != count:
        raise ValueError(f"corrupt RLE length table: {at} != {count}")
    return out, pos - offset


class _EncodeFunctor(LocalityFunctor):
    """Locality stage: map each key in a chunk to (code, length)."""

    name = "huffman.encode"
    bytes_per_element = 10.0

    def __init__(self, codes: np.ndarray, lengths: np.ndarray) -> None:
        self._codes = codes.astype(np.uint32)
        self._lengths = lengths.astype(np.uint8)

    def apply(self, blocks: np.ndarray) -> np.ndarray:
        keys = blocks.astype(np.intp)
        out = np.empty(blocks.shape + (2,), dtype=np.uint32)
        out[..., 0] = self._codes[keys]
        out[..., 1] = self._lengths[keys]
        return out


class HuffmanX:
    """HPDR Huffman lossless compressor.

    Parameters
    ----------
    adapter:
        Device adapter (defaults to serial).
    chunk_size:
        Symbols per encoding chunk — the Locality block size and the
        decode-parallelism grain.
    context_cache:
        Optional CMM cache; codebooks for repeated key distributions of
        identical histograms are *not* cached (they depend on data), but
        working buffers are.
    """

    def __init__(
        self,
        adapter=None,
        chunk_size: int = 1024,
        context_cache: ContextCache | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.adapter = adapter
        self.chunk_size = chunk_size
        self.cache = context_cache if context_cache is not None else ContextCache()

    # ------------------------------------------------------------------
    # Key-level API (alphabet supplied by the caller)
    # ------------------------------------------------------------------
    def compress_keys(self, keys: np.ndarray, num_symbols: int) -> bytes:
        """Compress an integer key array with values in [0, num_symbols)."""
        keys = np.ascontiguousarray(keys)
        if not np.issubdtype(keys.dtype, np.integer):
            raise TypeError(f"keys must be integers, got {keys.dtype}")
        shape = keys.shape
        flat = keys.reshape(-1)
        n = flat.size

        freqs = histogram(flat, num_symbols, adapter=self.adapter)
        book = build_codebook(freqs)

        if n == 0:
            payload = np.zeros(0, dtype=np.uint8)
            chunk_offsets = np.zeros(0, dtype=np.uint64)
        else:
            # encode: Locality over chunks — each key independent.
            enc = locality(
                flat,
                _EncodeFunctor(book.codes, book.lengths),
                block_shape=(self.chunk_size,),
                adapter=self.adapter,
                pad_mode="edge",
                reassemble=False,
            )  # (nchunks, chunk_size, 2)
            nchunks = enc.shape[0]
            codes = enc[..., 0].reshape(-1)
            lens = enc[..., 1].reshape(-1).astype(np.int64)
            # Zero out the padding tail so it writes no bits.
            lens[n:] = 0

            # serialize: Global pipeline — prefix-sum bit offsets.
            def _offsets(lengths: np.ndarray) -> np.ndarray:
                return np.cumsum(lengths) - lengths

            offsets = global_pipeline(
                lens,
                FnDomain(_offsets, name="huffman.serialize", bytes_per_element=16.0),
                adapter=self.adapter,
            )
            chunk_offsets = offsets[:: self.chunk_size].astype(np.uint64)
            assert chunk_offsets.size == nchunks
            total_bits = int(offsets[-1] + lens[-1])
            payload = pack_bits(codes, lens, total_bits=total_bits, offsets=offsets)

        return self._serialize(
            shape, keys.dtype, num_symbols, n, book, chunk_offsets, payload
        )

    @stream_errors
    def decompress_keys(self, blob: bytes) -> np.ndarray:
        """Invert :meth:`compress_keys`; returns the original key array."""
        (
            shape,
            dtype,
            num_symbols,
            n,
            book,
            chunk_offsets,
            payload,
        ) = self._deserialize(blob)
        if n == 0:
            return np.zeros(shape, dtype=dtype)

        width = max(1, book.max_length)
        sym_table, len_table, width = book.decode_table(width)
        nchunks = chunk_offsets.size
        out = np.zeros((nchunks, self.chunk_size), dtype=np.int64)
        pos = chunk_offsets.astype(np.int64).copy()
        chunk_lens = np.full(nchunks, self.chunk_size, dtype=np.int64)
        rem = n - (nchunks - 1) * self.chunk_size
        chunk_lens[-1] = rem

        len_table_i64 = len_table.astype(np.int64)
        for step in range(int(chunk_lens.max())):
            active = np.flatnonzero(chunk_lens > step)
            if active.size == 0:
                break
            windows = gather_windows(payload, pos[active], width)
            out[active, step] = sym_table[windows]
            pos[active] += len_table_i64[windows]
        return out.reshape(-1)[:n].astype(dtype).reshape(shape)

    # ------------------------------------------------------------------
    # Byte-level lossless API (arbitrary arrays/buffers)
    # ------------------------------------------------------------------
    def compress(self, data: np.ndarray | bytes) -> bytes:
        """Losslessly compress arbitrary data as a uint8 symbol stream."""
        if isinstance(data, (bytes, bytearray, memoryview)):
            arr = np.frombuffer(bytes(data), dtype=np.uint8)
            meta = ("|u1", (arr.size,))
        else:
            arr = np.ascontiguousarray(data)
            meta = (arr.dtype.str, arr.shape)
        keys = arr.reshape(-1).view(np.uint8)
        inner = self.compress_keys(keys, 256)
        header = _pack_meta(meta[0], meta[1])
        return header + inner

    @stream_errors
    def decompress(self, blob: bytes) -> np.ndarray:
        dtype_str, shape, used = _unpack_meta(blob)
        keys = self.decompress_keys(blob[used:])
        return keys.astype(np.uint8).view(np.dtype(dtype_str)).reshape(shape)

    def compression_ratio(self, data: np.ndarray, blob: bytes) -> float:
        return data.nbytes / len(blob)

    # ------------------------------------------------------------------
    # Container format
    # ------------------------------------------------------------------
    def _serialize(
        self,
        shape: tuple[int, ...],
        dtype: np.dtype,
        num_symbols: int,
        n: int,
        book: Codebook,
        chunk_offsets: np.ndarray,
        payload: np.ndarray,
    ) -> bytes:
        dts = np.dtype(dtype).str.encode("ascii")
        # Trailing unused symbols need no stored lengths, and the rest is
        # run-length coded — this keeps small-alphabet streams (constant
        # fields, tiny inputs) compact.
        nz = np.flatnonzero(book.lengths)
        stored = int(nz[-1]) + 1 if nz.size else 0
        parts = [
            _MAGIC,
            struct.pack(
                "<BBHIQIQI",
                _VERSION,
                len(dts),
                len(shape),
                num_symbols,
                n,
                self.chunk_size,
                payload.size,
                stored,
            ),
            dts,
            struct.pack(f"<{len(shape)}q", *shape),
            _rle_encode(book.lengths[:stored]),
            struct.pack("<I", chunk_offsets.size),
            chunk_offsets.astype(np.uint64).tobytes(),
            payload.tobytes(),
        ]
        return b"".join(parts)

    def _deserialize(self, blob: bytes):
        if blob[:4] != _MAGIC:
            raise ValueError("not a Huffman-X stream (bad magic)")
        off = 4
        (
            version, dts_len, ndim, num_symbols, n, chunk_size, payload_len, stored,
        ) = struct.unpack_from("<BBHIQIQI", blob, off)
        if version != _VERSION:
            raise ValueError(f"unsupported Huffman-X version {version}")
        if chunk_size != self.chunk_size:
            # Streams are self-describing; adopt the stream's chunking.
            self.chunk_size = chunk_size
        off += struct.calcsize("<BBHIQIQI")
        dtype = np.dtype(blob[off : off + dts_len].decode("ascii"))
        off += dts_len
        shape = struct.unpack_from(f"<{ndim}q", blob, off)
        off += 8 * ndim
        lengths = np.zeros(num_symbols, dtype=np.uint8)
        head, consumed = _rle_decode(blob, off, stored)
        lengths[:stored] = head
        off += consumed
        (nchunks,) = struct.unpack_from("<I", blob, off)
        off += 4
        chunk_offsets = np.frombuffer(
            blob, dtype=np.uint64, count=nchunks, offset=off
        ).copy()
        off += 8 * nchunks
        payload = np.frombuffer(blob, dtype=np.uint8, count=payload_len, offset=off).copy()
        from repro.compressors.huffman.codebook import canonical_codes

        book = Codebook(codes=canonical_codes(lengths), lengths=lengths)
        return tuple(shape), dtype, num_symbols, n, book, chunk_offsets, payload


def _pack_meta(dtype_str: str, shape: tuple[int, ...]) -> bytes:
    dts = dtype_str.encode("ascii")
    return (
        struct.pack("<BH", len(dts), len(shape))
        + dts
        + struct.pack(f"<{len(shape)}q", *shape)
    )


def _unpack_meta(blob: bytes) -> tuple[str, tuple[int, ...], int]:
    dts_len, ndim = struct.unpack_from("<BH", blob, 0)
    off = struct.calcsize("<BH")
    dtype_str = blob[off : off + dts_len].decode("ascii")
    off += dts_len
    shape = struct.unpack_from(f"<{ndim}q", blob, off)
    off += 8 * ndim
    return dtype_str, tuple(shape), off
