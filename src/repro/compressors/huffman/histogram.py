"""Frequency histogram (Algorithm 2, line 2).

The paper uses the replication-based GPU histogram of Gómez-Luna et
al. [43] via the Global pipeline abstraction: all threads cooperatively
update shared counters.  The NumPy analog is ``np.bincount`` over the
whole domain, dispatched through :func:`repro.core.abstractions.global_pipeline`
so adapter tracing sees a DEM kernel.
"""

from __future__ import annotations

import numpy as np

from repro.core.abstractions import global_pipeline
from repro.core.functor import FnDomain


def histogram(keys: np.ndarray, num_symbols: int, adapter=None) -> np.ndarray:
    """Count key frequencies.

    Parameters
    ----------
    keys:
        Integer array (any shape) with values in ``[0, num_symbols)``.
    num_symbols:
        Alphabet size.

    Returns
    -------
    ``int64`` array of length ``num_symbols``.

    Raises
    ------
    ValueError
        If keys fall outside the alphabet (a corrupt-input guard: a
        silent wraparound here would poison the codebook).
    """
    if num_symbols < 1:
        raise ValueError(f"num_symbols must be >= 1, got {num_symbols}")
    flat = np.ascontiguousarray(keys).reshape(-1)
    if flat.size and (flat.min() < 0 or flat.max() >= num_symbols):
        raise ValueError(
            f"keys outside [0, {num_symbols}): range "
            f"[{flat.min()}, {flat.max()}]"
        )

    functor = FnDomain(
        lambda k: np.bincount(k, minlength=num_symbols).astype(np.int64),
        name="huffman.histogram",
        bytes_per_element=flat.itemsize + 4,
    )
    return global_pipeline(flat, functor, adapter=adapter)
