"""Two-phase treeless codebook generation (Algorithm 2, line 5).

Phase 1 computes optimal code *lengths* from the frequency histogram;
phase 2 assigns canonical codes from the lengths alone — no explicit
tree is materialized, matching the parallel two-phase algorithm of
Ostadzadeh et al. [44] that the paper adopts for its high parallelism.

Lengths are limited to :data:`MAX_CODE_LENGTH` bits (16) so decoding can
use a dense lookup table; overlong codes from highly skewed histograms
are repaired with the standard Kraft-sum adjustment (the approach zlib
uses), which preserves prefix-freeness at negligible ratio cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Longest permitted code, in bits.  2^16-entry decode tables stay small
#: (512 KB) while still accommodating 65 536-symbol alphabets.  Kept
#: safely below the 24-bit window limit of
#: :func:`repro.compressors.huffman.bitstream.gather_windows`, so a
#: valid codebook can always be decoded with one 4-byte load.
MAX_CODE_LENGTH = 16


def huffman_code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Phase 1: optimal code lengths from frequencies.

    Zero-frequency symbols get length 0 (no code).  A single-symbol
    alphabet gets length 1.  Result lengths satisfy the Kraft equality
    ``sum(2^-len) <= 1`` after limiting.
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.ndim != 1:
        raise ValueError("freqs must be 1-D")
    if freqs.size and freqs.min() < 0:
        raise ValueError("frequencies must be non-negative")
    nonzero = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if nonzero.size > (1 << MAX_CODE_LENGTH):
        # Kraft: n distinct codes need max length >= ceil(log2 n); past
        # 2^MAX_CODE_LENGTH used symbols no length-limited codebook
        # exists and _limit_lengths could never converge.  Fail here,
        # at build time, instead of deep inside the decoder.
        raise ValueError(
            f"alphabet has {nonzero.size} used symbols; a length-limited "
            f"codebook (max {MAX_CODE_LENGTH} bits) supports at most "
            f"{1 << MAX_CODE_LENGTH}"
        )
    if nonzero.size == 0:
        return lengths
    if nonzero.size == 1:
        lengths[nonzero[0]] = 1
        return lengths

    # Two-queue O(n log n) construction: leaves sorted by frequency feed
    # one queue, merged internal nodes the other; both queues stay
    # sorted, so the two global minima are always at the queue heads.
    order = nonzero[np.argsort(freqs[nonzero], kind="stable")]
    n = order.size
    leaf_w = freqs[order]
    # Node ids: 0..n-1 = leaves (in sorted order), n.. = internal.
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    internal_w: list[int] = []
    li = 0  # next leaf
    ii = 0  # next unconsumed internal node
    next_id = n

    def _pop_min() -> int:
        nonlocal li, ii
        take_leaf = li < n and (
            ii >= len(internal_w) or int(leaf_w[li]) <= internal_w[ii]
        )
        if take_leaf:
            node = li
            li += 1
            return node
        node = n + ii
        ii += 1
        return node

    def _weight_of(node: int) -> int:
        return int(leaf_w[node]) if node < n else internal_w[node - n]

    while (n - li) + (len(internal_w) - ii) > 1:
        a = _pop_min()
        b = _pop_min()
        parent[a] = next_id
        parent[b] = next_id
        internal_w.append(_weight_of(a) + _weight_of(b))
        next_id += 1

    # Depths: the root is the last internal node; parents always have
    # larger ids, so one reverse pass resolves every depth.
    depth = np.zeros(2 * n - 1, dtype=np.int64)
    for node in range(2 * n - 3, -1, -1):
        depth[node] = depth[parent[node]] + 1
    lengths[order] = depth[:n]
    return _limit_lengths(lengths, MAX_CODE_LENGTH)


def _limit_lengths(lengths: np.ndarray, max_len: int) -> np.ndarray:
    """Clamp overlong codes and repair the Kraft sum (zlib-style)."""
    lengths = lengths.astype(np.int64)
    used = lengths > 0
    if not used.any():
        return lengths.astype(np.uint8)
    over = lengths > max_len
    if not over.any():
        return lengths.astype(np.uint8)
    lengths[over] = max_len
    # Kraft sum in units of 2^-max_len.
    kraft = int(np.sum(2 ** (max_len - lengths[used])))
    budget = 1 << max_len
    # While oversubscribed, demote (lengthen is impossible at max) —
    # promote shortest-coded symbols to one bit longer? No: to *reduce*
    # the sum we must lengthen codes that are shorter than max_len.
    while kraft > budget:
        candidates = np.flatnonzero(used & (lengths < max_len))
        if candidates.size == 0:  # pragma: no cover - cannot happen for n<=2^max_len
            raise RuntimeError("cannot satisfy Kraft inequality")
        # Lengthening the currently longest sub-max code frees the most
        # relative budget per ratio point lost.
        pick = candidates[np.argmax(lengths[candidates])]
        kraft -= 2 ** (max_len - lengths[pick] - 1)
        lengths[pick] += 1
    return lengths.astype(np.uint8)


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Phase 2: canonical code assignment from lengths.

    Symbols are ordered by (length, symbol); codes count upward within a
    length and shift left on length increase — the textbook canonical
    construction, so decoders only need the length array.
    """
    lengths = np.asarray(lengths, dtype=np.uint8)
    codes = np.zeros(lengths.size, dtype=np.uint32)
    used = np.flatnonzero(lengths)
    if used.size == 0:
        return codes
    order = used[np.lexsort((used, lengths[used]))]
    lo = lengths[order].astype(np.int64)  # sorted code lengths
    max_len = int(lo[-1])
    # First code of each length (the zlib construction): shift left on
    # every length increase, advancing past the previous length's codes.
    bl_count = np.bincount(lo, minlength=max_len + 1)
    first_code = np.zeros(max_len + 1, dtype=np.uint64)
    code = 0
    for bits in range(1, max_len + 1):
        code = (code + int(bl_count[bits - 1])) << 1
        first_code[bits] = code
    # Rank within each same-length run, fully vectorized.
    starts = np.r_[0, np.flatnonzero(lo[1:] != lo[:-1]) + 1]
    run_lengths = np.diff(np.r_[starts, lo.size])
    group_start = np.repeat(starts, run_lengths)
    rank = np.arange(lo.size) - group_start
    codes[order] = (first_code[lo] + rank.astype(np.uint64)).astype(np.uint32)
    return codes


@dataclass(frozen=True)
class Codebook:
    """Canonical codebook: per-symbol code values and bit lengths."""

    codes: np.ndarray    # uint32, right-aligned code bits
    lengths: np.ndarray  # uint8, 0 = symbol unused

    @property
    def num_symbols(self) -> int:
        return self.codes.size

    @property
    def max_length(self) -> int:
        return int(self.lengths.max()) if self.lengths.size else 0

    def kraft_sum(self) -> float:
        used = self.lengths > 0
        return float(np.sum(2.0 ** (-self.lengths[used].astype(np.float64))))

    def decode_table(self, width: int | None = None) -> tuple[np.ndarray, np.ndarray, int]:
        """Dense LUT: ``width``-bit window → (symbol, code length).

        Every window whose leading bits equal a code maps to that code's
        symbol.  Returns ``(symbols, lengths, width)``.
        """
        if width is None:
            width = max(1, self.max_length)
        if width < self.max_length:
            raise ValueError(
                f"table width {width} < max code length {self.max_length}"
            )
        size = 1 << width
        sym_table = np.zeros(size, dtype=np.int32)
        len_table = np.zeros(size, dtype=np.uint8)
        used = np.flatnonzero(self.lengths)
        if used.size == 0:
            return sym_table, len_table, width
        lens = self.lengths[used].astype(np.int64)
        lo = self.codes[used].astype(np.int64) << (width - lens)
        runs = np.int64(1) << (width - lens)
        order = np.argsort(lo, kind="stable")
        lo, runs, lens, syms = lo[order], runs[order], lens[order], used[order]
        covered = int(runs.sum())
        # Canonical prefix codes tile [0, covered) contiguously, so one
        # np.repeat fills the whole table; anything else (a corrupt
        # length table with an oversubscribed Kraft sum) falls back to
        # the per-symbol loop with the old clipping semantics.
        if covered <= size and np.array_equal(
            lo, np.r_[0, np.cumsum(runs)[:-1]]
        ):
            sym_table[:covered] = np.repeat(syms, runs)
            len_table[:covered] = np.repeat(lens, runs)
        else:  # pragma: no cover - corrupt/non-canonical codebooks only
            for sym in used:
                l = int(self.lengths[sym])
                c = int(self.codes[sym])
                a = c << (width - l)
                b = (c + 1) << (width - l)
                sym_table[a:b] = sym
                len_table[a:b] = l
        return sym_table, len_table, width


def build_codebook(freqs: np.ndarray) -> Codebook:
    """Two-phase construction: lengths, then canonical codes."""
    lengths = huffman_code_lengths(freqs)
    codes = canonical_codes(lengths)
    return Codebook(codes=codes, lengths=lengths)
