"""Huffman-X: lossless entropy coder built on HPDR abstractions.

Pipeline (paper Fig. 6 / Algorithm 2):

1. histogram — Global pipeline abstraction (all threads cooperatively
   update frequency counters).
2. sort + filter nonzero frequencies.
3. two-phase treeless codebook generation (canonical, length-limited).
4. encode — Locality abstraction (each key encodes independently;
   chunk-parallel).
5. serialize — Global pipeline abstraction (prefix-sum offsets compact
   variable-length codes into one stream).

The bitstream is *portable*: any adapter decodes any adapter's output
bit-exactly.
"""

from repro.compressors.huffman.histogram import histogram
from repro.compressors.huffman.codebook import (
    Codebook,
    build_codebook,
    canonical_codes,
    huffman_code_lengths,
)
from repro.compressors.huffman.bitstream import pack_bits, gather_windows
from repro.compressors.huffman.compressor import HuffmanX

__all__ = [
    "histogram",
    "Codebook",
    "build_codebook",
    "canonical_codes",
    "huffman_code_lengths",
    "pack_bits",
    "gather_windows",
    "HuffmanX",
]
