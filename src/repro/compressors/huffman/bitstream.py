"""Vectorized bit packing and window gathering.

Encoding writes each symbol's variable-length code at its prefix-sum bit
offset; the loop runs over *bit positions within a code* (≤ 16) rather
than over symbols, so every pass is a vectorized NumPy operation — the
CPU analog of the paper's "each key encodes independently" Locality
parallelism.

Decoding gathers ``width``-bit windows at arbitrary bit offsets (used by
the chunk-parallel Huffman decoder, which advances one symbol per
vectorized step across *all chunks simultaneously*).
"""

from __future__ import annotations

import numpy as np


def pack_bits(
    codes: np.ndarray,
    lengths: np.ndarray,
    total_bits: int | None = None,
    offsets: np.ndarray | None = None,
) -> np.ndarray:
    """Pack variable-length MSB-first codes into a byte stream.

    Parameters
    ----------
    codes:
        Right-aligned code values (unsigned), one per symbol occurrence.
    lengths:
        Bit length of each code (0 allowed: writes nothing).
    offsets:
        Starting bit offset of each code; default = exclusive prefix sum
        of ``lengths`` (contiguous stream).
    total_bits:
        Stream length in bits; default = offsets[-1] + lengths[-1].

    Returns
    -------
    ``uint8`` byte array (big-endian bit order within bytes).
    """
    codes = np.asarray(codes, dtype=np.uint64).reshape(-1)
    lengths = np.asarray(lengths, dtype=np.int64).reshape(-1)
    if codes.shape != lengths.shape:
        raise ValueError("codes and lengths must have equal shapes")
    if offsets is None:
        offsets = np.cumsum(lengths) - lengths
    else:
        offsets = np.asarray(offsets, dtype=np.int64).reshape(-1)
        if offsets.shape != lengths.shape:
            raise ValueError("offsets shape mismatch")
    if total_bits is None:
        total_bits = int(offsets[-1] + lengths[-1]) if lengths.size else 0

    bits = np.zeros(total_bits, dtype=np.uint8)
    max_len = int(lengths.max()) if lengths.size else 0
    for b in range(max_len):
        mask = lengths > b
        if not mask.any():
            continue
        shift = (lengths[mask] - 1 - b).astype(np.uint64)
        bitvals = ((codes[mask] >> shift) & np.uint64(1)).astype(np.uint8)
        bits[offsets[mask] + b] = bitvals
    return np.packbits(bits)


def gather_windows(
    packed: np.ndarray,
    bit_offsets: np.ndarray,
    width: int,
) -> np.ndarray:
    """Extract ``width``-bit big-endian windows at arbitrary bit offsets.

    ``packed`` is the byte stream from :func:`pack_bits`.  Windows
    extending past the stream read as zero bits (the decoder's final
    symbols).  ``width`` must be ≤ 24 so a 4-byte load always covers the
    window after sub-byte shifting.
    """
    if not 1 <= width <= 24:
        raise ValueError(f"width must be in [1, 24], got {width}")
    packed = np.asarray(packed, dtype=np.uint8)
    offs = np.asarray(bit_offsets, dtype=np.int64)
    if offs.size and offs.min() < 0:
        raise ValueError("negative bit offset")
    # Pad so any in-range offset can safely load 4 bytes.
    padded = np.concatenate([packed, np.zeros(4, dtype=np.uint8)])
    byte_idx = offs >> 3
    byte_idx = np.minimum(byte_idx, packed.size)  # clamp fully-past-end reads
    shift = (offs & 7).astype(np.uint32)
    w = (
        (padded[byte_idx].astype(np.uint32) << 24)
        | (padded[byte_idx + 1].astype(np.uint32) << 16)
        | (padded[byte_idx + 2].astype(np.uint32) << 8)
        | padded[byte_idx + 3].astype(np.uint32)
    )
    out = (w >> (np.uint32(32 - width) - shift)) & np.uint32((1 << width) - 1)
    return out
