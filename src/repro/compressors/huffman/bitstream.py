"""Vectorized bit packing and window gathering.

Encoding packs each symbol's variable-length code into 64-bit words in
one word-parallel pass: every code is left-aligned into a 64-bit field,
split into its (at most two) destination words with shifts, and
scattered with a segmented bitwise-OR — no per-bit loop, the CPU analog
of the paper's "each key encodes independently" Locality parallelism.

Decoding gathers ``width``-bit windows at arbitrary bit offsets (used by
the chunk-parallel Huffman decoder, which advances one symbol per
vectorized step across *all chunks simultaneously*).
"""

from __future__ import annotations

import numpy as np

from repro.util import hot_path

#: Slack bytes appended by :func:`pad_payload` so any in-range offset can
#: safely load 4 bytes.
PAYLOAD_SLACK = 4


@hot_path(reason="inner OR-combine of every pack_bits call (BENCH_wallclock)")
def _or_scatter(words: np.ndarray, idx: np.ndarray, vals: np.ndarray) -> None:
    """``words[idx] |= vals`` with duplicate indices OR-combined.

    ``idx`` must be sorted non-decreasing (guaranteed by monotonic bit
    offsets); duplicates are merged with a segmented reduction instead
    of ``np.bitwise_or.at`` (which is an order of magnitude slower).
    """
    if idx.size == 0:
        return
    starts = np.flatnonzero(np.r_[True, idx[1:] != idx[:-1]])
    merged = np.bitwise_or.reduceat(vals, starts)
    words[idx[starts]] |= merged


@hot_path(reason="Huffman serialize stage; zero-alloc when ctx is given")
def pack_bits(
    codes: np.ndarray,
    lengths: np.ndarray,
    total_bits: int | None = None,
    offsets: np.ndarray | None = None,
    ctx=None,
) -> np.ndarray:
    """Pack variable-length MSB-first codes into a byte stream.

    Parameters
    ----------
    codes:
        Right-aligned code values (unsigned), one per symbol occurrence.
    lengths:
        Bit length of each code (0 allowed: writes nothing).  Codes must
        fit in 56 bits so the two-word split below always covers them.
    offsets:
        Starting bit offset of each code; default = exclusive prefix sum
        of ``lengths`` (contiguous stream).  Non-overlapping codes are
        assumed (prefix-sum offsets guarantee it).
    total_bits:
        Stream length in bits; default = offsets[-1] + lengths[-1].
    ctx:
        Optional :class:`~repro.core.context.ReductionContext`; when
        given, the word buffer comes from persistent scratch so repeated
        same-sized packs perform no allocation.  The returned array then
        aliases context memory and is only valid until the next pack
        through the same context.

    Returns
    -------
    ``uint8`` byte array (big-endian bit order within bytes).
    """
    codes = np.asarray(codes, dtype=np.uint64).reshape(-1)
    lengths = np.asarray(lengths, dtype=np.int64).reshape(-1)
    if codes.shape != lengths.shape:
        raise ValueError("codes and lengths must have equal shapes")
    if offsets is None:
        # CMM callers precompute offsets into context scratch instead
        # (the huffman serialize stage) — this is the convenience path.
        # hpdrlint: disable=HPL003 — cold convenience fallback
        offsets = np.cumsum(lengths) - lengths
    else:
        offsets = np.asarray(offsets, dtype=np.int64).reshape(-1)
        if offsets.shape != lengths.shape:
            raise ValueError("offsets shape mismatch")
    if total_bits is None:
        total_bits = int(offsets[-1] + lengths[-1]) if lengths.size else 0
    nbytes = (total_bits + 7) >> 3
    if total_bits == 0:
        # hpdrlint: disable=HPL001 — empty-stream edge, never steady state
        return np.zeros(0, dtype=np.uint8)

    if offsets.size > 1 and np.any(offsets[1:] < offsets[:-1]):
        order = np.argsort(offsets, kind="stable")
        codes, lengths, offsets = codes[order], lengths[order], offsets[order]

    live = lengths > 0
    if not live.all():
        codes, lengths, offsets = codes[live], lengths[live], offsets[live]

    # One sentinel word past the end absorbs the (empty) high spill of a
    # code ending exactly at the stream boundary.
    nwords = ((total_bits + 63) >> 6) + 1
    if ctx is not None:
        words = ctx.scratch("pack_bits.words", nwords, np.uint64)
    else:
        # hpdrlint: disable=HPL001 — documented ctx=None fallback path
        words = np.empty(nwords, dtype=np.uint64)
    words[:] = 0

    # Left-align each code in a 64-bit field: code bit j (MSB first)
    # sits at field bit 63-j, so shifting right by the in-word bit
    # offset lands bit j at stream position offset+j.
    ulen = lengths.view(np.uint64)  # int64 ≥ 0: bit pattern is the value
    field = codes << (np.uint64(64) - ulen)
    word_idx = (offsets >> 6).astype(np.intp, copy=False)
    bit_in_word = (offsets & 63).view(np.uint64)
    low = field >> bit_in_word
    # field << (64 - b) without an undefined 64-bit shift at b == 0
    # (the two-step shift drops every bit, which is the correct spill).
    high = (field << (np.uint64(63) - bit_in_word)) << np.uint64(1)
    _or_scatter(words, word_idx, low)
    _or_scatter(words, word_idx + 1, high)

    # uint64 words → big-endian byte stream (bit 63 of word 0 is stream
    # bit 0, matching np.packbits bit order).
    words.byteswap(inplace=True)
    return words.view(np.uint8)[:nbytes]


@hot_path(reason="per-decode payload staging; zero-alloc when ctx is given")
def pad_payload(packed: np.ndarray, ctx=None) -> np.ndarray:
    """Append :data:`PAYLOAD_SLACK` zero bytes for window gathering.

    Decoders call this once and pass ``prepadded=True`` to
    :func:`gather_windows`, hoisting the copy out of their symbol loop.
    """
    packed = np.asarray(packed, dtype=np.uint8)
    if ctx is not None:
        padded = ctx.scratch("gather.padded", packed.size + PAYLOAD_SLACK, np.uint8)
    else:
        # hpdrlint: disable=HPL001 — documented ctx=None fallback path
        padded = np.empty(packed.size + PAYLOAD_SLACK, dtype=np.uint8)
    padded[: packed.size] = packed
    padded[packed.size :] = 0
    return padded


@hot_path(reason="per-symbol window loads of the chunk-parallel decoder")
def gather_windows(
    packed: np.ndarray,
    bit_offsets: np.ndarray,
    width: int,
    prepadded: bool = False,
) -> np.ndarray:
    """Extract ``width``-bit big-endian windows at arbitrary bit offsets.

    ``packed`` is the byte stream from :func:`pack_bits`.  Windows
    extending past the stream read as zero bits (the decoder's final
    symbols).  ``width`` must be ≤ 24 so a 4-byte load always covers the
    window after sub-byte shifting.  With ``prepadded=True`` the input
    is assumed to already carry :data:`PAYLOAD_SLACK` trailing zero
    bytes (see :func:`pad_payload`) and no copy is made.
    """
    if not 1 <= width <= 24:
        raise ValueError(f"width must be in [1, 24], got {width}")
    packed = np.asarray(packed, dtype=np.uint8)
    offs = np.asarray(bit_offsets, dtype=np.int64)
    if offs.size and offs.min() < 0:
        raise ValueError("negative bit offset")
    if prepadded:
        padded = packed
        payload_size = packed.size - PAYLOAD_SLACK
    else:
        # hpdrlint: disable=HPL001 — cold path; hot decoders pre-pad once
        padded = np.concatenate([packed, np.zeros(PAYLOAD_SLACK, dtype=np.uint8)])
        payload_size = packed.size
    byte_idx = offs >> 3
    np.minimum(byte_idx, payload_size, out=byte_idx)  # clamp past-end reads
    # hpdrlint: disable=HPL001 — widening cast feeding the gather below
    shift = (offs & 7).astype(np.uint32)
    # The widening gathers build the window batch, which is fresh output
    # by contract (callers mask it in place).
    # hpdrlint: disable=HPL001 — uint8→uint32 widening gathers
    w = (
        (padded[byte_idx].astype(np.uint32) << 24)
        | (padded[byte_idx + 1].astype(np.uint32) << 16)
        | (padded[byte_idx + 2].astype(np.uint32) << 8)
        | padded[byte_idx + 3].astype(np.uint32)
    )
    out = (w >> (np.uint32(32 - width) - shift)) & np.uint32((1 << width) - 1)
    return out
