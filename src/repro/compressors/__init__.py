"""Reduction pipelines implemented on HPDR, plus evaluation baselines.

HPDR pipelines (Section IV case studies):

* :mod:`repro.compressors.mgard` — MGARD-X error-bounded lossy
  compression (multilevel decomposition + quantization + Huffman).
* :mod:`repro.compressors.zfp` — ZFP-X fixed-rate compression
  (4^d blocks, block-floating-point, near-orthogonal transform,
  bitplane truncation).
* :mod:`repro.compressors.huffman` — Huffman-X lossless compression
  (histogram, two-phase codebook, chunk-parallel encode/serialize).

Baselines (Section VI comparators):

* :mod:`repro.compressors.baselines.sz` — cuSZ-style dual-quantized
  Lorenzo predictor + Huffman.
* :mod:`repro.compressors.baselines.lz4` — NVCOMP-LZ4 stand-in
  (LZ77 byte compressor).
* :mod:`repro.compressors.baselines.mgard_gpu` /
  :mod:`repro.compressors.baselines.zfp_cuda` — "release version"
  wrappers: same maths, legacy execution profile (no CMM, no
  overlapped pipeline) for the performance studies.
"""

from repro.compressors.huffman import HuffmanX
from repro.compressors.zfp import ZFPX
from repro.compressors.mgard import MGARDX

__all__ = ["HuffmanX", "ZFPX", "MGARDX"]
