"""Reduction pipelines implemented on HPDR, plus evaluation baselines.

HPDR pipelines (Section IV case studies):

* :mod:`repro.compressors.mgard` — MGARD-X error-bounded lossy
  compression (multilevel decomposition + quantization + Huffman).
* :mod:`repro.compressors.zfp` — ZFP-X fixed-rate compression
  (4^d blocks, block-floating-point, near-orthogonal transform,
  bitplane truncation).
* :mod:`repro.compressors.huffman` — Huffman-X lossless compression
  (histogram, two-phase codebook, chunk-parallel encode/serialize).

Baselines (Section VI comparators):

* :mod:`repro.compressors.baselines.sz` — cuSZ-style dual-quantized
  Lorenzo predictor + Huffman.
* :mod:`repro.compressors.baselines.lz4` — NVCOMP-LZ4 stand-in
  (LZ77 byte compressor).
* :mod:`repro.compressors.baselines.mgard_gpu` /
  :mod:`repro.compressors.baselines.zfp_cuda` — "release version"
  wrappers: same maths, legacy execution profile (no CMM, no
  overlapped pipeline) for the performance studies.
"""

from repro.compressors.huffman import HuffmanX
from repro.compressors.zfp import ZFPX
from repro.compressors.mgard import MGARDX

#: codec classes that declare tunable knobs (``tunable_knobs()``).
_TUNABLE_CODECS = {
    "mgard-x": MGARDX,
    "zfp-x": ZFPX,
    "huffman-x": HuffmanX,
}


def codec_knob_declarations(codec: str) -> tuple:
    """A codec's tunable-knob declarations, as plain data.

    Each declaration is a dict with ``name``/``values``/``default`` and
    an optional ``stream_affecting`` flag; :mod:`repro.tune.knobs`
    turns them into :class:`~repro.tune.knobs.Knob` objects.  Keeping
    the declarations data-only means the compressor packages never
    import the tuner (instrumented code must not depend on the code
    that tunes it).  Codecs without a declaration tune only the shared
    execution knobs.
    """
    cls = _TUNABLE_CODECS.get(codec)
    if cls is None:
        return ()
    return cls.tunable_knobs()


__all__ = ["HuffmanX", "ZFPX", "MGARDX", "codec_knob_declarations"]
