"""Block-floating-point conversion (ZFP step 1: exponent alignment).

Each 4^d block aligns all values to the block's maximum exponent and
converts to two's-complement fixed point with ``q`` integer bits of
headroom (q = 30 for FP32 / 62 for FP64, mirroring zfp), guaranteeing
the subsequent integer lifting transform cannot overflow.
"""

from __future__ import annotations

import numpy as np

#: fixed-point precision q per source dtype (zfp's intprec - 2).
Q_BITS = {np.dtype(np.float32): 30, np.dtype(np.float64): 62}
#: exponent field width per source dtype.
E_BITS = {np.dtype(np.float32): 8, np.dtype(np.float64): 11}
#: exponent bias per source dtype.
E_BIAS = {np.dtype(np.float32): 127, np.dtype(np.float64): 1023}


def block_exponents(blocks: np.ndarray) -> np.ndarray:
    """Per-block maximum exponent ``emax`` with ``max|v| < 2^emax``.

    ``blocks`` is ``(nblocks, block_size)`` float.  All-zero blocks get
    the minimum representable exponent (they encode as a zero flag).
    """
    absmax = np.max(np.abs(blocks), axis=1)
    emax = np.zeros(blocks.shape[0], dtype=np.int32)
    nz = absmax > 0
    # frexp: absmax = m * 2^e with m in [0.5, 1)  =>  absmax < 2^e.
    _, e = np.frexp(absmax[nz])
    emax[nz] = e
    bias = E_BIAS[np.dtype(blocks.dtype)]
    emax[~nz] = -bias
    return np.clip(emax, -bias + 1, bias)


def to_fixed_point(blocks: np.ndarray, emax: np.ndarray) -> np.ndarray:
    """Scale each block by ``2^(q - emax)`` and truncate to int64.

    Values satisfy ``|x| < 2^q`` afterwards, so the decorrelating
    transform's bounded amplification stays inside 64-bit integers.
    """
    dtype = np.dtype(blocks.dtype)
    if dtype not in Q_BITS:
        raise TypeError(f"unsupported dtype {dtype}; use float32/float64")
    q = Q_BITS[dtype]
    # Clamp the scale exponent into float64 range: all-zero blocks carry
    # the minimum exponent, where the scale value is irrelevant (0 · s).
    exp = np.minimum(q - emax, 1023)
    scale = np.ldexp(np.ones_like(emax, dtype=np.float64), exp)
    return (blocks.astype(np.float64) * scale[:, None]).astype(np.int64)


def from_fixed_point(
    iblocks: np.ndarray, emax: np.ndarray, dtype: np.dtype
) -> np.ndarray:
    """Invert :func:`to_fixed_point` (up to the truncation)."""
    dtype = np.dtype(dtype)
    q = Q_BITS[dtype]
    exp = np.maximum(emax - q, -1074)
    scale = np.ldexp(np.ones_like(emax, dtype=np.float64), exp)
    return (iblocks.astype(np.float64) * scale[:, None]).astype(dtype)
