"""ZFP's other two compression modes (paper Section IV-C).

The paper implements only fix-rate mode ("the other two modes can be
implemented similarly"); this module supplies them:

* **fix-precision** — every block keeps exactly ``precision`` bitplanes.
  Records remain fixed-size, so the implementation is the fix-rate
  machinery with a plane-derived budget.
* **fix-accuracy** — every block keeps as many planes as its exponent
  requires to meet an *absolute* error tolerance.  Record sizes vary per
  block; blocks are grouped by plane count so encoding/decoding stays
  vectorized (at most ``intprec`` groups).

Both reuse the fix-rate building blocks: block-floating-point, the
near-orthogonal transform and the negabinary bitplane coder.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from repro.core.abstractions import blockize, unblockize
from repro.compressors.zfp.bitplane import INTPREC, decode_blocks, encode_blocks
from repro.compressors.zfp.fixedpoint import (
    E_BITS,
    Q_BITS,
    block_exponents,
    from_fixed_point,
    to_fixed_point,
)
from repro.compressors.zfp.transform import fwd_transform, inv_transform
from repro.util import stream_errors

_MAGIC = b"ZFPA"
_VERSION = 1


def planes_for_tolerance(
    emax: np.ndarray, tolerance: float, ndim: int, dtype: np.dtype
) -> np.ndarray:
    """Bitplanes each block must keep for an absolute tolerance.

    In the block's fixed-point domain (scale ``2^(emax-q)``), dropping
    everything below plane *j* perturbs a coefficient by at most
    ``~2^(j+1)``; the inverse transform amplifies by at most ``~2^ndim``.
    Solving for the largest droppable *j* gives the kept-plane count,
    clamped to ``[0, intprec]``.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    dtype = np.dtype(dtype)
    q = Q_BITS[dtype]
    width = INTPREC[dtype]
    # error_int ≤ 2^(j+1+ndim) · 2^(emax-q)  ≤  tol, plus two guard
    # planes for the lifting's shift truncation and negabinary rounding
    # (worst observed err/tol with this margin is ~0.55 over randomized
    # shapes/dtypes/magnitudes — see tests/compressors/test_zfp_modes.py)
    # ⇒ j ≤ log2(tol) - emax + q - ndim - 3
    j = np.floor(np.log2(tolerance) - emax.astype(np.float64) + q - ndim - 3)
    kept = width - 1 - j  # planes width-1 … j+1 are kept
    return np.clip(kept, 0, width).astype(np.int64)


class ZFPAccuracy:
    """Fix-accuracy ZFP: absolute error tolerance, variable-size blocks."""

    def __init__(self, tolerance: float, adapter=None) -> None:
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.tolerance = float(tolerance)
        self.adapter = adapter  # uniform API; encoding is grouped/vectorized

    # ------------------------------------------------------------------
    def compress(self, data: np.ndarray) -> bytes:
        data = np.ascontiguousarray(data)
        dtype = np.dtype(data.dtype)
        if dtype not in INTPREC:
            raise TypeError(f"fix-accuracy supports float32/float64, got {dtype}")
        ndim = data.ndim
        if not 1 <= ndim <= 4:
            raise ValueError(f"supports 1-4 dims, got {ndim}")
        bs = 4**ndim
        e_bits = E_BITS[dtype]

        batch, grid = blockize(data, (4,) * ndim, pad_mode="edge")
        flat = batch.reshape(batch.shape[0], -1).astype(dtype)
        emax = block_exponents(flat)
        iblocks = to_fixed_point(flat, emax)
        coeffs = fwd_transform(iblocks, ndim)

        kept = planes_for_tolerance(emax, self.tolerance, ndim, dtype)
        # All-zero blocks need no planes.
        kept[~np.any(coeffs != 0, axis=1)] = 0

        nblocks = coeffs.shape[0]
        records: list[bytes | None] = [None] * nblocks
        for k in np.unique(kept):
            idx = np.flatnonzero(kept == k)
            maxbits = 1 + e_bits + int(k) * bs
            recs = encode_blocks(coeffs[idx], emax[idx], maxbits, dtype)
            for j, block_id in enumerate(idx):
                records[block_id] = recs[j].tobytes()

        header = struct.pack(
            "<4sBBBd", _MAGIC, _VERSION, 1 if dtype == np.float64 else 0, ndim,
            self.tolerance,
        ) + struct.pack(f"<{ndim}q", *data.shape)
        counts = kept.astype(np.uint8).tobytes()
        payload = b"".join(records)  # type: ignore[arg-type]
        return header + counts + payload

    # ------------------------------------------------------------------
    @stream_errors
    def decompress(self, blob: bytes) -> np.ndarray:
        magic, version, is64, ndim, tolerance = struct.unpack_from("<4sBBBd", blob, 0)
        if magic != _MAGIC:
            raise ValueError("not a ZFP fix-accuracy stream (bad magic)")
        if version != _VERSION:
            raise ValueError(f"unsupported version {version}")
        off = struct.calcsize("<4sBBBd")
        shape = struct.unpack_from(f"<{ndim}q", blob, off)
        off += 8 * ndim
        dtype = np.dtype(np.float64 if is64 else np.float32)
        e_bits = E_BITS[dtype]
        bs = 4**ndim
        grid = tuple(-(-n // 4) for n in shape)
        nblocks = int(np.prod(grid))

        kept = np.frombuffer(blob, dtype=np.uint8, count=nblocks, offset=off
                             ).astype(np.int64)
        off += nblocks
        rec_bytes = (1 + e_bits + kept * bs + 7) // 8
        offsets = np.concatenate([[0], np.cumsum(rec_bytes)]) + off

        coeffs = np.zeros((nblocks, bs), dtype=np.int64)
        emax = np.full(nblocks, 0, dtype=np.int32)
        for k in np.unique(kept):
            idx = np.flatnonzero(kept == k)
            maxbits = 1 + e_bits + int(k) * bs
            nb = (maxbits + 7) // 8
            recs = np.stack([
                np.frombuffer(blob, dtype=np.uint8, count=nb,
                              offset=int(offsets[i]))
                for i in idx
            ])
            c, e = decode_blocks(recs, maxbits, bs, dtype)
            coeffs[idx] = c
            emax[idx] = e

        iblocks = inv_transform(coeffs, ndim)
        flat = from_fixed_point(iblocks, emax, dtype)
        batch = flat.reshape((nblocks,) + (4,) * ndim)
        return unblockize(batch, grid, tuple(shape))

    def compression_ratio(self, data: np.ndarray, blob: bytes) -> float:
        return data.nbytes / len(blob)

    def max_error(self, data: np.ndarray, blob: bytes) -> float:
        back = self.decompress(blob)
        return float(np.max(np.abs(back.astype(np.float64) - data.astype(np.float64))))


class ZFPPrecision:
    """Fix-precision ZFP: every block keeps exactly ``precision`` planes.

    Records stay fixed-size, so this is the fix-rate machinery with the
    budget expressed in planes rather than bits per value.
    """

    def __init__(self, precision: int, adapter=None) -> None:
        if precision < 1 or precision > 64:
            raise ValueError(f"precision must be in [1, 64], got {precision}")
        self.precision = int(precision)
        self.adapter = adapter

    def _as_rate(self, ndim: int, dtype: np.dtype) -> "ZFPX":
        from repro.compressors.zfp.compressor import ZFPX

        dtype = np.dtype(dtype)
        bs = 4**ndim
        precision = min(self.precision, INTPREC[dtype])
        rate = precision + (1 + E_BITS[dtype]) / bs
        return ZFPX(rate=rate, adapter=self.adapter)

    def compress(self, data: np.ndarray) -> bytes:
        return self._as_rate(np.ndim(data), np.asarray(data).dtype).compress(data)

    def decompress(self, blob: bytes) -> np.ndarray:
        from repro.compressors.zfp.compressor import ZFPX

        return ZFPX(adapter=self.adapter).decompress(blob)

    def compression_ratio(self, data: np.ndarray, blob: bytes) -> float:
        return data.nbytes / len(blob)
