"""Reference embedded bitplane coder (zfp's ``encode_ints``).

The production-fidelity path of this repository serializes raw truncated
bitplanes (vectorized, and the design the paper describes for ZFP-X).
Reference zfp instead *embeds* each block: per bitplane it emits the
already-active coefficients' bits verbatim and run-length-codes the
remainder with unary group tests, so budget concentrates on coefficients
that have become significant.  This module transcribes that coder
bit-for-bit (zfp ``src/template/codec.c``) as an opt-in, per-block
Python implementation — slow, but exact, and markedly better
rate-distortion at low rates.

Use via :class:`ZFPEmbedded` or ``ZFPX``-style round trips on small
arrays; the vectorized coder remains the default elsewhere.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.abstractions import blockize, unblockize
from repro.compressors.zfp.bitplane import INTPREC, from_negabinary, to_negabinary
from repro.compressors.zfp.fixedpoint import (
    E_BIAS,
    E_BITS,
    block_exponents,
    from_fixed_point,
    to_fixed_point,
)
from repro.compressors.zfp.transform import fwd_transform, inv_transform
from repro.util import stream_errors

_MAGIC = b"ZFPE"
_VERSION = 1


class BitWriter:
    """LSB-first bit writer (zfp stream convention)."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write_bit(self, b: int) -> int:
        self._bits.append(b & 1)
        return b & 1

    def write_bits(self, value: int, n: int) -> int:
        """Write the low ``n`` bits of ``value``; return ``value >> n``."""
        for _ in range(n):
            self._bits.append(value & 1)
            value >>= 1
        return value

    def __len__(self) -> int:
        return len(self._bits)

    def tobytes(self, pad_to_bits: int | None = None) -> bytes:
        bits = list(self._bits)
        if pad_to_bits is not None:
            if len(bits) > pad_to_bits:
                raise ValueError("bit budget exceeded")
            bits += [0] * (pad_to_bits - len(bits))
        arr = np.array(bits, dtype=np.uint8)
        return np.packbits(arr, bitorder="little").tobytes()


class BitReader:
    """LSB-first bit reader."""

    def __init__(self, data: bytes) -> None:
        self._bits = np.unpackbits(
            np.frombuffer(data, dtype=np.uint8), bitorder="little"
        )
        self._pos = 0

    def read_bit(self) -> int:
        if self._pos >= self._bits.size:
            return 0
        b = int(self._bits[self._pos])
        self._pos += 1
        return b

    def read_bits(self, n: int) -> int:
        v = 0
        for i in range(n):
            v |= self.read_bit() << i
        return v


def encode_block_embedded(
    ublock: np.ndarray, maxbits: int, maxprec: int
) -> BitWriter:
    """zfp ``encode_ints``: embedded coding of one negabinary block.

    ``ublock`` holds unsigned (negabinary) coefficients in sequency
    order.  Returns the writer positioned at ≤ ``maxbits`` bits.
    """
    size = ublock.size
    intprec = maxprec
    w = BitWriter()
    bits = maxbits
    vals = [int(v) for v in ublock]

    n = 0
    for k in range(intprec - 1, -1, -1):
        if bits <= 0:
            break
        # step 1: extract bit plane #k to x (coefficient i → bit i of x)
        x = 0
        for i in range(size):
            x += ((vals[i] >> k) & 1) << i
        # step 2: emit first n bits of the plane (known-active coeffs)
        m = min(n, bits)
        bits -= m
        x = w.write_bits(x, m)
        # step 3: unary run-length encode the remainder (group tests).
        # Transcribed from zfp's nested for-loops: the outer condition
        # writes the group test (!!x), the inner loop emits literal bits
        # until the next 1, the outer increment skips past that 1.
        while n < size and bits:
            bits -= 1
            if not w.write_bit(1 if x else 0):
                break
            while n < size - 1 and bits:
                bits -= 1
                if w.write_bit(x & 1):
                    break
                x >>= 1
                n += 1
            x >>= 1
            n += 1
    return w


def decode_block_embedded(
    reader: BitReader, maxbits: int, maxprec: int, size: int
) -> np.ndarray:
    """zfp ``decode_ints``: invert :func:`encode_block_embedded`."""
    intprec = maxprec
    vals = [0] * size
    bits = maxbits

    n = 0
    for k in range(intprec - 1, -1, -1):
        if bits <= 0:
            break
        m = min(n, bits)
        bits -= m
        x = reader.read_bits(m)
        while n < size and bits:
            bits -= 1
            if not reader.read_bit():
                break
            while n < size - 1 and bits:
                bits -= 1
                if reader.read_bit():
                    break
                n += 1
            x += 1 << n
            n += 1
        # deposit plane #k
        i = 0
        while x:
            if x & 1:
                vals[i] += 1 << k
            x >>= 1
            i += 1
    return np.array(vals, dtype=np.uint64)


class ZFPEmbedded:
    """Fixed-rate ZFP with the reference embedded coder (per-block).

    API-compatible with :class:`~repro.compressors.zfp.compressor.ZFPX`.
    Intended for correctness studies and small arrays — the inner loops
    are per-block Python.
    """

    def __init__(self, rate: float = 8.0, adapter=None) -> None:
        if rate <= 0 or rate > 66:
            raise ValueError(f"rate must be in (0, 66], got {rate}")
        self.rate = float(rate)
        self.adapter = adapter

    def _maxbits(self, ndim: int, dtype: np.dtype) -> int:
        bs = 4**ndim
        return max(int(round(self.rate * bs)), 1 + E_BITS[np.dtype(dtype)])

    def compress(self, data: np.ndarray) -> bytes:
        data = np.ascontiguousarray(data)
        dtype = np.dtype(data.dtype)
        if dtype not in INTPREC:
            raise TypeError(f"supports float32/float64, got {dtype}")
        ndim = data.ndim
        if not 1 <= ndim <= 4:
            raise ValueError(f"supports 1-4 dims, got {ndim}")
        bs = 4**ndim
        e_bits = E_BITS[dtype]
        bias = E_BIAS[dtype]
        width = INTPREC[dtype]
        maxbits = self._maxbits(ndim, dtype)

        batch, grid = blockize(data, (4,) * ndim, pad_mode="edge")
        flat = batch.reshape(batch.shape[0], -1).astype(dtype)
        emax = block_exponents(flat)
        coeffs = fwd_transform(to_fixed_point(flat, emax), ndim)
        neg = to_negabinary(coeffs, width)

        records = []
        rec_bytes = (maxbits + 7) // 8
        for b in range(neg.shape[0]):
            w = BitWriter()
            nonzero = bool(np.any(coeffs[b] != 0))
            w.write_bit(1 if nonzero else 0)
            if nonzero:
                w.write_bits(int(emax[b]) + bias, e_bits)
                inner = encode_block_embedded(
                    neg[b], maxbits - 1 - e_bits, width
                )
                w._bits.extend(inner._bits)
            records.append(w.tobytes(pad_to_bits=rec_bytes * 8))

        header = struct.pack(
            "<4sBBBdI", _MAGIC, _VERSION, 1 if dtype == np.float64 else 0,
            ndim, self.rate, maxbits,
        ) + struct.pack(f"<{ndim}q", *data.shape)
        return header + b"".join(records)

    @stream_errors
    def decompress(self, blob: bytes) -> np.ndarray:
        magic, version, is64, ndim, rate, maxbits = struct.unpack_from(
            "<4sBBBdI", blob, 0
        )
        if magic != _MAGIC:
            raise ValueError("not a ZFP-embedded stream (bad magic)")
        if version != _VERSION:
            raise ValueError(f"unsupported version {version}")
        off = struct.calcsize("<4sBBBdI")
        shape = struct.unpack_from(f"<{ndim}q", blob, off)
        off += 8 * ndim
        dtype = np.dtype(np.float64 if is64 else np.float32)
        e_bits = E_BITS[dtype]
        bias = E_BIAS[dtype]
        width = INTPREC[dtype]
        bs = 4**ndim
        rec_bytes = (maxbits + 7) // 8
        grid = tuple(-(-n // 4) for n in shape)
        nblocks = int(np.prod(grid))

        neg = np.zeros((nblocks, bs), dtype=np.uint64)
        emax = np.full(nblocks, -bias, dtype=np.int32)
        for b in range(nblocks):
            rec = blob[off + b * rec_bytes : off + (b + 1) * rec_bytes]
            r = BitReader(rec)
            if r.read_bit():
                emax[b] = r.read_bits(e_bits) - bias
                neg[b] = decode_block_embedded(
                    r, maxbits - 1 - e_bits, width, bs
                )
        coeffs = from_negabinary(neg, width)
        iblocks = inv_transform(coeffs, ndim)
        flat = from_fixed_point(iblocks, emax, dtype)
        return unblockize(flat.reshape((nblocks,) + (4,) * ndim), grid,
                          tuple(shape))

    def compression_ratio(self, data: np.ndarray, blob: bytes) -> float:
        return data.nbytes / len(blob)
