"""ZFP-X fixed-rate compressor (paper Algorithm 3).

The whole per-block chain — exponent alignment, fixed-point conversion,
near-orthogonal transform, bitplane truncation — runs under a single
Locality abstraction: blocks are independent, emit identical bit counts,
and need no global coordination for serialization.
"""

from __future__ import annotations

import math
import struct
from typing import Sequence

import numpy as np

from repro.core.abstractions import block_grid, blockize, locality, unblockize
from repro.core.context import ContextCache
from repro.core.functor import LocalityFunctor
from repro.compressors.zfp.bitplane import INTPREC, decode_blocks, encode_blocks
from repro.compressors.zfp.fixedpoint import (
    E_BITS,
    block_exponents,
    from_fixed_point,
    to_fixed_point,
)
from repro.compressors.zfp.transform import fwd_transform, inv_transform
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import NULL_SPAN, Span, TRACER as _TRACER
from repro.util import stream_errors

_MAGIC = b"ZFPX"
_VERSION = 1


def _span(name: str, **args):
    """ZFP stage span (shared NULL_SPAN when tracing is off)."""
    if not _TRACER.enabled:
        return NULL_SPAN
    return Span(_TRACER, name, "zfp", args)


def _count_bytes(nbytes_in: int, nbytes_out: int) -> None:
    if not _TRACER.enabled:
        return
    _METRICS.counter("hpdr_bytes_in_total", "bytes fed to compress()").inc(
        int(nbytes_in), codec="zfp"
    )
    _METRICS.counter("hpdr_bytes_out_total", "compressed bytes produced").inc(
        int(nbytes_out), codec="zfp"
    )


def rate_for_error_bound(error_bound: float, dtype=np.float32, ndim: int = 3) -> float:
    """Heuristic rate (bits/value) targeting a relative error bound.

    Transform-coding error halves per kept bitplane, so the plane count
    scales with ``-log2(eb)``; the block header amortizes over ``4^ndim``
    values.  This mirrors how the paper's evaluation drives ZFP's
    fix-rate mode from the same relative bounds used for MGARD.
    """
    if error_bound <= 0 or error_bound >= 1:
        raise ValueError(f"error_bound must be in (0, 1), got {error_bound}")
    dtype = np.dtype(dtype)
    # Extra planes absorb the inverse transform's error amplification
    # (roughly a factor per lifted dimension) and the fact that this
    # codec truncates bitplanes uniformly (no embedded group-testing,
    # so every coefficient shares the budget).
    planes = math.ceil(-math.log2(error_bound)) + 2 + ndim
    planes = max(2, min(INTPREC[dtype], planes))
    bs = 4**ndim
    return planes + (1 + E_BITS[dtype]) / bs


class _ZfpEncodeFunctor(LocalityFunctor):
    """Locality stage: align → fixed point → transform → bitplanes."""

    name = "zfp.encode"
    bytes_per_element = 7.5

    def __init__(self, ndim: int, maxbits: int, dtype: np.dtype) -> None:
        self._ndim = ndim
        self._maxbits = maxbits
        self._dtype = np.dtype(dtype)

    def apply(self, blocks: np.ndarray) -> np.ndarray:
        n = blocks.shape[0]
        with _span("zfp.align", blocks=n):
            flat = blocks.reshape(n, -1).astype(self._dtype)
            emax = block_exponents(flat)
            iblocks = to_fixed_point(flat, emax)
        with _span("zfp.transform", blocks=n):
            coeffs = fwd_transform(iblocks, self._ndim)
        with _span("zfp.bitplane", blocks=n):
            return encode_blocks(coeffs, emax, self._maxbits, self._dtype)


class _ZfpDecodeFunctor(LocalityFunctor):
    """Locality stage: bitplanes → inverse transform → floats."""

    name = "zfp.decode"
    bytes_per_element = 7.5

    def __init__(self, ndim: int, maxbits: int, dtype: np.dtype) -> None:
        self._ndim = ndim
        self._maxbits = maxbits
        self._dtype = np.dtype(dtype)

    def apply(self, records: np.ndarray) -> np.ndarray:
        bs = 4**self._ndim
        n = records.shape[0]
        with _span("zfp.bitplane", blocks=n):
            coeffs, emax = decode_blocks(records.reshape(n, -1),
                                         self._maxbits, bs, self._dtype)
        with _span("zfp.transform", blocks=n):
            iblocks = inv_transform(coeffs, self._ndim)
        with _span("zfp.align", blocks=n):
            flat = from_fixed_point(iblocks, emax, self._dtype)
            return flat.reshape((n,) + (4,) * self._ndim)


class ZFPX:
    """HPDR fixed-rate ZFP compressor.

    Parameters
    ----------
    rate:
        Compressed bits per value.  Each 4^d block stores exactly
        ``round(rate * 4^d)`` bits (byte-padded per block).
    adapter:
        Device adapter (defaults to serial).
    context_cache:
        Optional CMM cache: the block-batch staging buffer persists per
        (shape, dtype, rate), so repeated same-shaped compressions
        allocate nothing through the context.
    """

    def __init__(
        self,
        rate: float = 8.0,
        adapter=None,
        context_cache: ContextCache | None = None,
    ) -> None:
        if rate <= 0 or rate > 64 + 2:
            raise ValueError(f"rate must be in (0, 66], got {rate}")
        self.rate = float(rate)
        self.adapter = adapter
        self.cache = context_cache if context_cache is not None else ContextCache()

    @classmethod
    def tunable_knobs(cls) -> tuple:
        """Tunable-knob declarations (see ``codec_knob_declarations``).

        ZFP-X has no codec-private byte-neutral knobs (``rate`` is a
        quality parameter, not a performance one), so it tunes only the
        shared execution knobs.
        """
        return ()

    def _maxbits(self, ndim: int, dtype: np.dtype) -> int:
        bs = 4**ndim
        want = int(round(self.rate * bs))
        return max(want, 1 + E_BITS[np.dtype(dtype)])

    def compress(self, data: np.ndarray) -> bytes:
        data = np.ascontiguousarray(data)
        dtype = np.dtype(data.dtype)
        if dtype not in INTPREC:
            raise TypeError(f"ZFP-X supports float32/float64, got {dtype}")
        ndim = data.ndim
        if not 1 <= ndim <= 4:
            raise ValueError(f"ZFP-X supports 1-4 dimensions, got {ndim}")
        maxbits = self._maxbits(ndim, dtype)

        ctx = self.cache.get(("zfp", data.shape, dtype.str, maxbits), pin=True)
        try:
            records = locality(
                data,
                _ZfpEncodeFunctor(ndim, maxbits, dtype),
                block_shape=(4,) * ndim,
                adapter=self.adapter,
                pad_mode="edge",
                reassemble=False,
                ctx=ctx,
            )
        finally:
            self.cache.release(ctx)
        with _span("zfp.serialize", nblocks=int(records.shape[0])):
            header = struct.pack(
                "<4sBBBdI",
                _MAGIC,
                _VERSION,
                1 if dtype == np.float64 else 0,
                ndim,
                self.rate,
                maxbits,
            ) + struct.pack(f"<{ndim}q", *data.shape)
            blob = header + records.tobytes()
        _count_bytes(data.nbytes, len(blob))
        return blob

    @stream_errors
    def decompress(self, blob: bytes) -> np.ndarray:
        magic, version, is64, ndim, rate, maxbits = struct.unpack_from("<4sBBBdI", blob, 0)
        if magic != _MAGIC:
            raise ValueError("not a ZFP-X stream (bad magic)")
        if version != _VERSION:
            raise ValueError(f"unsupported ZFP-X version {version}")
        off = struct.calcsize("<4sBBBdI")
        shape = struct.unpack_from(f"<{ndim}q", blob, off)
        off += 8 * ndim
        dtype = np.dtype(np.float64 if is64 else np.float32)
        rec_bytes = -(-maxbits // 8)
        grid_shape = tuple(-(-n // 4) for n in shape)
        nblocks = int(np.prod(grid_shape))
        records = np.frombuffer(
            blob, dtype=np.uint8, count=nblocks * rec_bytes, offset=off
        ).reshape(nblocks, rec_bytes)

        decoder = _ZfpDecodeFunctor(ndim, maxbits, dtype)
        if self.adapter is not None:
            blocks = self.adapter.execute_group_batch(decoder, records)
        else:
            blocks = decoder.apply(records)
        return unblockize(blocks, grid_shape, tuple(shape))

    # -- vectorized batch entry points ------------------------------------
    def compress_batch(self, arrays: Sequence[np.ndarray]) -> list[bytes]:
        """Compress N same-shape/same-dtype arrays in one GEM launch.

        Byte-identical to calling :meth:`compress` per array: ZFP blocks
        encode independently with per-block exponents, so concatenating
        every array's blocks into one batch and slicing the records back
        out reproduces each single-shot stream exactly (the serving
        conformance suite pins this).  The win is amortization — one
        adapter launch and one vectorized bitplane pass over
        ``N x nblocks`` blocks instead of N launches over ``nblocks``.

        Raises ``ValueError`` when the arrays disagree on shape or dtype
        (callers such as :class:`repro.serve.worker.Worker` then fall
        back to per-array execution).
        """
        arrays = [np.ascontiguousarray(a) for a in arrays]
        if not arrays:
            return []
        first = arrays[0]
        dtype = np.dtype(first.dtype)
        if dtype not in INTPREC:
            raise TypeError(f"ZFP-X supports float32/float64, got {dtype}")
        shape = first.shape
        ndim = first.ndim
        if not 1 <= ndim <= 4:
            raise ValueError(f"ZFP-X supports 1-4 dimensions, got {ndim}")
        for a in arrays[1:]:
            if a.shape != shape or a.dtype != dtype:
                raise ValueError(
                    "compress_batch requires uniform shape/dtype, got "
                    f"{a.shape}/{a.dtype} vs {shape}/{dtype}"
                )
        if len(arrays) == 1:
            return [self.compress(first)]

        maxbits = self._maxbits(ndim, dtype)
        block_shape = (4,) * ndim
        grid_shape = block_grid(shape, block_shape)
        nblocks = int(np.prod(grid_shape))
        bs = 4**ndim
        n = len(arrays)
        # The batch staging lives in scratch (capacity only grows), so a
        # fluctuating batch size N reaches a zero-alloc steady state
        # instead of rebinding an exact-shape buffer every flush.
        ctx = self.cache.get(("zfp.batch", shape, dtype.str, maxbits), pin=True)
        try:
            batch = ctx.scratch("batch", n * nblocks * bs, dtype).reshape(
                (n * nblocks,) + block_shape
            )
            with _span("zfp.blockize", arrays=n, blocks=n * nblocks):
                for i, a in enumerate(arrays):
                    blockize(
                        a, block_shape, pad_mode="edge",
                        out=batch[i * nblocks:(i + 1) * nblocks],
                    )
            functor = _ZfpEncodeFunctor(ndim, maxbits, dtype)
            if self.adapter is not None:
                records = self.adapter.execute_group_batch(functor, batch)
            else:
                records = functor.apply(batch)
        finally:
            self.cache.release(ctx)
        with _span("zfp.serialize", nblocks=n * nblocks, arrays=n):
            header = struct.pack(
                "<4sBBBdI",
                _MAGIC,
                _VERSION,
                1 if dtype == np.float64 else 0,
                ndim,
                self.rate,
                maxbits,
            ) + struct.pack(f"<{ndim}q", *shape)
            per_array = records.reshape(n, nblocks, -1)
            blobs = [header + per_array[i].tobytes() for i in range(n)]
        _count_bytes(n * first.nbytes, sum(len(b) for b in blobs))
        return blobs

    @stream_errors
    def decompress_batch(self, blobs: Sequence[bytes]) -> list[np.ndarray]:
        """Decompress N uniform ZFP-X streams in one GEM launch.

        Every stream must carry a byte-identical header (same shape,
        dtype and rate); otherwise ``ValueError`` and callers fall back
        to per-stream :meth:`decompress`.  Results match the single-shot
        path exactly.
        """
        blobs = list(blobs)
        if not blobs:
            return []
        if len(blobs) == 1:
            return [self.decompress(blobs[0])]
        magic, version, is64, ndim, _rate, maxbits = struct.unpack_from(
            "<4sBBBdI", blobs[0], 0
        )
        if magic != _MAGIC:
            raise ValueError("not a ZFP-X stream (bad magic)")
        if version != _VERSION:
            raise ValueError(f"unsupported ZFP-X version {version}")
        off = struct.calcsize("<4sBBBdI")
        shape = struct.unpack_from(f"<{ndim}q", blobs[0], off)
        off += 8 * ndim
        header = blobs[0][:off]
        for b in blobs[1:]:
            if bytes(b[:off]) != header:
                raise ValueError(
                    "decompress_batch requires uniform stream headers"
                )
        dtype = np.dtype(np.float64 if is64 else np.float32)
        rec_bytes = -(-maxbits // 8)
        grid_shape = tuple(-(-s // 4) for s in shape)
        nblocks = int(np.prod(grid_shape))
        n = len(blobs)

        ctx = self.cache.get(
            ("zfp.batch", tuple(shape), dtype.str, maxbits), pin=True
        )
        try:
            records = ctx.scratch(
                "records", n * nblocks * rec_bytes, np.uint8
            ).reshape(n * nblocks, rec_bytes)
            with _span("zfp.gather", arrays=n, blocks=n * nblocks):
                for i, b in enumerate(blobs):
                    records[i * nblocks:(i + 1) * nblocks] = np.frombuffer(
                        b, dtype=np.uint8, count=nblocks * rec_bytes,
                        offset=off,
                    ).reshape(nblocks, rec_bytes)
            decoder = _ZfpDecodeFunctor(ndim, maxbits, dtype)
            if self.adapter is not None:
                blocks = self.adapter.execute_group_batch(decoder, records)
            else:
                blocks = decoder.apply(records)
        finally:
            self.cache.release(ctx)
        return [
            unblockize(
                blocks[i * nblocks:(i + 1) * nblocks], grid_shape, tuple(shape)
            )
            for i in range(n)
        ]

    # -- reporting helpers ------------------------------------------------
    def compression_ratio(self, data: np.ndarray, blob: bytes) -> float:
        return data.nbytes / len(blob)

    def expected_ratio(self, ndim: int, dtype=np.float32) -> float:
        """Nominal ratio from the rate alone (ignores headers/padding)."""
        bits_per_value = np.dtype(dtype).itemsize * 8
        maxbits = self._maxbits(ndim, dtype)
        bs = 4**ndim
        stored_bits = 8 * (-(-maxbits // 8))
        return bits_per_value * bs / stored_bits
