"""Negabinary conversion and fixed-rate bitplane coding.

Transformed coefficients are mapped from two's complement to negabinary
(zfp's trick: small-magnitude values of either sign get leading zero
bits), then serialized plane-by-plane from the most significant plane.
Fix-rate mode truncates each block's stream at exactly ``maxbits`` bits:
all blocks emit the same size, so — as the paper notes for Algorithm 3 —
serialization needs no global coordination.

Negabinary width follows zfp's ``intprec``: 32 bits for FP32 blocks and
64 for FP64, so the plane budget is spent only on meaningful planes.

Per-block layout (bit granularity, zero-padded to whole bytes):

    [1 bit nonzero flag][e_bits biased emax][bitplane bits ...]
"""

from __future__ import annotations

import numpy as np

from repro.compressors.zfp.fixedpoint import E_BIAS, E_BITS
from repro.util import hot_path

#: bitplane count (zfp intprec) per source dtype.
INTPREC = {np.dtype(np.float32): 32, np.dtype(np.float64): 64}


def _nbmask(width: int) -> np.uint64:
    if width == 64:
        return np.uint64(0xAAAAAAAAAAAAAAAA)
    return np.uint64(0xAAAAAAAAAAAAAAAA) & np.uint64((1 << width) - 1)


def _wmask(width: int) -> np.uint64:
    return np.uint64(0xFFFFFFFFFFFFFFFF) if width == 64 else np.uint64((1 << width) - 1)


@hot_path(reason="runs over every coefficient on the zfp encode path")
def to_negabinary(x: np.ndarray, width: int = 64) -> np.ndarray:
    """Two's complement → negabinary, modulo ``2^width`` (invertible)."""
    mask = _nbmask(width)
    u = x.astype(np.int64, copy=False).view(np.uint64) & _wmask(width)
    return ((u + mask) ^ mask) & _wmask(width)


@hot_path(reason="runs over every coefficient on the zfp decode path")
def from_negabinary(u: np.ndarray, width: int = 64) -> np.ndarray:
    """Inverse of :func:`to_negabinary`, sign-extended to int64."""
    mask = _nbmask(width)
    w = ((u.astype(np.uint64, copy=False) ^ mask) - mask) & _wmask(width)
    x = w.view(np.int64)
    if width < 64:
        sign = np.uint64(1) << np.uint64(width - 1)
        x = np.where(
            (w & sign) != 0,
            (w | ~_wmask(width)).view(np.int64),
            x,
        )
    return x.astype(np.int64, copy=False)


def _plane_budget(maxbits: int, e_bits: int) -> int:
    return max(0, maxbits - 1 - e_bits)


def _window_bits(nplanes: int, width: int) -> int:
    """Smallest byte-aligned window ≥ ``nplanes`` (for packbits I/O)."""
    for w in (16, 32, 64):
        if nplanes <= w <= width:
            return w
    return width


def encode_blocks(
    coeffs: np.ndarray,
    emax: np.ndarray,
    maxbits: int,
    dtype: np.dtype,
) -> np.ndarray:
    """Encode a coefficient batch ``(nblocks, block_size)`` at fixed rate.

    Returns ``(nblocks, ceil(maxbits/8))`` uint8 — one fixed-size record
    per block.  All-zero blocks emit flag 0 and zero padding.
    """
    dtype = np.dtype(dtype)
    e_bits = E_BITS[dtype]
    bias = E_BIAS[dtype]
    width = INTPREC[dtype]
    if maxbits < 1 + e_bits:
        raise ValueError(
            f"maxbits={maxbits} cannot fit the {1 + e_bits}-bit block header"
        )
    nblocks, bs = coeffs.shape
    neg = to_negabinary(coeffs, width)

    nonzero = np.any(coeffs != 0, axis=1)
    ebiased = (emax.astype(np.int64) + bias).astype(np.uint64)

    bits = np.zeros((nblocks, maxbits), dtype=np.uint8)
    bits[:, 0] = nonzero
    for i in range(e_bits):  # exponent, MSB first
        shift = np.uint64(e_bits - 1 - i)
        bits[:, 1 + i] = ((ebiased >> shift) & np.uint64(1)).astype(np.uint8)

    plane_bits = _plane_budget(maxbits, e_bits)
    nplanes = min(width, -(-plane_bits // bs)) if plane_bits else 0
    if nplanes:
        # Keep only the top w >= nplanes bits of each value and let
        # np.unpackbits explode them: unpacked bit p of the window is
        # negabinary bit width-1-p, i.e. exactly bitplane p.  This runs
        # byte-at-a-time in C instead of materializing a
        # (nblocks, nplanes, bs) uint64 broadcast.
        w = _window_bits(nplanes, width)
        win = (neg >> np.uint64(width - w)).astype(f">u{w // 8}", order="C")
        unpacked = np.unpackbits(
            win.view(np.uint8).reshape(nblocks, bs * (w // 8)), axis=1
        )
        planes = unpacked.reshape(nblocks, bs, w).transpose(0, 2, 1)[:, :nplanes, :]
        flat = planes.reshape(nblocks, nplanes * bs)[:, :plane_bits]
        bits[:, 1 + e_bits : 1 + e_bits + flat.shape[1]] = flat
    # Zero blocks carry no payload (their planes are zero anyway, but
    # masking keeps the stream canonical for byte-equality tests).
    bits[~nonzero, 1:] = 0
    return np.packbits(bits, axis=1)


def decode_blocks(
    records: np.ndarray,
    maxbits: int,
    block_size: int,
    dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`encode_blocks`.

    Returns ``(coeffs, emax)``; truncated low planes reconstruct as zero
    bits (negabinary rounds toward small magnitudes).
    """
    dtype = np.dtype(dtype)
    e_bits = E_BITS[dtype]
    bias = E_BIAS[dtype]
    width = INTPREC[dtype]
    nblocks = records.shape[0]
    bits = np.unpackbits(records, axis=1)[:, :maxbits]

    nonzero = bits[:, 0].astype(bool)
    ebiased = np.zeros(nblocks, dtype=np.uint64)
    for i in range(e_bits):
        ebiased = (ebiased << np.uint64(1)) | bits[:, 1 + i].astype(np.uint64)
    emax = ebiased.astype(np.int64) - bias

    plane_bits = _plane_budget(maxbits, e_bits)
    nplanes = min(width, -(-plane_bits // block_size)) if plane_bits else 0
    neg = np.zeros((nblocks, block_size), dtype=np.uint64)
    if nplanes:
        payload = np.zeros((nblocks, nplanes * block_size), dtype=np.uint8)
        avail = min(plane_bits, nplanes * block_size)
        payload[:, :avail] = bits[:, 1 + e_bits : 1 + e_bits + avail]
        planes = payload.reshape(nblocks, nplanes, block_size)
        # Inverse of the encode-side window trick: lay bitplane p at
        # window bit p, packbits back into byte-aligned values, then
        # shift up to the negabinary position (see encode_blocks).
        w = _window_bits(nplanes, width)
        arranged = np.zeros((nblocks, block_size, w), dtype=np.uint8)
        arranged[:, :, :nplanes] = planes.transpose(0, 2, 1)
        packed = np.packbits(arranged.reshape(nblocks, block_size * w), axis=1)
        vals = packed.reshape(nblocks, block_size, w // 8).view(f">u{w // 8}")
        neg = vals.reshape(nblocks, block_size).astype(np.uint64) << np.uint64(
            width - w
        )
    coeffs = from_negabinary(neg, width)
    coeffs[~nonzero] = 0
    emax[~nonzero] = -bias
    return coeffs, emax.astype(np.int32)
