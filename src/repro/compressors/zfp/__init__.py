"""ZFP-X: fixed-rate compressed floating-point arrays on HPDR.

Pipeline (paper Fig. 7 / Algorithm 3):

1. decompose into 4^d blocks — Locality abstraction.
2. exponent alignment: block-floating-point conversion to fixed point.
3. near-orthogonal decorrelating transform (the zfp lifting scheme).
4. truncate + serialize bitplanes; every block emits exactly
   ``rate × 4^d`` bits, so serialization needs no global coordination
   (Algorithm 3's observation).

Only fix-rate mode is implemented, matching the paper's scope ("ZFP only
supports fix-rate mode on GPU at the time of evaluation").
"""

from repro.compressors.zfp.fixedpoint import (
    block_exponents,
    to_fixed_point,
    from_fixed_point,
)
from repro.compressors.zfp.transform import fwd_lift, inv_lift, fwd_transform, inv_transform
from repro.compressors.zfp.bitplane import (
    to_negabinary,
    from_negabinary,
    encode_blocks,
    decode_blocks,
)
from repro.compressors.zfp.compressor import ZFPX, rate_for_error_bound
from repro.compressors.zfp.modes import ZFPAccuracy, ZFPPrecision
from repro.compressors.zfp.embedded import ZFPEmbedded

__all__ = [
    "block_exponents",
    "to_fixed_point",
    "from_fixed_point",
    "fwd_lift",
    "inv_lift",
    "fwd_transform",
    "inv_transform",
    "to_negabinary",
    "from_negabinary",
    "encode_blocks",
    "decode_blocks",
    "ZFPX",
    "rate_for_error_bound",
    "ZFPAccuracy",
    "ZFPPrecision",
    "ZFPEmbedded",
]
