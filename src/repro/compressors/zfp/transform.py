"""ZFP's near-orthogonal decorrelating transform (integer lifting).

The forward transform applies, along each dimension of a 4^d block, the
lifted near-orthogonal basis

            ( 4  4  4  4)
    1/16 *  ( 5  1 -1 -5)
            (-4  4  4 -4)
            (-2  6 -6  2)

implemented exactly as zfp's ``fwd_lift``/``inv_lift`` integer lifting
steps, which are perfectly invertible in two's-complement arithmetic
(arithmetic right shifts).  Vectorized over all blocks at once.

Coefficients are reordered by total sequency (sum of per-dimension
frequencies) so low-frequency — high-magnitude — coefficients serialize
into earlier bitplane positions.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


def fwd_lift(v: np.ndarray, axis: int = -1) -> np.ndarray:
    """Forward lifting along one length-4 axis of an int64 array."""
    v = np.moveaxis(v, axis, -1)
    if v.shape[-1] != 4:
        raise ValueError(f"lifting axis must have length 4, got {v.shape[-1]}")
    x = v[..., 0].copy()
    y = v[..., 1].copy()
    z = v[..., 2].copy()
    w = v[..., 3].copy()

    x += w; x >>= 1; w -= x
    z += y; z >>= 1; y -= z
    x += z; x >>= 1; z -= x
    w += y; w >>= 1; y -= w
    w += y >> 1; y -= w >> 1

    out = np.stack([x, y, z, w], axis=-1)
    return np.moveaxis(out, -1, axis)


def inv_lift(v: np.ndarray, axis: int = -1) -> np.ndarray:
    """Exact inverse of :func:`fwd_lift`."""
    v = np.moveaxis(v, axis, -1)
    if v.shape[-1] != 4:
        raise ValueError(f"lifting axis must have length 4, got {v.shape[-1]}")
    x = v[..., 0].copy()
    y = v[..., 1].copy()
    z = v[..., 2].copy()
    w = v[..., 3].copy()

    y += w >> 1; w -= y >> 1
    y += w; w <<= 1; w -= y
    z += x; x <<= 1; x -= z
    y += z; z <<= 1; z -= y
    w += x; x <<= 1; x -= w

    out = np.stack([x, y, z, w], axis=-1)
    return np.moveaxis(out, -1, axis)


@lru_cache(maxsize=8)
def sequency_order(ndim: int) -> np.ndarray:
    """Flat coefficient permutation ordered by total sequency.

    Sorting key: (sum of per-dim frequency indices, flat index), a
    deterministic stand-in for zfp's precomputed ``perm`` tables with
    the same low-frequency-first property.
    """
    if not 1 <= ndim <= 4:
        raise ValueError(f"ndim must be in [1, 4], got {ndim}")
    grids = np.indices((4,) * ndim).reshape(ndim, -1)
    total = grids.sum(axis=0)
    flat = np.arange(4**ndim)
    return np.lexsort((flat, total)).astype(np.intp)


def fwd_transform(iblocks: np.ndarray, ndim: int) -> np.ndarray:
    """Forward transform of a block batch ``(nblocks, 4**ndim)``.

    Returns coefficients in sequency order, same shape.
    """
    n = iblocks.shape[0]
    v = iblocks.reshape((n,) + (4,) * ndim).astype(np.int64)
    for axis in range(1, ndim + 1):
        v = fwd_lift(v, axis=axis)
    flat = v.reshape(n, 4**ndim)
    return flat[:, sequency_order(ndim)]


def inv_transform(coeffs: np.ndarray, ndim: int) -> np.ndarray:
    """Inverse of :func:`fwd_transform`."""
    n = coeffs.shape[0]
    perm = sequency_order(ndim)
    unperm = np.empty_like(perm)
    unperm[perm] = np.arange(perm.size, dtype=np.intp)
    v = coeffs[:, unperm].reshape((n,) + (4,) * ndim).astype(np.int64)
    for axis in range(ndim, 0, -1):
        v = inv_lift(v, axis=axis)
    return v.reshape(n, 4**ndim)
