"""Simulated device implementing the Host-Device Execution Model surface.

Section V-A of the paper abstracts a GPU node as: two independent DMA
engines (one per copy direction), one compute engine, and queues
(streams) that order work.  :class:`SimDevice` materializes exactly that
on top of the discrete-event engine, and routes allocation traffic
through a (possibly shared) runtime so the multi-GPU contention study is
expressible.
"""

from __future__ import annotations

from repro.machine.engine import Resource, SimQueue, Simulator, Task, TaskKind
from repro.machine.runtime import SharedRuntime
from repro.machine.specs import ProcessorSpec, get_processor


class SimDevice:
    """One simulated processor attached to a :class:`Simulator`.

    Parameters
    ----------
    sim:
        The discrete-event simulator that owns the schedule.
    spec:
        Processor architecture (name or :class:`ProcessorSpec`).
    runtime:
        The runtime used for memory management.  Devices on the same
        node share one :class:`SharedRuntime`, serializing their
        allocations — the contention mechanism behind the paper's
        Fig. 16.  When omitted a private runtime is created.
    index:
        Device ordinal within its node (for trace labelling).
    """

    def __init__(
        self,
        sim: Simulator,
        spec: ProcessorSpec | str,
        runtime: SharedRuntime | None = None,
        index: int = 0,
    ) -> None:
        self.sim = sim
        self.spec = spec if isinstance(spec, ProcessorSpec) else get_processor(spec)
        self.index = index
        prefix = f"{self.spec.name}[{index}]"
        self.compute_engine = sim.resource(f"{prefix}.compute")
        self.dma_h2d = sim.resource(f"{prefix}.dma_h2d", bandwidth=self.spec.link_h2d)
        self.dma_d2h = sim.resource(f"{prefix}.dma_d2h", bandwidth=self.spec.link_d2h)
        # Host-side memcpy engine (application buffer ↔ staging buffer ↔
        # I/O buffer).  HPDR's pipeline DMA-copies straight from the
        # application buffer; legacy pipelines pay these staging copies —
        # the overhead Fig. 1 profiles.
        self.host_memcpy = sim.resource(f"{prefix}.host_memcpy", bandwidth=48e9)
        self.runtime = runtime if runtime is not None else SharedRuntime(sim, name=f"{prefix}.rt")
        self.runtime.attach(self)
        self._queues: list[SimQueue] = []
        self.mem_in_use: float = 0.0

    # -- queues --------------------------------------------------------
    def create_queue(self, name: str | None = None) -> SimQueue:
        q = self.sim.queue(name or f"{self.spec.name}[{self.index}].q{len(self._queues)}")
        self._queues.append(q)
        return q

    def create_queues(self, n: int) -> list[SimQueue]:
        return [self.create_queue() for _ in range(n)]

    # -- memory --------------------------------------------------------
    def malloc(
        self,
        nbytes: int,
        queue: SimQueue,
        deps: list[Task] | None = None,
        label: str = "malloc",
    ) -> Task:
        """Allocate device memory through the (shared) runtime.

        Raises ``MemoryError`` when the device capacity would be
        exceeded — matching the chunk-size ceiling C_limit in
        Algorithm 4.
        """
        if self.mem_in_use + nbytes > self.spec.mem_capacity:
            raise MemoryError(
                f"{self.spec.name}[{self.index}]: allocating {nbytes} bytes "
                f"exceeds capacity {self.spec.mem_capacity:.3g}"
            )
        self.mem_in_use += nbytes
        return self.runtime.alloc(self, nbytes, queue, deps=deps, label=label)

    def free(
        self,
        nbytes: int,
        queue: SimQueue,
        deps: list[Task] | None = None,
        label: str = "free",
    ) -> Task:
        self.mem_in_use = max(0.0, self.mem_in_use - nbytes)
        return self.runtime.free(self, nbytes, queue, deps=deps, label=label)

    # -- data movement ---------------------------------------------------
    def h2d(
        self,
        nbytes: int,
        queue: SimQueue,
        deps: list[Task] | None = None,
        label: str = "h2d",
    ) -> Task:
        return self.sim.submit(
            f"{self.spec.name}[{self.index}].{label}",
            TaskKind.H2D,
            self.dma_h2d,
            queue,
            nbytes=nbytes,
            deps=deps,
        )

    def d2h(
        self,
        nbytes: int,
        queue: SimQueue,
        deps: list[Task] | None = None,
        label: str = "d2h",
    ) -> Task:
        return self.sim.submit(
            f"{self.spec.name}[{self.index}].{label}",
            TaskKind.D2H,
            self.dma_d2h,
            queue,
            nbytes=nbytes,
            deps=deps,
        )

    def host_copy(
        self,
        nbytes: int,
        queue: SimQueue,
        deps: list[Task] | None = None,
        label: str = "host_copy",
    ) -> Task:
        """Host-side staging memcpy (legacy pipelines only)."""
        return self.sim.submit(
            f"{self.spec.name}[{self.index}].{label}",
            TaskKind.HOST,
            self.host_memcpy,
            queue,
            nbytes=nbytes,
            deps=deps,
        )

    # -- compute ---------------------------------------------------------
    def kernel(
        self,
        duration: float,
        queue: SimQueue,
        deps: list[Task] | None = None,
        label: str = "kernel",
        nbytes: int = 0,
    ) -> Task:
        """Submit a compute task with a precomputed duration (from Φ)."""
        return self.sim.submit(
            f"{self.spec.name}[{self.index}].{label}",
            TaskKind.COMPUTE,
            self.compute_engine,
            queue,
            duration=duration,
            nbytes=nbytes,
            deps=deps,
        )

    def serialize(
        self,
        nbytes: int,
        queue: SimQueue,
        deps: list[Task] | None = None,
        label: str = "serialize",
    ) -> Task:
        """Metadata embedding after compute — rides the D2H DMA (Fig. 9)."""
        return self.sim.submit(
            f"{self.spec.name}[{self.index}].{label}",
            TaskKind.SERIALIZE,
            self.dma_d2h,
            queue,
            nbytes=nbytes,
            deps=deps,
        )

    def deserialize(
        self,
        nbytes: int,
        queue: SimQueue,
        deps: list[Task] | None = None,
        label: str = "deserialize",
    ) -> Task:
        """Metadata extraction before compute — rides the H2D DMA (Fig. 9)."""
        return self.sim.submit(
            f"{self.spec.name}[{self.index}].{label}",
            TaskKind.DESERIALIZE,
            self.dma_h2d,
            queue,
            nbytes=nbytes,
            deps=deps,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"SimDevice({self.spec.name}[{self.index}])"
