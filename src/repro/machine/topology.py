"""Node and system topologies for the paper's four evaluation platforms.

* **Summit** (OLCF): 4,608 nodes, 6×V100 + 2×POWER9 per node, GPFS
  filesystem with 2.5 TB/s peak bandwidth.
* **Frontier** (OLCF): 9,408 nodes, 4×MI250X + 1×EPYC per node, Lustre
  filesystem with 9.4 TB/s peak bandwidth.
* **Jetstream2** (Indiana University / ACCESS): 90 GPU nodes with
  4×A100 + 2×Milan each.
* **Workstation**: 1×RTX 3090 + 20-core i7.

The aggregation strategies the paper tunes per system (one writer per
node on Summit, one per GPU on Frontier) are recorded here so the I/O
simulation uses the same defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.specs import (
    A100,
    CORE_I7,
    EPYC7713,
    EPYC_TRENTO,
    MI250X,
    POWER9,
    RTX3090,
    V100,
    GB,
    ProcessorSpec,
)

TB = 1e12


@dataclass(frozen=True)
class FilesystemSpec:
    """Parallel filesystem bandwidth model.

    ``peak_bandwidth`` is the aggregate ceiling; ``per_node_bandwidth``
    caps a single node's injection rate (network-interface bound).
    Effective bandwidth at N writers is
    ``min(N × per_node, peak) × efficiency(N)`` where efficiency decays
    gently with contention at very large N (metadata/OST contention).
    """

    name: str
    peak_bandwidth: float
    per_node_bandwidth: float
    contention_knee: int = 4096
    contention_floor: float = 0.6

    def effective_bandwidth(self, writers: int) -> float:
        if writers <= 0:
            raise ValueError("writers must be positive")
        raw = min(writers * self.per_node_bandwidth, self.peak_bandwidth)
        if writers <= self.contention_knee:
            eff = 1.0
        else:
            over = writers / self.contention_knee
            eff = max(self.contention_floor, 1.0 / over**0.25)
        return raw * eff


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: GPUs, host CPUs, per-node memory."""

    name: str
    gpus: tuple[ProcessorSpec, ...]
    cpus: tuple[ProcessorSpec, ...]
    host_memory: float = 512 * GB

    @property
    def gpus_per_node(self) -> int:
        return len(self.gpus)


@dataclass(frozen=True)
class SystemSpec:
    """A full platform: nodes, count, filesystem, aggregation default."""

    name: str
    node: NodeSpec
    num_nodes: int
    filesystem: FilesystemSpec
    #: "node" → one I/O aggregator per node; "gpu" → one per GPU.
    aggregation: str = "node"
    #: mean time between failures of a single node, in hours.  Leadership
    #: systems publish system-level MTBFs of hours-to-days; divided by the
    #: node count that is O(1e5–1e6) node-hours per failure.  0 disables
    #: the fault model (ideal hardware).
    mtbf_node_hours: float = 0.0

    def expected_faults(self, nodes: int, wall_hours: float) -> float:
        """Expected node failures in a ``wall_hours`` run on ``nodes`` nodes.

        A homogeneous-Poisson model: ``nodes × wall_hours / MTBF_node``.
        Feeds :func:`repro.resilience.faults.plan_for_system`, which turns
        the expectation into a deterministic rank drop-out schedule.
        """
        if nodes < 1 or nodes > self.num_nodes:
            raise ValueError(
                f"{self.name} has {self.num_nodes} nodes; requested {nodes}"
            )
        if wall_hours < 0:
            raise ValueError("wall_hours must be non-negative")
        if self.mtbf_node_hours <= 0:
            return 0.0
        return nodes * wall_hours / self.mtbf_node_hours

    def writers(self, nodes: int) -> int:
        if nodes < 1 or nodes > self.num_nodes:
            raise ValueError(
                f"{self.name} has {self.num_nodes} nodes; requested {nodes}"
            )
        if self.aggregation == "gpu":
            return nodes * self.node.gpus_per_node
        return nodes

    def total_gpus(self, nodes: int) -> int:
        return nodes * self.node.gpus_per_node


SUMMIT = SystemSpec(
    name="Summit",
    node=NodeSpec("summit-node", (V100,) * 6, (POWER9,) * 2),
    num_nodes=4608,
    filesystem=FilesystemSpec("GPFS(Alpine)", 2.5 * TB, 12.5 * GB),
    aggregation="node",
    mtbf_node_hours=2.2e5,
)

FRONTIER = SystemSpec(
    name="Frontier",
    node=NodeSpec("frontier-node", (MI250X,) * 4, (EPYC_TRENTO,)),
    num_nodes=9408,
    filesystem=FilesystemSpec("Lustre(Orion)", 9.4 * TB, 25 * GB),
    aggregation="gpu",
    mtbf_node_hours=2.0e5,
)

JETSTREAM2 = SystemSpec(
    name="Jetstream2",
    node=NodeSpec("js2-node", (A100,) * 4, (EPYC7713,) * 2),
    num_nodes=90,
    filesystem=FilesystemSpec("JS2-store", 0.2 * TB, 5 * GB),
    aggregation="node",
    mtbf_node_hours=5.0e5,
)

WORKSTATION = SystemSpec(
    name="Workstation",
    node=NodeSpec("workstation", (RTX3090,), (CORE_I7,), host_memory=32 * GB),
    num_nodes=1,
    filesystem=FilesystemSpec("NVMe", 5 * GB, 5 * GB),
    aggregation="node",
    mtbf_node_hours=4.4e4,
)

_SYSTEMS = {s.name.lower(): s for s in (SUMMIT, FRONTIER, JETSTREAM2, WORKSTATION)}


def get_system(name: str) -> SystemSpec:
    try:
        return _SYSTEMS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown system {name!r}; available: {sorted(_SYSTEMS)}") from None
