"""Processor specifications for the platforms in the paper's evaluation.

Values are published hardware characteristics (memory capacity, device
memory bandwidth, host link bandwidth, execution-unit counts).  They feed
the discrete-event simulator; saturated *kernel* throughputs live in
:mod:`repro.perf.models` and are calibrated to the paper's Fig. 12.

Units: bytes and seconds throughout (``GB = 1e9`` bytes, matching the
paper's GB/s reporting convention).
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1e9
MB = 1e6


@dataclass(frozen=True)
class ProcessorSpec:
    """Static description of one processor architecture.

    Attributes
    ----------
    name:
        Identifier used throughout benches and traces, e.g. ``"V100"``.
    kind:
        ``"gpu"`` or ``"cpu"``.
    family:
        The device-adapter family that drives it: ``"cuda"``, ``"hip"``
        or ``"openmp"`` (Table II).
    units:
        Streaming multiprocessors (CUDA), compute units (HIP) or cores
        (OpenMP) — the group-level parallelism width of GEM.
    mem_capacity:
        Device/host memory in bytes.
    mem_bandwidth:
        Device memory bandwidth in bytes/s (the roofline ceiling for
        memory-bound reduction kernels).
    link_h2d / link_d2h:
        Host↔device interconnect bandwidth per direction, bytes/s.  For
        CPUs this is DRAM-to-DRAM copy bandwidth (no PCIe hop).
    alloc_base:
        Fixed latency of one runtime memory allocation, seconds.  These
        serialize on the node-shared runtime (see
        :class:`repro.machine.runtime.SharedRuntime`), which is the
        mechanism behind the paper's multi-GPU scalability gap.
    alloc_per_gb:
        Additional allocation latency per GB requested.
    sat_chunk:
        Chunk size (bytes) at which reduction kernels saturate the
        processor; below this, throughput ramps roughly linearly
        (the paper's roofline model Φ(C), Fig. 11).
    """

    name: str
    kind: str
    family: str
    units: int
    mem_capacity: float
    mem_bandwidth: float
    link_h2d: float
    link_d2h: float
    alloc_base: float = 1.0e-3
    alloc_per_gb: float = 2.5e-3
    sat_chunk: float = 128 * MB

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise ValueError(f"kind must be gpu|cpu, got {self.kind!r}")
        if self.family not in ("cuda", "hip", "openmp", "serial"):
            raise ValueError(f"unknown family {self.family!r}")


# ----------------------------------------------------------------------
# GPUs used in the paper (Summit, Jetstream2, Frontier, workstation)
# ----------------------------------------------------------------------
V100 = ProcessorSpec(
    name="V100",
    kind="gpu",
    family="cuda",
    units=80,
    mem_capacity=16 * GB,
    mem_bandwidth=900 * GB,
    # Summit connects V100s to POWER9 over NVLink2: 50 GB/s per direction.
    link_h2d=50 * GB,
    link_d2h=50 * GB,
)

A100 = ProcessorSpec(
    name="A100",
    kind="gpu",
    family="cuda",
    units=108,
    mem_capacity=40 * GB,
    mem_bandwidth=1555 * GB,
    # Jetstream2 A100s sit on PCIe gen4 x16: ~25 GB/s per direction.
    link_h2d=25 * GB,
    link_d2h=25 * GB,
)

MI250X = ProcessorSpec(
    name="MI250X",
    kind="gpu",
    family="hip",
    units=220,
    mem_capacity=128 * GB,
    mem_bandwidth=3200 * GB,
    # Frontier's Infinity Fabric CPU-GPU link: 36 GB/s per direction.
    link_h2d=36 * GB,
    link_d2h=36 * GB,
)

RTX3090 = ProcessorSpec(
    name="RTX3090",
    kind="gpu",
    family="cuda",
    units=82,
    mem_capacity=24 * GB,
    mem_bandwidth=936 * GB,
    link_h2d=25 * GB,
    link_d2h=25 * GB,
)

# ----------------------------------------------------------------------
# CPUs
# ----------------------------------------------------------------------
POWER9 = ProcessorSpec(
    name="POWER9",
    kind="cpu",
    family="openmp",
    units=22,
    mem_capacity=512 * GB,
    mem_bandwidth=170 * GB,
    link_h2d=60 * GB,
    link_d2h=60 * GB,
    alloc_base=2.0e-5,
    alloc_per_gb=5.0e-5,
    sat_chunk=32 * MB,
)

EPYC7713 = ProcessorSpec(
    name="EPYC7713",
    kind="cpu",
    family="openmp",
    units=64,
    mem_capacity=512 * GB,
    mem_bandwidth=205 * GB,
    link_h2d=80 * GB,
    link_d2h=80 * GB,
    alloc_base=2.0e-5,
    alloc_per_gb=5.0e-5,
    sat_chunk=32 * MB,
)

EPYC_TRENTO = ProcessorSpec(
    name="EPYC-Trento",
    kind="cpu",
    family="openmp",
    units=64,
    mem_capacity=512 * GB,
    mem_bandwidth=205 * GB,
    link_h2d=80 * GB,
    link_d2h=80 * GB,
    alloc_base=2.0e-5,
    alloc_per_gb=5.0e-5,
    sat_chunk=32 * MB,
)

CORE_I7 = ProcessorSpec(
    name="i7",
    kind="cpu",
    family="openmp",
    units=20,
    mem_capacity=32 * GB,
    mem_bandwidth=75 * GB,
    link_h2d=30 * GB,
    link_d2h=30 * GB,
    alloc_base=2.0e-5,
    alloc_per_gb=5.0e-5,
    sat_chunk=16 * MB,
)


GPU_SPECS: dict[str, ProcessorSpec] = {
    s.name: s for s in (V100, A100, MI250X, RTX3090)
}
CPU_SPECS: dict[str, ProcessorSpec] = {
    s.name: s for s in (POWER9, EPYC7713, EPYC_TRENTO, CORE_I7)
}
ALL_SPECS: dict[str, ProcessorSpec] = {**GPU_SPECS, **CPU_SPECS}

#: The five processors of the paper's Fig. 12 portability study.
FIG12_PROCESSORS: tuple[str, ...] = ("V100", "A100", "MI250X", "RTX3090", "EPYC7713")


def get_processor(name: str) -> ProcessorSpec:
    """Look up a processor spec by name (case-insensitive)."""
    for key, spec in ALL_SPECS.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(
        f"unknown processor {name!r}; available: {sorted(ALL_SPECS)}"
    )
