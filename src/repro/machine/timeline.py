"""Text timeline rendering of simulation traces (Fig. 10-style).

Turns a :class:`~repro.machine.engine.Trace` into a per-resource Gantt
chart so pipeline behaviour — overlap, bubbles, contention — is visible
in a terminal:

    V100[0].dma_h2d  |██░░██░░██      |
    V100[0].compute  |  ████████████  |
    V100[0].dma_d2h  |      ▒▒  ▒▒  ▒▒|
"""

from __future__ import annotations

from repro.machine.engine import Task, TaskKind, Trace

_GLYPH = {
    TaskKind.H2D: "▓",
    TaskKind.D2H: "▒",
    TaskKind.COMPUTE: "█",
    TaskKind.ALLOC: "a",
    TaskKind.FREE: "f",
    TaskKind.SERIALIZE: "s",
    TaskKind.DESERIALIZE: "d",
    TaskKind.IO: "I",
    TaskKind.HOST: "h",
}


def render_timeline(trace: Trace, width: int = 72) -> str:
    """Render the trace as one row of glyphs per resource.

    Each column covers ``makespan/width`` seconds; a cell shows the kind
    of the task occupying most of that slice (idle = space).
    """
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    span = trace.makespan
    if span <= 0 or not trace.tasks:
        return "(empty trace)"

    by_resource: dict[str, list[Task]] = {}
    for t in trace.tasks:
        by_resource.setdefault(t.resource.name, []).append(t)

    dt = span / width
    name_w = max(len(n) for n in by_resource)
    lines = [f"{'resource'.ljust(name_w)} |{'-' * width}|  busy"]
    for name in sorted(by_resource):
        tasks = sorted(by_resource[name], key=lambda t: t.start)
        cells = [" "] * width
        for t in tasks:
            lo = int(t.start / dt)
            hi = max(lo + 1, int(round(t.end / dt)))
            for i in range(lo, min(hi, width)):
                cells[i] = _GLYPH.get(t.kind, "?")
        busy = sum(t.end - t.start for t in tasks)
        lines.append(
            f"{name.ljust(name_w)} |{''.join(cells)}| {100 * busy / span:5.1f}%"
        )
    legend = "  ".join(f"{g}={k.value}" for k, g in _GLYPH.items()
                       if any(t.kind == k for t in trace.tasks))
    lines.append(f"{' ' * name_w}  {legend}")
    return "\n".join(lines)


def utilization_summary(trace: Trace) -> dict[str, float]:
    """Busy fraction per resource name."""
    span = trace.makespan
    out: dict[str, float] = {}
    if span <= 0:
        return out
    for t in trace.tasks:
        out[t.resource.name] = out.get(t.resource.name, 0.0) + (t.end - t.start)
    return {k: v / span for k, v in out.items()}
