"""Simulated hardware substrate for HPDR.

The paper evaluates HPDR on real GPUs (V100, A100, MI250X, RTX 3090) and
CPUs.  This package replaces the silicon with a deterministic
discrete-event simulator:

* :mod:`repro.machine.engine` — the event-driven scheduling core
  (resources, in-order queues, dependency edges, traces).
* :mod:`repro.machine.specs` — published hardware specifications for the
  processors and systems used in the paper's evaluation.
* :mod:`repro.machine.device` — a simulated GPU/CPU device exposing the
  Host-Device Execution Model surface (two DMA engines + compute engine).
* :mod:`repro.machine.runtime` — the shared per-node runtime whose
  serialized allocation path produces the multi-GPU contention studied in
  the paper's Fig. 16.
* :mod:`repro.machine.topology` — node/system topologies (Summit,
  Frontier, Jetstream2, workstation).

The simulator is *calibrated*, not profiled: per-kernel saturated
throughputs come from :mod:`repro.perf.models` and reproduce the shape of
the paper's results rather than absolute wall-clock numbers.
"""

from repro.machine.engine import (
    Resource,
    SimQueue,
    Simulator,
    Task,
    TaskKind,
    Trace,
)
from repro.machine.specs import (
    GPU_SPECS,
    CPU_SPECS,
    ProcessorSpec,
    get_processor,
)
from repro.machine.device import SimDevice
from repro.machine.runtime import SharedRuntime
from repro.machine.topology import (
    NodeSpec,
    SystemSpec,
    FRONTIER,
    SUMMIT,
    JETSTREAM2,
    WORKSTATION,
    get_system,
)

__all__ = [
    "Resource",
    "SimQueue",
    "Simulator",
    "Task",
    "TaskKind",
    "Trace",
    "GPU_SPECS",
    "CPU_SPECS",
    "ProcessorSpec",
    "get_processor",
    "SimDevice",
    "SharedRuntime",
    "NodeSpec",
    "SystemSpec",
    "FRONTIER",
    "SUMMIT",
    "JETSTREAM2",
    "WORKSTATION",
    "get_system",
]
