"""Shared-runtime allocation model.

The paper (Section III-B) identifies runtime memory management as a key
scalability bottleneck on dense multi-GPU nodes: all GPUs on a node
share one runtime whose allocation path is internally serialized, so
concurrent ``malloc``/``free`` calls from different devices contend.
HPDR's Context Memory Model (CMM) removes the steady-state allocations
entirely by caching reduction contexts, which is why MGARD-X sustains
~96 % of ideal multi-GPU scaling while per-call-allocating baselines
drop to ~46–74 % (Fig. 16).

:class:`SharedRuntime` models the serialized path as a single exclusive
resource; allocation latency follows the device spec's
``alloc_base + alloc_per_gb × size`` model, with a contention-dependent
slowdown reflecting lock arbitration overhead growing with the number of
attached devices.
"""

from __future__ import annotations

from repro.machine.engine import Resource, SimQueue, Simulator, Task, TaskKind


class SharedRuntime:
    """Node-level runtime whose memory operations serialize.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Trace label.
    arbitration_overhead:
        Fractional latency increase per *additional* attached device,
        modelling lock arbitration cost on dense nodes.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "runtime",
        arbitration_overhead: float = 0.25,
    ) -> None:
        self.sim = sim
        self.name = name
        self.arbitration_overhead = arbitration_overhead
        self.lock: Resource = sim.resource(f"{name}.alloc_lock")
        self._devices: list[object] = []
        self.alloc_count = 0
        self.free_count = 0

    def attach(self, device: object) -> None:
        if device not in self._devices:
            self._devices.append(device)

    @property
    def num_devices(self) -> int:
        return max(1, len(self._devices))

    def _latency(self, device, nbytes: int) -> float:
        spec = device.spec
        base = spec.alloc_base + spec.alloc_per_gb * (nbytes / 1e9)
        contention = 1.0 + self.arbitration_overhead * (self.num_devices - 1)
        return base * contention

    def alloc(
        self,
        device,
        nbytes: int,
        queue: SimQueue,
        deps: list[Task] | None = None,
        label: str = "malloc",
    ) -> Task:
        self.alloc_count += 1
        return self.sim.submit(
            f"{self.name}.{label}({nbytes})",
            TaskKind.ALLOC,
            self.lock,
            queue,
            duration=self._latency(device, nbytes),
            nbytes=nbytes,
            deps=deps,
        )

    def launch(
        self,
        device,
        queue: SimQueue,
        deps: list[Task] | None = None,
        label: str = "launch",
    ) -> Task:
        """Kernel-launch arbitration: a tiny serialized runtime entry.

        Even with the CMM removing allocations, launches still pass
        through the shared runtime — the residual contention that keeps
        MGARD-X at ~96 % rather than 100 % of ideal multi-GPU scaling.
        """
        contention = 1.0 + self.arbitration_overhead * (self.num_devices - 1)
        return self.sim.submit(
            f"{self.name}.{label}",
            TaskKind.ALLOC,
            self.lock,
            queue,
            duration=2.0e-4 * contention,
            deps=deps,
        )

    def free(
        self,
        device,
        nbytes: int,
        queue: SimQueue,
        deps: list[Task] | None = None,
        label: str = "free",
    ) -> Task:
        self.free_count += 1
        # Frees are cheaper than allocations but still serialize.
        return self.sim.submit(
            f"{self.name}.{label}({nbytes})",
            TaskKind.FREE,
            self.lock,
            queue,
            duration=0.5 * self._latency(device, nbytes),
            nbytes=nbytes,
            deps=deps,
        )
