"""Discrete-event simulation engine.

The engine models the scheduling semantics that the paper's pipeline
optimization (Section V) relies on:

* **Resources** are exclusive serial executors — a DMA engine, a GPU
  compute engine, or the shared runtime's allocation lock.  At most one
  task occupies a resource at a time (the paper's restriction that "only
  one kernel runs at the same time" and one copy per DMA direction).
* **Queues** are in-order streams (CUDA/HIP stream semantics): tasks
  submitted to the same queue start in submission order.
* **Tasks** carry explicit dependency edges, which is how the Fig. 9 DAG
  (including the extra anti-dependencies that shrink the pipeline to two
  buffer sets) is expressed.

Scheduling is deterministic list scheduling: among all head-of-queue
tasks whose dependencies are satisfied, the task with the earliest
feasible start time runs next (ties broken by submission order).  The
result is a :class:`Trace` from which makespan, per-resource utilization
and the paper's *overlap ratio* metric are computed.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence


class TaskKind(enum.Enum):
    """Classification of simulated work, mirroring Fig. 9's color coding."""

    H2D = "h2d"          # green boxes: host-to-device DMA copy
    D2H = "d2h"          # red boxes: device-to-host DMA copy
    COMPUTE = "compute"  # blue boxes: reduction kernels
    ALLOC = "alloc"      # runtime memory management (CMM target)
    FREE = "free"
    SERIALIZE = "serialize"
    DESERIALIZE = "deserialize"
    IO = "io"            # filesystem read/write
    HOST = "host"        # host-side memcpy / misc


@dataclass
class Resource:
    """An exclusive serial executor (DMA engine, compute engine, lock).

    Parameters
    ----------
    name:
        Human-readable identifier used in traces.
    bandwidth:
        Optional throughput in bytes/second.  When set, tasks submitted
        with ``nbytes`` and no explicit duration derive their duration
        from it.
    """

    name: str
    bandwidth: float | None = None
    busy_until: float = field(default=0.0, init=False)
    busy_time: float = field(default=0.0, init=False)

    def reset(self) -> None:
        self.busy_until = 0.0
        self.busy_time = 0.0

    def duration_for(self, nbytes: int) -> float:
        if self.bandwidth is None or self.bandwidth <= 0:
            raise ValueError(
                f"resource {self.name!r} has no bandwidth; provide an explicit duration"
            )
        return nbytes / self.bandwidth


@dataclass
class Task:
    """One unit of simulated work."""

    name: str
    kind: TaskKind
    resource: Resource
    duration: float
    queue: "SimQueue"
    deps: list["Task"] = field(default_factory=list)
    nbytes: int = 0
    tag: str = ""
    seq: int = field(default=-1, init=False)
    start: float = field(default=math.nan, init=False)
    end: float = field(default=math.nan, init=False)

    @property
    def scheduled(self) -> bool:
        return not math.isnan(self.start)

    def add_dep(self, *tasks: "Task | None") -> "Task":
        """Add dependency edges; ``None`` entries are skipped for convenience."""
        for t in tasks:
            if t is not None:
                self.deps.append(t)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        win = f"[{self.start:.6f},{self.end:.6f}]" if self.scheduled else "[unscheduled]"
        return f"Task({self.name}, {self.kind.value}, {self.resource.name}, {win})"


class SimQueue:
    """An in-order stream of tasks (CUDA/HIP stream semantics)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.pending: list[Task] = []
        self.last_end: float = 0.0

    def reset(self) -> None:
        self.pending.clear()
        self.last_end = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"SimQueue({self.name}, pending={len(self.pending)})"


@dataclass
class Trace:
    """Completed schedule: every executed task with its time window."""

    tasks: list[Task] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return max((t.end for t in self.tasks), default=0.0)

    def of_kind(self, *kinds: TaskKind) -> list[Task]:
        ks = set(kinds)
        return [t for t in self.tasks if t.kind in ks]

    def total_time(self, *kinds: TaskKind) -> float:
        return sum(t.end - t.start for t in self.of_kind(*kinds))

    def busy_time(self, resource: Resource) -> float:
        return sum(t.end - t.start for t in self.tasks if t.resource is resource)

    def utilization(self, resource: Resource) -> float:
        span = self.makespan
        return self.busy_time(resource) / span if span > 0 else 0.0

    def breakdown(self) -> dict[str, float]:
        """Total busy time per task kind (Fig. 1 style breakdown)."""
        out: dict[str, float] = {}
        for t in self.tasks:
            out[t.kind.value] = out.get(t.kind.value, 0.0) + (t.end - t.start)
        return out

    def overlap_ratio(self) -> float:
        """The paper's overlap metric.

        ``Overlap = overlapped H2D and D2H time / total H2D and D2H time``

        A copy second counts as overlapped when an H2D interval and a D2H
        interval cover the same instant (the two DMA engines moving data
        in opposite directions simultaneously).
        """
        h2d = sorted((t.start, t.end) for t in self.of_kind(TaskKind.H2D))
        d2h = sorted((t.start, t.end) for t in self.of_kind(TaskKind.D2H))
        total = sum(e - s for s, e in h2d) + sum(e - s for s, e in d2h)
        if total <= 0:
            return 0.0
        overlapped = 0.0
        i = j = 0
        while i < len(h2d) and j < len(d2h):
            s = max(h2d[i][0], d2h[j][0])
            e = min(h2d[i][1], d2h[j][1])
            if e > s:
                overlapped += e - s
            if h2d[i][1] <= d2h[j][1]:
                i += 1
            else:
                j += 1
        # Each overlapped second hides one second of copy on *each* engine.
        return min(1.0, 2.0 * overlapped / total)

    def hidden_copy_ratio(self) -> float:
        """Fraction of copy time hidden behind compute.

        A copy second is *exposed* when no compute task is running at that
        instant; the hidden ratio is ``1 - exposed/total_copy``.
        """
        copies = [(t.start, t.end) for t in self.of_kind(TaskKind.H2D, TaskKind.D2H)]
        comp = _merge_intervals(
            (t.start, t.end) for t in self.of_kind(TaskKind.COMPUTE)
        )
        total = sum(e - s for s, e in copies)
        if total <= 0:
            return 1.0
        hidden = 0.0
        for s, e in copies:
            hidden += _covered_length(s, e, comp)
        return hidden / total

    def validate(self) -> None:
        """Check schedule invariants; raises ``AssertionError`` on violation."""
        by_res: dict[int, list[Task]] = {}
        for t in self.tasks:
            assert t.scheduled, f"{t.name} never scheduled"
            assert t.end >= t.start >= 0.0
            by_res.setdefault(id(t.resource), []).append(t)
            for d in t.deps:
                assert d.end <= t.start + 1e-12, (
                    f"dependency violated: {t.name} started {t.start} before "
                    f"{d.name} ended {d.end}"
                )
        for tasks in by_res.values():
            tasks = sorted(tasks, key=lambda t: t.start)
            for a, b in zip(tasks, tasks[1:]):
                assert a.end <= b.start + 1e-12, (
                    f"resource conflict between {a.name} and {b.name}"
                )


def _merge_intervals(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    ivs = sorted(intervals)
    out: list[tuple[float, float]] = []
    for s, e in ivs:
        if out and s <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], e))
        else:
            out.append((s, e))
    return out


def _covered_length(s: float, e: float, cover: Sequence[tuple[float, float]]) -> float:
    got = 0.0
    for cs, ce in cover:
        lo, hi = max(s, cs), min(e, ce)
        if hi > lo:
            got += hi - lo
    return got


class Simulator:
    """Deterministic list scheduler over queues, resources and deps."""

    def __init__(self) -> None:
        self._queues: list[SimQueue] = []
        self._resources: list[Resource] = []
        self._seq = 0
        self._all_tasks: list[Task] = []

    # -- construction -------------------------------------------------
    def queue(self, name: str) -> SimQueue:
        q = SimQueue(name)
        self._queues.append(q)
        return q

    def resource(self, name: str, bandwidth: float | None = None) -> Resource:
        r = Resource(name, bandwidth)
        self._resources.append(r)
        return r

    def register_resource(self, r: Resource) -> Resource:
        """Adopt an externally created resource (e.g. a shared runtime lock)."""
        if r not in self._resources:
            self._resources.append(r)
        return r

    def register_queue(self, q: SimQueue) -> SimQueue:
        if q not in self._queues:
            self._queues.append(q)
        return q

    def submit(
        self,
        name: str,
        kind: TaskKind,
        resource: Resource,
        queue: SimQueue,
        duration: float | None = None,
        nbytes: int = 0,
        deps: Sequence[Task] | None = None,
        tag: str = "",
    ) -> Task:
        """Enqueue a task.  ``duration=None`` derives it from the resource
        bandwidth and ``nbytes``."""
        if resource not in self._resources:
            self._resources.append(resource)
        if queue not in self._queues:
            self._queues.append(queue)
        if duration is None:
            duration = resource.duration_for(nbytes)
        if duration < 0:
            raise ValueError(f"negative duration for task {name!r}")
        t = Task(name, kind, resource, duration, queue, list(deps or ()), nbytes, tag)
        t.seq = self._seq
        self._seq += 1
        queue.pending.append(t)
        self._all_tasks.append(t)
        return t

    # -- execution ----------------------------------------------------
    def run(self) -> Trace:
        """Schedule every submitted task and return the trace.

        Raises ``RuntimeError`` on dependency deadlock (a cycle, or a
        dependency on a task that was never submitted).
        """
        executed: list[Task] = []
        n_total = sum(len(q.pending) for q in self._queues)
        done: set[int] = set()
        while len(executed) < n_total:
            best: Task | None = None
            best_start = math.inf
            for q in self._queues:
                if not q.pending:
                    continue
                head = q.pending[0]
                if any(id(d) not in done for d in head.deps):
                    continue
                dep_ready = max((d.end for d in head.deps), default=0.0)
                start = max(dep_ready, q.last_end, head.resource.busy_until)
                if start < best_start or (
                    start == best_start and best is not None and head.seq < best.seq
                ):
                    best = head
                    best_start = start
            if best is None:
                stuck = [q.pending[0].name for q in self._queues if q.pending]
                raise RuntimeError(f"simulation deadlock; blocked heads: {stuck}")
            q = best.queue
            q.pending.pop(0)
            best.start = best_start
            best.end = best_start + best.duration
            q.last_end = best.end
            best.resource.busy_until = best.end
            best.resource.busy_time += best.duration
            done.add(id(best))
            executed.append(best)
        trace = Trace(executed)
        trace.validate()
        return trace

    def reset(self) -> None:
        for q in self._queues:
            q.reset()
        for r in self._resources:
            r.reset()
        self._all_tasks.clear()
        self._seq = 0
