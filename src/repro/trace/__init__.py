"""HPDR-Trace: unified runtime tracing & metrics for real executions.

The simulator (:mod:`repro.machine`) always had first-class traces; the
real hot paths — zero-alloc codecs, the HUFP chunk-parallel decoder,
the CMM cache, thread-pool adapters, the I/O engines — were opaque.
This package instruments them all through one API:

* :func:`span` / :func:`traced` — record a named, timed interval::

      from repro import trace

      with trace.span("mgard.decompose", cat="mgard", chunk=i):
          ...

* **Chrome JSON** — :func:`export_chrome` writes ``trace_event`` JSON
  loadable in ``chrome://tracing`` / Perfetto (and archived by CI).
* **Text Gantt** — :func:`render_spans` draws real executions through
  the same ``machine.timeline`` renderer used for simulated traces.
* **Metrics** — Prometheus-style counters/gauges/histograms (bytes
  in/out, per-stage seconds, CMM hits/misses/evictions/bytes pinned,
  thread-pool queue depth) via :data:`metrics` /
  :func:`counter` / :func:`gauge` / :func:`histogram`, rendered by
  :func:`summary` or :func:`render_prometheus`.

Enabling: set ``HPDR_TRACE=1`` in the environment (checked at import),
call :func:`enable`, or pass ``--trace``/``--metrics`` to the CLI.
Disabled, every instrumentation site costs one flag check and returns a
shared no-op span — the zero-alloc steady state and committed wall-clock
numbers are unaffected (measured <2% end-to-end; see DESIGN.md §3.3).
"""

from __future__ import annotations

import os

from repro.trace.chrome import (
    REQUIRED_FIELDS,
    chrome_events,
    export_chrome,
    load_chrome,
    spans_from_chrome,
    validate_events,
)
from repro.trace.gantt import render_spans, to_sim_trace
from repro.trace.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.trace.tracer import (
    NULL_SPAN,
    Span,
    SpanEvent,
    TRACER,
    Tracer,
    add_sink,
    clear,
    disable,
    enable,
    enabled,
    remove_sink,
    span,
    traced,
)

#: the process-wide metrics registry (alias for discoverability).
metrics = REGISTRY

#: histogram buckets for per-stage durations (seconds).
TIME_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


def counter(name: str, help: str = "") -> Counter:
    """Process-wide counter (``registry.counter`` shorthand)."""
    return REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return REGISTRY.gauge(name, help)


def histogram(name: str, help: str = "", buckets=None) -> Histogram:
    return REGISTRY.histogram(
        name, help, buckets=tuple(buckets) if buckets else TIME_BUCKETS
    )


def events() -> list[SpanEvent]:
    """Snapshot of the spans recorded so far."""
    return TRACER.snapshot()


def stage_table(events_: list[SpanEvent] | None = None) -> str:
    """Per-stage aggregation of recorded spans (calls, total/mean ms).

    The wall-clock analog of ``machine.engine.Trace.breakdown()``.
    """
    evs = events_ if events_ is not None else TRACER.snapshot()
    if not evs:
        return "(no spans recorded)"
    agg: dict[str, list[int]] = {}
    order: list[str] = []
    for e in evs:
        row = agg.get(e.name)
        if row is None:
            agg[e.name] = [1, e.dur_ns]
            order.append(e.name)
        else:
            row[0] += 1
            row[1] += e.dur_ns
    w = max(len(n) for n in order)
    lines = [f"{'stage'.ljust(w)} {'calls':>7} {'total ms':>10} {'mean ms':>10}"]
    for name in sorted(order, key=lambda n: -agg[n][1]):
        calls, total = agg[name]
        lines.append(
            f"{name.ljust(w)} {calls:>7} {total / 1e6:>10.3f} "
            f"{total / calls / 1e6:>10.4f}"
        )
    return "\n".join(lines)


def summary() -> str:
    """Combined stage table + metrics table for the CLI/bench output."""
    parts = ["== stages (spans) ==", stage_table()]
    parts += ["", "== metrics ==", REGISTRY.summary()]
    return "\n".join(parts)


def render_prometheus() -> str:
    """Prometheus text exposition of the process-wide registry."""
    return REGISTRY.render_prometheus()


def reset() -> None:
    """Clear recorded spans and all metrics (tests / repeated runs)."""
    TRACER.clear()
    REGISTRY.reset()


def _env_enabled() -> bool:
    return os.environ.get("HPDR_TRACE", "") not in ("", "0")


if _env_enabled():
    enable()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "REGISTRY",
    "REQUIRED_FIELDS",
    "Span",
    "SpanEvent",
    "TIME_BUCKETS",
    "TRACER",
    "Tracer",
    "add_sink",
    "chrome_events",
    "clear",
    "counter",
    "disable",
    "enable",
    "enabled",
    "events",
    "export_chrome",
    "gauge",
    "histogram",
    "load_chrome",
    "metrics",
    "remove_sink",
    "render_prometheus",
    "render_spans",
    "reset",
    "span",
    "spans_from_chrome",
    "stage_table",
    "summary",
    "to_sim_trace",
    "traced",
    "validate_events",
]
