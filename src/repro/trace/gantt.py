"""Bridge real span traces onto the simulator's timeline renderer.

``machine.timeline.render_timeline`` draws a per-resource Gantt chart
from a :class:`~repro.machine.engine.Trace`; this adapter converts a
recorded wall-clock span trace into exactly that structure, so *real*
executions render identically to simulated ones:

    thread-0 |████▓▓██████    |
    thread-1 |    ████████    |

Each (pid, tid) lane becomes one resource; span categories map onto
:class:`~repro.machine.engine.TaskKind` glyphs (compute for GEM/codec
stages, IO for the io layer, …).  Only root-depth spans of each lane
are emitted by default — nested stage spans would overdraw their parent
in a one-row-per-resource chart; pass ``max_depth`` to include them.
"""

from __future__ import annotations

from typing import Sequence

from repro.machine.engine import Resource, SimQueue, Task, TaskKind, Trace
from repro.trace.tracer import TRACER, SpanEvent, Tracer

#: span-category → simulated task kind (drives timeline glyphs).
_KIND_BY_CAT = {
    "io": TaskKind.IO,
    "serialize": TaskKind.SERIALIZE,
    "deserialize": TaskKind.DESERIALIZE,
    "alloc": TaskKind.ALLOC,
    "free": TaskKind.FREE,
    "host": TaskKind.HOST,
    "pipeline": TaskKind.HOST,
}
#: categories that render as compute (kernel/codec work).
_COMPUTE_CATS = {
    "adapter", "gem", "dem", "mgard", "zfp", "huffman", "san",
    "serial", "openmp", "cuda", "hip", "sycl",
}


def kind_for_category(cat: str) -> TaskKind:
    head = cat.split(".")[0]
    if head in _COMPUTE_CATS:
        return TaskKind.COMPUTE
    return _KIND_BY_CAT.get(head, TaskKind.HOST)


def to_sim_trace(
    events: Sequence[SpanEvent] | None = None,
    tracer: Tracer | None = None,
    max_depth: int = 0,
) -> Trace:
    """Convert spans into a scheduled :class:`Trace` (seconds, t=0 origin).

    The result satisfies the renderer's contract (every task scheduled,
    one resource per thread lane) but deliberately skips
    ``Trace.validate()``: real nested spans legitimately overlap on one
    thread, unlike exclusive simulated resources — hence the
    ``max_depth`` filter (default: root spans only).
    """
    tracer = tracer if tracer is not None else TRACER
    if events is None:
        events = tracer.snapshot()
    events = [e for e in events if e.depth <= max_depth]
    trace = Trace()
    if not events:
        return trace
    t0 = min(e.start_ns for e in events)
    lanes: dict[tuple[int, int], tuple[Resource, SimQueue]] = {}
    for i, key in enumerate(sorted({(e.pid, e.tid) for e in events})):
        name = f"thread-{i}"
        lanes[key] = (Resource(name), SimQueue(name))
    for e in sorted(events, key=lambda e: e.start_ns):
        resource, queue = lanes[(e.pid, e.tid)]
        task = Task(
            name=e.name,
            kind=kind_for_category(e.cat),
            resource=resource,
            duration=e.dur_ns / 1e9,
            queue=queue,
            nbytes=int(e.args.get("nbytes", 0) or 0),
            tag=e.cat,
        )
        task.start = (e.start_ns - t0) / 1e9
        task.end = task.start + task.duration
        resource.busy_time += task.duration
        resource.busy_until = max(resource.busy_until, task.end)
        trace.tasks.append(task)
    return trace


def render_spans(
    events: Sequence[SpanEvent] | None = None,
    tracer: Tracer | None = None,
    width: int = 72,
    max_depth: int = 0,
) -> str:
    """Text Gantt of a real execution via the shared timeline renderer."""
    from repro.machine.timeline import render_timeline

    return render_timeline(
        to_sim_trace(events, tracer=tracer, max_depth=max_depth), width=width
    )
