"""Chrome ``trace_event`` export/import for HPDR-Trace spans.

Produces the JSON Array Format understood by ``chrome://tracing``,
Perfetto and speedscope: one *complete* event (``"ph": "X"``) per span
with microsecond ``ts``/``dur``, ``pid``/``tid`` lanes and the span's
args attached.  Thread-name metadata events (``"ph": "M"``) label each
lane so pool threads are identifiable in the viewer.

The format is also this repo's trace *interchange* schema: the CI perf
job archives these files as workflow artifacts, and
:func:`validate_events` is the round-trip contract the tests (and any
downstream consumer) hold the exporter to.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.trace.tracer import TRACER, SpanEvent, Tracer

#: fields every complete ("X") event must carry, per the trace-event
#: format spec — the round-trip tests validate against this.
REQUIRED_FIELDS = ("name", "ph", "ts", "dur", "pid", "tid")


def chrome_events(
    events: Sequence[SpanEvent] | None = None,
    tracer: Tracer | None = None,
) -> list[dict]:
    """Render spans as trace-event dicts (microsecond timestamps).

    ``events=None`` snapshots the given (default: process-wide) tracer.
    Span starts are rebased to the earliest span so traces start at
    ``ts=0`` regardless of process uptime.
    """
    tracer = tracer if tracer is not None else TRACER
    if events is None:
        events = tracer.snapshot()
    if not events:
        return []
    t0 = min(e.start_ns for e in events)
    out: list[dict] = []
    tids: dict[tuple[int, int], None] = {}
    for e in events:
        tids.setdefault((e.pid, e.tid))
        out.append(
            {
                "name": e.name,
                "cat": e.cat,
                "ph": "X",
                "ts": (e.start_ns - t0) / 1e3,
                "dur": e.dur_ns / 1e3,
                "pid": e.pid,
                "tid": e.tid,
                "args": dict(e.args),
            }
        )
    # Lane labels: main thread first by lane id, workers after.
    for i, (pid, tid) in enumerate(sorted(tids)):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "args": {"name": f"hpdr-thread-{i}"},
            }
        )
    return out


def export_chrome(
    path: str | Path,
    events: Sequence[SpanEvent] | None = None,
    tracer: Tracer | None = None,
) -> Path:
    """Write the trace-event JSON array to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = chrome_events(events, tracer=tracer)
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


def load_chrome(path: str | Path) -> list[dict]:
    """Load a trace-event JSON file and validate its schema."""
    raw = json.loads(Path(path).read_text())
    validate_events(raw)
    return raw


def validate_events(raw: object) -> list[dict]:
    """Assert ``raw`` is a well-formed trace-event array; return it.

    Checks the JSON Array Format invariants consumers rely on: a list of
    objects; every ``"X"`` event carries ``name``/``ph``/``ts``/``dur``/
    ``pid``/``tid`` with numeric timestamps and non-negative durations;
    metadata events carry at least ``ph``/``pid``.  Raises
    :class:`ValueError` on the first violation.
    """
    if not isinstance(raw, list):
        raise ValueError(f"trace must be a JSON array, got {type(raw).__name__}")
    for i, ev in enumerate(raw):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object: {ev!r}")
        ph = ev.get("ph")
        if ph is None:
            raise ValueError(f"event {i} has no 'ph' field")
        if ph == "X":
            for f in REQUIRED_FIELDS:
                if f not in ev:
                    raise ValueError(f"event {i} ({ev.get('name')!r}) missing {f!r}")
            if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
                raise ValueError(f"event {i} has bad ts {ev['ts']!r}")
            if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                raise ValueError(f"event {i} has bad dur {ev['dur']!r}")
            if not isinstance(ev["pid"], int) or not isinstance(ev["tid"], int):
                raise ValueError(f"event {i} has non-integer pid/tid")
        elif ph == "M":
            if "pid" not in ev:
                raise ValueError(f"metadata event {i} missing pid")
        else:
            raise ValueError(f"event {i} has unsupported phase {ph!r}")
    return raw


def spans_from_chrome(raw: Iterable[dict]) -> list[SpanEvent]:
    """Rebuild :class:`SpanEvent` records from trace-event dicts.

    The inverse of :func:`chrome_events` (modulo the rebased origin):
    lets tooling re-render an archived CI trace through the text Gantt
    or re-aggregate its metrics.
    """
    out: list[SpanEvent] = []
    for ev in raw:
        if ev.get("ph") != "X":
            continue
        out.append(
            SpanEvent(
                name=ev["name"],
                cat=ev.get("cat", "host"),
                start_ns=int(round(ev["ts"] * 1e3)),
                dur_ns=int(round(ev["dur"] * 1e3)),
                pid=ev["pid"],
                tid=ev["tid"],
                depth=int(ev.get("args", {}).get("depth", 0)),
                args=dict(ev.get("args", {})),
            )
        )
    return out
