"""HPDR-Trace span tracer (the runtime counterpart of ``machine.engine``).

The simulator's :class:`~repro.machine.engine.Trace` made the paper's
pipeline optimizations *visible*; this module does the same for the real
wall-clock hot paths.  A :func:`span` context manager (or the
:func:`traced` decorator) records one timed interval per stage —
``span("mgard.decompose", chunk=i)`` — tagged with the executing thread,
so serial, thread-pool and sanitized executions all produce comparable
timelines.

Design constraints, in priority order:

1. **Near-zero overhead when disabled.**  ``span()`` returns a shared
   no-op context manager after a single module-flag check; no kwargs
   are inspected, no clock is read, nothing allocates per call beyond
   the caller's argument dict.  The zero-alloc steady-state tests and
   the committed wall-clock record hold with tracing off.
2. **Thread safety.**  Spans close on arbitrary pool threads (the
   OpenMP adapter, HUFP segments); completed events append under a
   lock.  Nesting depth is tracked per thread so exporters can
   reconstruct the call tree without re-sorting.
3. **No repro-internal imports.**  Everything above this module
   (adapters, codecs, the CMM) may import it; it imports nothing of
   theirs, so instrumentation can never create a cycle.

Events are *complete* spans (Chrome ``ph: "X"`` semantics): name,
category, start, duration, pid/tid, free-form args.  Exporters live in
:mod:`repro.trace.chrome` (Chrome/Perfetto JSON) and
:mod:`repro.trace.gantt` (the shared ``machine.timeline`` renderer).
"""

from __future__ import annotations

import functools
import os
import threading
import time
from dataclasses import dataclass, field

#: per-stage duration histogram buckets (seconds).
_STAGE_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


@dataclass
class SpanEvent:
    """One completed span: a timed, named interval on one thread."""

    name: str
    cat: str
    start_ns: int       # time.perf_counter_ns at __enter__
    dur_ns: int
    pid: int
    tid: int
    depth: int          # per-thread nesting depth at entry (0 = root)
    args: dict = field(default_factory=dict)

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.dur_ns


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled.

    ``__enter__``/``__exit__`` do nothing; :meth:`set` swallows late
    annotations.  One instance serves the whole process — the disabled
    fast path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """A live span; records a :class:`SpanEvent` on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start_ns", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start_ns = 0
        self._depth = 0

    def set(self, **args) -> "Span":
        """Attach/override args after entry (e.g. output byte counts)."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        local = self._tracer._local
        self._depth = getattr(local, "depth", 0)
        local.depth = self._depth + 1
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter_ns() - self._start_ns
        tracer = self._tracer
        tracer._local.depth = self._depth
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        tracer._commit(
            SpanEvent(
                name=self.name,
                cat=self.cat,
                start_ns=self._start_ns,
                dur_ns=dur,
                pid=tracer.pid,
                tid=threading.get_ident(),
                depth=self._depth,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Collects :class:`SpanEvent` records for one process.

    The module-level singleton (:data:`TRACER`) is what the
    instrumentation sites use; independent instances are for tests.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.pid = os.getpid()
        self.events: list[SpanEvent] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        #: wall-clock (epoch ns) matching perf_counter origin, taken at
        #: enable() — lets exporters produce absolute timestamps.
        self.epoch_ns = 0
        #: measurement sinks: callables invoked with each committed
        #: SpanEvent.  Consumers (the auto-tuner's MeasurementSink, live
        #: dashboards) see spans as they complete instead of polling
        #: snapshot().  Tuple, swapped atomically, so _commit iterates
        #: without holding the lock.
        self._sinks: tuple = ()

    # -- control -------------------------------------------------------
    def enable(self, clear: bool = False) -> None:
        if clear:
            self.clear()
        if not self.events:
            self.epoch_ns = time.time_ns() - time.perf_counter_ns()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self.events.clear()

    # -- sinks ---------------------------------------------------------
    def add_sink(self, sink) -> None:
        """Register ``sink(event)`` to receive every committed span.

        Sinks fire on whatever thread closes the span, after the event
        is appended; a sink must be fast and must not raise (exceptions
        are swallowed so instrumentation can never break the traced
        code).  Registering an already-registered sink is a no-op.
        """
        with self._lock:
            if sink not in self._sinks:
                self._sinks = self._sinks + (sink,)

    def remove_sink(self, sink) -> None:
        """Unregister a sink; missing sinks are ignored."""
        with self._lock:
            self._sinks = tuple(s for s in self._sinks if s is not sink)

    # -- recording -----------------------------------------------------
    def span(self, name: str, cat: str = "host", **args):
        """Start a span; returns :data:`NULL_SPAN` when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, cat, args)

    def _commit(self, event: SpanEvent) -> None:
        with self._lock:
            self.events.append(event)
        # Feed the per-stage duration metric so Prometheus output carries
        # stage timings even when the caller only exports metrics.  Local
        # import: metrics never imports the tracer, so no cycle.
        from repro.trace.metrics import REGISTRY

        REGISTRY.histogram(
            "hpdr_stage_seconds",
            "span duration per stage",
            buckets=_STAGE_BUCKETS,
        ).observe(event.dur_ns / 1e9, stage=event.name)
        for sink in self._sinks:
            try:
                sink(event)
            except Exception:
                pass  # a broken sink must never break the traced code

    # -- inspection ----------------------------------------------------
    def snapshot(self) -> list[SpanEvent]:
        """A consistent copy of the events recorded so far."""
        with self._lock:
            return list(self.events)

    def total_ns(self, name: str) -> int:
        return sum(e.dur_ns for e in self.snapshot() if e.name == name)

    def names(self) -> list[str]:
        seen: dict[str, None] = {}
        for e in self.snapshot():
            seen.setdefault(e.name)
        return list(seen)


#: process-wide tracer used by all instrumentation sites.
TRACER = Tracer()


def enabled() -> bool:
    """True when the process-wide tracer is recording."""
    return TRACER.enabled


def enable(clear: bool = False) -> None:
    TRACER.enable(clear=clear)


def disable() -> None:
    TRACER.disable()


def clear() -> None:
    TRACER.clear()


def add_sink(sink) -> None:
    """Register a span sink on the process-wide tracer."""
    TRACER.add_sink(sink)


def remove_sink(sink) -> None:
    """Unregister a span sink from the process-wide tracer."""
    TRACER.remove_sink(sink)


def span(name: str, cat: str = "host", **args):
    """Module-level shorthand for ``TRACER.span`` (the hot call site).

    The disabled path is one attribute load and one branch; callers pay
    only for their own kwargs dict.
    """
    if not TRACER.enabled:
        return NULL_SPAN
    return Span(TRACER, name, cat, args)


def traced(name: str | None = None, cat: str = "host"):
    """Decorator form: trace every call of the wrapped function.

    ``@traced()`` uses the function's qualified name; pass ``name=`` to
    pick the span label explicitly::

        @traced("huffman.codebook", cat="huffman")
        def build_codebook(freqs): ...
    """

    def _wrap(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def _inner(*a, **kw):
            if not TRACER.enabled:
                return fn(*a, **kw)
            with Span(TRACER, label, cat, {}):
                return fn(*a, **kw)

        _inner.__traced_name__ = label
        return _inner

    return _wrap
