"""Prometheus-style runtime metrics: counters, gauges, histograms.

The tracing layer answers "where did the time go"; this module answers
"how much work flowed through" — bytes in/out per codec, per-stage
nanoseconds, CMM hits/misses/evictions/bytes pinned, thread-pool queue
depth.  The exposition format follows the Prometheus text conventions
(``name{label="value"} count``) so the output of
:meth:`MetricsRegistry.render_prometheus` can be scraped or diffed
directly, and :meth:`MetricsRegistry.summary` renders the same data as
a human table for the CLI's ``--metrics`` flag.

Like the tracer, metrics are disabled by default and the disabled hot
path is one flag check: instrumentation sites call
:func:`repro.trace.tracer.enabled` (one switch controls both layers)
before touching a metric.  All mutators are lock-protected — pool
threads (OpenMP adapter, HUFP segments) update counters concurrently
and the totals must be exact, which the threads-1/2/4 tests pin.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Hashable

#: default histogram bucket upper bounds (generic work-size scale).
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class BoundCounter:
    """Hot-path handle on one label combination of a :class:`Counter`.

    :meth:`Counter.child` precomputes the label key once, so per-event
    sites (e.g. the serve submit path) pay a dict update under the
    parent's lock and never rebuild/sort the label tuple.
    """

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: "Counter", key: _LabelKey) -> None:
        self._counter = counter
        self._key = key

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(
                f"counter {self._counter.name} cannot decrease (n={n})"
            )
        c = self._counter
        with c._lock:
            c._values[self._key] = c._values.get(self._key, 0) + n


class Counter:
    """Monotonic counter with optional labels.

    One :class:`Counter` object covers every label combination of one
    metric name; ``inc(n, codec="mgard")`` addresses the labeled child.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[_LabelKey, float] = {}
        self._lock = threading.Lock()

    def inc(self, n: float = 1, **labels) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + n

    def child(self, **labels) -> BoundCounter:
        """Precomputed-label handle for per-event instrumentation."""
        return BoundCounter(self, _label_key(labels))

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum across all label combinations."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> list[tuple[_LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(Counter):
    """A counter that may also decrease / be set (e.g. bytes pinned)."""

    kind = "gauge"

    def inc(self, n: float = 1, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + n

    def dec(self, n: float = 1, **labels) -> None:
        self.inc(-n, **labels)

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    Tracks count/sum/max plus per-bucket counts; buckets are upper
    bounds with an implicit ``+Inf``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"buckets must be strictly increasing, got {buckets}")
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self._counts: dict[_LabelKey, list[int]] = {}
        self._sums: dict[_LabelKey, float] = {}
        self._ns: dict[_LabelKey, int] = {}
        self._maxes: dict[_LabelKey, float] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        idx = bisect_right(self.buckets, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            counts[idx] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._ns[key] = self._ns.get(key, 0) + 1
            self._maxes[key] = max(self._maxes.get(key, value), value)

    def count(self, **labels) -> int:
        with self._lock:
            return self._ns.get(_label_key(labels), 0)

    def sum(self, **labels) -> float:
        with self._lock:
            return self._sums.get(_label_key(labels), 0.0)

    def mean(self, **labels) -> float:
        n = self.count(**labels)
        return self.sum(**labels) / n if n else 0.0

    def max(self, **labels) -> float:
        with self._lock:
            return self._maxes.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[_LabelKey, int, float, float]]:
        """(labels, count, sum, max) per label combination."""
        with self._lock:
            return sorted(
                (k, self._ns[k], self._sums[k], self._maxes[k])
                for k in self._ns
            )


class MetricsRegistry:
    """Name → metric map with idempotent registration.

    ``registry.counter("hpdr_bytes_in_total")`` returns the same object
    on every call, so instrumentation sites need no module-level metric
    globals (and tests can :meth:`reset` the world between cases).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_make(self, cls, name: str, help: str, **kw):
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = self._metrics[name] = cls(name, help, **kw)
            elif type(m) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as {m.kind}, "
                    f"requested {cls.__name__.lower()}"
                )
            return m

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_make(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_make(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_make(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- exposition ----------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition of every registered metric."""
        lines: list[str] = []
        for name in self.names():
            m = self._metrics[name]
            if m.help:
                lines.append(f"# HELP {name} {m.help}")
            lines.append(f"# TYPE {name} {m.kind}")
            if isinstance(m, Histogram):
                for key, n, total, _mx in m.samples():
                    labels = dict(key)
                    cumulative = 0
                    with m._lock:
                        counts = list(m._counts[key])
                    for bound, c in zip(m.buckets, counts):
                        cumulative += c
                        lk = _label_key({**labels, "le": bound})
                        lines.append(f"{name}_bucket{_format_labels(lk)} {cumulative}")
                    lk = _label_key({**labels, "le": "+Inf"})
                    lines.append(f"{name}_bucket{_format_labels(lk)} {n}")
                    lines.append(f"{name}_sum{_format_labels(key)} {total:g}")
                    lines.append(f"{name}_count{_format_labels(key)} {n}")
            else:
                for key, value in m.samples():
                    lines.append(f"{name}{_format_labels(key)} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def summary(self) -> str:
        """Human-readable table of every non-zero metric."""
        rows: list[tuple[str, str, str]] = []
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Histogram):
                for key, n, total, mx in m.samples():
                    rows.append(
                        (
                            name + _format_labels(key),
                            m.kind,
                            f"n={n} sum={total:g} mean={total / n:g} max={mx:g}",
                        )
                    )
            else:
                for key, value in m.samples():
                    rows.append((name + _format_labels(key), m.kind, f"{value:g}"))
        if not rows:
            return "(no metrics recorded)"
        w_name = max(len(r[0]) for r in rows)
        w_kind = max(len(r[1]) for r in rows)
        lines = [f"{'metric'.ljust(w_name)}  {'type'.ljust(w_kind)}  value"]
        lines += [f"{n.ljust(w_name)}  {k.ljust(w_kind)}  {v}" for n, k, v in rows]
        return "\n".join(lines)


#: process-wide registry used by all instrumentation sites.
REGISTRY = MetricsRegistry()
