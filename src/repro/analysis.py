"""Reconstruction-quality metrics and rate-distortion sweeps.

Standard companions of every scientific compressor release: given an
original and a reconstruction, quantify the damage; given a compressor
and a dataset, trace its rate-distortion curve.  Used by the extension
benches and available to downstream users for acceptance testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


def max_abs_error(original: np.ndarray, restored: np.ndarray) -> float:
    """L∞ error (the quantity error-bounded compressors guarantee)."""
    _check(original, restored)
    if original.size == 0:
        return 0.0
    return float(
        np.max(np.abs(original.astype(np.float64) - restored.astype(np.float64)))
    )


def rmse(original: np.ndarray, restored: np.ndarray) -> float:
    """Root-mean-square (L2) error."""
    _check(original, restored)
    if original.size == 0:
        return 0.0
    diff = original.astype(np.float64) - restored.astype(np.float64)
    return float(np.sqrt(np.mean(diff * diff)))


def psnr(original: np.ndarray, restored: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (∞ for exact reconstruction)."""
    e = rmse(original, restored)
    vrange = float(np.ptp(original.astype(np.float64)))
    if e == 0.0:
        return float("inf")
    if vrange == 0.0:
        return float("-inf") if e > 0 else float("inf")
    return 20.0 * np.log10(vrange / e)


def preserved_mean_error(original: np.ndarray, restored: np.ndarray) -> float:
    """Error of the domain mean — the simplest linear QoI."""
    _check(original, restored)
    return float(
        abs(np.mean(original.astype(np.float64)) - np.mean(restored.astype(np.float64)))
    )


def preserved_gradient_error(original: np.ndarray, restored: np.ndarray) -> float:
    """L∞ error of first differences along every axis (derivative QoI)."""
    _check(original, restored)
    worst = 0.0
    o = original.astype(np.float64)
    r = restored.astype(np.float64)
    for axis in range(original.ndim):
        if original.shape[axis] < 2:
            continue
        go = np.diff(o, axis=axis)
        gr = np.diff(r, axis=axis)
        worst = max(worst, float(np.max(np.abs(go - gr))))
    return worst


def _check(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")


@dataclass(frozen=True)
class RatePoint:
    """One point on a rate-distortion curve."""

    parameter: float          # eb / rate / tolerance driving the codec
    bits_per_value: float
    ratio: float
    max_error: float
    rmse: float
    psnr: float


def rate_distortion(
    data: np.ndarray,
    make_compressor: Callable[[float], object],
    parameters: Sequence[float],
) -> list[RatePoint]:
    """Sweep a codec parameter and collect rate-distortion points.

    ``make_compressor(p)`` builds a configured compressor for parameter
    ``p`` (an error bound, a rate, …); each point performs a real
    compress/decompress round trip.
    """
    if not parameters:
        raise ValueError("need at least one parameter")
    points = []
    bits = data.dtype.itemsize * 8
    for p in parameters:
        comp = make_compressor(p)
        blob = comp.compress(data)
        restored = np.asarray(comp.decompress(blob)).reshape(data.shape)
        points.append(
            RatePoint(
                parameter=float(p),
                bits_per_value=8.0 * len(blob) / data.size,
                ratio=data.nbytes / len(blob),
                max_error=max_abs_error(data, restored),
                rmse=rmse(data, restored),
                psnr=psnr(data, restored),
            )
        )
    return points
