"""Roofline model fitting (paper Fig. 11).

The adaptive pipeline needs Φ(C): estimated reduction throughput at chunk
size C.  The paper builds it by profiling a dataset/error-bound
combination over a range of chunk sizes, taking the largest profiled
chunk's throughput as the plateau γ, walking down until throughput drops
below ``f·γ`` (default f = 0.1 in the paper's example; we expose it), and
least-squares fitting the remaining points with a line ``α·C + β``.

This module implements exactly that procedure over (chunk_size,
throughput) profile points — whether they come from the calibrated
simulator or from real wall-clock measurements of the NumPy kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RooflineModel:
    """Fitted piecewise throughput model.

    ``phi(C) = min(alpha*C + beta, gamma)`` with the crossover at
    ``c_threshold``.
    """

    alpha: float
    beta: float
    gamma: float
    c_threshold: float

    def phi(self, chunk_bytes: float) -> float:
        if chunk_bytes >= self.c_threshold:
            return self.gamma
        return max(0.0, self.alpha * chunk_bytes + self.beta)

    def predict(self, chunks: np.ndarray) -> np.ndarray:
        chunks = np.asarray(chunks, dtype=np.float64)
        ramp = np.maximum(0.0, self.alpha * chunks + self.beta)
        return np.where(chunks >= self.c_threshold, self.gamma, np.minimum(ramp, self.gamma))


def fit_roofline(
    chunk_sizes: np.ndarray,
    throughputs: np.ndarray,
    plateau_fraction: float = 0.9,
    ramp_cutoff: float = 0.1,
) -> RooflineModel:
    """Fit Φ(C) from profile points, following the paper's procedure.

    Parameters
    ----------
    chunk_sizes, throughputs:
        Paired profile observations.  Need not be sorted.
    plateau_fraction:
        Points with throughput ≥ ``plateau_fraction·γ`` are treated as
        saturated; γ is the throughput of the largest profiled chunk.
    ramp_cutoff:
        The paper's ``f``: ramp fitting starts from the first chunk whose
        throughput exceeds ``f·γ`` (tiny chunks below the cutoff are
        dominated by launch overhead and excluded).

    Raises
    ------
    ValueError
        On mismatched/empty inputs or non-positive sizes.
    """
    c = np.asarray(chunk_sizes, dtype=np.float64)
    p = np.asarray(throughputs, dtype=np.float64)
    if c.shape != p.shape or c.ndim != 1:
        raise ValueError("chunk_sizes and throughputs must be equal-length 1-D arrays")
    if c.size < 2:
        raise ValueError("need at least two profile points")
    if np.any(c <= 0) or np.any(p <= 0):
        raise ValueError("chunk sizes and throughputs must be positive")

    order = np.argsort(c)
    c, p = c[order], p[order]
    gamma = float(p[-1])

    saturated = p >= plateau_fraction * gamma
    # The threshold is the smallest chunk already on the plateau.
    c_threshold = float(c[saturated][0]) if saturated.any() else float(c[-1])

    ramp_mask = (~saturated) & (p >= ramp_cutoff * gamma)
    if ramp_mask.sum() >= 2:
        A = np.stack([c[ramp_mask], np.ones(ramp_mask.sum())], axis=1)
        (alpha, beta), *_ = np.linalg.lstsq(A, p[ramp_mask], rcond=None)
    elif ramp_mask.sum() == 1:
        # One usable ramp point: line through it and the plateau knee.
        x0, y0 = float(c[ramp_mask][0]), float(p[ramp_mask][0])
        alpha = (gamma - y0) / max(c_threshold - x0, 1e-30)
        beta = y0 - alpha * x0
    else:
        # Everything is saturated: a flat model.
        alpha, beta = 0.0, gamma
    return RooflineModel(float(alpha), float(beta), gamma, c_threshold)


def profile_points(
    model_phi,
    chunk_sizes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate a Φ callable over chunk sizes, returning profile pairs."""
    c = np.asarray(chunk_sizes, dtype=np.float64)
    p = np.array([model_phi(x) for x in c], dtype=np.float64)
    return c, p
