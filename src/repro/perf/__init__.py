"""Performance models for the simulated substrate.

* :mod:`repro.perf.models` — calibrated saturated kernel throughputs per
  (pipeline, processor) pair, the chunk-size-dependent throughput model
  Φ(C), and the transfer model Θ(t) used by the adaptive pipeline.
* :mod:`repro.perf.roofline` — the paper's Fig. 11 model-fitting
  procedure: profile throughput over chunk sizes, detect the saturation
  plateau, fit the linear ramp by least squares.
"""

from repro.perf.models import (
    KernelModel,
    kernel_model,
    kernel_throughput,
    list_pipelines,
)
from repro.perf.roofline import RooflineModel, fit_roofline

__all__ = [
    "KernelModel",
    "kernel_model",
    "kernel_throughput",
    "list_pipelines",
    "RooflineModel",
    "fit_roofline",
]
