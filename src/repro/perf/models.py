"""Calibrated kernel-throughput models.

The paper reports saturated reduction-kernel throughputs in Fig. 12 (up
to 45 GB/s MGARD-X, 210 GB/s ZFP-X, 150 GB/s Huffman-X on GPUs; 2, 18
and 48 GB/s on CPUs).  This module encodes per-(pipeline, processor)
saturated throughputs consistent with those ranges, plus the paper's
chunk-size model:

    Φ(C) = α·C + β          if C <  C_threshold   (ramp: GPU not saturated)
    Φ(C) = γ                if C >= C_threshold   (plateau)

and the host-to-device transfer model Θ(t) = t / β_link used by the
adaptive chunking strategy (Algorithm 4).

Throughputs are in **bytes of input processed per second**.  Error-bound
sensitivity is modelled as a mild multiplicative factor (looser bounds
quantize to fewer distinct symbols, shortening entropy-coding work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.specs import ProcessorSpec, get_processor

GB = 1e9

# Saturated throughput (GB/s of input) per pipeline per processor.
# Calibrated to reproduce the paper's Fig. 12 / Fig. 15 orderings.
_SATURATED: dict[str, dict[str, float]] = {
    # HPDR pipelines
    "mgard-x": {
        "V100": 14.0, "A100": 45.0, "MI250X": 24.0, "RTX3090": 15.0,
        "POWER9": 1.2, "EPYC7713": 2.0, "EPYC-Trento": 2.0, "i7": 1.0,
    },
    "zfp-x": {
        "V100": 120.0, "A100": 210.0, "MI250X": 160.0, "RTX3090": 90.0,
        "POWER9": 8.0, "EPYC7713": 18.0, "EPYC-Trento": 18.0, "i7": 10.0,
    },
    "huffman-x": {
        "V100": 100.0, "A100": 150.0, "MI250X": 120.0, "RTX3090": 70.0,
        "POWER9": 20.0, "EPYC7713": 48.0, "EPYC-Trento": 48.0, "i7": 25.0,
    },
    # Baselines (release GPU versions the paper compares against).  Their
    # kernels are broadly comparable; the end-to-end gap in the paper
    # comes from missing pipelining and per-call allocation, which the
    # simulator models separately.
    # MGARD-GPU v1.5 kernels are markedly slower than MGARD-X's
    # (IPDPS'21 reports single-digit GB/s on V100).
    "mgard-gpu": {
        "V100": 12.0, "A100": 18.0, "MI250X": 6.5, "RTX3090": 6.0,
        "POWER9": 0.4, "EPYC7713": 0.6, "EPYC-Trento": 0.6, "i7": 0.3,
    },
    "zfp-cuda": {
        "V100": 130.0, "A100": 190.0, "RTX3090": 85.0,
    },
    "cusz": {
        "V100": 70.0, "A100": 110.0, "RTX3090": 55.0,
    },
    "nvcomp-lz4": {
        "V100": 55.0, "A100": 90.0, "RTX3090": 45.0,
    },
}

# Decompression runs the same kernels in reverse order; the paper's
# Fig. 15 shows decompression slightly slower for MGARD-family pipelines
# (the recomposition's tridiagonal solves dominate).
_DECOMP_FACTOR: dict[str, float] = {
    "mgard-x": 0.85,
    "mgard-gpu": 0.80,
    "zfp-x": 1.05,
    "zfp-cuda": 1.00,
    "huffman-x": 0.90,
    "cusz": 0.90,
    "nvcomp-lz4": 1.20,
}

# Relative compute-time split across pipeline stages (sums to 1.0) —
# used when the simulator wants stage-level tasks (Fig. 1 breakdown).
STAGE_SPLIT: dict[str, dict[str, float]] = {
    "mgard-x": {"decompose": 0.55, "quantize": 0.10, "encode": 0.35},
    "mgard-gpu": {"decompose": 0.55, "quantize": 0.10, "encode": 0.35},
    "zfp-x": {"transform": 0.60, "bitplane": 0.40},
    "zfp-cuda": {"transform": 0.60, "bitplane": 0.40},
    "huffman-x": {"histogram": 0.25, "codebook": 0.05, "encode": 0.45, "serialize": 0.25},
    "cusz": {"predict": 0.35, "quantize": 0.15, "encode": 0.50},
    "nvcomp-lz4": {"match": 0.70, "emit": 0.30},
}


@dataclass(frozen=True)
class KernelModel:
    """Chunk-size-dependent throughput model for one (pipeline, device).

    Implements the paper's piecewise Φ(C): a linear ramp below the
    saturation chunk size and a constant plateau γ above it.
    """

    pipeline: str
    processor: ProcessorSpec
    gamma: float          # saturated throughput, bytes/s
    c_threshold: float    # saturation chunk size, bytes
    ramp_floor: float = 0.05  # fraction of γ reached as C → 0

    def phi(self, chunk_bytes: float) -> float:
        """Throughput (bytes/s) at chunk size ``chunk_bytes``."""
        if chunk_bytes <= 0:
            return self.ramp_floor * self.gamma
        if chunk_bytes >= self.c_threshold:
            return self.gamma
        frac = self.ramp_floor + (1.0 - self.ramp_floor) * (
            chunk_bytes / self.c_threshold
        )
        return frac * self.gamma

    def kernel_time(self, chunk_bytes: float) -> float:
        """Seconds of compute to reduce ``chunk_bytes`` of input."""
        return chunk_bytes / self.phi(chunk_bytes)

    def theta(self, t: float) -> float:
        """Θ(t): max bytes transferable host→device in ``t`` seconds."""
        return t * self.processor.link_h2d


def _eb_factor(error_bound: float | None) -> float:
    """Mild throughput sensitivity to the error bound.

    Looser bounds → fewer quantization symbols → faster entropy coding.
    Calibrated so eb=1e-2 is ~10 % faster and eb=1e-6 ~10 % slower than
    the eb=1e-4 midpoint.
    """
    if error_bound is None or error_bound <= 0:
        return 1.0
    exponent = math.log10(error_bound)
    # eb=1e-4 → factor 1.0; each decade shifts 5 %.
    return max(0.6, min(1.4, 1.0 + 0.05 * (exponent + 4.0)))


def kernel_model(
    pipeline: str,
    processor: str | ProcessorSpec,
    error_bound: float | None = None,
    decompress: bool = False,
) -> KernelModel:
    """Build the Φ model for a (pipeline, processor) pair.

    Raises ``KeyError`` when the pipeline has no released implementation
    on the processor — mirroring the paper's evaluation, where e.g. cuSZ
    and ZFP-CUDA have no stable HIP build for Frontier.
    """
    spec = processor if isinstance(processor, ProcessorSpec) else get_processor(processor)
    key = pipeline.lower()
    if key not in _SATURATED:
        raise KeyError(f"unknown pipeline {pipeline!r}; available: {sorted(_SATURATED)}")
    table = _SATURATED[key]
    if spec.name not in table:
        raise KeyError(
            f"{pipeline!r} has no implementation for {spec.name} "
            "(matches the paper's exclusion of unstable ports)"
        )
    gamma = table[spec.name] * GB * _eb_factor(error_bound)
    if decompress:
        gamma *= _DECOMP_FACTOR.get(key, 1.0)
    return KernelModel(key, spec, gamma, spec.sat_chunk)


def kernel_throughput(
    pipeline: str,
    processor: str | ProcessorSpec,
    chunk_bytes: float | None = None,
    error_bound: float | None = None,
    decompress: bool = False,
) -> float:
    """Convenience: Φ(C) in bytes/s (saturated if ``chunk_bytes`` is None)."""
    model = kernel_model(pipeline, processor, error_bound, decompress)
    if chunk_bytes is None:
        return model.gamma
    return model.phi(chunk_bytes)


def list_pipelines() -> list[str]:
    return sorted(_SATURATED)


def supported_processors(pipeline: str) -> list[str]:
    key = pipeline.lower()
    if key not in _SATURATED:
        raise KeyError(f"unknown pipeline {pipeline!r}")
    return sorted(_SATURATED[key])
