"""Benchmark harness utilities.

* :mod:`repro.bench.methods` — the calibrated runtime profiles of every
  reduction routine in the paper's evaluation, shared by all benches so
  Fig. 15/16/17/18 use one consistent story.
* :mod:`repro.bench.report` — table printers and paper-vs-measured
  comparison records (collected into EXPERIMENTS.md).
"""

from repro.bench.methods import EVAL_METHODS, method_at_scale
from repro.bench.report import Comparison, print_table

__all__ = ["EVAL_METHODS", "method_at_scale", "Comparison", "print_table"]
