"""Calibrated runtime profiles of the evaluated reduction routines.

Kernel throughputs live in :mod:`repro.perf.models`; this module fixes
each released tool's *behavioural* constants — allocations per call,
fixed host-side per-call overhead, legacy chunking — matching the
characteristics reported for the release versions the paper benchmarks
(MGARD-GPU v1.5, ZFP-CUDA v1.0, cuSZ v0.6, NVCOMP-LZ4 v2.2).

Calibration targets (Summit/V100, from the paper):

================  ==============  =========================
method            per-GPU e2e     avg multi-GPU scalability
================  ==============  =========================
MGARD-X           ~14.6 GB/s      ~96 %
MGARD-GPU         ~4.9 GB/s       ~72 %
ZFP-CUDA          ~7.1 GB/s       ~48 %
cuSZ              ~4.9 GB/s       ~46 %
NVCOMP-LZ4        ~5.4 GB/s       ~74 %
================  ==============  =========================
"""

from __future__ import annotations

from repro.io.parallel import ReductionAtScale


def _m(**kw) -> ReductionAtScale:
    return ReductionAtScale(**kw)


#: Behavioural profile per evaluated method.  ``ratio`` here is only a
#: placeholder; benches override it with measured ratios via
#: :func:`method_at_scale`.
EVAL_METHODS: dict[str, ReductionAtScale] = {
    "mgard-x": _m(kernel="mgard-x", ratio=20.0, label="MGARD-X"),
    "zfp-x": _m(kernel="zfp-x", ratio=6.0, label="ZFP-X"),
    "huffman-x": _m(kernel="huffman-x", ratio=1.5, label="Huffman-X"),
    "mgard-gpu": _m(
        kernel="mgard-gpu",
        ratio=20.0,
        overlapped=False,
        context_cached=False,
        allocs_per_call=4,
        call_overhead_s=0.005,
        label="MGARD-GPU",
    ),
    "zfp-cuda": _m(
        kernel="zfp-cuda",
        ratio=6.0,
        overlapped=False,
        context_cached=False,
        allocs_per_call=4,
        call_overhead_s=0.0,
        label="ZFP-CUDA",
    ),
    "cusz": _m(
        kernel="cusz",
        ratio=20.0,
        overlapped=False,
        context_cached=False,
        allocs_per_call=5,
        call_overhead_s=0.0,
        label="cuSZ",
    ),
    "nvcomp-lz4": _m(
        kernel="nvcomp-lz4",
        ratio=1.1,
        overlapped=False,
        context_cached=False,
        allocs_per_call=2,
        call_overhead_s=0.005,
        label="NVCOMP-LZ4",
    ),
}

#: cuSZ crashed in the paper's runs beyond this node count (Fig. 17).
CUSZ_MAX_NODES = 64


def method_at_scale(name: str, ratio: float | None = None,
                    error_bound: float | None = None) -> ReductionAtScale:
    """Fetch a method profile, optionally overriding measured ratio/eb."""
    key = name.lower()
    if key not in EVAL_METHODS:
        raise KeyError(f"unknown method {name!r}; available: {sorted(EVAL_METHODS)}")
    base = EVAL_METHODS[key]
    changes = {}
    if ratio is not None:
        changes["ratio"] = ratio
    if error_bound is not None:
        changes["error_bound"] = error_bound
    if not changes:
        return base
    from dataclasses import replace

    return replace(base, **changes)
