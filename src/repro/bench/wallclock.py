"""Wall-clock throughput measurement for the real codec hot paths.

Unlike :mod:`repro.bench.methods` (calibrated *simulated* profiles used
to regenerate the paper's figures), this module times the actual Python
implementation: MB/s per codec end to end, plus MGARD-X's per-stage
breakdown (decompose / quantize / encode / serialize) on the scaled
``nyx`` bench dataset.  ``benchmarks/bench_wallclock.py`` writes the
numbers to ``BENCH_wallclock.json`` and ``scripts/perf_gate.py`` fails
CI on wall-clock regressions against that committed record.
"""

from __future__ import annotations

import platform
import time
from typing import Callable

import numpy as np

BENCH_DATASET = "nyx"
BENCH_SHAPE = (48, 48, 48)

#: Pre-refactor throughputs (MB/s) on this harness and dataset, measured
#: at the commit before the zero-alloc/vectorization work.  They are the
#: denominators of the speedup columns reported by the bench script.
BASELINE = {
    "huffman": {"compress_MBps": 6.49, "decompress_MBps": 7.70},
    "mgard": {"compress_MBps": 13.39, "decompress_MBps": 9.94},
    "zfp": {"compress_MBps": 67.49, "decompress_MBps": 23.92},
}


def bench_data() -> np.ndarray:
    from repro.data import load

    return load(BENCH_DATASET, BENCH_SHAPE).astype(np.float32)


def _best_seconds(fn: Callable[[], object], reps: int) -> float:
    """Minimum wall-clock seconds over ``reps`` runs (after the caller's
    warm-up call primed the CMM contexts)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _make_codec(name: str, adapter=None):
    from repro import Config, ErrorMode, HuffmanX, MGARDX, ZFPX

    if name == "huffman":
        return HuffmanX(adapter=adapter)
    if name == "mgard":
        return MGARDX(
            Config(error_bound=1e-3, error_mode=ErrorMode.REL), adapter=adapter
        )
    if name == "zfp":
        return ZFPX(rate=10, adapter=adapter)
    raise KeyError(f"unknown codec {name!r}")


def measure_codec(name: str, data: np.ndarray, reps: int = 3, adapter=None) -> dict:
    """End-to-end MB/s for one codec (warm CMM steady state)."""
    codec = _make_codec(name, adapter)
    blob = codec.compress(data)  # warm-up: populate contexts
    t_comp = _best_seconds(lambda: codec.compress(data), reps)
    codec.decompress(blob)
    t_dec = _best_seconds(lambda: codec.decompress(blob), reps)
    mb = data.nbytes / 1e6
    return {
        "compress_MBps": round(mb / t_comp, 2),
        "decompress_MBps": round(mb / t_dec, 2),
        "ratio": round(data.nbytes / len(blob), 2),
    }


def measure_mgard_stages(data: np.ndarray, reps: int = 3) -> dict:
    """MGARD-X compression stage breakdown (seconds, min over reps)."""
    from repro import Config, ErrorMode, MGARDX
    from repro.compressors.mgard.decompose import decompose
    from repro.compressors.mgard.quantize import (
        level_bins,
        quantize_levels,
        to_symbols,
    )

    c = MGARDX(Config(error_bound=1e-3, error_mode=ErrorMode.REL))
    abs_eb = c.config.absolute_bound(data)
    ctx, hierarchy, factors = c._context(data.shape, data.dtype, None)

    def _decompose():
        return decompose(
            data, hierarchy, adapter=None, factors_per_level=factors, ctx=ctx
        )

    coeffs, coarsest = _decompose()  # warm-up
    groups = coeffs + [coarsest.reshape(-1)]
    bins = level_bins(abs_eb, len(groups), c.kappa, s=c.s)

    def _quantize():
        qgroups = quantize_levels(groups, bins)
        qflat = np.concatenate([q.reshape(-1) for q in qgroups])
        return to_symbols(qflat, c.dict_size)

    symbols, _ = _quantize()
    keys = symbols.astype(np.int64)

    def _encode():
        return c._huffman.compress_keys(keys, c.dict_size)

    _encode()  # warm-up

    def _serialize():
        return c._encode(data, abs_eb, c.kappa, hierarchy, groups, bins)

    _serialize()

    stages = {
        "decompose_s": _best_seconds(_decompose, reps),
        "quantize_s": _best_seconds(_quantize, reps),
        "encode_s": _best_seconds(_encode, reps),
    }
    # _encode runs quantize + encode + container assembly; the leftover
    # is pure serialization overhead.
    total_encode_path = _best_seconds(_serialize, reps)
    stages["serialize_s"] = max(
        0.0, total_encode_path - stages["quantize_s"] - stages["encode_s"]
    )
    return {k: round(v, 5) for k, v in stages.items()}


def measure_all(reps: int = 3, threads: int | None = None) -> dict:
    """The full wall-clock record written to ``BENCH_wallclock.json``."""
    from repro.adapters import get_adapter

    data = bench_data()
    current: dict = {}
    for name in ("huffman", "mgard", "zfp"):
        current[name] = measure_codec(name, data, reps=reps)
    # Threads pinned (default 4) so the HUFP chunk-parallel container is
    # what gets measured even on hosts reporting a single core.
    omp = get_adapter("openmp", num_threads=threads or 4)
    current["huffman_openmp"] = measure_codec("huffman", data, reps=reps, adapter=omp)
    current["mgard_stages"] = measure_mgard_stages(data, reps=reps)
    return {
        "dataset": BENCH_DATASET,
        "shape": list(BENCH_SHAPE),
        "dtype": "float32",
        "megabytes": round(data.nbytes / 1e6, 3),
        "reps": reps,
        "python": platform.python_version(),
        "baseline": BASELINE,
        "current": current,
    }


def trace_run(out_path, threads: int | None = None):
    """One traced compress+decompress per codec, exported as Chrome JSON.

    Runs *after* (and separately from) the timed reps so the published
    throughput numbers never include tracing overhead; the artifact it
    writes is what CI archives next to ``BENCH_fresh.json``.  Returns
    the written path.
    """
    import repro.trace as trace
    from repro.adapters import get_adapter

    data = bench_data()
    omp = get_adapter("openmp", num_threads=threads or 4)
    was_enabled = trace.enabled()
    trace.enable(clear=True)
    try:
        for name in ("huffman", "mgard", "zfp"):
            codec = _make_codec(name, adapter=omp)
            codec.decompress(codec.compress(data))
        return trace.export_chrome(out_path)
    finally:
        if not was_enabled:
            trace.disable()


def speedups(record: dict) -> dict:
    """``current / baseline`` ratios for the codecs with baselines."""
    out = {}
    for name, base in record["baseline"].items():
        cur = record["current"].get(name)
        if not cur:
            continue
        out[name] = {
            metric: round(cur[metric] / base[metric], 2)
            for metric in ("compress_MBps", "decompress_MBps")
        }
    return out
