"""Table printing and paper-vs-measured comparison records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Comparison:
    """One paper-vs-measured datum for EXPERIMENTS.md."""

    experiment: str           # e.g. "Fig. 13"
    quantity: str             # e.g. "ZFP-X fixed/none speedup"
    paper: str                # what the paper reports
    measured: str             # what this reproduction measures
    note: str = ""

    def row(self) -> list[str]:
        return [self.experiment, self.quantity, self.paper, self.measured, self.note]


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
    floatfmt: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table (returned and printed)."""
    def fmt(x) -> str:
        if isinstance(x, float):
            return floatfmt.format(x)
        return str(x)

    srows = [[fmt(c) for c in r] for r in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in srows)) if srows else len(str(h))
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in srows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    out = "\n".join(lines)
    print(out)
    return out


def print_comparisons(comps: Sequence[Comparison], title: str = "") -> str:
    return print_table(
        ["experiment", "quantity", "paper", "measured", "note"],
        [c.row() for c in comps],
        title=title,
    )
